# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_engine_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_tcb[1]_include.cmake")
include("/root/repo/build/tests/test_congestion[1]_include.cmake")
include("/root/repo/build/tests/test_fpu[1]_include.cmake")
include("/root/repo/build/tests/test_fpc[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_soft_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_host_mem[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_apps[1]_include.cmake")
include("/root/repo/build/tests/test_engine_features[1]_include.cmake")
