file(REMOVE_RECURSE
  "CMakeFiles/test_host_mem.dir/test_host_mem.cc.o"
  "CMakeFiles/test_host_mem.dir/test_host_mem.cc.o.d"
  "test_host_mem"
  "test_host_mem.pdb"
  "test_host_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
