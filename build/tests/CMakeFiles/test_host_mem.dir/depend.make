# Empty dependencies file for test_host_mem.
# This may be replaced when dependencies are built.
