# Empty dependencies file for test_baseline_apps.
# This may be replaced when dependencies are built.
