file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_apps.dir/test_baseline_apps.cc.o"
  "CMakeFiles/test_baseline_apps.dir/test_baseline_apps.cc.o.d"
  "test_baseline_apps"
  "test_baseline_apps.pdb"
  "test_baseline_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
