file(REMOVE_RECURSE
  "CMakeFiles/test_soft_tcp.dir/test_soft_tcp.cc.o"
  "CMakeFiles/test_soft_tcp.dir/test_soft_tcp.cc.o.d"
  "test_soft_tcp"
  "test_soft_tcp.pdb"
  "test_soft_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soft_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
