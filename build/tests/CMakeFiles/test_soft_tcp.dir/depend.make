# Empty dependencies file for test_soft_tcp.
# This may be replaced when dependencies are built.
