file(REMOVE_RECURSE
  "CMakeFiles/test_engine_e2e.dir/test_engine_e2e.cc.o"
  "CMakeFiles/test_engine_e2e.dir/test_engine_e2e.cc.o.d"
  "test_engine_e2e"
  "test_engine_e2e.pdb"
  "test_engine_e2e[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
