# Empty compiler generated dependencies file for test_tcb.
# This may be replaced when dependencies are built.
