file(REMOVE_RECURSE
  "CMakeFiles/test_tcb.dir/test_tcb.cc.o"
  "CMakeFiles/test_tcb.dir/test_tcb.cc.o.d"
  "test_tcb"
  "test_tcb.pdb"
  "test_tcb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
