file(REMOVE_RECURSE
  "CMakeFiles/fig16b_ablation.dir/fig16b_ablation.cc.o"
  "CMakeFiles/fig16b_ablation.dir/fig16b_ablation.cc.o.d"
  "fig16b_ablation"
  "fig16b_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
