# Empty compiler generated dependencies file for fig16b_ablation.
# This may be replaced when dependencies are built.
