file(REMOVE_RECURSE
  "CMakeFiles/fig02_rmw_stalls.dir/fig02_rmw_stalls.cc.o"
  "CMakeFiles/fig02_rmw_stalls.dir/fig02_rmw_stalls.cc.o.d"
  "fig02_rmw_stalls"
  "fig02_rmw_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_rmw_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
