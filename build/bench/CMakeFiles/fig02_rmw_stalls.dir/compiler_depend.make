# Empty compiler generated dependencies file for fig02_rmw_stalls.
# This may be replaced when dependencies are built.
