file(REMOVE_RECURSE
  "CMakeFiles/fig09_request_sizes.dir/fig09_request_sizes.cc.o"
  "CMakeFiles/fig09_request_sizes.dir/fig09_request_sizes.cc.o.d"
  "fig09_request_sizes"
  "fig09_request_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_request_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
