file(REMOVE_RECURSE
  "CMakeFiles/fig10_nginx_rate.dir/fig10_nginx_rate.cc.o"
  "CMakeFiles/fig10_nginx_rate.dir/fig10_nginx_rate.cc.o.d"
  "fig10_nginx_rate"
  "fig10_nginx_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_nginx_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
