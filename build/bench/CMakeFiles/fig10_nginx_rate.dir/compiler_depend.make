# Empty compiler generated dependencies file for fig10_nginx_rate.
# This may be replaced when dependencies are built.
