# Empty dependencies file for tab02_situations.
# This may be replaced when dependencies are built.
