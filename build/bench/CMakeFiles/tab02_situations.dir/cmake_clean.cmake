file(REMOVE_RECURSE
  "CMakeFiles/tab02_situations.dir/tab02_situations.cc.o"
  "CMakeFiles/tab02_situations.dir/tab02_situations.cc.o.d"
  "tab02_situations"
  "tab02_situations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_situations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
