# Empty compiler generated dependencies file for fig14_cwnd.
# This may be replaced when dependencies are built.
