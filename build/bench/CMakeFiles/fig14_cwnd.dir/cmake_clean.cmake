file(REMOVE_RECURSE
  "CMakeFiles/fig14_cwnd.dir/fig14_cwnd.cc.o"
  "CMakeFiles/fig14_cwnd.dir/fig14_cwnd.cc.o.d"
  "fig14_cwnd"
  "fig14_cwnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cwnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
