
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig08_throughput.cc" "bench/CMakeFiles/fig08_throughput.dir/fig08_throughput.cc.o" "gcc" "bench/CMakeFiles/fig08_throughput.dir/fig08_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/f4t_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/f4t/CMakeFiles/f4t_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/f4t_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/f4t_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/f4t_host.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/f4t_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/f4t_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/f4t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/f4t_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
