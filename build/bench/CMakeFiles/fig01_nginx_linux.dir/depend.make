# Empty dependencies file for fig01_nginx_linux.
# This may be replaced when dependencies are built.
