file(REMOVE_RECURSE
  "CMakeFiles/fig01_nginx_linux.dir/fig01_nginx_linux.cc.o"
  "CMakeFiles/fig01_nginx_linux.dir/fig01_nginx_linux.cc.o.d"
  "fig01_nginx_linux"
  "fig01_nginx_linux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_nginx_linux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
