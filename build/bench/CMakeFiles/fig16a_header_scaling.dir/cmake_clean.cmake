file(REMOVE_RECURSE
  "CMakeFiles/fig16a_header_scaling.dir/fig16a_header_scaling.cc.o"
  "CMakeFiles/fig16a_header_scaling.dir/fig16a_header_scaling.cc.o.d"
  "fig16a_header_scaling"
  "fig16a_header_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_header_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
