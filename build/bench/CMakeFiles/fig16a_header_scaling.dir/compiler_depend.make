# Empty compiler generated dependencies file for fig16a_header_scaling.
# This may be replaced when dependencies are built.
