# Empty dependencies file for fig15_versatility.
# This may be replaced when dependencies are built.
