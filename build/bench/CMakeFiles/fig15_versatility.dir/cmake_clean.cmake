file(REMOVE_RECURSE
  "CMakeFiles/fig15_versatility.dir/fig15_versatility.cc.o"
  "CMakeFiles/fig15_versatility.dir/fig15_versatility.cc.o.d"
  "fig15_versatility"
  "fig15_versatility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_versatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
