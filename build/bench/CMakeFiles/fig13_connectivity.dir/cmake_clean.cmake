file(REMOVE_RECURSE
  "CMakeFiles/fig13_connectivity.dir/fig13_connectivity.cc.o"
  "CMakeFiles/fig13_connectivity.dir/fig13_connectivity.cc.o.d"
  "fig13_connectivity"
  "fig13_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
