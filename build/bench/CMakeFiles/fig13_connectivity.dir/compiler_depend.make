# Empty compiler generated dependencies file for fig13_connectivity.
# This may be replaced when dependencies are built.
