# Empty compiler generated dependencies file for tab01_summary.
# This may be replaced when dependencies are built.
