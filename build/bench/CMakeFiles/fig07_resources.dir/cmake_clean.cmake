file(REMOVE_RECURSE
  "CMakeFiles/fig07_resources.dir/fig07_resources.cc.o"
  "CMakeFiles/fig07_resources.dir/fig07_resources.cc.o.d"
  "fig07_resources"
  "fig07_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
