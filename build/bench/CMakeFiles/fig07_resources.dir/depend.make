# Empty dependencies file for fig07_resources.
# This may be replaced when dependencies are built.
