# Empty compiler generated dependencies file for http_server.
# This may be replaced when dependencies are built.
