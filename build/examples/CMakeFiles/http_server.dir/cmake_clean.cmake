file(REMOVE_RECURSE
  "CMakeFiles/http_server.dir/http_server.cpp.o"
  "CMakeFiles/http_server.dir/http_server.cpp.o.d"
  "http_server"
  "http_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
