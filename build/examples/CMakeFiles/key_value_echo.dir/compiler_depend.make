# Empty compiler generated dependencies file for key_value_echo.
# This may be replaced when dependencies are built.
