file(REMOVE_RECURSE
  "CMakeFiles/key_value_echo.dir/key_value_echo.cpp.o"
  "CMakeFiles/key_value_echo.dir/key_value_echo.cpp.o.d"
  "key_value_echo"
  "key_value_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_value_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
