# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("mem")
subdirs("tcp")
subdirs("host")
subdirs("core")
subdirs("f4t")
subdirs("baseline")
subdirs("apps")
