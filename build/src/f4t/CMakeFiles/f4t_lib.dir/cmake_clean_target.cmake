file(REMOVE_RECURSE
  "libf4t_lib.a"
)
