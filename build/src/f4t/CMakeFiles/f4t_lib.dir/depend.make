# Empty dependencies file for f4t_lib.
# This may be replaced when dependencies are built.
