file(REMOVE_RECURSE
  "CMakeFiles/f4t_lib.dir/library.cc.o"
  "CMakeFiles/f4t_lib.dir/library.cc.o.d"
  "CMakeFiles/f4t_lib.dir/runtime.cc.o"
  "CMakeFiles/f4t_lib.dir/runtime.cc.o.d"
  "libf4t_lib.a"
  "libf4t_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
