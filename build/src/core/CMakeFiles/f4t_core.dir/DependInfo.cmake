
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/f4t_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/engine.cc.o.d"
  "/root/repo/src/core/fpc.cc" "src/core/CMakeFiles/f4t_core.dir/fpc.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/fpc.cc.o.d"
  "/root/repo/src/core/host_interface.cc" "src/core/CMakeFiles/f4t_core.dir/host_interface.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/host_interface.cc.o.d"
  "/root/repo/src/core/memory_manager.cc" "src/core/CMakeFiles/f4t_core.dir/memory_manager.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/memory_manager.cc.o.d"
  "/root/repo/src/core/packet_generator.cc" "src/core/CMakeFiles/f4t_core.dir/packet_generator.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/packet_generator.cc.o.d"
  "/root/repo/src/core/resource_model.cc" "src/core/CMakeFiles/f4t_core.dir/resource_model.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/resource_model.cc.o.d"
  "/root/repo/src/core/rx_parser.cc" "src/core/CMakeFiles/f4t_core.dir/rx_parser.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/rx_parser.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/f4t_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/f4t_core.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/f4t_host.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/f4t_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/f4t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/f4t_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/f4t_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
