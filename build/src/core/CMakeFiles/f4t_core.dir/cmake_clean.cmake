file(REMOVE_RECURSE
  "CMakeFiles/f4t_core.dir/engine.cc.o"
  "CMakeFiles/f4t_core.dir/engine.cc.o.d"
  "CMakeFiles/f4t_core.dir/fpc.cc.o"
  "CMakeFiles/f4t_core.dir/fpc.cc.o.d"
  "CMakeFiles/f4t_core.dir/host_interface.cc.o"
  "CMakeFiles/f4t_core.dir/host_interface.cc.o.d"
  "CMakeFiles/f4t_core.dir/memory_manager.cc.o"
  "CMakeFiles/f4t_core.dir/memory_manager.cc.o.d"
  "CMakeFiles/f4t_core.dir/packet_generator.cc.o"
  "CMakeFiles/f4t_core.dir/packet_generator.cc.o.d"
  "CMakeFiles/f4t_core.dir/resource_model.cc.o"
  "CMakeFiles/f4t_core.dir/resource_model.cc.o.d"
  "CMakeFiles/f4t_core.dir/rx_parser.cc.o"
  "CMakeFiles/f4t_core.dir/rx_parser.cc.o.d"
  "CMakeFiles/f4t_core.dir/scheduler.cc.o"
  "CMakeFiles/f4t_core.dir/scheduler.cc.o.d"
  "libf4t_core.a"
  "libf4t_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
