# Empty dependencies file for f4t_core.
# This may be replaced when dependencies are built.
