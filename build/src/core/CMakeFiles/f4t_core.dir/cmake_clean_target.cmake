file(REMOVE_RECURSE
  "libf4t_core.a"
)
