# Empty compiler generated dependencies file for f4t_apps.
# This may be replaced when dependencies are built.
