file(REMOVE_RECURSE
  "CMakeFiles/f4t_apps.dir/http.cc.o"
  "CMakeFiles/f4t_apps.dir/http.cc.o.d"
  "CMakeFiles/f4t_apps.dir/workloads.cc.o"
  "CMakeFiles/f4t_apps.dir/workloads.cc.o.d"
  "libf4t_apps.a"
  "libf4t_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
