file(REMOVE_RECURSE
  "libf4t_apps.a"
)
