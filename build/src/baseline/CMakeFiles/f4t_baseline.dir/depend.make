# Empty dependencies file for f4t_baseline.
# This may be replaced when dependencies are built.
