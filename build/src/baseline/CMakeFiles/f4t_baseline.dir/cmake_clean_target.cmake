file(REMOVE_RECURSE
  "libf4t_baseline.a"
)
