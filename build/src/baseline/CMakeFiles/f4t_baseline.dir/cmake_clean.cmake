file(REMOVE_RECURSE
  "CMakeFiles/f4t_baseline.dir/linux_host.cc.o"
  "CMakeFiles/f4t_baseline.dir/linux_host.cc.o.d"
  "CMakeFiles/f4t_baseline.dir/stalling_engine.cc.o"
  "CMakeFiles/f4t_baseline.dir/stalling_engine.cc.o.d"
  "libf4t_baseline.a"
  "libf4t_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
