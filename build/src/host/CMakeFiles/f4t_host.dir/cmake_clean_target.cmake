file(REMOVE_RECURSE
  "libf4t_host.a"
)
