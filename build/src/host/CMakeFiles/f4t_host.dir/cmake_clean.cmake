file(REMOVE_RECURSE
  "CMakeFiles/f4t_host.dir/command_queue.cc.o"
  "CMakeFiles/f4t_host.dir/command_queue.cc.o.d"
  "CMakeFiles/f4t_host.dir/cpu.cc.o"
  "CMakeFiles/f4t_host.dir/cpu.cc.o.d"
  "CMakeFiles/f4t_host.dir/pcie.cc.o"
  "CMakeFiles/f4t_host.dir/pcie.cc.o.d"
  "libf4t_host.a"
  "libf4t_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
