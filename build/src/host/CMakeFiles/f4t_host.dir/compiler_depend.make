# Empty compiler generated dependencies file for f4t_host.
# This may be replaced when dependencies are built.
