file(REMOVE_RECURSE
  "CMakeFiles/f4t_net.dir/headers.cc.o"
  "CMakeFiles/f4t_net.dir/headers.cc.o.d"
  "CMakeFiles/f4t_net.dir/link.cc.o"
  "CMakeFiles/f4t_net.dir/link.cc.o.d"
  "CMakeFiles/f4t_net.dir/packet.cc.o"
  "CMakeFiles/f4t_net.dir/packet.cc.o.d"
  "libf4t_net.a"
  "libf4t_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
