# Empty dependencies file for f4t_net.
# This may be replaced when dependencies are built.
