file(REMOVE_RECURSE
  "libf4t_net.a"
)
