
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/congestion.cc" "src/tcp/CMakeFiles/f4t_tcp.dir/congestion.cc.o" "gcc" "src/tcp/CMakeFiles/f4t_tcp.dir/congestion.cc.o.d"
  "/root/repo/src/tcp/fpu_program.cc" "src/tcp/CMakeFiles/f4t_tcp.dir/fpu_program.cc.o" "gcc" "src/tcp/CMakeFiles/f4t_tcp.dir/fpu_program.cc.o.d"
  "/root/repo/src/tcp/soft_tcp.cc" "src/tcp/CMakeFiles/f4t_tcp.dir/soft_tcp.cc.o" "gcc" "src/tcp/CMakeFiles/f4t_tcp.dir/soft_tcp.cc.o.d"
  "/root/repo/src/tcp/tcb.cc" "src/tcp/CMakeFiles/f4t_tcp.dir/tcb.cc.o" "gcc" "src/tcp/CMakeFiles/f4t_tcp.dir/tcb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/f4t_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/f4t_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
