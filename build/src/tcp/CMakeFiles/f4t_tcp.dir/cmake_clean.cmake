file(REMOVE_RECURSE
  "CMakeFiles/f4t_tcp.dir/congestion.cc.o"
  "CMakeFiles/f4t_tcp.dir/congestion.cc.o.d"
  "CMakeFiles/f4t_tcp.dir/fpu_program.cc.o"
  "CMakeFiles/f4t_tcp.dir/fpu_program.cc.o.d"
  "CMakeFiles/f4t_tcp.dir/soft_tcp.cc.o"
  "CMakeFiles/f4t_tcp.dir/soft_tcp.cc.o.d"
  "CMakeFiles/f4t_tcp.dir/tcb.cc.o"
  "CMakeFiles/f4t_tcp.dir/tcb.cc.o.d"
  "libf4t_tcp.a"
  "libf4t_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
