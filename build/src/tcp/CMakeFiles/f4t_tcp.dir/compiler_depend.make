# Empty compiler generated dependencies file for f4t_tcp.
# This may be replaced when dependencies are built.
