file(REMOVE_RECURSE
  "libf4t_tcp.a"
)
