file(REMOVE_RECURSE
  "CMakeFiles/f4t_sim.dir/event_queue.cc.o"
  "CMakeFiles/f4t_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/f4t_sim.dir/logging.cc.o"
  "CMakeFiles/f4t_sim.dir/logging.cc.o.d"
  "CMakeFiles/f4t_sim.dir/stats.cc.o"
  "CMakeFiles/f4t_sim.dir/stats.cc.o.d"
  "libf4t_sim.a"
  "libf4t_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
