# Empty dependencies file for f4t_sim.
# This may be replaced when dependencies are built.
