file(REMOVE_RECURSE
  "libf4t_sim.a"
)
