# Empty compiler generated dependencies file for f4t_mem.
# This may be replaced when dependencies are built.
