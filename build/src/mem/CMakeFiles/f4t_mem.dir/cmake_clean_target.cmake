file(REMOVE_RECURSE
  "libf4t_mem.a"
)
