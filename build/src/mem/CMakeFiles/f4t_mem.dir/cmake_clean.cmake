file(REMOVE_RECURSE
  "CMakeFiles/f4t_mem.dir/dram.cc.o"
  "CMakeFiles/f4t_mem.dir/dram.cc.o.d"
  "libf4t_mem.a"
  "libf4t_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f4t_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
