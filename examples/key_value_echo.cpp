/**
 * @file
 * Key-value-store-style scenario: thousands of clients ping-ponging
 * small requests — the connectivity-stressing pattern of Section 5.3
 * (memcached-like workloads are what the paper's intro motivates with
 * "tens of thousands of flows").
 *
 * The example opens 2048 concurrent connections through two FtEngines
 * — twice what fits in the FPCs' SRAM — and shows the memory
 * orchestration keeping them all live: TCBs migrate between FPCs and
 * on-board HBM as flows take turns, invisibly to the sockets.
 */

#include <cstdio>

#include "apps/testbed.hh"
#include "apps/workloads.hh"

using namespace f4t;

int
main()
{
    sim::setVerbose(false);

    constexpr std::size_t flows = 2048;
    constexpr std::size_t threads = 8;

    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128; // 1024 flows of SRAM for 4096 flows
    config.maxFlows = 8192;
    config.dram = mem::DramConfig::hbm();
    testbed::EnginePairWorld world(threads, config);

    std::printf("key-value echo: %zu connections over engines with "
                "%zu x %zu SRAM TCB slots\n\n",
                flows, config.numFpcs, config.flowsPerFpc);

    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < threads; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeB, i, world.cpuB->core(i)));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    world.sim.runFor(sim::microsecondsToTicks(20));

    sim::Histogram latency(world.sim.stats(), "example.latency",
                           "round-trip latency (us)");
    std::vector<std::unique_ptr<apps::F4tSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    for (std::size_t i = 0; i < threads; ++i) {
        client_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeA, i, world.cpuA->core(i)));
        apps::EchoClientConfig client_config;
        client_config.peer = testbed::ipB();
        client_config.flows = flows / threads;
        client_config.messageBytes = 128;
        client_config.connectSpacing = sim::nanosecondsToTicks(100);
        clients.push_back(std::make_unique<apps::EchoClientApp>(
            *client_apis.back(), &latency, client_config));
        clients.back()->start();
    }

    // Connection storm + steady state.
    world.sim.runFor(sim::millisecondsToTicks(3));
    std::size_t connected = 0;
    for (auto &client : clients)
        connected += client->connectedFlows();
    std::printf("connected: %zu / %zu flows\n", connected, flows);

    latency.reset();
    std::uint64_t before = 0;
    for (auto &client : clients)
        before += client->roundTrips();
    sim::Tick window = sim::microsecondsToTicks(400);
    world.sim.runFor(window);
    std::uint64_t trips = 0;
    for (auto &client : clients)
        trips += client->roundTrips();
    trips -= before;

    std::printf("steady state: %.2f M round trips/s, latency p50 %.1f "
                "us, p99 %.1f us\n",
                trips / sim::ticksToSeconds(window) / 1e6,
                latency.percentile(50), latency.percentile(99));

    std::uint64_t migrations = world.engineB->scheduler().migrations();
    std::uint64_t cache_hits = world.engineB->memoryManager().cacheHits();
    std::uint64_t cache_misses =
        world.engineB->memoryManager().cacheMisses();
    std::printf("\nserver engine kept %llu flows live with %llu TCB "
                "migrations;\nTCB cache: %llu hits / %llu misses; DRAM "
                "moved %llu bytes\n",
                static_cast<unsigned long long>(
                    world.engineB->flowsActive()),
                static_cast<unsigned long long>(migrations),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(
                    world.engineB->dram().bytesTransferred()));
    return connected >= flows * 9 / 10 ? 0 : 1;
}
