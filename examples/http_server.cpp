/**
 * @file
 * Web-serving scenario (the paper's headline application): an
 * Nginx-like HTTP server runs unmodified on both stacks, loaded by a
 * wrk-like generator — the example prints the request rates and the
 * server-side CPU picture side by side.
 *
 * The key property demonstrated: the application code is written once
 * against SocketApi; swapping `LinuxSocketApi` for `F4tSocketApi` is
 * the only change, exactly like relinking a real binary against the
 * LD_PRELOAD library (Section 4.1.1).
 */

#include <cstdio>
#include <cstring>
#include <memory>

#include "apps/http.hh"
#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"
#include "host/cost_model.hh"
#include "obs/stage_report.hh"
#include "sim/causal_trace.hh"

using namespace f4t;

namespace
{

struct Outcome
{
    double mrps;
    double app_share;
    double tcp_share;
};

Outcome
serveOnLinux()
{
    baseline::LinuxHostConfig server_config;
    server_config.chargeCosts = false;
    server_config.latencyJitter = false;
    testbed::LinuxPairWorld world(8, server_config);

    apps::LinuxSocketApi server_api(world.sim, *world.hostA, 0);
    apps::HttpServerConfig server_config2;
    server_config2.stackCyclesPerRequest = host::NginxCosts::linuxTcp;
    server_config2.kernelCyclesPerRequest =
        host::NginxCosts::linuxKernelOther;
    apps::HttpServerApp server(server_api, server_config2);
    server.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    apps::LinuxSocketApi client_api(world.sim, *world.hostB, 1);
    apps::HttpLoadGenConfig gen_config;
    gen_config.peer = testbed::ipA();
    gen_config.connections = 64;
    apps::HttpLoadGenApp generator(client_api, nullptr, gen_config);
    generator.start();

    sim::Tick window = sim::millisecondsToTicks(4);
    world.sim.runFor(sim::millisecondsToTicks(1));
    std::uint64_t before = generator.responses();
    world.sim.runFor(window);

    host::CpuCore &core = world.hostA->core(0);
    double busy = core.totalBusyCycles();
    return Outcome{
        (generator.responses() - before) / sim::ticksToSeconds(window) /
            1e6,
        core.categoryCycles(tcp::CostCategory::application) / busy,
        core.categoryCycles(tcp::CostCategory::tcpStack) / busy};
}

Outcome
serveOnF4t()
{
    core::EngineConfig engine_config;
    baseline::LinuxHostConfig client_config;
    client_config.chargeCosts = false;
    client_config.latencyJitter = false;
    testbed::EngineLinuxWorld world(1, 8, engine_config, client_config);

    apps::F4tSocketApi server_api(world.sim, *world.runtime, 0,
                                  world.cpu->core(0));
    apps::HttpServerConfig server_config; // no kernel budgets on F4T
    apps::HttpServerApp server(server_api, server_config);
    server.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    apps::LinuxSocketApi client_api(world.sim, *world.linux, 1);
    apps::HttpLoadGenConfig gen_config;
    gen_config.peer = testbed::ipA();
    gen_config.connections = 64;
    apps::HttpLoadGenApp generator(client_api, nullptr, gen_config);
    generator.start();

    sim::Tick window = sim::millisecondsToTicks(4);
    world.sim.runFor(sim::millisecondsToTicks(1));
    std::uint64_t before = generator.responses();
    world.sim.runFor(window);

    host::CpuCore &core = world.cpu->core(0);
    double busy = core.totalBusyCycles();
    return Outcome{
        (generator.responses() - before) / sim::ticksToSeconds(window) /
            1e6,
        core.categoryCycles(tcp::CostCategory::application) / busy,
        core.categoryCycles(tcp::CostCategory::tcpStack) / busy};
}

/**
 * --lossy: a single bulk flow over a 10 Gbps / 250 us link with a
 * deterministic drop schedule (the same instants as fig14_cwnd), long
 * enough for the congestion window to trace the classic sawtooth.
 * Pair it with the capture flags, e.g.:
 *
 *   http_server --lossy --pcap=http.pcap --timeline=http.json \
 *               --stat-sample=http_stats.csv@1000
 *
 * and the cwnd_segments CSV column reproduces the Fig. 14 curve.
 */
int
runLossyBulk()
{
    net::FaultModel faults;
    for (int ms : {15, 40, 65, 90, 115, 135})
        faults.dropAtTicks.push_back(sim::millisecondsToTicks(ms));
    faults.seed = 20230617;

    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 16;
    config.maxFlows = 64;
    // Long link: 250 us propagation so cwnd dynamics are visible.
    testbed::EnginePairWorld world(1, config, faults, 10e9, {},
                                   sim::microsecondsToTicks(250));

    // With tracing compiled in, attach a causal tracer: each deliberate
    // drop forces a retransmission, so the wire stage shows re-entries
    // and the per-stage table below shows the tail they cause.
    std::unique_ptr<sim::ctrace::CausalTracer> tracer;
    if constexpr (sim::trace::compiledIn)
        tracer = std::make_unique<sim::ctrace::CausalTracer>(world.sim);

    // The first active flow on engine A gets ID 0.
    bench::Obs::probe(world.sim, "cwnd_segments", [&world] {
        return world.engineA->peekTcb(0).cwnd / 1460.0;
    });

    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    auto client_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 8192;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    std::printf("lossy bulk transfer, 150 ms, drops at "
                "15/40/65/90/115/135 ms\n");
    world.sim.runFor(sim::millisecondsToTicks(150));

    tcp::Tcb tcb = world.engineA->peekTcb(0);
    std::printf("final cwnd: %.1f segments, sender delivered %llu bytes\n",
                tcb.cwnd / 1460.0,
                static_cast<unsigned long long>(sender.bytesSent()));

    if (tracer) {
        std::printf("\nper-stage latency from causal-trace spans "
                    "(drops force wire re-entries):\n");
        obs::printStageTable(stdout, *tracer);
        std::printf("\ncritical path of the slowest request:\n");
        obs::printSlowestCriticalPath(stdout, *tracer);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setVerbose(false);
    bench::Obs::install(argc, argv);

    bool lossy = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--lossy") == 0)
            lossy = true;
    }
    if (lossy)
        return runLossyBulk();

    std::printf("HTTP serving, one server core, 64 connections\n");
    std::printf("(the same HttpServerApp source runs on both stacks)\n\n");

    Outcome linux_outcome = serveOnLinux();
    std::printf("Linux TCP stack:  %.2f Mrps  (app %.0f%% of CPU, "
                "kernel TCP %.0f%%)\n",
                linux_outcome.mrps, 100 * linux_outcome.app_share,
                100 * linux_outcome.tcp_share);

    Outcome f4t_outcome = serveOnF4t();
    std::printf("F4T full offload: %.2f Mrps  (app %.0f%% of CPU, "
                "kernel TCP %.0f%%)\n",
                f4t_outcome.mrps, 100 * f4t_outcome.app_share,
                100 * f4t_outcome.tcp_share);

    std::printf("\nspeedup: %.2fx (the paper reports 2.6x-2.8x)\n",
                f4t_outcome.mrps / linux_outcome.mrps);
    return 0;
}
