/**
 * @file
 * Congestion-control lab: the programmability scenario (Section 4.5).
 *
 * "Users need to modify only the FPU to program the TCP stack": this
 * example runs the same lossy long-haul transfer three times, swapping
 * the FPU program between NewReno (14-cycle), CUBIC (41-cycle), and
 * Vegas (68-cycle) — a one-line configuration change — and prints the
 * goodput and retransmission behaviour of each. Nothing else in the
 * engine changes, and none of them run any slower (Fig. 15).
 */

#include <cstdio>

#include "apps/testbed.hh"
#include "apps/workloads.hh"

using namespace f4t;

namespace
{

struct LabResult
{
    double gbps;
    std::uint64_t retransmissions;
    double final_cwnd_segments;
    unsigned fpu_latency;
};

LabResult
runAlgorithm(const std::string &algorithm)
{
    net::FaultModel faults;
    faults.dropProbability = 0.0002;
    faults.seed = 99;

    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 16;
    config.maxFlows = 64;
    config.congestionControl = algorithm; // the one-line change
    testbed::EnginePairWorld world(1, config, faults, 10e9);

    // A long link (100 us one-way) so windows matter.
    world.link = std::make_unique<net::Link>(
        world.sim, "wan", 10e9, sim::microsecondsToTicks(100), faults);
    world.link->connect(*world.engineA, *world.engineB);
    world.engineA->setTransmit([&world](net::Packet &&pkt) {
        world.link->aToB().send(std::move(pkt));
    });
    world.engineB->setTransmit([&world](net::Packet &&pkt) {
        world.link->bToA().send(std::move(pkt));
    });

    auto sink_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(sink_api, sink_config);
    sink.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto send_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 8192;
    apps::BulkSenderApp sender(send_api, sender_config);
    sender.start();

    sim::Tick window = sim::millisecondsToTicks(40);
    world.sim.runFor(sim::millisecondsToTicks(5)); // warm up
    std::uint64_t before = sink.bytesReceived();
    world.sim.runFor(window);

    LabResult result;
    result.gbps = (sink.bytesReceived() - before) * 8.0 /
                  sim::ticksToSeconds(window) / 1e9;
    result.retransmissions =
        world.engineA->packetGenerator().retransmissions();
    result.final_cwnd_segments =
        world.engineA->peekTcb(0).cwnd / 1460.0;
    result.fpu_latency = world.engineA->fpc(0).fpuLatency();
    return result;
}

} // namespace

int
main()
{
    sim::setVerbose(false);

    std::printf("congestion-control lab: 10 Gbps, 200 us RTT, 0.02%% "
                "loss, 45 ms transfer\n\n");
    std::printf("%-10s %12s %8s %16s %14s\n", "algorithm",
                "FPU latency", "Gbps", "retransmissions",
                "final cwnd");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (const char *algorithm : {"newreno", "cubic", "vegas"}) {
        LabResult result = runAlgorithm(algorithm);
        std::printf("%-10s %9u cyc %8.2f %16llu %11.0f seg\n", algorithm,
                    result.fpu_latency, result.gbps,
                    static_cast<unsigned long long>(
                        result.retransmissions),
                    result.final_cwnd_segments);
    }

    std::printf(
        "\nAll three run at the engine's full event rate despite the\n"
        "5x spread in processing latency — that is F4T's versatility\n"
        "claim. CUBIC's aggressive window recovery typically wins on\n"
        "this lossy long-haul link; Vegas backs off on queueing delay.\n");
    return 0;
}
