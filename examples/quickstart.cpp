/**
 * @file
 * Quickstart: bring up two FtEngine hosts on a simulated 100 Gbps
 * cable, open a connection through the F4T socket library, move a
 * megabyte, and print what happened.
 *
 * This is the smallest end-to-end use of the public API:
 *
 *   testbed::EnginePairWorld  — two hosts with FtEngines, cabled
 *   apps::F4tSocketApi        — the POSIX-like socket layer
 *   SocketApi handlers        — connected / readable / writable events
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "apps/f4t_socket_api.hh"
#include "apps/testbed.hh"

using namespace f4t;

int
main()
{
    sim::setVerbose(false);

    // Two hosts, each with one CPU core, an F4T runtime, and an
    // FtEngine; a 100 Gbps cable between the engines.
    testbed::EnginePairWorld world(/*cores_per_host=*/1);

    // --- server (host B) --------------------------------------------------
    apps::F4tSocketApi server(world.sim, *world.runtimeB, 0,
                              world.cpuB->core(0));
    std::uint64_t server_received = 0;
    std::vector<std::uint8_t> buffer(16 * 1024);

    apps::SocketApi::Handlers server_handlers;
    server_handlers.onAccepted = [](apps::SocketApi::ConnId conn,
                                    std::uint16_t port) {
        std::printf("[server] accepted connection %d on port %u\n", conn,
                    port);
    };
    server_handlers.onReadable = [&](apps::SocketApi::ConnId conn,
                                     std::size_t) {
        std::size_t n;
        while ((n = server.recv(conn, buffer)) > 0)
            server_received += n;
    };
    server.setHandlers(server_handlers);
    server.listen(7000);

    // --- client (host A) ----------------------------------------------------
    apps::F4tSocketApi client(world.sim, *world.runtimeA, 0,
                              world.cpuA->core(0));
    constexpr std::uint64_t megabyte = 1 << 20;
    std::uint64_t client_sent = 0;
    std::vector<std::uint8_t> chunk(4096, 0x42);

    apps::SocketApi::Handlers client_handlers;
    auto pump = [&](apps::SocketApi::ConnId conn) {
        while (client_sent < megabyte) {
            std::size_t want = std::min<std::uint64_t>(
                chunk.size(), megabyte - client_sent);
            std::size_t n = client.send(
                conn, std::span(chunk).subspan(0, want));
            client_sent += n;
            if (n < want)
                return; // buffer full; onWritable resumes
        }
        client.close(conn);
    };
    client_handlers.onConnected = [&](apps::SocketApi::ConnId conn) {
        std::printf("[client] connected as %d, sending 1 MiB...\n", conn);
        pump(conn);
    };
    client_handlers.onWritable = [&](apps::SocketApi::ConnId conn) {
        pump(conn);
    };
    client_handlers.onClosed = [](apps::SocketApi::ConnId conn) {
        std::printf("[client] connection %d fully closed\n", conn);
    };
    client.setHandlers(client_handlers);
    client.connect(testbed::ipB(), 7000);

    // Run one millisecond of simulated time — plenty at 100 Gbps.
    world.sim.runFor(sim::millisecondsToTicks(1));

    std::printf("\nsent:     %llu bytes\n",
                static_cast<unsigned long long>(client_sent));
    std::printf("received: %llu bytes\n",
                static_cast<unsigned long long>(server_received));
    std::printf("engine A generated %llu data segments\n",
                static_cast<unsigned long long>(
                    world.engineA->packetGenerator().segmentsGenerated()));
    std::printf("simulated time: %.3f ms\n",
                sim::ticksToSeconds(world.sim.now()) * 1e3);
    return server_received == megabyte ? 0 : 1;
}
