/**
 * @file
 * Engine feature tests beyond the main data path: ARP resolution,
 * ICMP echo (ping), SO_REUSEPORT distribution of accepted flows over
 * queues, flow-ID recycling across connection generations, and
 * byte-accurate wire traffic sanity.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "harness.hh"

namespace f4t
{
namespace
{

/** A raw peer that can inject arbitrary frames and records replies. */
struct RawPeer : net::PacketSink
{
    std::vector<net::Packet> received;

    void
    receivePacket(net::Packet &&pkt) override
    {
        received.push_back(std::move(pkt));
    }
};

TEST(EngineFeatures, AnswersArpRequests)
{
    sim::Simulation sim;
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 8;
    config.maxFlows = 32;
    core::FtEngine engine(sim, "engine", config);

    net::Link link(sim, "link", 100e9, 0);
    RawPeer peer;
    link.connect(engine, peer);
    engine.setTransmit(
        [&link](net::Packet &&pkt) { link.aToB().send(std::move(pkt)); });

    net::Packet request;
    request.eth.src = net::MacAddress{{9, 9, 9, 9, 9, 9}};
    request.eth.dst = net::MacAddress::broadcast();
    request.eth.etherType = net::EthernetHeader::typeArp;
    net::ArpMessage arp;
    arp.opcode = net::ArpMessage::opRequest;
    arp.senderMac = request.eth.src;
    arp.senderIp = net::Ipv4Address::fromOctets(10, 0, 0, 9);
    arp.targetIp = config.ip;
    request.l4 = arp;
    link.bToA().send(net::Packet(request));

    sim.runFor(sim::microsecondsToTicks(10));

    ASSERT_EQ(peer.received.size(), 1u);
    ASSERT_TRUE(peer.received[0].isArp());
    const net::ArpMessage &reply = peer.received[0].arp();
    EXPECT_EQ(reply.opcode, net::ArpMessage::opReply);
    EXPECT_EQ(reply.senderIp, config.ip);
    EXPECT_EQ(reply.senderMac.toString(), config.mac.toString());
    EXPECT_EQ(reply.targetIp.value, 0x0a000009u);
}

TEST(EngineFeatures, AnswersIcmpEcho)
{
    sim::Simulation sim;
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 8;
    config.maxFlows = 32;
    core::FtEngine engine(sim, "engine", config);

    net::Link link(sim, "link", 100e9, 0);
    RawPeer peer;
    link.connect(engine, peer);
    engine.setTransmit(
        [&link](net::Packet &&pkt) { link.aToB().send(std::move(pkt)); });

    net::Packet ping;
    ping.eth.src = net::MacAddress{{9, 9, 9, 9, 9, 9}};
    ping.eth.dst = config.mac;
    ping.eth.etherType = net::EthernetHeader::typeIpv4;
    net::Ipv4Header ip;
    ip.src = net::Ipv4Address::fromOctets(10, 0, 0, 9);
    ip.dst = config.ip;
    ip.protocol = net::Ipv4Header::protoIcmp;
    ping.ip = ip;
    net::IcmpMessage echo;
    echo.type = net::IcmpMessage::typeEchoRequest;
    echo.identifier = 0x1234;
    echo.sequence = 7;
    echo.payload = {1, 2, 3, 4, 5, 6, 7, 8};
    ping.l4 = echo;
    link.bToA().send(std::move(ping));

    sim.runFor(sim::microsecondsToTicks(10));

    ASSERT_EQ(peer.received.size(), 1u);
    ASSERT_TRUE(peer.received[0].isIcmp());
    const net::IcmpMessage &pong = peer.received[0].icmp();
    EXPECT_EQ(pong.type, net::IcmpMessage::typeEchoReply);
    EXPECT_EQ(pong.identifier, 0x1234);
    EXPECT_EQ(pong.sequence, 7);
    EXPECT_EQ(pong.payload, echo.payload);
    EXPECT_EQ(peer.received[0].ip->dst.value, 0x0a000009u);
}

TEST(EngineFeatures, ReuseportSpreadsAcceptedFlowsOverQueues)
{
    // Two server threads listen on the same port; accepted flows must
    // alternate between their queues (Section 4.6).
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 256;
    test::EnginePairWorld world(2, config);

    auto api0 = world.apiB(0);
    auto api1 = world.apiB(1);
    std::size_t accepted0 = 0, accepted1 = 0;
    apps::SocketApi::Handlers handlers0;
    handlers0.onAccepted = [&](int, std::uint16_t) { ++accepted0; };
    api0.setHandlers(handlers0);
    api0.listen(9000);
    apps::SocketApi::Handlers handlers1;
    handlers1.onAccepted = [&](int, std::uint16_t) { ++accepted1; };
    api1.setHandlers(handlers1);
    api1.listen(9000);
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto client = world.apiA(0);
    apps::SocketApi::Handlers client_handlers;
    client.setHandlers(client_handlers);
    for (int i = 0; i < 8; ++i)
        client.connect(test::ipB(), 9000);
    world.sim.runFor(sim::millisecondsToTicks(1));

    EXPECT_EQ(accepted0 + accepted1, 8u);
    EXPECT_EQ(accepted0, 4u);
    EXPECT_EQ(accepted1, 4u);
}

TEST(EngineFeatures, FlowIdsRecycleAcrossGenerations)
{
    // Open and fully close connections repeatedly: the engine must
    // recycle its flow IDs and TCB slots, never leaking.
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 8;
    config.maxFlows = 16;
    config.fpu.timeWaitUs = 200; // shortened 2*MSL for the test
    test::EnginePairWorld world(1, config);

    auto server = world.apiB(0);
    apps::SocketApi::Handlers server_handlers;
    server_handlers.onPeerClosed = [&](int conn) { server.close(conn); };
    server.setHandlers(server_handlers);
    server.listen(7);
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto client = world.apiA(0);
    int closed = 0;
    apps::SocketApi::Handlers client_handlers;
    client_handlers.onConnected = [&](int conn) { client.close(conn); };
    client_handlers.onClosed = [&](int) { ++closed; };
    client.setHandlers(client_handlers);

    // 48 sequential connections through a 16-ID space.
    for (int i = 0; i < 48; ++i) {
        client.connect(test::ipB(), 7);
        world.sim.runFor(sim::microsecondsToTicks(120));
    }
    world.sim.runFor(sim::millisecondsToTicks(1));

    EXPECT_EQ(closed, 48);
    EXPECT_EQ(world.engineA->flowsActive(), 0u);
    EXPECT_EQ(world.engineB->flowsActive(), 0u);
}

TEST(EngineFeatures, CubicEngineTransfersEndToEnd)
{
    // The engine works identically with a different FPU program.
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 16;
    config.maxFlows = 64;
    config.congestionControl = "cubic";
    test::EnginePairWorld world(1, config);
    EXPECT_EQ(world.engineA->fpc(0).fpuLatency(), 41u);

    auto server = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(server, sink_config);
    sink.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto client = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 1460;
    apps::BulkSenderApp sender(client, sender_config);
    sender.start();

    world.sim.runFor(sim::millisecondsToTicks(1));
    EXPECT_GT(sink.bytesReceived(), 1'000'000u);
    EXPECT_EQ(sink.patternErrors(), 0u);
}

} // namespace
} // namespace f4t
