/**
 * @file
 * Tests for the baseline systems and the application layer: the
 * w-RMW stalling engine's timing and functional equivalence, the
 * TONIC analytic model, the Linux host's demultiplexing and cost
 * accounting, and the HTTP applications end to end.
 */

#include <gtest/gtest.h>

#include "apps/http.hh"
#include "apps/workloads.hh"
#include "baseline/stalling_engine.hh"
#include "baseline/tonic_model.hh"
#include "harness.hh"

namespace f4t
{
namespace
{

TEST(StallingEngine, OccupancyIs17CyclesPerEvent)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config; // 16 + 1
    baseline::StallingEngine engine(sim, "wrmw", sim.netClock(), program,
                                    config);
    EXPECT_EQ(engine.cyclesPerEvent(), 17u);

    tcp::FlowId flow = engine.createSyntheticFlow();
    constexpr int n = 100;
    for (int i = 1; i <= n; ++i) {
        tcp::TcpEvent ev;
        ev.flow = flow;
        ev.type = tcp::TcpEventType::userSend;
        ev.pointer =
            tcp::FpuProgram::initialSequence(flow) + 1 + i * 10;
        engine.injectEvent(ev);
    }
    sim::Tick start = sim.now();
    while (engine.eventsProcessed() < n)
        sim.runFor(sim.netClock().period());
    double cycles = static_cast<double>(sim.now() - start) /
                    sim.netClock().period();
    EXPECT_NEAR(cycles, 17.0 * n, 20);
}

TEST(StallingEngine, FunctionallyMatchesTheFpuProgram)
{
    // Same program, different processing architecture: the final TCB
    // must agree with a direct sequential application.
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config;
    baseline::StallingEngine engine(sim, "wrmw", sim.netClock(), program,
                                    config);
    tcp::FlowId flow = engine.createSyntheticFlow();

    tcp::Tcb oracle = engine.tcb(flow);
    for (int i = 1; i <= 50; ++i) {
        tcp::TcpEvent ev;
        ev.flow = flow;
        ev.type = tcp::TcpEventType::userSend;
        ev.pointer =
            tcp::FpuProgram::initialSequence(flow) + 1 + i * 100;
        engine.injectEvent(ev);

        tcp::EventRecord record;
        tcp::accumulateEvent(record, oracle, ev);
        tcp::Tcb merged = tcp::merge(oracle, record);
        tcp::FpuActions actions;
        program.process(merged, sim.now() / 1'000'000, actions);
        oracle = merged;
    }
    sim.runFor(sim::microsecondsToTicks(20));

    EXPECT_EQ(engine.tcb(flow).req, oracle.req);
    EXPECT_EQ(engine.tcb(flow).sndNxt, oracle.sndNxt);
}

TEST(StallingEngine, SramBoundRefusesMoreFlows)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config;
    config.maxFlows = 4;
    baseline::StallingEngine engine(sim, "wrmw", sim.netClock(), program,
                                    config);
    for (int i = 0; i < 4; ++i)
        engine.createSyntheticFlow();
    EXPECT_DEATH(engine.createSyntheticFlow(), "SRAM full");
}

TEST(TonicModel, SegmentQuantizationShapesThroughput)
{
    baseline::TonicModel tonic;
    // Idealized: linear in request size.
    EXPECT_DOUBLE_EQ(tonic.idealThroughputBps(128), 100e6 * 128 * 8);
    // Native: a 129 B request costs two cycles.
    EXPECT_DOUBLE_EQ(tonic.nativeRequestsPerSecond(128), 100e6);
    EXPECT_DOUBLE_EQ(tonic.nativeRequestsPerSecond(129), 50e6);
    // Only single-cycle algorithms fit.
    EXPECT_TRUE(tonic.supportsAlgorithm(1));
    EXPECT_FALSE(tonic.supportsAlgorithm(14)); // NewReno needs 14
    EXPECT_EQ(tonic.maxFlows, 1024u);
}

TEST(LinuxHost, DemuxesFlowsToOwningCores)
{
    test::LinuxPairWorld world(4);
    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    // Clients on two different cores of host A: both streams must
    // arrive despite sharing one IP on the receiving side.
    auto api1 = world.apiA(1);
    auto api2 = world.apiA(2);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 1024;
    apps::BulkSenderApp sender1(api1, sender_config);
    apps::BulkSenderApp sender2(api2, sender_config);
    sender1.start();
    sender2.start();

    world.sim.runFor(sim::millisecondsToTicks(1));
    EXPECT_GT(sender1.bytesSent(), 100'000u);
    EXPECT_GT(sender2.bytesSent(), 100'000u);
    EXPECT_GT(sink.bytesReceived(), 200'000u);
    // Cycle accounting landed on the right cores.
    EXPECT_GT(world.hostA->core(1).totalBusyCycles(), 0.0);
    EXPECT_GT(world.hostA->core(2).totalBusyCycles(), 0.0);
    EXPECT_DOUBLE_EQ(world.hostA->core(3).totalBusyCycles(), 0.0);
}

TEST(HttpApps, ServeAndMeasureOverSoftStack)
{
    test::LinuxPairWorld world(2);
    world.hostA->setLatencyJitter(false);
    world.hostB->setLatencyJitter(false);

    auto server_api = world.apiA(0);
    apps::HttpServerConfig server_config;
    server_config.responseBytes = 256;
    apps::HttpServerApp server(server_api, server_config);
    server.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto client_api = world.apiB(0);
    sim::Histogram latency(world.sim.stats(), "test.httpLatency",
                           "latency (us)");
    apps::HttpLoadGenConfig gen_config;
    gen_config.peer = test::ipA();
    gen_config.connections = 8;
    apps::HttpLoadGenApp generator(client_api, &latency, gen_config);
    generator.start();

    world.sim.runFor(sim::millisecondsToTicks(3));

    EXPECT_EQ(generator.connectedFlows(), 8u);
    EXPECT_GT(generator.responses(), 500u);
    EXPECT_EQ(server.requestsServed(), generator.responses());
    EXPECT_GT(latency.count(), 100u);
    EXPECT_GT(latency.percentile(50), 0.0);
}

TEST(HttpApps, PipelinedRequestsAreAllAnswered)
{
    // Two requests that land in one segment must both be served (the
    // server's buffer scan handles back-to-back requests).
    test::LinuxPairWorld world(1);
    world.hostA->setLatencyJitter(false);
    world.hostB->setLatencyJitter(false);

    auto server_api = world.apiA(0);
    apps::HttpServerApp server(server_api, apps::HttpServerConfig{});
    server.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    tcp::SoftTcpStack &client = world.hostB->stack(0);
    std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
    std::uint64_t got = 0;
    tcp::SoftTcpCallbacks callbacks;
    callbacks.onConnected = [&](tcp::SoftConnId id) {
        client.send(id, std::span(reinterpret_cast<const std::uint8_t *>(
                                      two.data()),
                                  two.size()));
    };
    callbacks.onReadable = [&](tcp::SoftConnId id, std::size_t) {
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = client.recv(id, std::span<std::uint8_t>(buf, 4096))) >
               0) {
            got += n;
        }
    };
    client.setCallbacks(callbacks);
    client.connect(test::ipA(), 80);

    world.sim.runFor(sim::millisecondsToTicks(1));
    EXPECT_EQ(server.requestsServed(), 2u);
    EXPECT_EQ(got, 512u); // two 256 B responses
}

TEST(EchoApps, RoundTripsBalanceAcrossManyFlows)
{
    test::LinuxPairWorld world(1);
    world.hostA->setLatencyJitter(false);
    world.hostB->setLatencyJitter(false);

    auto server_api = world.apiA(0);
    apps::EchoServerConfig server_config;
    apps::EchoServerApp server(server_api, server_config);
    server.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto client_api = world.apiB(0);
    apps::EchoClientConfig client_config;
    client_config.peer = test::ipA();
    client_config.flows = 32;
    apps::EchoClientApp client(client_api, nullptr, client_config);
    client.start();

    world.sim.runFor(sim::millisecondsToTicks(2));
    EXPECT_EQ(client.connectedFlows(), 32u);
    EXPECT_GT(client.roundTrips(), 300u);
    EXPECT_EQ(server.messagesEchoed(), client.roundTrips());
}

} // namespace
} // namespace f4t
