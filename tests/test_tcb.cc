/**
 * @file
 * Tests for the dual-memory event semantics (Sections 4.2.1 and
 * 4.2.3): accumulation by overwriting, per-field valid bits, the
 * merge that reconstructs an up-to-date TCB, duplicate-ACK counting,
 * and coalescing rules.
 *
 * The central property test checks the paper's core claim: deferring
 * events in the event record and merging later is equivalent to
 * applying every event immediately (atomic RMW), for any interleaving
 * of cumulative events.
 */

#include <gtest/gtest.h>

#include "net/seq.hh"
#include "sim/random.hh"
#include "tcp/tcb.hh"

namespace f4t::tcp
{
namespace
{

Tcb
establishedTcb()
{
    Tcb tcb;
    tcb.flowId = 1;
    tcb.state = ConnState::established;
    tcb.iss = 1000;
    tcb.sndUna = 1001;
    tcb.sndUnaProcessed = 1001;
    tcb.sndNxt = 1001;
    tcb.req = 1001;
    tcb.sndWnd = 65536;
    tcb.irs = 5000;
    tcb.rcvNxt = 5001;
    tcb.userRead = 5001;
    tcb.lastAckSent = 5001;
    tcb.lastRcvNotified = 5001;
    tcb.lastAckNotified = 1001;
    tcb.cwnd = 14600;
    return tcb;
}

TcpEvent
sendEvent(FlowId flow, net::SeqNum pointer)
{
    TcpEvent ev;
    ev.flow = flow;
    ev.type = TcpEventType::userSend;
    ev.pointer = pointer;
    return ev;
}

TcpEvent
segmentEvent(FlowId flow, net::SeqNum ack, net::SeqNum rcv_up_to,
             std::uint32_t wnd = 65536, bool data = false)
{
    TcpEvent ev;
    ev.flow = flow;
    ev.type = TcpEventType::rxSegment;
    ev.tcpFlags = net::TcpFlags::ack;
    ev.peerAck = ack;
    ev.rcvUpTo = rcv_up_to;
    ev.peerWnd = wnd;
    ev.dataArrived = data;
    return ev;
}

TEST(EventRecord, UserSendOverwritesWithNewestPointer)
{
    Tcb stored = establishedTcb();
    EventRecord record;

    accumulateEvent(record, stored, sendEvent(1, 1101));
    accumulateEvent(record, stored, sendEvent(1, 1301));
    EXPECT_TRUE(record.validMask & EventValid::req);
    EXPECT_EQ(record.req, 1301u);

    // An older pointer never regresses the accumulated value.
    accumulateEvent(record, stored, sendEvent(1, 1201));
    EXPECT_EQ(record.req, 1301u);
}

TEST(EventRecord, PaperWorkedExample)
{
    // Section 4.2.1: previous REQ is 1000; a 300 B send writes 1300.
    Tcb stored;
    stored.req = 1000;
    stored.sndNxt = 1000;
    stored.sndUna = 1000;
    EventRecord record;
    accumulateEvent(record, stored, sendEvent(0, 1300));
    Tcb merged = merge(stored, record);
    EXPECT_EQ(merged.req, 1300u);

    // Section 4.2.2: eight 100 B requests at REQ 1000 equal one 800 B
    // request: REQ becomes 1800.
    EventRecord batch;
    for (int i = 1; i <= 8; ++i)
        accumulateEvent(batch, stored, sendEvent(0, 1000 + 100 * i));
    EXPECT_EQ(merge(stored, batch).req, 1800u);
}

TEST(EventRecord, DuplicateAckIncrementsCounter)
{
    Tcb stored = establishedTcb();
    stored.sndNxt = 3001; // data in flight
    EventRecord record;

    // Three identical pure ACKs -> three increments.
    for (int i = 0; i < 3; ++i) {
        bool dup = accumulateEvent(record, stored,
                                   segmentEvent(1, 1001, 5001));
        EXPECT_TRUE(dup);
    }
    EXPECT_EQ(record.dupAckIncr, 3);
    EXPECT_TRUE(record.validMask & EventValid::dupAck);

    Tcb merged = merge(stored, record);
    EXPECT_EQ(merged.dupAcks, 3);
}

TEST(EventRecord, AdvancingAckIsNotDuplicate)
{
    Tcb stored = establishedTcb();
    stored.sndNxt = 3001;
    EventRecord record;

    EXPECT_FALSE(accumulateEvent(record, stored,
                                 segmentEvent(1, 2001, 5001)));
    EXPECT_EQ(record.dupAckIncr, 0);
    EXPECT_EQ(record.peerAck, 2001u);

    // Same ACK again, but now it matches the *accumulated* peerAck:
    // the handler's merged view makes it a duplicate.
    EXPECT_TRUE(accumulateEvent(record, stored,
                                segmentEvent(1, 2001, 5001)));
    EXPECT_EQ(record.dupAckIncr, 1);
}

TEST(EventRecord, DataBearingSegmentIsNeverDuplicateAck)
{
    Tcb stored = establishedTcb();
    stored.sndNxt = 3001;
    EventRecord record;
    EXPECT_FALSE(accumulateEvent(
        record, stored,
        segmentEvent(1, 1001, 5101, 65536, /*data=*/true)));
    EXPECT_TRUE(record.flags & EventFlags::dataArrived);
}

TEST(EventRecord, WindowChangeIsNotDuplicateAck)
{
    Tcb stored = establishedTcb();
    stored.sndNxt = 3001;
    EventRecord record;
    EXPECT_FALSE(accumulateEvent(record, stored,
                                 segmentEvent(1, 1001, 5001, 32768)));
    EXPECT_EQ(record.peerWnd, 32768u);
}

TEST(EventRecord, FlagsAccumulateByOr)
{
    Tcb stored = establishedTcb();
    EventRecord record;

    TcpEvent timeout;
    timeout.flow = 1;
    timeout.type = TcpEventType::timeout;
    timeout.timeoutKind = TimeoutKind::retransmit;
    accumulateEvent(record, stored, timeout);
    timeout.timeoutKind = TimeoutKind::probe;
    accumulateEvent(record, stored, timeout);

    EXPECT_TRUE(record.flags & EventFlags::rtxTimeout);
    EXPECT_TRUE(record.flags & EventFlags::probeTimeout);

    Tcb merged = merge(stored, record);
    EXPECT_TRUE(merged.pendingFlags & EventFlags::rtxTimeout);
    EXPECT_TRUE(merged.pendingFlags & EventFlags::probeTimeout);
}

TEST(EventRecord, SynDeliversPeerIsnThroughMerge)
{
    Tcb stored;
    stored.flowId = 2;
    stored.passiveOpen = true;
    EventRecord record;

    TcpEvent syn;
    syn.flow = 2;
    syn.type = TcpEventType::rxSegment;
    syn.tcpFlags = net::TcpFlags::syn;
    syn.peerIsn = 0x9000'0000u;
    syn.rcvUpTo = 0x9000'0001u;
    accumulateEvent(record, stored, syn);

    Tcb merged = merge(stored, record);
    EXPECT_EQ(merged.irs, 0x9000'0000u);
    EXPECT_EQ(merged.rcvNxt, 0x9000'0001u);
    EXPECT_EQ(merged.userRead, 0x9000'0001u);
    EXPECT_TRUE(merged.pendingFlags & EventFlags::synSeen);
}

TEST(Merge, EventFieldsOverrideOnlyWithValidBits)
{
    Tcb stored = establishedTcb();
    EventRecord record; // empty: no valid bits
    Tcb merged = merge(stored, record);
    EXPECT_EQ(merged.req, stored.req);
    EXPECT_EQ(merged.sndUna, stored.sndUna);
    EXPECT_EQ(merged.rcvNxt, stored.rcvNxt);
    EXPECT_EQ(merged.pendingFlags, 0u);
}

TEST(Merge, StaleFpuWritebackNeverRegressesCumulativeState)
{
    // The FPU's write-back is older than a fresher handler write: the
    // merge must keep the maximum (Section 4.2.3's "late writes from
    // FPU are stale").
    Tcb stored = establishedTcb();
    stored.sndUna = 2001; // FPU already saw an ACK up to 2001
    EventRecord record;
    record.validMask = EventValid::peerAck;
    record.peerAck = 1500; // older accumulated value
    EXPECT_EQ(merge(stored, record).sndUna, 2001u);

    record.peerAck = 2500; // newer
    EXPECT_EQ(merge(stored, record).sndUna, 2500u);
}

/**
 * Property: for random streams of cumulative events, accumulate+merge
 * equals the sequential oracle that applies each event immediately.
 */
class DeferredEquivalence : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(DeferredEquivalence, AccumulateThenMergeMatchesImmediateApply)
{
    sim::Random rng(GetParam());
    Tcb stored = establishedTcb();
    stored.sndNxt = 2001;

    // Oracle state: apply every event immediately.
    net::SeqNum oracle_req = stored.req;
    net::SeqNum oracle_user = stored.userRead;
    net::SeqNum oracle_ack = stored.sndUna;
    std::uint32_t oracle_wnd = stored.sndWnd;
    int oracle_dups = stored.dupAcks;

    EventRecord record;
    net::SeqNum req_ptr = stored.req;
    net::SeqNum ack_ptr = stored.sndUna;
    net::SeqNum rcv_ptr = stored.rcvNxt;

    for (int i = 0; i < 500; ++i) {
        switch (rng.below(4)) {
          case 0: { // user send advances req
            req_ptr += rng.below(2000);
            accumulateEvent(record, stored, sendEvent(1, req_ptr));
            oracle_req = net::seqMax(oracle_req, req_ptr);
            break;
          }
          case 1: { // user recv advances read pointer
            TcpEvent ev;
            ev.flow = 1;
            ev.type = TcpEventType::userRecv;
            oracle_user += rng.below(500);
            ev.pointer = oracle_user;
            accumulateEvent(record, stored, ev);
            break;
          }
          case 2: { // advancing ACK segment
            ack_ptr += 1 + rng.below(1000);
            std::uint32_t wnd = 32768 + static_cast<std::uint32_t>(
                                            rng.below(32768));
            accumulateEvent(record, stored,
                            segmentEvent(1, ack_ptr, rcv_ptr, wnd));
            oracle_ack = net::seqMax(oracle_ack, ack_ptr);
            oracle_wnd = wnd;
            // Note: accumulated dup-ACK increments survive later
            // ACKs within one window; only the FPU resets the count.
            break;
          }
          case 3: { // pure duplicate ACK
            bool dup = accumulateEvent(
                record, stored,
                segmentEvent(1, ack_ptr, rcv_ptr, oracle_wnd));
            // Duplicate only when ack equals the accumulated value and
            // data is outstanding.
            bool expect_dup =
                net::seqGt(stored.sndNxt, ack_ptr) &&
                ((record.validMask & EventValid::peerAck)
                     ? ack_ptr == record.peerAck
                     : ack_ptr == stored.sndUna);
            EXPECT_EQ(dup, expect_dup);
            if (dup)
                ++oracle_dups;
            break;
          }
        }
    }

    Tcb merged = merge(stored, record);
    EXPECT_EQ(merged.req, oracle_req);
    EXPECT_EQ(merged.userRead, oracle_user);
    EXPECT_EQ(merged.sndUna, oracle_ack);
    EXPECT_EQ(merged.sndWnd, oracle_wnd);
    // dupAcks accumulated as stored.dupAcks + increments (capped).
    EXPECT_EQ(merged.dupAcks,
              std::min(255, stored.dupAcks + oracle_dups));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeferredEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------
// coalescing (Section 4.4.1)
// ---------------------------------------------------------------------

TEST(Coalesce, UserSendsAlwaysCoalesce)
{
    TcpEvent a = sendEvent(1, 1100);
    TcpEvent b = sendEvent(1, 1500);
    ASSERT_TRUE(TcpEvent::canCoalesce(a, b));
    TcpEvent::coalesce(a, b);
    EXPECT_EQ(a.pointer, 1500u);
}

TEST(Coalesce, DifferentFlowsNeverCoalesce)
{
    EXPECT_FALSE(TcpEvent::canCoalesce(sendEvent(1, 100),
                                       sendEvent(2, 100)));
}

TEST(Coalesce, MonotoneSegmentsCoalesce)
{
    TcpEvent a = segmentEvent(1, 1000, 5000, 100, true);
    TcpEvent b = segmentEvent(1, 1500, 6460, 200, true);
    ASSERT_TRUE(TcpEvent::canCoalesce(a, b));
    TcpEvent::coalesce(a, b);
    EXPECT_EQ(a.peerAck, 1500u);
    EXPECT_EQ(a.rcvUpTo, 6460u);
    EXPECT_EQ(a.peerWnd, 200u);
    EXPECT_TRUE(a.dataArrived);
}

TEST(Coalesce, DuplicateAcksNeverCoalesce)
{
    TcpEvent a = segmentEvent(1, 1000, 5000);
    TcpEvent b = segmentEvent(1, 1000, 5000);
    a.isDupAck = true;
    EXPECT_FALSE(TcpEvent::canCoalesce(a, b));
    a.isDupAck = false;
    b.isDupAck = true;
    EXPECT_FALSE(TcpEvent::canCoalesce(a, b));
}

TEST(Coalesce, ReorderingEvidenceBlocksCoalescing)
{
    // The later segment's cumulative state went backwards: a sign of
    // reordering; coalescing would lose information.
    TcpEvent a = segmentEvent(1, 2000, 6000);
    TcpEvent b = segmentEvent(1, 1500, 5500);
    EXPECT_FALSE(TcpEvent::canCoalesce(a, b));
}

TEST(Coalesce, ControlFlagsBlockCoalescing)
{
    TcpEvent a = segmentEvent(1, 1000, 5000);
    TcpEvent fin = segmentEvent(1, 1000, 5100);
    fin.tcpFlags |= net::TcpFlags::fin;
    EXPECT_FALSE(TcpEvent::canCoalesce(a, fin));
    EXPECT_FALSE(TcpEvent::canCoalesce(fin, a));
}

TEST(Coalesce, TimeoutsOfSameKindCoalesce)
{
    TcpEvent a, b;
    a.flow = b.flow = 1;
    a.type = b.type = TcpEventType::timeout;
    a.timeoutKind = b.timeoutKind = TimeoutKind::retransmit;
    EXPECT_TRUE(TcpEvent::canCoalesce(a, b));
    b.timeoutKind = TimeoutKind::probe;
    EXPECT_FALSE(TcpEvent::canCoalesce(a, b));
}

} // namespace
} // namespace f4t::tcp
