/**
 * @file
 * RX-path unit tests: the RX parser's handling of unknown / malformed
 * traffic and its bounded out-of-sequence reassembly, wire-level
 * rejection of truncated or unsupported frames, and the packet
 * generator's MSS segmentation with the paper's 78 B-per-packet wire
 * overhead accounting (40 B TCP/IP + 18 B Ethernet/FCS + 20 B
 * preamble/IFG).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/packet_generator.hh"
#include "core/rx_parser.hh"
#include "harness.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"

namespace f4t::core
{
namespace
{

using net::FourTuple;
using net::Ipv4Address;
using net::MacAddress;
using net::Packet;
using net::SeqNum;
using net::TcpFlags;
using net::TcpHeader;

const Ipv4Address clientIp = Ipv4Address::fromOctets(10, 0, 0, 1);
const Ipv4Address serverIp = Ipv4Address::fromOctets(10, 0, 0, 2);
constexpr std::uint16_t clientPort = 40000;
constexpr std::uint16_t serverPort = 7001;

/** The connection as keyed by the receiving (server) side. */
FourTuple
serverTuple()
{
    return FourTuple{serverIp, serverPort, clientIp, clientPort};
}

/** A client->server packet as the server's RX parser sees it. */
Packet
rxPacket(SeqNum seq, std::uint8_t flags, std::size_t payload_len)
{
    TcpHeader tcp;
    tcp.srcPort = clientPort;
    tcp.dstPort = serverPort;
    tcp.seq = seq;
    tcp.flags = flags;
    tcp.window = 64 * 1024;
    net::PayloadBuffer payload(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
        payload[i] = static_cast<std::uint8_t>(seq + i);
    return Packet::makeTcp(MacAddress{}, MacAddress{}, clientIp,
                           serverIp, tcp, std::move(payload));
}

struct Delivery
{
    tcp::FlowId flow;
    SeqNum seq;
    std::vector<std::uint8_t> bytes;
};

struct RecordingSink : PayloadSink
{
    std::vector<Delivery> deliveries;

    void
    deliverPayload(tcp::FlowId flow, SeqNum seq,
                   std::span<const std::uint8_t> data) override
    {
        deliveries.push_back(
            {flow, seq, std::vector<std::uint8_t>(data.begin(), data.end())});
    }
};

class RxParserTest : public ::testing::Test
{
  protected:
    RxParserTest() : table(64), parser(sim, "rx", table, makeConfig())
    {
        parser.setEventSink(
            [this](const tcp::TcpEvent &ev) { events.push_back(ev); });
        parser.setPayloadSink(&sink);
    }

    static RxParserConfig
    makeConfig()
    {
        RxParserConfig config;
        config.maxFlows = 64;
        config.receiveBufferBytes = 4096;
        config.maxOooChunks = 2;
        return config;
    }

    /** Establish flow 5 with a SYN carrying ISN @p isn. */
    tcp::FlowId
    establish(SeqNum isn)
    {
        table.insert(serverTuple(), 5);
        parser.processPacket(rxPacket(isn, TcpFlags::syn, 0));
        return 5;
    }

    sim::Simulation sim;
    RxParser::FlowLookup table;
    RxParser parser;
    RecordingSink sink;
    std::vector<tcp::TcpEvent> events;
};

TEST_F(RxParserTest, NonSynForUnknownTupleIsDroppedWithoutEvent)
{
    parser.processPacket(rxPacket(100, TcpFlags::ack, 32));

    EXPECT_EQ(parser.packetsDropped(), 1u);
    EXPECT_EQ(parser.packetsParsed(), 0u);
    EXPECT_TRUE(events.empty());
    EXPECT_TRUE(sink.deliveries.empty());
}

TEST_F(RxParserTest, SynAckDoesNotCountAsConnectionAttempt)
{
    // Only a *pure* SYN may allocate a flow: a stray SYN|ACK for an
    // unknown tuple must not reach the SYN handler.
    bool handler_called = false;
    parser.setSynHandler([&](const FourTuple &, MacAddress) {
        handler_called = true;
        return tcp::FlowId{1};
    });

    parser.processPacket(
        rxPacket(100, TcpFlags::syn | TcpFlags::ack, 0));

    EXPECT_FALSE(handler_called);
    EXPECT_EQ(parser.packetsDropped(), 1u);
    EXPECT_TRUE(events.empty());
}

TEST_F(RxParserTest, SynHandlerRefusalDropsThePacket)
{
    parser.setSynHandler([](const FourTuple &, MacAddress) {
        return tcp::invalidFlowId; // listen backlog full
    });
    parser.processPacket(rxPacket(100, TcpFlags::syn, 0));
    EXPECT_EQ(parser.packetsDropped(), 1u);
    EXPECT_TRUE(events.empty());

    // An accepted SYN parses and reports the peer's ISN.
    parser.setSynHandler([this](const FourTuple &tuple, MacAddress) {
        table.insert(tuple, 9);
        return tcp::FlowId{9};
    });
    parser.processPacket(rxPacket(100, TcpFlags::syn, 0));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].flow, 9u);
    EXPECT_TRUE((events[0].tcpFlags & TcpFlags::syn) != 0);
    EXPECT_EQ(events[0].peerIsn, 100u);
    EXPECT_EQ(parser.rxStart(9), 101u);
}

TEST_F(RxParserTest, OutOfOrderSegmentsHoldTheBoundaryUntilTheGapFills)
{
    const SeqNum isn = 1000;
    establish(isn);
    events.clear();

    // Second segment arrives first: DMAed immediately (out of place),
    // but the application-visible boundary must not move past the gap.
    parser.processPacket(rxPacket(isn + 9, TcpFlags::ack, 8));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].dataArrived);
    EXPECT_EQ(events[0].rcvUpTo, isn + 1);
    ASSERT_EQ(sink.deliveries.size(), 1u);
    EXPECT_EQ(sink.deliveries[0].seq, isn + 9);
    EXPECT_EQ(sink.deliveries[0].bytes.size(), 8u);

    // The gap fill advances the boundary over both segments at once.
    parser.processPacket(rxPacket(isn + 1, TcpFlags::ack, 8));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[1].rcvUpTo, isn + 17);
    EXPECT_EQ(parser.packetsDropped(), 0u);
}

TEST_F(RxParserTest, OooChunkStorageBoundDropsUntilRetransmissionHeals)
{
    const SeqNum isn = 2000;
    establish(isn);
    events.clear();

    // maxOooChunks = 2: two disjoint out-of-sequence chunks fit, the
    // third is dropped (hardware chunk store exhausted).
    parser.processPacket(rxPacket(isn + 11, TcpFlags::ack, 4));
    parser.processPacket(rxPacket(isn + 21, TcpFlags::ack, 4));
    EXPECT_EQ(parser.packetsDropped(), 0u);
    parser.processPacket(rxPacket(isn + 31, TcpFlags::ack, 4));
    EXPECT_EQ(parser.packetsDropped(), 1u);

    // A retransmission from the boundary is always accepted, merges
    // the stored chunks, and the boundary jumps over everything.
    parser.processPacket(rxPacket(isn + 1, TcpFlags::ack, 24));
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().rcvUpTo, isn + 25);
}

TEST_F(RxParserTest, FinIsReportedOnceAllPrecedingDataIsReassembled)
{
    const SeqNum isn = 3000;
    establish(isn);
    events.clear();

    // FIN arrives while [isn+1, isn+9) is still missing: recorded but
    // not yet reported to the event pipeline.
    parser.processPacket(rxPacket(isn + 9, TcpFlags::fin | TcpFlags::ack, 0));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE((events[0].tcpFlags & TcpFlags::fin) == 0);

    // Once the data gap fills, the FIN consumes its sequence number.
    parser.processPacket(rxPacket(isn + 1, TcpFlags::ack, 8));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_TRUE((events[1].tcpFlags & TcpFlags::fin) != 0);
    EXPECT_EQ(events[1].rcvUpTo, isn + 10);
}

TEST(PacketParsing, TruncatedFramesAreRejectedNotMisparsed)
{
    Packet pkt = rxPacket(100, TcpFlags::ack, 100);
    std::vector<std::uint8_t> wire = pkt.serialize();
    ASSERT_TRUE(Packet::parseWire(wire).has_value());

    // Cut the frame inside every header and inside the payload: the
    // parser must reject each truncation instead of reading garbage.
    for (std::size_t len : {std::size_t{0}, std::size_t{10},  // mid-Ethernet
                            std::size_t{20},                  // mid-IPv4
                            std::size_t{40},                  // mid-TCP
                            wire.size() - 1}) {               // mid-payload
        std::span<const std::uint8_t> cut(wire.data(), len);
        EXPECT_FALSE(Packet::parseWire(cut).has_value())
            << "truncation to " << len << " bytes parsed";
    }
}

TEST(PacketParsing, UnsupportedProtocolsAreRejected)
{
    Packet pkt = rxPacket(100, TcpFlags::ack, 100);
    std::vector<std::uint8_t> wire = pkt.serialize();

    // Unknown ethertype (IPv6).
    std::vector<std::uint8_t> bad_ether = wire;
    bad_ether[12] = 0x86;
    bad_ether[13] = 0xdd;
    EXPECT_FALSE(Packet::parseWire(bad_ether).has_value());

    // Unsupported IP protocol (UDP) at offset 14 + 9.
    std::vector<std::uint8_t> bad_proto = wire;
    bad_proto[23] = 17;
    EXPECT_FALSE(Packet::parseWire(bad_proto).has_value());

    // IP total length claiming more bytes than the frame carries.
    std::vector<std::uint8_t> bad_len = wire;
    bad_len[16] = 0xff;
    bad_len[17] = 0xff;
    EXPECT_FALSE(Packet::parseWire(bad_len).has_value());
}

class PacketGeneratorTest : public ::testing::Test
{
  protected:
    PacketGeneratorTest()
        : domain("mac", 322.265625e6, sim.queue()),
          generator(sim, "pktgen", domain, mss)
    {
        generator.setAddressLookup([](tcp::FlowId) {
            return FlowAddress{FourTuple{serverIp, serverPort, clientIp,
                                         clientPort},
                               MacAddress{}, MacAddress{}};
        });
        generator.setTransmit([this](Packet &&pkt) {
            // The batched TX path hands segments over early with the
            // modeled emission tick stamped in txReady; record the
            // effective emission time so the pacing assertions hold in
            // both modes.
            sendTimes.push_back(
                std::max(sim.now(), static_cast<sim::Tick>(pkt.txReady)));
            sent.push_back(std::move(pkt));
        });
    }

    static constexpr std::uint16_t mss = 1460;

    sim::Simulation sim;
    sim::ClockDomain domain;
    PacketGenerator generator;
    std::vector<Packet> sent;
    std::vector<sim::Tick> sendTimes;
};

/** Transmit payload whose bytes are a pure function of the wire seq. */
struct PatternSource : PayloadSource
{
    sim::Tick
    fetchPayload(tcp::FlowId, SeqNum seq,
                 std::span<std::uint8_t> out) override
    {
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] = static_cast<std::uint8_t>((seq + i) * 7);
        return 0;
    }
};

TEST_F(PacketGeneratorTest, SplitsAtMssAndChargesThePaperWireOverhead)
{
    PatternSource source;
    generator.setPayloadSource(&source);

    tcp::SegmentRequest req;
    req.flow = 1;
    req.seq = 5000;
    req.length = 2 * mss + 80;
    req.ack = 777;
    req.window = 32 * 1024;
    req.fin = true;
    generator.requestSegments(req);
    sim.run();

    ASSERT_EQ(sent.size(), 3u);
    EXPECT_EQ(generator.segmentsGenerated(), 3u);
    EXPECT_EQ(generator.retransmissions(), 0u);

    SeqNum seq = req.seq;
    for (std::size_t i = 0; i < sent.size(); ++i) {
        const Packet &pkt = sent[i];
        std::size_t expect_len = i < 2 ? mss : 80;
        ASSERT_EQ(pkt.payload.size(), expect_len);
        EXPECT_EQ(pkt.tcp().seq, seq);
        EXPECT_EQ(pkt.tcp().ack, req.ack);
        EXPECT_TRUE(pkt.tcp().hasFlag(TcpFlags::ack));
        // FIN rides only on the last segment of the request.
        EXPECT_EQ(pkt.tcp().hasFlag(TcpFlags::fin), i == 2);

        // The paper charges 78 B per packet on the wire: 40 B TCP/IP
        // + 18 B Ethernet/FCS + 20 B preamble and inter-frame gap.
        EXPECT_EQ(pkt.wireBytes(), expect_len + 78);

        // Payload was fetched from the host buffer at the right seq.
        for (std::size_t b = 0; b < 4; ++b) {
            ASSERT_EQ(pkt.payload[b],
                      static_cast<std::uint8_t>((seq + b) * 7));
        }
        seq += static_cast<SeqNum>(expect_len);
    }
}

TEST_F(PacketGeneratorTest, PacesOneSegmentPerMacCycle)
{
    generator.requestSegments(
        tcp::SegmentRequest{1, 0, 4 * mss, 0, 0, false, false});
    sim.run();

    ASSERT_EQ(sendTimes.size(), 4u);
    for (std::size_t i = 0; i < sendTimes.size(); ++i)
        EXPECT_EQ(sendTimes[i], i * domain.period());
}

TEST_F(PacketGeneratorTest, RetransmittedSegmentsAreCountedAsSuch)
{
    tcp::SegmentRequest req;
    req.flow = 1;
    req.seq = 0;
    req.length = 2 * mss;
    req.retransmission = true;
    generator.requestSegments(req);
    sim.run();

    EXPECT_EQ(generator.segmentsGenerated(), 2u);
    EXPECT_EQ(generator.retransmissions(), 2u);
}

TEST_F(PacketGeneratorTest, ControlPacketsPadToTheMinimumEthernetFrame)
{
    tcp::ControlRequest syn;
    syn.flow = 1;
    syn.flags = TcpFlags::syn;
    syn.seq = 42;
    syn.mssOption = mss;
    generator.requestControl(syn);

    tcp::ControlRequest ack;
    ack.flow = 1;
    ack.flags = TcpFlags::ack;
    generator.requestControl(ack);
    sim.run();

    ASSERT_EQ(sent.size(), 2u);
    EXPECT_TRUE(sent[0].tcp().hasFlag(TcpFlags::syn));
    EXPECT_EQ(sent[0].tcp().mssOption, mss);
    for (const Packet &pkt : sent) {
        EXPECT_TRUE(pkt.payload.empty());
        // 60 B minimum frame + 4 B FCS + 20 B preamble/IFG.
        EXPECT_EQ(pkt.wireBytes(), 84u);
    }
}

} // namespace
} // namespace f4t::core
