/**
 * @file
 * Unit tests for the conservative parallel kernel building blocks:
 * the SPSC mailbox, the event-queue lower bound, the executor's
 * window/barrier mechanics, and cross-partition delivery through a
 * SplitLink — all at the level below the full-stack differential
 * fuzzer (tests/fuzz/test_parallel_differential.cc).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/split_link.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"
#include "sim/spsc_mailbox.hh"

namespace
{

using namespace f4t;
using sim::Tick;

// --- SpscMailbox ---------------------------------------------------------

TEST(SpscMailbox, DrainsInPushOrder)
{
    sim::SpscMailbox<int> box(8);
    for (int i = 0; i < 5; ++i)
        box.push(int(i));
    std::vector<int> seen;
    EXPECT_EQ(box.drain([&](int &&v) { seen.push_back(v); }), 5u);
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_TRUE(box.empty());
}

TEST(SpscMailbox, OverflowSpillsAndKeepsOrder)
{
    sim::SpscMailbox<int> box(4);
    for (int i = 0; i < 11; ++i)
        box.push(int(i));
    EXPECT_GT(box.spillsObserved(), 0u);
    std::vector<int> seen;
    EXPECT_EQ(box.drain([&](int &&v) { seen.push_back(v); }), 11u);
    for (int i = 0; i < 11; ++i)
        EXPECT_EQ(seen[i], i);
    EXPECT_TRUE(box.empty());
    // The ring is free again after the drain.
    box.push(42);
    EXPECT_EQ(box.drain([&](int &&v) { EXPECT_EQ(v, 42); }), 1u);
}

TEST(SpscMailbox, CrossThreadHandoff)
{
    sim::SpscMailbox<std::uint64_t> box(1024);
    constexpr std::uint64_t rounds = 200;
    std::uint64_t received = 0, expect = 0;
    bool in_order = true;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        // One "window": a producer thread pushes, joins (the barrier),
        // then the consumer drains.
        std::thread producer([&box, round] {
            for (std::uint64_t i = 0; i < 17; ++i)
                box.push(round * 17 + i);
        });
        producer.join();
        received += box.drain([&](std::uint64_t &&v) {
            in_order = in_order && v == expect;
            ++expect;
        });
    }
    EXPECT_TRUE(in_order);
    EXPECT_EQ(received, rounds * 17);
}

// --- EventQueue::nextEventLowerBound -------------------------------------

struct CountingEvent : sim::Event
{
    void process() override { ++fired; }
    int fired = 0;
};

TEST(EventQueueLowerBound, TracksSoloLadderAndHeap)
{
    sim::Simulation sim;
    EXPECT_EQ(sim.queue().nextEventLowerBound(), sim::maxTick);

    CountingEvent solo;
    sim.queue().schedule(&solo, 100);
    EXPECT_EQ(sim.queue().nextEventLowerBound(), 100u);

    CountingEvent far;
    sim.queue().schedule(&far, 1'000'000); // far heap
    EXPECT_EQ(sim.queue().nextEventLowerBound(), 100u);

    sim.run(100);
    EXPECT_EQ(solo.fired, 1);
    EXPECT_EQ(sim.queue().nextEventLowerBound(), 1'000'000u);

    sim.run(1'000'000);
    EXPECT_EQ(far.fired, 1);
    EXPECT_EQ(sim.queue().nextEventLowerBound(), sim::maxTick);
}

TEST(EventQueueLowerBound, NeverExceedsNextLiveEvent)
{
    sim::Simulation sim;
    CountingEvent a, b;
    sim.queue().schedule(&a, 500);
    sim.queue().schedule(&b, 700);
    sim.queue().deschedule(&a); // squashed entry may lead the queue
    Tick bound = sim.queue().nextEventLowerBound();
    EXPECT_LE(bound, 700u); // conservative: early is fine, late is not
    sim.run(700);
    EXPECT_EQ(a.fired, 0);
    EXPECT_EQ(b.fired, 1);
}

// --- ParallelExecutor ----------------------------------------------------

/** Channel stub: fixed lookahead, hand-fed pending callbacks. */
struct StubChannel : sim::CrossChannel
{
    explicit StubChannel(Tick la) : la_(la) {}
    Tick lookahead() const override { return la_; }
    std::size_t
    drainInto() override
    {
        std::size_t n = pending.size();
        for (auto &fn : pending)
            fn();
        pending.clear();
        return n;
    }
    bool idle() const override { return pending.empty(); }
    Tick la_;
    std::vector<std::function<void()>> pending;
};

TEST(ParallelExecutor, WindowsDerivedFromMinLookahead)
{
    sim::Simulation pa, pb;
    sim::ParallelExecutor ex(1);
    ex.addPartition(pa, "a");
    ex.addPartition(pb, "b");
    StubChannel wide(10'000), narrow(2'000);
    ex.addChannel(wide);
    ex.addChannel(narrow);
    EXPECT_EQ(ex.lookahead(), 2'000u);

    // Self-rescheduling tick in each partition keeps both queues busy.
    int ticks_a = 0, ticks_b = 0;
    std::function<void()> tick_a = [&] {
        ++ticks_a;
        pa.queue().scheduleCallback(pa.now() + 100, "tick", [&] { tick_a(); });
    };
    std::function<void()> tick_b = [&] {
        ++ticks_b;
        pb.queue().scheduleCallback(pb.now() + 100, "tick", [&] { tick_b(); });
    };
    pa.queue().scheduleCallback(0, "tick", [&] { tick_a(); });
    pb.queue().scheduleCallback(0, "tick", [&] { tick_b(); });

    EXPECT_EQ(ex.run(10'000), 10'000u);
    EXPECT_EQ(ticks_a, 101); // ticks at 0, 100, ..., 10000
    EXPECT_EQ(ticks_b, 101);
    EXPECT_EQ(ex.windowsRun(), 5u); // 10000 / 2000
    EXPECT_EQ(pa.now(), 10'000u);
    EXPECT_EQ(pb.now(), 10'000u);
}

TEST(ParallelExecutor, StopsOnGlobalDrainAndJumpsIdleGaps)
{
    sim::Simulation pa, pb;
    sim::ParallelExecutor ex(1);
    ex.addPartition(pa, "a");
    ex.addPartition(pb, "b");
    StubChannel ch(1'000);
    ex.addChannel(ch);

    int fired = 0;
    // One lonely far-future event: the executor should not grind
    // through ~1000 empty windows to reach it.
    pa.queue().scheduleCallback(1'000'000, "late", [&] { ++fired; });
    EXPECT_EQ(ex.run(2'000'000), 2'000'000u);
    EXPECT_EQ(fired, 1);
    EXPECT_LE(ex.windowsRun(), 3u); // idle-gap jump, not 2000 windows
    // Drained clocks still pin to the limit (serial run() contract).
    EXPECT_EQ(pa.now(), 2'000'000u);
    EXPECT_EQ(pb.now(), 2'000'000u);

    // Nothing pending at all: the horizon still advances to the limit.
    std::uint64_t windows_before = ex.windowsRun();
    EXPECT_EQ(ex.run(3'000'000), 3'000'000u);
    EXPECT_EQ(ex.windowsRun(), windows_before); // one fast-forward, no windows
}

TEST(ParallelExecutor, CrossEventsDeliveredAtBarriers)
{
    sim::Simulation pa, pb;
    sim::ParallelExecutor ex(2);
    ex.addPartition(pa, "a");
    ex.addPartition(pb, "b");
    StubChannel ch(5'000);
    ex.addChannel(ch);

    // Partition A "sends" at tick 100: the effect lands in partition B
    // no earlier than the next barrier, at its stamped delivery tick.
    std::vector<Tick> deliveries;
    pa.queue().scheduleCallback(100, "send", [&] {
        ch.pending.push_back([&] {
            pb.queue().scheduleCallback(100 + 5'000, "recv", [&] {
                deliveries.push_back(pb.now());
            });
        });
    });
    ex.run(20'000);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0], 5'100u);
    EXPECT_EQ(ex.crossEventsDelivered(), 1u);
}

// --- SplitLink end-to-end ------------------------------------------------

struct RecordingSink : net::PacketSink
{
    explicit RecordingSink(sim::Simulation &sim) : sim(sim) {}
    void
    receivePacket(net::Packet &&pkt) override
    {
        arrivals.push_back(sim.now());
        bytes += pkt.payload.size();
    }
    sim::Simulation &sim;
    std::vector<Tick> arrivals;
    std::size_t bytes = 0;
};

net::Packet
makePacket(std::size_t payload_bytes)
{
    net::Packet pkt = net::Packet::makeTcp(
        net::MacAddress{}, net::MacAddress{}, net::Ipv4Address{},
        net::Ipv4Address{}, net::TcpHeader{});
    pkt.payload.resize(payload_bytes);
    return pkt;
}

TEST(SplitLink, DeliversAcrossPartitionsAtModeledArrival)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        sim::Simulation pa, pb;
        net::SplitLink link(pa, pb, "cable", 100e9,
                            sim::nanosecondsToTicks(500));
        RecordingSink sink_a(pa), sink_b(pb);
        link.connect(sink_a, sink_b);

        sim::ParallelExecutor ex(threads);
        ex.addPartition(pa, "a");
        ex.addPartition(pb, "b");
        link.registerChannels(ex);

        pa.queue().scheduleCallback(0, "tx", [&] {
            link.aToB().send(makePacket(1000));
            link.aToB().send(makePacket(1000));
        });
        ex.run(sim::microsecondsToTicks(10));

        ASSERT_EQ(sink_b.arrivals.size(), 2u);
        EXPECT_EQ(sink_b.bytes, 2000u);
        // Never before the modeled wire time: serialization of one
        // 1000 B frame at 100 Gbps ≈ 82 ns, propagation 500 ns.
        EXPECT_GE(sink_b.arrivals[0], sim::nanosecondsToTicks(500));
        EXPECT_LE(sink_b.arrivals[0], sink_b.arrivals[1]);
        EXPECT_EQ(link.aToB().packetsSent(), 2u);
        EXPECT_TRUE(sink_a.arrivals.empty());
    }
}

TEST(SplitLink, ThreadCountInvariantDeliverySchedule)
{
    auto run = [](std::size_t threads) {
        sim::Simulation pa, pb;
        net::SplitLink link(pa, pb, "cable", 100e9,
                            sim::nanosecondsToTicks(500));
        RecordingSink sink_a(pa), sink_b(pb);
        link.connect(sink_a, sink_b);
        sim::ParallelExecutor ex(threads);
        ex.addPartition(pa, "a");
        ex.addPartition(pb, "b");
        link.registerChannels(ex);

        // A paced train: one frame every 2 µs for 40 µs, so deliveries
        // span many windows.
        for (int i = 0; i < 20; ++i) {
            pa.queue().scheduleCallback(
                sim::microsecondsToTicks(2 * i), "tx",
                [&] { link.aToB().send(makePacket(512)); });
        }
        ex.run(sim::microsecondsToTicks(100));
        return sink_b.arrivals;
    };
    auto solo = run(1);
    auto multi = run(2);
    EXPECT_EQ(solo.size(), 20u);
    EXPECT_EQ(solo, multi); // tick-exact, not just byte-exact
}

} // namespace
