/**
 * @file
 * Unit and property tests for the networking substrate: byte-accurate
 * header round trips, checksums, sequence arithmetic, the cuckoo hash
 * table, interval sets, byte rings, and the link model's timing and
 * fault injection.
 */

#include <gtest/gtest.h>

#include "net/byte_ring.hh"
#include "net/checksum.hh"
#include "net/cuckoo_hash.hh"
#include "net/four_tuple.hh"
#include "net/interval_set.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "net/seq.hh"
#include "harness.hh"
#include "sim/simulation.hh"

namespace f4t::net
{
namespace
{

// ---------------------------------------------------------------------
// sequence arithmetic
// ---------------------------------------------------------------------

TEST(SeqArith, WrapAroundComparisons)
{
    SeqNum high = 0xffff'fff0u;
    SeqNum low = 0x10u; // 0x20 ahead of high in sequence space

    EXPECT_TRUE(seqLt(high, low));
    EXPECT_TRUE(seqGt(low, high));
    EXPECT_TRUE(seqLeq(high, high));
    EXPECT_TRUE(seqGeq(low, low));
    EXPECT_EQ(seqMax(high, low), low);
    EXPECT_EQ(seqMin(high, low), high);
    EXPECT_EQ(seqDiff(low, high), 0x20);
    EXPECT_EQ(seqDiff(high, low), -0x20);
}

class SeqOrderProperty : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(SeqOrderProperty, AdditionPreservesOrdering)
{
    SeqNum base = GetParam();
    for (std::uint32_t step : {1u, 100u, 1460u, 1u << 20, 1u << 30}) {
        SeqNum next = base + step;
        EXPECT_TRUE(seqLt(base, next)) << base << " + " << step;
        EXPECT_EQ(seqDiff(next, base), static_cast<std::int32_t>(step));
    }
}

INSTANTIATE_TEST_SUITE_P(WrapPoints, SeqOrderProperty,
                         ::testing::Values(0u, 1u, 0x7fff'ffffu,
                                           0x8000'0000u, 0xffff'0000u,
                                           0xffff'ffffu));

// ---------------------------------------------------------------------
// checksum
// ---------------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector)
{
    // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
    std::vector<std::uint8_t> bytes{0x00, 0x01, 0xf2, 0x03,
                                    0xf4, 0xf5, 0xf6, 0xf7};
    EXPECT_EQ(internetChecksum(bytes), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero)
{
    std::vector<std::uint8_t> odd{0xab};
    ChecksumAccumulator acc;
    acc.addWord(0xab00);
    EXPECT_EQ(internetChecksum(odd), acc.finish());
}

TEST(Checksum, ValidatesToZeroWhenIncluded)
{
    std::vector<std::uint8_t> data{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc};
    std::uint16_t csum = internetChecksum(data);
    data.push_back(static_cast<std::uint8_t>(csum >> 8));
    data.push_back(static_cast<std::uint8_t>(csum));
    // Sum over data + checksum folds to 0xffff -> finish() == 0.
    EXPECT_EQ(internetChecksum(data), 0);
}

// ---------------------------------------------------------------------
// headers
// ---------------------------------------------------------------------

TEST(Headers, EthernetRoundTrip)
{
    EthernetHeader header;
    header.src = MacAddress{{1, 2, 3, 4, 5, 6}};
    header.dst = MacAddress{{7, 8, 9, 10, 11, 12}};
    header.etherType = EthernetHeader::typeArp;

    std::vector<std::uint8_t> raw;
    ByteWriter writer(raw);
    header.serialize(writer);
    ASSERT_EQ(raw.size(), EthernetHeader::wireSize);

    ByteReader reader(raw);
    EXPECT_EQ(EthernetHeader::parse(reader), header);
}

TEST(Headers, ArpRoundTrip)
{
    ArpMessage msg;
    msg.opcode = ArpMessage::opReply;
    msg.senderMac = MacAddress{{1, 2, 3, 4, 5, 6}};
    msg.senderIp = Ipv4Address::fromOctets(10, 0, 0, 1);
    msg.targetMac = MacAddress{{9, 9, 9, 9, 9, 9}};
    msg.targetIp = Ipv4Address::fromOctets(10, 0, 0, 2);

    std::vector<std::uint8_t> raw;
    ByteWriter writer(raw);
    msg.serialize(writer);
    ASSERT_EQ(raw.size(), ArpMessage::wireSize);

    ByteReader reader(raw);
    EXPECT_EQ(ArpMessage::parse(reader), msg);
}

TEST(Headers, Ipv4ChecksumSelfConsistent)
{
    Ipv4Header header;
    header.src = Ipv4Address::fromOctets(192, 168, 1, 10);
    header.dst = Ipv4Address::fromOctets(192, 168, 1, 20);
    header.totalLength = 1500;
    header.identification = 0x4242;

    std::vector<std::uint8_t> raw;
    ByteWriter writer(raw);
    header.serialize(writer);
    ASSERT_EQ(raw.size(), Ipv4Header::wireSize);

    // A serialized IPv4 header checksums to zero.
    EXPECT_EQ(internetChecksum(raw), 0);

    ByteReader reader(raw);
    Ipv4Header parsed = Ipv4Header::parse(reader);
    EXPECT_EQ(parsed.src, header.src);
    EXPECT_EQ(parsed.dst, header.dst);
    EXPECT_EQ(parsed.totalLength, header.totalLength);
    EXPECT_EQ(parsed.headerChecksum, header.computeChecksum());
}

TEST(Headers, TcpRoundTripWithMssOption)
{
    TcpHeader header;
    header.srcPort = 40000;
    header.dstPort = 80;
    header.seq = 0xdeadbeef;
    header.ack = 0xfeedface;
    header.flags = TcpFlags::syn | TcpFlags::ack;
    header.window = 512 * 1024;
    header.mssOption = 1460;

    std::vector<std::uint8_t> raw;
    ByteWriter writer(raw);
    header.serialize(writer);
    ASSERT_EQ(raw.size(), header.wireSize());
    ASSERT_EQ(header.wireSize(), 24u);

    ByteReader reader(raw);
    TcpHeader parsed = TcpHeader::parse(reader);
    EXPECT_EQ(parsed.srcPort, header.srcPort);
    EXPECT_EQ(parsed.seq, header.seq);
    EXPECT_EQ(parsed.ack, header.ack);
    EXPECT_EQ(parsed.flags, header.flags);
    EXPECT_EQ(parsed.mssOption, 1460);
    // Window scaling floors to 64-byte granularity.
    EXPECT_EQ(parsed.window, 512u * 1024u);
}

TEST(Headers, WindowScalingGranularity)
{
    TcpHeader header;
    header.window = 1000; // not a multiple of 64
    std::vector<std::uint8_t> raw;
    ByteWriter writer(raw);
    header.serialize(writer);
    ByteReader reader(raw);
    TcpHeader parsed = TcpHeader::parse(reader);
    EXPECT_EQ(parsed.window, (1000u >> 6) << 6);
    EXPECT_LE(parsed.window, 1000u);
}

TEST(Packet, TcpWireRoundTripWithPayload)
{
    TcpHeader tcp;
    tcp.srcPort = 1234;
    tcp.dstPort = 5678;
    tcp.seq = 42;
    tcp.ack = 77;
    tcp.flags = TcpFlags::ack | TcpFlags::psh;
    tcp.window = 8192;

    std::vector<std::uint8_t> payload(200);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i);

    Packet pkt = Packet::makeTcp(MacAddress{{1, 1, 1, 1, 1, 1}},
                                 MacAddress{{2, 2, 2, 2, 2, 2}},
                                 Ipv4Address::fromOctets(10, 0, 0, 1),
                                 Ipv4Address::fromOctets(10, 0, 0, 2), tcp,
                                 payload);

    auto wire = pkt.serialize();
    auto parsed = Packet::parseWire(wire);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->isTcp());
    EXPECT_EQ(parsed->tcp().seq, 42u);
    EXPECT_EQ(parsed->tcp().ack, 77u);
    EXPECT_EQ(parsed->payload, payload);

    // TCP checksum validates: recompute over the parsed packet.
    std::uint16_t expect = parsed->tcp().computeChecksum(
        parsed->ip->src, parsed->ip->dst, parsed->payload);
    EXPECT_EQ(parsed->tcp().checksum, expect);
}

TEST(Packet, WireBytesMatchPaperOverheadAccounting)
{
    TcpHeader tcp;
    Packet pkt = Packet::makeTcp(MacAddress{}, MacAddress{},
                                 Ipv4Address{}, Ipv4Address{}, tcp,
                                 std::vector<std::uint8_t>(128));
    // 128 B payload + 78 B overhead (40 TCP/IP + 18 eth+FCS + 20
    // preamble/IFG): the paper's goodput arithmetic (Section 5.1).
    EXPECT_EQ(pkt.wireBytes(), 128u + 78u);
}

TEST(Packet, ShortFramesArePadded)
{
    TcpHeader tcp;
    Packet pkt = Packet::makeTcp(MacAddress{}, MacAddress{},
                                 Ipv4Address{}, Ipv4Address{}, tcp);
    EXPECT_EQ(pkt.frameBytes(), 60u);
    EXPECT_EQ(pkt.serialize().size(), 60u);
}

TEST(Packet, IcmpEchoRoundTrip)
{
    Packet pkt;
    pkt.eth.etherType = EthernetHeader::typeIpv4;
    Ipv4Header ip;
    ip.src = Ipv4Address::fromOctets(10, 0, 0, 1);
    ip.dst = Ipv4Address::fromOctets(10, 0, 0, 2);
    ip.protocol = Ipv4Header::protoIcmp;
    pkt.ip = ip;
    IcmpMessage icmp;
    icmp.type = IcmpMessage::typeEchoRequest;
    icmp.identifier = 7;
    icmp.sequence = 3;
    icmp.payload = {1, 2, 3, 4};
    pkt.l4 = icmp;

    auto wire = pkt.serialize();
    auto parsed = Packet::parseWire(wire);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_TRUE(parsed->isIcmp());
    EXPECT_EQ(parsed->icmp().identifier, 7);
    EXPECT_EQ(parsed->icmp().payload, icmp.payload);
}

TEST(Packet, MalformedBytesRejected)
{
    std::vector<std::uint8_t> junk(10, 0xff);
    EXPECT_FALSE(Packet::parseWire(junk).has_value());

    std::vector<std::uint8_t> truncated(20, 0);
    truncated[12] = 0x08; // IPv4 ethertype
    truncated[13] = 0x00;
    EXPECT_FALSE(Packet::parseWire(truncated).has_value());
}

// ---------------------------------------------------------------------
// cuckoo hash
// ---------------------------------------------------------------------

FourTuple
tupleFor(std::uint32_t i)
{
    return FourTuple{Ipv4Address{0x0a000001},
                     static_cast<std::uint16_t>(1000 + (i % 60000)),
                     Ipv4Address{0x0a000002 + i / 60000},
                     static_cast<std::uint16_t>(2000 + (i % 50000))};
}

TEST(CuckooHash, InsertFindErase)
{
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash> table(64);
    for (std::uint32_t i = 0; i < 100; ++i)
        ASSERT_TRUE(table.insert(tupleFor(i), i));
    EXPECT_EQ(table.size(), 100u);

    for (std::uint32_t i = 0; i < 100; ++i) {
        auto found = table.find(tupleFor(i));
        ASSERT_TRUE(found.has_value());
        EXPECT_EQ(*found, i);
    }

    EXPECT_TRUE(table.erase(tupleFor(50)));
    EXPECT_FALSE(table.find(tupleFor(50)).has_value());
    EXPECT_FALSE(table.erase(tupleFor(50)));
    EXPECT_EQ(table.size(), 99u);
}

TEST(CuckooHash, UpdateExistingKey)
{
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash> table(16);
    ASSERT_TRUE(table.insert(tupleFor(1), 10));
    ASSERT_TRUE(table.insert(tupleFor(1), 20));
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(*table.find(tupleFor(1)), 20u);
}

TEST(CuckooHash, HighLoadFactorViaKicks)
{
    // 2 ways x 4 slots x 64 buckets = 512 capacity; fill to ~85 %.
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash> table(64);
    std::uint32_t inserted = 0;
    for (std::uint32_t i = 0; i < 440; ++i) {
        if (table.insert(tupleFor(i), i))
            ++inserted;
    }
    EXPECT_GE(inserted, 430u);
    // Everything that reported success must be findable.
    std::uint32_t found = 0;
    for (std::uint32_t i = 0; i < 440; ++i) {
        if (table.find(tupleFor(i)).has_value())
            ++found;
    }
    EXPECT_EQ(found, inserted);
}

TEST(CuckooHash, FailedInsertLosesNothing)
{
    // Tiny table forced to overflow: residents must all survive.
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash, 1> table(2, 2);
    std::vector<std::uint32_t> resident;
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (table.insert(tupleFor(i), i))
            resident.push_back(i);
    }
    EXPECT_LT(resident.size(), 32u); // some inserts must have failed
    for (std::uint32_t i : resident) {
        ASSERT_TRUE(table.find(tupleFor(i)).has_value())
            << "resident key " << i << " lost by a failed insert";
    }
    EXPECT_EQ(table.size(), resident.size());
}

TEST(CuckooHash, SupportsFullFlowScale)
{
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash> table(65536);
    for (std::uint32_t i = 0; i < 65536; ++i)
        ASSERT_TRUE(table.insert(tupleFor(i), i)) << i;
    EXPECT_EQ(table.size(), 65536u);
    EXPECT_EQ(*table.find(tupleFor(65535)), 65535u);
}

TEST(CuckooHash, ChurnAtHighLoadFactor64k)
{
    // 2 ways x 8192 buckets x 4 slots = 65536 slots (+8 stash). Fill
    // to ~90 % occupancy, then churn rotating quarters of the keys
    // through erase/re-insert. Inserting at this load factor exercises
    // the kick path constantly; the table must keep placing every key
    // (an insert that kicks from one way while the other still has a
    // free slot walks needless cuckoo chains and starts failing well
    // below nominal capacity).
    CuckooHashTable<FourTuple, std::uint32_t, FourTupleHash> table(8192);
    const std::uint32_t target = 59000;
    for (std::uint32_t i = 0; i < target; ++i) {
        ASSERT_TRUE(table.insert(tupleFor(i), i))
            << "insert " << i << " failed at occupancy " << table.size()
            << "/65536";
    }
    ASSERT_EQ(table.size(), target);

    for (std::uint32_t round = 0; round < 3; ++round) {
        for (std::uint32_t i = round; i < target; i += 4)
            ASSERT_TRUE(table.erase(tupleFor(i))) << i;
        for (std::uint32_t i = round; i < target; i += 4) {
            ASSERT_TRUE(table.insert(tupleFor(i), i + round))
                << "re-insert " << i << " failed in round " << round;
        }
        ASSERT_EQ(table.size(), target);
    }

    // Every key resolves to its last-written value. Keys with residue
    // 0..2 were rewritten in the matching round; residue 3 never moved.
    for (std::uint32_t i = 0; i < target; ++i) {
        auto found = table.find(tupleFor(i));
        ASSERT_TRUE(found.has_value()) << i;
        std::uint32_t residue = i % 4;
        EXPECT_EQ(*found, residue < 3 ? i + residue : i) << i;
    }
}

// ---------------------------------------------------------------------
// interval set
// ---------------------------------------------------------------------

TEST(IntervalSet, MergesAdjacentAndOverlapping)
{
    IntervalSet set;
    set.insert(10, 20);
    set.insert(30, 40);
    EXPECT_EQ(set.chunkCount(), 2u);

    set.insert(20, 30); // bridges the two
    EXPECT_EQ(set.chunkCount(), 1u);
    EXPECT_TRUE(set.contains(10, 40));
    EXPECT_FALSE(set.contains(9, 11));
    EXPECT_EQ(set.contiguousEnd(10), 40u);
    EXPECT_EQ(set.contiguousEnd(5), 5u);
}

TEST(IntervalSet, EraseBelowTruncates)
{
    IntervalSet set;
    set.insert(0, 100);
    set.insert(200, 300);
    set.eraseBelow(50);
    EXPECT_FALSE(set.contains(0, 10));
    EXPECT_TRUE(set.contains(50, 100));
    EXPECT_TRUE(set.contains(200, 300));
    set.eraseBelow(250);
    EXPECT_TRUE(set.contains(250, 300));
    EXPECT_FALSE(set.contains(200, 249));
}

TEST(IntervalSet, RandomizedAgainstBitmapOracle)
{
    test::ScopedRng rng(5);
    constexpr std::size_t space = 2048;
    for (int round = 0; round < 20; ++round) {
        IntervalSet set;
        std::vector<bool> oracle(space, false);
        for (int op = 0; op < 200; ++op) {
            std::uint64_t start = rng.below(space - 1);
            std::uint64_t end = start + 1 + rng.below(64);
            if (end > space)
                end = space;
            set.insert(start, end);
            for (std::uint64_t i = start; i < end; ++i)
                oracle[i] = true;
        }
        // contiguousEnd from 0 must match the oracle's first gap.
        std::uint64_t expect = 0;
        while (expect < space && oracle[expect])
            ++expect;
        EXPECT_EQ(set.contiguousEnd(0), expect);
        // Spot-check membership.
        for (int probe = 0; probe < 100; ++probe) {
            std::uint64_t p = rng.below(space);
            EXPECT_EQ(set.contains(p, p + 1), static_cast<bool>(oracle[p]));
        }
    }
}

// ---------------------------------------------------------------------
// byte ring
// ---------------------------------------------------------------------

TEST(ByteRing, AppendCopyOutRelease)
{
    ByteRing ring(16);
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    EXPECT_EQ(ring.append(data), 5u);
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.freeSpace(), 11u);

    std::vector<std::uint8_t> out(5);
    ring.copyOut(0, out);
    EXPECT_EQ(out, data);

    ring.release(3);
    EXPECT_EQ(ring.base(), 3u);
    std::vector<std::uint8_t> tail(2);
    ring.copyOut(3, tail);
    EXPECT_EQ(tail[0], 4);
    EXPECT_EQ(tail[1], 5);
}

TEST(ByteRing, WrapsAroundCapacity)
{
    ByteRing ring(8);
    std::vector<std::uint8_t> first{1, 2, 3, 4, 5, 6};
    ring.append(first);
    ring.release(6);
    std::vector<std::uint8_t> second{7, 8, 9, 10, 11};
    EXPECT_EQ(ring.append(second), 5u); // crosses the wrap point
    std::vector<std::uint8_t> out(5);
    ring.copyOut(6, out);
    EXPECT_EQ(out, second);
}

TEST(ByteRing, AppendTruncatesAtCapacity)
{
    ByteRing ring(4);
    std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6};
    EXPECT_EQ(ring.append(data), 4u);
    EXPECT_EQ(ring.freeSpace(), 0u);
    EXPECT_EQ(ring.append(data), 0u);
}

TEST(ByteRing, OutOfOrderWriteAtExtendsEnd)
{
    ByteRing ring(32);
    std::vector<std::uint8_t> chunk{9, 9, 9};
    ring.writeAt(10, chunk); // hole at [0, 10)
    EXPECT_EQ(ring.end(), 13u);
    std::vector<std::uint8_t> out(3);
    ring.copyOut(10, out);
    EXPECT_EQ(out, chunk);
}

// ---------------------------------------------------------------------
// link model
// ---------------------------------------------------------------------

struct CollectingSink : PacketSink
{
    std::vector<Packet> packets;
    std::vector<sim::Tick> arrivals;
    sim::Simulation *sim = nullptr;

    void
    receivePacket(Packet &&pkt) override
    {
        packets.push_back(std::move(pkt));
        if (sim)
            arrivals.push_back(sim->now());
    }
};

Packet
dataPacket(std::size_t payload_bytes)
{
    TcpHeader tcp;
    return Packet::makeTcp(MacAddress{}, MacAddress{}, Ipv4Address{},
                           Ipv4Address{},
                           tcp, std::vector<std::uint8_t>(payload_bytes));
}

/** Caller-located tick comparison with a small tolerance. */
void
expectTickNear(sim::Tick actual, sim::Tick expected, test::SourceLoc loc)
{
    sim::Tick delta =
        actual > expected ? actual - expected : expected - actual;
    if (delta > 10) {
        ADD_FAILURE_AT(loc.file, loc.line)
            << "tick " << actual << " not within 10 of " << expected;
    }
}

TEST(LinkModel, SerializationTimeMatchesBandwidth)
{
    sim::Simulation sim;
    Link link(sim, "link", 100e9, sim::nanosecondsToTicks(500));
    CollectingSink a, b;
    b.sim = &sim;
    link.connect(a, b);

    // 1460 B payload -> 1538 wire bytes -> 123.04 ns at 100 Gbps,
    // plus 500 ns propagation.
    link.aToB().send(dataPacket(1460));
    sim.run();

    ASSERT_EQ(b.packets.size(), 1u);
    sim::Tick expect = sim::secondsToTicks(1538.0 * 8 / 100e9) +
                       sim::nanosecondsToTicks(500);
    expectTickNear(b.arrivals[0], expect, F4T_TEST_HERE);
}

/** Restore the process-wide batching switch on scope exit. */
struct BatchingMode
{
    explicit BatchingMode(bool enabled)
        : saved_(datapathBatchingEnabled())
    {
        setDatapathBatching(enabled);
    }
    ~BatchingMode() { setDatapathBatching(saved_); }
    bool saved_;
};

TEST(LinkModel, BackToBackPacketsQueueBehindEachOther)
{
    // Per-packet reference mode: every delivery is its own host event
    // at the modeled arrival tick, so the sink observes serialization
    // spacing directly.
    BatchingMode reference(false);
    sim::Simulation sim;
    Link link(sim, "link", 100e9, 0);
    CollectingSink a, b;
    b.sim = &sim;
    link.connect(a, b);

    for (int i = 0; i < 10; ++i)
        link.aToB().send(dataPacket(1460));
    sim.run();

    ASSERT_EQ(b.packets.size(), 10u);
    sim::Tick per_packet = sim::secondsToTicks(1538.0 * 8 / 100e9);
    for (std::size_t i = 1; i < b.arrivals.size(); ++i) {
        expectTickNear(b.arrivals[i] - b.arrivals[i - 1], per_packet,
                       F4T_TEST_HERE);
    }
}

TEST(LinkModel, BatchedDeliveryIsCausalOrderedAndBounded)
{
    // Batched mode: a wire train reaches the sink in fewer host
    // events, but every packet is delivered in order, never before its
    // modeled arrival, and never more than the burst-hold window after
    // it.
    BatchingMode batched(true);
    sim::Simulation sim;
    Link link(sim, "link", 100e9, 0);
    CollectingSink a, b;
    b.sim = &sim;
    link.connect(a, b);

    std::vector<sim::Tick> modeled;
    for (int i = 0; i < 10; ++i)
        modeled.push_back(link.aToB().send(dataPacket(1460)));
    sim.run();

    ASSERT_EQ(b.packets.size(), 10u);
    for (std::size_t i = 0; i < modeled.size(); ++i) {
        EXPECT_GE(b.arrivals[i], modeled[i]);
        EXPECT_LE(b.arrivals[i],
                  modeled[i] + LinkDirection::maxBurstHold);
        if (i > 0) {
            EXPECT_GE(b.arrivals[i], b.arrivals[i - 1]);
        }
    }
    // A 123 ns-spaced train must not cost one event per packet.
    EXPECT_LT(sim.queue().eventsProcessed(), 10u);
}

TEST(LinkModel, FullDuplexDirectionsAreIndependent)
{
    sim::Simulation sim;
    Link link(sim, "link", 100e9, 0);
    CollectingSink a, b;
    a.sim = &sim;
    b.sim = &sim;
    link.connect(a, b);

    link.aToB().send(dataPacket(1460));
    link.bToA().send(dataPacket(1460));
    sim.run();

    ASSERT_EQ(a.packets.size(), 1u);
    ASSERT_EQ(b.packets.size(), 1u);
    // Identical timing: neither direction queued behind the other.
    EXPECT_EQ(a.arrivals[0], b.arrivals[0]);
}

TEST(LinkModel, DropProbabilityRoughlyHolds)
{
    sim::Simulation sim;
    FaultModel faults;
    faults.dropProbability = 0.1;
    faults.seed = 3;
    Link link(sim, "link", 100e9, 0, faults);
    CollectingSink a, b;
    link.connect(a, b);

    constexpr int n = 5000;
    for (int i = 0; i < n; ++i)
        link.aToB().send(dataPacket(100));
    sim.run();

    double delivered = static_cast<double>(b.packets.size());
    EXPECT_NEAR(delivered / n, 0.9, 0.02);
    EXPECT_EQ(link.aToB().packetsDropped() + b.packets.size(),
              static_cast<std::uint64_t>(n));
}

TEST(LinkModel, DuplicationDeliversExtraCopies)
{
    sim::Simulation sim;
    FaultModel faults;
    faults.duplicateProbability = 0.2;
    faults.seed = 11;
    Link link(sim, "link", 100e9, 0, faults);
    CollectingSink a, b;
    link.connect(a, b);

    constexpr int n = 2000;
    for (int i = 0; i < n; ++i)
        link.aToB().send(dataPacket(64));
    sim.run();

    EXPECT_GT(b.packets.size(), static_cast<std::size_t>(n * 1.15));
    EXPECT_LT(b.packets.size(), static_cast<std::size_t>(n * 1.25));
}

} // namespace
} // namespace f4t::net
