/**
 * @file
 * Tests for the causal request tracer (sim/causal_trace.hh): span
 * bookkeeping under out-of-order closes, full end-to-end span trees on
 * an all-F4T engine pair (the span-sum acceptance check), wire
 * re-entry under retransmission, FPC<->DRAM migration mid-request,
 * event coalescing, and the trace-off no-op contract.
 *
 * Everything except the no-op contract needs F4T_ENABLE_TRACE=ON; in
 * trace-off builds those tests GTEST_SKIP (the file still compiles and
 * links, which is itself part of the contract under test).
 */

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "apps/http.hh"
#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "sim/causal_trace.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

using sim::ctrace::CausalTracer;
using sim::ctrace::Request;
using sim::ctrace::Stage;
using sim::ctrace::Token;

#define SKIP_IF_TRACE_OFF()                                               \
    do {                                                                  \
        if constexpr (!sim::trace::compiledIn)                            \
            GTEST_SKIP() << "tracing compiled out (F4T_ENABLE_TRACE=OFF)"; \
    } while (0)

/**
 * An all-F4T engine pair serving HTTP: server on engine A, one
 * closed-loop load generator on engine B, a CausalTracer watching the
 * shared simulation. Both stacks are instrumented, so every request
 * (client->server request and server->client response alike) closes
 * its full span tree.
 */
struct TracedHttpWorld
{
    explicit TracedHttpWorld(std::size_t connections,
                             core::EngineConfig config = {},
                             const net::FaultModel &faults = {})
        : world(std::make_unique<testbed::EnginePairWorld>(2, config,
                                                           faults)),
          tracer(std::make_unique<CausalTracer>(world->sim))
    {
        apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world->sim, *world->runtimeA, 0, world->cpuA->core(0)));
        apps::HttpServerConfig server_config;
        server = std::make_unique<apps::HttpServerApp>(*apis.back(),
                                                       server_config);
        server->start();
        world->sim.runFor(sim::microsecondsToTicks(20));

        apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world->sim, *world->runtimeB, 0, world->cpuB->core(0)));
        apps::HttpLoadGenConfig gen_config;
        gen_config.peer = testbed::ipA();
        gen_config.port = 80;
        gen_config.connections = connections;
        gen = std::make_unique<apps::HttpLoadGenApp>(*apis.back(),
                                                     nullptr, gen_config);
        gen->start();
    }

    void
    runMs(double ms)
    {
        world->sim.runFor(sim::millisecondsToTicks(ms));
    }

    std::unique_ptr<testbed::EnginePairWorld> world;
    std::unique_ptr<CausalTracer> tracer;
    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::unique_ptr<apps::HttpServerApp> server;
    std::unique_ptr<apps::HttpLoadGenApp> gen;
};

// ---------------------------------------------------------------------
// trace-off contract
// ---------------------------------------------------------------------

TEST(CausalTrace, ApiCallableInBothModes)
{
    sim::Simulation sim;
    CausalTracer tracer(sim);
    int domain = 0;
    Token t = tracer.beginRequest(&domain, 1, 4096, 0);
    if constexpr (sim::trace::compiledIn) {
        EXPECT_TRUE(t.valid());
        EXPECT_EQ(tracer.requestsStarted(), 1u);
        EXPECT_EQ(tracer.liveCount(), 1u);
    } else {
        // Off mode: every call is a no-op and nothing is recorded.
        EXPECT_FALSE(t.valid());
        EXPECT_EQ(tracer.requestsStarted(), 0u);
        EXPECT_EQ(tracer.liveCount(), 0u);
    }
    // The full API must accept calls either way (compile + runtime).
    tracer.submitted(t, 10);
    tracer.fetched(t, 20, 30);
    tracer.eventQueued(t, 30);
    tracer.setWireTarget(t, 4096);
    tracer.flowAborted(&domain, 1, 40);
    if constexpr (!sim::trace::compiledIn) {
        EXPECT_EQ(tracer.requestsAborted(), 0u);
    }
}

// ---------------------------------------------------------------------
// span bookkeeping
// ---------------------------------------------------------------------

TEST(CausalTrace, OutOfOrderCloseIsCountedNotFatal)
{
    SKIP_IF_TRACE_OFF();
    sim::Simulation sim;
    CausalTracer tracer(sim);
    int domain = 0;
    Token t = tracer.beginRequest(&domain, 1, 100, 0); // opens appQueue

    // Closing a stage that was never opened must not corrupt the
    // request — it is counted and ignored.
    tracer.closeSpan(t, Stage::pcie, 50);
    EXPECT_EQ(tracer.outOfOrderCloses(), 1u);
    ASSERT_NE(tracer.findLive(t), nullptr);

    // Double-close of a stage that WAS open: first close succeeds,
    // second is out of order.
    tracer.closeSpan(t, Stage::appQueue, 60);
    tracer.closeSpan(t, Stage::appQueue, 70);
    EXPECT_EQ(tracer.outOfOrderCloses(), 2u);

    const Request *req = tracer.findLive(t);
    ASSERT_NE(req, nullptr);
    ASSERT_EQ(req->spans.size(), 1u);
    EXPECT_EQ(req->spans[0].end, sim::Tick{60});
}

TEST(CausalTrace, RawSpanQueueServiceSplit)
{
    SKIP_IF_TRACE_OFF();
    sim::Simulation sim;
    CausalTracer tracer(sim);
    int domain = 0;
    Token t = tracer.beginRequest(&domain, 1, 100, 0);
    tracer.openSpan(t, Stage::wire, 1000);
    tracer.markService(t, Stage::wire, 1600);
    tracer.closeSpan(t, Stage::wire, 2000);

    const Request *req = tracer.findLive(t);
    ASSERT_NE(req, nullptr);
    const sim::ctrace::Span *span = nullptr;
    for (const auto &s : req->spans) {
        if (s.stage == Stage::wire)
            span = &s;
    }
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->duration(), sim::Tick{1000});
    EXPECT_EQ(span->queueTime(), sim::Tick{600});
    EXPECT_EQ(span->serviceTime(), sim::Tick{400});
}

// ---------------------------------------------------------------------
// end-to-end span trees (the acceptance check)
// ---------------------------------------------------------------------

TEST(CausalTrace, SpanTreeSumsToEndToEndLatency)
{
    SKIP_IF_TRACE_OFF();
    TracedHttpWorld w(4);
    w.runMs(3.0);

    CausalTracer &tracer = *w.tracer;
    ASSERT_GT(tracer.requestsCompleted(), 50u);
    EXPECT_EQ(tracer.outOfOrderCloses(), 0u);
    EXPECT_EQ(tracer.overflowDropped(), 0u);
    // Every completed (non-aborted) request sampled exactly one e2e
    // latency.
    EXPECT_EQ(tracer.e2e().count(), tracer.requestsCompleted());

    // A clean request — not coalesced into a neighbour, exactly one
    // wire traversal — hands off synchronously at every stage
    // boundary, so its non-abandoned spans tile [begin, end] exactly:
    // the stage latencies sum to the measured end-to-end latency.
    std::size_t clean = 0;
    for (const Request &r : tracer.completed()) {
        if (r.aborted || r.coalesced || r.wireEntries != 1)
            continue;
        ++clean;
        sim::Tick covered = r.sampledTotal();
        ASSERT_LE(covered, r.latency());
        EXPECT_EQ(covered, r.latency())
            << "request " << r.id << " has a gap of "
            << (r.latency() - covered) << " ticks";
        // The full sender->receiver chain: appQueue, doorbell, pcie,
        // fpcQueue, fpcExec, wire, rxParse, then the peer's fpcQueue,
        // fpcExec, upcall.
        EXPECT_EQ(r.spans.size(), 10u) << "request " << r.id;
    }
    ASSERT_GT(clean, 20u);

    // Fig. 12 consistency: the histogram-derived p50 must agree with
    // the median recomputed from the retained span trees (both exact
    // below the reservoir/retention caps; only the percentile
    // definition may differ by one sample).
    std::vector<double> latencies;
    for (const Request &r : tracer.completed()) {
        if (!r.aborted)
            latencies.push_back(sim::ticksToSeconds(r.latency()) * 1e6);
    }
    ASSERT_LE(latencies.size(), std::size_t{4096})
        << "retention cap exceeded; recomputation no longer exact";
    std::sort(latencies.begin(), latencies.end());
    double median = latencies[latencies.size() / 2];
    EXPECT_NEAR(tracer.e2e().percentile(50.0), median,
                0.05 * median + 1e-9);
}

TEST(CausalTrace, RetransmissionReentersWireStage)
{
    SKIP_IF_TRACE_OFF();
    // Deterministic drops on the data direction force retransmissions:
    // the retransmitted byte range re-enters the wire stage, the
    // superseded span is abandoned (kept in the tree, not sampled).
    // Drop well into the transfer, once the window is wide enough for
    // duplicate ACKs to trigger fast retransmit (an early-slow-start
    // drop would wait out a full RTO instead).
    net::FaultModel faults;
    faults.dropAtTicks.push_back(sim::millisecondsToTicks(15));
    faults.dropAtTicks.push_back(sim::millisecondsToTicks(25));
    faults.seed = 7;

    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 16;
    config.maxFlows = 64;
    testbed::EnginePairWorld world(1, config, faults, 10e9, {},
                                   sim::microsecondsToTicks(250));
    // Keep every span tree: the retransmitted requests complete mid-run
    // and must not be evicted from the completed deque before we look.
    CausalTracer tracer(world.sim, /*keep_completed=*/1 << 16);

    auto sink_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(sink_api, sink_config);
    sink.start();

    auto send_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 8192;
    apps::BulkSenderApp sender(send_api, sender_config);
    sender.start();

    world.sim.runFor(sim::millisecondsToTicks(45));

    EXPECT_GT(tracer.wireReentries(), 0u);
    EXPECT_GE(tracer.abandonedSpans(), tracer.wireReentries());
    EXPECT_GT(tracer.requestsCompleted(), 0u);
    EXPECT_EQ(tracer.outOfOrderCloses(), 0u);

    // At least one retired request carries the retransmission in its
    // tree: several wire entries, with the superseded span abandoned.
    bool found = false;
    for (const Request &r : tracer.completed()) {
        if (r.wireEntries < 2)
            continue;
        std::size_t abandoned = 0;
        for (const auto &s : r.spans) {
            if (s.stage == Stage::wire && s.abandoned)
                ++abandoned;
        }
        if (abandoned > 0)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(CausalTrace, SurvivesConnectionMigrationMidRequest)
{
    SKIP_IF_TRACE_OFF();
    // More flows than one FPC holds: TCBs ping-pong between the FPC
    // and DRAM. Tokens ride the MigratingTcb, so requests in flight
    // across a migration still close their spans.
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 8;
    config.maxFlows = 64;
    TracedHttpWorld w(16, config);
    w.runMs(4.0);

    EXPECT_GT(w.world->engineA->fpc(0).evictions(), 0u)
        << "workload did not force migrations; test needs tightening";
    CausalTracer &tracer = *w.tracer;
    EXPECT_GT(tracer.requestsCompleted(), 100u);
    EXPECT_EQ(tracer.outOfOrderCloses(), 0u);
    // Migrated or not, finished requests must balance: everything
    // started either completed, aborted, or is still in flight.
    EXPECT_EQ(tracer.requestsStarted(),
              tracer.requestsCompleted() + tracer.requestsAborted() +
                  tracer.liveCount());
}

TEST(CausalTrace, CoalescedRequestsCompleteViaOffsetCoverage)
{
    SKIP_IF_TRACE_OFF();
    // Back-to-back small sends on one flow coalesce in the scheduler
    // window; the merged requests lose their own event tokens but
    // must still complete through cumulative-offset coverage.
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 4096;
    testbed::EnginePairWorld world(1, config);
    CausalTracer tracer(world.sim);

    auto sink_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(sink_api, sink_config);
    sink.start();

    auto send_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 128;
    apps::BulkSenderApp sender(send_api, sender_config);
    sender.start();

    world.sim.runFor(sim::millisecondsToTicks(2));

    EXPECT_GT(tracer.coalescedMerges(), 0u);
    EXPECT_GT(tracer.requestsCompleted(), 0u);
    EXPECT_EQ(tracer.outOfOrderCloses(), 0u);
    bool coalesced_completed = false;
    for (const Request &r : tracer.completed()) {
        if (r.coalesced && !r.aborted)
            coalesced_completed = true;
    }
    EXPECT_TRUE(coalesced_completed);
}

TEST(CausalTrace, FlowTeardownAbortsLiveRequests)
{
    SKIP_IF_TRACE_OFF();
    sim::Simulation sim;
    CausalTracer tracer(sim);
    int domain = 0;
    Token a = tracer.beginRequest(&domain, 5, 100, 0);
    Token b = tracer.beginRequest(&domain, 5, 200, 10);
    EXPECT_EQ(tracer.liveCount(), 2u);

    tracer.flowAborted(&domain, 5, 50);
    EXPECT_EQ(tracer.requestsAborted(), 2u);
    EXPECT_EQ(tracer.liveCount(), 0u);
    EXPECT_EQ(tracer.findLive(a), nullptr);
    EXPECT_EQ(tracer.findLive(b), nullptr);
    // Aborted requests do not pollute the latency distribution.
    EXPECT_EQ(tracer.e2e().count(), 0u);
}

} // namespace
} // namespace f4t
