/**
 * @file
 * End-to-end integration tests: full FtEngine systems exchanging real
 * TCP over the link model, through the F4T library, runtime, PCIe, and
 * host buffers — the whole Figure 3 stack.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "harness.hh"
#include "net/payload_buffer.hh"
#include "sim/check.hh"

namespace f4t
{
namespace
{

using test::EnginePairWorld;
using test::EngineLinuxWorld;
using test::LinuxPairWorld;

TEST(EngineE2E, SoftTcpLoopbackSmoke)
{
    // Sanity-check the harness with the software stack first.
    LinuxPairWorld world(1);
    world.hostA->config();

    auto server_api = world.apiB(0);
    auto client_api = world.apiA(0);

    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 1024;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    world.sim.runFor(sim::secondsToTicks(0.005));

    EXPECT_GT(sender.bytesSent(), 100'000u);
    EXPECT_GT(sink.bytesReceived(), 100'000u);
    EXPECT_EQ(sink.patternErrors(), 0u);
}

TEST(EngineE2E, EnginePairBulkTransferIntegrity)
{
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    EnginePairWorld world(1, config);

    auto server_api = world.apiB(0);
    auto client_api = world.apiA(0);

    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 128;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    world.sim.runFor(sim::secondsToTicks(0.002));

    EXPECT_TRUE(sender.connected());
    EXPECT_GT(sender.bytesSent(), 10'000u);
    EXPECT_GT(sink.bytesReceived(), 10'000u);
    EXPECT_EQ(sink.patternErrors(), 0u);
}

TEST(EngineE2E, CleanBulkTransferMakesNoPayloadCopies)
{
    // Payloads must move through the pipeline by transferring their
    // pooled buffer, never by duplicating bytes. On a fault-free bulk
    // transfer the checks-build copy counter therefore stays at zero;
    // any regression that reintroduces a hot-path copy (pass-by-value,
    // defensive duplication) trips this immediately.
    if constexpr (!sim::checksEnabled)
        GTEST_SKIP() << "copy accounting is compiled out in this build";

    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    EnginePairWorld world(1, config);

    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    auto client_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 128;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    net::PayloadBuffer::resetCopyCount();
    world.sim.runFor(sim::secondsToTicks(0.002));

    EXPECT_GT(sink.bytesReceived(), 10'000u);
    EXPECT_EQ(net::PayloadBuffer::copiesObserved(), 0u);
}

TEST(EngineE2E, EngineInteroperatesWithSoftwareTcp)
{
    // The engine must speak real TCP: a software stack as the peer.
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 32;
    config.maxFlows = 256;
    EngineLinuxWorld world(1, 1, config);

    // Engine side sends; Linux side receives and verifies.
    auto linux_api = world.linuxApi(0);
    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(linux_api, sink_config);
    sink.start();

    auto engine_api = world.engineApi(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 512;
    apps::BulkSenderApp sender(engine_api, sender_config);
    sender.start();

    world.sim.runFor(sim::secondsToTicks(0.002));

    EXPECT_TRUE(sender.connected());
    EXPECT_GT(sink.bytesReceived(), 10'000u);
    EXPECT_EQ(sink.patternErrors(), 0u);
}

TEST(EngineE2E, EchoRoundTripsAcrossEngines)
{
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    EnginePairWorld world(1, config);

    auto server_api = world.apiB(0);
    apps::EchoServerConfig server_config;
    apps::EchoServerApp server(server_api, server_config);
    server.start();

    auto client_api = world.apiA(0);
    apps::EchoClientConfig client_config;
    client_config.peer = test::ipB();
    client_config.flows = 8;
    sim::Histogram latency(world.sim.stats(), "test.echoLatency",
                           "echo round-trip latency (us)");
    apps::EchoClientApp client(client_api, &latency, client_config);
    client.start();

    world.sim.runFor(sim::secondsToTicks(0.003));

    EXPECT_EQ(client.connectedFlows(), 8u);
    EXPECT_GT(client.roundTrips(), 100u);
    EXPECT_GT(server.messagesEchoed(), 100u);
    // Round trips through two PCIe crossings and the wire: tens of us.
    EXPECT_LT(latency.percentile(50), 200.0);
}

TEST(EngineE2E, LossyLinkStillDeliversExactly)
{
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    net::FaultModel faults;
    faults.dropProbability = 0.01;
    faults.reorderProbability = 0.02;
    faults.duplicateProbability = 0.005;
    faults.seed = 7;
    EnginePairWorld world(1, config, faults);

    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    sink_config.verifyPattern = true;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    auto client_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = test::ipB();
    sender_config.requestBytes = 1024;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    world.sim.runFor(sim::secondsToTicks(0.01));

    EXPECT_GT(sink.bytesReceived(), 50'000u);
    EXPECT_EQ(sink.patternErrors(), 0u);
    EXPECT_GT(world.engineA->packetGenerator().retransmissions(), 0u);
}

} // namespace
} // namespace f4t
