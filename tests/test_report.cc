/**
 * @file
 * Tests for the observability tooling behind tools/f4t_report: the
 * minimal JSON reader, run-metadata stamping and comparability rules,
 * the metric-direction heuristic, and the noise-aware regression
 * comparison across BENCH-style and stage-latency documents.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.hh"
#include "obs/regression.hh"
#include "obs/run_meta.hh"

namespace f4t::obs
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

void
writeFileOrDie(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << path;
    out << text;
}

// ---------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------

TEST(Json, ParsesNestedDocument)
{
    auto doc = parseJson(R"({"a": [1, 2.5, -3e2], "b": {"c": true,
                             "d": null, "e": "x"}, "f": false})");
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(doc->isObject());

    const JsonValue *a = doc->find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->arr.size(), 3u);
    EXPECT_DOUBLE_EQ(a->arr[0].num, 1.0);
    EXPECT_DOUBLE_EQ(a->arr[1].num, 2.5);
    EXPECT_DOUBLE_EQ(a->arr[2].num, -300.0);

    const JsonValue *b = doc->find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->find("c")->boolOr(false));
    EXPECT_EQ(b->find("d")->kind, JsonValue::Kind::null);
    EXPECT_EQ(b->find("e")->stringOr(""), "x");
    EXPECT_EQ(doc->find("nope"), nullptr);
}

TEST(Json, ParsesStringEscapes)
{
    auto doc = parseJson(R"({"s": "a\"b\\c\n\tA"})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("s")->str, "a\"b\\c\n\tA");
}

TEST(Json, ReportsErrorsWithOffset)
{
    std::string error;
    EXPECT_FALSE(parseJson("{\"a\": }", &error).has_value());
    EXPECT_FALSE(error.empty());

    error.clear();
    EXPECT_FALSE(parseJson("{} trailing", &error).has_value());
    EXPECT_NE(error.find("trailing"), std::string::npos);

    error.clear();
    EXPECT_FALSE(parseJson("{\"a\": \"unterminated", &error).has_value());
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------
// metric direction heuristic
// ---------------------------------------------------------------------

TEST(MetricDirection, RatesHigherLatenciesLower)
{
    bool higher = false;
    ASSERT_TRUE(metricDirection("host_events_per_sec", &higher));
    EXPECT_TRUE(higher);
    ASSERT_TRUE(metricDirection("sim_packets_per_wall_sec", &higher));
    EXPECT_TRUE(higher);
    ASSERT_TRUE(metricDirection("goodput_gbps", &higher));
    EXPECT_TRUE(higher);

    ASSERT_TRUE(metricDirection("total.p50_us", &higher));
    EXPECT_FALSE(higher);
    ASSERT_TRUE(metricDirection("queue.p99_us", &higher));
    EXPECT_FALSE(higher);
    ASSERT_TRUE(metricDirection("latency_p99", &higher));
    EXPECT_FALSE(higher);
}

TEST(MetricDirection, WallClockThroughputMetricsGateHigher)
{
    // The schema-5 wall-clock metrics the CI perf-report gates: all
    // contain "per_wall", which the higher-better list matches before
    // the lower-better "wall" substring can claim them.
    bool higher = false;
    ASSERT_TRUE(metricDirection("sim_pkts_per_wall_sec_per_flow", &higher));
    EXPECT_TRUE(higher);
    ASSERT_TRUE(metricDirection("sim_ticks_per_wall_sec", &higher));
    EXPECT_TRUE(higher);
    ASSERT_TRUE(metricDirection("round_trips_per_wall_sec", &higher));
    EXPECT_TRUE(higher);
}

TEST(MetricDirection, ProfileCategoriesGateLowerSharesNotAtAll)
{
    // Per-category self time regresses upward (lower is better via
    // the "_us" suffix); shares and coverage are percentages of a
    // whole with no inherent direction, so they must stay ungated.
    bool higher = false;
    ASSERT_TRUE(metricDirection("profile.categories.fpc_exec.self_us",
                                &higher));
    EXPECT_FALSE(higher);
    EXPECT_FALSE(
        metricDirection("profile.categories.fpc_exec.share_pct", &higher));
    EXPECT_FALSE(metricDirection("profile.coverage_pct", &higher));
    EXPECT_FALSE(metricDirection("profile.occupancy_pct", &higher));
    // The profile's own wall reading stays excluded like wall_seconds.
    EXPECT_FALSE(metricDirection("profile.wall_seconds", &higher));
}

TEST(MetricDirection, BookkeepingValuesExcluded)
{
    bool higher = false;
    // Wall-clock duration and distribution maxima are too noisy to
    // gate on; raw counts carry no direction at all.
    EXPECT_FALSE(metricDirection("wall_seconds", &higher));
    EXPECT_FALSE(metricDirection("total.max_us", &higher));
    EXPECT_FALSE(metricDirection("events_processed", &higher));
    EXPECT_FALSE(metricDirection("sim_ticks", &higher));
}

// ---------------------------------------------------------------------
// run metadata
// ---------------------------------------------------------------------

TEST(RunMeta, WriteParseRoundTrip)
{
    RunMeta meta;
    meta.gitSha = "abc123def456";
    meta.preset = "release";
    meta.traceEnabled = true;
    meta.checksEnabled = false;
    meta.profileEnabled = true;
    meta.profiled = true;
    meta.timestamp = "2026-08-07T00:00:00Z";

    std::string path = tempPath("meta_roundtrip.json");
    std::FILE *out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fprintf(out, "{\n");
    writeMetaJson(out, meta, 2);
    std::fprintf(out, "\n}\n");
    std::fclose(out);

    std::string error;
    auto text = readFile(path, &error);
    ASSERT_TRUE(text.has_value()) << error;
    auto doc = parseJson(*text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const JsonValue *meta_obj = doc->find("meta");
    ASSERT_NE(meta_obj, nullptr);

    RunMeta parsed = parseRunMeta(*meta_obj);
    EXPECT_EQ(parsed.gitSha, meta.gitSha);
    EXPECT_EQ(parsed.preset, meta.preset);
    EXPECT_EQ(parsed.traceEnabled, meta.traceEnabled);
    EXPECT_EQ(parsed.checksEnabled, meta.checksEnabled);
    EXPECT_EQ(parsed.profileEnabled, meta.profileEnabled);
    EXPECT_EQ(parsed.profiled, meta.profiled);
    EXPECT_EQ(parsed.timestamp, meta.timestamp);
    EXPECT_TRUE(parsed.known());
}

TEST(RunMeta, ComparableRunsRefusesMixedBuilds)
{
    RunMeta a;
    a.preset = "release";
    a.traceEnabled = false;
    a.checksEnabled = false;
    RunMeta b = a;
    std::string why;
    EXPECT_TRUE(comparableRuns(a, b, &why)) << why;

    // Different git SHAs ARE comparable — that is the comparison.
    b.gitSha = "something_else";
    b.timestamp = "2020-01-01T00:00:00Z";
    EXPECT_TRUE(comparableRuns(a, b, &why)) << why;

    b = a;
    b.preset = "default";
    EXPECT_FALSE(comparableRuns(a, b, &why));
    EXPECT_NE(why.find("preset"), std::string::npos);

    b = a;
    b.traceEnabled = true;
    EXPECT_FALSE(comparableRuns(a, b, &why));
    EXPECT_NE(why.find("F4T_ENABLE_TRACE"), std::string::npos);

    b = a;
    b.checksEnabled = true;
    EXPECT_FALSE(comparableRuns(a, b, &why));
    EXPECT_NE(why.find("check"), std::string::npos);

    // The profiler's compile gate and its runtime switch both change
    // what a wall-clock metric measures, so neither may be mixed.
    b = a;
    b.profileEnabled = true;
    EXPECT_FALSE(comparableRuns(a, b, &why));
    EXPECT_NE(why.find("F4T_ENABLE_PROFILE"), std::string::npos);

    b = a;
    b.profiled = true;
    EXPECT_FALSE(comparableRuns(a, b, &why));
    EXPECT_NE(why.find("profile"), std::string::npos);
}

// ---------------------------------------------------------------------
// regression comparison
// ---------------------------------------------------------------------

const char *const kBaselineBench = R"({
  "bench": "kernel",
  "schema": 2,
  "meta": {
    "git_sha": "aaaa",
    "preset": "release",
    "trace_enabled": false,
    "checks_enabled": false,
    "timestamp": "2026-01-01T00:00:00Z"
  },
  "scenarios": [
    {
      "name": "event_rate",
      "wall_seconds": 1.0,
      "host_events_per_sec": 1000000.0,
      "events_processed": 1000000,
      "fingerprint": "c728275c7a9b203e"
    },
    {
      "name": "bulk_transfer",
      "wall_seconds": 2.0,
      "sim_packets_per_wall_sec": 500000.0,
      "fingerprint": "79b615094008c707"
    }
  ]
})";

std::string
loadedPath(const std::string &name, const std::string &text)
{
    std::string path = tempPath(name);
    writeFileOrDie(path, text);
    return path;
}

ReportDoc
mustLoad(const std::string &path)
{
    std::string error;
    auto doc = loadReportDoc(path, &error);
    EXPECT_TRUE(doc.has_value()) << error;
    return doc.value_or(ReportDoc{});
}

TEST(Regression, IdenticalInputsPass)
{
    std::string path = loadedPath("ident.json", kBaselineBench);
    ReportDoc doc = mustLoad(path);
    EXPECT_EQ(doc.kind, "kernel");
    EXPECT_EQ(doc.meta.preset, "release");
    ASSERT_EQ(doc.scenarios.size(), 2u);

    RegressionReport report = compareDocs(doc, doc, 0.10);
    EXPECT_FALSE(report.anyRegression);
    ASSERT_FALSE(report.comparisons.empty());
    for (const Comparison &c : report.comparisons) {
        EXPECT_EQ(c.verdict, Verdict::pass);
        EXPECT_DOUBLE_EQ(c.deltaPct, 0.0);
    }
}

TEST(Regression, ThroughputDropBeyondBandRegresses)
{
    ReportDoc base = mustLoad(loadedPath("rbase.json", kBaselineBench));

    std::string cand_text = kBaselineBench;
    // -20% host_events_per_sec, past a 10% band.
    auto pos = cand_text.find("1000000.0");
    ASSERT_NE(pos, std::string::npos);
    cand_text.replace(pos, 9, "800000.00");
    ReportDoc cand = mustLoad(loadedPath("rcand.json", cand_text));

    RegressionReport report = compareDocs(base, cand, 0.10);
    EXPECT_TRUE(report.anyRegression);
    bool found = false;
    for (const Comparison &c : report.comparisons) {
        if (c.metric != "host_events_per_sec")
            continue;
        found = true;
        EXPECT_EQ(c.verdict, Verdict::regressed);
        EXPECT_NEAR(c.deltaPct, -20.0, 0.01);
    }
    EXPECT_TRUE(found);

    // The same delta inside a generous band passes.
    EXPECT_FALSE(compareDocs(base, cand, 0.25).anyRegression);
}

TEST(Regression, LatencyRiseRegressesAndDropImproves)
{
    const char *const stage_doc = R"({
  "kind": "stage_latency",
  "schema": 1,
  "meta": {"preset": "default", "trace_enabled": true,
           "checks_enabled": true},
  "stages": [
    {
      "name": "wire",
      "total": {"count": 100, "mean_us": 2.0, "p50_us": %P50%,
                "p99_us": 4.0, "max_us": 9.0}
    }
  ],
  "e2e": {"total": {"count": 100, "mean_us": 50.0, "p50_us": 48.0,
                    "p99_us": 90.0, "max_us": 120.0}}
})";

    auto withP50 = [&](const char *value) {
        std::string text = stage_doc;
        text.replace(text.find("%P50%"), 5, value);
        return text;
    };
    ReportDoc base =
        mustLoad(loadedPath("sbase.json", withP50("2.0")));
    EXPECT_EQ(base.kind, "stage_latency");
    ASSERT_EQ(base.scenarios.size(), 2u); // stage:wire + e2e

    ReportDoc worse =
        mustLoad(loadedPath("sworse.json", withP50("3.0")));
    RegressionReport report = compareDocs(base, worse, 0.10);
    EXPECT_TRUE(report.anyRegression);

    // Lower latency is an improvement, never a regression.
    RegressionReport improved = compareDocs(worse, base, 0.10);
    EXPECT_FALSE(improved.anyRegression);
    bool saw_improved = false;
    for (const Comparison &c : improved.comparisons) {
        if (c.verdict == Verdict::improved)
            saw_improved = true;
    }
    EXPECT_TRUE(saw_improved);
}

TEST(Regression, FingerprintChangeIsNoteNotFailure)
{
    ReportDoc base = mustLoad(loadedPath("fbase.json", kBaselineBench));
    std::string cand_text = kBaselineBench;
    auto pos = cand_text.find("c728275c7a9b203e");
    ASSERT_NE(pos, std::string::npos);
    cand_text.replace(pos, 16, "deadbeefdeadbeef");
    ReportDoc cand = mustLoad(loadedPath("fcand.json", cand_text));

    RegressionReport report = compareDocs(base, cand, 0.10);
    EXPECT_FALSE(report.anyRegression);
    bool noted = false;
    for (const std::string &note : report.notes) {
        if (note.find("fingerprint") != std::string::npos)
            noted = true;
    }
    EXPECT_TRUE(noted);
}

TEST(Regression, MissingScenarioIsNoted)
{
    ReportDoc base = mustLoad(loadedPath("mbase.json", kBaselineBench));
    ReportDoc cand = base;
    cand.scenarios.pop_back();

    RegressionReport report = compareDocs(base, cand, 0.10);
    EXPECT_FALSE(report.anyRegression);
    bool noted = false;
    for (const std::string &note : report.notes) {
        if (note.find("bulk_transfer") != std::string::npos)
            noted = true;
    }
    EXPECT_TRUE(noted);
}

TEST(Regression, LoadRejectsGarbage)
{
    std::string error;
    EXPECT_FALSE(
        loadReportDoc(tempPath("does_not_exist.json"), &error).has_value());
    EXPECT_FALSE(error.empty());

    error.clear();
    std::string path = loadedPath("garbage.json", "not json at all");
    EXPECT_FALSE(loadReportDoc(path, &error).has_value());
    EXPECT_FALSE(error.empty());

    error.clear();
    path = loadedPath("noscenarios.json", R"({"bench": "kernel"})");
    EXPECT_FALSE(loadReportDoc(path, &error).has_value());
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace f4t::obs
