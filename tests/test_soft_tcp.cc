/**
 * @file
 * Tests for the software reference TCP stack: connection lifecycle,
 * data transfer, flow control, loss recovery, and teardown over a
 * real simulated link.
 */

#include <gtest/gtest.h>

#include "net/link.hh"
#include "sim/simulation.hh"
#include "tcp/soft_tcp.hh"

namespace f4t::tcp
{
namespace
{

struct SoftTcpFixture : ::testing::Test
{
    sim::Simulation sim;
    std::unique_ptr<SoftTcpStack> stackA;
    std::unique_ptr<SoftTcpStack> stackB;
    std::unique_ptr<net::Link> link;

    void
    build(SoftCcAlgo cc = SoftCcAlgo::newReno,
          const net::FaultModel &faults = {})
    {
        SoftTcpConfig config_a;
        config_a.ip = net::Ipv4Address::fromOctets(10, 0, 0, 1);
        config_a.mac = net::MacAddress{{2, 0, 0, 0, 0, 1}};
        config_a.cc = cc;
        SoftTcpConfig config_b = config_a;
        config_b.ip = net::Ipv4Address::fromOctets(10, 0, 0, 2);
        config_b.mac = net::MacAddress{{2, 0, 0, 0, 0, 2}};

        stackA = std::make_unique<SoftTcpStack>(sim, "stackA", config_a);
        stackB = std::make_unique<SoftTcpStack>(sim, "stackB", config_b);
        link = std::make_unique<net::Link>(sim, "link", 100e9,
                                           sim::nanosecondsToTicks(500),
                                           faults);
        link->connect(*stackA, *stackB);
        stackA->setTransmit([this](net::Packet &&pkt) {
            link->aToB().send(std::move(pkt));
        });
        stackB->setTransmit([this](net::Packet &&pkt) {
            link->bToA().send(std::move(pkt));
        });
        stackA->addArpEntry(config_b.ip, config_b.mac);
        stackB->addArpEntry(config_a.ip, config_a.mac);
    }

    void run(double us) { sim.runFor(sim::microsecondsToTicks(us)); }
};

TEST_F(SoftTcpFixture, HandshakeEstablishesBothEnds)
{
    build();
    stackB->listen(80);

    SoftConnId accepted = invalidSoftConn;
    SoftTcpCallbacks callbacks_b;
    callbacks_b.onAccept = [&](SoftConnId id, std::uint16_t port) {
        EXPECT_EQ(port, 80);
        accepted = id;
    };
    stackB->setCallbacks(callbacks_b);

    bool connected = false;
    SoftTcpCallbacks callbacks_a;
    callbacks_a.onConnected = [&](SoftConnId) { connected = true; };
    stackA->setCallbacks(callbacks_a);

    SoftConnId conn = stackA->connect(
        net::Ipv4Address::fromOctets(10, 0, 0, 2), 80);
    run(50);

    EXPECT_TRUE(connected);
    EXPECT_NE(accepted, invalidSoftConn);
    EXPECT_EQ(stackA->state(conn), ConnState::established);
    EXPECT_EQ(stackB->state(accepted), ConnState::established);
}

TEST_F(SoftTcpFixture, SynToClosedPortGetsReset)
{
    build();
    bool reset = false;
    SoftTcpCallbacks callbacks;
    callbacks.onReset = [&](SoftConnId) { reset = true; };
    stackA->setCallbacks(callbacks);
    stackA->connect(net::Ipv4Address::fromOctets(10, 0, 0, 2), 81);
    run(50);
    EXPECT_TRUE(reset);
}

TEST_F(SoftTcpFixture, BulkBytesArriveIntactAndInOrder)
{
    build();
    stackB->listen(80);

    std::vector<std::uint8_t> received;
    SoftTcpCallbacks callbacks_b;
    callbacks_b.onReadable = [&](SoftConnId id, std::size_t) {
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = stackB->recv(id, std::span<std::uint8_t>(buf, 4096))) >
               0) {
            received.insert(received.end(), buf, buf + n);
        }
    };
    stackB->setCallbacks(callbacks_b);

    constexpr std::size_t total = 200'000;
    std::vector<std::uint8_t> payload(total);
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 7);

    std::size_t sent = 0;
    SoftConnId conn = invalidSoftConn;
    SoftTcpCallbacks callbacks_a;
    auto pump = [&](SoftConnId id) {
        while (sent < total) {
            std::size_t n = stackA->send(
                id, std::span(payload).subspan(sent,
                                               std::min<std::size_t>(
                                                   8192, total - sent)));
            sent += n;
            if (n == 0)
                return;
        }
    };
    callbacks_a.onConnected = pump;
    callbacks_a.onWritable = pump;
    stackA->setCallbacks(callbacks_a);
    conn = stackA->connect(net::Ipv4Address::fromOctets(10, 0, 0, 2), 80);
    (void)conn;
    run(2000);

    ASSERT_EQ(received.size(), total);
    EXPECT_EQ(received, payload);
}

TEST_F(SoftTcpFixture, RecoversFromHeavyLossExactlyOnce)
{
    net::FaultModel faults;
    faults.dropProbability = 0.05;
    faults.reorderProbability = 0.05;
    faults.duplicateProbability = 0.02;
    faults.seed = 321;
    build(SoftCcAlgo::cubic, faults);
    stackB->listen(80);

    std::vector<std::uint8_t> received;
    SoftTcpCallbacks callbacks_b;
    callbacks_b.onReadable = [&](SoftConnId id, std::size_t) {
        std::uint8_t buf[4096];
        std::size_t n;
        while ((n = stackB->recv(id, std::span<std::uint8_t>(buf, 4096))) >
               0) {
            received.insert(received.end(), buf, buf + n);
        }
    };
    stackB->setCallbacks(callbacks_b);

    constexpr std::size_t total = 60'000;
    std::vector<std::uint8_t> payload(total);
    for (std::size_t i = 0; i < total; ++i)
        payload[i] = static_cast<std::uint8_t>(i * 13 + 5);

    std::size_t sent = 0;
    SoftTcpCallbacks callbacks_a;
    auto pump = [&](SoftConnId id) {
        while (sent < total) {
            std::size_t n = stackA->send(
                id, std::span(payload).subspan(sent,
                                               std::min<std::size_t>(
                                                   4096, total - sent)));
            sent += n;
            if (n == 0)
                return;
        }
    };
    callbacks_a.onConnected = pump;
    callbacks_a.onWritable = pump;
    stackA->setCallbacks(callbacks_a);
    stackA->connect(net::Ipv4Address::fromOctets(10, 0, 0, 2), 80);
    run(100'000); // losses force RTO waits (5 ms floor)

    ASSERT_EQ(received.size(), total);
    EXPECT_EQ(received, payload);
    EXPECT_GT(stackA->retransmissions(), 0u);
}

TEST_F(SoftTcpFixture, GracefulCloseWalksTheStateMachine)
{
    build();
    stackB->listen(80);

    SoftConnId accepted = invalidSoftConn;
    bool b_peer_closed = false;
    bool b_closed = false;
    SoftTcpCallbacks callbacks_b;
    callbacks_b.onAccept = [&](SoftConnId id, std::uint16_t) {
        accepted = id;
    };
    callbacks_b.onPeerClosed = [&](SoftConnId id) {
        b_peer_closed = true;
        stackB->close(id); // close our half too
    };
    callbacks_b.onClosed = [&](SoftConnId) { b_closed = true; };
    stackB->setCallbacks(callbacks_b);

    bool a_closed = false;
    SoftConnId conn = invalidSoftConn;
    SoftTcpCallbacks callbacks_a;
    callbacks_a.onConnected = [&](SoftConnId id) { stackA->close(id); };
    callbacks_a.onClosed = [&](SoftConnId) { a_closed = true; };
    stackA->setCallbacks(callbacks_a);
    conn = stackA->connect(net::Ipv4Address::fromOctets(10, 0, 0, 2), 80);
    run(50'000); // covers TIME_WAIT (10 ms model)

    EXPECT_TRUE(b_peer_closed);
    EXPECT_TRUE(b_closed);
    EXPECT_TRUE(a_closed);
    // Both connections fully recycled.
    EXPECT_EQ(stackA->state(conn), ConnState::closed);
    EXPECT_EQ(stackB->state(accepted), ConnState::closed);
}

TEST_F(SoftTcpFixture, ZeroWindowBlocksAndRecovers)
{
    build();
    stackB->listen(80);

    // The receiver refuses to read until told: window must close.
    bool draining = false;
    std::uint64_t drained = 0;
    SoftConnId accepted = invalidSoftConn;
    SoftTcpCallbacks callbacks_b;
    callbacks_b.onAccept = [&](SoftConnId id, std::uint16_t) {
        accepted = id;
    };
    callbacks_b.onReadable = [&](SoftConnId id, std::size_t) {
        if (!draining)
            return;
        std::uint8_t buf[8192];
        std::size_t n;
        while ((n = stackB->recv(id, std::span<std::uint8_t>(buf, 8192))) >
               0) {
            drained += n;
        }
    };
    stackB->setCallbacks(callbacks_b);

    constexpr std::size_t total = 900'000; // exceeds the 512 KB window
    std::size_t sent = 0;
    std::vector<std::uint8_t> chunk(8192, 0x5a);
    SoftTcpCallbacks callbacks_a;
    auto pump = [&](SoftConnId id) {
        while (sent < total) {
            std::size_t n = stackA->send(
                id, std::span(chunk).subspan(
                        0, std::min(chunk.size(), total - sent)));
            sent += n;
            if (n == 0)
                return;
        }
    };
    callbacks_a.onConnected = pump;
    callbacks_a.onWritable = pump;
    stackA->setCallbacks(callbacks_a);
    stackA->connect(net::Ipv4Address::fromOctets(10, 0, 0, 2), 80);

    run(30'000);
    // The receive window is fully closed: the receiver buffered
    // exactly its 512 KB and nothing has been delivered to the app.
    EXPECT_EQ(drained, 0u);
    EXPECT_EQ(stackB->readable(accepted), 512u * 1024u);

    // Open the floodgates; everything must flow through.
    draining = true;
    std::uint8_t buf[8192];
    std::size_t n;
    while ((n = stackB->recv(accepted,
                             std::span<std::uint8_t>(buf, 8192))) > 0)
        drained += n;
    run(60'000);

    EXPECT_EQ(sent, total);
    EXPECT_EQ(drained, total);
}

} // namespace
} // namespace f4t::tcp
