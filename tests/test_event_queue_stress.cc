/**
 * @file
 * Stress tests for the two-level (ladder + far heap) event queue and
 * the kernel's recycling pools.
 *
 * The queue promises exactly one observable behavior: events pop in
 * (tick, priority, insertion sequence) order, identical to a single
 * global priority queue. The randomized test here drives schedule /
 * deschedule / reschedule / run at mixed horizons — spanning the solo
 * register, the ladder granules, window rebases, and the far heap —
 * and cross-checks every fired event against a std::multimap reference
 * model that implements the ordering contract directly.
 *
 * The pool tests pin down the steady-state-allocation-free property:
 * callback events and payload buffers must recycle rather than grow
 * their arenas.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "net/payload_buffer.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

namespace f4t::sim
{
namespace
{

/** Reference ordering key, mirroring the queue's contract. */
using RefKey = std::tuple<Tick, int, std::uint64_t>;

struct FiredRecord
{
    Tick when;
    int id;
};

struct StressEvent : Event
{
    using Event::Event;
    int id = -1;
    const EventQueue *queue = nullptr;
    std::vector<FiredRecord> *log = nullptr;
    void process() override { log->push_back({queue->now(), id}); }
};

TEST(EventQueueStress, RandomizedAgainstReferenceModel)
{
    // Events must outlive the queue: squashed entries referencing them
    // can survive inside the containers until destruction.
    constexpr int numEvents = 48;
    constexpr int priorities[] = {Event::clockPriority,
                                  Event::defaultPriority,
                                  Event::statsPriority};
    std::deque<StressEvent> events;

    EventQueue queue;
    std::vector<FiredRecord> log;
    Random rng(0xF47F47);

    // id -> reference entry for scheduled events; multimap carries the
    // authoritative fire order.
    std::multimap<RefKey, int> ref;
    std::map<int, std::multimap<RefKey, int>::iterator> byId;
    std::uint64_t seqCounter = 0;

    for (int i = 0; i < numEvents; ++i) {
        StressEvent &ev = events.emplace_back(priorities[i % 3]);
        ev.id = i;
        ev.queue = &queue;
        ev.log = &log;
    }

    // Horizon mix: same-granule, in-window, a few windows out, and
    // deep heap territory (forces batched rebases when reached).
    auto random_when = [&]() -> Tick {
        switch (rng.below(8)) {
        case 0:
        case 1:
        case 2:
            return queue.now() + rng.below(64);
        case 3:
        case 4:
        case 5:
            return queue.now() + rng.below(EventQueue::ladderSpan);
        case 6:
            return queue.now() + rng.below(4 * EventQueue::ladderSpan);
        default:
            return queue.now() + rng.below(64 * EventQueue::ladderSpan);
        }
    };

    auto check_front = [&]() {
        ASSERT_FALSE(log.empty());
        ASSERT_FALSE(ref.empty());
        auto front = ref.begin();
        EXPECT_EQ(log.back().id, front->second);
        EXPECT_EQ(log.back().when, std::get<0>(front->first));
        byId.erase(front->second);
        ref.erase(front);
        log.pop_back();
    };

    for (int op = 0; op < 50000; ++op) {
        int id = static_cast<int>(rng.below(numEvents));
        StressEvent &ev = events[id];
        switch (rng.below(16)) {
        case 0:
        case 1:
        case 2:
        case 3:
        case 4:
        case 5: // schedule
            if (!ev.scheduled()) {
                Tick when = random_when();
                queue.schedule(&ev, when);
                auto it = ref.emplace(RefKey{when, ev.priority(),
                                             seqCounter++},
                                      id);
                byId[id] = it;
            }
            break;
        case 6:
        case 7: // deschedule
            if (ev.scheduled()) {
                queue.deschedule(&ev);
                ref.erase(byId.at(id));
                byId.erase(id);
            }
            break;
        case 8:
        case 9: // reschedule (works scheduled or not)
        {
            Tick when = random_when();
            queue.reschedule(&ev, when);
            if (auto it = byId.find(id); it != byId.end())
                ref.erase(it->second);
            byId[id] = ref.emplace(RefKey{when, ev.priority(),
                                          seqCounter++},
                                   id);
            break;
        }
        default: // run one event
            if (queue.runOne()) {
                check_front();
                if (::testing::Test::HasFailure())
                    return;
            }
            break;
        }
        ASSERT_EQ(queue.size(), ref.size());
    }

    // Drain: the remaining events must fire in exact reference order.
    while (queue.runOne()) {
        check_front();
        if (::testing::Test::HasFailure())
            return;
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_TRUE(ref.empty());
}

TEST(EventQueueStress, SoloRegisterMetronome)
{
    // The steady state of a saturated pipeline: exactly one live
    // self-rescheduling event. Must pop/push without touching the
    // containers and stay exactly ordered across thousands of laps,
    // including laps longer than the ladder window.
    EventQueue queue;
    Tick expect = 0;
    int fired = 0;
    for (int lap = 0; lap < 5000; ++lap) {
        Tick step = (lap % 7 == 0) ? EventQueue::ladderSpan + 17 : 4000;
        expect += step;
        queue.scheduleCallback(expect, "metronome", [&] { ++fired; });
        ASSERT_TRUE(queue.runOne());
        ASSERT_EQ(queue.now(), expect);
    }
    EXPECT_EQ(fired, 5000);
    EXPECT_TRUE(queue.empty());
    // One pooled callback event serviced the whole run.
    EXPECT_EQ(queue.callbackPoolAllocated(), 1u);
    EXPECT_EQ(queue.callbackPoolFree(), 1u);
}

TEST(EventQueueStress, SoloDescheduleIsEager)
{
    EventQueue queue;
    StressEvent ev;
    std::vector<FiredRecord> log;
    ev.id = 0;
    ev.queue = &queue;
    ev.log = &log;

    queue.schedule(&ev, 100);
    EXPECT_EQ(queue.size(), 1u);
    queue.deschedule(&ev);
    EXPECT_TRUE(queue.empty());
    // The solo occupant leaves no squashed residue behind.
    EXPECT_EQ(queue.squashedEntries(), 0u);

    queue.schedule(&ev, 200);
    queue.run();
    ASSERT_EQ(log.size(), 1u);
    EXPECT_EQ(log[0].when, 200u);
}

TEST(EventQueueStress, CallbackPoolRecyclesAcrossBursts)
{
    EventQueue queue;
    int fired = 0;

    // First burst sets the pool's high-water mark...
    for (int i = 0; i < 64; ++i)
        queue.scheduleCallback(queue.now() + 10 + i, "burst",
                               [&] { ++fired; });
    queue.run();
    std::size_t high_water = queue.callbackPoolAllocated();
    EXPECT_GE(high_water, 64u);
    EXPECT_EQ(queue.callbackPoolFree(), high_water);

    // ...and every later burst of the same width reuses it.
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 64; ++i)
            queue.scheduleCallback(queue.now() + 10 + i, "burst",
                                   [&] { ++fired; });
        queue.run();
    }
    EXPECT_EQ(fired, 64 * 101);
    EXPECT_EQ(queue.callbackPoolAllocated(), high_water);
    EXPECT_EQ(queue.callbackPoolFree(), high_water);
}

TEST(PayloadPool, RecyclesBuffersByDelta)
{
    // The pool is process-wide, so measure deltas from the current
    // state rather than absolute counts.
    auto &pool = net::PayloadBufferPool::instance();
    {
        net::PayloadBuffer warm(1500);
    }
    std::size_t base_allocated = pool.allocated();
    std::size_t base_outstanding = pool.outstanding();

    for (int i = 0; i < 1000; ++i) {
        net::PayloadBuffer p(1500);
        p[0] = static_cast<std::uint8_t>(i);
    }
    // Sequential buffers all reused one pooled vector.
    EXPECT_EQ(pool.allocated(), base_allocated);
    EXPECT_EQ(pool.outstanding(), base_outstanding);
}

TEST(PayloadPool, LiveBuffersNeverShareStorage)
{
    net::PayloadBuffer a(64);
    a[0] = 0xAA;
    net::PayloadBuffer b(64);
    b[0] = 0xBB;
    // A buffer still referenced must never be handed out again.
    EXPECT_NE(a.data(), b.data());
    EXPECT_EQ(a[0], 0xAA);

    net::PayloadBuffer copy(a);
    EXPECT_NE(copy.data(), a.data());
    EXPECT_EQ(copy[0], 0xAA);

    const std::uint8_t *storage = a.data();
    net::PayloadBuffer moved(std::move(a));
    EXPECT_EQ(moved.data(), storage); // moves steal, never copy
    EXPECT_TRUE(a.empty());
}

TEST(PayloadPool, VectorMoveDonatesCapacity)
{
    auto &pool = net::PayloadBufferPool::instance();
    std::vector<std::uint8_t> v(4096, 0x5A);
    const std::uint8_t *storage = v.data();
    std::size_t outstanding = pool.outstanding();
    net::PayloadBuffer p(std::move(v));
    EXPECT_EQ(p.data(), storage);
    EXPECT_EQ(p.size(), 4096u);
    EXPECT_EQ(pool.outstanding(), outstanding + 1);
}

} // namespace
} // namespace f4t::sim
