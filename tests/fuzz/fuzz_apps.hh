/**
 * @file
 * Fuzz workload applications: a request/response client and server
 * written against SocketApi (so they run unchanged on the F4T stack
 * and the Linux baseline) with every application byte double-entry
 * bookkept in a StreamOracle.
 *
 * Protocol: the client opens N staggered connections. On each it sends
 * a 12-byte header (logical connection id, request size, response
 * size — the server learns the logical id this way, independent of
 * accept order, which differs between worlds) followed by the request
 * payload. The server drains the request, then sends the response; the
 * client drains the response and closes; the server closes once its
 * peer has. Every payload byte is a pure function of (stream, offset),
 * so both ends know exactly what to expect without sharing state.
 */

#ifndef F4T_TESTS_FUZZ_APPS_HH
#define F4T_TESTS_FUZZ_APPS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "apps/socket_api.hh"
#include "apps/testbed.hh"
#include "net/stream_oracle.hh"

#include "fuzz_scenario.hh"

namespace f4t::fuzz
{

constexpr std::size_t headerBytes = 12;
constexpr std::uint16_t fuzzPort = 7001;

/** Oracle stream ids: one per direction of each logical connection. */
inline net::StreamOracle::StreamId
upStream(std::uint32_t conn)
{
    return conn * 2;
}

inline net::StreamOracle::StreamId
downStream(std::uint32_t conn)
{
    return conn * 2 + 1;
}

/** The expected payload byte at @p offset of @p stream. */
inline std::uint8_t
fuzzByte(std::uint64_t stream, std::uint64_t offset)
{
    return static_cast<std::uint8_t>((offset * 131 + 17 + stream * 83) &
                                     0xff);
}

/** Byte @p pos of the client->server stream (header, then payload). */
inline std::uint8_t
upStreamByte(std::uint32_t conn, const ConnPlan &plan, std::uint64_t pos)
{
    if (pos < headerBytes) {
        std::uint32_t words[3] = {conn, plan.requestBytes,
                                  plan.responseBytes};
        return static_cast<std::uint8_t>(
            (words[pos / 4] >> ((pos % 4) * 8)) & 0xff);
    }
    return fuzzByte(upStream(conn), pos - headerBytes);
}

class FuzzClient
{
  public:
    FuzzClient(apps::SocketApi &api, const Scenario &scenario,
               net::StreamOracle &oracle)
        : api_(api), scenario_(scenario), oracle_(oracle),
          conns_(scenario.conns.size()), scratch_(8192)
    {}

    void
    start()
    {
        apps::SocketApi::Handlers handlers;
        handlers.onConnected = [this](int id) {
            Conn *c = find(id);
            if (c == nullptr)
                return;
            oracle_.setOutcome(c->index, net::ConnOutcome::established);
            pump(*c);
        };
        handlers.onWritable = [this](int id) {
            if (Conn *c = find(id))
                pump(*c);
        };
        handlers.onReadable = [this](int id, std::size_t) {
            if (Conn *c = find(id))
                drain(*c);
        };
        handlers.onPeerClosed = [this](int id) {
            // The server should never close first; drain whatever is
            // left and close so the run still terminates.
            if (Conn *c = find(id)) {
                drain(*c);
                if (!c->closeSent) {
                    c->closeSent = true;
                    api_.close(c->id);
                }
            }
        };
        handlers.onClosed = [this](int id) {
            if (Conn *c = find(id); c != nullptr && !c->done) {
                c->done = true;
                oracle_.setOutcome(c->index, net::ConnOutcome::closedClean);
            }
        };
        handlers.onReset = [this](int id) {
            if (Conn *c = find(id); c != nullptr && !c->done) {
                c->done = true;
                // A reset after we finished and closed is a teardown
                // race (e.g. an RST answering a duplicated segment that
                // arrived post-destroy): application-visibly the
                // connection delivered everything and closed cleanly,
                // and whether the race happens is timing-dependent, so
                // the differential outcome must not depend on it.
                oracle_.setOutcome(c->index,
                                   c->closeSent
                                       ? net::ConnOutcome::closedClean
                                       : net::ConnOutcome::reset);
            }
        };
        api_.setHandlers(handlers);

        for (std::size_t i = 0; i < conns_.size(); ++i) {
            sim::Tick when = api_.simulation().now() +
                             scenario_.conns[i].connectDelay + 1;
            api_.simulation().queue().scheduleCallback(
                when, "fuzz.connect", [this, i] { open(i); });
        }
    }

    /** All connections reached a terminal state. */
    bool
    done() const
    {
        return std::all_of(conns_.begin(), conns_.end(),
                           [](const Conn &c) { return c.done; });
    }

  private:
    struct Conn
    {
        int id = apps::SocketApi::invalidConn;
        std::uint32_t index = 0;
        std::uint64_t sent = 0;     ///< header + request bytes pushed
        std::uint64_t received = 0; ///< response bytes drained
        bool closeSent = false;
        bool done = false;
    };

    Conn *
    find(int id)
    {
        for (Conn &c : conns_) {
            if (c.id == id)
                return &c;
        }
        return nullptr;
    }

    void
    open(std::size_t index)
    {
        Conn &c = conns_[index];
        c.index = static_cast<std::uint32_t>(index);
        c.id = api_.connect(testbed::ipB(), fuzzPort);
    }

    void
    pump(Conn &c)
    {
        const ConnPlan &plan = scenario_.conns[c.index];
        const std::uint64_t total = headerBytes + plan.requestBytes;
        while (c.sent < total && !c.closeSent) {
            std::size_t chunk = static_cast<std::size_t>(
                std::min<std::uint64_t>(plan.chunkBytes, total - c.sent));
            for (std::size_t k = 0; k < chunk; ++k)
                scratch_[k] = upStreamByte(c.index, plan, c.sent + k);
            // Always attempt the send: a short or zero accept is what
            // arms the writable notification.
            std::size_t n = api_.send(
                c.id, std::span<const std::uint8_t>(scratch_.data(), chunk));
            if (n > 0) {
                oracle_.onSend(upStream(c.index),
                               std::span<const std::uint8_t>(scratch_.data(),
                                                             n));
                c.sent += n;
            }
            if (n < chunk)
                return;
        }
    }

    void
    drain(Conn &c)
    {
        const ConnPlan &plan = scenario_.conns[c.index];
        while (true) {
            std::size_t n = api_.recv(
                c.id, std::span<std::uint8_t>(scratch_.data(),
                                              scratch_.size()));
            if (n == 0)
                break;
            oracle_.onDeliver(downStream(c.index),
                              std::span<const std::uint8_t>(scratch_.data(),
                                                            n));
            c.received += n;
        }
        const std::uint64_t total = headerBytes + plan.requestBytes;
        if (!c.closeSent && c.sent == total &&
            c.received >= plan.responseBytes) {
            c.closeSent = true;
            api_.close(c.id);
        }
    }

    apps::SocketApi &api_;
    const Scenario &scenario_;
    net::StreamOracle &oracle_;
    std::vector<Conn> conns_;
    std::vector<std::uint8_t> scratch_;
};

class FuzzServer
{
  public:
    FuzzServer(apps::SocketApi &api, net::StreamOracle &oracle)
        : api_(api), oracle_(oracle), scratch_(8192)
    {}

    void
    start()
    {
        apps::SocketApi::Handlers handlers;
        handlers.onAccepted = [this](int id, std::uint16_t) {
            // Drain immediately: data may already be buffered if the
            // accept notification was delayed past the first arrivals.
            drain(id, conns_[id]);
        };
        handlers.onReadable = [this](int id, std::size_t) {
            auto it = conns_.find(id);
            if (it != conns_.end())
                drain(id, it->second);
        };
        handlers.onWritable = [this](int id) {
            auto it = conns_.find(id);
            if (it != conns_.end())
                pumpResponse(id, it->second);
        };
        handlers.onPeerClosed = [this](int id) {
            auto it = conns_.find(id);
            if (it == conns_.end())
                return;
            // Late data can still be pending: drain before closing.
            drain(id, it->second);
            it->second.peerClosed = true;
            maybeClose(id, it->second);
        };
        handlers.onClosed = [this](int id) { conns_.erase(id); };
        handlers.onReset = [this](int id) { conns_.erase(id); };
        api_.setHandlers(handlers);
        api_.listen(fuzzPort);
    }

  private:
    struct Conn
    {
        bool headerKnown = false;
        std::uint32_t index = 0;
        std::uint32_t requestBytes = 0;
        std::uint32_t responseBytes = 0;
        std::vector<std::uint8_t> headerBuf;
        std::uint64_t received = 0;
        std::uint64_t responseSent = 0;
        bool responding = false;
        bool peerClosed = false;
        bool closeSent = false;
    };

    void
    drain(int id, Conn &c)
    {
        while (true) {
            std::size_t n = api_.recv(
                id, std::span<std::uint8_t>(scratch_.data(),
                                            scratch_.size()));
            if (n == 0)
                break;
            const std::uint8_t *p = scratch_.data();
            std::size_t left = n;
            if (!c.headerKnown) {
                while (left > 0 && c.headerBuf.size() < headerBytes) {
                    c.headerBuf.push_back(*p++);
                    --left;
                }
                if (c.headerBuf.size() == headerBytes) {
                    auto word = [&c](std::size_t i) {
                        return static_cast<std::uint32_t>(
                            c.headerBuf[i * 4] |
                            (c.headerBuf[i * 4 + 1] << 8) |
                            (c.headerBuf[i * 4 + 2] << 16) |
                            (c.headerBuf[i * 4 + 3] << 24));
                    };
                    c.index = word(0);
                    c.requestBytes = word(1);
                    c.responseBytes = word(2);
                    c.headerKnown = true;
                    oracle_.onDeliver(
                        upStream(c.index),
                        std::span<const std::uint8_t>(c.headerBuf.data(),
                                                      c.headerBuf.size()));
                }
            }
            if (c.headerKnown && left > 0) {
                oracle_.onDeliver(upStream(c.index),
                                  std::span<const std::uint8_t>(p, left));
            }
            c.received += n;
        }
        if (c.headerKnown && !c.responding &&
            c.received >= headerBytes + c.requestBytes) {
            c.responding = true;
            pumpResponse(id, c);
        }
    }

    void
    pumpResponse(int id, Conn &c)
    {
        if (!c.responding)
            return;
        while (c.responseSent < c.responseBytes) {
            std::size_t chunk = static_cast<std::size_t>(
                std::min<std::uint64_t>(scratch_.size(),
                                        c.responseBytes - c.responseSent));
            for (std::size_t k = 0; k < chunk; ++k)
                scratch_[k] = fuzzByte(downStream(c.index),
                                       c.responseSent + k);
            std::size_t n = api_.send(
                id, std::span<const std::uint8_t>(scratch_.data(), chunk));
            if (n > 0) {
                oracle_.onSend(downStream(c.index),
                               std::span<const std::uint8_t>(scratch_.data(),
                                                             n));
                c.responseSent += n;
            }
            if (n < chunk)
                return;
        }
        maybeClose(id, c);
    }

    void
    maybeClose(int id, Conn &c)
    {
        if (c.peerClosed && !c.closeSent &&
            (!c.responding || c.responseSent == c.responseBytes)) {
            c.closeSent = true;
            api_.close(id);
        }
    }

    apps::SocketApi &api_;
    net::StreamOracle &oracle_;
    std::map<int, Conn> conns_;
    std::vector<std::uint8_t> scratch_;
};

} // namespace f4t::fuzz

#endif // F4T_TESTS_FUZZ_APPS_HH
