/**
 * @file
 * Deterministic fuzz scenario generation.
 *
 * A Scenario is a pure function of a single 64-bit seed: connection
 * count, per-connection request/response sizes and chunking, staggered
 * connect times, independent per-direction fault rates, and link
 * bandwidth are all drawn from one sim::Random stream. The same seed
 * therefore reproduces the same world inputs on every run and on every
 * world flavor (engine/engine, engine/Linux, Linux/Linux), which is
 * what makes differential comparison and seed replay possible.
 */

#ifndef F4T_TESTS_FUZZ_SCENARIO_HH
#define F4T_TESTS_FUZZ_SCENARIO_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "net/link.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace f4t::fuzz
{

/** One logical client connection's workload. */
struct ConnPlan
{
    std::uint32_t requestBytes = 0;  ///< client -> server payload
    std::uint32_t responseBytes = 0; ///< server -> client payload
    std::uint32_t chunkBytes = 0;    ///< client send() granularity
    sim::Tick connectDelay = 0;      ///< stagger from t=0
};

struct Scenario
{
    std::uint64_t seed = 0;
    std::vector<ConnPlan> conns;
    net::FaultModel faultsAtoB;
    net::FaultModel faultsBtoA;
    double bandwidthBps = 100e9;
    /** Give up (and fail) if the run has not completed by this tick. */
    sim::Tick deadline = 0;

    static Scenario fromSeed(std::uint64_t seed);

    /** One-line parameter dump for failure reports. */
    std::string describe() const;
};

inline net::FaultModel
drawFaultModel(sim::Random &rng, std::uint64_t link_seed, bool force)
{
    net::FaultModel faults;
    faults.seed = link_seed;
    // Mostly-faulty corpus: a faultless direction occasionally keeps
    // the clean path honest too.
    if (force || rng.chance(0.85)) {
        faults.dropProbability = rng.uniform() * 0.012;
        faults.duplicateProbability = rng.uniform() * 0.008;
        faults.reorderProbability = rng.uniform() * 0.02;
        faults.reorderMaxDelay =
            sim::microsecondsToTicks(rng.between(1, 30));
    }
    return faults;
}

inline bool
hasFaults(const net::FaultModel &faults)
{
    return faults.dropProbability > 0 || faults.duplicateProbability > 0 ||
           faults.reorderProbability > 0;
}

inline Scenario
Scenario::fromSeed(std::uint64_t seed)
{
    // Splash the seed so neighboring seeds diverge immediately.
    sim::Random rng(seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);

    Scenario sc;
    sc.seed = seed;

    std::size_t conn_count = rng.between(1, 5);
    for (std::size_t i = 0; i < conn_count; ++i) {
        ConnPlan plan;
        std::uint32_t base = 1u << rng.between(8, 13); // 256..8192
        plan.requestBytes = base + static_cast<std::uint32_t>(
            rng.below(base)); // jitter: 256..16383
        plan.responseBytes = 4 + static_cast<std::uint32_t>(rng.below(4096));
        plan.chunkBytes = 64u << rng.between(0, 5); // 64..2048
        plan.connectDelay = sim::microsecondsToTicks(rng.below(40));
        sc.conns.push_back(plan);
    }

    sc.faultsAtoB = drawFaultModel(rng, seed * 2 + 1, false);
    sc.faultsBtoA = drawFaultModel(rng, seed * 2 + 0x51ed2701, false);
    if (!hasFaults(sc.faultsAtoB) && !hasFaults(sc.faultsBtoA))
        sc.faultsAtoB = drawFaultModel(rng, seed * 2 + 1, true);

    constexpr double bandwidths[] = {10e9, 25e9, 100e9};
    sc.bandwidthBps = bandwidths[rng.below(3)];

    // Event-driven worlds idle for free, so the deadline is generous:
    // hitting it means retransmission stopped making progress.
    sc.deadline = sim::secondsToTicks(2.0);
    return sc;
}

inline std::string
Scenario::describe() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "seed=0x%llx conns=%zu bw=%.0fG "
                  "A->B[drop=%.4f dup=%.4f reorder=%.4f] "
                  "B->A[drop=%.4f dup=%.4f reorder=%.4f]",
                  static_cast<unsigned long long>(seed), conns.size(),
                  bandwidthBps / 1e9, faultsAtoB.dropProbability,
                  faultsAtoB.duplicateProbability,
                  faultsAtoB.reorderProbability,
                  faultsBtoA.dropProbability,
                  faultsBtoA.duplicateProbability,
                  faultsBtoA.reorderProbability);
    std::string out = buf;
    for (std::size_t i = 0; i < conns.size(); ++i) {
        std::snprintf(buf, sizeof(buf),
                      "\n  conn %zu: req=%u resp=%u chunk=%u delay=%.1fus",
                      i, conns[i].requestBytes, conns[i].responseBytes,
                      conns[i].chunkBytes,
                      sim::ticksToSeconds(conns[i].connectDelay) * 1e6);
        out += buf;
    }
    return out;
}

} // namespace f4t::fuzz

#endif // F4T_TESTS_FUZZ_SCENARIO_HH
