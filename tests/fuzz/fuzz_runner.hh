/**
 * @file
 * Fuzz runner: executes one Scenario on a chosen world flavor and
 * collects everything a failure report needs — the oracle verdict, the
 * ledger digest for differential comparison, and a bounded tail of the
 * packet trace captured through the link taps.
 *
 * runDifferential() runs the same seed on all three worlds
 * (FtEngine/FtEngine, FtEngine/Linux, Linux/Linux) and asserts they
 * agree on delivered bytes, stream digests, and connection outcomes.
 * Timing differs wildly between the stacks; the *application-visible
 * byte streams* must not.
 */

#ifndef F4T_TESTS_FUZZ_RUNNER_HH
#define F4T_TESTS_FUZZ_RUNNER_HH

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <string>

#include "apps/testbed.hh"
#include "net/stream_oracle.hh"
#include "sim/flight_recorder.hh"

#include "fuzz_apps.hh"
#include "fuzz_scenario.hh"

namespace f4t::fuzz
{

enum class WorldKind
{
    enginePair,
    engineLinux,
    linuxPair,
};

inline const char *
toString(WorldKind kind)
{
    switch (kind) {
      case WorldKind::enginePair: return "enginePair";
      case WorldKind::engineLinux: return "engineLinux";
      case WorldKind::linuxPair: return "linuxPair";
    }
    return "?";
}

constexpr WorldKind allWorlds[] = {WorldKind::enginePair,
                                   WorldKind::engineLinux,
                                   WorldKind::linuxPair};

/** Last-N packet log fed from the link taps (read-only observation). */
class TraceRing
{
  public:
    void
    record(sim::Tick now, const char *dir, const net::Packet &pkt)
    {
        char buf[160];
        if (pkt.isTcp()) {
            const net::TcpHeader &tcp = pkt.tcp();
            std::snprintf(
                buf, sizeof(buf),
                "%12.3fus %s %5u->%-5u seq=%u ack=%u len=%zu%s%s%s%s",
                sim::ticksToSeconds(now) * 1e6, dir, tcp.srcPort,
                tcp.dstPort, tcp.seq, tcp.ack, pkt.payload.size(),
                tcp.hasFlag(net::TcpFlags::syn) ? " SYN" : "",
                tcp.hasFlag(net::TcpFlags::fin) ? " FIN" : "",
                tcp.hasFlag(net::TcpFlags::rst) ? " RST" : "",
                tcp.hasFlag(net::TcpFlags::ack) ? " ACK" : "");
        } else {
            std::snprintf(buf, sizeof(buf), "%12.3fus %s %s",
                          sim::ticksToSeconds(now) * 1e6, dir,
                          pkt.isArp() ? "ARP" : "non-TCP");
        }
        if (entries_.size() >= capacity)
            entries_.pop_front();
        entries_.emplace_back(buf);
    }

    std::string
    dump() const
    {
        std::string out = "last " + std::to_string(entries_.size()) +
                          " packets on the wire:";
        for (const std::string &e : entries_)
            out += "\n    " + e;
        return out;
    }

  private:
    static constexpr std::size_t capacity = 48;
    std::deque<std::string> entries_;
};

struct RunResult
{
    bool completed = false;    ///< every connection reached a terminal state
    bool oraclePassed = false; ///< byte-stream ledger clean
    std::uint64_t ledgerDigest = 0;
    std::uint64_t deliveredBytes = 0;
    std::uint64_t auditRuns = 0; ///< invariant-audit sweeps that ran
    /** Kernel fingerprint for exact-equivalence differentials (the
     *  dispatch twin run): total events fired and the final simulated
     *  tick. Two runs that claim to be the same computation must match
     *  on both, not just on application-visible bytes. */
    std::uint64_t eventsProcessed = 0;
    sim::Tick finalTick = 0;
    std::string failureReport;   ///< nonempty iff the run failed

    bool ok() const { return completed && oraclePassed; }
};

/** Optional packet mutation hook (the corruption-detection test). */
using PacketMutator = std::function<void(net::Packet &)>;

namespace detail
{

inline RunResult
drive(sim::Simulation &sim, net::Link &link, apps::SocketApi &client_api,
      apps::SocketApi &server_api, const Scenario &sc,
      const char *world_name, const PacketMutator &mutate)
{
    net::StreamOracle oracle;
    TraceRing trace;
    link.aToB().setTap([&](net::Packet &pkt) {
        if (mutate)
            mutate(pkt);
        trace.record(sim.now(), "A->B", pkt);
    });
    link.bToA().setTap(
        [&](net::Packet &pkt) { trace.record(sim.now(), "B->A", pkt); });

    FuzzServer server(server_api, oracle);
    server.start();
    FuzzClient client(client_api, sc, oracle);
    client.start();

    // Drive in slices so the completion check runs between them. If
    // the queue drains early (now stops short of the slice target) no
    // further event can ever fire: stop rather than spin to deadline.
    const sim::Tick slice = sim::microsecondsToTicks(200);
    while (!client.done() && sim.now() < sc.deadline) {
        sim::Tick target = sim.now() + slice;
        sim.run(target);
        if (sim.now() < target)
            break;
    }

    RunResult result;
    result.completed = client.done();
    for (std::size_t i = 0; i < sc.conns.size(); ++i) {
        auto conn = static_cast<std::uint32_t>(i);
        oracle.expectFullyDelivered(upStream(conn));
        oracle.expectFullyDelivered(downStream(conn));
    }
    result.oraclePassed = oracle.passed();
    result.ledgerDigest = oracle.ledgerDigest();
    result.deliveredBytes = oracle.totalDeliveredBytes();
    result.auditRuns = sim.auditRuns();
    result.eventsProcessed = sim.queue().eventsProcessed();
    result.finalTick = sim.now();

    if (!result.ok()) {
        result.failureReport = std::string("fuzz run failed on world ") +
                               world_name + "\n  " + sc.describe();
        if (!result.completed) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "\n  deadline hit at %.3fms with connections "
                          "still open",
                          sim::ticksToSeconds(sim.now()) * 1e3);
            result.failureReport += buf;
        }
        result.failureReport += "\n  " + oracle.report();
        result.failureReport += "\n  " + trace.dump();
    }
    return result;
}

} // namespace detail

inline RunResult
runScenario(WorldKind kind, const Scenario &sc,
            const PacketMutator &mutate = {})
{
    switch (kind) {
      case WorldKind::enginePair: {
        core::EngineConfig config;
        config.numFpcs = 2;
        config.flowsPerFpc = 32;
        config.maxFlows = 1024;
        testbed::EnginePairWorld world(1, config, sc.faultsAtoB,
                                       sc.bandwidthBps, sc.faultsBtoA);
        auto client_api = world.apiA(0);
        auto server_api = world.apiB(0);
        return detail::drive(world.sim, *world.link, client_api,
                             server_api, sc, toString(kind), mutate);
      }
      case WorldKind::engineLinux: {
        core::EngineConfig config;
        config.numFpcs = 1;
        config.flowsPerFpc = 32;
        config.maxFlows = 256;
        testbed::EngineLinuxWorld world(1, 1, config, {}, sc.faultsAtoB,
                                        sc.bandwidthBps, sc.faultsBtoA);
        auto client_api = world.engineApi(0);
        auto server_api = world.linuxApi(0);
        return detail::drive(world.sim, *world.link, client_api,
                             server_api, sc, toString(kind), mutate);
      }
      case WorldKind::linuxPair: {
        testbed::LinuxPairWorld world(1, {}, sc.faultsAtoB,
                                      sc.bandwidthBps, sc.faultsBtoA);
        auto client_api = world.apiA(0);
        auto server_api = world.apiB(0);
        return detail::drive(world.sim, *world.link, client_api,
                             server_api, sc, toString(kind), mutate);
      }
    }
    return {};
}

/**
 * Write each world's flight-recorder snapshot to $F4T_DUMP_DIR (cwd by
 * default) so a divergence arrives with per-world event timelines side
 * by side. @return report lines naming the files and how to decode
 * them.
 */
inline std::string
dumpWorldRecorders(std::uint64_t seed, const sim::fr::Snapshot *snaps,
                   std::size_t count)
{
    const char *env = std::getenv("F4T_DUMP_DIR");
    std::string dir = env && env[0] ? env : ".";
    std::string out = "\n  flight recorder dumps (decode with "
                      "tools/f4t_blackbox):";
    for (std::size_t i = 0; i < count; ++i) {
        std::string world = toString(allWorlds[i]);
        std::string path = dir + "/f4t-fuzz-" + std::to_string(seed) +
                           "-" + world + ".f4tfr";
        std::string reason =
            "fuzz seed " + std::to_string(seed) + " world " + world;
        if (sim::fr::writeSnapshot(snaps[i], path, reason))
            out += "\n    " + path;
    }
    return out;
}

/**
 * Run one seed on all three worlds and cross-check. Returns an empty
 * string on agreement; otherwise a report naming the seed, the
 * scenario, and what diverged, plus per-world flight-recorder dumps
 * written to $F4T_DUMP_DIR.
 */
inline std::string
runDifferential(std::uint64_t seed)
{
    Scenario sc = Scenario::fromSeed(seed);

    // Each world runs against a freshly cleared flight recorder and its
    // rings are snapshotted before the next world overwrites them —
    // a failure at any point can dump every world it has.
    sim::fr::Snapshot snaps[3];
    RunResult results[3];
    std::size_t ran = 0;
    std::string report;
    for (std::size_t i = 0; i < 3; ++i) {
        sim::fr::clear();
        results[i] = runScenario(allWorlds[i], sc);
        snaps[i] = sim::fr::snapshot();
        ran = i + 1;
        if (!results[i].ok()) {
            report = results[i].failureReport;
            break;
        }
    }

    if (report.empty()) {
        for (std::size_t i = 1; i < 3; ++i) {
            if (results[i].ledgerDigest != results[0].ledgerDigest ||
                results[i].deliveredBytes != results[0].deliveredBytes) {
                char buf[256];
                std::snprintf(
                    buf, sizeof(buf),
                    "differential mismatch %s vs %s: digest "
                    "%016llx/%016llx delivered %llu/%llu\n  %s",
                    toString(allWorlds[0]), toString(allWorlds[i]),
                    static_cast<unsigned long long>(
                        results[0].ledgerDigest),
                    static_cast<unsigned long long>(
                        results[i].ledgerDigest),
                    static_cast<unsigned long long>(
                        results[0].deliveredBytes),
                    static_cast<unsigned long long>(
                        results[i].deliveredBytes),
                    sc.describe().c_str());
                report += buf;
            }
        }
    }
    if (!report.empty())
        report += dumpWorldRecorders(seed, snaps, ran);
    return report;
}

} // namespace f4t::fuzz

#endif // F4T_TESTS_FUZZ_RUNNER_HH
