/**
 * @file
 * Parallel-vs-serial simulation kernel differential corpus.
 *
 * The conservative parallel executor (sim/parallel.hh) may not change
 * anything an application observes: every corpus seed — fault
 * injection included — runs on the serial single-Simulation FtEngine
 * pair (the determinism oracle) and on the partitioned
 * ParallelEnginePairWorld, and both must complete, pass the
 * byte-stream oracle, and agree byte-exactly on ledger digests and
 * delivered byte counts.
 *
 * The parallel world additionally runs at one and two worker threads;
 * the two runs must produce identical determinism fingerprints
 * (simulated clocks, event counts, window counts, cross-partition
 * traffic, ledger) — thread scheduling must be invisible to the
 * simulation.
 */

#include <gtest/gtest.h>

#include "apps/testbed_parallel.hh"

#include "fuzz_runner.hh"

namespace
{

using namespace f4t;
using namespace f4t::fuzz;

struct ParallelRunResult
{
    RunResult base;
    /** FNV mix of everything thread scheduling could perturb. */
    std::uint64_t fingerprint = 0;
    std::uint64_t windows = 0;
    std::uint64_t crossEvents = 0;
};

ParallelRunResult
runParallelScenario(const Scenario &sc, std::size_t threads)
{
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    testbed::ParallelEnginePairWorld world(
        1, config, sc.faultsAtoB, sc.bandwidthBps, sc.faultsBtoA,
        sim::nanosecondsToTicks(500), threads);

    auto client_api = world.apiA(0);
    auto server_api = world.apiB(0);

    net::StreamOracle oracle;
    // One trace ring per direction: each tap runs on its sending
    // partition's worker thread.
    TraceRing trace_ab, trace_ba;
    world.link->aToB().setTap([&](net::Packet &pkt) {
        trace_ab.record(world.simA.now(), "A->B", pkt);
    });
    world.link->bToA().setTap([&](net::Packet &pkt) {
        trace_ba.record(world.simB.now(), "B->A", pkt);
    });

    FuzzServer server(server_api, oracle);
    server.start();
    FuzzClient client(client_api, sc, oracle);
    client.start();

    // Same slice-driven loop as the serial runner; between run() calls
    // all workers are parked, so reading client state is safe.
    const sim::Tick slice = sim::microsecondsToTicks(200);
    while (!client.done() && world.now() < sc.deadline) {
        sim::Tick target = world.now() + slice;
        world.run(target);
        if (world.now() < target)
            break;
    }

    ParallelRunResult result;
    result.base.completed = client.done();
    for (std::size_t i = 0; i < sc.conns.size(); ++i) {
        auto conn = static_cast<std::uint32_t>(i);
        oracle.expectFullyDelivered(upStream(conn));
        oracle.expectFullyDelivered(downStream(conn));
    }
    result.base.oraclePassed = oracle.passed();
    result.base.ledgerDigest = oracle.ledgerDigest();
    result.base.deliveredBytes = oracle.totalDeliveredBytes();
    result.base.auditRuns = world.simA.auditRuns() + world.simB.auditRuns();

    result.windows = world.executor.windowsRun();
    result.crossEvents = world.executor.crossEventsDelivered();
    std::uint64_t fp = 0xcbf29ce484222325ULL;
    auto mix = [&fp](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xff)) * 0x100000001b3ULL;
            v >>= 8;
        }
    };
    mix(result.base.ledgerDigest);
    mix(result.base.deliveredBytes);
    mix(world.simA.now());
    mix(world.simB.now());
    mix(world.executor.eventsProcessed());
    mix(result.windows);
    mix(result.crossEvents);
    result.fingerprint = fp;

    if (!result.base.ok()) {
        result.base.failureReport =
            "parallel fuzz run failed\n  " + sc.describe();
        if (!result.base.completed) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "\n  deadline hit at %.3fms with connections "
                          "still open",
                          sim::ticksToSeconds(world.now()) * 1e3);
            result.base.failureReport += buf;
        }
        result.base.failureReport += "\n  " + oracle.report();
        result.base.failureReport += "\n  A->B " + trace_ab.dump();
        result.base.failureReport += "\n  B->A " + trace_ba.dump();
    }
    return result;
}

void
runParallelCorpus(std::uint64_t first_seed, std::uint64_t count)
{
    for (std::uint64_t seed = first_seed; seed < first_seed + count;
         ++seed) {
        Scenario sc = Scenario::fromSeed(seed);
        ASSERT_TRUE(hasFaults(sc.faultsAtoB) || hasFaults(sc.faultsBtoA))
            << "corpus seed " << seed << " lost its fault injection";

        RunResult serial = runScenario(WorldKind::enginePair, sc);
        ParallelRunResult solo = runParallelScenario(sc, 1);
        ParallelRunResult multi = runParallelScenario(sc, 2);

        EXPECT_TRUE(serial.ok())
            << "serial oracle run failed; reproduce with: fuzz_sweep "
            << seed << " 1\n" << serial.failureReport;
        EXPECT_TRUE(solo.base.ok())
            << "1-thread parallel run failed, seed " << seed << "\n"
            << solo.base.failureReport;
        EXPECT_TRUE(multi.base.ok())
            << "2-thread parallel run failed, seed " << seed << "\n"
            << multi.base.failureReport;

        // Parallel must be byte-exact against the serial oracle.
        EXPECT_EQ(solo.base.ledgerDigest, serial.ledgerDigest)
            << "seed " << seed << ": partitioned kernel changed the "
            << "application-visible byte streams\n  " << sc.describe();
        EXPECT_EQ(solo.base.deliveredBytes, serial.deliveredBytes)
            << "seed " << seed << "\n  " << sc.describe();
        EXPECT_GT(solo.base.deliveredBytes, 0u) << "seed " << seed;

        // ... and invariant under the worker count, down to the
        // simulated clocks and event totals.
        EXPECT_EQ(solo.fingerprint, multi.fingerprint)
            << "seed " << seed << ": thread count leaked into simulated "
            << "behavior (windows " << solo.windows << "/"
            << multi.windows << ", cross events " << solo.crossEvents
            << "/" << multi.crossEvents << ")\n  " << sc.describe();
        EXPECT_EQ(solo.base.ledgerDigest, multi.base.ledgerDigest)
            << "seed " << seed << "\n  " << sc.describe();
    }
}

// Same 24-seed corpus as the batching differential, sliced for ctest
// parallelism.
TEST(ParallelDifferential, CorpusSlice0) { runParallelCorpus(1, 6); }
TEST(ParallelDifferential, CorpusSlice1) { runParallelCorpus(7, 6); }
TEST(ParallelDifferential, CorpusSlice2) { runParallelCorpus(13, 6); }
TEST(ParallelDifferential, CorpusSlice3) { runParallelCorpus(19, 6); }

} // namespace
