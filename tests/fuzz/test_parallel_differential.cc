/**
 * @file
 * Parallel-vs-serial simulation kernel differential corpus.
 *
 * The conservative parallel executor (sim/parallel.hh) may not change
 * anything an application observes: every corpus seed — fault
 * injection included — runs on the serial single-Simulation FtEngine
 * pair (the determinism oracle) and on the partitioned
 * ParallelEnginePairWorld, and both must complete, pass the
 * byte-stream oracle, and agree byte-exactly on ledger digests and
 * delivered byte counts.
 *
 * The parallel world additionally runs at one and two worker threads;
 * the two runs must produce identical determinism fingerprints
 * (simulated clocks, event counts, window counts, cross-partition
 * traffic, ledger) — thread scheduling must be invisible to the
 * simulation.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "apps/kv.hh"
#include "apps/testbed_parallel.hh"
#include "apps/testbed_star.hh"
#include "load/open_loop.hh"

#include "fuzz_runner.hh"

namespace
{

using namespace f4t;
using namespace f4t::fuzz;

struct ParallelRunResult
{
    RunResult base;
    /** FNV mix of everything thread scheduling could perturb. */
    std::uint64_t fingerprint = 0;
    std::uint64_t windows = 0;
    std::uint64_t crossEvents = 0;
};

ParallelRunResult
runParallelScenario(const Scenario &sc, std::size_t threads)
{
    core::EngineConfig config;
    config.numFpcs = 2;
    config.flowsPerFpc = 32;
    config.maxFlows = 1024;
    testbed::ParallelEnginePairWorld world(
        1, config, sc.faultsAtoB, sc.bandwidthBps, sc.faultsBtoA,
        sim::nanosecondsToTicks(500), threads);

    auto client_api = world.apiA(0);
    auto server_api = world.apiB(0);

    net::StreamOracle oracle;
    // One trace ring per direction: each tap runs on its sending
    // partition's worker thread.
    TraceRing trace_ab, trace_ba;
    world.link->aToB().setTap([&](net::Packet &pkt) {
        trace_ab.record(world.simA.now(), "A->B", pkt);
    });
    world.link->bToA().setTap([&](net::Packet &pkt) {
        trace_ba.record(world.simB.now(), "B->A", pkt);
    });

    FuzzServer server(server_api, oracle);
    server.start();
    FuzzClient client(client_api, sc, oracle);
    client.start();

    // Same slice-driven loop as the serial runner; between run() calls
    // all workers are parked, so reading client state is safe.
    const sim::Tick slice = sim::microsecondsToTicks(200);
    while (!client.done() && world.now() < sc.deadline) {
        sim::Tick target = world.now() + slice;
        world.run(target);
        if (world.now() < target)
            break;
    }

    ParallelRunResult result;
    result.base.completed = client.done();
    for (std::size_t i = 0; i < sc.conns.size(); ++i) {
        auto conn = static_cast<std::uint32_t>(i);
        oracle.expectFullyDelivered(upStream(conn));
        oracle.expectFullyDelivered(downStream(conn));
    }
    result.base.oraclePassed = oracle.passed();
    result.base.ledgerDigest = oracle.ledgerDigest();
    result.base.deliveredBytes = oracle.totalDeliveredBytes();
    result.base.auditRuns = world.simA.auditRuns() + world.simB.auditRuns();

    result.windows = world.executor.windowsRun();
    result.crossEvents = world.executor.crossEventsDelivered();
    std::uint64_t fp = 0xcbf29ce484222325ULL;
    auto mix = [&fp](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xff)) * 0x100000001b3ULL;
            v >>= 8;
        }
    };
    mix(result.base.ledgerDigest);
    mix(result.base.deliveredBytes);
    mix(world.simA.now());
    mix(world.simB.now());
    mix(world.executor.eventsProcessed());
    mix(result.windows);
    mix(result.crossEvents);
    result.fingerprint = fp;

    if (!result.base.ok()) {
        result.base.failureReport =
            "parallel fuzz run failed\n  " + sc.describe();
        if (!result.base.completed) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "\n  deadline hit at %.3fms with connections "
                          "still open",
                          sim::ticksToSeconds(world.now()) * 1e3);
            result.base.failureReport += buf;
        }
        result.base.failureReport += "\n  " + oracle.report();
        result.base.failureReport += "\n  A->B " + trace_ab.dump();
        result.base.failureReport += "\n  B->A " + trace_ba.dump();
    }
    return result;
}

void
runParallelCorpus(std::uint64_t first_seed, std::uint64_t count)
{
    for (std::uint64_t seed = first_seed; seed < first_seed + count;
         ++seed) {
        Scenario sc = Scenario::fromSeed(seed);
        ASSERT_TRUE(hasFaults(sc.faultsAtoB) || hasFaults(sc.faultsBtoA))
            << "corpus seed " << seed << " lost its fault injection";

        RunResult serial = runScenario(WorldKind::enginePair, sc);
        ParallelRunResult solo = runParallelScenario(sc, 1);
        ParallelRunResult multi = runParallelScenario(sc, 2);

        EXPECT_TRUE(serial.ok())
            << "serial oracle run failed; reproduce with: fuzz_sweep "
            << seed << " 1\n" << serial.failureReport;
        EXPECT_TRUE(solo.base.ok())
            << "1-thread parallel run failed, seed " << seed << "\n"
            << solo.base.failureReport;
        EXPECT_TRUE(multi.base.ok())
            << "2-thread parallel run failed, seed " << seed << "\n"
            << multi.base.failureReport;

        // Parallel must be byte-exact against the serial oracle.
        EXPECT_EQ(solo.base.ledgerDigest, serial.ledgerDigest)
            << "seed " << seed << ": partitioned kernel changed the "
            << "application-visible byte streams\n  " << sc.describe();
        EXPECT_EQ(solo.base.deliveredBytes, serial.deliveredBytes)
            << "seed " << seed << "\n  " << sc.describe();
        EXPECT_GT(solo.base.deliveredBytes, 0u) << "seed " << seed;

        // ... and invariant under the worker count, down to the
        // simulated clocks and event totals.
        EXPECT_EQ(solo.fingerprint, multi.fingerprint)
            << "seed " << seed << ": thread count leaked into simulated "
            << "behavior (windows " << solo.windows << "/"
            << multi.windows << ", cross events " << solo.crossEvents
            << "/" << multi.crossEvents << ")\n  " << sc.describe();
        EXPECT_EQ(solo.base.ledgerDigest, multi.base.ledgerDigest)
            << "seed " << seed << "\n  " << sc.describe();
    }
}

// Same 24-seed corpus as the batching differential, sliced for ctest
// parallelism.
TEST(ParallelDifferential, CorpusSlice0) { runParallelCorpus(1, 6); }
TEST(ParallelDifferential, CorpusSlice1) { runParallelCorpus(7, 6); }
TEST(ParallelDifferential, CorpusSlice2) { runParallelCorpus(13, 6); }
TEST(ParallelDifferential, CorpusSlice3) { runParallelCorpus(19, 6); }

// ---------------------------------------------------------------------------
// Open-loop incast differential: N clients behind the shared-buffer
// switch synchronously burst SETs at one server over a faulty
// bottleneck downlink. Switch tail drops plus injected loss force the
// RTO/go-back-N recovery path, and the serial StarWorld must agree
// byte-exactly (oracle ledger, per-key byte counts, every client- and
// server-side counter) with the ParallelStarWorld, which itself must
// be invariant down to switch packet counts and kernel event totals
// across one and two worker threads.

constexpr std::size_t incastClients = 4;
constexpr std::uint64_t incastRequestsPerClient = 4;
constexpr std::uint32_t incastValueBytes = 8 * 1024;

testbed::StarConfig
incastConfig()
{
    testbed::StarConfig config;
    config.clients = incastClients;
    config.engine.numFpcs = 2;
    config.engine.flowsPerFpc = 32;
    config.engine.maxFlows = 1024;
    // Pool too small for one synchronized round of 4 x 8 KB bursts:
    // every round tail-drops at the server port.
    config.fabric.sharedEgressBytes = 24 * 1024;
    // Plus random loss on the bottleneck cable itself, both ways.
    config.serverLinkFaults.dropProbability = 0.01;
    config.serverLinkFaults.seed = 0xD1FF;
    return config;
}

struct IncastRun
{
    bool completed = false;
    bool oraclePassed = true;
    std::uint64_t ledgerDigest = 0;
    std::uint64_t deliveredBytes = 0;
    std::uint64_t switchDrops = 0;
    /** FNV mix of every application-visible counter. */
    std::uint64_t appFingerprint = 0;
    /** Parallel runs only: executor-level determinism fingerprint. */
    std::uint64_t kernelFingerprint = 0;
    std::string report;
};

template <typename World>
IncastRun
runIncastWorld(World &world, sim::Simulation &client_sim,
               const std::function<sim::Tick(sim::Tick)> &run_for)
{
    net::StreamOracle oracle;

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerConfig server_config;
    server_config.oracle = &oracle;
    apps::KvServerApp server(server_api, server_config);
    server.start();

    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::vector<std::unique_ptr<load::OpenLoopClientApp>> clients;
    for (std::size_t i = 0; i < incastClients; ++i) {
        apis.push_back(world.makeClientApi(i));
        load::OpenLoopConfig ocfg;
        ocfg.peer = testbed::starServerIp();
        ocfg.connections = 1;
        ocfg.streamBase = static_cast<std::uint32_t>(i) * 64;
        ocfg.clientId = static_cast<std::uint32_t>(i);
        ocfg.seed = 0x1CA57;
        ocfg.arrivals =
            load::ArrivalSpec::fixedEvery(sim::microsecondsToTicks(50));
        ocfg.valueSizes = load::SizeSpec::fixedSize(incastValueBytes);
        ocfg.readFraction = 0.0; // synchronized SET bursts
        ocfg.maxRequests = incastRequestsPerClient;
        ocfg.startAt = sim::microsecondsToTicks(30);
        ocfg.oracle = &oracle;
        clients.push_back(
            std::make_unique<load::OpenLoopClientApp>(*apis.back(), ocfg));
        clients.back()->start();
    }

    // Loss recovery rides the 5 ms RTO floor, so give the run room:
    // slices until everyone finished or 200 ms.
    const sim::Tick deadline = sim::millisecondsToTicks(200);
    auto all_done = [&] {
        for (auto &client : clients)
            if (client->completed() < incastRequestsPerClient)
                return false;
        return true;
    };
    while (!all_done() && client_sim.now() < deadline)
        run_for(sim::millisecondsToTicks(1));

    IncastRun result;
    result.completed = all_done();
    for (std::size_t i = 0; i < incastClients; ++i)
        oracle.expectFullyDelivered(
            apps::kvSetStream(static_cast<std::uint32_t>(i) * 64));
    result.oraclePassed = oracle.passed();
    result.ledgerDigest = oracle.ledgerDigest();
    result.deliveredBytes = oracle.totalDeliveredBytes();
    result.switchDrops = world.fabric->totalDropped();
    if (!result.oraclePassed)
        result.report = oracle.report();

    // Application-visible state only: per-client request accounting,
    // server-side op/byte counters, per-key byte totals, and the
    // oracle ledger. Switch packet counters are deliberately excluded
    // — partitioning may legally reorder same-tick events across the
    // cut, which can change how many duplicate ACKs/retransmissions
    // cross the fabric without changing a single application byte.
    std::uint64_t fp = 0xcbf29ce484222325ULL;
    auto mix = [&fp](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xff)) * 0x100000001b3ULL;
            v >>= 8;
        }
    };
    for (auto &client : clients) {
        mix(client->issued());
        mix(client->dispatched());
        mix(client->completed());
        mix(client->valueBytesSent());
        mix(client->valueBytesReceived());
    }
    mix(server.gets());
    mix(server.sets());
    mix(server.valueBytesIn());
    mix(server.valueBytesOut());
    for (const auto &[key, bytes] : server.setBytesByKey()) {
        mix(key);
        mix(bytes);
    }
    mix(result.ledgerDigest);
    result.appFingerprint = fp;
    return result;
}

IncastRun
runIncastSerial()
{
    testbed::StarWorld world(incastConfig());
    return runIncastWorld(world, world.sim, [&](sim::Tick d) {
        return world.sim.runFor(d);
    });
}

IncastRun
runIncastParallel(std::size_t threads)
{
    testbed::ParallelStarWorld world(incastConfig(), threads);
    IncastRun run = runIncastWorld(
        world, world.simClients,
        [&](sim::Tick d) { return world.runFor(d); });

    std::uint64_t fp = 0xcbf29ce484222325ULL;
    auto mix = [&fp](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            fp = (fp ^ (v & 0xff)) * 0x100000001b3ULL;
            v >>= 8;
        }
    };
    mix(run.appFingerprint);
    // Packet-level switch counters ARE pinned across worker counts:
    // the same partitioning must replay identically at 1 and N threads.
    mix(world.fabric->totalForwarded());
    mix(world.fabric->totalDropped());
    mix(world.simClients.now());
    mix(world.simServer.now());
    mix(world.executor.eventsProcessed());
    mix(world.executor.windowsRun());
    mix(world.executor.crossEventsDelivered());
    run.kernelFingerprint = fp;
    return run;
}

TEST(ParallelDifferential, OpenLoopIncastStarWorld)
{
    IncastRun serial = runIncastSerial();
    IncastRun solo = runIncastParallel(1);
    IncastRun multi = runIncastParallel(2);

    ASSERT_TRUE(serial.completed) << "serial incast run hit the deadline";
    ASSERT_TRUE(solo.completed) << "1-thread incast run hit the deadline";
    ASSERT_TRUE(multi.completed) << "2-thread incast run hit the deadline";

    EXPECT_TRUE(serial.oraclePassed) << serial.report;
    EXPECT_TRUE(solo.oraclePassed) << solo.report;
    EXPECT_TRUE(multi.oraclePassed) << multi.report;

    // The scenario must actually stress the bottleneck.
    EXPECT_GT(serial.switchDrops, 0u)
        << "incast config no longer overflows the shared egress pool";
    EXPECT_GT(serial.deliveredBytes, 0u);

    // Byte-exact agreement: serial oracle vs partitioned kernel.
    EXPECT_EQ(solo.ledgerDigest, serial.ledgerDigest)
        << "partitioned star world changed application byte streams";
    EXPECT_EQ(solo.deliveredBytes, serial.deliveredBytes);
    EXPECT_EQ(solo.appFingerprint, serial.appFingerprint)
        << "per-client/server/switch counters diverged serial vs parallel";

    // ... and thread-count invariance down to kernel event totals.
    EXPECT_EQ(multi.ledgerDigest, solo.ledgerDigest);
    EXPECT_EQ(multi.appFingerprint, solo.appFingerprint);
    EXPECT_EQ(multi.kernelFingerprint, solo.kernelFingerprint)
        << "worker count leaked into simulated behavior";
}

} // namespace
