/**
 * @file
 * Fixed-seed fuzz smoke corpus.
 *
 * Each seed is a full differential run: the same generated scenario —
 * nonzero drop/duplicate/reorder rates included — executes on the
 * FtEngine pair, the FtEngine-vs-Linux pair, and the Linux pair, and
 * the three ledgers must agree byte-for-byte. The corpus seeds are
 * fixed so CI is deterministic; `fuzz_sweep` explores fresh seeds.
 *
 * Also here: the oracle's teeth are proven by corrupting one payload
 * byte in flight and requiring a violation that names the reproducing
 * seed, and the invariant-audit layer is required to have actually run
 * during engine-world simulations.
 */

#include <gtest/gtest.h>

#include "fuzz_runner.hh"
#include "sim/check.hh"

namespace
{

using namespace f4t;
using namespace f4t::fuzz;

void
runCorpus(std::uint64_t first_seed, std::uint64_t count)
{
    for (std::uint64_t seed = first_seed; seed < first_seed + count;
         ++seed) {
        std::string report = runDifferential(seed);
        EXPECT_TRUE(report.empty())
            << "reproduce with: fuzz_sweep " << seed << " 1\n" << report;
    }
}

// 24 seeds x 3 worlds, split so ctest can run the slices in parallel.
TEST(FuzzSmoke, CorpusSlice0) { runCorpus(1, 6); }
TEST(FuzzSmoke, CorpusSlice1) { runCorpus(7, 6); }
TEST(FuzzSmoke, CorpusSlice2) { runCorpus(13, 6); }
TEST(FuzzSmoke, CorpusSlice3) { runCorpus(19, 6); }

TEST(FuzzSmoke, ScenarioGenerationIsDeterministic)
{
    Scenario a = Scenario::fromSeed(0xf4f4f4f4ULL);
    Scenario b = Scenario::fromSeed(0xf4f4f4f4ULL);
    ASSERT_EQ(a.conns.size(), b.conns.size());
    for (std::size_t i = 0; i < a.conns.size(); ++i) {
        EXPECT_EQ(a.conns[i].requestBytes, b.conns[i].requestBytes);
        EXPECT_EQ(a.conns[i].responseBytes, b.conns[i].responseBytes);
        EXPECT_EQ(a.conns[i].chunkBytes, b.conns[i].chunkBytes);
        EXPECT_EQ(a.conns[i].connectDelay, b.conns[i].connectDelay);
    }
    EXPECT_EQ(a.faultsAtoB.dropProbability, b.faultsAtoB.dropProbability);
    EXPECT_EQ(a.bandwidthBps, b.bandwidthBps);

    // Neighboring seeds must diverge (the seed is splashed).
    Scenario c = Scenario::fromSeed(0xf4f4f4f5ULL);
    EXPECT_TRUE(a.conns.size() != c.conns.size() ||
                a.conns[0].requestBytes != c.conns[0].requestBytes ||
                a.faultsAtoB.dropProbability !=
                    c.faultsAtoB.dropProbability);
}

TEST(FuzzSmoke, CorpusAlwaysInjectsFaults)
{
    // Every corpus scenario carries nonzero fault rates on at least
    // one direction; the generator forces this.
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        Scenario sc = Scenario::fromSeed(seed);
        EXPECT_TRUE(hasFaults(sc.faultsAtoB) || hasFaults(sc.faultsBtoA))
            << "seed " << seed;
    }
}

TEST(FuzzSmoke, SingleCorruptByteIsCaughtAndNamesSeed)
{
    // Faultless link so the corrupted packet is guaranteed delivered;
    // the stack carries packets as structs (no checksum re-validation
    // on the simulated path), so only the oracle can catch this.
    Scenario sc = Scenario::fromSeed(42);
    std::uint64_t keep_a = sc.faultsAtoB.seed;
    std::uint64_t keep_b = sc.faultsBtoA.seed;
    sc.faultsAtoB = {};
    sc.faultsBtoA = {};
    sc.faultsAtoB.seed = keep_a;
    sc.faultsBtoA.seed = keep_b;

    bool corrupted = false;
    auto mutate = [&corrupted](net::Packet &pkt) {
        if (corrupted || !pkt.isTcp() || pkt.payload.size() <= 20)
            return;
        // Offset 20 lands beyond the 12-byte fuzz protocol header, so
        // the run still completes and the report shows the mismatch.
        pkt.payload[20] ^= 0x20;
        corrupted = true;
    };

    RunResult result = runScenario(WorldKind::enginePair, sc, mutate);
    ASSERT_TRUE(corrupted);
    EXPECT_FALSE(result.oraclePassed);
    EXPECT_NE(result.failureReport.find("seed=0x2a"), std::string::npos)
        << result.failureReport;
    EXPECT_NE(result.failureReport.find("corrupt byte"), std::string::npos)
        << result.failureReport;
}

TEST(FuzzSmoke, InvariantAuditsEngageOnEngineWorlds)
{
    Scenario sc = Scenario::fromSeed(7);
    RunResult engine = runScenario(WorldKind::enginePair, sc);
    ASSERT_TRUE(engine.ok()) << engine.failureReport;
    RunResult linux_pair = runScenario(WorldKind::linuxPair, sc);
    ASSERT_TRUE(linux_pair.ok()) << linux_pair.failureReport;

    if constexpr (sim::checksEnabled) {
        // The scheduler drives sim.maybeAudit() from its tick, so any
        // engine-world run must have swept the invariants.
        EXPECT_GT(engine.auditRuns, 0u);
    } else {
        EXPECT_EQ(engine.auditRuns, 0u);
    }
    // No engine, no audit driver: the Linux baseline never sweeps.
    EXPECT_EQ(linux_pair.auditRuns, 0u);
}

} // namespace
