/**
 * @file
 * Tagged-union-vs-virtual dispatch differential corpus.
 *
 * The event queue's tagged dispatch (sim/event_queue.hh) reaches
 * callback and tick events with a switch on the kind byte instead of a
 * virtual process() call. That is a pure representation change: the
 * same events must fire in the same order at the same ticks. Every
 * corpus seed — fault injection included — runs on the full FtEngine
 * pair twice, once per dispatch path, and the two runs must be the
 * *same computation*: byte-exact stream-oracle ledgers, equal
 * delivered bytes, and equal kernel fingerprints (events processed,
 * final tick).
 *
 * In a -DF4T_TAGGED_DISPATCH=OFF build the runtime toggle clamps to
 * the virtual path, so both twins run virtual and the differential is
 * trivially satisfied — the escape-hatch build stays green by
 * construction.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

#include "fuzz_runner.hh"

namespace
{

using namespace f4t;
using namespace f4t::fuzz;

/** Scoped dispatch-path toggle (restores the prior setting). */
struct DispatchMode
{
    explicit DispatchMode(bool tagged) : saved_(sim::taggedDispatchEnabled())
    {
        sim::setTaggedDispatch(tagged);
    }
    ~DispatchMode() { sim::setTaggedDispatch(saved_); }
    bool saved_;
};

void
runDispatchCorpus(std::uint64_t first_seed, std::uint64_t count)
{
    for (std::uint64_t seed = first_seed; seed < first_seed + count;
         ++seed) {
        Scenario sc = Scenario::fromSeed(seed);
        ASSERT_TRUE(hasFaults(sc.faultsAtoB) || hasFaults(sc.faultsBtoA))
            << "corpus seed " << seed << " lost its fault injection";

        RunResult tagged, virt;
        {
            DispatchMode mode(true);
            tagged = runScenario(WorldKind::enginePair, sc);
        }
        {
            DispatchMode mode(false);
            virt = runScenario(WorldKind::enginePair, sc);
        }

        EXPECT_TRUE(tagged.ok())
            << "tagged-dispatch run failed; reproduce with: fuzz_sweep "
            << seed << " 1\n" << tagged.failureReport;
        EXPECT_TRUE(virt.ok())
            << "virtual-dispatch run failed; reproduce with: fuzz_sweep "
            << seed << " 1\n" << virt.failureReport;
        EXPECT_EQ(tagged.ledgerDigest, virt.ledgerDigest)
            << "seed " << seed << ": dispatch representation changed the "
            << "application-visible byte streams\n  " << sc.describe();
        EXPECT_EQ(tagged.deliveredBytes, virt.deliveredBytes)
            << "seed " << seed << "\n  " << sc.describe();
        // The strong claim: not just the same bytes, the same kernel
        // execution — every event fired either way, ending on the same
        // simulated tick.
        EXPECT_EQ(tagged.eventsProcessed, virt.eventsProcessed)
            << "seed " << seed << ": dispatch representation changed the "
            << "event count\n  " << sc.describe();
        EXPECT_EQ(tagged.finalTick, virt.finalTick)
            << "seed " << seed << ": dispatch representation changed the "
            << "final simulated tick\n  " << sc.describe();
        EXPECT_GT(tagged.deliveredBytes, 0u) << "seed " << seed;
    }
}

// Same 24-seed corpus as the batching differential, sliced for ctest
// parallelism.
TEST(DispatchDifferential, CorpusSlice0) { runDispatchCorpus(1, 6); }
TEST(DispatchDifferential, CorpusSlice1) { runDispatchCorpus(7, 6); }
TEST(DispatchDifferential, CorpusSlice2) { runDispatchCorpus(13, 6); }
TEST(DispatchDifferential, CorpusSlice3) { runDispatchCorpus(19, 6); }

} // namespace
