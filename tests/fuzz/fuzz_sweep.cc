/**
 * @file
 * fuzz_sweep: the long-running randomized differential sweep.
 *
 *   fuzz_sweep [first_seed] [count]
 *
 * Runs `count` consecutive seeds starting at `first_seed` (defaults:
 * 1000, 50), each as a full three-world differential run, and exits
 * nonzero on the first divergence or oracle violation. The failure
 * report names the seed; replay it with `fuzz_sweep <seed> 1`.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "fuzz_runner.hh"

int
main(int argc, char **argv)
{
    using namespace f4t::fuzz;
    f4t::bench::Obs::install(argc, argv);

    std::uint64_t first = 1000;
    std::uint64_t count = 50;
    if (argc > 1)
        first = std::strtoull(argv[1], nullptr, 0);
    if (argc > 2)
        count = std::strtoull(argv[2], nullptr, 0);

    std::printf("fuzz_sweep: seeds [%llu, %llu)\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(first + count));
    for (std::uint64_t seed = first; seed < first + count; ++seed) {
        std::string report = runDifferential(seed);
        if (!report.empty()) {
            std::printf("FAIL seed %llu\n%s\n",
                        static_cast<unsigned long long>(seed),
                        report.c_str());
            if (!f4t::bench::Obs::active()) {
                // Replay the failing seed with every capture sink on so
                // the divergence arrives with pcap/timeline/stat
                // evidence attached.
                std::string prefix =
                    "fuzz_fail_" + std::to_string(seed);
                std::printf("replaying with capture -> %s.*\n",
                            prefix.c_str());
                f4t::bench::Obs::capturePrefix(prefix);
                runDifferential(seed);
            }
            return 1;
        }
        std::printf("  seed %llu ok\n",
                    static_cast<unsigned long long>(seed));
    }
    std::printf("fuzz_sweep: %llu seeds passed\n",
                static_cast<unsigned long long>(count));
    return 0;
}
