/**
 * @file
 * fuzz_sweep: the long-running randomized differential sweep.
 *
 *   fuzz_sweep [first_seed] [count]
 *
 * Runs `count` consecutive seeds starting at `first_seed` (defaults:
 * 1000, 50), each as a full three-world differential run, and exits
 * nonzero on the first divergence or oracle violation. The failure
 * report names the seed; replay it with `fuzz_sweep <seed> 1`.
 *
 * `--dispatch` switches to the tagged-vs-virtual dispatch twin mode
 * (the rotating-window extension of tests/fuzz/
 * test_dispatch_differential): each seed runs the engine-pair world
 * once per dispatch path and the two runs must be the same
 * computation — equal ledger digests, delivered bytes, event counts,
 * and final ticks. In a -DF4T_TAGGED_DISPATCH=OFF build the runtime
 * toggle clamps, both twins run virtual, and the sweep degenerates to
 * a reproducibility check — which is exactly what keeps the
 * escape-hatch build meaningful in CI.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/event_queue.hh"

#include "bench_util.hh"
#include "fuzz_runner.hh"

namespace
{

/** One tagged-vs-virtual twin run; empty string = seed passed. */
std::string
runDispatchTwin(std::uint64_t seed)
{
    using namespace f4t::fuzz;
    Scenario sc = Scenario::fromSeed(seed);
    const bool saved = f4t::sim::taggedDispatchEnabled();
    f4t::sim::setTaggedDispatch(true);
    RunResult tagged = runScenario(WorldKind::enginePair, sc);
    f4t::sim::setTaggedDispatch(false);
    RunResult virt = runScenario(WorldKind::enginePair, sc);
    f4t::sim::setTaggedDispatch(saved);

    if (!tagged.ok())
        return "tagged run failed:\n" + tagged.failureReport;
    if (!virt.ok())
        return "virtual run failed:\n" + virt.failureReport;
    if (tagged.ledgerDigest != virt.ledgerDigest)
        return "ledger digest diverged across dispatch paths\n  " +
               sc.describe();
    if (tagged.deliveredBytes != virt.deliveredBytes ||
        tagged.eventsProcessed != virt.eventsProcessed ||
        tagged.finalTick != virt.finalTick)
        return "kernel fingerprint diverged across dispatch paths\n  " +
               sc.describe();
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace f4t::fuzz;
    f4t::bench::Obs::install(argc, argv);

    std::uint64_t first = 1000;
    std::uint64_t count = 50;
    bool dispatch_mode = false;
    int pos = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--dispatch") == 0)
            dispatch_mode = true;
        else if (pos == 0)
            first = std::strtoull(argv[i], nullptr, 0), ++pos;
        else
            count = std::strtoull(argv[i], nullptr, 0), ++pos;
    }

    std::printf("fuzz_sweep%s: seeds [%llu, %llu)\n",
                dispatch_mode ? " (dispatch twins)" : "",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(first + count));
    for (std::uint64_t seed = first; seed < first + count; ++seed) {
        std::string report = dispatch_mode ? runDispatchTwin(seed)
                                           : runDifferential(seed);
        if (!report.empty()) {
            std::printf("FAIL seed %llu\n%s\n",
                        static_cast<unsigned long long>(seed),
                        report.c_str());
            if (!f4t::bench::Obs::active()) {
                // Replay the failing seed with every capture sink on so
                // the divergence arrives with pcap/timeline/stat
                // evidence attached.
                std::string prefix =
                    "fuzz_fail_" + std::to_string(seed);
                std::printf("replaying with capture -> %s.*\n",
                            prefix.c_str());
                f4t::bench::Obs::capturePrefix(prefix);
                if (dispatch_mode)
                    runDispatchTwin(seed);
                else
                    runDifferential(seed);
            }
            return 1;
        }
        std::printf("  seed %llu ok\n",
                    static_cast<unsigned long long>(seed));
    }
    std::printf("fuzz_sweep: %llu seeds passed\n",
                static_cast<unsigned long long>(count));
    return 0;
}
