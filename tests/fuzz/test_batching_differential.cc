/**
 * @file
 * Batched-vs-reference data-path differential corpus.
 *
 * The batched pipeline (burst link delivery, synchronous TX hand-off)
 * is allowed to change host-event interleaving, but it must never
 * change what applications observe. Every corpus seed — fault
 * injection included — runs on the full FtEngine pair twice: once with
 * data-path batching enabled (the default) and once on the per-packet
 * reference path. Both runs must complete, pass the byte-stream
 * oracle, and produce identical ledger digests and delivered byte
 * counts.
 */

#include <gtest/gtest.h>

#include "net/link.hh"

#include "fuzz_runner.hh"

namespace
{

using namespace f4t;
using namespace f4t::fuzz;

/** Scoped data-path batching toggle (restores the prior setting). */
struct BatchingMode
{
    explicit BatchingMode(bool on) : saved_(net::datapathBatchingEnabled())
    {
        net::setDatapathBatching(on);
    }
    ~BatchingMode() { net::setDatapathBatching(saved_); }
    bool saved_;
};

void
runBatchingCorpus(std::uint64_t first_seed, std::uint64_t count)
{
    for (std::uint64_t seed = first_seed; seed < first_seed + count;
         ++seed) {
        Scenario sc = Scenario::fromSeed(seed);
        ASSERT_TRUE(hasFaults(sc.faultsAtoB) || hasFaults(sc.faultsBtoA))
            << "corpus seed " << seed << " lost its fault injection";

        RunResult batched, reference;
        {
            BatchingMode mode(true);
            batched = runScenario(WorldKind::enginePair, sc);
        }
        {
            BatchingMode mode(false);
            reference = runScenario(WorldKind::enginePair, sc);
        }

        EXPECT_TRUE(batched.ok())
            << "batched run failed; reproduce with: fuzz_sweep " << seed
            << " 1\n" << batched.failureReport;
        EXPECT_TRUE(reference.ok())
            << "reference run failed; reproduce with: fuzz_sweep " << seed
            << " 1\n" << reference.failureReport;
        EXPECT_EQ(batched.ledgerDigest, reference.ledgerDigest)
            << "seed " << seed << ": batched data path changed the "
            << "application-visible byte streams\n  " << sc.describe();
        EXPECT_EQ(batched.deliveredBytes, reference.deliveredBytes)
            << "seed " << seed << "\n  " << sc.describe();
        EXPECT_GT(batched.deliveredBytes, 0u) << "seed " << seed;
    }
}

// Same 24-seed corpus as the smoke differential, sliced for ctest
// parallelism.
TEST(BatchingDifferential, CorpusSlice0) { runBatchingCorpus(1, 6); }
TEST(BatchingDifferential, CorpusSlice1) { runBatchingCorpus(7, 6); }
TEST(BatchingDifferential, CorpusSlice2) { runBatchingCorpus(13, 6); }
TEST(BatchingDifferential, CorpusSlice3) { runBatchingCorpus(19, 6); }

} // namespace
