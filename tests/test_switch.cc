/**
 * @file
 * Unit tests for the shared-buffer output-queued switch
 * (src/net/switch.hh): per-egress FIFO ordering, tail-drop accounting
 * against the shared pool, per-port counters, flood behavior, and the
 * egress-accounting audit.
 *
 * The tests drive SwitchPort::receivePacket directly (the same entry
 * a cable delivers into) and attach real Links toward collector
 * endpoints so egress pacing runs through LinkDirection exactly as in
 * the star testbeds.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hh"
#include "net/packet.hh"
#include "net/switch.hh"
#include "sim/simulation.hh"

namespace f4t::net
{
namespace
{

struct CollectorSink : PacketSink
{
    std::vector<Packet> received;

    void
    receivePacket(Packet &&pkt) override
    {
        received.push_back(std::move(pkt));
    }
};

Ipv4Address
hostIp(std::uint8_t index)
{
    return Ipv4Address::fromOctets(10, 0, 9, index);
}

MacAddress
hostMac(std::uint8_t index)
{
    return MacAddress{{2, 0, 0, 0, 0, index}};
}

Packet
makeFrame(std::uint8_t src, std::uint8_t dst, std::uint32_t seq,
          std::size_t payload_bytes)
{
    TcpHeader tcp;
    tcp.srcPort = 1000;
    tcp.dstPort = 2000;
    tcp.seq = seq;
    return Packet::makeTcp(hostMac(src), hostMac(dst), hostIp(src),
                           hostIp(dst), tcp,
                           PayloadBuffer(payload_bytes));
}

/** A switch plus one cable per port ending in a collector. */
struct SwitchWorld
{
    sim::Simulation sim;
    std::unique_ptr<Switch> fabric;
    std::vector<std::unique_ptr<Link>> cables;
    std::vector<std::unique_ptr<CollectorSink>> hosts;

    explicit SwitchWorld(const SwitchConfig &config)
    {
        fabric = std::make_unique<Switch>(sim, "fabric", config);
        for (std::size_t i = 0; i < config.numPorts; ++i) {
            hosts.push_back(std::make_unique<CollectorSink>());
            cables.push_back(std::make_unique<Link>(
                sim, "cable" + std::to_string(i), 100e9,
                sim::nanosecondsToTicks(500)));
            // Switch side is endpoint A: the switch transmits toward
            // the host through aToB(), hosts inject through bToA().
            cables.back()->connect(fabric->port(i), *hosts.back());
            fabric->attachTx(i, cables.back()->aToB());
            fabric->addRoute(hostIp(static_cast<std::uint8_t>(i)), i);
        }
    }

    /** Deliver a frame into @p in_port as if a cable had. */
    void
    inject(std::size_t in_port, Packet &&pkt)
    {
        fabric->port(in_port).receivePacket(std::move(pkt));
    }
};

TEST(Switch, ForwardsByRouteAndPreservesFifoOrder)
{
    SwitchConfig config;
    config.numPorts = 4;
    SwitchWorld world(config);

    // Three frames from distinct ingress ports, all routed to port 0,
    // injected in a known order at the same tick.
    world.inject(1, makeFrame(1, 0, 100, 256));
    world.inject(2, makeFrame(2, 0, 200, 256));
    world.inject(3, makeFrame(3, 0, 300, 256));
    world.sim.runFor(sim::microsecondsToTicks(50));

    auto &out = world.hosts[0]->received;
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].tcp().seq, 100u);
    EXPECT_EQ(out[1].tcp().seq, 200u);
    EXPECT_EQ(out[2].tcp().seq, 300u);

    EXPECT_EQ(world.fabric->forwarded(0), 3u);
    EXPECT_EQ(world.fabric->received(1), 1u);
    EXPECT_EQ(world.fabric->received(2), 1u);
    EXPECT_EQ(world.fabric->received(3), 1u);
    EXPECT_EQ(world.fabric->totalDropped(), 0u);
    EXPECT_EQ(world.fabric->sharedPoolUsed(), 0u);
}

TEST(Switch, SerializesBackToBackFramesInArrivalOrder)
{
    SwitchConfig config;
    config.numPorts = 2;
    SwitchWorld world(config);

    for (std::uint32_t i = 0; i < 16; ++i)
        world.inject(1, makeFrame(1, 0, i, 1400));
    world.sim.runFor(sim::microsecondsToTicks(50));

    auto &out = world.hosts[0]->received;
    ASSERT_EQ(out.size(), 16u);
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(out[i].tcp().seq, i) << "frame " << i;
}

TEST(Switch, TailDropsWhenSharedPoolOverflowsAndAccountsExactly)
{
    SwitchConfig config;
    config.numPorts = 3;
    // Pool sized for only a handful of 1400-byte frames.
    config.sharedEgressBytes = 6 * 1500;
    SwitchWorld world(config);

    constexpr std::uint32_t offered = 32;
    for (std::uint32_t i = 0; i < offered; ++i) {
        world.inject(1, makeFrame(1, 0, i, 1400));
        world.inject(2, makeFrame(2, 0, 1000 + i, 1400));
    }
    world.sim.runFor(sim::microsecondsToTicks(100));

    std::uint64_t admitted = world.fabric->enqueued(0);
    std::uint64_t dropped = world.fabric->droppedOverflow(0);
    EXPECT_EQ(admitted + dropped, 2 * offered);
    EXPECT_GT(dropped, 0u) << "pool was sized to force tail drops";
    EXPECT_EQ(world.fabric->totalDropped(), dropped);

    // Every admitted frame eventually drains, in order, and the pool
    // accounting returns to zero.
    EXPECT_EQ(world.fabric->forwarded(0), admitted);
    EXPECT_EQ(world.hosts[0]->received.size(), admitted);
    EXPECT_EQ(world.fabric->sharedPoolUsed(), 0u);
    EXPECT_EQ(world.fabric->queuedBytes(0), 0u);
    EXPECT_LE(world.fabric->peakQueuedBytes(0),
              world.fabric->sharedPoolCapacity());

    // Tail drop means the *first* frames survive.
    auto &out = world.hosts[0]->received;
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[0].tcp().seq, 0u);

    // Byte accounting: forwarded wire bytes match what arrived.
    std::uint64_t wire = 0;
    for (const auto &pkt : out)
        wire += pkt.wireBytes();
    EXPECT_EQ(world.fabric->bytesForwarded(0), wire);
}

TEST(Switch, PerPortCountersTrackDistinctEgresses)
{
    SwitchConfig config;
    config.numPorts = 4;
    SwitchWorld world(config);

    for (std::uint32_t i = 0; i < 5; ++i)
        world.inject(3, makeFrame(3, 0, i, 512));
    for (std::uint32_t i = 0; i < 2; ++i)
        world.inject(3, makeFrame(3, 1, i, 512));
    world.sim.runFor(sim::microsecondsToTicks(50));

    EXPECT_EQ(world.fabric->received(3), 7u);
    EXPECT_EQ(world.fabric->forwarded(0), 5u);
    EXPECT_EQ(world.fabric->forwarded(1), 2u);
    EXPECT_EQ(world.fabric->forwarded(2), 0u);
    EXPECT_EQ(world.hosts[0]->received.size(), 5u);
    EXPECT_EQ(world.hosts[1]->received.size(), 2u);
    EXPECT_EQ(world.fabric->totalForwarded(), 7u);
}

TEST(Switch, UnroutedDestinationCountsAsRouteMiss)
{
    SwitchConfig config;
    config.numPorts = 2;
    SwitchWorld world(config);

    world.inject(0, makeFrame(0, 200, 1, 64)); // no route for host 200
    world.sim.runFor(sim::microsecondsToTicks(10));

    EXPECT_EQ(world.fabric->routeMisses(), 1u);
    EXPECT_EQ(world.fabric->totalForwarded(), 0u);
    EXPECT_TRUE(world.hosts[1]->received.empty());
}

TEST(Switch, BroadcastFloodsToAllPortsExceptIngress)
{
    SwitchConfig config;
    config.numPorts = 4;
    SwitchWorld world(config);

    Packet pkt = makeFrame(1, 0, 42, 64);
    pkt.eth.dst = MacAddress::broadcast();
    world.inject(1, std::move(pkt));
    world.sim.runFor(sim::microsecondsToTicks(10));

    EXPECT_EQ(world.hosts[0]->received.size(), 1u);
    EXPECT_TRUE(world.hosts[1]->received.empty()) << "no hairpin";
    EXPECT_EQ(world.hosts[2]->received.size(), 1u);
    EXPECT_EQ(world.hosts[3]->received.size(), 1u);
}

TEST(Switch, EgressAccountingAuditHoldsUnderLoad)
{
    SwitchConfig config;
    config.numPorts = 3;
    config.sharedEgressBytes = 8 * 1500;
    SwitchWorld world(config);

    for (std::uint32_t i = 0; i < 64; ++i) {
        world.inject(1, makeFrame(1, 0, i, 1000));
        world.inject(2, makeFrame(2, 0, i, 700));
        if (i % 8 == 0) {
            world.sim.runFor(sim::microsecondsToTicks(1));
            world.sim.runAudits();
        }
    }
    world.sim.runFor(sim::microsecondsToTicks(100));
    world.sim.runAudits();
    EXPECT_GT(world.sim.auditRuns(), 0u);
}

} // namespace
} // namespace f4t::net
