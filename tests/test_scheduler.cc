/**
 * @file
 * Tests for the memory orchestration machinery (Sections 4.3-4.4):
 * event routing through the location LUT, coalescing, the pending
 * queue for moving flows, FPC<->DRAM migration, swap-in via the check
 * logic, capacity management, and load balancing across FPCs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/memory_manager.hh"
#include "core/scheduler.hh"
#include "harness.hh"
#include "mem/dram.hh"
#include "sim/check.hh"
#include "sim/simulation.hh"

namespace f4t::core
{
namespace
{

struct SchedulerFixture : ::testing::Test
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program{cc};
    std::unique_ptr<mem::DramModel> dram;
    std::vector<std::unique_ptr<Fpc>> fpcs;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<MemoryManager> memoryManager;

    void
    build(std::size_t num_fpcs, std::size_t slots_per_fpc,
          mem::DramConfig dram_config = mem::DramConfig::hbm(),
          std::size_t cache_lines = 64)
    {
        dram = std::make_unique<mem::DramModel>(sim, "dram", dram_config);

        FpcConfig fpc_config;
        fpc_config.slots = slots_per_fpc;
        std::vector<Fpc *> raw;
        for (std::size_t i = 0; i < num_fpcs; ++i) {
            fpcs.push_back(std::make_unique<Fpc>(
                sim, "fpc" + std::to_string(i), sim.engineClock(),
                program, fpc_config));
            raw.push_back(fpcs.back().get());
        }

        SchedulerConfig sched_config;
        sched_config.maxFlows = 4096;
        scheduler = std::make_unique<Scheduler>(
            sim, "scheduler", sim.engineClock(), sched_config);
        scheduler->attachFpcs(raw);

        MemoryManagerConfig mm_config;
        mm_config.cacheLines = cache_lines;
        memoryManager = std::make_unique<MemoryManager>(
            sim, "memoryManager", sim.engineClock(), *dram, mm_config);
        memoryManager->setScheduler(scheduler.get());
        scheduler->attachMemoryManager(memoryManager.get());
    }

    MigratingTcb
    syntheticFlow(tcp::FlowId flow)
    {
        MigratingTcb fresh;
        tcp::Tcb &tcb = fresh.tcb;
        tcb.flowId = flow;
        tcb.mss = 1460;
        tcb.iss = tcp::FpuProgram::initialSequence(flow);
        tcb.sndUna = tcb.iss + 1;
        tcb.sndUnaProcessed = tcb.sndUna;
        tcb.sndNxt = tcb.iss + 1;
        tcb.req = tcb.iss + 1;
        tcb.lastAckNotified = tcb.iss + 1;
        tcb.state = tcp::ConnState::established;
        tcb.sndWnd = 1u << 30;
        tcb.cwnd = 1u << 30;
        tcb.ssthresh = 1u << 30;
        tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
        tcb.rcvNxt = 1;
        tcb.userRead = 1;
        tcb.lastAckSent = 1;
        tcb.lastRcvNotified = 1;
        tcb.lastWndAdvertised = 1 + tcb.receiveWindow();
        return fresh;
    }

    tcp::TcpEvent
    sendEvent(tcp::FlowId flow, std::uint32_t offset)
    {
        tcp::TcpEvent ev;
        ev.flow = flow;
        ev.type = tcp::TcpEventType::userSend;
        ev.pointer = tcp::FpuProgram::initialSequence(flow) + 1 + offset;
        return ev;
    }

    void
    settle(double us = 20)
    {
        test::runFor(sim, us);
    }

    /** Caller-located: failures point at the test, not this helper. */
    void
    expectLocation(tcp::FlowId flow, Location::Kind kind,
                   test::SourceLoc loc)
    {
        test::expectEq(static_cast<int>(scheduler->location(flow).kind),
                       static_cast<int>(kind), "location(flow).kind",
                       "expected kind", loc);
    }
};

TEST_F(SchedulerFixture, NewFlowsGoToLeastLoadedFpc)
{
    build(4, 8);
    for (tcp::FlowId flow = 0; flow < 8; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }
    // Round-robin-ish: every FPC got two flows.
    for (auto &fpc : fpcs)
        EXPECT_EQ(fpc->flowCount(), 2u);
    for (tcp::FlowId flow = 0; flow < 8; ++flow)
        expectLocation(flow, Location::Kind::fpc, F4T_TEST_HERE);
}

TEST_F(SchedulerFixture, OverflowFlowsFallToDram)
{
    build(1, 4);
    for (tcp::FlowId flow = 0; flow < 10; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }
    EXPECT_EQ(fpcs[0]->flowCount(), 4u);
    EXPECT_EQ(memoryManager->flowCount(), 6u);
    std::size_t in_dram = 0;
    for (tcp::FlowId flow = 0; flow < 10; ++flow) {
        if (scheduler->location(flow).kind == Location::Kind::dram)
            ++in_dram;
    }
    EXPECT_EQ(in_dram, 6u);
}

TEST_F(SchedulerFixture, EventsRouteToTheRightDestination)
{
    build(2, 4);
    scheduler->allocateFlow(syntheticFlow(0));
    settle(1);
    scheduler->allocateFlow(syntheticFlow(1));
    settle(1);

    scheduler->submitEvent(sendEvent(0, 100));
    scheduler->submitEvent(sendEvent(1, 100));
    settle(5);

    EXPECT_EQ(fpcs[0]->eventsHandled() + fpcs[1]->eventsHandled(), 2u);
    EXPECT_EQ(scheduler->eventsRouted(), 2u);
}

TEST_F(SchedulerFixture, CoalescingMergesSameFlowUserSends)
{
    build(1, 4);
    scheduler->allocateFlow(syntheticFlow(0));
    settle(1);

    // Burst of sends for one flow submitted in one cycle: they meet in
    // the coalesce FIFO before routing.
    for (int i = 1; i <= 10; ++i)
        scheduler->submitEvent(sendEvent(0, i * 100));
    settle(5);

    EXPECT_GT(scheduler->eventsCoalesced(), 0u);
    // All information preserved: the flow's req reached the maximum.
    tcp::Tcb merged = fpcs[0]->peekMergedTcb(0);
    EXPECT_EQ(merged.req,
              tcp::FpuProgram::initialSequence(0) + 1 + 1000);
}

TEST_F(SchedulerFixture, DupAckEventsAreNotCoalesced)
{
    build(1, 4);
    scheduler->allocateFlow(syntheticFlow(0));
    settle(1);
    // Data in flight so duplicate ACKs mean something.
    scheduler->submitEvent(sendEvent(0, 20000));
    settle(5);

    std::uint64_t coalesced_before = scheduler->eventsCoalesced();
    net::SeqNum una = tcp::FpuProgram::initialSequence(0) + 1;
    for (int i = 0; i < 3; ++i) {
        tcp::TcpEvent dup;
        dup.flow = 0;
        dup.type = tcp::TcpEventType::rxSegment;
        dup.tcpFlags = net::TcpFlags::ack;
        dup.peerAck = una;
        dup.rcvUpTo = 1;
        dup.peerWnd = 1u << 30;
        dup.isDupAck = true; // marked by the peer model
        scheduler->submitEvent(dup);
    }
    settle(5);

    EXPECT_EQ(scheduler->eventsCoalesced(), coalesced_before);
    tcp::Tcb merged = fpcs[0]->peekMergedTcb(0);
    EXPECT_EQ(merged.ccPhase, tcp::CcPhase::fastRecovery);
}

TEST_F(SchedulerFixture, DramResidentFlowSwapsInWhenItHasWork)
{
    build(1, 2);
    // Fill the FPC, then add a DRAM-resident flow.
    for (tcp::FlowId flow = 0; flow < 3; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }
    ASSERT_EQ(scheduler->location(2).kind, Location::Kind::dram);

    // An event gives flow 2 work; the check logic must swap it into
    // the FPC (evicting a cold flow to make room).
    scheduler->submitEvent(sendEvent(2, 500));
    settle(50);

    EXPECT_EQ(scheduler->location(2).kind, Location::Kind::fpc);
    EXPECT_TRUE(fpcs[0]->hasFlow(2));
    // The displaced flow went to DRAM.
    EXPECT_EQ(memoryManager->flowCount(), 1u);
    EXPECT_GE(scheduler->migrations(), 2u);

    // ... and the swapped-in flow's work was done: req applied.
    tcp::Tcb merged = fpcs[0]->peekMergedTcb(2);
    EXPECT_EQ(merged.req,
              tcp::FpuProgram::initialSequence(2) + 1 + 500);
    EXPECT_EQ(merged.sndNxt, merged.req); // data sent after swap-in
}

TEST_F(SchedulerFixture, EventsForMovingFlowsWaitInPendingQueue)
{
    build(2, 2);
    for (tcp::FlowId flow = 0; flow < 5; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }
    ASSERT_EQ(scheduler->location(4).kind, Location::Kind::dram);

    // Trigger the swap-in and immediately pile on more events: some
    // hit the moving window and must be pended, never dropped.
    for (int i = 1; i <= 8; ++i)
        scheduler->submitEvent(sendEvent(4, i * 100));
    settle(50);

    EXPECT_EQ(scheduler->location(4).kind, Location::Kind::fpc);
    tcp::FlowId fpc_idx = scheduler->location(4).fpcIndex;
    tcp::Tcb merged = fpcs[fpc_idx]->peekMergedTcb(4);
    EXPECT_EQ(merged.req,
              tcp::FpuProgram::initialSequence(4) + 1 + 800);
}

TEST_F(SchedulerFixture, ManyFlowsChurnWithoutLossOrDeadlock)
{
    build(2, 4, mem::DramConfig::hbm(), 16);
    constexpr tcp::FlowId flows = 64;
    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(0.5);
    }

    // Rounds of events over all flows: constant swapping through the
    // 8 FPC slots. Every event's effect must eventually appear.
    std::vector<std::uint32_t> req_offset(flows, 0);
    test::ScopedRng rng(77);
    for (int round = 0; round < 10; ++round) {
        for (tcp::FlowId flow = 0; flow < flows; ++flow) {
            req_offset[flow] += 100 + static_cast<std::uint32_t>(
                                          rng.below(100));
            scheduler->submitEvent(sendEvent(flow, req_offset[flow]));
        }
        settle(30);
    }
    settle(500);

    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        Location loc = scheduler->location(flow);
        tcp::Tcb merged;
        if (loc.kind == Location::Kind::fpc) {
            merged = fpcs[loc.fpcIndex]->peekMergedTcb(flow);
        } else {
            ASSERT_EQ(loc.kind, Location::Kind::dram)
                << "flow " << flow << " stuck moving";
            merged = memoryManager->peekMergedTcb(flow);
        }
        EXPECT_EQ(merged.req, tcp::FpuProgram::initialSequence(flow) + 1 +
                                  req_offset[flow])
            << "flow " << flow;
    }
}

TEST_F(SchedulerFixture, FreeFlowReleasesEverywhere)
{
    build(1, 2);
    for (tcp::FlowId flow = 0; flow < 3; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }
    ASSERT_EQ(memoryManager->flowCount(), 1u);

    scheduler->freeFlow(2); // the DRAM-resident one
    EXPECT_EQ(memoryManager->flowCount(), 0u);
    EXPECT_EQ(scheduler->location(2).kind, Location::Kind::unallocated);
}

TEST_F(SchedulerFixture, MemoryManagerCacheCountsHitsAndMisses)
{
    build(1, 2, mem::DramConfig::ddr4(), 4);
    // 8 DRAM-resident flows vs a 4-line cache: guaranteed misses.
    for (tcp::FlowId flow = 0; flow < 10; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }

    // Window updates that give no work: events are handled in DRAM
    // without triggering swap-ins.
    for (int round = 0; round < 4; ++round) {
        for (tcp::FlowId flow = 2; flow < 10; ++flow) {
            tcp::TcpEvent ev;
            ev.flow = flow;
            ev.type = tcp::TcpEventType::rxSegment;
            ev.tcpFlags = net::TcpFlags::ack;
            ev.peerAck = tcp::FpuProgram::initialSequence(flow) + 1;
            ev.rcvUpTo = 1;
            ev.peerWnd = 1u << 30;
            scheduler->submitEvent(ev);
        }
        settle(20);
    }

    EXPECT_GT(memoryManager->eventsHandled(), 0u);
    EXPECT_GT(memoryManager->cacheMisses(), 0u);
    EXPECT_GT(dram->requestCount(), 0u);
}

TEST_F(SchedulerFixture, CongestionTriggersRebalancing)
{
    build(2, 8);
    // Two flows on FPC0 (allocation alternates, so pick explicitly by
    // loading flow counts): allocate four flows, find two on one FPC.
    for (tcp::FlowId flow = 0; flow < 4; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(1);
    }

    // Hammer the flows of FPC0 only so its input FIFO backs up while
    // FPC1 idles; the scheduler should migrate one of them.
    std::vector<tcp::FlowId> fpc0_flows;
    for (tcp::FlowId flow = 0; flow < 4; ++flow) {
        if (scheduler->location(flow).kind == Location::Kind::fpc &&
            scheduler->location(flow).fpcIndex == 0) {
            fpc0_flows.push_back(flow);
        }
    }
    ASSERT_GE(fpc0_flows.size(), 2u);

    std::uint32_t offset = 0;
    for (int burst = 0; burst < 400; ++burst) {
        offset += 10;
        for (tcp::FlowId flow : fpc0_flows) {
            tcp::TcpEvent ev = sendEvent(flow, offset);
            // Alternate dup-ack-ineligible segment events so they do
            // not coalesce into a single FIFO entry.
            if (burst % 2) {
                ev.type = tcp::TcpEventType::rxSegment;
                ev.tcpFlags = net::TcpFlags::ack;
                ev.peerAck = tcp::FpuProgram::initialSequence(flow) + 1;
                ev.isDupAck = true;
                ev.rcvUpTo = 1;
                ev.peerWnd = 1u << 30;
            }
            scheduler->submitEvent(ev);
        }
    }
    settle(100);

    EXPECT_GT(scheduler->rebalances(), 0u);
}

TEST_F(SchedulerFixture, MigrationProtocolChurnTerminatesConsistently)
{
    // Eviction/swap-in churn through a tiny FPC footprint: 16 flows
    // over 4 slots, every round touching the DRAM-resident majority so
    // the location LUT cycles fpc -> dram -> moving -> fpc constantly.
    build(2, 2, mem::DramConfig::hbm(), 8);
    constexpr tcp::FlowId flows = 16;
    std::vector<std::uint32_t> req_offset(flows, 0);
    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        scheduler->allocateFlow(syntheticFlow(flow));
        settle(0.5);
    }

    std::uint64_t migrations_before = scheduler->migrations();
    std::uint64_t swap_ins = 0;
    test::ScopedRng rng(123);
    for (int round = 0; round < 12; ++round) {
        for (tcp::FlowId flow = 0; flow < flows; ++flow) {
            if (scheduler->location(flow).kind == Location::Kind::dram)
                ++swap_ins; // giving a DRAM flow work forces a swap-in
            req_offset[flow] +=
                50 + static_cast<std::uint32_t>(rng.below(200));
            scheduler->submitEvent(sendEvent(flow, req_offset[flow]));
        }
        settle(40);
        // Monotone counter: churn only ever adds migrations.
        EXPECT_GE(scheduler->migrations(), migrations_before);
        migrations_before = scheduler->migrations();
    }
    settle(500);

    // Retry-path termination: after quiescing, nothing may be parked
    // in MOVING (the 12-cycle pending retry must converge), no event
    // may be lost, and every flow is exactly somewhere.
    std::size_t in_fpc = 0, in_dram = 0;
    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        Location loc = scheduler->location(flow);
        EXPECT_NE(loc.kind, Location::Kind::moving)
            << "flow " << flow << " stuck mid-migration";
        tcp::Tcb merged;
        if (loc.kind == Location::Kind::fpc) {
            ++in_fpc;
            merged = fpcs[loc.fpcIndex]->peekMergedTcb(flow);
        } else {
            ASSERT_EQ(loc.kind, Location::Kind::dram);
            ++in_dram;
            merged = memoryManager->peekMergedTcb(flow);
        }
        EXPECT_EQ(merged.req, tcp::FpuProgram::initialSequence(flow) + 1 +
                                  req_offset[flow])
            << "flow " << flow;
    }
    EXPECT_EQ(in_fpc + in_dram, flows);
    EXPECT_EQ(fpcs[0]->flowCount() + fpcs[1]->flowCount(), in_fpc);
    EXPECT_EQ(memoryManager->flowCount(), in_dram);

    // Each DRAM flow given work migrates in (and usually displaces a
    // resident): the migration counter must at least cover them.
    EXPECT_GE(scheduler->migrations(), swap_ins);

    // And the invariant-audit layer agrees with all of the above.
    if constexpr (sim::checksEnabled) {
        sim.runAudits();
        EXPECT_GT(sim.auditRuns(), 0u);
    }
}

} // namespace
} // namespace f4t::core
