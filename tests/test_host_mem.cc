/**
 * @file
 * Tests for the host and memory substrates: CPU cycle accounting,
 * PCIe bandwidth/latency, command rings, host TCP buffers, the BRAM
 * port budget, the DRAM channel, and the direct-mapped TCB cache.
 */

#include <gtest/gtest.h>

#include "host/command_queue.hh"
#include "host/cpu.hh"
#include "host/host_memory.hh"
#include "host/pcie.hh"
#include "mem/bram.hh"
#include "mem/dram.hh"
#include "mem/tcb_cache.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

TEST(CpuCore, ChargesAdvanceBusyHorizon)
{
    sim::Simulation sim;
    host::CpuCore core(sim, "core", 2.3e9);

    EXPECT_TRUE(core.idle());
    core.charge(tcp::CostCategory::application, 2300.0); // 1 us at 2.3 GHz
    EXPECT_FALSE(core.idle());
    EXPECT_NEAR(static_cast<double>(core.busyUntil()),
                static_cast<double>(sim::microsecondsToTicks(1)), 1000);

    // A second charge queues behind the first.
    core.charge(tcp::CostCategory::tcpStack, 2300.0);
    EXPECT_NEAR(static_cast<double>(core.busyUntil()),
                static_cast<double>(sim::microsecondsToTicks(2)), 2000);

    EXPECT_DOUBLE_EQ(core.categoryCycles(tcp::CostCategory::application),
                     2300.0);
    EXPECT_DOUBLE_EQ(core.categoryCycles(tcp::CostCategory::tcpStack),
                     2300.0);
    EXPECT_DOUBLE_EQ(core.totalBusyCycles(), 4600.0);
}

TEST(CpuCore, RunAfterChargeSequencesWork)
{
    sim::Simulation sim;
    host::CpuCore core(sim, "core", 1e9); // 1 GHz: 1 cycle = 1 ns

    std::vector<sim::Tick> stamps;
    core.runAfterCharge(tcp::CostCategory::application, 1000.0,
                        [&] { stamps.push_back(sim.now()); });
    core.runAfterCharge(tcp::CostCategory::application, 1000.0,
                        [&] { stamps.push_back(sim.now()); });
    sim.run();

    ASSERT_EQ(stamps.size(), 2u);
    EXPECT_NEAR(static_cast<double>(stamps[0]), 1000e3, 10); // 1 us
    EXPECT_NEAR(static_cast<double>(stamps[1]), 2000e3, 10); // serialized
}

TEST(Pcie, BandwidthSerializesTransfers)
{
    sim::Simulation sim;
    host::PcieConfig config;
    config.bandwidthBytesPerSec = 10e9;
    config.dmaLatency = sim::nanosecondsToTicks(500);
    config.transactionOverheadBytes = 0;
    host::PcieModel pcie(sim, "pcie", config);

    // Two 10 KB transfers: 1 us each on the wire, plus latency.
    sim::Tick first = pcie.hostToDevice(10'000);
    sim::Tick second = pcie.hostToDevice(10'000);
    EXPECT_NEAR(static_cast<double>(first),
                static_cast<double>(sim::microsecondsToTicks(1.5)), 2000);
    EXPECT_NEAR(static_cast<double>(second),
                static_cast<double>(sim::microsecondsToTicks(2.5)), 2000);

    // Directions are independent.
    sim::Tick reverse = pcie.deviceToHost(10'000);
    EXPECT_LT(reverse, second);
}

TEST(CommandQueue, RingDepthBackpressures)
{
    host::CommandQueue queue(4, 16);
    host::Command cmd;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(queue.push(cmd));
    EXPECT_TRUE(queue.full());
    // Past the nominal depth: reported as backpressure, but the
    // elastic model still stores the entry (nothing is ever lost).
    EXPECT_FALSE(queue.push(cmd));
    auto batch = queue.popBatch(8);
    EXPECT_EQ(batch.size(), 5u);
    EXPECT_TRUE(queue.empty());
}

TEST(HostMemory, FlowBuffersLifecycle)
{
    host::HostMemory memory(1024);
    EXPECT_EQ(memory.find(5), nullptr);
    host::FlowBuffers &buffers = memory.ensure(5);
    EXPECT_EQ(buffers.tx.capacity(), 1024u);
    EXPECT_EQ(memory.flowCount(), 1u);
    EXPECT_EQ(&memory.ensure(5), &buffers);
    memory.release(5);
    EXPECT_EQ(memory.find(5), nullptr);
}

TEST(Bram, PortBudgetEnforced)
{
    mem::DualPortBram<int> bram(8);
    bram.newCycle(0);
    bram.write(0, 1);
    bram.read(0);
    EXPECT_DEATH(bram.read(1), "port overcommit");
}

TEST(Bram, NewCycleResetsBudget)
{
    mem::DualPortBram<int> bram(8);
    bram.newCycle(0);
    bram.write(3, 42);
    bram.read(3);
    bram.newCycle(1);
    EXPECT_EQ(bram.read(3), 42);
    bram.write(3, 43);
    EXPECT_EQ(bram.peek(3), 43);
}

TEST(Dram, BandwidthAndFloorGovernServiceTime)
{
    sim::Simulation sim;
    mem::DramConfig config = mem::DramConfig::ddr4();
    mem::DramModel dram(sim, "dram", config);

    // A TCB-sized transfer is floor-bound (30 ns >> 128 B / 38 GB/s).
    sim::Tick first = dram.accessTime(128);
    sim::Tick second = dram.accessTime(128);
    EXPECT_EQ(second - first, config.minServicePerRequest);

    // A large transfer is bandwidth-bound.
    sim::Tick big_start = dram.accessTime(0);
    sim::Tick big_end = dram.accessTime(1 << 20);
    double seconds = sim::ticksToSeconds(big_end - big_start);
    EXPECT_NEAR(seconds, (1 << 20) / 38e9, 5e-7);
}

TEST(Dram, HbmFloorsAreTighter)
{
    EXPECT_LT(mem::DramConfig::hbm().minServicePerRequest,
              mem::DramConfig::ddr4().minServicePerRequest);
    EXPECT_GT(mem::DramConfig::hbm().bandwidthBytesPerSec,
              mem::DramConfig::ddr4().bandwidthBytesPerSec);
}

TEST(TcbCache, DirectMappedConflictEvictsDirtyVictim)
{
    mem::DirectMappedCache<int> cache(4);
    EXPECT_FALSE(cache.insert(1, 100, true).has_value());
    EXPECT_TRUE(cache.contains(1));

    // 5 maps to the same line as 1 (mod 4): dirty victim pops out.
    auto victim = cache.insert(5, 500, false);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->flowId, 1u);
    EXPECT_EQ(victim->entry, 100);
    EXPECT_FALSE(cache.contains(1));
    EXPECT_TRUE(cache.contains(5));

    // Clean victims are dropped silently.
    EXPECT_FALSE(cache.insert(9, 900, true).has_value());
}

TEST(TcbCache, InvalidateReturnsContentAndDirtiness)
{
    mem::DirectMappedCache<int> cache(4);
    cache.insert(2, 20, false);
    cache.markDirty(2);
    auto out = cache.invalidate(2);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->first, 20);
    EXPECT_TRUE(out->second);
    EXPECT_FALSE(cache.invalidate(2).has_value());
}

} // namespace
} // namespace f4t
