/**
 * @file
 * Unit tests for the FPU congestion-control programs: NewReno, CUBIC
 * (fixed-point, with the integer cube root), and Vegas.
 */

#include <gtest/gtest.h>

#include "tcp/congestion.hh"

namespace f4t::tcp
{
namespace
{

Tcb
flowWith(const CongestionControl &cc, std::uint32_t in_flight = 0)
{
    Tcb tcb;
    tcb.mss = 1460;
    tcb.state = ConnState::established;
    cc.onInit(tcb);
    tcb.sndUna = 1000;
    tcb.sndNxt = 1000 + in_flight;
    return tcb;
}

TEST(CongestionCommon, InitSetsInitialWindow)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno);
    EXPECT_EQ(tcb.cwnd, 10u * 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::slowStart);
    EXPECT_GT(tcb.ssthresh, 1u << 30);
}

TEST(CongestionCommon, TimeoutCollapsesToOneSegment)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno, 100 * 1460);
    tcb.cwnd = 100 * 1460;
    reno.onTimeout(tcb, 1'000'000);
    EXPECT_EQ(tcb.cwnd, 1460u);
    EXPECT_EQ(tcb.ssthresh, 50u * 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::slowStart);
}

TEST(CongestionCommon, TimeoutSsthreshFloorIsTwoSegments)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno, 1000);
    reno.onTimeout(tcb, 0);
    EXPECT_EQ(tcb.ssthresh, 2u * 1460u);
}

TEST(NewReno, SlowStartDoublesPerRtt)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno);
    std::uint32_t start = tcb.cwnd;
    // One full window of ACKs, each for one MSS.
    std::uint32_t acks = start / 1460;
    for (std::uint32_t i = 0; i < acks; ++i)
        reno.onAck(tcb, 1460, 100, 1000);
    EXPECT_EQ(tcb.cwnd, 2 * start);
}

TEST(NewReno, CongestionAvoidanceGrowsOneMssPerRtt)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno);
    tcb.ssthresh = tcb.cwnd; // force CA
    reno.onAck(tcb, 1460, 100, 1000);
    EXPECT_EQ(tcb.ccPhase, CcPhase::congestionAvoidance);

    std::uint32_t before = tcb.cwnd;
    std::uint32_t acks = before / 1460;
    for (std::uint32_t i = 0; i < acks; ++i)
        reno.onAck(tcb, 1460, 100, 1000);
    EXPECT_NEAR(tcb.cwnd, before + 1460, 200);
}

TEST(NewReno, FastRecoveryHalvesWindow)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno, 80 * 1460);
    tcb.cwnd = 80 * 1460;
    reno.onEnterRecovery(tcb, 1000);
    EXPECT_EQ(tcb.ssthresh, 40u * 1460u);
    EXPECT_EQ(tcb.cwnd, 40u * 1460u + 3u * 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::fastRecovery);

    // Each further duplicate ACK inflates by one MSS.
    reno.onDupAckInRecovery(tcb);
    EXPECT_EQ(tcb.cwnd, 44u * 1460u);

    // Exit deflates back to ssthresh.
    reno.onExitRecovery(tcb);
    EXPECT_EQ(tcb.cwnd, 40u * 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::congestionAvoidance);
}

TEST(NewReno, PartialAckDeflatesAndRearms)
{
    NewRenoPolicy reno;
    Tcb tcb = flowWith(reno, 50 * 1460);
    tcb.cwnd = 50 * 1460;
    tcb.ccPhase = CcPhase::fastRecovery;
    std::uint32_t before = tcb.cwnd;
    reno.onPartialAck(tcb, 2 * 1460);
    EXPECT_EQ(tcb.cwnd, before - 2 * 1460 + 1460);
}

TEST(Cubic, CubeRootExactOnPerfectCubes)
{
    for (std::uint64_t r : {0ull, 1ull, 2ull, 7ull, 100ull, 1000ull,
                            2642245ull}) {
        EXPECT_EQ(CubicPolicy::cubeRoot(r * r * r), r);
    }
}

TEST(Cubic, CubeRootIsFloor)
{
    EXPECT_EQ(CubicPolicy::cubeRoot(26), 2u);   // 2^3=8, 3^3=27
    EXPECT_EQ(CubicPolicy::cubeRoot(27), 3u);
    EXPECT_EQ(CubicPolicy::cubeRoot(28), 3u);
    EXPECT_EQ(CubicPolicy::cubeRoot(999), 9u);  // 10^3 = 1000
    // Large inputs.
    std::uint64_t big = 0xffff'ffff'ffffull;
    std::uint64_t root = CubicPolicy::cubeRoot(big);
    EXPECT_LE(root * root * root, big);
    EXPECT_GT((root + 1) * (root + 1) * (root + 1), big);
}

TEST(Cubic, ReductionUsesBeta0_7)
{
    CubicPolicy cubic;
    Tcb tcb = flowWith(cubic, 100 * 1460);
    tcb.cwnd = 100 * 1460;
    cubic.onEnterRecovery(tcb, 1'000'000);
    // beta = 717/1024 ~ 0.7.
    EXPECT_NEAR(tcb.ssthresh, 70 * 1460, 1460);
    EXPECT_EQ(tcb.ccPhase, CcPhase::fastRecovery);
}

TEST(Cubic, ConcaveGrowthTowardWmax)
{
    CubicPolicy cubic;
    Tcb tcb = flowWith(cubic, 50 * 1460);
    tcb.cwnd = 100 * 1460;
    std::uint64_t t = 1'000'000;
    cubic.onEnterRecovery(tcb, t);
    cubic.onExitRecovery(tcb);
    std::uint32_t after_loss = tcb.cwnd;

    // Feed ACKs over simulated time; the window must grow back toward
    // (and eventually past) W_max without collapsing.
    std::uint32_t w_max = 100 * 1460;
    for (int rtt = 0; rtt < 300; ++rtt) {
        t += 10'000; // 10 ms per RTT
        std::uint32_t acks = tcb.cwnd / 1460;
        for (std::uint32_t i = 0; i < acks; ++i)
            cubic.onAck(tcb, 1460, 10'000, t);
    }
    EXPECT_GT(tcb.cwnd, after_loss);
    EXPECT_GT(tcb.cwnd, w_max); // past the plateau into convex growth
}

TEST(Cubic, FastConvergenceLowersWmax)
{
    CubicPolicy cubic;
    Tcb tcb = flowWith(cubic, 100 * 1460);
    tcb.cwnd = 100 * 1460;
    cubic.onEnterRecovery(tcb, 1'000'000);

    // Second loss below the previous W_max triggers fast convergence:
    // the remembered W_max drops below the current cwnd's level.
    std::uint32_t cwnd_at_loss = tcb.cwnd;
    cubic.onEnterRecovery(tcb, 2'000'000);
    EXPECT_LT(tcb.cwnd, cwnd_at_loss);
}

TEST(Vegas, HoldsWindowInsideAlphaBetaBand)
{
    VegasPolicy vegas;
    Tcb tcb = flowWith(vegas);
    tcb.ssthresh = tcb.cwnd; // CA
    vegas.onAck(tcb, 1460, 10'000, 0);
    tcb.ccPhase = CcPhase::congestionAvoidance;
    tcb.minRttUs = 10'000;
    std::uint32_t cwnd = tcb.cwnd;

    // RTT equal to baseRTT -> diff 0 < alpha -> +1 MSS per RTT.
    vegas.onAck(tcb, 1460, 10'000, 1'000'000);
    EXPECT_EQ(tcb.cwnd, cwnd + 1460);

    // RTT so long that diff > beta -> -1 MSS (one adjustment per RTT:
    // jump time forward past the guard).
    cwnd = tcb.cwnd;
    vegas.onAck(tcb, 1460, 40'000, 10'000'000);
    EXPECT_EQ(tcb.cwnd, cwnd - 1460);
}

TEST(Vegas, AdjustsAtMostOncePerRtt)
{
    VegasPolicy vegas;
    Tcb tcb = flowWith(vegas);
    tcb.ccPhase = CcPhase::congestionAvoidance;
    tcb.ssthresh = tcb.cwnd;
    tcb.minRttUs = 10'000;

    vegas.onAck(tcb, 1460, 10'000, 1'000'000);
    std::uint32_t after_first = tcb.cwnd;
    // Burst of ACKs within the same RTT: no further adjustment.
    for (int i = 0; i < 10; ++i)
        vegas.onAck(tcb, 1460, 10'000, 1'000'100);
    EXPECT_EQ(tcb.cwnd, after_first);
}

TEST(Factory, LatenciesMatchThePaper)
{
    // Section 5.4: NewReno 14 cycles, CUBIC 41, Vegas 68.
    EXPECT_EQ(makeCongestionControl("newreno")->processingLatencyCycles(),
              14u);
    EXPECT_EQ(makeCongestionControl("cubic")->processingLatencyCycles(),
              41u);
    EXPECT_EQ(makeCongestionControl("vegas")->processingLatencyCycles(),
              68u);
}

TEST(Factory, UnknownAlgorithmIsFatal)
{
    EXPECT_DEATH(makeCongestionControl("bbr"), "unknown congestion");
}

} // namespace
} // namespace f4t::tcp
