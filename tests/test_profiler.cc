/**
 * @file
 * Unit tests for the wall-clock self-profiler (sim/profile_scope.hh,
 * obs/profiler.hh) and the ParallelExecutor runtime introspection it
 * feeds: scope self-time accounting, event-tag categorization,
 * attribution-vs-wall coverage, thread-local merge across executor
 * workers, and the registerStats() scalars that are available even
 * without a profiling build.
 *
 * The parallel suites are named Profiler*Parallel* so the tsan preset
 * picks them up alongside the other barrier/mailbox tests.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <vector>

#include "obs/profiler.hh"
#include "sim/parallel.hh"
#include "sim/profile_scope.hh"
#include "sim/simulation.hh"

namespace
{

using namespace f4t;
using sim::Tick;
namespace prof = sim::prof;

/** Re-disable profiling even when an ASSERT bails out of a test. */
struct ProfilingOn
{
    ProfilingOn() { prof::setEnabled(true); }
    ~ProfilingOn() { prof::setEnabled(false); }
};

/** Burn wall time without sleeping (sleep would not count as work). */
void
spinFor(std::chrono::microseconds duration)
{
    auto until = std::chrono::steady_clock::now() + duration;
    volatile unsigned sink = 0;
    while (std::chrono::steady_clock::now() < until)
        sink = sink + 1;
}

// --- compile/runtime gates ----------------------------------------------

TEST(Profiler, DisabledScopesAccumulateNothing)
{
    prof::setEnabled(false);
    prof::Snapshot before = prof::capture();
    {
        prof::Scope scope(prof::Cat::harness);
        spinFor(std::chrono::microseconds(200));
    }
    prof::Snapshot delta = prof::since(before);
    EXPECT_EQ(delta.totalNs(), 0u);
    EXPECT_EQ(delta.totalCount(), 0u);
}

TEST(Profiler, CompiledOutBuildIsFullyInert)
{
    if (prof::compiledIn)
        GTEST_SKIP() << "this build has F4T_ENABLE_PROFILE=ON";
    // In an =OFF build the runtime switch must have no effect and
    // capture() must stay all-zero no matter what ran.
    prof::setEnabled(true);
    EXPECT_FALSE(prof::enabled());
    {
        prof::Scope scope(prof::Cat::harness);
        spinFor(std::chrono::microseconds(100));
    }
    EXPECT_EQ(prof::capture().totalCount(), 0u);
    prof::setEnabled(false);
}

// --- categorization ------------------------------------------------------

TEST(Profiler, CategoryTaggingStability)
{
    // Module-name substrings route to the matching subsystem; the
    // specific names win over the generic fallbacks.
    EXPECT_EQ(prof::categorizeTag("engineA.fpc0.tick"), prof::Cat::fpcExec);
    EXPECT_EQ(prof::categorizeTag("engineA.scheduler"),
              prof::Cat::scheduler);
    EXPECT_EQ(prof::categorizeTag("link.aToB"), prof::Cat::linkSwitch);
    EXPECT_EQ(prof::categorizeTag("switch.drain"), prof::Cat::linkSwitch);
    EXPECT_EQ(prof::categorizeTag("engineA.rxParser"), prof::Cat::rxParse);
    EXPECT_EQ(prof::categorizeTag("pcie.doorbell"), prof::Cat::hostComplex);
    EXPECT_EQ(prof::categorizeTag("host.cpu0"), prof::Cat::hostComplex);
    EXPECT_EQ(prof::categorizeTag("engineA.memoryManager"),
              prof::Cat::memory);
    EXPECT_EQ(prof::categorizeTag("engineA.timerWheel"),
              prof::Cat::timerWheel);
    EXPECT_EQ(prof::categorizeTag("stat.sample"), prof::Cat::obsSink);
    EXPECT_EQ(prof::categorizeTag("kv.server"), prof::Cat::app);
    EXPECT_EQ(prof::categorizeTag("no.known.needle"),
              prof::Cat::otherEvent);
    EXPECT_EQ(prof::categorizeTag(nullptr), prof::Cat::otherEvent);

    // The memoized hot-path variant agrees with the direct mapping,
    // including on repeated lookups of the same content.
    const char *tags[] = {"engineA.fpc0.tick", "link.aToB", "kv.server",
                          "no.known.needle"};
    for (int round = 0; round < 3; ++round)
        for (const char *tag : tags)
            EXPECT_EQ(prof::categorizeTagCached(tag),
                      prof::categorizeTag(tag))
                << tag;
}

TEST(Profiler, CategoryNamesAreStableIdentifiers)
{
    // JSON keys and baseline metrics hang off these names: renaming
    // one silently orphans committed baselines, so pin them.
    EXPECT_STREQ(prof::toString(prof::Cat::eventQueue), "event_queue");
    EXPECT_STREQ(prof::toString(prof::Cat::fpcExec), "fpc_exec");
    EXPECT_STREQ(prof::toString(prof::Cat::linkSwitch), "link_switch");
    EXPECT_STREQ(prof::toString(prof::Cat::hostComplex), "host_complex");
    EXPECT_STREQ(prof::toString(prof::Cat::otherEvent), "other_event");
}

// --- self-time accounting ------------------------------------------------

TEST(Profiler, NestedScopeSelfTime)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "profiler compiled out";
    ProfilingOn guard;
    prof::Snapshot before = prof::capture();

    auto wall0 = std::chrono::steady_clock::now();
    {
        prof::Scope outer(prof::Cat::harness);
        spinFor(std::chrono::microseconds(400));
        {
            prof::Scope inner(prof::Cat::app);
            spinFor(std::chrono::microseconds(400));
        }
        spinFor(std::chrono::microseconds(400));
    }
    auto wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());

    prof::Snapshot delta = prof::since(before);
    std::size_t harness = static_cast<std::size_t>(prof::Cat::harness);
    std::size_t app = static_cast<std::size_t>(prof::Cat::app);
    EXPECT_EQ(delta.count[harness], 1u);
    EXPECT_EQ(delta.count[app], 1u);
    // The child's time is charged to the child only: the outer scope's
    // self time excludes it, and both spins are visible.
    EXPECT_GT(delta.ns[app], 200'000u);
    EXPECT_GT(delta.ns[harness], 400'000u);
    // Self times are disjoint slices of the same wall interval: their
    // sum can never exceed it, and here it should cover most of it.
    EXPECT_LE(delta.totalNs(), wall_ns);
    EXPECT_GT(delta.totalNs(), wall_ns * 8 / 10);
}

TEST(Profiler, AttributionSumsToWallTime)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "profiler compiled out";
    ProfilingOn guard;

    // A real event loop: the queue's run() opens the root scope, so
    // everything inside — event dispatch and queue bookkeeping alike —
    // lands in some category.
    sim::Simulation sim;
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        spinFor(std::chrono::microseconds(20));
        if (fired < 200)
            sim.queue().scheduleCallback(sim.now() + 100, "fpc.tick",
                                         [&] { tick(); });
    };
    sim.queue().scheduleCallback(0, "fpc.tick", [&] { tick(); });

    prof::Snapshot before = prof::capture();
    auto wall0 = std::chrono::steady_clock::now();
    sim.runFor(200 * 100 + 1);
    double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());

    prof::Snapshot delta = prof::since(before);
    EXPECT_EQ(fired, 200);
    // Every fired event was tagged "fpc.tick".
    EXPECT_GE(delta.count[static_cast<std::size_t>(prof::Cat::fpcExec)],
              200u);
    // The ISSUE's bar: attributed self time covers >= 90% of the
    // measured wall interval (scope overhead is inside some scope too,
    // so the only loss is the capture calls themselves).
    EXPECT_GT(delta.totalNs(), wall_ns * 0.9);
    EXPECT_LE(delta.totalNs(), wall_ns * 1.05);
}

TEST(Profiler, ReportSharesAndCoverage)
{
    prof::Snapshot delta;
    delta.ns[static_cast<std::size_t>(prof::Cat::fpcExec)] = 3'000'000;
    delta.count[static_cast<std::size_t>(prof::Cat::fpcExec)] = 30;
    delta.ns[static_cast<std::size_t>(prof::Cat::linkSwitch)] = 1'000'000;
    delta.count[static_cast<std::size_t>(prof::Cat::linkSwitch)] = 10;

    obs::ProfileReport report = obs::makeProfileReport(delta, 0.005);
    ASSERT_EQ(report.rows.size(), 2u);
    // Sorted by self time, shares out of attributed total, coverage
    // out of the wall budget: 4 ms attributed / 5 ms wall = 80%.
    EXPECT_EQ(report.rows[0].name, "fpc_exec");
    EXPECT_NEAR(report.rows[0].sharePct, 75.0, 0.1);
    EXPECT_NEAR(report.rows[1].sharePct, 25.0, 0.1);
    EXPECT_NEAR(report.coveragePct, 80.0, 0.1);
    EXPECT_EQ(report.events, 40u);

    // Two threads double the budget: same attribution, half coverage.
    obs::ProfileReport wide = obs::makeProfileReport(delta, 0.005, 2);
    EXPECT_NEAR(wide.coveragePct, 40.0, 0.1);
}

// --- parallel executor introspection ------------------------------------

/** Channel stub: fixed lookahead, never pending (no cross traffic). */
struct IdleChannel : sim::CrossChannel
{
    explicit IdleChannel(Tick la) : la_(la) {}
    Tick lookahead() const override { return la_; }
    std::size_t drainInto() override { return 0; }
    bool idle() const override { return true; }
    Tick la_;
};

/** Two partitions with self-rescheduling tagged ticks, two workers. */
struct TwoPartitionWorld
{
    sim::Simulation pa, pb;
    sim::ParallelExecutor ex{2};
    IdleChannel channel{2'000};
    int ticksA = 0, ticksB = 0;
    std::function<void()> tickA, tickB;

    TwoPartitionWorld()
    {
        ex.addPartition(pa, "a");
        ex.addPartition(pb, "b");
        ex.addChannel(channel);
        tickA = [this] {
            ++ticksA;
            pa.queue().scheduleCallback(pa.now() + 100, "fpc.tick",
                                        [this] { tickA(); });
        };
        tickB = [this] {
            ++ticksB;
            pb.queue().scheduleCallback(pb.now() + 100, "kv.tick",
                                        [this] { tickB(); });
        };
        pa.queue().scheduleCallback(0, "fpc.tick", [this] { tickA(); });
        pb.queue().scheduleCallback(0, "kv.tick", [this] { tickB(); });
    }
};

TEST(ProfilerParallel, StatsPublishedWithoutProfiling)
{
    // Satellite contract: executor counters surface through the
    // StatRegistry with profiling disabled (and in =OFF builds).
    prof::setEnabled(false);
    TwoPartitionWorld world;
    world.ex.registerStats(world.pa.stats());
    EXPECT_EQ(world.ex.run(10'000), 10'000u);
    EXPECT_EQ(world.ticksA, 101);
    EXPECT_EQ(world.ticksB, 101);

    sim::StatBase *windows = world.pa.stats().find("executor.windows");
    sim::StatBase *spills =
        world.pa.stats().find("executor.mailboxSpills");
    sim::StatBase *crossed =
        world.pa.stats().find("executor.crossDelivered");
    ASSERT_NE(windows, nullptr);
    ASSERT_NE(spills, nullptr);
    ASSERT_NE(crossed, nullptr);
    EXPECT_EQ(windows->sampleValue(),
              static_cast<double>(world.ex.windowsRun()));
    EXPECT_GE(world.ex.windowsRun(), 5u);
    EXPECT_EQ(spills->sampleValue(),
              static_cast<double>(world.ex.mailboxSpills()));
    EXPECT_EQ(crossed->sampleValue(),
              static_cast<double>(world.ex.crossEventsDelivered()));

    // Unprofiled runs must not pay for worker timing: the profile
    // rows exist (sized at startWorkers) but stay zero.
    for (const sim::WorkerProfile &w : world.ex.workerProfiles()) {
        EXPECT_EQ(w.busyNs, 0u);
        EXPECT_EQ(w.idleNs, 0u);
        EXPECT_EQ(w.barrierNs, 0u);
    }
}

TEST(ProfilerParallel, ThreadLocalMergeAcrossWorkers)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "profiler compiled out";
    ProfilingOn guard;
    TwoPartitionWorld world;
    prof::Snapshot before = prof::capture();
    EXPECT_EQ(world.ex.run(10'000), 10'000u);
    prof::Snapshot delta = prof::since(before);

    // Partition B ran on the worker thread; its events landed in that
    // thread's block and capture() must see them merged with the
    // coordinator's. Both partitions fired 101 tagged events.
    EXPECT_GE(delta.count[static_cast<std::size_t>(prof::Cat::fpcExec)],
              101u);
    EXPECT_GE(delta.count[static_cast<std::size_t>(prof::Cat::app)],
              101u);

    // Worker timing was live: every effective thread reports busy
    // time, and only the coordinator reports barrier waits.
    std::vector<sim::WorkerProfile> workers = world.ex.workerProfiles();
    ASSERT_EQ(workers.size(), world.ex.effectiveThreads());
    ASSERT_EQ(workers.size(), 2u);
    EXPECT_GT(workers[0].busyNs, 0u);
    EXPECT_GT(workers[1].busyNs, 0u);
    EXPECT_EQ(workers[0].idleNs, 0u);
    EXPECT_EQ(workers[1].barrierNs, 0u);

    obs::ProfileReport report = obs::makeProfileReport(
        delta, 0.001, static_cast<unsigned>(world.ex.effectiveThreads()));
    obs::attachWorkerProfiles(report, {}, workers);
    EXPECT_EQ(report.workers.size(), 2u);
    EXPECT_GT(report.occupancyPct, 0.0);
}

TEST(ProfilerParallel, SnapshotDeltaIsolatesConsecutiveRuns)
{
    if (!prof::compiledIn)
        GTEST_SKIP() << "profiler compiled out";
    ProfilingOn guard;
    TwoPartitionWorld world;
    world.ex.run(10'000);
    prof::Snapshot mid = prof::capture();
    world.ex.run(20'000);
    prof::Snapshot delta = prof::since(mid);
    // Only the second run's events (101 more per partition, the tick
    // at 10'000 having fired in run one's closing window edge or this
    // one — allow the off-by-one) are in the delta.
    std::size_t fpc = static_cast<std::size_t>(prof::Cat::fpcExec);
    EXPECT_GE(delta.count[fpc], 99u);
    EXPECT_LE(delta.count[fpc], 110u);
}

} // namespace
