/**
 * @file
 * Shared test harness.
 *
 * Re-exports the two-node testbed worlds (apps/testbed.hh — benchmarks
 * and examples build the same ones) and adds the helpers the test
 * suite kept reinventing privately:
 *
 *  - caller-located checks: fixture helpers assert on behalf of their
 *    caller, so failures must point at the *test* line, not the
 *    helper. Pass F4T_TEST_HERE into the helper and report through
 *    expectTrue/expectEq, or use the F4T_EXPECT / F4T_EXPECT_EQ
 *    macros directly;
 *  - ScopedRng: a fixed-seed sim::Random that, if the test ends up
 *    failing, prints its seed so the failure is reproducible even
 *    when someone later randomizes it;
 *  - runFor / settle: microsecond-denominated simulation advance.
 */

#ifndef F4T_TESTS_HARNESS_HH
#define F4T_TESTS_HARNESS_HH

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "apps/testbed.hh"
#include "sim/random.hh"

namespace f4t::test
{
using namespace f4t::testbed;

/** Advance @p sim by @p us microseconds of simulated time. */
inline void
runFor(sim::Simulation &sim, double us)
{
    sim.runFor(sim::microsecondsToTicks(us));
}

/** A call site captured in the test body (see file comment). */
struct SourceLoc
{
    const char *file;
    int line;
};

#define F4T_TEST_HERE (::f4t::test::SourceLoc{__FILE__, __LINE__})

inline void
expectTrue(bool ok, const char *what, SourceLoc loc)
{
    if (!ok)
        ADD_FAILURE_AT(loc.file, loc.line) << "expected: " << what;
}

template <class A, class B>
void
expectEq(const A &actual, const B &expected, const char *actual_expr,
         const char *expected_expr, SourceLoc loc)
{
    if (!(actual == expected)) {
        std::ostringstream oss;
        oss << "expected " << actual_expr << " == " << expected_expr
            << "\n  actual: " << actual << "\n  expected: " << expected;
        ADD_FAILURE_AT(loc.file, loc.line) << oss.str();
    }
}

#define F4T_EXPECT(cond) \
    ::f4t::test::expectTrue((cond), #cond, F4T_TEST_HERE)
#define F4T_EXPECT_EQ(actual, expected) \
    ::f4t::test::expectEq((actual), (expected), #actual, #expected, \
                          F4T_TEST_HERE)

/**
 * Fixed-seed RNG whose seed is echoed when the owning test fails, so
 * a red run always carries its reproduction recipe.
 */
class ScopedRng : public sim::Random
{
  public:
    explicit ScopedRng(std::uint64_t seed) : sim::Random(seed), seed_(seed)
    {}

    ~ScopedRng()
    {
        if (::testing::Test::HasFailure()) {
            std::printf("[ ScopedRng] test used seed %llu\n",
                        static_cast<unsigned long long>(seed_));
        }
    }

    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

} // namespace f4t::test

#endif // F4T_TESTS_HARNESS_HH
