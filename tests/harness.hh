/**
 * @file
 * Test alias for the shared two-node testbed builders, which live in
 * apps/testbed.hh so benchmarks and examples use the same worlds.
 */

#ifndef F4T_TESTS_HARNESS_HH
#define F4T_TESTS_HARNESS_HH

#include "apps/testbed.hh"

namespace f4t::test
{
using namespace f4t::testbed;
} // namespace f4t::test

#endif // F4T_TESTS_HARNESS_HH
