/**
 * @file
 * Statistical and determinism tests for the open-loop load
 * generators (src/load/generators.hh) and the flow-trace format
 * (src/load/trace.hh).
 *
 * The statistical tests check sample moments against the analytic
 * values the specs advertise, with tolerance bands wide enough
 * (several standard errors) that a correct implementation passes for
 * every seed, while an off-by-a-constant bug (wrong rate unit, wrong
 * sigma convention, missing truncation) lands far outside the band.
 * The determinism tests pin the substream contract: a sequence is a
 * pure function of (seed, stream id, draw index).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "load/generators.hh"
#include "load/trace.hh"

namespace f4t::load
{
namespace
{

struct Moments
{
    double mean = 0.0;
    double variance = 0.0;
};

template <typename Draw>
Moments
sampleMoments(Draw &&draw, std::size_t n)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double x = static_cast<double>(draw());
        sum += x;
        sum_sq += x * x;
    }
    double mean = sum / static_cast<double>(n);
    double variance = sum_sq / static_cast<double>(n) - mean * mean;
    return {mean, variance};
}

TEST(LoadGenArrivals, FixedPeriodIsExact)
{
    auto spec = ArrivalSpec::fixedEvery(sim::microsecondsToTicks(7));
    ArrivalProcess process(spec, substreamSeed(42, 0));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(process.nextGap(), sim::microsecondsToTicks(7));
    EXPECT_DOUBLE_EQ(spec.meanGapTicks(),
                     static_cast<double>(sim::microsecondsToTicks(7)));
}

TEST(LoadGenArrivals, PoissonMatchesAnalyticMeanAndVariance)
{
    constexpr double rate = 250'000.0; // per second
    auto spec = ArrivalSpec::poisson(rate);
    double mean_ticks = spec.meanGapTicks();
    EXPECT_NEAR(mean_ticks, sim::ticksPerSecond / rate, 1.0);

    ArrivalProcess process(spec, substreamSeed(7, 3));
    constexpr std::size_t n = 100'000;
    Moments m = sampleMoments([&] { return process.nextGap(); }, n);

    // Exponential: sd of the sample mean is mean/sqrt(n) ~ 0.32%;
    // the sample variance concentrates at mean^2 with ~0.9% rel sd.
    EXPECT_NEAR(m.mean, mean_ticks, 0.02 * mean_ticks);
    EXPECT_NEAR(m.variance, mean_ticks * mean_ticks,
                0.06 * mean_ticks * mean_ticks);
}

TEST(LoadGenArrivals, LogNormalGapMatchesAnalyticMean)
{
    constexpr double median_us = 12.0;
    constexpr double sigma = 0.6;
    auto spec = ArrivalSpec::logNormalGap(median_us, sigma);

    // Log-normal mean = median * exp(sigma^2 / 2).
    double expected =
        median_us * std::exp(sigma * sigma / 2.0) *
        static_cast<double>(sim::microsecondsToTicks(1));
    EXPECT_NEAR(spec.meanGapTicks(), expected, 1e-6 * expected);

    ArrivalProcess process(spec, substreamSeed(11, 5));
    constexpr std::size_t n = 200'000;
    Moments m = sampleMoments([&] { return process.nextGap(); }, n);
    EXPECT_NEAR(m.mean, expected, 0.03 * expected);
}

TEST(LoadGenArrivals, StochasticGapsAlwaysAdvanceTime)
{
    ArrivalProcess process(ArrivalSpec::poisson(1e9), substreamSeed(1, 1));
    for (int i = 0; i < 10'000; ++i)
        EXPECT_GE(process.nextGap(), 1u);
}

TEST(LoadGenSizes, FixedSizeIsExact)
{
    SizeSampler sampler(SizeSpec::fixedSize(4096), substreamSeed(2, 0));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sampler.next(), 4096u);
    EXPECT_DOUBLE_EQ(SizeSpec::fixedSize(4096).meanBytes(), 4096.0);
}

TEST(LoadGenSizes, BoundedParetoMatchesAnalyticMeanWithinBounds)
{
    auto spec = SizeSpec::boundedPareto(1.3, 256, 65536);
    SizeSampler sampler(spec, substreamSeed(3, 9));

    constexpr std::size_t n = 200'000;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t v = sampler.next();
        ASSERT_GE(v, 256u);
        ASSERT_LE(v, 65536u);
        sum += v;
    }
    double mean = sum / static_cast<double>(n);
    // alpha = 1.3 is heavy-tailed; truncation keeps the sample mean
    // concentrated, but leave a generous band.
    EXPECT_NEAR(mean, spec.meanBytes(), 0.05 * spec.meanBytes());
}

TEST(LoadGenSizes, LogNormalSizeMatchesAnalyticMeanWithinBounds)
{
    // Clamp bounds far in the tails so the unclamped analytic mean
    // applies (the header documents this convention).
    auto spec = SizeSpec::logNormalSize(1024.0, 0.5, 16, 1 << 20);
    SizeSampler sampler(spec, substreamSeed(4, 2));

    double expected = 1024.0 * std::exp(0.5 * 0.5 / 2.0);
    EXPECT_NEAR(spec.meanBytes(), expected, 1e-6 * expected);

    constexpr std::size_t n = 200'000;
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t v = sampler.next();
        ASSERT_GE(v, 16u);
        ASSERT_LE(v, 1u << 20);
        sum += v;
    }
    EXPECT_NEAR(sum / static_cast<double>(n), expected, 0.03 * expected);
}

TEST(LoadGenDeterminism, SameSeedReproducesBitExactSequences)
{
    auto arrivals = ArrivalSpec::poisson(100'000.0);
    ArrivalProcess a(arrivals, substreamSeed(99, 4));
    ArrivalProcess b(arrivals, substreamSeed(99, 4));
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextGap(), b.nextGap()) << "draw " << i;

    auto sizes = SizeSpec::boundedPareto(1.3, 64, 8192);
    SizeSampler sa(sizes, substreamSeed(99, 5));
    SizeSampler sb(sizes, substreamSeed(99, 5));
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(sa.next(), sb.next()) << "draw " << i;
}

TEST(LoadGenDeterminism, InterleavingOtherStreamsDoesNotPerturbDraws)
{
    // The substream contract: stream 6's sequence is the same whether
    // or not draws from other streams happen in between.
    auto spec = ArrivalSpec::poisson(50'000.0);
    ArrivalProcess alone(spec, substreamSeed(123, 6));
    std::vector<sim::Tick> expected;
    for (int i = 0; i < 500; ++i)
        expected.push_back(alone.nextGap());

    ArrivalProcess six(spec, substreamSeed(123, 6));
    ArrivalProcess noise_a(spec, substreamSeed(123, 7));
    SizeSampler noise_b(SizeSpec::boundedPareto(1.3, 64, 8192),
                        substreamSeed(123, 8));
    for (int i = 0; i < 500; ++i) {
        noise_a.nextGap();
        noise_b.next();
        ASSERT_EQ(six.nextGap(), expected[static_cast<std::size_t>(i)])
            << "draw " << i;
        noise_a.nextGap();
    }
}

TEST(LoadGenDeterminism, SubstreamSeedsAreDistinctAcrossNearbyIds)
{
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t id = 0; id < 4096; ++id)
        seeds.push_back(substreamSeed(1, id));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end())
        << "substreamSeed collided on nearby stream ids";

    // Different scenario seeds must decorrelate the same stream id.
    EXPECT_NE(substreamSeed(1, 0), substreamSeed(2, 0));
}

TEST(LoadTrace, WriterReaderRoundTripPreservesRecords)
{
    std::vector<TraceRecord> records = {
        {1'000'000, 0, 2, apps::KvOp::get, 2048},
        {1'500'000, 1, 0, apps::KvOp::set, 512},
        {1'500'000, 1, 1, apps::KvOp::get, 64},
        {9'999'999'999ULL, 3, 7, apps::KvOp::set, 65536},
    };

    std::string path = ::testing::TempDir() + "/f4t_trace_roundtrip.flows";
    TraceWriter writer;
    ASSERT_TRUE(writer.open(path, "roundtrip", 0xF47ULL));
    for (const auto &r : records)
        writer.append(r);
    ASSERT_TRUE(writer.close());
    EXPECT_EQ(writer.recordsWritten(), records.size());

    std::string error;
    auto parsed = readTrace(path, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->scenario, "roundtrip");
    EXPECT_EQ(parsed->seed, 0xF47ULL);
    ASSERT_EQ(parsed->records.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(parsed->records[i], records[i]) << "record " << i;
    EXPECT_EQ(traceFingerprint(parsed->records), traceFingerprint(records));
    std::remove(path.c_str());
}

TEST(LoadTrace, FingerprintIsOrderSensitive)
{
    std::vector<TraceRecord> a = {
        {100, 0, 0, apps::KvOp::get, 64},
        {200, 0, 1, apps::KvOp::set, 128},
    };
    std::vector<TraceRecord> b = {a[1], a[0]};
    EXPECT_NE(traceFingerprint(a), traceFingerprint(b));
    EXPECT_NE(traceFingerprint(a), traceFingerprint({}));
}

TEST(LoadTrace, MalformedInputIsRejectedWithError)
{
    std::string path = ::testing::TempDir() + "/f4t_trace_malformed.flows";
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# f4t-flows v1 scenario=bad seed=1\n", f);
    std::fputs("12345 0 0 FROB 2048\n", f); // unknown op
    std::fclose(f);

    std::string error;
    auto parsed = readTrace(path, &error);
    EXPECT_FALSE(parsed.has_value());
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());

    error.clear();
    auto missing = readTrace(path + ".does-not-exist", &error);
    EXPECT_FALSE(missing.has_value());
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace f4t::load
