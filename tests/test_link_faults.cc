/**
 * @file
 * Focused tests for the link fault injector (net::LinkDirection):
 * deterministic scheduled drops (the Fig. 14 loss schedule), seed
 * reproducibility (identical seeds must drop byte-identical packets —
 * the property the differential fuzzer leans on), duplicate
 * accounting, reorder-delay bounds, and per-direction fault models.
 */

#include <gtest/gtest.h>

#include <vector>

#include "harness.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"

namespace f4t::net
{
namespace
{

struct CollectingSink : PacketSink
{
    std::vector<Packet> packets;
    std::vector<sim::Tick> arrivals;
    sim::Simulation *sim = nullptr;

    void
    receivePacket(Packet &&pkt) override
    {
        packets.push_back(std::move(pkt));
        if (sim != nullptr)
            arrivals.push_back(sim->now());
    }
};

Packet
taggedPacket(std::uint32_t tag)
{
    TcpHeader tcp;
    tcp.seq = tag; // identifies the packet after delivery
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(tag + i);
    return Packet::makeTcp(MacAddress{}, MacAddress{}, Ipv4Address{},
                           Ipv4Address{}, tcp, std::move(payload));
}

/** Send @p n tagged packets spaced 10 us apart; return delivered tags. */
std::vector<std::uint32_t>
runTaggedStream(const FaultModel &faults, int n,
                std::vector<sim::Tick> *arrivals = nullptr,
                std::vector<sim::Tick> *send_times = nullptr)
{
    sim::Simulation sim;
    Link link(sim, "link", 100e9, 0, faults);
    CollectingSink a, b;
    b.sim = &sim;
    link.connect(a, b);

    for (int i = 0; i < n; ++i) {
        sim.queue().scheduleCallback(
            sim::microsecondsToTicks(10.0 * (i + 1)), "test.send",
            [&link, &sim, i, send_times] {
                if (send_times != nullptr)
                    send_times->push_back(sim.now());
                link.aToB().send(taggedPacket(static_cast<std::uint32_t>(i)));
            });
    }
    sim.run();

    std::vector<std::uint32_t> tags;
    for (const Packet &pkt : b.packets)
        tags.push_back(pkt.tcp().seq);
    if (arrivals != nullptr)
        *arrivals = b.arrivals;
    return tags;
}

TEST(LinkFaults, DropAtTicksHitsExactlyTheScheduledInstants)
{
    // Packets at 10,20,...,100 us; schedule drops just before the
    // sends at 30 us and 70 us: those two packets (tags 2 and 6) and
    // only those must vanish.
    FaultModel faults;
    faults.dropAtTicks = {sim::microsecondsToTicks(29),
                          sim::microsecondsToTicks(69)};
    std::vector<std::uint32_t> tags = runTaggedStream(faults, 10);

    std::vector<std::uint32_t> expect{0, 1, 3, 4, 5, 7, 8, 9};
    EXPECT_EQ(tags, expect);
}

TEST(LinkFaults, DropAtTicksIsDeterministicAcrossRuns)
{
    FaultModel faults;
    faults.dropProbability = 0.2; // probabilistic drops on top
    faults.seed = 99;
    faults.dropAtTicks = {sim::microsecondsToTicks(45)};

    std::vector<std::uint32_t> first = runTaggedStream(faults, 50);
    std::vector<std::uint32_t> second = runTaggedStream(faults, 50);
    EXPECT_EQ(first, second);
    EXPECT_LT(first.size(), 50u); // something actually dropped
}

TEST(LinkFaults, IdenticalSeedsDropByteIdenticalPackets)
{
    FaultModel faults;
    faults.dropProbability = 0.25;
    faults.seed = 1234;

    std::vector<std::uint32_t> tags_a = runTaggedStream(faults, 200);
    std::vector<std::uint32_t> tags_b = runTaggedStream(faults, 200);
    ASSERT_EQ(tags_a, tags_b); // same packets survive...

    // ... and a different seed picks a different drop pattern.
    faults.seed = 1235;
    std::vector<std::uint32_t> tags_c = runTaggedStream(faults, 200);
    EXPECT_NE(tags_a, tags_c);
}

TEST(LinkFaults, DuplicateCountsAreConsistentAndDeterministic)
{
    FaultModel faults;
    faults.duplicateProbability = 0.3;
    faults.seed = 7;

    constexpr int n = 500;
    std::vector<std::uint32_t> tags = runTaggedStream(faults, n);
    ASSERT_GT(tags.size(), static_cast<std::size_t>(n)); // extras exist

    // Every duplicate is byte-identical to an original: per tag the
    // count is 1 or 2, never 0 or 3 (single duplication per packet).
    std::vector<int> copies(n, 0);
    for (std::uint32_t tag : tags)
        ++copies[tag];
    std::size_t duplicated = 0;
    for (int c : copies) {
        ASSERT_GE(c, 1);
        ASSERT_LE(c, 2);
        if (c == 2)
            ++duplicated;
    }
    EXPECT_EQ(tags.size(), static_cast<std::size_t>(n) + duplicated);
    // Rough rate check: ~30 % +- 6 points.
    EXPECT_NEAR(static_cast<double>(duplicated) / n, 0.3, 0.06);

    // Determinism: the same seed duplicates the same packets.
    EXPECT_EQ(runTaggedStream(faults, n), tags);
}

TEST(LinkFaults, ReorderDelayStaysWithinConfiguredBound)
{
    FaultModel faults;
    faults.reorderProbability = 1.0; // every packet delayed
    faults.reorderMaxDelay = sim::microsecondsToTicks(5);
    faults.seed = 21;

    std::vector<sim::Tick> arrivals;
    std::vector<sim::Tick> send_times;
    std::vector<std::uint32_t> tags =
        runTaggedStream(faults, 40, &arrivals, &send_times);
    ASSERT_EQ(tags.size(), 40u);
    ASSERT_EQ(send_times.size(), 40u);

    // Packets are spaced 10 us apart and delays cap at 5 us, so
    // delivery order == send order and each extra delay is in
    // [0, reorderMaxDelay] beyond the serialization time.
    Packet probe = taggedPacket(0);
    sim::Tick tx_time =
        sim::secondsToTicks(static_cast<double>(probe.wireBytes()) * 8.0 /
                            100e9);
    for (std::size_t i = 0; i < tags.size(); ++i) {
        ASSERT_EQ(tags[i], i);
        sim::Tick extra = arrivals[i] - send_times[i] - tx_time;
        EXPECT_LE(extra, faults.reorderMaxDelay)
            << "packet " << i << " delayed " << extra << " ticks";
    }
}

TEST(LinkFaults, PerDirectionModelsAreIndependent)
{
    // A->B drops everything, B->A is clean: the asymmetric constructor
    // must keep the two directions' models (and RNG streams) apart.
    sim::Simulation sim;
    FaultModel lossy;
    lossy.dropProbability = 1.0;
    lossy.seed = 3;
    FaultModel clean;
    clean.seed = 4;
    Link link(sim, "link", 100e9, 0, lossy, clean);
    CollectingSink a, b;
    link.connect(a, b);

    for (std::uint32_t i = 0; i < 20; ++i) {
        link.aToB().send(taggedPacket(i));
        link.bToA().send(taggedPacket(i));
    }
    sim.run();

    EXPECT_EQ(b.packets.size(), 0u);
    EXPECT_EQ(a.packets.size(), 20u);
    EXPECT_EQ(link.aToB().packetsDropped(), 20u);
    EXPECT_EQ(link.bToA().packetsDropped(), 0u);
}

TEST(LinkFaults, SymmetricConstructorDerivesDistinctReverseStream)
{
    // The legacy single-model constructor must not mirror drops: the
    // reverse direction runs the same rates on a derived seed.
    sim::Simulation sim;
    FaultModel faults;
    faults.dropProbability = 0.5;
    faults.seed = 42;
    Link link(sim, "link", 100e9, 0, faults);
    CollectingSink a, b;
    link.connect(a, b);

    for (std::uint32_t i = 0; i < 200; ++i) {
        link.aToB().send(taggedPacket(i));
        link.bToA().send(taggedPacket(i));
    }
    sim.run();

    auto tags = [](const CollectingSink &sink) {
        std::vector<std::uint32_t> out;
        for (const Packet &pkt : sink.packets)
            out.push_back(pkt.tcp().seq);
        return out;
    };
    EXPECT_NE(tags(a), tags(b)); // different survivors per direction
}

} // namespace
} // namespace f4t::net
