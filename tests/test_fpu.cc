/**
 * @file
 * Unit tests for the FPU program: one stateless pass over a merged
 * TCB must implement the complete TCP state machine — handshakes,
 * send decisions under congestion/flow control, ACK generation,
 * retransmission, probing, FIN sequences, and host notifications.
 */

#include <gtest/gtest.h>

#include "tcp/fpu_program.hh"

namespace f4t::tcp
{
namespace
{

struct FpuFixture : ::testing::Test
{
    NewRenoPolicy cc;
    FpuProgram program{cc};
    FpuActions actions;

    Tcb
    freshFlow(FlowId flow = 7, bool passive = false)
    {
        Tcb tcb;
        tcb.flowId = flow;
        tcb.passiveOpen = passive;
        tcb.mss = 1460;
        tcb.iss = FpuProgram::initialSequence(flow);
        tcb.sndUna = tcb.iss;
        tcb.sndUnaProcessed = tcb.iss;
        tcb.sndNxt = tcb.iss + 1;
        tcb.req = tcb.iss + 1;
        tcb.lastAckNotified = tcb.iss + 1;
        return tcb;
    }

    Tcb
    establishedFlow(FlowId flow = 7)
    {
        Tcb tcb = freshFlow(flow);
        tcb.state = ConnState::established;
        tcb.sndUna = tcb.iss + 1;
        tcb.sndUnaProcessed = tcb.sndUna;
        tcb.lastAckNotified = tcb.sndUna;
        tcb.irs = 99000;
        tcb.rcvNxt = 99001;
        tcb.userRead = 99001;
        tcb.lastAckSent = 99001;
        tcb.lastRcvNotified = 99001;
        tcb.lastWndAdvertised = 99001 + tcb.receiveWindow();
        tcb.sndWnd = 1 << 20;
        cc.onInit(tcb);
        return tcb;
    }

    void
    run(Tcb &tcb, std::uint64_t now_us = 1000)
    {
        actions.clear();
        program.process(tcb, now_us, actions);
    }
};

TEST_F(FpuFixture, ActiveOpenEmitsSynWithMss)
{
    Tcb tcb = freshFlow();
    tcb.pendingFlags = EventFlags::openRequest;
    run(tcb);

    EXPECT_EQ(tcb.state, ConnState::synSent);
    ASSERT_EQ(actions.controls.size(), 1u);
    const ControlRequest &syn = actions.controls[0];
    EXPECT_EQ(syn.flags, net::TcpFlags::syn);
    EXPECT_EQ(syn.seq, tcb.iss);
    EXPECT_EQ(syn.mssOption, 1460);
    // Retransmission protection for the SYN.
    ASSERT_FALSE(actions.timers.empty());
    EXPECT_EQ(actions.timers[0].kind, TimeoutKind::retransmit);
    EXPECT_GT(actions.timers[0].deadlineUs, 1000u);
}

TEST_F(FpuFixture, SynAckCompletesActiveOpen)
{
    Tcb tcb = freshFlow();
    tcb.pendingFlags = EventFlags::openRequest;
    run(tcb);

    // Merge applied: peer ISN and cumulative ACK of our SYN.
    tcb.pendingFlags = EventFlags::synAckSeen | EventFlags::ackSeen;
    tcb.irs = 5000;
    tcb.rcvNxt = 5001;
    tcb.userRead = 5001;
    tcb.sndUna = tcb.iss + 1;
    tcb.sndWnd = 65536;
    run(tcb);

    EXPECT_EQ(tcb.state, ConnState::established);
    // Final handshake ACK.
    ASSERT_FALSE(actions.controls.empty());
    EXPECT_EQ(actions.controls[0].flags, net::TcpFlags::ack);
    EXPECT_EQ(actions.controls[0].ack, 5001u);
    // Host learns the connection and its stream base.
    ASSERT_FALSE(actions.notifications.empty());
    EXPECT_EQ(actions.notifications[0].kind,
              HostNotification::Kind::connected);
    EXPECT_EQ(actions.notifications[0].pointer, tcb.iss + 1);
}

TEST_F(FpuFixture, PassiveOpenSendsSynAckThenEstablishes)
{
    Tcb tcb = freshFlow(9, /*passive=*/true);
    tcb.pendingFlags = EventFlags::synSeen;
    tcb.irs = 7000;
    tcb.rcvNxt = 7001;
    tcb.userRead = 7001;
    run(tcb);

    EXPECT_EQ(tcb.state, ConnState::synRcvd);
    ASSERT_FALSE(actions.controls.empty());
    EXPECT_EQ(actions.controls[0].flags,
              net::TcpFlags::syn | net::TcpFlags::ack);
    EXPECT_EQ(actions.controls[0].ack, 7001u);

    // The handshake ACK arrives (merge advanced sndUna past our SYN).
    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.iss + 1;
    run(tcb);
    EXPECT_EQ(tcb.state, ConnState::established);
    ASSERT_FALSE(actions.notifications.empty());
    EXPECT_EQ(actions.notifications[0].kind,
              HostNotification::Kind::connected);
}

TEST_F(FpuFixture, SendsDataWithinWindow)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 5000; // user queued 5000 bytes
    run(tcb);

    ASSERT_EQ(actions.segments.size(), 1u);
    const SegmentRequest &seg = actions.segments[0];
    EXPECT_EQ(seg.seq, tcb.iss + 1);
    EXPECT_EQ(seg.length, 5000u);
    EXPECT_EQ(seg.ack, tcb.rcvNxt);
    EXPECT_EQ(tcb.sndNxt, tcb.iss + 1 + 5000);
    // RTT sampling started for this transmission.
    EXPECT_TRUE(tcb.rttSampling);
    EXPECT_EQ(tcb.rttSampleSeq, tcb.sndNxt);
}

TEST_F(FpuFixture, CongestionWindowLimitsTransmission)
{
    Tcb tcb = establishedFlow();
    tcb.cwnd = 3000;
    tcb.req = tcb.sndNxt + 50000;
    run(tcb);

    ASSERT_EQ(actions.segments.size(), 1u);
    EXPECT_EQ(actions.segments[0].length, 3000u);
}

TEST_F(FpuFixture, PeerWindowLimitsTransmission)
{
    Tcb tcb = establishedFlow();
    tcb.sndWnd = 2000;
    tcb.req = tcb.sndNxt + 50000;
    run(tcb);
    ASSERT_EQ(actions.segments.size(), 1u);
    EXPECT_EQ(actions.segments[0].length, 2000u);
}

TEST_F(FpuFixture, ZeroWindowArmsProbeTimer)
{
    Tcb tcb = establishedFlow();
    tcb.sndWnd = 0;
    tcb.req = tcb.sndNxt + 1000;
    run(tcb);

    EXPECT_TRUE(actions.segments.empty());
    bool probe_armed = false;
    for (const TimerRequest &timer : actions.timers) {
        if (timer.kind == TimeoutKind::probe && timer.deadlineUs > 0)
            probe_armed = true;
    }
    EXPECT_TRUE(probe_armed);

    // The probe timeout emits a window probe.
    tcb.pendingFlags = EventFlags::probeTimeout;
    run(tcb, 10'000);
    bool probed = false;
    for (const ControlRequest &ctrl : actions.controls)
        probed = probed || ctrl.windowProbe;
    EXPECT_TRUE(probed);
}

TEST_F(FpuFixture, AckAdvancesAndNotifiesHost)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 5000;
    run(tcb);

    // Peer cumulatively ACKs 3000 bytes (merge wrote sndUna).
    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.iss + 1 + 3000;
    run(tcb, 2000);

    ASSERT_FALSE(actions.notifications.empty());
    EXPECT_EQ(actions.notifications[0].kind, HostNotification::Kind::acked);
    EXPECT_EQ(actions.notifications[0].pointer, tcb.iss + 1 + 3000);
    EXPECT_EQ(tcb.sndUnaProcessed, tcb.sndUna);
    EXPECT_EQ(tcb.dupAcks, 0);
}

TEST_F(FpuFixture, ReceivedDataGeneratesAckAndNotification)
{
    Tcb tcb = establishedFlow();
    // Merge advanced rcvNxt by 2920 in-order bytes.
    tcb.pendingFlags = EventFlags::ackSeen | EventFlags::dataArrived;
    tcb.rcvNxt = 99001 + 2920;
    run(tcb);

    bool acked = false;
    for (const ControlRequest &ctrl : actions.controls) {
        if (ctrl.flags == net::TcpFlags::ack && ctrl.ack == tcb.rcvNxt)
            acked = true;
    }
    EXPECT_TRUE(acked);
    ASSERT_FALSE(actions.notifications.empty());
    EXPECT_EQ(actions.notifications[0].kind,
              HostNotification::Kind::received);
    EXPECT_EQ(actions.notifications[0].pointer, 99001u + 2920u);
    EXPECT_EQ(tcb.lastAckSent, tcb.rcvNxt);
}

TEST_F(FpuFixture, OutOfOrderDataForcesDuplicateAck)
{
    Tcb tcb = establishedFlow();
    // Data arrived but rcvNxt did not advance: hole in the stream.
    tcb.pendingFlags = EventFlags::dataArrived;
    run(tcb);

    ASSERT_FALSE(actions.controls.empty());
    EXPECT_EQ(actions.controls[0].ack, tcb.rcvNxt); // the dup ACK
}

TEST_F(FpuFixture, ThreeDupAcksTriggerFastRetransmit)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 20000;
    run(tcb); // sends, sndNxt advances

    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.dupAcks = 3; // merge added the handler's increments
    run(tcb, 3000);

    ASSERT_EQ(actions.segments.size(), 1u);
    EXPECT_TRUE(actions.segments[0].retransmission);
    EXPECT_EQ(actions.segments[0].seq, tcb.sndUna);
    EXPECT_EQ(actions.segments[0].length, 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::fastRecovery);
    EXPECT_EQ(tcb.recover, tcb.sndNxt);
    EXPECT_EQ(tcb.dupAcksSeen, 3);
    EXPECT_FALSE(tcb.rttSampling); // Karn's rule
}

TEST_F(FpuFixture, RecoveryExitDeflatesToSsthresh)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 20000;
    run(tcb);
    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.dupAcks = 3;
    run(tcb, 3000);
    std::uint32_t ssthresh = tcb.ssthresh;

    // Full ACK past the recovery point.
    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.recover;
    run(tcb, 4000);
    EXPECT_EQ(tcb.ccPhase, CcPhase::congestionAvoidance);
    EXPECT_EQ(tcb.cwnd, ssthresh);
    EXPECT_EQ(tcb.dupAcks, 0);
}

TEST_F(FpuFixture, PartialAckRetransmitsNextHole)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 20000;
    run(tcb);
    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.dupAcks = 3;
    run(tcb, 3000);

    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.sndUna + 1460; // partial: below recover
    run(tcb, 4000);
    EXPECT_EQ(tcb.ccPhase, CcPhase::fastRecovery);
    bool retransmitted = false;
    for (const SegmentRequest &seg : actions.segments) {
        if (seg.retransmission && seg.seq == tcb.sndUna)
            retransmitted = true;
    }
    EXPECT_TRUE(retransmitted);
}

TEST_F(FpuFixture, RtoRetransmitsAndCollapsesWindow)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 8000;
    run(tcb);

    tcb.pendingFlags = EventFlags::rtxTimeout;
    run(tcb, 250'000);

    ASSERT_FALSE(actions.segments.empty());
    EXPECT_TRUE(actions.segments[0].retransmission);
    EXPECT_EQ(actions.segments[0].seq, tcb.sndUna);
    EXPECT_EQ(tcb.cwnd, 1460u);
    EXPECT_EQ(tcb.ccPhase, CcPhase::slowStart);
    EXPECT_EQ(tcb.rtxBackoff, 1u);
    // Timer re-armed with backoff.
    bool rearmed = false;
    for (const TimerRequest &timer : actions.timers) {
        if (timer.kind == TimeoutKind::retransmit && timer.deadlineUs > 0)
            rearmed = true;
    }
    EXPECT_TRUE(rearmed);
}

TEST_F(FpuFixture, StaleRtoWithNothingInFlightIsIgnored)
{
    Tcb tcb = establishedFlow();
    tcb.pendingFlags = EventFlags::rtxTimeout;
    run(tcb);
    EXPECT_TRUE(actions.segments.empty());
    EXPECT_EQ(tcb.ccPhase, CcPhase::slowStart);
    EXPECT_GT(tcb.cwnd, 1460u); // untouched
}

TEST_F(FpuFixture, CloseDrainsDataThenSendsFin)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 3000;
    tcb.pendingFlags = EventFlags::closeRequest;
    run(tcb);

    // Data first; FIN follows in the same pass since the window allows
    // the full drain.
    ASSERT_EQ(actions.segments.size(), 1u);
    bool fin_sent = false;
    for (const ControlRequest &ctrl : actions.controls) {
        if (ctrl.flags & net::TcpFlags::fin)
            fin_sent = true;
    }
    EXPECT_TRUE(fin_sent);
    EXPECT_EQ(tcb.state, ConnState::finWait1);
    EXPECT_TRUE(tcb.finSent);
    EXPECT_EQ(tcb.finSeq, tcb.iss + 1 + 3000);
}

TEST_F(FpuFixture, FullCloseSequenceReachesClosed)
{
    // Our side closes; peer ACKs the FIN, then sends its own FIN.
    Tcb tcb = establishedFlow();
    tcb.pendingFlags = EventFlags::closeRequest;
    run(tcb);
    EXPECT_EQ(tcb.state, ConnState::finWait1);

    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.finSeq + 1;
    run(tcb, 2000);
    EXPECT_EQ(tcb.state, ConnState::finWait2);

    tcb.pendingFlags = EventFlags::finSeen | EventFlags::ackSeen;
    tcb.rcvNxt += 1; // peer FIN consumed one sequence number
    run(tcb, 3000);
    EXPECT_EQ(tcb.state, ConnState::timeWait);
    bool peer_closed = false;
    for (const HostNotification &note : actions.notifications) {
        if (note.kind == HostNotification::Kind::peerClosed)
            peer_closed = true;
    }
    EXPECT_TRUE(peer_closed);

    tcb.pendingFlags = EventFlags::timeWaitTimeout;
    run(tcb, 4000);
    EXPECT_EQ(tcb.state, ConnState::closed);
    EXPECT_TRUE(actions.releaseFlow);
}

TEST_F(FpuFixture, PassiveCloseSequence)
{
    Tcb tcb = establishedFlow();
    tcb.pendingFlags = EventFlags::finSeen | EventFlags::ackSeen;
    tcb.rcvNxt += 1;
    run(tcb);
    EXPECT_EQ(tcb.state, ConnState::closeWait);

    tcb.pendingFlags = EventFlags::closeRequest;
    run(tcb, 2000);
    EXPECT_EQ(tcb.state, ConnState::lastAck);

    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.finSeq + 1;
    run(tcb, 3000);
    EXPECT_EQ(tcb.state, ConnState::closed);
    EXPECT_TRUE(actions.releaseFlow);
    bool closed = false;
    for (const HostNotification &note : actions.notifications) {
        if (note.kind == HostNotification::Kind::closed)
            closed = true;
    }
    EXPECT_TRUE(closed);
}

TEST_F(FpuFixture, ResetAbortsImmediately)
{
    Tcb tcb = establishedFlow();
    tcb.pendingFlags = EventFlags::rstSeen;
    run(tcb);
    EXPECT_EQ(tcb.state, ConnState::closed);
    EXPECT_TRUE(actions.releaseFlow);
    ASSERT_FALSE(actions.notifications.empty());
    EXPECT_EQ(actions.notifications[0].kind, HostNotification::Kind::reset);
}

TEST_F(FpuFixture, RttEstimationFollowsRfc6298)
{
    Tcb tcb = establishedFlow();
    tcb.req = tcb.sndNxt + 1000;
    run(tcb, 1000); // sample starts at 1000 us

    tcb.pendingFlags = EventFlags::ackSeen;
    tcb.sndUna = tcb.sndNxt;
    run(tcb, 11'000); // RTT sample = 10 ms

    EXPECT_EQ(tcb.lastRttUs, 10'000u);
    EXPECT_EQ(tcb.srttUs, 10'000u);
    EXPECT_EQ(tcb.rttvarUs, 5'000u);
    EXPECT_GE(tcb.rtoUs, 10'000u + 4 * 5'000u);
    EXPECT_EQ(tcb.minRttUs, 10'000u);
}

TEST_F(FpuFixture, WindowUpdateAfterRecvOpensWindow)
{
    Tcb tcb = establishedFlow();
    // Buffer nearly full: window below one MSS was advertised.
    tcb.rcvNxt = 99001 + 512 * 1024 - 100;
    tcb.userRead = 99001;
    tcb.lastAckSent = tcb.rcvNxt;
    tcb.lastWndAdvertised = tcb.rcvNxt + tcb.receiveWindow();
    ASSERT_LT(tcb.receiveWindow(), 1460u);

    // Application consumed everything (merge applied userRead).
    tcb.userRead = tcb.rcvNxt;
    run(tcb);

    ASSERT_FALSE(actions.controls.empty());
    EXPECT_EQ(actions.controls[0].flags, net::TcpFlags::ack);
    EXPECT_GT(actions.controls[0].window, 500'000u);
}

TEST_F(FpuFixture, NeedsProcessingPredicateMatchesWork)
{
    Tcb idle = establishedFlow();
    EXPECT_FALSE(FpuProgram::tcbNeedsProcessing(idle));

    Tcb has_data = establishedFlow();
    has_data.req = has_data.sndNxt + 100;
    EXPECT_TRUE(FpuProgram::tcbNeedsProcessing(has_data));

    Tcb has_flag = establishedFlow();
    has_flag.pendingFlags = EventFlags::rtxTimeout;
    EXPECT_TRUE(FpuProgram::tcbNeedsProcessing(has_flag));

    Tcb has_ack = establishedFlow();
    has_ack.sndUna += 100;
    EXPECT_TRUE(FpuProgram::tcbNeedsProcessing(has_ack));

    Tcb needs_ack = establishedFlow();
    needs_ack.rcvNxt += 100;
    EXPECT_TRUE(FpuProgram::tcbNeedsProcessing(needs_ack));

    Tcb window_closed_waiting = establishedFlow();
    window_closed_waiting.sndWnd = 0;
    window_closed_waiting.req = window_closed_waiting.sndNxt + 100;
    // Zero window with data queued: no send possible, but the probe
    // path still needs a pass to arm the timer.
    EXPECT_TRUE(FpuProgram::tcbNeedsProcessing(window_closed_waiting));
}

} // namespace
} // namespace f4t::tcp
