/**
 * @file
 * Flight recorder: ring semantics, per-thread merge, failure-triggered
 * dumps, and the wall-clock watchdog.
 *
 * Suite naming is deliberate: FlightRecorderDeathTest runs first
 * (gtest orders *DeathTest suites ahead of the rest), so the forked
 * children see a process where defaultWatchdogSeconds() has not been
 * memoized yet and the watchdog thread has never been started — a
 * fork would not carry a live thread across. FlightRecorderParallel
 * matches the tsan preset's test filter, putting the lock-free ring's
 * cross-thread paths under the race detector; the timing-sensitive
 * watchdog suites deliberately do not match it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>

#include "sim/flight_recorder.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

using namespace f4t;
using sim::Tick;
namespace fr = sim::fr;

namespace
{

/** Set the watchdog default before anything can memoize it: the
 *  barrier-stall death test relies on a sub-second timeout. */
struct WatchdogEnv
{
    WatchdogEnv() { ::setenv("F4T_WATCHDOG_SECS", "0.25", 1); }
};
WatchdogEnv watchdogEnv;

/** This thread's ring in @p snap, identified by write count. */
const fr::Snapshot::RingCopy *
ringWithTotal(const fr::Snapshot &snap, std::uint64_t total)
{
    for (const auto &ring : snap.rings) {
        if (ring.totalWritten == total)
            return &ring;
    }
    return nullptr;
}

std::string
onlyDumpIn(const std::string &dir)
{
    std::string found;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() == ".f4tfr") {
            EXPECT_TRUE(found.empty())
                << "more than one dump in " << dir;
            found = entry.path().string();
        }
    }
    EXPECT_FALSE(found.empty()) << "no .f4tfr dump in " << dir;
    return found;
}

void
expectTickSorted(const std::vector<fr::TimelineEntry> &timeline)
{
    for (std::size_t i = 1; i < timeline.size(); ++i)
        ASSERT_GE(timeline[i].rec.tick, timeline[i - 1].rec.tick);
}

/** Channel stub: fixed lookahead, no cross traffic. */
struct IdleChannel : sim::CrossChannel
{
    explicit IdleChannel(Tick la) : la_(la) {}
    Tick lookahead() const override { return la_; }
    std::size_t drainInto() override { return 0; }
    bool idle() const override { return true; }
    Tick la_;
};

// --- failure-triggered dumps (must run before watchdog use) -------------

TEST(FlightRecorderDeathTest, CheckFailureDumpRoundTripsThroughDecoder)
{
    char dir[] = "/tmp/f4tfr-crash-XXXXXX";
    ASSERT_NE(::mkdtemp(dir), nullptr);
    ::setenv("F4T_DUMP_DIR", dir, 1);

    // Records made here are inherited by the forked child, so the
    // crash dump must carry them back out through the file.
    fr::setEnabled(true);
    fr::clear();
    std::uint16_t module = fr::internModule("test.fpc0");
    for (std::uint64_t i = 0; i < 32; ++i)
        fr::record(fr::Kind::fpcRxSegment, 1000 + i, module, 0xabcd1234u,
                   i);

    EXPECT_DEATH(f4t_assert(false, "injected forensics failure"),
                 "flight recorder: dumped");

    fr::Snapshot snap;
    std::string reason, error;
    ASSERT_TRUE(fr::readDump(onlyDumpIn(dir), snap, reason, error))
        << error;
    EXPECT_NE(reason.find("injected forensics failure"),
              std::string::npos)
        << reason;

    auto timeline = fr::mergeTimeline(snap);
    ASSERT_GE(timeline.size(), 32u);
    expectTickSorted(timeline);

    // The timeline names the module and the flow.
    bool named = false;
    for (const auto &entry : timeline) {
        std::string line = fr::formatEntry(snap, entry);
        if (line.find("test.fpc0") != std::string::npos &&
            line.find("flow=abcd1234") != std::string::npos) {
            named = true;
            break;
        }
    }
    EXPECT_TRUE(named);

    ::unsetenv("F4T_DUMP_DIR");
    std::filesystem::remove_all(dir);
}

TEST(FlightRecorderDeathTest, ParallelBarrierStallTriggersWatchdogDump)
{
    char dir[] = "/tmp/f4tfr-stall-XXXXXX";
    ASSERT_NE(::mkdtemp(dir), nullptr);
    ::setenv("F4T_DUMP_DIR", dir, 1);
    fr::setEnabled(true);
    fr::clear();

    // The wedge event sleeps far past the 0.25 s watchdog default set
    // at static init: the window barrier never completes, no beat
    // arrives, and the executor's armed watchdog dumps and aborts.
    auto stall = [] {
        sim::Simulation pa, pb;
        sim::ParallelExecutor ex(1);
        ex.addPartition(pa, "a");
        ex.addPartition(pb, "b");
        IdleChannel ch(1'000);
        ex.addChannel(ch);
        for (Tick t = 100; t <= 400; t += 100)
            pa.queue().scheduleCallback(t, "tick", [] {});
        pa.queue().scheduleCallback(500, "wedge", [] {
            std::this_thread::sleep_for(std::chrono::seconds(5));
        });
        ex.run(10'000);
    };
    EXPECT_DEATH(stall(), "flight recorder: dumped");

    fr::Snapshot snap;
    std::string reason, error;
    ASSERT_TRUE(fr::readDump(onlyDumpIn(dir), snap, reason, error))
        << error;
    EXPECT_NE(reason.find("watchdog"), std::string::npos) << reason;

    // The dispatch record lands before the event body runs, so the
    // last kernel record in the timeline is the wedged dispatch.
    auto timeline = fr::mergeTimeline(snap);
    ASSERT_FALSE(timeline.empty());
    expectTickSorted(timeline);
    bool saw_wedge_dispatch = false;
    for (const auto &entry : timeline) {
        if (entry.rec.kind ==
                static_cast<std::uint8_t>(fr::Kind::evDispatch) &&
            entry.rec.tick == 500) {
            saw_wedge_dispatch = true;
        }
    }
    EXPECT_TRUE(saw_wedge_dispatch);

    ::unsetenv("F4T_DUMP_DIR");
    std::filesystem::remove_all(dir);
}

// --- ring semantics -----------------------------------------------------

TEST(FlightRecorder, RecordsAppearInSnapshotInOrder)
{
    fr::setEnabled(true);
    fr::clear();
    std::uint16_t module = fr::internModule("test.ring");
    fr::record(fr::Kind::mark, 10, module, 1, 100, 200);
    fr::record(fr::Kind::linkTx, 20, module, 2, 300);
    fr::record(fr::Kind::switchDrop, 30, module, 3);

    fr::Snapshot snap = fr::snapshot();
    const auto *ring = ringWithTotal(snap, 3);
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->records.size(), 3u);
    EXPECT_EQ(ring->records[0].tick, 10u);
    EXPECT_EQ(ring->records[0].a, 100u);
    EXPECT_EQ(ring->records[0].b, 200u);
    EXPECT_EQ(ring->records[1].kind,
              static_cast<std::uint8_t>(fr::Kind::linkTx));
    EXPECT_EQ(ring->records[2].flow, 3u);
    ASSERT_LT(module, snap.modules.size());
    EXPECT_EQ(snap.modules[module], "test.ring");
}

TEST(FlightRecorder, WrapKeepsLastCapacityRecordsOldestFirst)
{
    fr::setEnabled(true);
    fr::clear();
    const std::uint64_t total = fr::ringCapacity + 123;
    for (std::uint64_t i = 0; i < total; ++i)
        fr::record(fr::Kind::mark, i, 0, 0, i);

    fr::Snapshot snap = fr::snapshot();
    const auto *ring = ringWithTotal(snap, total);
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->records.size(), fr::ringCapacity);
    EXPECT_EQ(ring->records.front().tick, 123u); // oldest survivor
    for (std::size_t i = 0; i < ring->records.size(); ++i)
        ASSERT_EQ(ring->records[i].tick, 123 + i);
}

TEST(FlightRecorder, SnapshotRoundTripsThroughDumpFile)
{
    fr::setEnabled(true);
    fr::clear();
    std::uint16_t module = fr::internModule("test.roundtrip");
    for (std::uint64_t i = 0; i < 100; ++i)
        fr::record(fr::Kind::pcieDma, 7 * i, module, 0x42, i, 2 * i);

    char dir[] = "/tmp/f4tfr-rt-XXXXXX";
    ASSERT_NE(::mkdtemp(dir), nullptr);
    std::string path = std::string(dir) + "/rt.f4tfr";
    ASSERT_TRUE(fr::dumpToFile(path, "round trip"));

    fr::Snapshot snap;
    std::string reason, error;
    ASSERT_TRUE(fr::readDump(path, snap, reason, error)) << error;
    EXPECT_EQ(reason, "round trip");
    const auto *ring = ringWithTotal(snap, 100);
    ASSERT_NE(ring, nullptr);
    ASSERT_EQ(ring->records.size(), 100u);
    for (std::size_t i = 0; i < 100; ++i) {
        ASSERT_EQ(ring->records[i].tick, 7 * i);
        ASSERT_EQ(ring->records[i].a, i);
        ASSERT_EQ(ring->records[i].b, 2 * i);
    }
    ASSERT_LT(module, snap.modules.size());
    EXPECT_EQ(snap.modules[module], "test.roundtrip");
    std::filesystem::remove_all(dir);
}

TEST(FlightRecorder, DisabledRunRecordsNothingAndBehaviorIsIdentical)
{
    // Identical event patterns with the recorder on and off must land
    // on identical simulated end states (the recorder never feeds back
    // into the model), and the disabled run must leave zero records.
    auto drive = [](sim::Simulation &sim) {
        for (Tick t = 100; t <= 1000; t += 100)
            sim.queue().scheduleCallback(t, "tick", [] {});
        sim.run(2'000);
    };

    fr::setEnabled(true);
    fr::clear();
    sim::Simulation enabled_sim;
    drive(enabled_sim);
    fr::Snapshot with = fr::snapshot();
    ASSERT_NE(ringWithTotal(with, 10), nullptr); // 10 dispatches

    fr::setEnabled(false);
    fr::clear();
    sim::Simulation disabled_sim;
    drive(disabled_sim);
    fr::Snapshot without = fr::snapshot();
    fr::setEnabled(true);

    for (const auto &ring : without.rings)
        EXPECT_EQ(ring.totalWritten, 0u);
    EXPECT_EQ(enabled_sim.now(), disabled_sim.now());
    EXPECT_EQ(enabled_sim.queue().eventsProcessed(),
              disabled_sim.queue().eventsProcessed());
}

// --- cross-thread merge (named to run under the tsan preset) ------------

TEST(FlightRecorderParallel, TwoThreadMergeIsTickSorted)
{
    fr::setEnabled(true);
    fr::clear();
    std::uint16_t even = fr::internModule("test.even");
    std::uint16_t odd = fr::internModule("test.odd");

    std::thread a([&] {
        for (std::uint64_t i = 0; i < 1'000; ++i)
            fr::record(fr::Kind::mark, 2 * i, even, 0xe, i);
    });
    std::thread b([&] {
        for (std::uint64_t i = 0; i < 1'000; ++i)
            fr::record(fr::Kind::mark, 2 * i + 1, odd, 0xd, i);
    });
    a.join();
    b.join();

    fr::Snapshot snap = fr::snapshot();
    auto timeline = fr::mergeTimeline(snap);
    std::size_t even_count = 0, odd_count = 0;
    std::uint64_t last = 0;
    for (const auto &entry : timeline) {
        ASSERT_GE(entry.rec.tick, last);
        last = entry.rec.tick;
        even_count += entry.rec.module == even;
        odd_count += entry.rec.module == odd;
    }
    EXPECT_EQ(even_count, 1'000u);
    EXPECT_EQ(odd_count, 1'000u);
}

// --- watchdog (timing-based; excluded from the tsan filter) -------------

TEST(FlightRecorderWatchdog, HeartbeatsPreventFiring)
{
    std::atomic<bool> stalled{false};
    fr::armWatchdog(0.2, [&] { stalled.store(true); });
    // 0.4 s of wall clock — past the timeout — but with steady beats.
    for (int i = 0; i < 10; ++i) {
        fr::beat();
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
    }
    fr::disarmWatchdog();
    EXPECT_FALSE(stalled.load());
    EXPECT_FALSE(fr::watchdogFired());
}

TEST(FlightRecorderWatchdog, FiresOnStallAndRunsHook)
{
    std::atomic<bool> stalled{false};
    fr::armWatchdog(0.15, [&] { stalled.store(true); });
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!stalled.load() &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(stalled.load());
    EXPECT_TRUE(fr::watchdogFired());
    fr::disarmWatchdog();
}

} // namespace
