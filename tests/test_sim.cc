/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering,
 * clock-domain arithmetic, statistics, RNG determinism, config.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/config.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace f4t::sim
{
namespace
{

TEST(EventQueue, OrdersByTickThenPriorityThenInsertion)
{
    EventQueue queue;
    std::vector<int> order;

    queue.scheduleCallback(100, [&] { order.push_back(1); });
    queue.scheduleCallback(50, [&] { order.push_back(0); });
    queue.scheduleCallback(100, [&] { order.push_back(2); });
    queue.scheduleCallback(100, [&] { order.push_back(-1); },
                           Event::clockPriority);
    queue.run();

    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], -1); // clock priority runs first at tick 100
    EXPECT_EQ(order[2], 1);
    EXPECT_EQ(order[3], 2);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.scheduleCallback(10, [&] { ++fired; });
    queue.scheduleCallback(20, [&] { ++fired; });
    queue.scheduleCallback(30, [&] { ++fired; });

    queue.run(20);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.now(), 20u);
    queue.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, DescheduleSquashesEvent)
{
    EventQueue queue;
    int fired = 0;

    struct CountEvent : Event
    {
        int &count;
        explicit CountEvent(int &c) : count(c) {}
        void process() override { ++count; }
    };

    CountEvent ev(fired);
    queue.schedule(&ev, 10);
    queue.deschedule(&ev);
    queue.run();
    EXPECT_EQ(fired, 0);
    EXPECT_FALSE(ev.scheduled());

    // Reschedulable after deschedule.
    queue.schedule(&ev, 20);
    queue.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue queue;
    Tick fired_at = 0;

    struct StampEvent : Event
    {
        EventQueue &q;
        Tick &stamp;
        StampEvent(EventQueue &queue_, Tick &s) : q(queue_), stamp(s) {}
        void process() override { stamp = q.now(); }
    };

    StampEvent ev(queue, fired_at);
    queue.schedule(&ev, 10);
    queue.reschedule(&ev, 500);
    queue.run();
    EXPECT_EQ(fired_at, 500u);
}

TEST(EventQueue, NestedSchedulingFromCallback)
{
    EventQueue queue;
    std::vector<Tick> stamps;
    queue.scheduleCallback(10, [&] {
        stamps.push_back(queue.now());
        queue.scheduleCallback(queue.now() + 5,
                               [&] { stamps.push_back(queue.now()); });
    });
    queue.run();
    ASSERT_EQ(stamps.size(), 2u);
    EXPECT_EQ(stamps[0], 10u);
    EXPECT_EQ(stamps[1], 15u);
}

TEST(ClockDomain, PeriodsMatchPaperFrequencies)
{
    Simulation sim;
    EXPECT_EQ(sim.engineClock().period(), 4000u); // 250 MHz = 4 ns
    // Periods round to whole picoseconds: within 0.05 % of nominal.
    EXPECT_NEAR(sim.netClock().frequency(), 322e6, 322e6 * 5e-4);
    EXPECT_NEAR(sim.hostClock().frequency(), 2.3e9, 2.3e9 * 5e-4);
}

TEST(ClockDomain, ClockEdgeIsStrictlyInTheFuture)
{
    Simulation sim;
    ClockDomain &clk = sim.engineClock();
    EXPECT_EQ(clk.clockEdge(), 4000u);

    sim.queue().scheduleCallback(4000, [&] {
        // Exactly on an edge: the next edge is one period later.
        EXPECT_EQ(clk.clockEdge(), 8000u);
        EXPECT_EQ(clk.clockEdge(3), 8000u + 3 * 4000u);
        EXPECT_EQ(clk.curCycle(), 1u);
    });
    sim.run();
}

TEST(ClockedObject, TicksEveryCycleUntilIdle)
{
    struct Ticker : ClockedObject
    {
        int remaining = 5;
        std::vector<Cycles> cycles;
        Ticker(Simulation &sim)
            : ClockedObject(sim, "ticker", sim.engineClock())
        {}
        bool
        tick() override
        {
            cycles.push_back(curCycle());
            return --remaining > 0;
        }
    };

    Simulation sim;
    Ticker ticker(sim);
    ticker.activate();
    sim.run();

    ASSERT_EQ(ticker.cycles.size(), 5u);
    for (std::size_t i = 1; i < ticker.cycles.size(); ++i)
        EXPECT_EQ(ticker.cycles[i], ticker.cycles[i - 1] + 1);
    EXPECT_FALSE(ticker.active());
}

TEST(Stats, ScalarAndCounterAccumulate)
{
    Simulation sim;
    Scalar scalar(sim.stats(), "test.scalar", "a scalar");
    Counter counter(sim.stats(), "test.counter", "a counter");

    scalar += 2.5;
    scalar += 1.5;
    ++counter;
    counter += 9;

    EXPECT_DOUBLE_EQ(scalar.value(), 4.0);
    EXPECT_EQ(counter.value(), 10u);

    sim.stats().resetAll();
    EXPECT_DOUBLE_EQ(scalar.value(), 0.0);
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, HistogramPercentilesAreExactBelowCap)
{
    Simulation sim;
    Histogram hist(sim.stats(), "test.hist", "a histogram");
    for (int i = 1; i <= 100; ++i)
        hist.sample(i);

    EXPECT_EQ(hist.count(), 100u);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
    EXPECT_NEAR(hist.percentile(50), 50.5, 0.01);
    EXPECT_NEAR(hist.percentile(99), 99.01, 0.01);
    EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(Stats, HistogramReservoirKeepsDistribution)
{
    Simulation sim;
    Histogram hist(sim.stats(), "test.res", "capped", 1000);
    for (int i = 0; i < 100000; ++i)
        hist.sample(i % 1000);
    // Uniform 0..999: the median should stay near 500.
    EXPECT_NEAR(hist.percentile(50), 500, 60);
    EXPECT_EQ(hist.count(), 100000u);
}

TEST(Stats, DuplicateNameIsRejected)
{
    Simulation sim;
    Scalar a(sim.stats(), "dup.name", "first");
    EXPECT_DEATH(Scalar(sim.stats(), "dup.name", "second"), "duplicate");
}

TEST(Stats, DumpContainsAllStats)
{
    Simulation sim;
    Scalar a(sim.stats(), "x.a", "alpha");
    Counter b(sim.stats(), "x.b", "beta");
    a = 3;
    std::ostringstream os;
    sim.stats().dump(os);
    EXPECT_NE(os.str().find("x.a 3"), std::string::npos);
    EXPECT_NE(os.str().find("x.b 0"), std::string::npos);
}

TEST(Random, DeterministicAcrossInstances)
{
    Random a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Random, UniformInRange)
{
    Random rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        ASSERT_LT(rng.below(10), 10u);
        auto v = rng.between(5, 9);
        ASSERT_GE(v, 5u);
        ASSERT_LE(v, 9u);
    }
}

TEST(Random, ExponentialMeanConverges)
{
    Random rng(99);
    double sum = 0;
    constexpr int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Config, DeclareSetAndTypedGet)
{
    Config config;
    config.declare("flows", "64", "number of flows");
    config.declare("rate", "2.5");
    config.declare("enabled", "true");

    EXPECT_EQ(config.getInt("flows"), 64);
    config.set("flows", "128");
    EXPECT_EQ(config.getUint("flows"), 128u);
    EXPECT_DOUBLE_EQ(config.getDouble("rate"), 2.5);
    EXPECT_TRUE(config.getBool("enabled"));
}

TEST(Config, ParseArgsOverrides)
{
    Config config;
    config.declare("cores", "1");
    const char *argv[] = {"prog", "cores=8", "notakv"};
    config.parseArgs(3, const_cast<char **>(argv));
    EXPECT_EQ(config.getInt("cores"), 8);
}

TEST(Config, UnknownKeyIsFatal)
{
    EXPECT_DEATH(
        {
            Config config;
            config.set("nope", "1");
        },
        "unknown config key");
}

} // namespace
} // namespace f4t::sim
