/**
 * @file
 * Cycle-level tests for the Flow Processing Core (Section 4.2):
 *
 *  - events are absorbed at exactly one per two cycles (125 M/s at
 *    250 MHz) regardless of the FPU program's latency;
 *  - the dual memory + TCB manager reconstruct the same state atomic
 *    RMW would have produced, even with events landing while the FPU
 *    is mid-flight;
 *  - the CAM, eviction (only processed TCBs leave), and the
 *    swap-in port behave per the paper's protocol.
 */

#include <gtest/gtest.h>

#include "core/fpc.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace f4t::core
{
namespace
{

struct FpcFixture : ::testing::Test
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program{cc};

    std::unique_ptr<Fpc>
    makeFpc(unsigned latency_override = 0, std::size_t slots = 16)
    {
        FpcConfig config;
        config.slots = slots;
        config.inputFifoDepth = 1024; // isolate FPC timing from
                                      // scheduler backpressure
        config.fpuLatencyOverride = latency_override;
        return std::make_unique<Fpc>(sim, "fpc", sim.engineClock(),
                                     program, config);
    }

    tcp::Tcb
    syntheticTcb(tcp::FlowId flow)
    {
        tcp::Tcb tcb;
        tcb.flowId = flow;
        tcb.mss = 1460;
        tcb.iss = tcp::FpuProgram::initialSequence(flow);
        tcb.sndUna = tcb.iss + 1;
        tcb.sndUnaProcessed = tcb.sndUna;
        tcb.sndNxt = tcb.iss + 1;
        tcb.req = tcb.iss + 1;
        tcb.lastAckNotified = tcb.iss + 1;
        tcb.state = tcp::ConnState::established;
        tcb.sndWnd = 1u << 30;
        tcb.cwnd = 1u << 30;
        tcb.ssthresh = 1u << 30;
        tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
        tcb.irs = 0;
        tcb.rcvNxt = 1;
        tcb.userRead = 1;
        tcb.lastAckSent = 1;
        tcb.lastRcvNotified = 1;
        tcb.lastWndAdvertised = 1 + tcb.receiveWindow();
        return tcb;
    }

    void
    install(Fpc &fpc, tcp::FlowId flow)
    {
        MigratingTcb fresh;
        fresh.tcb = syntheticTcb(flow);
        // Respect the one-per-two-cycles swap-in port.
        while (!fpc.canAcceptTcb())
            sim.runFor(sim.engineClock().period());
        fpc.installTcb(fresh);
    }

    tcp::TcpEvent
    sendEvent(tcp::FlowId flow, std::uint32_t offset)
    {
        tcp::TcpEvent ev;
        ev.flow = flow;
        ev.type = tcp::TcpEventType::userSend;
        ev.pointer = tcp::FpuProgram::initialSequence(flow) + 1 + offset;
        return ev;
    }
};

TEST_F(FpcFixture, AbsorbsOneEventPerTwoCycles)
{
    auto fpc = makeFpc();
    install(*fpc, 0);

    constexpr int n = 512;
    for (int i = 0; i < n; ++i)
        fpc->enqueueEvent(sendEvent(0, (i + 1) * 100));

    sim::Cycles start = sim.engineClock().curCycle();
    // Run until the input FIFO drains.
    while (fpc->eventsHandled() < static_cast<std::uint64_t>(n))
        sim.runFor(sim.engineClock().period());
    sim::Cycles elapsed = sim.engineClock().curCycle() - start;

    // One event per two cycles: 125 M events/s at 250 MHz.
    EXPECT_NEAR(static_cast<double>(elapsed), 2.0 * n, 8.0);
}

TEST_F(FpcFixture, EventRateIndependentOfFpuLatency)
{
    // The versatility claim (Fig. 15): latency 1 vs 100 cycles, same
    // event absorption rate.
    for (unsigned latency : {1u, 14u, 41u, 68u, 100u}) {
        sim::Simulation local_sim;
        FpcConfig config;
        config.slots = 16;
        config.inputFifoDepth = 4096;
        config.fpuLatencyOverride = latency;
        Fpc fpc(local_sim, "fpc", local_sim.engineClock(), program,
                config);

        MigratingTcb fresh;
        fresh.tcb = syntheticTcb(3);
        fpc.installTcb(fresh);

        constexpr int n = 1000;
        for (int i = 0; i < n; ++i) {
            tcp::TcpEvent ev = sendEvent(3, (i + 1) * 10);
            fpc.enqueueEvent(ev);
        }
        sim::Cycles start = local_sim.engineClock().curCycle();
        while (fpc.eventsHandled() < static_cast<std::uint64_t>(n))
            local_sim.runFor(local_sim.engineClock().period());
        sim::Cycles elapsed = local_sim.engineClock().curCycle() - start;
        EXPECT_NEAR(static_cast<double>(elapsed), 2.0 * n, 10.0)
            << "latency " << latency;
    }
}

TEST_F(FpcFixture, AccumulatedEventsProcessAllAtOnce)
{
    auto fpc = makeFpc(/*latency=*/41);
    install(*fpc, 1);

    std::vector<tcp::SegmentRequest> segments;
    fpc->setActionSink([&](tcp::FlowId, tcp::FpuActions &&actions) {
        for (auto &seg : actions.segments)
            segments.push_back(seg);
    });

    // Eight 100 B requests accumulate; the FPU pass emits the
    // equivalent of a single 800 B transfer (Section 4.2.2).
    for (int i = 1; i <= 8; ++i)
        fpc->enqueueEvent(sendEvent(1, i * 100));
    sim.runFor(sim::microsecondsToTicks(5));

    std::uint64_t total = 0;
    for (const auto &seg : segments)
        total += seg.length;
    EXPECT_EQ(total, 800u);
    // Far fewer passes than events (batching worked).
    EXPECT_LE(fpc->fpuPasses(), 3u);
}

TEST_F(FpcFixture, MatchesAtomicOracleUnderRandomEventStreams)
{
    // The dual-memory consistency property: the FPC's final state for
    // a flow equals a sequential oracle that applies each event
    // immediately with the same FPU program.
    auto fpc = makeFpc(/*latency=*/14);
    install(*fpc, 2);

    tcp::Tcb oracle = syntheticTcb(2);
    sim::Random rng(1234);
    net::SeqNum req = oracle.req;
    net::SeqNum peer_ack = oracle.sndUna;

    for (int i = 0; i < 300; ++i) {
        tcp::TcpEvent ev;
        ev.flow = 2;
        std::int32_t ackable = net::seqDiff(req, peer_ack);
        if (rng.chance(0.6) || ackable <= 0) {
            req += 1 + rng.below(500);
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer = req;
        } else {
            // Peer cumulatively ACKs strictly forward (never a
            // duplicate: the deferred-vs-immediate equivalence being
            // tested is about cumulative state; congestion dynamics
            // under batching are checked separately).
            std::uint32_t step = 1 + rng.below(static_cast<std::uint32_t>(
                                       ackable > 400 ? 400 : ackable));
            peer_ack += step;
            ev.type = tcp::TcpEventType::rxSegment;
            ev.tcpFlags = net::TcpFlags::ack;
            ev.peerAck = peer_ack;
            ev.rcvUpTo = 1;
            ev.peerWnd = 1u << 30;
        }

        // Oracle: immediate atomic apply.
        {
            tcp::EventRecord record;
            tcp::accumulateEvent(record, oracle, ev);
            tcp::Tcb merged = tcp::merge(oracle, record);
            tcp::FpuActions actions;
            program.process(merged, sim.now() / 1'000'000, actions);
            oracle = merged;
        }

        while (!fpc->canAcceptEvent())
            sim.runFor(sim.engineClock().period());
        fpc->enqueueEvent(ev);
        // Occasionally let the engine drain completely.
        if (rng.chance(0.1))
            sim.runFor(sim::microsecondsToTicks(3));
    }
    sim.runFor(sim::microsecondsToTicks(10));

    tcp::Tcb final = fpc->peekMergedTcb(2);
    EXPECT_EQ(final.req, oracle.req);
    EXPECT_EQ(final.sndNxt, oracle.sndNxt);
    EXPECT_EQ(final.sndUna, oracle.sndUna);
    EXPECT_EQ(final.state, oracle.state);
}

TEST_F(FpcFixture, CamTracksResidencyExactly)
{
    auto fpc = makeFpc(0, 8);
    EXPECT_EQ(fpc->flowCount(), 0u);
    for (tcp::FlowId flow = 0; flow < 8; ++flow) {
        install(*fpc, flow);
        EXPECT_TRUE(fpc->hasFlow(flow));
    }
    EXPECT_TRUE(fpc->full());
    EXPECT_FALSE(fpc->canAcceptTcb());

    fpc->releaseFlow(3);
    EXPECT_FALSE(fpc->hasFlow(3));
    EXPECT_EQ(fpc->flowCount(), 7u);
    install(*fpc, 42);
    EXPECT_TRUE(fpc->hasFlow(42));
}

TEST_F(FpcFixture, EventForWrongFpcPanics)
{
    auto fpc = makeFpc();
    install(*fpc, 5);
    tcp::TcpEvent ev = sendEvent(99, 100);
    EXPECT_DEATH(fpc->enqueueEvent(ev), "non-resident flow");
}

TEST_F(FpcFixture, SwapInPortAcceptsOnePerTwoCycles)
{
    auto fpc = makeFpc();
    MigratingTcb first;
    first.tcb = syntheticTcb(10);
    ASSERT_TRUE(fpc->canAcceptTcb());
    fpc->installTcb(first);
    // Same two-cycle window: the dedicated write port is busy.
    EXPECT_FALSE(fpc->canAcceptTcb());
    sim.runFor(2 * sim.engineClock().period());
    EXPECT_TRUE(fpc->canAcceptTcb());
}

TEST_F(FpcFixture, EvictionWaitsForProcessedTcb)
{
    auto fpc = makeFpc(/*latency=*/41);
    install(*fpc, 6);

    std::vector<MigratingTcb> evicted;
    fpc->setEvictSink([&](MigratingTcb &&leaving) {
        evicted.push_back(std::move(leaving));
    });

    // Queue work, then request eviction: the evict checker only evicts
    // the TCB after its FPU pass completes, carrying the processed
    // state (req advanced, data sent).
    fpc->enqueueEvent(sendEvent(6, 700));
    fpc->requestEvict(6);
    sim.runFor(sim::microsecondsToTicks(5));

    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_FALSE(fpc->hasFlow(6));
    // Events that landed after the pass started travel with the TCB;
    // the merged view loses nothing.
    tcp::Tcb gone = tcp::merge(evicted[0].tcb, evicted[0].events);
    EXPECT_EQ(gone.flowId, 6u);
    EXPECT_EQ(gone.req, tcp::FpuProgram::initialSequence(6) + 1 + 700);
    EXPECT_GE(fpc->evictions(), 1u);
}

TEST_F(FpcFixture, EvictionDefersWhileFifoHoldsFlowEvents)
{
    auto fpc = makeFpc(/*latency=*/1);
    install(*fpc, 8);

    std::vector<MigratingTcb> evicted;
    fpc->setEvictSink([&](MigratingTcb &&leaving) {
        evicted.push_back(std::move(leaving));
    });

    // Many queued events; evict requested immediately. No event may be
    // orphaned: the eviction happens only once the FIFO holds no more
    // events of the flow, and the final TCB reflects all of them.
    for (int i = 1; i <= 40; ++i)
        fpc->enqueueEvent(sendEvent(8, i * 10));
    fpc->requestEvict(8);
    sim.runFor(sim::microsecondsToTicks(10));

    ASSERT_EQ(evicted.size(), 1u);
    tcp::Tcb merged = tcp::merge(evicted[0].tcb, evicted[0].events);
    EXPECT_EQ(merged.req, tcp::FpuProgram::initialSequence(8) + 1 + 400);
}

TEST_F(FpcFixture, ColdestFlowIsLeastRecentlyActive)
{
    auto fpc = makeFpc();
    for (tcp::FlowId flow = 0; flow < 4; ++flow)
        install(*fpc, flow);

    // Touch flows 0, 2, 3 with events; flow 1 stays cold.
    for (tcp::FlowId flow : {0u, 2u, 3u}) {
        fpc->enqueueEvent(sendEvent(flow, 100));
    }
    sim.runFor(sim::microsecondsToTicks(2));

    auto coldest = fpc->coldestFlow();
    ASSERT_TRUE(coldest.has_value());
    EXPECT_EQ(*coldest, 1u);
}

TEST_F(FpcFixture, ReleaseFlowViaConnectionClose)
{
    auto fpc = makeFpc();
    install(*fpc, 11);

    // Reset aborts the connection; the FPU's releaseFlow action must
    // recycle the slot.
    tcp::TcpEvent rst;
    rst.flow = 11;
    rst.type = tcp::TcpEventType::rxSegment;
    rst.tcpFlags = net::TcpFlags::rst;
    rst.peerWnd = 1000;
    rst.rcvUpTo = 1;

    bool released = false;
    fpc->setActionSink([&](tcp::FlowId flow, tcp::FpuActions &&actions) {
        if (flow == 11 && actions.releaseFlow)
            released = true;
    });
    fpc->enqueueEvent(rst);
    sim.runFor(sim::microsecondsToTicks(2));

    EXPECT_TRUE(released);
    EXPECT_FALSE(fpc->hasFlow(11));
    EXPECT_EQ(fpc->flowCount(), 0u);
}

TEST_F(FpcFixture, DupAckCountingSurvivesDeferredProcessing)
{
    auto fpc = makeFpc(/*latency=*/41);
    install(*fpc, 12);

    std::vector<tcp::SegmentRequest> retransmissions;
    fpc->setActionSink([&](tcp::FlowId, tcp::FpuActions &&actions) {
        for (auto &seg : actions.segments) {
            if (seg.retransmission)
                retransmissions.push_back(seg);
        }
    });

    // Put data in flight.
    fpc->enqueueEvent(sendEvent(12, 10000));
    sim.runFor(sim::microsecondsToTicks(3));

    // Three duplicate ACKs land back-to-back (single-cycle RMW path).
    net::SeqNum una = tcp::FpuProgram::initialSequence(12) + 1;
    for (int i = 0; i < 3; ++i) {
        tcp::TcpEvent dup;
        dup.flow = 12;
        dup.type = tcp::TcpEventType::rxSegment;
        dup.tcpFlags = net::TcpFlags::ack;
        dup.peerAck = una;
        dup.rcvUpTo = 1;
        dup.peerWnd = 1u << 30;
        fpc->enqueueEvent(dup);
    }
    sim.runFor(sim::microsecondsToTicks(3));

    ASSERT_FALSE(retransmissions.empty());
    EXPECT_EQ(retransmissions[0].seq, una);
    tcp::Tcb merged = fpc->peekMergedTcb(12);
    EXPECT_EQ(merged.ccPhase, tcp::CcPhase::fastRecovery);
}

} // namespace
} // namespace f4t::core
