/**
 * @file
 * Tests for the observability layer: trace flag selection, the Chrome
 * trace-event sink, the periodic stat sampler, pcap export, and the
 * stats-framework pieces they build on (JSON dump, histogram
 * percentiles, reservoir behaviour, tick-stamped logging).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/link.hh"
#include "net/packet.hh"
#include "net/pcap_writer.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace f4t
{
namespace
{

using sim::trace::Flag;

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// flag selection
// ---------------------------------------------------------------------

TEST(TraceFlags, GlobMatch)
{
    using sim::trace::globMatch;
    EXPECT_TRUE(globMatch("fpc", "Fpc"));
    EXPECT_TRUE(globMatch("FPC", "fpc"));
    EXPECT_TRUE(globMatch("*", "Scheduler"));
    EXPECT_TRUE(globMatch("sch*", "Scheduler"));
    EXPECT_TRUE(globMatch("*tcp", "SoftTcp"));
    EXPECT_TRUE(globMatch("?pc", "Fpc"));
    EXPECT_TRUE(globMatch("*e*", "Timer"));
    EXPECT_FALSE(globMatch("fpc", "Fpcx"));
    EXPECT_FALSE(globMatch("sch*x", "Scheduler"));
    EXPECT_FALSE(globMatch("?", "Fpc"));
    EXPECT_FALSE(globMatch("", "Fpc"));
    EXPECT_TRUE(globMatch("", ""));
    EXPECT_TRUE(globMatch("**", "Link"));
}

TEST(TraceFlags, SetFlagsSelectsAndNegates)
{
    sim::trace::clearFlags();
    EXPECT_FALSE(sim::trace::enabled(Flag::Fpc));

    std::size_t changed = sim::trace::setFlags("fpc,scheduler");
    if (!sim::trace::compiledIn) {
        // Flag state is maintained even when the macros are compiled
        // out, so the selection still registers.
        EXPECT_EQ(changed, 2u);
        sim::trace::clearFlags();
        return;
    }
    EXPECT_EQ(changed, 2u);
    EXPECT_TRUE(sim::trace::enabled(Flag::Fpc));
    EXPECT_TRUE(sim::trace::enabled(Flag::Scheduler));
    EXPECT_FALSE(sim::trace::enabled(Flag::Link));

    // '*' selects everything; a trailing '-pattern' subtracts.
    sim::trace::clearFlags();
    sim::trace::setFlags("*,-link");
    EXPECT_TRUE(sim::trace::enabled(Flag::Fpc));
    EXPECT_TRUE(sim::trace::enabled(Flag::Timer));
    EXPECT_FALSE(sim::trace::enabled(Flag::Link));

    // Last match wins.
    sim::trace::setFlags("-*,fpc");
    EXPECT_TRUE(sim::trace::enabled(Flag::Fpc));
    EXPECT_FALSE(sim::trace::enabled(Flag::Scheduler));

    sim::trace::clearFlags();
    EXPECT_FALSE(sim::trace::enabled(Flag::Fpc));
}

TEST(TraceFlags, UnknownPatternChangesNothing)
{
    sim::trace::clearFlags();
    EXPECT_EQ(sim::trace::setFlags("nosuchmodule"), 0u);
    for (unsigned i = 0; i < sim::trace::numFlags; ++i)
        EXPECT_FALSE(sim::trace::enabled(static_cast<Flag>(i)));
}

TEST(TraceFlags, EmittedLinesAreTickStamped)
{
    if (!sim::trace::compiledIn)
        GTEST_SKIP() << "tracepoints compiled out";

    std::string path = tempPath("f4t_trace_lines.txt");
    std::FILE *out = std::fopen(path.c_str(), "w+");
    ASSERT_NE(out, nullptr);
    sim::trace::setOutput(out);
    sim::trace::setFlags("fpc");

    {
        sim::Simulation sim;
        sim.queue().scheduleCallback(1234, "test.emit", [] {
            F4T_TRACE(Fpc, "hello %d", 7);
        });
        sim.runFor(5000);
    }
    F4T_TRACE(Fpc, "no sim");

    sim::trace::setOutput(nullptr);
    std::fclose(out);
    sim::trace::clearFlags();

    std::string text = slurp(path);
    // In-simulation lines carry the firing tick; outside they carry '-'.
    EXPECT_NE(text.find("1234: Fpc: hello 7"), std::string::npos) << text;
    EXPECT_NE(text.find("-: Fpc: no sim"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// simulation hooks (tick-prefixed warnings, observers)
// ---------------------------------------------------------------------

TEST(TraceHooks, CurrentSimTickFollowsSimulationLifetime)
{
    std::uint64_t tick = 99;
    EXPECT_FALSE(sim::detail::currentSimTick(tick));
    {
        sim::Simulation outer;
        ASSERT_TRUE(sim::detail::currentSimTick(tick));
        EXPECT_EQ(tick, 0u);

        outer.queue().scheduleCallback(777, "test.noop", [] {});
        outer.runFor(777);
        ASSERT_TRUE(sim::detail::currentSimTick(tick));
        EXPECT_EQ(tick, outer.now());

        {
            // The most recently constructed simulation owns the stamp.
            sim::Simulation inner;
            ASSERT_TRUE(sim::detail::currentSimTick(tick));
            EXPECT_EQ(tick, 0u);
        }
        ASSERT_TRUE(sim::detail::currentSimTick(tick));
        EXPECT_EQ(tick, outer.now());
    }
    EXPECT_FALSE(sim::detail::currentSimTick(tick));
}

TEST(TraceHooks, SimulationObserversFire)
{
    int created = 0;
    int destroyed = 0;
    sim::trace::setSimulationObservers(
        [&](sim::Simulation &) { ++created; },
        [&](sim::Simulation &) { ++destroyed; });
    {
        sim::Simulation a;
        EXPECT_EQ(created, 1);
        sim::Simulation b;
        EXPECT_EQ(created, 2);
        EXPECT_EQ(destroyed, 0);
    }
    EXPECT_EQ(destroyed, 2);
    sim::trace::setSimulationObservers({}, {});
    {
        sim::Simulation c;
    }
    EXPECT_EQ(created, 2);
    EXPECT_EQ(destroyed, 2);
}

// ---------------------------------------------------------------------
// timeline sink
// ---------------------------------------------------------------------

TEST(TraceEventSink, WritesChromeTraceJson)
{
    sim::trace::TraceEventSink sink;
    // Nested spans on one track; the timestamps are microseconds with
    // picosecond precision preserved as fractional digits.
    sink.span("fpc0", "fpu", "outer", 1'000'000, 5'000'000);
    sink.span("fpc0", "fpu", "inner", 2'000'000, 3'500'000);
    sink.instant("link", "drop", "drop \"a\"", 2'500'000);
    sink.counter("fpc0", "occupancy", 4'000'000, 0.75);
    EXPECT_EQ(sink.eventCount(), 4u);

    std::stringstream ss;
    sink.write(ss);
    std::string json = ss.str();

    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    // Track-name metadata events, one per track.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"fpc0\""), std::string::npos);
    EXPECT_NE(json.find("\"link\""), std::string::npos);
    // The outer span: 1 us start, 4 us duration.
    EXPECT_NE(json.find("\"ts\":1.000000,\"name\":\"outer\","
                        "\"cat\":\"fpu\",\"dur\":4.000000"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"ts\":2.000000,\"name\":\"inner\","
                        "\"cat\":\"fpu\",\"dur\":1.500000"),
              std::string::npos);
    // Instants carry the scope field; quotes in names are escaped.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("drop \\\"a\\\""), std::string::npos);
    // Counter value.
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("0.75"), std::string::npos);

    // Both spans live on the same tid; the instant is on another. The
    // tid field precedes the name, so scan backwards from the name.
    auto tid_of = [&](const char *name) {
        std::size_t pos = json.find(std::string("\"name\":\"") + name);
        EXPECT_NE(pos, std::string::npos);
        std::size_t tid = json.rfind("\"tid\":", pos);
        return json.substr(tid + 6, 1);
    };
    EXPECT_EQ(tid_of("outer"), tid_of("inner"));
    EXPECT_NE(tid_of("outer"), tid_of("drop \\\"a\\\""));
}

TEST(TraceEventSink, BoundedBufferCountsDrops)
{
    sim::trace::TraceEventSink sink(3);
    for (int i = 0; i < 5; ++i)
        sink.instant("t", "c", std::string("e") + char('0' + i), i);
    EXPECT_EQ(sink.eventCount(), 3u);
    EXPECT_EQ(sink.droppedEvents(), 2u);
}

TEST(TraceEventSink, OverflowEmitsDropCounterRecord)
{
    sim::trace::TraceEventSink sink(2);
    for (int i = 0; i < 6; ++i)
        sink.instant("t", "c", "evt", 1'000'000 * (i + 1));
    ASSERT_EQ(sink.droppedEvents(), 4u);

    std::stringstream ss;
    sink.write(ss);
    std::string json = ss.str();
    // The truncated document must say so: a final counter record with
    // the drop count, stamped at the last retained event (2 us).
    EXPECT_NE(json.find("\"name\":\"trace.droppedEvents\",\"cat\":"
                        "\"meta\",\"args\":{\"value\":4}"),
              std::string::npos)
        << json;
    std::size_t marker = json.find("trace.droppedEvents");
    std::size_t ts = json.rfind("\"ts\":2.000000", marker);
    EXPECT_NE(ts, std::string::npos) << json;
}

TEST(TraceEventSink, NoDropRecordWithoutOverflow)
{
    sim::trace::TraceEventSink sink;
    sink.instant("t", "c", "evt", 1'000'000);
    std::stringstream ss;
    sink.write(ss);
    EXPECT_EQ(ss.str().find("trace.droppedEvents"), std::string::npos);
}

TEST(TraceEventSink, WriteFileRoundTrips)
{
    std::string path = tempPath("f4t_timeline.json");
    sim::trace::TraceEventSink sink;
    sink.instant("track", "cat", "evt", 1'000'000);
    ASSERT_TRUE(sink.writeFile(path));
    std::string text = slurp(path);
    EXPECT_NE(text.find("\"evt\""), std::string::npos);
    ASSERT_GE(text.size(), 2u);
    EXPECT_EQ(text.substr(text.size() - 2), "}\n");
}

// ---------------------------------------------------------------------
// stat sampler
// ---------------------------------------------------------------------

TEST(StatSampler, CsvTimeSeriesAndJsonSnapshot)
{
    std::string csv_path = tempPath("f4t_series.csv");
    std::string json_path = tempPath("f4t_series.json");

    sim::Simulation sim;
    sim::Scalar gauge(sim.stats(), "test.gauge", "a gauge");
    sim::Counter ticks(sim.stats(), "test.ticks", "a counter");
    sim::Scalar hidden(sim.stats(), "other.hidden", "not selected");

    {
        // Scoped: the sampler flushes its CSV stream on destruction.
        sim::trace::StatSampler sampler(sim, 1000);
        sampler.selectStats("test.*");
        sampler.setCsvPath(csv_path);
        sampler.setStatsJsonPath(json_path);
        sampler.addProbe("doubled", [&] { return gauge.value() * 2; });
        sampler.start();

        gauge = 1.5;
        hidden = 9.0;
        sim.queue().scheduleCallback(4500, "test.bump", [&] {
            gauge = 4.0;
            ticks += 3;
        });
        sim.runFor(10'500);
        EXPECT_EQ(sampler.samplesTaken(), 10u);
    }

    std::ifstream in(csv_path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header, "tick_ps,time_us,test.gauge,test.ticks,doubled");

    std::vector<std::string> rows;
    for (std::string line; std::getline(in, line);)
        rows.push_back(line);
    ASSERT_EQ(rows.size(), 10u);
    // First sample at tick 1000 (1e-3 us): gauge still 1.5.
    EXPECT_EQ(rows[0].substr(0, rows[0].find(',')), "1000");
    EXPECT_NE(rows[0].find(",1.5,"), std::string::npos) << rows[0];
    EXPECT_NE(rows[0].find(",3"), std::string::npos); // probe 2*1.5
    // Fifth sample (tick 5000) sees the bump at 4500.
    EXPECT_NE(rows[4].find(",4,"), std::string::npos) << rows[4];
    EXPECT_NE(rows[4].find(",8"), std::string::npos);

    // The JSON snapshot is rewritten every fire; the survivor holds the
    // end-of-run values of the full registry (selection only limits the
    // CSV columns).
    std::string json = slurp(json_path);
    EXPECT_NE(json.find("\"test.gauge\": 4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"test.ticks\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"other.hidden\": 9"), std::string::npos);
}

TEST(StatSampler, MissingStatLeavesEmptyCell)
{
    std::string csv_path = tempPath("f4t_series_gone.csv");
    sim::Simulation sim;
    auto departing = std::make_unique<sim::Scalar>(
        sim.stats(), "test.departing", "deregisters mid-run");
    *departing = 7.0;

    {
        sim::trace::StatSampler sampler(sim, 1000);
        sampler.selectStats("test.*");
        sampler.setCsvPath(csv_path);
        sampler.start();
        sim.queue().scheduleCallback(2500, "test.drop", [&] {
            departing.reset();
        });
        sim.runFor(4'000);
    }

    std::ifstream in(csv_path);
    std::string header, row1, row3;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row1));
    ASSERT_TRUE(std::getline(in, row3));
    ASSERT_TRUE(std::getline(in, row3));
    EXPECT_NE(row1.find(",7"), std::string::npos);
    // After deregistration the column stays but the cell is empty.
    EXPECT_EQ(row3.substr(row3.size() - 1), ",") << row3;
}

// ---------------------------------------------------------------------
// pcap export
// ---------------------------------------------------------------------

net::Packet
makeTestPacket(std::uint16_t src_port, std::size_t payload_bytes)
{
    net::TcpHeader tcp;
    tcp.srcPort = src_port;
    tcp.dstPort = 80;
    tcp.seq = 1000;
    tcp.ack = 2000;
    tcp.flags = net::TcpFlags::ack | net::TcpFlags::psh;
    tcp.window = 65535;
    net::PayloadBuffer payload(payload_bytes);
    for (std::size_t i = 0; i < payload_bytes; ++i)
        payload[i] = static_cast<std::uint8_t>(i);
    return net::Packet::makeTcp(
        net::MacAddress{{2, 0, 0, 0, 0, 1}},
        net::MacAddress{{2, 0, 0, 0, 0, 2}},
        net::Ipv4Address::fromOctets(10, 0, 0, 1),
        net::Ipv4Address::fromOctets(10, 0, 0, 2), tcp,
        std::move(payload));
}

std::uint32_t
le32(const std::string &bytes, std::size_t at)
{
    return static_cast<std::uint8_t>(bytes[at]) |
           static_cast<std::uint8_t>(bytes[at + 1]) << 8 |
           static_cast<std::uint8_t>(bytes[at + 2]) << 16 |
           static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(bytes[at + 3]))
               << 24;
}

TEST(PcapWriter, FileFormatRoundTrips)
{
    std::string path = tempPath("f4t_test.pcap");
    net::Packet first = makeTestPacket(1234, 64);
    net::Packet second = makeTestPacket(5678, 0);
    {
        net::PcapWriter writer(path);
        ASSERT_TRUE(writer.ok());
        // 3 us and 2.5 s: exercises both timestamp fields.
        std::size_t a = writer.record(3'000'000, first, "a->b");
        writer.record(sim::secondsToTicks(2.5), second, "b->a");
        writer.annotate(a, "drop");
        writer.annotate(a, "test-note");
        EXPECT_EQ(writer.records(), 2u);
        writer.flush();
    }

    std::string bytes = slurp(path);
    // Global header: magic, version 2.4, LINKTYPE_ETHERNET.
    ASSERT_GE(bytes.size(), 24u);
    EXPECT_EQ(le32(bytes, 0), 0xa1b2c3d4u);
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[4]), 2); // version major
    EXPECT_EQ(static_cast<std::uint8_t>(bytes[6]), 4); // version minor
    EXPECT_EQ(le32(bytes, 20), 1u);                    // network

    // First record: ts 0 s + 3 us, full frame, parseable.
    std::vector<std::uint8_t> first_wire = first.serialize();
    std::size_t rec = 24;
    EXPECT_EQ(le32(bytes, rec + 0), 0u);
    EXPECT_EQ(le32(bytes, rec + 4), 3u);
    ASSERT_EQ(le32(bytes, rec + 8), first_wire.size());
    EXPECT_EQ(le32(bytes, rec + 12), first_wire.size());
    std::vector<std::uint8_t> frame(first_wire.size());
    std::memcpy(frame.data(), bytes.data() + rec + 16, frame.size());
    EXPECT_EQ(frame, first_wire);
    auto parsed = net::Packet::parseWire(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->tcp().srcPort, 1234);
    EXPECT_EQ(parsed->payload.size(), 64u);

    // Second record: 2.5 s = 2 s + 500000 us.
    std::size_t rec2 = rec + 16 + first_wire.size();
    EXPECT_EQ(le32(bytes, rec2 + 0), 2u);
    EXPECT_EQ(le32(bytes, rec2 + 4), 500'000u);

    // Sidecar index carries the simulator-only annotations.
    std::string sidecar = slurp(path + ".index");
    EXPECT_NE(sidecar.find("drop,test-note"), std::string::npos)
        << sidecar;
    EXPECT_NE(sidecar.find("a->b"), std::string::npos);
    EXPECT_NE(sidecar.find("3000000"), std::string::npos);
}

TEST(PcapWriter, LinkCaptureAnnotatesInjectedDrops)
{
    std::string path = tempPath("f4t_link.pcap");

    struct SinkCounter : net::PacketSink
    {
        std::size_t received = 0;
        void receivePacket(net::Packet &&) override { ++received; }
    };

    sim::Simulation sim;
    net::FaultModel faults;
    faults.dropAtTicks.push_back(0); // first frame sent is dropped
    net::Link link(sim, "testlink", 10e9, sim::microsecondsToTicks(1),
                   faults);
    SinkCounter a, b;
    link.connect(a, b);
    {
        net::PcapWriter writer(path);
        ASSERT_TRUE(writer.ok());
        link.attachPcap(&writer);

        link.aToB().send(makeTestPacket(1111, 32));
        link.aToB().send(makeTestPacket(2222, 32));
        sim.runFor(sim::microsecondsToTicks(100));
        // Both frames captured, even though only one arrived.
        EXPECT_EQ(writer.records(), 2u);
        EXPECT_EQ(b.received, 1u);
        writer.flush();
    }

    std::string sidecar = slurp(path + ".index");
    EXPECT_NE(sidecar.find("drop(scheduled)"), std::string::npos)
        << sidecar;
}

// ---------------------------------------------------------------------
// stats framework (dumpJson + histogram edge cases)
// ---------------------------------------------------------------------

TEST(Stats, DumpJsonCoversAllStatTypes)
{
    sim::StatRegistry registry;
    sim::Scalar gauge(registry, "a.gauge", "g");
    sim::Counter counter(registry, "a.counter", "c");
    sim::Histogram hist(registry, "a.hist", "h");
    gauge = 2.5;
    counter += 42;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        hist.sample(v);

    std::stringstream ss;
    registry.dumpJson(ss);
    std::string json = ss.str();

    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"a.gauge\": 2.5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"a.counter\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"a.hist\": {\"count\":4"), std::string::npos);
    EXPECT_NE(json.find("\"mean\":2.5"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    // Ends with a closing brace + newline, no trailing comma before it.
    EXPECT_EQ(json.substr(json.size() - 3), "\n}\n");
}

TEST(Stats, HistogramPercentilesExactBelowCap)
{
    sim::StatRegistry registry;
    sim::Histogram hist(registry, "h", "d", /*reservoir_cap=*/1000);
    // Insert 1..100 out of order.
    for (int i = 100; i >= 1; --i)
        hist.sample(i);

    EXPECT_EQ(hist.count(), 100u);
    EXPECT_DOUBLE_EQ(hist.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(hist.percentile(100), 100.0);
    // Linear interpolation on the (n-1) rank: p50 of 1..100 is 50.5.
    EXPECT_DOUBLE_EQ(hist.percentile(50), 50.5);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 50.5);
}

TEST(Stats, HistogramReservoirPastCap)
{
    sim::StatRegistry registry;
    sim::Histogram hist(registry, "h", "d", /*reservoir_cap=*/64);
    for (int i = 1; i <= 10'000; ++i)
        hist.sample(i);

    // Aggregates stay exact past the cap...
    EXPECT_EQ(hist.count(), 10'000u);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 10'000.0);
    EXPECT_DOUBLE_EQ(hist.sum(), 10'000.0 * 10'001.0 / 2.0);
    // ...while percentiles come from the reservoir: in range and
    // monotone.
    double p10 = hist.percentile(10);
    double p50 = hist.percentile(50);
    double p90 = hist.percentile(90);
    EXPECT_GE(p10, 1.0);
    EXPECT_LE(p90, 10'000.0);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p90);
    // The reservoir is uniform, so the median lands loosely mid-range.
    EXPECT_GT(p50, 1'000.0);
    EXPECT_LT(p50, 9'000.0);
}

TEST(Stats, ResetAllClearsEveryKind)
{
    sim::StatRegistry registry;
    sim::Scalar gauge(registry, "g", "");
    sim::Counter counter(registry, "c", "");
    sim::Histogram hist(registry, "h", "");
    gauge = 5.0;
    ++counter;
    hist.sample(9.0);

    registry.resetAll();
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
}

TEST(Stats, DuplicateNameDies)
{
    sim::StatRegistry registry;
    sim::Scalar first(registry, "same.name", "");
    EXPECT_DEATH(sim::Scalar(registry, "same.name", ""), "duplicate");
}

TEST(Stats, SampleValueSnapshots)
{
    sim::StatRegistry registry;
    sim::Scalar gauge(registry, "g", "");
    sim::Counter counter(registry, "c", "");
    sim::Histogram hist(registry, "h", "");
    gauge = 2.5;
    counter += 7;
    hist.sample(1.0);
    hist.sample(3.0);

    const sim::StatBase *gp = registry.find("g");
    ASSERT_NE(gp, nullptr);
    EXPECT_DOUBLE_EQ(gp->sampleValue(), 2.5);
    EXPECT_DOUBLE_EQ(registry.find("c")->sampleValue(), 7.0);
    EXPECT_DOUBLE_EQ(registry.find("h")->sampleValue(), 2.0);
}

} // namespace
} // namespace f4t
