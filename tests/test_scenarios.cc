/**
 * @file
 * End-to-end scenario tests over the star testbed: open-loop KV load
 * against the shared-buffer switch, trace record/replay round-trip,
 * connection-churn lifecycle accounting, and multi-segment tail-loss
 * recovery (the RTO path open-loop incast leans on).
 *
 * Registered under the ctest label "scenarios" (see CMakeLists) so CI
 * can run the scenario suite as its own smoke job.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "apps/kv.hh"
#include "apps/testbed_star.hh"
#include "load/open_loop.hh"
#include "load/trace.hh"

namespace f4t
{
namespace
{

double
statValue(sim::Simulation &sim, const std::string &name)
{
    sim::StatBase *stat = sim.stats().find(name);
    return stat != nullptr ? stat->sampleValue() : -1.0;
}

TEST(Scenarios, OpenLoopKvAgainstStarWorldCompletes)
{
    testbed::StarConfig config;
    config.clients = 2;
    testbed::StarWorld world(config);

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerApp server(server_api, {});
    server.start();

    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::vector<std::unique_ptr<load::OpenLoopClientApp>> clients;
    for (std::size_t i = 0; i < config.clients; ++i) {
        apis.push_back(world.makeClientApi(i));
        load::OpenLoopConfig ocfg;
        ocfg.peer = testbed::starServerIp();
        ocfg.connections = 2;
        ocfg.streamBase = static_cast<std::uint32_t>(i) * 64;
        ocfg.clientId = static_cast<std::uint32_t>(i);
        ocfg.seed = 0xBEEF;
        ocfg.arrivals = load::ArrivalSpec::poisson(80'000.0);
        ocfg.valueSizes = load::SizeSpec::boundedPareto(1.3, 128, 8192);
        ocfg.readFraction = 0.7;
        ocfg.startAt = sim::microsecondsToTicks(20);
        clients.push_back(
            std::make_unique<load::OpenLoopClientApp>(*apis.back(), ocfg));
        clients.back()->start();
    }

    world.sim.runFor(sim::microsecondsToTicks(800));

    std::uint64_t total_completed = 0;
    for (auto &client : clients) {
        EXPECT_GT(client->completed(), 0u);
        EXPECT_EQ(client->resets(), 0u);
        total_completed += client->completed();
    }
    // The server saw at least every request a client saw answered.
    EXPECT_GE(server.gets() + server.sets(), total_completed);
    EXPECT_EQ(server.protocolErrors(), 0u);
    EXPECT_EQ(world.fabric->routeMisses(), 0u);
}

/** One generation run: returns the merged, canonically ordered trace
 *  and fills per-client copies plus per-client completion counts. */
struct GenerationResult
{
    std::vector<load::TraceRecord> merged;
    std::vector<std::vector<load::TraceRecord>> perClient;
    std::vector<std::uint64_t> completed;
    std::vector<std::uint64_t> valueBytesReceived;
    std::vector<std::uint64_t> valueBytesSent;
};

GenerationResult
runScenario(std::size_t num_clients, sim::Tick duration,
            const std::vector<std::vector<load::TraceRecord>> *replay)
{
    testbed::StarConfig config;
    config.clients = num_clients;
    testbed::StarWorld world(config);

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerApp server(server_api, {});
    server.start();

    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::vector<std::unique_ptr<load::OpenLoopClientApp>> clients;
    for (std::size_t i = 0; i < num_clients; ++i) {
        apis.push_back(world.makeClientApi(i));
        load::OpenLoopConfig ocfg;
        ocfg.peer = testbed::starServerIp();
        ocfg.connections = 2;
        ocfg.streamBase = static_cast<std::uint32_t>(i) * 64;
        ocfg.clientId = static_cast<std::uint32_t>(i);
        ocfg.seed = 0xABCD;
        ocfg.arrivals = load::ArrivalSpec::poisson(60'000.0);
        ocfg.valueSizes = load::SizeSpec::logNormalSize(512.0, 0.7, 64,
                                                        16384);
        ocfg.readFraction = 0.5;
        ocfg.startAt = sim::microsecondsToTicks(20);
        if (replay != nullptr)
            ocfg.replay = &(*replay)[i];
        clients.push_back(
            std::make_unique<load::OpenLoopClientApp>(*apis.back(), ocfg));
        clients.back()->start();
    }

    world.sim.runFor(duration);

    GenerationResult result;
    for (auto &client : clients) {
        result.perClient.push_back(client->recorded());
        result.completed.push_back(client->completed());
        result.valueBytesReceived.push_back(client->valueBytesReceived());
        result.valueBytesSent.push_back(client->valueBytesSent());
        for (const auto &r : client->recorded())
            result.merged.push_back(r);
    }
    std::sort(result.merged.begin(), result.merged.end(),
              [](const load::TraceRecord &a, const load::TraceRecord &b) {
                  return std::tie(a.timePs, a.client, a.conn, a.valueBytes) <
                         std::tie(b.timePs, b.client, b.conn, b.valueBytes);
              });
    return result;
}

TEST(Scenarios, TraceReplayReproducesFingerprintAndByteCounts)
{
    constexpr std::size_t num_clients = 2;
    const sim::Tick duration = sim::microsecondsToTicks(700);

    GenerationResult original = runScenario(num_clients, duration, nullptr);
    std::uint64_t original_fp = load::traceFingerprint(original.merged);
    ASSERT_GT(original.merged.size(), 0u);

    // Round-trip the merged trace through the file format, then split
    // it back per client for replay.
    std::string path = ::testing::TempDir() + "/f4t_scenario_replay.flows";
    load::TraceWriter writer;
    ASSERT_TRUE(writer.open(path, "replay-test", 0xABCD));
    for (const auto &r : original.merged)
        writer.append(r);
    ASSERT_TRUE(writer.close());

    auto parsed = load::readTrace(path);
    ASSERT_TRUE(parsed.has_value());
    ASSERT_EQ(parsed->records.size(), original.merged.size());

    std::vector<std::vector<load::TraceRecord>> per_client(num_clients);
    for (const auto &r : parsed->records)
        per_client[r.client].push_back(r);

    GenerationResult replayed =
        runScenario(num_clients, duration, &per_client);

    EXPECT_EQ(load::traceFingerprint(replayed.merged), original_fp)
        << "replay dispatched a different request stream";
    for (std::size_t i = 0; i < num_clients; ++i) {
        EXPECT_EQ(replayed.completed[i], original.completed[i])
            << "client " << i;
        EXPECT_EQ(replayed.valueBytesReceived[i],
                  original.valueBytesReceived[i])
            << "client " << i;
        EXPECT_EQ(replayed.valueBytesSent[i], original.valueBytesSent[i])
            << "client " << i;
    }
    std::remove(path.c_str());
}

TEST(Scenarios, ChurnLifecycleCompletesAndTearsDown)
{
    testbed::StarConfig config;
    config.clients = 1;
    testbed::StarWorld world(config);

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerApp server(server_api, {});
    server.start();

    auto api = world.makeClientApi(0);
    load::ChurnConfig ccfg;
    ccfg.peer = testbed::starServerIp();
    ccfg.seed = 0x5EED;
    ccfg.arrivals = load::ArrivalSpec::poisson(20'000.0);
    ccfg.requestBytes = 512;
    ccfg.maxOpens = 25;
    load::ChurnClientApp churn(*api, ccfg);
    churn.start();

    world.sim.runFor(sim::millisecondsToTicks(5));
    EXPECT_EQ(churn.opened(), 25u);
    EXPECT_EQ(churn.completed(), 25u);
    EXPECT_EQ(churn.failed(), 0u);

    // The active closer idles through TIME_WAIT (10 ms) before the
    // flow is recycled; only then does closedEvents catch up.
    world.sim.runFor(sim::millisecondsToTicks(15));
    EXPECT_EQ(churn.closedEvents(), 25u);
    EXPECT_EQ(statValue(world.sim, "client0.flowsClosed"), 25.0);
}

TEST(Scenarios, MultiSegmentTailLossRecoversViaRtoGoBackN)
{
    testbed::StarConfig config;
    config.clients = 1;
    // Wipe out the first request's initial flight on the
    // switch-to-server downlink. The client's 24 KB SET dispatches at
    // t = 150 us (startAt 50 us + one fixed 100 us gap) and its
    // ~10-segment first window occupies the downlink back-to-back
    // from roughly t = 151 us (1538 wire bytes = 123 ns per segment
    // at 100 Gb/s). Eight drop ticks at segment spacing kill the
    // flight almost entirely, so too few duplicate ACKs return for
    // fast retransmit and recovery MUST go through the RTO.
    for (int i = 0; i < 8; ++i)
        config.serverLinkFaults.dropAtTicks.push_back(
            sim::microsecondsToTicks(151.00 + 0.123 * i));
    // The schedule above applies to the data direction only; leave
    // the ACK path clean (the server sends so few ACKs that a shared
    // schedule would eat essentially all of them).
    config.serverLinkReverseFaults = net::FaultModel{};
    testbed::StarWorld world(config);

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerApp server(server_api, {});
    server.start();

    auto api = world.makeClientApi(0);
    load::OpenLoopConfig ocfg;
    ocfg.peer = testbed::starServerIp();
    ocfg.connections = 1;
    ocfg.clientId = 0;
    ocfg.seed = 0xF00D;
    ocfg.arrivals =
        load::ArrivalSpec::fixedEvery(sim::microsecondsToTicks(100));
    ocfg.valueSizes = load::SizeSpec::fixedSize(24 * 1024);
    ocfg.readFraction = 0.0; // SETs: client pushes the burst
    ocfg.maxRequests = 2;
    ocfg.startAt = sim::microsecondsToTicks(50);
    load::OpenLoopClientApp client(*api, ocfg);
    client.start();

    // Recovery needs one RTO (5 ms floor) plus a few RTTs of go-back-N
    // hole filling; 30 ms is an order of magnitude of slack. Before
    // the handshake RTT sample + post-RTO go-back-N fixes this wedged
    // for 200 ms+ (initial RTO, then one segment per backed-off RTO).
    world.sim.runFor(sim::millisecondsToTicks(30));

    EXPECT_EQ(client.completed(), 2u);
    EXPECT_EQ(server.sets(), 2u);
    EXPECT_EQ(client.resets(), 0u);
    // The drops really happened and really forced timeout recovery.
    EXPECT_GE(statValue(world.sim, "downlink.aToB.packetsDropped"), 4.0);
    EXPECT_GE(statValue(world.sim, "client0.timers.timeoutsFired"), 1.0);
    EXPECT_GE(
        statValue(world.sim, "client0.packetGenerator.retransmissions"),
        4.0);
}

} // namespace
} // namespace f4t
