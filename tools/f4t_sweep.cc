/**
 * @file
 * f4t_sweep: SET-style configuration auto-sweeper.
 *
 * Runs the perf_datapath echo-mesh workload across a small grid of the
 * knobs the hand-tuned defaults pin — link burst bound, burst hold,
 * FPC count, executor threads — and ranks every combination by host
 * throughput (simulated packets per wall second). The point is to keep
 * the defaults honest: after a hot-path change, one `f4t_sweep` run
 * says whether the tuned constants are still on the plateau or whether
 * the optimum moved.
 *
 * Output: a ranking table per scenario on stdout (optimum vs the
 * hand-tuned default marked), plus a JSON ranking file
 * (default SWEEP_datapath.json) for tracking.
 *
 * Wall-clock scores are machine-dependent by design — this tool is a
 * tuning aid, not a CI gate. Fingerprints are not checked here; the
 * burst knobs legitimately change host-event interleaving (the same
 * equivalence class as the batching toggle, pinned by the differential
 * fuzzers).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/testbed.hh"
#include "apps/testbed_parallel.hh"
#include "apps/workloads.hh"
#include "net/link.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

constexpr std::size_t threadsPerSide = 8;

struct Combo
{
    std::size_t maxBurst;
    unsigned holdNs;
    std::size_t numFpcs;
    std::size_t threads; ///< 1 = serial kernel, >1 = partitioned
};

struct ComboResult
{
    Combo combo{};
    double wallSeconds = 0;
    std::uint64_t simPackets = 0;
    std::uint64_t roundTrips = 0;

    double
    score() const
    {
        return wallSeconds > 0 ? simPackets / wallSeconds : 0;
    }
};

/** RAII: install a combo's link knobs, restore defaults on exit. */
struct BurstKnobs
{
    BurstKnobs(std::size_t max_burst, unsigned hold_ns)
    {
        net::setLinkMaxBurst(max_burst);
        net::setLinkMaxBurstHold(sim::nanosecondsToTicks(hold_ns));
    }
    ~BurstKnobs()
    {
        net::setLinkMaxBurst(net::DeliveryPort::maxBurst);
        net::setLinkMaxBurstHold(net::DeliveryPort::maxBurstHold);
    }
};

double
wallSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** The perf_datapath echo mesh under one knob combination. */
template <typename World, typename RunFor>
ComboResult
measure(World &world, sim::Simulation &simA, sim::Simulation *simB,
        const Combo &combo, std::size_t flows, sim::Tick warmup,
        sim::Tick window, RunFor &&run_for)
{
    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            simA, *world.runtimeA, i, world.cpuA->core(i)));
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            simB ? *simB : simA, *world.runtimeB, i,
            world.cpuB->core(i)));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis[server_apis.size() - 2], server_config));
        servers.back()->start();
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    run_for(sim::microsecondsToTicks(20));

    std::vector<std::unique_ptr<apps::F4tSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    std::size_t num_clients = 2 * threadsPerSide;
    std::size_t client_index = 0;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        std::size_t q = threadsPerSide + i;
        for (int side = 0; side < 2; ++side) {
            client_apis.push_back(std::make_unique<apps::F4tSocketApi>(
                side == 0 ? simA : (simB ? *simB : simA),
                side == 0 ? *world.runtimeA : *world.runtimeB, q,
                side == 0 ? world.cpuA->core(q) : world.cpuB->core(q)));
            apps::EchoClientConfig client_config;
            client_config.peer =
                side == 0 ? testbed::ipB() : testbed::ipA();
            client_config.flows =
                flows / num_clients +
                (client_index < flows % num_clients ? 1 : 0);
            ++client_index;
            client_config.connectSpacing = sim::nanosecondsToTicks(100);
            clients.push_back(std::make_unique<apps::EchoClientApp>(
                *client_apis.back(), nullptr, client_config));
            clients.back()->start();
        }
    }

    run_for(warmup);
    std::uint64_t packets_before = world.link->aToB().packetsSent() +
                                   world.link->bToA().packetsSent();
    std::uint64_t trips_before = 0;
    for (auto &client : clients)
        trips_before += client->roundTrips();

    auto start = std::chrono::steady_clock::now();
    run_for(window);

    ComboResult result;
    result.combo = combo;
    result.wallSeconds = wallSince(start);
    result.simPackets = world.link->aToB().packetsSent() +
                        world.link->bToA().packetsSent() - packets_before;
    std::uint64_t trips = 0;
    for (auto &client : clients)
        trips += client->roundTrips();
    result.roundTrips = trips - trips_before;
    return result;
}

ComboResult
runCombo(const Combo &combo, std::size_t flows, sim::Tick warmup,
         sim::Tick window)
{
    BurstKnobs knobs(combo.maxBurst, combo.holdNs);
    core::EngineConfig config;
    config.numFpcs = combo.numFpcs;
    config.flowsPerFpc = 128;
    config.maxFlows = 32768;
    config.tcpBufferBytes = 8 * 1024;

    if (combo.threads <= 1) {
        testbed::EnginePairWorld world(2 * threadsPerSide, config);
        return measure(world, world.sim, nullptr, combo, flows, warmup,
                       window,
                       [&](sim::Tick d) { world.sim.runFor(d); });
    }
    testbed::ParallelEnginePairWorld world(
        2 * threadsPerSide, config, {}, 100e9, {},
        sim::nanosecondsToTicks(500), combo.threads);
    return measure(world, world.simA, &world.simB, combo, flows, warmup,
                   window, [&](sim::Tick d) { world.runFor(d); });
}

std::string
comboName(const Combo &c)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "burst=%zu hold=%uns fpcs=%zu thr=%zu",
                  c.maxBurst, c.holdNs, c.numFpcs, c.threads);
    return buf;
}

bool
isDefault(const Combo &c)
{
    return c.maxBurst == net::DeliveryPort::maxBurst &&
           sim::nanosecondsToTicks(c.holdNs) ==
               net::DeliveryPort::maxBurstHold &&
           c.numFpcs == 8 && c.threads == 1;
}

void
writeJson(const std::string &path, std::size_t flows,
          const std::vector<ComboResult> &ranked)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "f4t_sweep: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"sweep_datapath\",\n"
                 "  \"schema\": 1,\n  \"flows\": %zu,\n"
                 "  \"ranking\": [\n",
                 flows);
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        const ComboResult &r = ranked[i];
        std::fprintf(out,
                     "    {\n"
                     "      \"max_burst\": %zu,\n"
                     "      \"burst_hold_ns\": %u,\n"
                     "      \"num_fpcs\": %zu,\n"
                     "      \"threads\": %zu,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"sim_packets\": %llu,\n"
                     "      \"round_trips\": %llu,\n"
                     "      \"sim_packets_per_wall_sec\": %.1f,\n"
                     "      \"is_default\": %s\n"
                     "    }%s\n",
                     r.combo.maxBurst, r.combo.holdNs, r.combo.numFpcs,
                     r.combo.threads, r.wallSeconds,
                     static_cast<unsigned long long>(r.simPackets),
                     static_cast<unsigned long long>(r.roundTrips),
                     r.score(), isDefault(r.combo) ? "true" : "false",
                     i + 1 < ranked.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    sim::setVerbose(false);

    std::size_t flows = 640;
    sim::Tick window_us = 100;
    std::string out_path = "SWEEP_datapath.json";
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
            flows = 160;
            window_us = 20;
        } else if (std::strcmp(argv[i], "--flows") == 0 && i + 1 < argc) {
            flows = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--flows=", 8) == 0) {
            flows = std::strtoull(argv[i] + 8, nullptr, 10);
        } else if (std::strcmp(argv[i], "--window-us") == 0 &&
                   i + 1 < argc) {
            window_us = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--quick] [--flows N] [--window-us N]"
                         " [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    // The grid: the hand-tuned default of every knob plus one step in
    // each direction. --quick trims to the corners that historically
    // move the score, so a ctest smoke entry stays cheap.
    std::vector<std::size_t> bursts = quick
                                          ? std::vector<std::size_t>{16, 32}
                                          : std::vector<std::size_t>{8, 16,
                                                                     32};
    std::vector<unsigned> holds =
        quick ? std::vector<unsigned>{600}
              : std::vector<unsigned>{300, 600, 1200};
    std::vector<std::size_t> fpcs = quick ? std::vector<std::size_t>{8}
                                          : std::vector<std::size_t>{4, 8};
    std::vector<std::size_t> threads_grid =
        quick ? std::vector<std::size_t>{1}
              : std::vector<std::size_t>{1, 4};

    sim::Tick warmup = sim::microsecondsToTicks(
        static_cast<sim::Tick>(200 + flows * 1.2));
    sim::Tick window = sim::microsecondsToTicks(window_us);

    std::printf("f4t_sweep: flows=%zu window=%lluus grid=%zu combos\n\n",
                flows, static_cast<unsigned long long>(window_us),
                bursts.size() * holds.size() * fpcs.size() *
                    threads_grid.size());

    std::vector<ComboResult> results;
    for (std::size_t t : threads_grid) {
        for (std::size_t f : fpcs) {
            for (unsigned h : holds) {
                for (std::size_t b : bursts) {
                    Combo combo{b, h, f, t};
                    ComboResult r = runCombo(combo, flows, warmup, window);
                    std::printf("  %-38s %9.1f pkt/s (%.3fs wall)\n",
                                comboName(combo).c_str(), r.score(),
                                r.wallSeconds);
                    results.push_back(r);
                }
            }
        }
    }

    std::stable_sort(results.begin(), results.end(),
                     [](const ComboResult &a, const ComboResult &b) {
                         return a.score() > b.score();
                     });

    const ComboResult *def = nullptr;
    for (const ComboResult &r : results)
        if (isDefault(r.combo))
            def = &r;

    std::printf("\noptimum: %s (%.1f pkt/s)\n",
                comboName(results.front().combo).c_str(),
                results.front().score());
    if (def && def != &results.front()) {
        std::printf("default: %s (%.1f pkt/s, %.2fx below optimum)\n",
                    comboName(def->combo).c_str(), def->score(),
                    def->score() > 0
                        ? results.front().score() / def->score()
                        : 0.0);
    } else if (def) {
        std::printf("default is the optimum\n");
    } else {
        std::printf("default combo not in this grid\n");
    }

    writeJson(out_path, flows, results);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
