#!/usr/bin/env python3
"""Offline analysis of f4t `.flows` request traces (TiNA-style).

The simulator's load layer can journal every dispatched request to a
text trace (src/load/trace.hh):

    # f4t-flows v1 scenario=<name> seed=<u64>
    # time_ps client conn op value_bytes
    12345 0 2 GET 2048
    12400 1 0 SET 512

This tool characterizes such a trace the way trace-driven network
analyses (TiNA and the flow-report tooling around FPGA TCP testbeds)
do: arrival-rate statistics, inter-arrival distribution, value-size
histograms, and burstiness via the index of dispersion for counts
(IDC) at several window scales. For a Poisson process the
inter-arrival CoV and the IDC are both ~1; IDC >> 1 flags bursty
arrivals, CoV << 1 flags paced/deterministic ones.

Usage:
    f4t_flows.py TRACE.flows [TRACE2.flows ...]   # human tables
    f4t_flows.py --json TRACE.flows               # JSON to stdout
    f4t_flows.py --selftest                       # no file needed

stdlib only — runs anywhere the repo's CI python3 does.
"""

import argparse
import json
import math
import random
import sys

PS_PER_SEC = 1_000_000_000_000


def parse_flows(lines, path="<stream>"):
    """Parse a .flows text stream into a dict; raises ValueError."""
    scenario = None
    seed = None
    records = []
    prev_time = -1
    for line_no, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            # Header: "# f4t-flows v1 scenario=<name> seed=<u64>"
            parts = line[1:].split()
            if parts[:2] == ["f4t-flows", "v1"]:
                for part in parts[2:]:
                    if part.startswith("scenario="):
                        scenario = part[len("scenario="):]
                    elif part.startswith("seed="):
                        seed = int(part[len("seed="):])
            continue
        fields = line.split()
        if len(fields) != 5:
            raise ValueError(f"{path}:{line_no}: expected 5 columns, "
                             f"got {len(fields)}")
        time_ps = int(fields[0])
        client = int(fields[1])
        conn = int(fields[2])
        op = fields[3]
        value_bytes = int(fields[4])
        if op not in ("GET", "SET"):
            raise ValueError(f"{path}:{line_no}: bad op {op!r}")
        if time_ps < prev_time:
            raise ValueError(f"{path}:{line_no}: time_ps decreased "
                             f"({time_ps} after {prev_time})")
        prev_time = time_ps
        records.append((time_ps, client, conn, op, value_bytes))
    if scenario is None:
        raise ValueError(f"{path}: missing '# f4t-flows v1' header")
    return {"scenario": scenario, "seed": seed, "records": records}


def percentile(sorted_values, pct):
    """Nearest-rank percentile over an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(0, math.ceil(pct / 100.0 * len(sorted_values)) - 1)
    return float(sorted_values[min(rank, len(sorted_values) - 1)])


def mean_cov(values):
    """(mean, coefficient of variation) of a sequence."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n < 2 or mean == 0:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var) / mean


def index_of_dispersion(times_ps, window_ps):
    """IDC: Var(counts per window) / Mean(counts per window).

    ~1 for Poisson arrivals at any window scale, >>1 for bursty
    (clustered) arrivals, <1 for paced/underdispersed ones.
    """
    if not times_ps or window_ps <= 0:
        return 0.0
    start = times_ps[0]
    span = times_ps[-1] - start
    n_windows = max(1, span // window_ps)
    counts = [0] * n_windows
    for t in times_ps:
        idx = min((t - start) // window_ps, n_windows - 1)
        counts[idx] += 1
    mean = sum(counts) / len(counts)
    if len(counts) < 2 or mean == 0:
        return 0.0
    var = sum((c - mean) ** 2 for c in counts) / (len(counts) - 1)
    return var / mean


def size_histogram(sizes):
    """Log2 buckets: {"256-511": count, ...}, ordered by bucket."""
    buckets = {}
    for s in sizes:
        b = 0 if s == 0 else s.bit_length() - 1
        buckets[b] = buckets.get(b, 0) + 1
    out = {}
    for b in sorted(buckets):
        lo = 0 if b == 0 else 1 << b
        hi = (1 << (b + 1)) - 1
        out[f"{lo}-{hi}"] = buckets[b]
    return out


def analyze(trace):
    """Compute the full analysis dict for one parsed trace."""
    records = trace["records"]
    times = [r[0] for r in records]
    sizes = [r[4] for r in records]
    gets = sum(1 for r in records if r[3] == "GET")
    sets = len(records) - gets
    clients = sorted({r[1] for r in records})

    span_ps = (times[-1] - times[0]) if len(times) >= 2 else 0
    span_s = span_ps / PS_PER_SEC
    rate = (len(records) - 1) / span_s if span_s > 0 else 0.0

    inter = [b - a for a, b in zip(times, times[1:])]
    inter_sorted = sorted(inter)
    ia_mean, ia_cov = mean_cov(inter)

    # Window scales spanning ~1/1000th to ~1/10th of the trace so the
    # IDC sees both sub-burst and multi-burst aggregation levels.
    idc = {}
    if span_ps > 0:
        for divisor in (1000, 100, 10):
            window = max(1, span_ps // divisor)
            idc[f"span/{divisor}"] = round(
                index_of_dispersion(times, window), 3)

    per_client = {}
    for c in clients:
        ctimes = [r[0] for r in records if r[1] == c]
        cspan = (ctimes[-1] - ctimes[0]) / PS_PER_SEC if len(
            ctimes) >= 2 else 0.0
        per_client[str(c)] = {
            "requests": len(ctimes),
            "rate_per_sec": round((len(ctimes) - 1) / cspan, 1)
            if cspan > 0 else 0.0,
        }

    return {
        "scenario": trace["scenario"],
        "seed": trace["seed"],
        "requests": len(records),
        "gets": gets,
        "sets": sets,
        "clients": len(clients),
        "span_seconds": round(span_s, 9),
        "arrival_rate_per_sec": round(rate, 1),
        "interarrival_us": {
            "mean": round(ia_mean / 1e6, 3),
            "cov": round(ia_cov, 3),
            "p50": round(percentile(inter_sorted, 50) / 1e6, 3),
            "p99": round(percentile(inter_sorted, 99) / 1e6, 3),
        },
        "burstiness_idc": idc,
        "value_bytes": {
            "mean": round(sum(sizes) / len(sizes), 1) if sizes else 0.0,
            "total": sum(sizes),
            "histogram": size_histogram(sizes),
        },
        "per_client": per_client,
    }


def print_report(result):
    print(f"scenario {result['scenario']} (seed {result['seed']}): "
          f"{result['requests']} requests from "
          f"{result['clients']} clients over "
          f"{result['span_seconds'] * 1e3:.3f} ms")
    print(f"  ops: {result['gets']} GET / {result['sets']} SET; "
          f"arrival rate {result['arrival_rate_per_sec']:.0f}/s")
    ia = result["interarrival_us"]
    print(f"  inter-arrival: mean {ia['mean']} us, CoV {ia['cov']}, "
          f"p50 {ia['p50']} us, p99 {ia['p99']} us")
    if result["burstiness_idc"]:
        idc = ", ".join(f"{k}={v}"
                        for k, v in result["burstiness_idc"].items())
        print(f"  burstiness (index of dispersion): {idc}")
    vb = result["value_bytes"]
    print(f"  value bytes: mean {vb['mean']}, total {vb['total']}")
    print(f"  {'size bucket':>14} {'count':>8}")
    for bucket, count in vb["histogram"].items():
        print(f"  {bucket:>14} {count:>8}")


def selftest():
    """Synthesize a Poisson trace and check the estimators on it."""
    rng = random.Random(0xF47)
    rate_per_sec = 200_000.0
    mean_gap_ps = PS_PER_SEC / rate_per_sec
    t = 0
    lines = ["# f4t-flows v1 scenario=selftest seed=3911",
             "# time_ps client conn op value_bytes"]
    n = 20_000
    for i in range(n):
        t += max(1, int(rng.expovariate(1.0) * mean_gap_ps))
        op = "GET" if rng.random() < 0.9 else "SET"
        size = 1 << rng.randint(6, 14)
        lines.append(f"{t} {i % 8} {i % 4} {op} {size}")

    result = analyze(parse_flows(lines, "<selftest>"))

    def check(name, ok):
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
        return ok

    rate = result["arrival_rate_per_sec"]
    cov = result["interarrival_us"]["cov"]
    idc_fine = result["burstiness_idc"]["span/1000"]
    passed = True
    passed &= check("request count", result["requests"] == n)
    passed &= check("GET share ~90%",
                    0.85 < result["gets"] / n < 0.95)
    passed &= check(f"rate {rate:.0f}/s within 5% of {rate_per_sec:.0f}",
                    abs(rate - rate_per_sec) / rate_per_sec < 0.05)
    passed &= check(f"Poisson inter-arrival CoV {cov} ~ 1",
                    0.9 < cov < 1.1)
    passed &= check(f"Poisson IDC {idc_fine} ~ 1",
                    0.7 < idc_fine < 1.4)
    passed &= check("histogram covers all requests",
                    sum(result["value_bytes"]["histogram"].values()) == n)

    # A deterministic (fixed-gap) trace must read as underdispersed.
    fixed = ["# f4t-flows v1 scenario=fixed seed=1",
             "# time_ps client conn op value_bytes"]
    fixed += [f"{(i + 1) * 5_000_000} 0 0 GET 1024" for i in range(2000)]
    fres = analyze(parse_flows(fixed, "<fixed>"))
    passed &= check("fixed-gap CoV ~ 0",
                    fres["interarrival_us"]["cov"] < 0.01)
    passed &= check("fixed-gap IDC < 0.2",
                    fres["burstiness_idc"]["span/1000"] < 0.2)

    print("selftest:", "PASS" if passed else "FAIL")
    return 0 if passed else 1


def main(argv):
    parser = argparse.ArgumentParser(
        description="Analyze f4t .flows request traces")
    parser.add_argument("traces", nargs="*", help=".flows files")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of tables")
    parser.add_argument("--selftest", action="store_true",
                        help="run estimator checks on synthetic traces")
    args = parser.parse_args(argv)

    if args.selftest:
        return selftest()
    if not args.traces:
        parser.error("no trace files given (or use --selftest)")

    results = []
    for path in args.traces:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                trace = parse_flows(fh, path)
        except (OSError, ValueError) as err:
            print(f"f4t_flows: {err}", file=sys.stderr)
            return 1
        if not trace["records"]:
            print(f"f4t_flows: {path}: no records", file=sys.stderr)
            return 1
        results.append(analyze(trace))

    if args.json:
        json.dump(results[0] if len(results) == 1 else results,
                  sys.stdout, indent=2)
        print()
    else:
        for i, result in enumerate(results):
            if i:
                print()
            print_report(result)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
