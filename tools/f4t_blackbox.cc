/**
 * @file
 * Decoder for flight-recorder dumps (.f4tfr): merges the per-thread
 * rings into one tick-ordered timeline and summarizes activity per
 * module and per event kind, with a per-flow drill-down.
 *
 *   f4t_blackbox dump.f4tfr             # summary + last 50 events
 *   f4t_blackbox --last 200 dump.f4tfr  # longer tail
 *   f4t_blackbox --flow 0x1c2d3e4f d.f4tfr   # one flow's records only
 *   f4t_blackbox --selftest             # synthesize, dump, re-decode
 *
 * Multiple dumps decode in sequence (the fuzz harness writes one per
 * world, side by side). The decoding core lives in
 * sim/flight_recorder.{hh,cc} so tests can round-trip without
 * spawning this binary.
 */

#include "sim/flight_recorder.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace f4t::sim;

void
printDump(const std::string &path, std::size_t last_k,
          bool flow_set, std::uint32_t flow)
{
    fr::Snapshot snap;
    std::string reason;
    std::string error;
    if (!fr::readDump(path, snap, reason, error)) {
        std::fprintf(stderr, "f4t_blackbox: %s\n", error.c_str());
        std::exit(1);
    }

    std::printf("== %s ==\n", path.c_str());
    std::printf("reason: %s\n", reason.c_str());
    std::size_t total = 0;
    std::uint64_t written = 0;
    for (const auto &ring : snap.rings) {
        total += ring.records.size();
        written += ring.totalWritten;
    }
    std::printf("rings: %zu (%zu records retained of %llu written)\n",
                snap.rings.size(), total,
                static_cast<unsigned long long>(written));

    std::vector<fr::TimelineEntry> timeline = fr::mergeTimeline(snap);

    // Per-module and per-kind activity over the retained window.
    std::map<std::uint16_t, std::uint64_t> by_module;
    std::map<std::uint8_t, std::uint64_t> by_kind;
    for (const fr::TimelineEntry &entry : timeline) {
        ++by_module[entry.rec.module];
        ++by_kind[entry.rec.kind];
    }
    std::printf("\nper-module counts:\n");
    for (const auto &[module, count] : by_module) {
        const char *name = module < snap.modules.size()
                               ? snap.modules[module].c_str()
                               : "?";
        std::printf("  %-28s %llu\n", name,
                    static_cast<unsigned long long>(count));
    }
    std::printf("per-kind counts:\n");
    for (const auto &[kind, count] : by_kind) {
        std::printf("  %-28s %llu\n",
                    fr::toString(static_cast<fr::Kind>(kind)),
                    static_cast<unsigned long long>(count));
    }

    if (flow_set) {
        std::erase_if(timeline, [flow](const fr::TimelineEntry &e) {
            return e.rec.flow != flow;
        });
        std::printf("\nflow %08x drill-down: %zu records\n", flow,
                    timeline.size());
    }

    std::size_t start =
        timeline.size() > last_k ? timeline.size() - last_k : 0;
    std::printf("\nlast %zu events (tick-ordered):\n",
                timeline.size() - start);
    for (std::size_t i = start; i < timeline.size(); ++i)
        std::printf("  %s\n",
                    fr::formatEntry(snap, timeline[i]).c_str());
    std::printf("\n");
}

/** Synthesize rings on two threads, dump, re-decode, verify. */
int
selftest()
{
    fr::setEnabled(true);
    std::uint16_t alpha = fr::internModule("selftest.alpha");
    std::uint16_t beta = fr::internModule("selftest.beta");
    fr::clear();

    // Main thread wraps its ring; the second thread interleaves ticks.
    for (std::uint64_t i = 0; i < fr::ringCapacity + 100; ++i)
        fr::record(fr::Kind::mark, 2 * i, alpha, 7, i);
    std::thread([beta] {
        for (std::uint64_t i = 0; i < 500; ++i)
            fr::record(fr::Kind::evDispatch, 2 * i + 1, beta, 9, i);
    }).join();

    const char *dir = std::getenv("TMPDIR");
    std::string path = std::string(dir && dir[0] ? dir : "/tmp") +
                       "/f4t_blackbox_selftest.f4tfr";
    if (!fr::dumpToFile(path, "selftest")) {
        std::fprintf(stderr, "selftest: dump failed\n");
        return 1;
    }

    fr::Snapshot snap;
    std::string reason;
    std::string error;
    if (!fr::readDump(path, snap, reason, error)) {
        std::fprintf(stderr, "selftest: %s\n", error.c_str());
        return 1;
    }
    if (reason != "selftest") {
        std::fprintf(stderr, "selftest: reason mismatch '%s'\n",
                     reason.c_str());
        return 1;
    }
    std::vector<fr::TimelineEntry> timeline = fr::mergeTimeline(snap);
    std::uint64_t last = 0;
    std::size_t alpha_count = 0;
    std::size_t beta_count = 0;
    for (const fr::TimelineEntry &entry : timeline) {
        if (entry.rec.tick < last) {
            std::fprintf(stderr, "selftest: timeline not tick-sorted\n");
            return 1;
        }
        last = entry.rec.tick;
        alpha_count += entry.rec.module == alpha ? 1 : 0;
        beta_count += entry.rec.module == beta ? 1 : 0;
    }
    if (alpha_count != fr::ringCapacity || beta_count != 500) {
        std::fprintf(stderr,
                     "selftest: retained %zu alpha / %zu beta records "
                     "(want %zu / 500)\n",
                     alpha_count, beta_count, fr::ringCapacity);
        return 1;
    }
    printDump(path, 5, true, 9);
    std::remove(path.c_str());
    std::printf("selftest ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t last_k = 50;
    bool flow_set = false;
    std::uint32_t flow = 0;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--selftest") == 0) {
            return selftest();
        } else if (std::strcmp(argv[i], "--last") == 0 && i + 1 < argc) {
            last_k = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 0));
        } else if (std::strcmp(argv[i], "--flow") == 0 && i + 1 < argc) {
            flow_set = true;
            flow = static_cast<std::uint32_t>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr,
                         "usage: f4t_blackbox [--last K] [--flow N] "
                         "[--selftest] dump.f4tfr...\n");
            return 2;
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.empty()) {
        std::fprintf(stderr,
                     "usage: f4t_blackbox [--last K] [--flow N] "
                     "[--selftest] dump.f4tfr...\n");
        return 2;
    }
    for (const std::string &path : paths)
        printDump(path, last_k, flow_set, flow);
    return 0;
}
