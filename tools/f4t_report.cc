/**
 * f4t_report — compare benchmark result files and render a
 * perf-regression report.
 *
 *   f4t_report [options] BASELINE.json CANDIDATE.json [MORE.json ...]
 *
 * Every file after the first is compared against the baseline. Inputs
 * are BENCH_*.json files from the bench/ harnesses or per-stage
 * latency files from the tracing reporters; the two kinds cannot be
 * mixed in one invocation. Run metadata (preset, feature gates) must
 * match between the baseline and each candidate — measurements from
 * differently-configured builds are not comparable and the tool
 * refuses rather than report a bogus verdict (--allow-mismatch
 * downgrades the refusal to a warning).
 *
 * Exit status: 0 when no metric regressed beyond the noise band,
 * 1 when at least one did, 2 on usage / parse / metadata errors.
 */

#include "obs/regression.hh"
#include "obs/run_meta.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--noise PCT] [--allow-mismatch] BASELINE CANDIDATE...\n"
        "  --noise PCT        noise band in percent (default 10)\n"
        "  --allow-mismatch   compare even when run metadata differs\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    double noise_band = 0.10;
    bool allow_mismatch = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--noise") == 0 && i + 1 < argc) {
            noise_band = std::atof(argv[++i]) / 100.0;
            if (noise_band < 0.0) {
                std::fprintf(stderr, "f4t_report: bad --noise value\n");
                return 2;
            }
        } else if (std::strcmp(argv[i], "--allow-mismatch") == 0) {
            allow_mismatch = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            return usage(argv[0]);
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "f4t_report: unknown option '%s'\n",
                         argv[i]);
            return usage(argv[0]);
        } else {
            paths.emplace_back(argv[i]);
        }
    }
    if (paths.size() < 2)
        return usage(argv[0]);

    std::vector<f4t::obs::ReportDoc> docs;
    for (const std::string &path : paths) {
        std::string error;
        auto doc = f4t::obs::loadReportDoc(path, &error);
        if (!doc) {
            std::fprintf(stderr, "f4t_report: %s\n", error.c_str());
            return 2;
        }
        docs.push_back(std::move(*doc));
    }

    const f4t::obs::ReportDoc &baseline = docs.front();
    bool any_regression = false;
    for (std::size_t i = 1; i < docs.size(); ++i) {
        const f4t::obs::ReportDoc &candidate = docs[i];
        if (candidate.kind != baseline.kind) {
            std::fprintf(stderr,
                         "f4t_report: cannot compare '%s' (%s) against "
                         "'%s' (%s): different result kinds\n",
                         candidate.path.c_str(), candidate.kind.c_str(),
                         baseline.path.c_str(), baseline.kind.c_str());
            return 2;
        }
        std::string why;
        if (!f4t::obs::comparableRuns(baseline.meta, candidate.meta,
                                      &why)) {
            if (!allow_mismatch) {
                std::fprintf(stderr,
                             "f4t_report: refusing to compare '%s' "
                             "against '%s': %s (use --allow-mismatch to "
                             "override)\n",
                             candidate.path.c_str(),
                             baseline.path.c_str(), why.c_str());
                return 2;
            }
            std::fprintf(stderr, "f4t_report: warning: %s\n",
                         why.c_str());
        }

        f4t::obs::RegressionReport report =
            f4t::obs::compareDocs(baseline, candidate, noise_band);
        f4t::obs::printReport(stdout, baseline, candidate, report,
                              noise_band);
        if (report.comparisons.empty()) {
            std::fprintf(stderr,
                         "f4t_report: no comparable metrics between "
                         "'%s' and '%s'\n",
                         baseline.path.c_str(), candidate.path.c_str());
            return 2;
        }
        any_regression = any_regression || report.anyRegression;
        if (i + 1 < docs.size())
            std::fprintf(stdout, "\n");
    }
    return any_regression ? 1 : 0;
}
