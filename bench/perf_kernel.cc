/**
 * @file
 * Wall-clock performance harness for the simulation kernel itself.
 *
 * Unlike the per-figure binaries — which report *simulated* rates —
 * this harness measures how fast the host machine chews through the
 * event queue, so every PR has a perf trajectory to compare against:
 *
 *  - "event_rate": the Fig. 15 microbenchmark path (an FPC saturated
 *    with synthetic userSend events), dominated by clock-tick events
 *    and callback scheduling.
 *  - "bulk_transfer": a full two-engine bulk transfer over a 100 Gbps
 *    link (the Fig. 8a path), exercising the packet generator, link
 *    delivery callbacks, payload DMA, and the RX parser.
 *
 * Output: a human-readable summary plus a JSON file (default
 * BENCH_kernel.json) with schema:
 *
 *   { "bench": "kernel", "schema": 5,
 *     "meta": { "git_sha", "preset", "trace_enabled", "checks_enabled",
 *               "profile_enabled", "profiled",
 *               "timestamp" },   // run identity, see obs/run_meta.hh
 *     "scenarios": [ { "name": ...,
 *                      "wall_seconds": ...,
 *                      "host_events_per_sec": ...,
 *                      "events_processed": ...,
 *                      "sim_ticks": ...,
 *                      "sim_ticks_per_wall_sec": ...,
 *                      "sim_packets": ...,          // bulk only
 *                      "sim_packets_per_wall_sec": ...,
 *                      "profile": { ... },          // --profile only
 *                      "fingerprint": ... } ] }
 *
 * Schema 5 (shared by all BENCH writers): run meta gains the profiler
 * gate fields and scenarios may carry a per-category wall-clock
 * "profile" member (obs/profiler.hh) when measured under --profile.
 *
 * "fingerprint" is a determinism check: a stable hash of simulated
 * results (tick counts, stats counters) that must not change when the
 * kernel is optimised — only wall_seconds / *_per_sec may move.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "baseline/stalling_engine.hh"
#include "bench_util.hh"
#include "core/fpc.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

struct ScenarioResult
{
    std::string name;
    double wallSeconds = 0;
    std::uint64_t eventsProcessed = 0;
    sim::Tick simTicks = 0;
    std::uint64_t simPackets = 0;
    std::uint64_t fingerprint = 0;
    bool profiled = false;
    obs::ProfileReport profile;

    double
    hostEventsPerSec() const
    {
        return wallSeconds > 0 ? eventsProcessed / wallSeconds : 0;
    }

    double
    simPacketsPerWallSec() const
    {
        return wallSeconds > 0 ? simPackets / wallSeconds : 0;
    }

    /** Simulated-time throughput: how much simulated time one wall
     *  second buys — the kernel-speed metric that is meaningful for
     *  every scenario, packets or not, and CI-gated per schema 5. */
    double
    simTicksPerWallSec() const
    {
        return wallSeconds > 0 ? static_cast<double>(simTicks) / wallSeconds
                               : 0;
    }
};

/** Profile delta over the measured interval, when --profile is on. */
void
attachProfile(ScenarioResult &result, const sim::prof::Snapshot &before)
{
    if (!bench::Obs::profiling())
        return;
    result.profiled = true;
    result.profile = obs::makeProfileReport(sim::prof::since(before),
                                            result.wallSeconds);
}

/** FNV-1a over simulated quantities: stable across kernel rewrites. */
struct Fingerprint
{
    std::uint64_t state = 1469598103934665603ULL;

    void
    mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (i * 8)) & 0xff;
            state *= 1099511628211ULL;
        }
    }
};

double
wallSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * The Fig. 15 event-rate path: one FPC with 16 synthetic established
 * flows, input queue kept saturated with userSend events.
 */
ScenarioResult
runEventRate(sim::Tick window)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    core::FpcConfig config;
    config.slots = 128;
    config.inputFifoDepth = 128;
    config.fpuLatencyOverride = 14; // NewReno pass length
    core::Fpc fpc(sim, "fpc", sim.engineClock(), program, config);

    constexpr std::size_t flows = 16;
    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        core::MigratingTcb fresh;
        tcp::Tcb &tcb = fresh.tcb;
        tcb.flowId = flow;
        tcb.iss = tcp::FpuProgram::initialSequence(flow);
        tcb.sndUna = tcb.iss + 1;
        tcb.sndUnaProcessed = tcb.sndUna;
        tcb.sndNxt = tcb.iss + 1;
        tcb.req = tcb.iss + 1;
        tcb.lastAckNotified = tcb.iss + 1;
        tcb.state = tcp::ConnState::established;
        tcb.sndWnd = 1u << 30;
        tcb.cwnd = 1u << 30;
        tcb.ssthresh = 1u << 30;
        tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
        tcb.rcvNxt = 1;
        tcb.userRead = 1;
        tcb.lastAckSent = 1;
        tcb.lastRcvNotified = 1;
        while (!fpc.canAcceptTcb())
            sim.runFor(sim.engineClock().period());
        fpc.installTcb(fresh);
    }

    std::vector<std::uint32_t> offsets(flows, 0);
    sim.runFor(sim::microsecondsToTicks(1)); // settle installs

    sim::prof::Snapshot prof_before = sim::prof::capture();
    auto start = std::chrono::steady_clock::now();
    std::uint64_t injected = 0;
    sim::Tick end = sim.now() + window;
    while (sim.now() < end) {
        {
            // Injection runs outside the event loop; attribute it so
            // the category sum still covers the measured wall time.
            sim::prof::Scope inject_scope(sim::prof::Cat::harness);
            while (fpc.inputBacklog() < 64) {
                tcp::FlowId flow =
                    static_cast<tcp::FlowId>(injected % flows);
                offsets[flow] += 16;
                tcp::TcpEvent ev;
                ev.flow = flow;
                ev.type = tcp::TcpEventType::userSend;
                ev.pointer = tcp::FpuProgram::initialSequence(flow) + 1 +
                             offsets[flow];
                fpc.enqueueEvent(ev);
                ++injected;
            }
        }
        sim.runFor(sim.engineClock().period() * 16);
    }

    ScenarioResult result;
    result.name = "event_rate";
    result.wallSeconds = wallSince(start);
    attachProfile(result, prof_before);
    result.eventsProcessed = sim.queue().eventsProcessed();
    result.simTicks = sim.now();
    result.simPackets = 0;

    Fingerprint fp;
    fp.mix(sim.now());
    fp.mix(sim.queue().eventsProcessed());
    fp.mix(fpc.eventsHandled());
    fp.mix(injected);
    result.fingerprint = fp.state;
    return result;
}

/**
 * The Fig. 8a path: two FtEngines cabled at 100 Gbps, one bulk sender
 * streaming into one sink, full payload DMA on both sides.
 */
ScenarioResult
runBulkTransfer(sim::Tick window)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 4096;
    testbed::EnginePairWorld world(1, config);

    apps::F4tSocketApi sink_api(world.sim, *world.runtimeB, 0,
                                world.cpuB->core(0));
    apps::BulkSinkConfig sink_config;
    sink_config.port = 5001;
    apps::BulkSinkApp sink(sink_api, sink_config);
    sink.start();

    apps::F4tSocketApi send_api(world.sim, *world.runtimeA, 0,
                                world.cpuA->core(0));
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 128;
    apps::BulkSenderApp sender(send_api, sender_config);
    sender.start();

    sim::prof::Snapshot prof_before = sim::prof::capture();
    auto start = std::chrono::steady_clock::now();
    world.sim.runFor(window);

    ScenarioResult result;
    result.name = "bulk_transfer";
    result.wallSeconds = wallSince(start);
    attachProfile(result, prof_before);
    result.eventsProcessed = world.sim.queue().eventsProcessed();
    result.simTicks = world.sim.now();
    result.simPackets = world.link->aToB().packetsSent() +
                        world.link->bToA().packetsSent();

    Fingerprint fp;
    fp.mix(world.sim.now());
    fp.mix(world.sim.queue().eventsProcessed());
    fp.mix(result.simPackets);
    fp.mix(sink.bytesReceived());
    fp.mix(world.link->aToB().bytesSent());
    fp.mix(world.link->bToA().bytesSent());
    result.fingerprint = fp.state;
    return result;
}

void
writeJson(const std::string &path, const std::vector<ScenarioResult> &results)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "perf_kernel: cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(out, "{\n  \"bench\": \"kernel\",\n  \"schema\": 5,\n");
    bench::writeRunMeta(out, 2);
    std::fprintf(out, ",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::fprintf(out,
                     "    {\n"
                     "      \"name\": \"%s\",\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"host_events_per_sec\": %.1f,\n"
                     "      \"events_processed\": %llu,\n"
                     "      \"sim_ticks\": %llu,\n"
                     "      \"sim_ticks_per_wall_sec\": %.1f,\n"
                     "      \"sim_packets\": %llu,\n"
                     "      \"sim_packets_per_wall_sec\": %.1f,\n",
                     r.name.c_str(), r.wallSeconds, r.hostEventsPerSec(),
                     static_cast<unsigned long long>(r.eventsProcessed),
                     static_cast<unsigned long long>(r.simTicks),
                     r.simTicksPerWallSec(),
                     static_cast<unsigned long long>(r.simPackets),
                     r.simPacketsPerWallSec());
        if (r.profiled) {
            obs::writeProfileJson(out, r.profile, 6);
            std::fprintf(out, ",\n");
        }
        std::fprintf(out,
                     "      \"fingerprint\": \"%016llx\"\n"
                     "    }%s\n",
                     static_cast<unsigned long long>(r.fingerprint),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    sim::setVerbose(false);
    bench::Obs::install(argc, argv); // strips capture flags from argv

    // --smoke: tiny windows so a ctest entry keeps the harness building
    // and running without spending real time. --window-us N for custom
    // measurement windows; --out FILE for the JSON destination.
    sim::Tick window_us = 400;
    std::string out_path = "BENCH_kernel.json";
    std::string only;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            window_us = 10;
        } else if (std::strcmp(argv[i], "--window-us") == 0 && i + 1 < argc) {
            window_us = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--window-us N] [--out FILE]"
                         " [--only SCENARIO]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("perf_kernel",
                  "wall-clock throughput of the simulation kernel");

    std::vector<ScenarioResult> results;
    if (only.empty() || only == "event_rate")
        results.push_back(runEventRate(sim::microsecondsToTicks(window_us)));
    if (only.empty() || only == "bulk_transfer")
        results.push_back(runBulkTransfer(sim::microsecondsToTicks(window_us)));

    bench::Table table({"scenario", "wall s", "events", "Mev/s (host)",
                        "sim pkts", "kpkt/s (host)", "fingerprint"});
    for (const ScenarioResult &r : results) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(r.fingerprint));
        table.addRow({r.name, bench::fmt("%.3f", r.wallSeconds),
                      std::to_string(r.eventsProcessed),
                      bench::fmt("%.2f", r.hostEventsPerSec() / 1e6),
                      std::to_string(r.simPackets),
                      bench::fmt("%.1f", r.simPacketsPerWallSec() / 1e3),
                      fp});
    }
    table.print();

    if (bench::Obs::profiling()) {
        std::printf("\nper-scenario wall-clock cost attribution:\n");
        for (const ScenarioResult &r : results) {
            std::printf("%s:\n", r.name.c_str());
            obs::printProfileTable(stdout, r.profile);
        }
    }

    writeJson(out_path, results);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
