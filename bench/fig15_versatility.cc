/**
 * @file
 * Figure 15: event processing rate of Baseline and F4T with various
 * FPU processing latencies (the versatility claim, Section 5.4).
 *
 * The baseline (a Limago-style w-RMW design at 322 MHz) stalls for
 * atomicity, so longer TCP algorithms cut its rate; F4T's FPC absorbs
 * one event per two cycles at 250 MHz — 125 M events/s per FPC —
 * regardless of the FPU pipeline depth.
 */

#include "baseline/stalling_engine.hh"
#include "bench_util.hh"
#include "core/fpc.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

/** Saturating driver: keeps an engine's input queue topped up. */
template <typename InjectFn, typename BacklogFn>
std::uint64_t
drive(sim::Simulation &sim, sim::Tick window, InjectFn inject,
      BacklogFn backlog)
{
    std::uint64_t injected = 0;
    sim::Tick end = sim.now() + window;
    while (sim.now() < end) {
        while (backlog() < 64) {
            inject(injected);
            ++injected;
        }
        sim.runFor(sim.engineClock().period() * 16);
    }
    return injected;
}

double
measureF4t(unsigned latency)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    core::FpcConfig config;
    config.slots = 128;
    config.inputFifoDepth = 128;
    config.fpuLatencyOverride = latency;
    core::Fpc fpc(sim, "fpc", sim.engineClock(), program, config);

    // 16 synthetic established flows (the multi-flow pattern).
    constexpr std::size_t flows = 16;
    for (tcp::FlowId flow = 0; flow < flows; ++flow) {
        core::MigratingTcb fresh;
        tcp::Tcb &tcb = fresh.tcb;
        tcb.flowId = flow;
        tcb.iss = tcp::FpuProgram::initialSequence(flow);
        tcb.sndUna = tcb.iss + 1;
        tcb.sndUnaProcessed = tcb.sndUna;
        tcb.sndNxt = tcb.iss + 1;
        tcb.req = tcb.iss + 1;
        tcb.lastAckNotified = tcb.iss + 1;
        tcb.state = tcp::ConnState::established;
        tcb.sndWnd = 1u << 30;
        tcb.cwnd = 1u << 30;
        tcb.ssthresh = 1u << 30;
        tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
        tcb.rcvNxt = 1;
        tcb.userRead = 1;
        tcb.lastAckSent = 1;
        tcb.lastRcvNotified = 1;
        while (!fpc.canAcceptTcb())
            sim.runFor(sim.engineClock().period());
        fpc.installTcb(fresh);
    }

    std::vector<std::uint32_t> offsets(flows, 0);
    sim::Tick window = sim::microsecondsToTicks(40);
    sim.runFor(sim::microsecondsToTicks(1)); // settle installs

    std::uint64_t before = fpc.eventsHandled();
    sim::Tick start = sim.now();
    drive(
        sim, window,
        [&](std::uint64_t n) {
            tcp::FlowId flow = static_cast<tcp::FlowId>(n % flows);
            offsets[flow] += 16;
            tcp::TcpEvent ev;
            ev.flow = flow;
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer = tcp::FpuProgram::initialSequence(flow) + 1 +
                         offsets[flow];
            fpc.enqueueEvent(ev);
        },
        [&] { return fpc.inputBacklog(); });
    sim::Tick elapsed = sim.now() - start;
    return (fpc.eventsHandled() - before) /
           sim::ticksToSeconds(elapsed) / 1e6;
}

double
measureBaseline(unsigned latency)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config;
    config.fpuLatency = latency;
    baseline::StallingEngine engine(sim, "baseline", sim.netClock(),
                                    program, config);
    constexpr std::size_t flows = 16;
    std::vector<tcp::FlowId> ids;
    std::vector<std::uint32_t> offsets(flows, 0);
    for (std::size_t i = 0; i < flows; ++i)
        ids.push_back(engine.createSyntheticFlow());

    sim::Tick window = sim::microsecondsToTicks(40);
    std::uint64_t before = engine.eventsProcessed();
    sim::Tick start = sim.now();
    drive(
        sim, window,
        [&](std::uint64_t n) {
            std::size_t i = n % flows;
            offsets[i] += 16;
            tcp::TcpEvent ev;
            ev.flow = ids[i];
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer = tcp::FpuProgram::initialSequence(ids[i]) + 1 +
                         offsets[i];
            engine.injectEvent(ev);
        },
        [&] { return engine.backlog(); });
    sim::Tick elapsed = sim.now() - start;
    return (engine.eventsProcessed() - before) /
           sim::ticksToSeconds(elapsed) / 1e6;
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 15",
                  "event processing rate vs FPU processing latency");

    bench::Table table({"latency (cycles)", "Baseline (Mev/s)",
                        "Baseline expected 322/(16+L)", "F4T (Mev/s)",
                        "F4T expected 125"});
    for (unsigned latency : {1u, 10u, 14u, 20u, 41u, 60u, 68u, 80u, 100u}) {
        double base = measureBaseline(latency);
        double f4t_rate = measureF4t(latency);
        table.addRow({std::to_string(latency), bench::fmt("%.1f", base),
                      bench::fmt("%.1f", 322.0 / (16 + latency)),
                      bench::fmt("%.1f", f4t_rate), "125.0"});
    }
    table.print();

    std::printf(
        "\nShape check (paper): the baseline's rate collapses as the\n"
        "algorithm gets longer, while F4T stays flat at 125 M events/s\n"
        "per FPC — NewReno (14), CUBIC (41), and Vegas (68) all run at\n"
        "the same maximum rate.\n");
    return 0;
}
