/**
 * @file
 * Table 2: target situations of F4T's solutions, with live evidence
 * from small simulations of each mechanism.
 */

#include "bench_util.hh"
#include "core/engine.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

struct Evidence
{
    std::uint64_t coalesced = 0;
    std::uint64_t routed = 0;
    std::uint64_t rebalances = 0;
    std::uint64_t migrations = 0;
};

Evidence
exercise()
{
    sim::Simulation sim;
    core::EngineConfig config;
    config.numFpcs = 4;
    config.flowsPerFpc = 4;
    config.maxFlows = 256;
    config.payloadDma = false;
    core::FtEngine engine(sim, "engine", config);
    engine.setTransmit([](net::Packet &&) {});

    // 32 flows over 16 FPC slots: swaps; bulk bursts: coalescing;
    // hammering two co-resident flows: rebalancing.
    std::vector<tcp::FlowId> flows;
    std::vector<std::uint32_t> offsets(32, 0);
    for (int i = 0; i < 32; ++i)
        flows.push_back(engine.createSyntheticFlow());
    sim.runFor(sim::microsecondsToTicks(5));

    for (int round = 0; round < 200; ++round) {
        for (std::size_t i = 0; i < flows.size(); ++i) {
            std::size_t count = (i < 2) ? 8 : 1; // skewed load
            for (std::size_t k = 0; k < count; ++k) {
                offsets[i] += 8;
                tcp::TcpEvent ev;
                ev.flow = flows[i];
                ev.type = tcp::TcpEventType::userSend;
                ev.pointer = core::FtEngine::txStart(flows[i]) +
                             offsets[i];
                engine.injectEvent(ev);
            }
        }
        sim.runFor(sim::microsecondsToTicks(2));
    }
    sim.runFor(sim::microsecondsToTicks(50));

    Evidence evidence;
    evidence.coalesced = engine.scheduler().eventsCoalesced();
    evidence.routed = engine.scheduler().eventsRouted();
    evidence.rebalances = engine.scheduler().rebalances();
    evidence.migrations = engine.scheduler().migrations();
    return evidence;
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Table 2", "target situations of F4T's solutions");

    Evidence evidence = exercise();

    bench::Table table({"Target situation", "F4T's solution",
                        "live evidence (mixed workload)"});
    table.addRow({"All situations", "FPC architecture",
                  std::to_string(evidence.routed) + " events routed, "
                  "0 RMW stalls by construction"});
    table.addRow({"Events of the same flow", "Scheduler coalescing",
                  std::to_string(evidence.coalesced) +
                      " events coalesced before routing"});
    table.addRow({"Events of different flows", "Parallel FPCs",
                  "4 FPCs processed the routed events concurrently"});
    table.addRow({"Event load imbalance", "Scheduler FPC migration",
                  std::to_string(evidence.rebalances) +
                      " rebalances, " +
                      std::to_string(evidence.migrations) +
                      " total migrations"});
    table.print();

    std::printf("\nQuantified per-mechanism gains are in "
                "bench/fig16b_ablation.\n");
    return 0;
}
