/**
 * @file
 * Figure 13: request processing rate of the 128 B echoing benchmark
 * versus the number of concurrent flows — the connectivity experiment
 * (Section 5.3).
 *
 * Every flow ping-pongs one message at a time, so the TCB access
 * pattern has minimal temporal locality: beyond the 1024 flows the
 * FPCs hold, every request forces TCB migration through the memory
 * hierarchy. DDR4's serialized random accesses throttle the rate;
 * HBM's pseudo-channels do not, leaving the PCIe/host path as the
 * ceiling. Linux supports all counts but at a low rate. (TONIC's SRAM
 * bound of 1 K flows is the comparison point that cannot run at all
 * past 1 K.)
 */

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"
#include "sim/config.hh"

namespace f4t
{
namespace
{

constexpr std::size_t serverCores = 8;
constexpr std::size_t clientThreads = 8;

double
runF4t(std::size_t flows, bool hbm, sim::Tick warmup, sim::Tick window)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 131072;
    // Ping-pong flows carry one 128 B message at a time: size the TCP
    // buffers accordingly (SO_RCVBUF-style tuning) or host memory for
    // tens of thousands of flows dwarfs the machine running the model.
    config.tcpBufferBytes = 8 * 1024;
    config.dram = hbm ? mem::DramConfig::hbm() : mem::DramConfig::ddr4();
    testbed::EnginePairWorld world(clientThreads, config);

    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < serverCores; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeB, i, world.cpuB->core(i)));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    world.sim.runFor(sim::microsecondsToTicks(20));

    std::vector<std::unique_ptr<apps::F4tSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    for (std::size_t i = 0; i < clientThreads; ++i) {
        client_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeA, i, world.cpuA->core(i)));
        apps::EchoClientConfig client_config;
        client_config.peer = testbed::ipB();
        client_config.flows = flows / clientThreads;
        client_config.connectSpacing = sim::nanosecondsToTicks(100);
        clients.push_back(std::make_unique<apps::EchoClientApp>(
            *client_apis.back(), nullptr, client_config));
        clients.back()->start();
    }

    world.sim.runFor(warmup);
    std::uint64_t before = 0;
    for (auto &client : clients)
        before += client->roundTrips();
    world.sim.runFor(window);
    std::uint64_t trips = 0;
    for (auto &client : clients)
        trips += client->roundTrips();
    return (trips - before) / sim::ticksToSeconds(window);
}

double
runLinux(std::size_t flows, sim::Tick warmup, sim::Tick window)
{
    baseline::LinuxHostConfig host_config;
    host_config.latencyJitter = false;
    host_config.sendBufBytes = 32 * 1024;
    host_config.recvBufBytes = 32 * 1024;
    testbed::LinuxPairWorld world(serverCores, host_config);

    std::vector<std::unique_ptr<apps::LinuxSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < serverCores; ++i) {
        // Low-locality penalty (tiny messages over many sockets).
        server_apis.push_back(std::make_unique<apps::LinuxSocketApi>(
            world.sim, *world.hostA, i,
            host::LinuxCosts::smallFlowPenalty / 2));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    world.sim.runFor(sim::microsecondsToTicks(20));

    std::vector<std::unique_ptr<apps::LinuxSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    for (std::size_t i = 0; i < clientThreads; ++i) {
        client_apis.push_back(std::make_unique<apps::LinuxSocketApi>(
            world.sim, *world.hostB, i));
        apps::EchoClientConfig client_config;
        client_config.peer = testbed::ipA();
        client_config.flows = flows / clientThreads;
        client_config.connectSpacing = sim::nanosecondsToTicks(100);
        clients.push_back(std::make_unique<apps::EchoClientApp>(
            *client_apis.back(), nullptr, client_config));
        clients.back()->start();
    }

    world.sim.runFor(warmup);
    std::uint64_t before = 0;
    for (auto &client : clients)
        before += client->roundTrips();
    world.sim.runFor(window);
    std::uint64_t trips = 0;
    for (auto &client : clients)
        trips += client->roundTrips();
    return (trips - before) / sim::ticksToSeconds(window);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    sim::setVerbose(false);
    bench::Obs::install(argc, argv); // strips capture flags from argv

    sim::Config options;
    options.declare("maxFlows", "4096",
                    "largest flow count in the sweep; 16384/65536 "
                    "approach the paper's right edge but need tens of "
                    "minutes of simulation per row");
    options.parseArgs(argc, argv);
    std::size_t max_flows = options.getUint("maxFlows");

    bench::banner("Figure 13",
                  "128 B echo request rate vs concurrent flows (8 cores)");

    bench::Table table({"flows", "Linux Mrps", "F4T-DRAM Mrps",
                        "F4T-HBM Mrps", "HBM/Linux"});
    for (std::size_t flows :
         {256u, 1024u, 4096u, 16384u, 65536u}) {
        if (flows > max_flows)
            break;
        // Setup time scales with flow count (handshakes); the Linux
        // stack's accept path is slower, so it warms up longer.
        sim::Tick warmup =
            sim::microsecondsToTicks(200 + flows * 0.15);
        sim::Tick linux_warmup =
            sim::microsecondsToTicks(200 + flows * 0.9);
        sim::Tick window = sim::microsecondsToTicks(400);
        // The overloaded Linux server delivers completions in bursts
        // (scheduler horizon); average over a longer window so the
        // sampling does not alias them.
        sim::Tick linux_window = sim::millisecondsToTicks(3);
        double linux_rate = runLinux(flows, linux_warmup, linux_window);
        double dram_rate = runF4t(flows, false, warmup, window);
        double hbm_rate = runF4t(flows, true, warmup, window);
        table.addRow({std::to_string(flows),
                      bench::fmt("%.2f", linux_rate / 1e6),
                      bench::fmt("%.2f", dram_rate / 1e6),
                      bench::fmt("%.2f", hbm_rate / 1e6),
                      bench::fmt("%.0fx", linux_rate > 0
                                              ? hbm_rate / linux_rate
                                              : 0)});
    }
    table.print();

    std::printf(
        "\nShape check (paper): F4T leads Linux at every count (paper:\n"
        "20x at 1 K; measured 25-39x). Past the 1024 SRAM-resident\n"
        "flows, throughput is a mix of resident flows at full rate and\n"
        "migration-bound rotation; the DRAM-vs-HBM divergence the paper\n"
        "reports (12x vs 44x Linux at 64 K) emerges when essentially\n"
        "all traffic is migration-bound — reach it with maxFlows=16384\n"
        "or 65536 (tens of minutes of simulation per row). TONIC stops\n"
        "existing past its 1 K SRAM bound.\n");
    return 0;
}
