/**
 * @file
 * google-benchmark microbenchmarks of the substrate hot paths: the
 * operations a hardware implementation does every cycle (and the
 * simulator therefore does hundreds of millions of times per run).
 */

#include <benchmark/benchmark.h>

#include <bit>
#include <unordered_map>
#include <vector>

#include "net/checksum.hh"
#include "net/cuckoo_hash.hh"
#include "net/four_tuple.hh"
#include "net/interval_set.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"
#include "tcp/congestion.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace
{

using namespace f4t;

net::FourTuple
tupleFor(std::uint32_t i)
{
    return net::FourTuple{net::Ipv4Address{0x0a000001},
                          static_cast<std::uint16_t>(1000 + (i % 60000)),
                          net::Ipv4Address{0x0a000002 + i / 60000},
                          static_cast<std::uint16_t>(2000 + (i % 50000))};
}

void
BM_CuckooLookup(benchmark::State &state)
{
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(65536);
    for (std::uint32_t i = 0; i < 60000; ++i)
        table.insert(tupleFor(i), i);
    std::uint32_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(tupleFor(i % 60000)));
        ++i;
    }
}
BENCHMARK(BM_CuckooLookup);

void
BM_CuckooInsertErase(benchmark::State &state)
{
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(65536);
    std::uint32_t i = 0;
    for (auto _ : state) {
        table.insert(tupleFor(i), i);
        table.erase(tupleFor(i));
        ++i;
    }
}
BENCHMARK(BM_CuckooInsertErase);

void
BM_CuckooChurnHighLoad(benchmark::State &state)
{
    // 65536-slot table held at ~90 % occupancy: every insert runs the
    // collision/kick path that dominates at many-connection scale.
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(8192);
    const std::uint32_t resident = 59000;
    for (std::uint32_t i = 0; i < resident; ++i)
        table.insert(tupleFor(i), i);
    std::uint32_t i = 0;
    for (auto _ : state) {
        table.erase(tupleFor(i % resident));
        table.insert(tupleFor(i % resident), i);
        ++i;
    }
}
BENCHMARK(BM_CuckooChurnHighLoad);

void
BM_InternetChecksum1460(benchmark::State &state)
{
    std::vector<std::uint8_t> payload(1460, 0xa5);
    for (auto _ : state)
        benchmark::DoNotOptimize(net::internetChecksum(payload));
}
BENCHMARK(BM_InternetChecksum1460);

void
BM_PacketSerializeParse(benchmark::State &state)
{
    net::TcpHeader tcp;
    tcp.srcPort = 1;
    tcp.dstPort = 2;
    net::Packet pkt = net::Packet::makeTcp(
        net::MacAddress{}, net::MacAddress{}, net::Ipv4Address{},
        net::Ipv4Address{}, tcp,
        std::vector<std::uint8_t>(state.range(0)));
    for (auto _ : state) {
        auto wire = pkt.serialize();
        benchmark::DoNotOptimize(net::Packet::parseWire(wire));
    }
}
BENCHMARK(BM_PacketSerializeParse)->Arg(64)->Arg(128)->Arg(1460);

void
BM_EventAccumulate(benchmark::State &state)
{
    tcp::Tcb tcb;
    tcb.state = tcp::ConnState::established;
    tcp::EventRecord record;
    tcp::TcpEvent ev;
    ev.type = tcp::TcpEventType::userSend;
    std::uint32_t offset = 0;
    for (auto _ : state) {
        ev.pointer = ++offset;
        tcp::accumulateEvent(record, tcb, ev);
        benchmark::DoNotOptimize(record);
    }
}
BENCHMARK(BM_EventAccumulate);

void
BM_MergeTcb(benchmark::State &state)
{
    tcp::Tcb tcb;
    tcp::EventRecord record;
    record.validMask = 0xff;
    record.req = 1000;
    for (auto _ : state)
        benchmark::DoNotOptimize(tcp::merge(tcb, record));
}
BENCHMARK(BM_MergeTcb);

void
BM_FpuPass(benchmark::State &state)
{
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    tcp::Tcb tcb;
    tcb.flowId = 1;
    tcb.state = tcp::ConnState::established;
    tcb.iss = 1000;
    tcb.sndUna = 1001;
    tcb.sndUnaProcessed = 1001;
    tcb.sndNxt = 1001;
    tcb.req = 1001;
    tcb.sndWnd = 1 << 20;
    cc.onInit(tcb);
    tcp::FpuActions actions;
    std::uint32_t offset = 0;
    std::uint64_t now_us = 0;
    for (auto _ : state) {
        offset += 128;
        tcb.req = 1001 + offset;
        tcb.sndUna = tcb.sndNxt; // everything sent so far got ACKed
        actions.clear();
        program.process(tcb, ++now_us, actions);
        benchmark::DoNotOptimize(actions);
    }
}
BENCHMARK(BM_FpuPass);

void
BM_CubeRoot(benchmark::State &state)
{
    std::uint64_t x = 12345;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tcp::CubicPolicy::cubeRoot(x));
        x = x * 2862933555777941757ULL + 3037000493ULL;
    }
}
BENCHMARK(BM_CubeRoot);

void
BM_IntervalSetInsert(benchmark::State &state)
{
    net::IntervalSet set;
    std::uint64_t offset = 0;
    for (auto _ : state) {
        // Alternating pattern exercising merges.
        set.insert(offset + 1460, offset + 2920);
        set.insert(offset, offset + 1460);
        offset += 2920;
        if (offset > 1 << 24) {
            set.clear();
            offset = 0;
        }
    }
}
BENCHMARK(BM_IntervalSetInsert);

/**
 * The two dispatch representations of the event hot loop (DESIGN.md
 * §17), measured through the real queue: one-shot callbacks drained by
 * EventQueue::dispatch() with the tagged switch (Arg(1)) or forced
 * through virtual process() (Arg(0)). In a -DF4T_TAGGED_DISPATCH=OFF
 * build the toggle clamps, so both args measure the virtual path.
 */
void
BM_DispatchVirtualVsTagged(benchmark::State &state)
{
    const bool tagged = state.range(0) != 0;
    sim::Simulation sim;
    const bool prev = sim::taggedDispatchEnabled();
    sim::setTaggedDispatch(tagged);
    constexpr int batch = 1024;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        sim::Tick base = sim.now();
        for (int i = 1; i <= batch; ++i)
            sim.queue().scheduleCallback(base + i, [&fired] { ++fired; });
        sim.run(base + batch);
    }
    benchmark::DoNotOptimize(fired);
    sim::setTaggedDispatch(prev);
    state.SetItemsProcessed(state.iterations() * batch);
    state.SetLabel(tagged && sim::taggedDispatchCompiledIn ? "tagged"
                                                           : "virtual");
}
BENCHMARK(BM_DispatchVirtualVsTagged)->Arg(0)->Arg(1);

/**
 * Per-flow hot-state layouts (DESIGN.md §17): a hash map of per-flow
 * structs (Arg(0), the pre-SoA scheduler/FPC layout — hot booleans
 * share cache lines with cold bulk behind a pointer chase) versus the
 * SoA bitmap-word layout the FPC now uses (Arg(1)). Each iteration
 * does one flow touch (update hot fields) plus one round-robin
 * first-eligible scan — the two operations the event hot loop performs
 * per absorbed event.
 */
void
BM_FlowStateMapVsSoA(benchmark::State &state)
{
    const bool soa = state.range(0) != 0;
    constexpr std::size_t slots = 1024;
    constexpr std::size_t words = slots / 64;
    struct FlowHot
    {
        bool occupied = false;
        bool inFpu = false;
        bool evictFlag = false;
        bool eventsValid = false;
        bool workPending = false;
        std::uint64_t lastActiveCycle = 0;
        std::uint32_t flow = 0;
        std::uint8_t coldBulk[40] = {}; ///< TCB bulk sharing the line
    };
    std::uint32_t tick = 0;
    std::size_t found = 0;

    if (!soa) {
        std::unordered_map<std::uint32_t, FlowHot> table;
        for (std::uint32_t i = 0; i < slots; ++i) {
            FlowHot h;
            h.occupied = true;
            h.flow = i;
            table.emplace(i, h);
        }
        for (auto _ : state) {
            std::uint32_t victim = (tick * 2654435761u) % slots;
            FlowHot &h = table.find(victim)->second;
            h.lastActiveCycle = tick;
            h.eventsValid = (victim & 63) == 1;
            std::size_t rr = tick % slots;
            for (std::size_t k = 0; k < slots; ++k) {
                std::size_t idx = rr + k;
                if (idx >= slots)
                    idx -= slots;
                const FlowHot &s =
                    table.find(static_cast<std::uint32_t>(idx))->second;
                if (s.occupied && !s.inFpu &&
                    (s.evictFlag || s.eventsValid || s.workPending)) {
                    found = idx;
                    break;
                }
            }
            benchmark::DoNotOptimize(found);
            ++tick;
        }
    } else {
        std::vector<std::uint64_t> occ(words, ~std::uint64_t{0});
        std::vector<std::uint64_t> fpu(words, 0), evict(words, 0),
            valid(words, 0), work(words, 0);
        std::vector<std::uint64_t> last_active(slots, 0);
        auto eligible = [&](std::size_t w) {
            return occ[w] & ~fpu[w] & (evict[w] | valid[w] | work[w]);
        };
        for (auto _ : state) {
            std::uint32_t victim = (tick * 2654435761u) % slots;
            last_active[victim] = tick;
            std::uint64_t mask = std::uint64_t{1} << (victim & 63);
            if ((victim & 63) == 1)
                valid[victim >> 6] |= mask;
            else
                valid[victim >> 6] &= ~mask;
            std::size_t rr = tick % slots;
            std::size_t w0 = rr >> 6;
            std::uint64_t word =
                eligible(w0) & (~std::uint64_t{0} << (rr & 63));
            found = slots;
            for (std::size_t w = w0;;) {
                if (word != 0) {
                    found = (w << 6) + static_cast<std::size_t>(
                                           std::countr_zero(word));
                    break;
                }
                if (++w == words)
                    break;
                word = eligible(w);
            }
            if (found == slots) {
                for (std::size_t w = 0; w <= w0; ++w) {
                    std::uint64_t wd = eligible(w);
                    if (wd != 0) {
                        found = (w << 6) + static_cast<std::size_t>(
                                               std::countr_zero(wd));
                        break;
                    }
                }
            }
            benchmark::DoNotOptimize(found);
            ++tick;
        }
    }
    state.SetLabel(soa ? "soa" : "map");
}
BENCHMARK(BM_FlowStateMapVsSoA)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
