/**
 * @file
 * google-benchmark microbenchmarks of the substrate hot paths: the
 * operations a hardware implementation does every cycle (and the
 * simulator therefore does hundreds of millions of times per run).
 */

#include <benchmark/benchmark.h>

#include "net/checksum.hh"
#include "net/cuckoo_hash.hh"
#include "net/four_tuple.hh"
#include "net/interval_set.hh"
#include "net/packet.hh"
#include "tcp/congestion.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace
{

using namespace f4t;

net::FourTuple
tupleFor(std::uint32_t i)
{
    return net::FourTuple{net::Ipv4Address{0x0a000001},
                          static_cast<std::uint16_t>(1000 + (i % 60000)),
                          net::Ipv4Address{0x0a000002 + i / 60000},
                          static_cast<std::uint16_t>(2000 + (i % 50000))};
}

void
BM_CuckooLookup(benchmark::State &state)
{
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(65536);
    for (std::uint32_t i = 0; i < 60000; ++i)
        table.insert(tupleFor(i), i);
    std::uint32_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(tupleFor(i % 60000)));
        ++i;
    }
}
BENCHMARK(BM_CuckooLookup);

void
BM_CuckooInsertErase(benchmark::State &state)
{
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(65536);
    std::uint32_t i = 0;
    for (auto _ : state) {
        table.insert(tupleFor(i), i);
        table.erase(tupleFor(i));
        ++i;
    }
}
BENCHMARK(BM_CuckooInsertErase);

void
BM_CuckooChurnHighLoad(benchmark::State &state)
{
    // 65536-slot table held at ~90 % occupancy: every insert runs the
    // collision/kick path that dominates at many-connection scale.
    net::CuckooHashTable<net::FourTuple, std::uint32_t,
                         net::FourTupleHash>
        table(8192);
    const std::uint32_t resident = 59000;
    for (std::uint32_t i = 0; i < resident; ++i)
        table.insert(tupleFor(i), i);
    std::uint32_t i = 0;
    for (auto _ : state) {
        table.erase(tupleFor(i % resident));
        table.insert(tupleFor(i % resident), i);
        ++i;
    }
}
BENCHMARK(BM_CuckooChurnHighLoad);

void
BM_InternetChecksum1460(benchmark::State &state)
{
    std::vector<std::uint8_t> payload(1460, 0xa5);
    for (auto _ : state)
        benchmark::DoNotOptimize(net::internetChecksum(payload));
}
BENCHMARK(BM_InternetChecksum1460);

void
BM_PacketSerializeParse(benchmark::State &state)
{
    net::TcpHeader tcp;
    tcp.srcPort = 1;
    tcp.dstPort = 2;
    net::Packet pkt = net::Packet::makeTcp(
        net::MacAddress{}, net::MacAddress{}, net::Ipv4Address{},
        net::Ipv4Address{}, tcp,
        std::vector<std::uint8_t>(state.range(0)));
    for (auto _ : state) {
        auto wire = pkt.serialize();
        benchmark::DoNotOptimize(net::Packet::parseWire(wire));
    }
}
BENCHMARK(BM_PacketSerializeParse)->Arg(64)->Arg(128)->Arg(1460);

void
BM_EventAccumulate(benchmark::State &state)
{
    tcp::Tcb tcb;
    tcb.state = tcp::ConnState::established;
    tcp::EventRecord record;
    tcp::TcpEvent ev;
    ev.type = tcp::TcpEventType::userSend;
    std::uint32_t offset = 0;
    for (auto _ : state) {
        ev.pointer = ++offset;
        tcp::accumulateEvent(record, tcb, ev);
        benchmark::DoNotOptimize(record);
    }
}
BENCHMARK(BM_EventAccumulate);

void
BM_MergeTcb(benchmark::State &state)
{
    tcp::Tcb tcb;
    tcp::EventRecord record;
    record.validMask = 0xff;
    record.req = 1000;
    for (auto _ : state)
        benchmark::DoNotOptimize(tcp::merge(tcb, record));
}
BENCHMARK(BM_MergeTcb);

void
BM_FpuPass(benchmark::State &state)
{
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    tcp::Tcb tcb;
    tcb.flowId = 1;
    tcb.state = tcp::ConnState::established;
    tcb.iss = 1000;
    tcb.sndUna = 1001;
    tcb.sndUnaProcessed = 1001;
    tcb.sndNxt = 1001;
    tcb.req = 1001;
    tcb.sndWnd = 1 << 20;
    cc.onInit(tcb);
    tcp::FpuActions actions;
    std::uint32_t offset = 0;
    std::uint64_t now_us = 0;
    for (auto _ : state) {
        offset += 128;
        tcb.req = 1001 + offset;
        tcb.sndUna = tcb.sndNxt; // everything sent so far got ACKed
        actions.clear();
        program.process(tcb, ++now_us, actions);
        benchmark::DoNotOptimize(actions);
    }
}
BENCHMARK(BM_FpuPass);

void
BM_CubeRoot(benchmark::State &state)
{
    std::uint64_t x = 12345;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tcp::CubicPolicy::cubeRoot(x));
        x = x * 2862933555777941757ULL + 3037000493ULL;
    }
}
BENCHMARK(BM_CubeRoot);

void
BM_IntervalSetInsert(benchmark::State &state)
{
    net::IntervalSet set;
    std::uint64_t offset = 0;
    for (auto _ : state) {
        // Alternating pattern exercising merges.
        set.insert(offset + 1460, offset + 2920);
        set.insert(offset, offset + 1460);
        offset += 2920;
        if (offset > 1 << 24) {
            set.clear();
            offset = 0;
        }
    }
}
BENCHMARK(BM_IntervalSetInsert);

} // namespace

BENCHMARK_MAIN();
