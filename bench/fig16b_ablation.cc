/**
 * @file
 * Figure 16b: header processing rate of F4T's intermediate designs,
 * without payload transfer and without a link bottleneck (Section 6).
 *
 *  - Baseline: the 17-cycle w-RMW stalling design;
 *  - 1FPC: one flow processing core, no coalescing;
 *  - 1FPC-C: one FPC plus scheduler event coalescing;
 *  - F4T: eight FPCs plus coalescing.
 *
 * Two request patterns, as in the paper: bulk (all requests on one
 * flow) and round-robin (requests rotate over 64 flows). Injection is
 * capped at the PCIe command ceiling (16 B commands over the ~13.5
 * GB/s effective link), which is what bounded the paper's measurement
 * with 24 cores.
 */

#include "baseline/stalling_engine.hh"
#include "bench_util.hh"
#include "core/engine.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

constexpr double pcieCommandRate = 13.5e9 / 16.0; // commands/s

struct Workload
{
    bool roundRobin;
    std::size_t flows;
};

/** Measure requests/s through a full FtEngine configuration. */
double
measureEngine(std::size_t num_fpcs, bool coalescing,
              const Workload &workload)
{
    sim::Simulation sim;
    core::EngineConfig config;
    config.numFpcs = num_fpcs;
    // Hold total SRAM capacity at the reference 1024 flows across all
    // designs so the ablation isolates the processing architecture.
    config.flowsPerFpc = 1024 / num_fpcs;
    config.maxFlows = 4096;
    config.payloadDma = false; // header-only
    config.coalescingEnabled = coalescing;
    core::FtEngine engine(sim, "engine", config);
    engine.setTransmit([](net::Packet &&) {});

    std::vector<tcp::FlowId> flows;
    std::vector<std::uint32_t> offsets(workload.flows, 0);
    for (std::size_t i = 0; i < workload.flows; ++i) {
        flows.push_back(engine.createSyntheticFlow());
        // Stagger so every flow lands in FPC SRAM through the
        // swap-in port (one install per two cycles per FPC).
        sim.runFor(sim.engineClock().period() * 2);
    }
    sim.runFor(sim::microsecondsToTicks(10));

    // Injection paced at the PCIe command rate, with backpressure from
    // the scheduler's FIFOs (bounded backlog models the ring depth).
    sim::Tick window = sim::microsecondsToTicks(60);
    sim::Tick start = sim.now();
    sim::Tick end = start + window;
    double credit = 0;
    std::uint64_t injected = 0;
    sim::Tick step = sim.engineClock().period() * 8;
    std::size_t next_flow = 0;

    auto absorbed = [&] {
        std::uint64_t n = engine.scheduler().eventsCoalesced() +
                          engine.memoryManager().eventsHandled();
        for (std::size_t i = 0; i < num_fpcs; ++i)
            n += engine.fpc(i).eventsHandled();
        return n;
    };
    std::uint64_t absorbed_before = absorbed();

    while (sim.now() < end) {
        credit += pcieCommandRate * sim::ticksToSeconds(step);
        std::uint64_t backlog_cap = 256;
        while (credit >= 1.0) {
            // Model the 1024-deep command rings: stop injecting when
            // the engine is this far behind.
            std::uint64_t processed = absorbed() - absorbed_before;
            if (injected > processed + backlog_cap)
                break;
            std::size_t i = workload.roundRobin
                                ? (next_flow++ % workload.flows)
                                : 0;
            offsets[i] += 8;
            tcp::TcpEvent ev;
            ev.flow = flows[i];
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer = core::FtEngine::txStart(flows[i]) + offsets[i];
            engine.injectEvent(ev);
            ++injected;
            credit -= 1.0;
        }
        if (credit > 64)
            credit = 64; // cap the burst size
        sim.runFor(step);
    }

    // Requests absorbed = events handled (FPCs + memory manager) plus
    // events folded away by coalescing (each fold absorbed a request).
    return (absorbed() - absorbed_before) / sim::ticksToSeconds(window);
}

double
measureBaseline(const Workload &workload)
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config;
    baseline::StallingEngine engine(sim, "baseline", sim.netClock(),
                                    program, config);

    std::vector<tcp::FlowId> flows;
    std::vector<std::uint32_t> offsets(workload.flows, 0);
    for (std::size_t i = 0; i < workload.flows; ++i)
        flows.push_back(engine.createSyntheticFlow());

    sim::Tick window = sim::microsecondsToTicks(60);
    sim::Tick end = sim.now() + window;
    std::uint64_t before = engine.eventsProcessed();
    std::size_t next_flow = 0;
    while (sim.now() < end) {
        while (engine.backlog() < 64) {
            std::size_t i = workload.roundRobin
                                ? (next_flow++ % workload.flows)
                                : 0;
            offsets[i] += 8;
            tcp::TcpEvent ev;
            ev.flow = flows[i];
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer = tcp::FpuProgram::initialSequence(flows[i]) + 1 +
                         offsets[i];
            engine.injectEvent(ev);
        }
        sim.runFor(sim.netClock().period() * 32);
    }
    return (engine.eventsProcessed() - before) /
           sim::ticksToSeconds(window);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 16b",
                  "header processing rate of intermediate designs");

    for (bool rr : {false, true}) {
        // Round-robin: 16 flows per core on 24 cores = 384 distinct
        // flows interleaving in the command stream (Section 6).
        Workload workload{rr, rr ? 384u : 1u};
        const char *label = rr ? "round-robin requests"
                               : "bulk data transfer";
        double base = measureBaseline(workload);
        double fpc1 = measureEngine(1, false, workload);
        double fpc1c = measureEngine(1, true, workload);
        double f4t_full = measureEngine(8, true, workload);

        std::printf("\n%s:\n", label);
        bench::Table table({"design", "Mrps", "speedup vs Baseline",
                            "paper speedup"});
        table.addRow({"Baseline", bench::fmt("%.1f", base / 1e6), "1.0x",
                      "1.0x"});
        table.addRow({"1FPC", bench::fmt("%.1f", fpc1 / 1e6),
                      bench::fmt("%.1fx", fpc1 / base),
                      rr ? "8.4x" : "8.6x"});
        table.addRow({"1FPC-C", bench::fmt("%.1f", fpc1c / 1e6),
                      bench::fmt("%.1fx", fpc1c / base),
                      rr ? "8.6x" : "62.3x"});
        table.addRow({"F4T", bench::fmt("%.1f", f4t_full / 1e6),
                      bench::fmt("%.1fx", f4t_full / base),
                      rr ? "71.3x" : "63.1x"});
        table.print();
    }

    std::printf(
        "\nShape check (paper): removing RMW stalls (1FPC) buys ~8.5x;\n"
        "coalescing multiplies same-flow throughput but does little for\n"
        "round-robin; parallel FPCs recover the multi-flow case. The\n"
        "ceiling is the PCIe command rate (~844 M commands/s at 16 B).\n");
    return 0;
}
