/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: a table
 * printer that shows paper-reported values next to measured ones, and
 * rate/goodput helpers.
 *
 * Each binary regenerates one table or figure from the paper. The
 * substrate is a simulator, not the authors' testbed, so the binaries
 * print "paper" and "measured" columns side by side: absolute numbers
 * track where behaviour is architectural and the *shape* (who wins,
 * by what factor, where curves break) is the reproduction target.
 */

#ifndef F4T_BENCH_BENCH_UTIL_HH
#define F4T_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace f4t::bench
{

/** Print the standard figure banner. */
inline void
banner(const std::string &figure, const std::string &title)
{
    std::printf("\n");
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** Simple aligned table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_) {
            for (std::size_t c = 0; c < row.size() && c < width.size();
                 ++c) {
                width[c] = std::max(width[c], row[c].size());
            }
        }
        auto print_row = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &row : rows_)
            print_row(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

/** Goodput in Gbps from bytes over a simulated window. */
inline double
gbps(std::uint64_t bytes, sim::Tick window)
{
    double seconds = sim::ticksToSeconds(window);
    return seconds > 0 ? bytes * 8.0 / seconds / 1e9 : 0.0;
}

/** Rate in millions per second over a simulated window. */
inline double
mrps(std::uint64_t count, sim::Tick window)
{
    double seconds = sim::ticksToSeconds(window);
    return seconds > 0 ? count / seconds / 1e6 : 0.0;
}

} // namespace f4t::bench

#endif // F4T_BENCH_BENCH_UTIL_HH
