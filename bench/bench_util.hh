/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: a table
 * printer that shows paper-reported values next to measured ones, and
 * rate/goodput helpers.
 *
 * Each binary regenerates one table or figure from the paper. The
 * substrate is a simulator, not the authors' testbed, so the binaries
 * print "paper" and "measured" columns side by side: absolute numbers
 * track where behaviour is architectural and the *shape* (who wins,
 * by what factor, where curves break) is the reproduction target.
 */

#ifndef F4T_BENCH_BENCH_UTIL_HH
#define F4T_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/pcap_writer.hh"
#include "obs/profiler.hh"
#include "obs/run_meta.hh"
#include "sim/profile_scope.hh"
#include "sim/simulation.hh"
#include "sim/types.hh"

namespace f4t::bench
{

/**
 * Stamp a hand-rolled BENCH_*.json writer with the run's identity
 * (git SHA, build preset, feature gates, wall timestamp) so f4t_report
 * can refuse apples-to-oranges comparisons. Emits a `"meta": {...}`
 * member with no trailing comma. @p threads records how many worker
 * threads drove the simulation (informational; 1 = serial kernel).
 */
inline void
writeRunMeta(std::FILE *out, int indent, unsigned threads = 1)
{
    obs::RunMeta meta = obs::currentRunMeta();
    meta.threads = threads;
    obs::writeMetaJson(out, meta, indent);
}

/** Print the standard figure banner. */
inline void
banner(const std::string &figure, const std::string &title)
{
    std::printf("\n");
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("==============================================================\n");
}

/** Simple aligned table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {}

    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &row : rows_) {
            for (std::size_t c = 0; c < row.size() && c < width.size();
                 ++c) {
                width[c] = std::max(width[c], row[c].size());
            }
        }
        auto print_row = [&](const std::vector<std::string> &cells) {
            for (std::size_t c = 0; c < cells.size(); ++c)
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            cells[c].c_str());
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &row : rows_)
            print_row(row);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

/** Goodput in Gbps from bytes over a simulated window. */
inline double
gbps(std::uint64_t bytes, sim::Tick window)
{
    double seconds = sim::ticksToSeconds(window);
    return seconds > 0 ? bytes * 8.0 / seconds / 1e9 : 0.0;
}

/** Rate in millions per second over a simulated window. */
inline double
mrps(std::uint64_t count, sim::Tick window)
{
    double seconds = sim::ticksToSeconds(window);
    return seconds > 0 ? count / seconds / 1e6 : 0.0;
}

/**
 * Obs: the shared observability front-end for every figure binary,
 * example, and the fuzz replayer. Call Obs::install(argc, argv) at the
 * top of main(); it strips the capture flags below from argv (so
 * binaries with strict parsers never see them) and hooks simulation
 * and link construction so capture needs no per-binary wiring:
 *
 *   --trace=SPEC            per-module text tracepoints (glob over flag
 *                           names, '-' negates: "fpc,sched*,-timer")
 *   --pcap=PATH             one .pcap (+ .index sidecar) per Link
 *   --timeline=PATH         Chrome trace-event JSON per Simulation
 *   --stat-sample=PATH[@US] stat time-series CSV per Simulation,
 *                           sampled every US microseconds (default 100)
 *   --stat-select=GLOB      which stats the CSV columns cover ("*")
 *   --stats-json=PATH       end-of-run StatRegistry JSON per Simulation
 *   --profile               enable the wall-clock self-profiler for the
 *                           whole process (needs F4T_ENABLE_PROFILE);
 *                           bench mains that know their measurement
 *                           windows emit per-scenario tables and JSON,
 *                           and every binary prints a whole-process
 *                           category table at exit
 *
 * Binaries that build several simulations or links get index-suffixed
 * files: timeline.json, timeline.1.json, ... in construction order.
 */
class Obs
{
  public:
    static Obs &
    instance()
    {
        static Obs obs;
        return obs;
    }

    /** Strip capture flags from argv and install the observers. */
    static void
    install(int &argc, char **argv)
    {
        instance().parseArgs(argc, argv);
    }

    /** Programmatic capture with a common file prefix (fuzz replay). */
    static void
    capturePrefix(const std::string &prefix)
    {
        Obs &obs = instance();
        obs.pcapPath_ = prefix + ".pcap";
        obs.timelinePath_ = prefix + ".timeline.json";
        obs.statCsvPath_ = prefix + ".stats.csv";
        obs.statsJsonPath_ = prefix + ".stats.json";
        obs.installObservers();
    }

    /** Add a derived column (e.g. cwnd) to a simulation's sampler.
     *  No-op unless --stat-sample/--stats-json enabled sampling. */
    static void
    probe(sim::Simulation &sim, std::string column,
          std::function<double()> fn)
    {
        for (auto &rec : instance().sims_) {
            if (rec->sim == &sim && rec->sampler) {
                rec->sampler->addProbe(std::move(column), std::move(fn));
                return;
            }
        }
    }

    /** True when any capture sink was requested. */
    static bool
    active()
    {
        return instance().installed_;
    }

    /** True when --profile was passed (and the profiler is compiled
     *  in): bench mains emit per-scenario cost tables and JSON. */
    static bool
    profiling()
    {
        return instance().profileActive_;
    }

  private:
    struct SimRec
    {
        sim::Simulation *sim = nullptr;
        std::string timelinePath;
        std::unique_ptr<sim::trace::TraceEventSink> timeline;
        std::unique_ptr<sim::trace::StatSampler> sampler;
    };

    void
    parseArgs(int &argc, char **argv)
    {
        auto value_of = [](const char *arg,
                           const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            return std::strncmp(arg, flag, n) == 0 ? arg + n : nullptr;
        };
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const char *v;
            if ((v = value_of(argv[i], "--trace="))) {
                sim::trace::setFlags(v);
            } else if ((v = value_of(argv[i], "--pcap="))) {
                pcapPath_ = v;
            } else if ((v = value_of(argv[i], "--timeline="))) {
                timelinePath_ = v;
            } else if ((v = value_of(argv[i], "--stat-sample="))) {
                statCsvPath_ = v;
                if (auto at = statCsvPath_.rfind('@');
                    at != std::string::npos) {
                    statIntervalUs_ =
                        std::strtod(statCsvPath_.c_str() + at + 1, nullptr);
                    statCsvPath_.resize(at);
                }
            } else if ((v = value_of(argv[i], "--stat-select="))) {
                statSelect_ = v;
            } else if ((v = value_of(argv[i], "--stats-json="))) {
                statsJsonPath_ = v;
            } else if (std::strcmp(argv[i], "--profile") == 0) {
                enableProfiling();
            } else {
                argv[out++] = argv[i];
            }
        }
        argc = out;
        if (!pcapPath_.empty() || !timelinePath_.empty() ||
            !statCsvPath_.empty() || !statsJsonPath_.empty()) {
            installObservers();
        }
    }

    void
    enableProfiling()
    {
        if (!sim::prof::compiledIn) {
            std::fprintf(stderr,
                         "obs: --profile ignored — this build has "
                         "F4T_ENABLE_PROFILE=OFF (use the default "
                         "configure, not the release preset)\n");
            return;
        }
        if (profileActive_)
            return;
        profileActive_ = true;
        sim::prof::setEnabled(true);
        profileStart_ = std::chrono::steady_clock::now();
        // Whole-process fallback: even binaries that never call
        // profiling() themselves print a category table at exit.
        std::atexit([] {
            Obs &obs = instance();
            double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - obs.profileStart_)
                    .count();
            obs::ProfileReport report =
                obs::makeProfileReport(sim::prof::capture(), wall);
            std::fprintf(stderr, "obs: whole-process profile\n");
            obs::printProfileTable(stderr, report);
        });
    }

    void
    installObservers()
    {
        if (installed_)
            return;
        installed_ = true;
        sim::trace::setSimulationObservers(
            [](sim::Simulation &s) { instance().onSimCreated(s); },
            [](sim::Simulation &s) { instance().onSimDestroyed(s); });
        if (!pcapPath_.empty()) {
            net::Link::setCreationObserver(
                [](net::Link &link) { instance().onLinkCreated(link); });
        }
    }

    void
    onSimCreated(sim::Simulation &sim)
    {
        auto rec = std::make_unique<SimRec>();
        rec->sim = &sim;
        std::size_t index = sims_.size();
        if (!timelinePath_.empty()) {
            rec->timelinePath = indexedPath(timelinePath_, index);
            rec->timeline = std::make_unique<sim::trace::TraceEventSink>();
            sim.setTimeline(rec->timeline.get());
        }
        if (!statCsvPath_.empty() || !statsJsonPath_.empty()) {
            double us = statIntervalUs_ > 0 ? statIntervalUs_ : 100.0;
            rec->sampler = std::make_unique<sim::trace::StatSampler>(
                sim, sim::microsecondsToTicks(us));
            rec->sampler->selectStats(statSelect_);
            if (!statCsvPath_.empty())
                rec->sampler->setCsvPath(indexedPath(statCsvPath_, index));
            if (!statsJsonPath_.empty()) {
                rec->sampler->setStatsJsonPath(
                    indexedPath(statsJsonPath_, index));
            }
            rec->sampler->start();
        }
        sims_.push_back(std::move(rec));
    }

    void
    onSimDestroyed(sim::Simulation &sim)
    {
        for (auto &rec : sims_) {
            if (rec->sim != &sim)
                continue;
            // The event queue is still alive here (observer fires at the
            // top of ~Simulation), so the sampler event detaches safely.
            rec->sampler.reset();
            if (rec->timeline) {
                rec->sim->setTimeline(nullptr);
                if (rec->timeline->writeFile(rec->timelinePath)) {
                    std::fprintf(stderr, "obs: wrote %s (%zu events)\n",
                                 rec->timelinePath.c_str(),
                                 rec->timeline->eventCount());
                }
                rec->timeline.reset();
            }
            rec->sim = nullptr;
            return;
        }
    }

    void
    onLinkCreated(net::Link &link)
    {
        auto writer = std::make_unique<net::PcapWriter>(
            indexedPath(pcapPath_, pcaps_.size()));
        if (writer->ok()) {
            link.attachPcap(writer.get());
            std::fprintf(stderr, "obs: capturing %s to %s\n",
                         link.name().c_str(), writer->path().c_str());
        }
        pcaps_.push_back(std::move(writer));
    }

    /** base.ext -> base.ext, base.1.ext, base.2.ext, ... */
    static std::string
    indexedPath(const std::string &base, std::size_t index)
    {
        if (index == 0)
            return base;
        std::size_t dot = base.rfind('.');
        std::size_t slash = base.rfind('/');
        if (dot == std::string::npos ||
            (slash != std::string::npos && dot < slash)) {
            return base + "." + std::to_string(index);
        }
        return base.substr(0, dot) + "." + std::to_string(index) +
               base.substr(dot);
    }

    bool installed_ = false;
    bool profileActive_ = false;
    std::chrono::steady_clock::time_point profileStart_{};
    std::string pcapPath_;
    std::string timelinePath_;
    std::string statCsvPath_;
    std::string statSelect_ = "*";
    std::string statsJsonPath_;
    double statIntervalUs_ = 100.0;
    std::vector<std::unique_ptr<SimRec>> sims_;
    std::vector<std::unique_ptr<net::PcapWriter>> pcaps_;
};

} // namespace f4t::bench

#endif // F4T_BENCH_BENCH_UTIL_HH
