/**
 * @file
 * Figure 1: the motivation measurement — Nginx on the Linux TCP stack.
 * (a) CPU utilization breakdown: the TCP stack consumes ~37 % of the
 * cycles; (b) request processing rate vs CPU cores: far from
 * saturating a 100 Gbps link.
 */

#include "bench_util.hh"
#include "nginx_common.hh"

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 1", "Nginx on the Linux TCP stack");

    sim::Tick warmup = sim::millisecondsToTicks(2);
    sim::Tick window = sim::millisecondsToTicks(5);

    // (a) breakdown at one core, saturated.
    bench::NginxResult one = bench::runNginxLinux(1, 64, warmup, window,
                                                  /*jitter=*/false);
    double total = one.appCycles + one.tcpCycles + one.kernelCycles +
                   one.filesystemCycles + one.libraryCycles;
    std::printf("\n(a) CPU utilization breakdown (1 core, 64 flows):\n");
    bench::Table breakdown({"category", "cycles/request", "share",
                            "paper share"});
    breakdown.addRow({"application", bench::fmt("%.0f", one.appCycles),
                      bench::fmt("%.0f%%", 100 * one.appCycles / total),
                      "~26%"});
    breakdown.addRow({"TCP stack", bench::fmt("%.0f", one.tcpCycles),
                      bench::fmt("%.0f%%", 100 * one.tcpCycles / total),
                      "37%"});
    breakdown.addRow(
        {"other kernel (incl. vfs)",
         bench::fmt("%.0f", one.kernelCycles + one.filesystemCycles),
         bench::fmt("%.0f%%", 100 * (one.kernelCycles +
                                     one.filesystemCycles) /
                                  total),
         "~37%"});
    breakdown.print();

    // (b) request rate vs cores.
    std::printf("\n(b) request processing rate vs cores (64 flows/core):\n");
    bench::Table rate({"cores", "Mrps", "goodput Gbps (256 B)"});
    for (std::size_t cores : {1u, 2u, 4u, 8u}) {
        bench::NginxResult r = bench::runNginxLinux(
            cores, 64 * cores, warmup, window, /*jitter=*/false);
        rate.addRow({std::to_string(cores),
                     bench::fmt("%.2f", r.requestsPerSecond / 1e6),
                     bench::fmt("%.2f",
                                r.requestsPerSecond * 256 * 8 / 1e9)});
    }
    rate.print();

    std::printf(
        "\nShape check (paper): the TCP stack takes ~37%% of the CPU and\n"
        "Nginx stays in the low millions of requests/s — nowhere near\n"
        "the 100 Gbps link (which would need ~37 Mrps at 256 B+overhead).\n");
    return 0;
}
