/**
 * @file
 * Figure 16a: header processing rate of bulk transfer versus the
 * number of host CPU cores, with 16 B and simplified 8 B commands
 * (Section 6's performance potential analysis).
 *
 * The paper's special hardware (two FtEngines back to back inside one
 * FPGA, payload excluded) removes the link; the remaining ceilings
 * are (1) per-core command generation in the F4T library, (2) PCIe
 * command bandwidth — which the 8 B commands double — and (3) the
 * engine's aggregate event rate. This binary measures each ceiling
 * from the respective component model and composes the curve, and
 * cross-checks one point with a full simulation.
 */

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"
#include "host/cost_model.hh"

namespace f4t
{
namespace
{

/** Measured per-core command rate from a real library+engine run. */
double
measurePerCoreRate()
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.payloadDma = false; // header-only
    testbed::EnginePairWorld world(1, config);

    auto sink_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(sink_api, sink_config);
    sink.start();
    world.sim.runFor(sim::microsecondsToTicks(20));

    auto send_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 16;
    apps::BulkSenderApp sender(send_api, sender_config);
    sender.start();

    world.sim.runFor(sim::microsecondsToTicks(100));
    std::uint64_t before = sender.requestsSent();
    sim::Tick window = sim::microsecondsToTicks(200);
    world.sim.runFor(window);
    return (sender.requestsSent() - before) /
           sim::ticksToSeconds(window);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 16a",
                  "header processing rate vs cores (no payload)");

    double per_core = measurePerCoreRate();
    host::PcieConfig pcie;
    double engine_rate = 8 * 125e6; // 8 FPCs x 125 M events/s

    std::printf(
        "\nmeasured component ceilings:\n"
        "  per-core command generation: %.1f M commands/s\n"
        "  engine aggregate event rate: %.0f M events/s\n"
        "  PCIe command bandwidth:      %.0f M/s at 16 B, %.0f M/s at "
        "8 B\n",
        per_core / 1e6, engine_rate / 1e6,
        pcie.bandwidthBytesPerSec / 16 / 1e6,
        pcie.bandwidthBytesPerSec / 8 / 1e6);

    bench::Table table({"cores", "16 B cmds (Mrps)", "8 B cmds (Mrps)"});
    for (std::size_t cores : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
        double demand = per_core * cores;
        double r16 = std::min(
            {demand, pcie.bandwidthBytesPerSec / 16, engine_rate});
        double r8 = std::min(
            {demand, pcie.bandwidthBytesPerSec / 8, engine_rate});
        table.addRow({std::to_string(cores),
                      bench::fmt("%.0f", r16 / 1e6),
                      bench::fmt("%.0f", r8 / 1e6)});
    }
    table.print();

    std::printf(
        "\nShape check (paper): with 16 B commands the PCIe command\n"
        "bandwidth saturates first; shrinking commands to 8 B lets the\n"
        "rate scale linearly with cores until ~900 Mrps, where the\n"
        "engine itself (8 FPCs x 125 M events/s) becomes the limit.\n"
        "Event coalescing pushes the effective request rate higher\n"
        "still for same-flow traffic (see fig16b).\n");
    return 0;
}
