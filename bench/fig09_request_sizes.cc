/**
 * @file
 * Figure 9: F4T bulk data transfer with small request sizes
 * (16 B - 1 KB) on 2 and 16 cores — goodput and requests/s. With 16 B
 * requests the ceiling is the PCIe bandwidth: every request costs a
 * 16 B command plus a 16 B payload DMA (Section 5.1 reports 50.7 Gbps
 * / 396 Mrps at 16 cores).
 */

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"

namespace f4t
{
namespace
{

struct Result
{
    double gbps;
    double mrps;
};

Result
run(std::size_t cores, std::size_t request_bytes)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 4096;
    testbed::EnginePairWorld world(cores, config);

    std::vector<std::unique_ptr<apps::F4tSocketApi>> sink_apis;
    std::vector<std::unique_ptr<apps::BulkSinkApp>> sinks;
    std::vector<std::unique_ptr<apps::F4tSocketApi>> send_apis;
    std::vector<std::unique_ptr<apps::BulkSenderApp>> senders;
    for (std::size_t i = 0; i < cores; ++i) {
        sink_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeB, i, world.cpuB->core(i)));
        apps::BulkSinkConfig sink_config;
        sinks.push_back(std::make_unique<apps::BulkSinkApp>(
            *sink_apis.back(), sink_config));
        sinks.back()->start();

        send_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeA, i, world.cpuA->core(i)));
        apps::BulkSenderConfig sender_config;
        sender_config.peer = testbed::ipB();
        sender_config.requestBytes = request_bytes;
        senders.push_back(std::make_unique<apps::BulkSenderApp>(
            *send_apis.back(), sender_config));
        senders.back()->start();
    }

    sim::Tick warmup = sim::microsecondsToTicks(200);
    sim::Tick window = sim::microsecondsToTicks(200);
    world.sim.runFor(warmup);
    std::uint64_t before = 0;
    for (auto &sink : sinks)
        before += sink->bytesReceived();
    world.sim.runFor(window);
    std::uint64_t bytes = 0;
    for (auto &sink : sinks)
        bytes += sink->bytesReceived();
    bytes -= before;

    return Result{bench::gbps(bytes, window),
                  bench::mrps(bytes / request_bytes, window)};
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 9",
                  "bulk transfer with small request sizes (F4T)");

    bench::Table table({"req size (B)", "2C Gbps", "2C Mrps", "16C Gbps",
                        "16C Mrps"});
    for (std::size_t size : {16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
        Result two = run(2, size);
        Result sixteen = run(16, size);
        table.addRow({std::to_string(size), bench::fmt("%.1f", two.gbps),
                      bench::fmt("%.1f", two.mrps),
                      bench::fmt("%.1f", sixteen.gbps),
                      bench::fmt("%.1f", sixteen.mrps)});
    }
    table.print();

    std::printf(
        "\nShape check (paper): requests/s rise as requests shrink and\n"
        "the per-request PCIe cost (16 B command + payload DMA) becomes\n"
        "the bottleneck — the paper reports 396 Mrps / 50.7 Gbps at 16 B\n"
        "with 16 cores; goodput saturates near line rate at ~256 B+.\n");
    return 0;
}
