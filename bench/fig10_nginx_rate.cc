/**
 * @file
 * Figure 10: Nginx request processing rate on F4T vs Linux, one to
 * four server cores, versus the number of wrk connections.
 */

#include "bench_util.hh"
#include "nginx_common.hh"

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 10", "Nginx request rate: F4T vs Linux");

    sim::Tick warmup = sim::millisecondsToTicks(2);
    sim::Tick window = sim::millisecondsToTicks(4);

    for (std::size_t cores : {1u, 2u, 4u}) {
        std::printf("\n%zu server core%s:\n", cores,
                    cores == 1 ? "" : "s");
        bench::Table table({"flows", "Linux Mrps", "F4T Mrps",
                            "speedup"});
        for (std::size_t flows : {4u, 16u, 64u, 256u}) {
            bench::NginxResult linux_result = bench::runNginxLinux(
                cores, flows, warmup, window, /*jitter=*/false);
            bench::NginxResult f4t_result =
                bench::runNginxF4t(cores, flows, warmup, window);
            double speedup =
                linux_result.requestsPerSecond > 0
                    ? f4t_result.requestsPerSecond /
                          linux_result.requestsPerSecond
                    : 0;
            table.addRow(
                {std::to_string(flows),
                 bench::fmt("%.2f", linux_result.requestsPerSecond / 1e6),
                 bench::fmt("%.2f", f4t_result.requestsPerSecond / 1e6),
                 bench::fmt("%.2fx", speedup)});
        }
        table.print();
    }

    std::printf(
        "\nShape check (paper): at the saturation point (256 flows) F4T\n"
        "serves 2.6x-2.8x the requests of Linux with the same cores,\n"
        "because the cycles the kernel TCP stack burned now run Nginx\n"
        "itself (Section 5.2).\n");
    return 0;
}
