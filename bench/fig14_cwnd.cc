/**
 * @file
 * Figure 14: congestion window evolution of NewReno and CUBIC on F4T
 * versus the independent software reference stack (the role NS3 plays
 * in the paper).
 *
 * A single-flow bulk transfer runs over a 10 Gbps link with 250 us of
 * one-way delay (so the window dynamics are visible) and periodic
 * packet drops injected by the fault model. The F4T side programs the
 * algorithm into the FPU; the reference side is the from-scratch
 * floating-point SoftTcpStack. Matching sawtooth shapes demonstrate
 * the flexibility claim of Section 5.4.
 */

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"

namespace f4t
{
namespace
{

struct TracePoint
{
    double ms;
    double cwnd_segments;
};

std::vector<TracePoint>
traceF4t(const std::string &algorithm, const net::FaultModel &faults)
{
    core::EngineConfig config;
    config.numFpcs = 1;
    config.flowsPerFpc = 16;
    config.maxFlows = 64;
    config.congestionControl = algorithm;
    testbed::EnginePairWorld world(1, config, faults, 10e9);
    // Long link: 250 us propagation so cwnd dynamics are visible.
    // (The harness builds the link; rebuild it with more delay.)
    world.link = std::make_unique<net::Link>(
        world.sim, "longlink", 10e9, sim::microsecondsToTicks(250),
        faults);
    world.link->connect(*world.engineA, *world.engineB);
    world.engineA->setTransmit([&world](net::Packet &&pkt) {
        world.link->aToB().send(std::move(pkt));
    });
    world.engineB->setTransmit([&world](net::Packet &&pkt) {
        world.link->bToA().send(std::move(pkt));
    });

    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    auto client_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 8192;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    // The first active flow on engine A gets ID 0.
    std::vector<TracePoint> trace;
    for (int ms = 0; ms < 150; ++ms) {
        world.sim.runFor(sim::millisecondsToTicks(1));
        tcp::Tcb tcb = world.engineA->peekTcb(0);
        if (tcb.state == tcp::ConnState::established)
            trace.push_back({static_cast<double>(ms),
                             tcb.cwnd / 1460.0});
    }
    return trace;
}

std::vector<TracePoint>
traceReference(tcp::SoftCcAlgo algorithm, const net::FaultModel &faults)
{
    baseline::LinuxHostConfig host_config;
    host_config.cc = algorithm;
    host_config.chargeCosts = false; // pure protocol oracle
    host_config.latencyJitter = false;
    testbed::LinuxPairWorld world(1, host_config, faults, 10e9);
    world.link = std::make_unique<net::Link>(
        world.sim, "longlink", 10e9, sim::microsecondsToTicks(250),
        faults);
    world.link->connect(*world.hostA, *world.hostB);
    world.hostA->setTransmit([&world](net::Packet &&pkt) {
        world.link->aToB().send(std::move(pkt));
    });
    world.hostB->setTransmit([&world](net::Packet &&pkt) {
        world.link->bToA().send(std::move(pkt));
    });

    auto server_api = world.apiB(0);
    apps::BulkSinkConfig sink_config;
    apps::BulkSinkApp sink(server_api, sink_config);
    sink.start();

    auto client_api = world.apiA(0);
    apps::BulkSenderConfig sender_config;
    sender_config.peer = testbed::ipB();
    sender_config.requestBytes = 8192;
    apps::BulkSenderApp sender(client_api, sender_config);
    sender.start();

    tcp::SoftTcpStack &stack = world.hostA->stack(0);
    std::vector<TracePoint> trace;
    for (int ms = 0; ms < 150; ++ms) {
        world.sim.runFor(sim::millisecondsToTicks(1));
        double cwnd = stack.cwnd(1); // first connection ID
        if (cwnd > 0)
            trace.push_back({static_cast<double>(ms), cwnd / 1460.0});
    }
    return trace;
}

void
printPair(const char *name, const std::vector<TracePoint> &f4t_trace,
          const std::vector<TracePoint> &ref_trace)
{
    std::printf("\n%s congestion window (segments), 150 ms trace:\n",
                name);
    bench::Table table({"time (ms)", "F4T (FPU program)",
                        "reference (software oracle)"});
    for (std::size_t i = 0; i < f4t_trace.size() && i < ref_trace.size();
         i += 10) {
        table.addRow({bench::fmt("%.0f", f4t_trace[i].ms),
                      bench::fmt("%.1f", f4t_trace[i].cwnd_segments),
                      bench::fmt("%.1f", ref_trace[i].cwnd_segments)});
    }
    table.print();

    // Quantitative agreement: mean windows within a factor of two
    // (the traces see different random drop instants).
    double f4t_mean = 0, ref_mean = 0;
    for (const auto &p : f4t_trace)
        f4t_mean += p.cwnd_segments;
    for (const auto &p : ref_trace)
        ref_mean += p.cwnd_segments;
    f4t_mean /= f4t_trace.empty() ? 1 : f4t_trace.size();
    ref_mean /= ref_trace.empty() ? 1 : ref_trace.size();
    std::printf("mean cwnd: F4T %.1f segments, reference %.1f segments "
                "(ratio %.2f)\n",
                f4t_mean, ref_mean,
                ref_mean > 0 ? f4t_mean / ref_mean : 0.0);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 14",
                  "cwnd of F4T's FPU programs vs the software oracle");

    // Deterministic drop schedule so both simulations lose a packet at
    // the same instants ("inject occasional packet drops", Section
    // 5.4) — the paper's RTL-vs-NS3 comparison controls drops the
    // same way.
    net::FaultModel faults;
    for (int ms : {15, 40, 65, 90, 115, 135})
        faults.dropAtTicks.push_back(sim::millisecondsToTicks(ms));
    faults.seed = 20230617;

    printPair("NEW RENO", traceF4t("newreno", faults),
              traceReference(tcp::SoftCcAlgo::newReno, faults));
    printPair("CUBIC", traceF4t("cubic", faults),
              traceReference(tcp::SoftCcAlgo::cubic, faults));

    std::printf(
        "\nShape check (paper): both algorithms show the classic\n"
        "sawtooth on F4T, tracking the independent reference — the FPU\n"
        "programs faithfully implement the congestion behaviour, and\n"
        "swapping algorithms is a recompile of the FPU program only.\n");
    return 0;
}
