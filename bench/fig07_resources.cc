/**
 * @file
 * Figure 7b: FtEngine resource utilization on the Alveo U280, from
 * the analytical resource model (calibrated to the paper's published
 * totals; see DESIGN.md for the substitution note — we cannot run
 * Vivado synthesis).
 */

#include "bench_util.hh"
#include "core/resource_model.hh"

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);

    bench::banner("Figure 7b", "FtEngine resource utilization (U280)");

    for (std::size_t fpcs : {1u, 8u}) {
        core::ResourceModel model(fpcs, 128, /*hbm=*/true);
        std::printf("\nFtEngine with %zu FPC%s (HBM):\n", fpcs,
                    fpcs == 1 ? "" : "s");
        std::printf("%s", model.report().c_str());

        core::ResourceUsage total = model.total();
        double paper_lut = fpcs == 1 ? 16.0 : 23.0;
        double paper_ff = fpcs == 1 ? 11.0 : 15.0;
        double paper_bram = fpcs == 1 ? 27.0 : 32.0;
        std::printf("paper:  LUT %.0f%%  FF %.0f%%  BRAM %.0f%%   |   "
                    "model: LUT %.1f%%  FF %.1f%%  BRAM %.1f%%\n",
                    paper_lut, paper_ff, paper_bram, total.lutPercent(),
                    total.ffPercent(), total.bramPercent());
    }

    // Scaling study beyond the paper: more FPCs / deeper TCB tables.
    std::printf("\nConfiguration scaling (model projection):\n");
    bench::Table table({"FPCs", "flows/FPC", "LUT%", "FF%", "BRAM%"});
    for (std::size_t fpcs : {1u, 4u, 8u, 16u, 32u}) {
        for (std::size_t flows : {128u, 1024u}) {
            core::ResourceModel model(fpcs, flows, true);
            core::ResourceUsage total = model.total();
            table.addRow({std::to_string(fpcs), std::to_string(flows),
                          bench::fmt("%.1f", total.lutPercent()),
                          bench::fmt("%.1f", total.ffPercent()),
                          bench::fmt("%.1f", total.bramPercent())});
        }
    }
    table.print();
    return 0;
}
