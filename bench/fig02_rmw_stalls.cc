/**
 * @file
 * Figure 2: bulk data transfer performance of a design that stalls
 * 17 cycles per event for RMW atomicity (w-RMW, Limago-style) versus
 * a theoretical design with no RMW stalls that accepts one
 * arbitrary-length request per cycle at 100 MHz (w/o-RMW, the
 * idealized TONIC of Section 3.1). No link bottleneck is assumed.
 */

#include "baseline/stalling_engine.hh"
#include "baseline/tonic_model.hh"
#include "bench_util.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

/** Measured event rate of the stalling design (requests/s). */
double
measureStallingRate()
{
    sim::Simulation sim;
    tcp::NewRenoPolicy cc;
    tcp::FpuProgram program(cc);
    baseline::StallingEngineConfig config; // 16 + 1 = 17 cycles/event
    baseline::StallingEngine engine(sim, "wrmw", sim.netClock(), program,
                                    config);
    tcp::FlowId flow = engine.createSyntheticFlow();

    std::uint32_t offset = 0;
    sim::Tick window = sim::microsecondsToTicks(50);
    sim::Tick end = sim.now() + window;
    std::uint64_t before = engine.eventsProcessed();
    while (sim.now() < end) {
        while (engine.backlog() < 64) {
            offset += 16;
            tcp::TcpEvent ev;
            ev.flow = flow;
            ev.type = tcp::TcpEventType::userSend;
            ev.pointer =
                tcp::FpuProgram::initialSequence(flow) + 1 + offset;
            engine.injectEvent(ev);
        }
        sim.runFor(sim.netClock().period() * 32);
    }
    return (engine.eventsProcessed() - before) /
           sim::ticksToSeconds(window);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 2",
                  "bulk transfer: w-RMW stalls vs w/o-RMW (no link cap)");

    double wrmw_rate = measureStallingRate();
    baseline::TonicModel tonic;

    bench::Table table({"request size (B)", "w-RMW (Gbps)",
                        "w/o-RMW (Gbps)", "gap"});
    for (std::size_t size : {16u, 32u, 64u, 128u, 256u, 512u, 1024u,
                             2048u, 4096u}) {
        double wrmw = wrmw_rate * size * 8 / 1e9;
        double ideal = tonic.idealThroughputBps(size) / 1e9;
        table.addRow({std::to_string(size), bench::fmt("%.2f", wrmw),
                      bench::fmt("%.2f", ideal),
                      bench::fmt("%.1fx", ideal / wrmw)});
    }
    table.print();

    std::printf(
        "\nMeasured w-RMW event rate: %.1f M requests/s (paper: 322 MHz\n"
        "with a 17-cycle stall = 18.9 M/s). The w/o-RMW design is one\n"
        "request per 100 MHz cycle. The ~5.3x gap at every request size\n"
        "is the performance lost to RMW stalls (Section 3.1); at 128 B\n"
        "the stalling design cannot even reach 100 Gbps while the\n"
        "stall-free one exceeds it.\n",
        wrmw_rate / 1e6);
    return 0;
}
