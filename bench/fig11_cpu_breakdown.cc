/**
 * @file
 * Figure 11: CPU utilization breakdown of Nginx on Linux vs F4T (one
 * server core, 64 flows). F4T removes the kernel TCP cycles entirely;
 * the reclaimed cycles go to the application, which is why the request
 * rate rises ~2.8x. The remaining kernel time is filesystem access
 * (vfs_read of the HTML file), which offloading TCP cannot remove.
 */

#include <cstring>

#include "bench_util.hh"
#include "nginx_common.hh"
#include "obs/stage_report.hh"

namespace
{

/**
 * --spans: the same breakdown idea, but derived from causal-trace span
 * data instead of CPU cost-category counters — where a request's time
 * goes stage by stage, split into queueing and service, on an all-F4T
 * engine pair (both ends instrumented).
 */
int
runSpansMode(const std::string &out_path)
{
    using namespace f4t;
    if (!sim::trace::compiledIn) {
        std::fprintf(stderr,
                     "fig11: --spans needs a build with "
                     "F4T_ENABLE_TRACE=ON (the release preset compiles "
                     "the tracer out)\n");
        return 2;
    }
    bench::banner("Figure 11 (spans)",
                  "per-stage time breakdown from causal-trace spans "
                  "(F4T pair, 64 flows)");
    bench::TracedNginxRun run = bench::runNginxF4tPairTraced(
        64, sim::millisecondsToTicks(2), sim::millisecondsToTicks(5));
    std::printf("request rate: %.2f Mrps (all-F4T pair)\n\n",
                run.result.requestsPerSecond / 1e6);
    obs::printStageTable(stdout, *run.tracer);
    std::printf("\ncritical path of the slowest traced request:\n");
    obs::printSlowestCriticalPath(stdout, *run.tracer);
    if (!out_path.empty() &&
        obs::writeStageJson(out_path, *run.tracer,
                            obs::currentRunMeta())) {
        std::printf("\nwrote %s\n", out_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bool spans = false;
    std::string spans_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spans") == 0)
            spans = true;
        else if (std::strcmp(argv[i], "--spans-out") == 0 && i + 1 < argc)
            spans_out = argv[++i];
    }
    if (spans)
        return runSpansMode(spans_out);

    bench::banner("Figure 11",
                  "Nginx CPU breakdown: Linux vs F4T (1 core, 64 flows)");

    sim::Tick warmup = sim::millisecondsToTicks(2);
    sim::Tick window = sim::millisecondsToTicks(5);

    bench::NginxResult linux_result =
        bench::runNginxLinux(1, 64, warmup, window, /*jitter=*/false);
    bench::NginxResult f4t_result =
        bench::runNginxF4t(1, 64, warmup, window);

    auto share = [](const bench::NginxResult &r, double part) {
        double total = r.appCycles + r.tcpCycles + r.kernelCycles +
                       r.libraryCycles + r.filesystemCycles;
        return total > 0 ? 100.0 * part / total : 0.0;
    };

    bench::Table table({"category", "Linux cyc/req", "Linux %",
                        "F4T cyc/req", "F4T %"});
    table.addRow({"application",
                  bench::fmt("%.0f", linux_result.appCycles),
                  bench::fmt("%.0f%%",
                             share(linux_result, linux_result.appCycles)),
                  bench::fmt("%.0f", f4t_result.appCycles),
                  bench::fmt("%.0f%%",
                             share(f4t_result, f4t_result.appCycles))});
    table.addRow({"kernel TCP",
                  bench::fmt("%.0f", linux_result.tcpCycles),
                  bench::fmt("%.0f%%",
                             share(linux_result, linux_result.tcpCycles)),
                  bench::fmt("%.0f", f4t_result.tcpCycles),
                  bench::fmt("%.0f%%",
                             share(f4t_result, f4t_result.tcpCycles))});
    table.addRow(
        {"other kernel",
         bench::fmt("%.0f", linux_result.kernelCycles),
         bench::fmt("%.0f%%", share(linux_result,
                                    linux_result.kernelCycles)),
         bench::fmt("%.0f", f4t_result.kernelCycles),
         bench::fmt("%.0f%%", share(f4t_result, f4t_result.kernelCycles))});
    table.addRow(
        {"filesystem (vfs_read)",
         bench::fmt("%.0f", linux_result.filesystemCycles),
         bench::fmt("%.0f%%",
                    share(linux_result, linux_result.filesystemCycles)),
         bench::fmt("%.0f", f4t_result.filesystemCycles),
         bench::fmt("%.0f%%",
                    share(f4t_result, f4t_result.filesystemCycles))});
    table.addRow(
        {"F4T library",
         bench::fmt("%.0f", linux_result.libraryCycles),
         bench::fmt("%.0f%%",
                    share(linux_result, linux_result.libraryCycles)),
         bench::fmt("%.0f", f4t_result.libraryCycles),
         bench::fmt("%.0f%%", share(f4t_result,
                                    f4t_result.libraryCycles))});
    table.print();

    double app_gain = linux_result.appCycles > 0
                          ? (f4t_result.requestsPerSecond *
                             f4t_result.appCycles) /
                                (linux_result.requestsPerSecond *
                                 linux_result.appCycles)
                          : 0;
    std::printf(
        "\nrequest rate: Linux %.2f Mrps, F4T %.2f Mrps (%.2fx)\n"
        "application cycles per second: %.2fx (paper: 2.8x)\n"
        "kernel TCP cycles on F4T: %.0f (paper: all removed)\n",
        linux_result.requestsPerSecond / 1e6,
        f4t_result.requestsPerSecond / 1e6,
        f4t_result.requestsPerSecond / linux_result.requestsPerSecond,
        app_gain, f4t_result.tcpCycles);
    return 0;
}
