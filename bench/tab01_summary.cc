/**
 * @file
 * Table 1: summary of existing TCP implementations, generated from
 * the feature flags of the five systems in this repository.
 */

#include "baseline/tonic_model.hh"
#include "bench_util.hh"
#include "core/engine.hh"

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);

    bench::banner("Table 1", "summary of existing TCP implementations");

    baseline::TonicModel tonic;
    core::EngineConfig f4t_config;

    bench::Table table({"", "Host CPUs", "Embedded", "ASICs",
                        "Existing FPGAs", "F4T"});
    table.addRow({"Host CPU util.", "poor (37% on Nginx)",
                  "limited improvement", "good", "good", "good"});
    table.addRow({"Connectivity", "64K+", "64K+", "64K+",
                  std::to_string(tonic.maxFlows),
                  std::to_string(f4t_config.maxFlows) + "+"});
    table.addRow({"Flexibility", "low versatility", "low versatility",
                  "none", "low versatility", "high"});
    table.addRow({"Max algo latency", "n/a", "n/a", "fixed",
                  std::to_string(tonic.maxAlgorithmLatencyCycles) +
                      " cycle",
                  "unbounded (68+ tested)"});
    table.addRow({"Byte-level transfer", "yes", "yes", "yes",
                  "no (128 B segments)", "yes"});
    table.print();

    std::printf(
        "\nEvidence in this repository:\n"
        "  - host CPU cost: bench/fig01_nginx_linux (37%% TCP share),\n"
        "    bench/fig11_cpu_breakdown (F4T removes it);\n"
        "  - connectivity: bench/fig13_connectivity (64 K flows) vs the\n"
        "    TONIC model's %zu-flow SRAM bound;\n"
        "  - flexibility: bench/fig15_versatility (rate flat from 1 to\n"
        "    100-cycle algorithms) and bench/fig14_cwnd (NewReno and\n"
        "    CUBIC programmed as FPU programs).\n",
        tonic.maxFlows);
    return 0;
}
