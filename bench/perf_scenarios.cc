/**
 * @file
 * Open-loop scenario benchmark: latency distributions and goodput for
 * the workloads the closed-loop harnesses cannot express.
 *
 * perf_kernel and perf_datapath drive closed loops — a new request
 * only after the previous response — so offered load collapses exactly
 * when the system congests and tail latency never shows queueing. This
 * harness runs the src/load open-loop generators over the star testbed
 * (apps/testbed_star.hh): N client hosts and one server host behind a
 * net::Switch with a shared finite egress pool, so fan-in pressure
 * lands on a real queue that tail-drops.
 *
 * Scenarios (all on the serial kernel; the parallel equivalence for
 * this topology is pinned by tests/fuzz/test_parallel_differential):
 *  - open_loop_poisson: Poisson GET arrivals, bounded-Pareto sizes.
 *  - incast_8to1: 8 clients burst synchronized large SETs at the one
 *    server port; the shared egress pool oversubscribes and drops, and
 *    TCP loss recovery sets the p99/p999.
 *  - churn: connection open/GET/close lifecycles at >= 10k conn/s
 *    aggregate, lifecycle latency sampled open-to-closed.
 *  - kv_mixed: 90/10 GET/SET at log-normal sizes — the memcached-style
 *    mixed workload.
 *
 * Output: human-readable summary plus a JSON report (default
 * BENCH_scenarios.json) with schema {"bench": "scenarios",
 * "schema": 5, meta, scenarios[]}, gated in CI by f4t_report against
 * bench/baselines/BENCH_scenarios.json. Latency percentiles are
 * emitted as p50_us/p99_us/p999_us (gated lower-is-better by the
 * "_us" suffix); requests_per_sec, conns_per_sec and goodput_gbps
 * gate higher-is-better. Schema 5 adds the profiler meta fields
 * (profile_enabled/profiled) and, under --profile, a per-scenario
 * "profile" member with the wall-clock cost attribution
 * (obs::writeProfileJson).
 *
 * "fingerprint" hashes simulated quantities only (final tick, request
 * and byte counters, switch forward/drop totals, cable counters): it
 * must be identical run-to-run for a scenario — the harness re-runs
 * one scenario and fails on any drift — and may only change when
 * modeled behavior legitimately changes.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/kv.hh"
#include "apps/testbed_star.hh"
#include "bench_util.hh"
#include "load/open_loop.hh"
#include "load/syn_flood.hh"
#include "obs/profiler.hh"
#include "sim/profile_scope.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

struct ScenarioResult
{
    std::string name;
    double wallSeconds = 0;
    double windowSeconds = 0;
    std::uint64_t threads = 1;
    std::uint64_t requestsIssued = 0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t goodputBytes = 0;
    double p50Us = 0;
    double p99Us = 0;
    double p999Us = 0;
    std::uint64_t switchDrops = 0;
    /** Churn only: completed connection lifecycles per second. */
    double connsPerSec = 0;
    bool hasConnRate = false;
    std::uint64_t fingerprint = 0;
    /** Set when --profile was active during the measured window. */
    bool profiled = false;
    obs::ProfileReport profile;

    double
    requestsPerSec() const
    {
        return windowSeconds > 0 ? requestsCompleted / windowSeconds : 0;
    }

    double
    goodputGbps() const
    {
        return windowSeconds > 0
                   ? goodputBytes * 8.0 / windowSeconds / 1e9
                   : 0;
    }
};

/** FNV-1a over simulated quantities: stable across harness rewrites. */
struct Fingerprint
{
    std::uint64_t state = 1469598103934665603ULL;

    void
    mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (i * 8)) & 0xff;
            state *= 1099511628211ULL;
        }
    }
};

double
wallSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Under --profile, attribute the measured window's profiler delta. */
void
attachProfile(ScenarioResult &result, const sim::prof::Snapshot &before)
{
    if (!bench::Obs::profiling())
        return;
    result.profiled = true;
    result.profile = obs::makeProfileReport(sim::prof::since(before),
                                            result.wallSeconds);
}

/** Engine sizing shared by every scenario host. */
core::EngineConfig
scenarioEngine(std::size_t tcp_buffer_bytes)
{
    core::EngineConfig config;
    config.numFpcs = 4;
    config.flowsPerFpc = 64;
    config.maxFlows = 4096;
    config.tcpBufferBytes = tcp_buffer_bytes;
    return config;
}

/** One open-loop KV scenario over the star testbed. */
struct OpenLoopScenario
{
    std::string name;
    std::size_t clients = 8;
    std::size_t connections = 4;
    std::size_t tcpBufferBytes = 32 * 1024;
    std::size_t sharedEgressBytes = 256 * 1024;
    load::ArrivalSpec arrivals;
    load::SizeSpec sizes;
    double readFraction = 1.0;
    sim::Tick warmup = 0;
    sim::Tick window = 0;
    /** Override the engine flow-table size; 0 keeps the default. */
    std::size_t maxFlows = 0;
    /** >0 adds a SYN-flood injector at this rate on an extra switch
     *  port: adversarial half-open churn against the server's passive
     *  open path while the legit clients are measured. */
    double synFloodPerSec = 0;
};

ScenarioResult
runOpenLoop(const OpenLoopScenario &sc)
{
    testbed::StarConfig star;
    star.clients = sc.clients;
    star.engine = scenarioEngine(sc.tcpBufferBytes);
    if (sc.maxFlows > 0)
        star.engine.maxFlows = sc.maxFlows;
    star.fabric.sharedEgressBytes = sc.sharedEgressBytes;
    if (sc.synFloodPerSec > 0)
        star.extraPorts = 1;
    testbed::StarWorld world(star);

    std::unique_ptr<load::SynFloodApp> flood;
    if (sc.synFloodPerSec > 0) {
        load::SynFloodConfig flood_config;
        flood_config.target = testbed::starServerIp();
        flood_config.targetMac = testbed::starServerMac();
        flood_config.synsPerSec = sc.synFloodPerSec;
        flood_config.startAt = sc.warmup / 2;
        flood = std::make_unique<load::SynFloodApp>(
            world.sim, "synflood", world.fabric->port(sc.clients + 1),
            flood_config);
        flood->start();
    }

    sim::Histogram latency(world.sim.stats(), "bench.latency_us",
                           "open-loop request latency (us)");

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerConfig server_config;
    apps::KvServerApp server(server_api, server_config);
    server.start();

    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::vector<std::unique_ptr<load::OpenLoopClientApp>> clients;
    for (std::size_t i = 0; i < sc.clients; ++i) {
        apis.push_back(world.makeClientApi(i));
        load::OpenLoopConfig config;
        config.peer = testbed::starServerIp();
        config.connections = sc.connections;
        config.streamBase = static_cast<std::uint32_t>(i) * 64;
        config.clientId = static_cast<std::uint32_t>(i);
        config.seed = 0xF47'0001;
        config.arrivals = sc.arrivals;
        config.valueSizes = sc.sizes;
        config.readFraction = sc.readFraction;
        // Connections come up in the first few microseconds; steady
        // arrivals begin well inside warmup so the window measures
        // steady state (incast uses warmup-aligned rounds instead).
        config.startAt = sc.warmup / 2;
        config.latencyUs = &latency;
        clients.push_back(std::make_unique<load::OpenLoopClientApp>(
            *apis.back(), config));
        clients.back()->start();
    }

    world.sim.runFor(sc.warmup);

    std::uint64_t issued0 = 0, completed0 = 0, goodput0 =
        server.valueBytesIn();
    for (const auto &c : clients) {
        issued0 += c->issued();
        completed0 += c->completed();
        goodput0 += c->valueBytesReceived();
    }
    std::uint64_t drops0 = world.fabric->totalDropped();
    latency.reset();

    sim::prof::Snapshot prof_before = sim::prof::capture();
    auto wall0 = std::chrono::steady_clock::now();
    world.sim.runFor(sc.window);

    ScenarioResult result;
    result.name = sc.name;
    result.wallSeconds = wallSince(wall0);
    attachProfile(result, prof_before);
    result.windowSeconds =
        static_cast<double>(sc.window) / sim::ticksPerSecond;
    std::uint64_t goodput1 = server.valueBytesIn();
    for (const auto &c : clients) {
        result.requestsIssued += c->issued();
        result.requestsCompleted += c->completed();
        goodput1 += c->valueBytesReceived();
    }
    result.requestsIssued -= issued0;
    result.requestsCompleted -= completed0;
    result.goodputBytes = goodput1 - goodput0;
    result.p50Us = latency.percentile(50);
    result.p99Us = latency.percentile(99);
    result.p999Us = latency.percentile(99.9);
    result.switchDrops = world.fabric->totalDropped() - drops0;

    Fingerprint fp;
    fp.mix(world.sim.now());
    for (const auto &c : clients) {
        fp.mix(c->issued());
        fp.mix(c->dispatched());
        fp.mix(c->completed());
        fp.mix(c->valueBytesReceived());
        fp.mix(c->valueBytesSent());
    }
    fp.mix(server.gets());
    fp.mix(server.sets());
    fp.mix(server.valueBytesIn());
    fp.mix(server.valueBytesOut());
    fp.mix(world.fabric->totalForwarded());
    fp.mix(world.fabric->totalDropped());
    fp.mix(world.serverLink->aToB().packetsSent());
    fp.mix(world.serverLink->aToB().bytesSent());
    fp.mix(world.serverLink->bToA().packetsSent());
    fp.mix(world.serverLink->bToA().bytesSent());
    if (flood) {
        fp.mix(flood->sent());
        fp.mix(world.serverEngine->flowsActive());
        fp.mix(world.fabric->routeMisses());
        // routeMisses ~ SYN-ACK (re)transmissions toward spoofed
        // sources; flowsActive ~ half-open flows pinned in the victim.
        std::printf("%s: %llu SYNs injected, %llu half-open flows "
                    "pinned, %llu route-missed replies\n"
                    "  drill into one flood flow from a crash dump: "
                    "f4t_blackbox --flow 0x%08x <dump.f4tfr>\n",
                    sc.name.c_str(),
                    static_cast<unsigned long long>(flood->sent()),
                    static_cast<unsigned long long>(
                        world.serverEngine->flowsActive()),
                    static_cast<unsigned long long>(
                        world.fabric->routeMisses()),
                    flood->lastFlowHash());
    }
    result.fingerprint = fp.state;
    return result;
}

ScenarioResult
runChurn(const std::string &name, std::size_t num_clients,
         double opens_per_sec_per_client, sim::Tick warmup,
         sim::Tick window)
{
    testbed::StarConfig star;
    star.clients = num_clients;
    star.engine = scenarioEngine(16 * 1024);
    testbed::StarWorld world(star);

    sim::Histogram lifecycle(world.sim.stats(), "bench.lifecycle_us",
                             "connection open-to-closed lifecycle (us)");

    apps::F4tSocketApi server_api = world.serverApi();
    apps::KvServerConfig server_config;
    apps::KvServerApp server(server_api, server_config);
    server.start();

    std::vector<std::unique_ptr<apps::F4tSocketApi>> apis;
    std::vector<std::unique_ptr<load::ChurnClientApp>> clients;
    for (std::size_t i = 0; i < num_clients; ++i) {
        apis.push_back(world.makeClientApi(i));
        load::ChurnConfig config;
        config.peer = testbed::starServerIp();
        config.clientId = static_cast<std::uint32_t>(i);
        config.seed = 0xF47'0002;
        config.arrivals =
            load::ArrivalSpec::poisson(opens_per_sec_per_client);
        config.requestBytes = 512;
        config.startAt = warmup / 2;
        config.lifecycleUs = &lifecycle;
        clients.push_back(
            std::make_unique<load::ChurnClientApp>(*apis.back(), config));
        clients.back()->start();
    }

    world.sim.runFor(warmup);

    std::uint64_t opened0 = 0, completed0 = 0, bytes0 = 0;
    for (const auto &c : clients) {
        opened0 += c->opened();
        completed0 += c->completed();
        bytes0 += c->valueBytesReceived();
    }
    std::uint64_t drops0 = world.fabric->totalDropped();
    lifecycle.reset();

    sim::prof::Snapshot prof_before = sim::prof::capture();
    auto wall0 = std::chrono::steady_clock::now();
    world.sim.runFor(window);

    ScenarioResult result;
    result.name = name;
    result.wallSeconds = wallSince(wall0);
    attachProfile(result, prof_before);
    result.windowSeconds =
        static_cast<double>(window) / sim::ticksPerSecond;
    std::uint64_t bytes1 = 0;
    for (const auto &c : clients) {
        result.requestsIssued += c->opened();
        result.requestsCompleted += c->completed();
        bytes1 += c->valueBytesReceived();
    }
    result.requestsIssued -= opened0;
    result.requestsCompleted -= completed0;
    result.goodputBytes = bytes1 - bytes0;
    result.p50Us = lifecycle.percentile(50);
    result.p99Us = lifecycle.percentile(99);
    result.p999Us = lifecycle.percentile(99.9);
    result.switchDrops = world.fabric->totalDropped() - drops0;
    result.connsPerSec = result.windowSeconds > 0
                             ? result.requestsCompleted /
                                   result.windowSeconds
                             : 0;
    result.hasConnRate = true;

    Fingerprint fp;
    fp.mix(world.sim.now());
    for (const auto &c : clients) {
        fp.mix(c->opened());
        fp.mix(c->completed());
        fp.mix(c->failed());
        fp.mix(c->valueBytesReceived());
    }
    fp.mix(server.gets());
    fp.mix(server.valueBytesOut());
    fp.mix(world.fabric->totalForwarded());
    fp.mix(world.fabric->totalDropped());
    fp.mix(world.serverLink->aToB().packetsSent());
    fp.mix(world.serverLink->bToA().packetsSent());
    result.fingerprint = fp.state;
    return result;
}

void
writeJson(const std::string &path,
          const std::vector<ScenarioResult> &results)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "perf_scenarios: cannot write %s\n",
                     path.c_str());
        return;
    }
    unsigned max_threads = 1;
    for (const ScenarioResult &r : results)
        max_threads = std::max(max_threads, unsigned(r.threads));

    std::fprintf(out, "{\n  \"bench\": \"scenarios\",\n  \"schema\": 5,\n");
    bench::writeRunMeta(out, 2, max_threads);
    std::fprintf(out, ",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::fprintf(out,
                     "    {\n"
                     "      \"name\": \"%s\",\n"
                     "      \"threads\": %llu,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"requests\": %llu,\n"
                     "      \"requests_per_sec\": %.1f,\n"
                     "      \"goodput_gbps\": %.4f,\n"
                     "      \"p50_us\": %.3f,\n"
                     "      \"p99_us\": %.3f,\n"
                     "      \"p999_us\": %.3f,\n"
                     "      \"switch_drops\": %llu,\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.threads),
                     r.wallSeconds,
                     static_cast<unsigned long long>(r.requestsCompleted),
                     r.requestsPerSec(), r.goodputGbps(), r.p50Us,
                     r.p99Us, r.p999Us,
                     static_cast<unsigned long long>(r.switchDrops));
        if (r.hasConnRate)
            std::fprintf(out, "      \"conns_per_sec\": %.1f,\n",
                         r.connsPerSec);
        if (r.profiled) {
            obs::writeProfileJson(out, r.profile, 6);
            std::fprintf(out, ",\n");
        }
        std::fprintf(out,
                     "      \"fingerprint\": \"%016llx\"\n"
                     "    }%s\n",
                     static_cast<unsigned long long>(r.fingerprint),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    sim::setVerbose(false);
    bench::Obs::install(argc, argv); // strips capture flags from argv

    // --smoke: same scenarios at reduced rates and windows so a ctest
    // entry (label: scenarios) keeps the harness building and running
    // without spending real time. The full configuration is the
    // committed baseline CI gates against.
    bool smoke = false;
    std::string out_path = "BENCH_scenarios.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    bench::banner("perf_scenarios",
                  "open-loop tail latency and goodput scenarios");

    auto us = [](std::uint64_t n) { return sim::microsecondsToTicks(n); };

    // Poisson GETs at 8 x 150k req/s (smoke: 8 x 40k), bounded-Pareto
    // response sizes — the baseline open-loop latency scenario.
    OpenLoopScenario poisson;
    poisson.name = "open_loop_poisson";
    poisson.arrivals =
        load::ArrivalSpec::poisson(smoke ? 40'000.0 : 150'000.0);
    poisson.sizes = load::SizeSpec::boundedPareto(1.3, 256, 65536);
    poisson.warmup = us(smoke ? 100 : 300);
    poisson.window = us(smoke ? 150 : 1500);

    // Synchronized 24 KiB SET rounds from all 8 clients every 100 us
    // into a 96 KiB shared egress pool: ~8x oversubscription at the
    // server port on every round, so the pool tail-drops and the tail
    // is set by TCP loss recovery.
    OpenLoopScenario incast;
    incast.name = "incast_8to1";
    incast.connections = 1;
    incast.tcpBufferBytes = 64 * 1024;
    incast.sharedEgressBytes = 96 * 1024;
    incast.arrivals = load::ArrivalSpec::fixedEvery(us(100));
    incast.sizes = load::SizeSpec::fixedSize(24 * 1024);
    incast.readFraction = 0.0;
    incast.warmup = us(200);
    // The RTO floor is 5 ms: a drop-stalled round recovers ~5 ms
    // later, so the window must be several RTOs wide for the p999 to
    // capture the recovery tail rather than just the survivors.
    incast.window = us(smoke ? 400 : 12000);

    // Poisson GETs under a 1M SYN/s flood (smoke: 200k) against a
    // 512-flow server table: the flood pins half-open flows until the
    // table exhausts mid-window, so legit tail latency and goodput are
    // measured through adversarial control-path overload — passive
    // opens burning FPC cycles, scheduler churn from half-open
    // installs, SYN-ACK retransmissions into route-miss drops.
    OpenLoopScenario synflood;
    synflood.name = "syn_flood";
    synflood.clients = 4;
    synflood.maxFlows = 512;
    synflood.arrivals =
        load::ArrivalSpec::poisson(smoke ? 30'000.0 : 100'000.0);
    synflood.sizes = load::SizeSpec::boundedPareto(1.3, 256, 16384);
    synflood.synFloodPerSec = smoke ? 200'000.0 : 1'000'000.0;
    synflood.warmup = us(smoke ? 100 : 300);
    synflood.window = us(smoke ? 150 : 1500);

    // 90/10 GET/SET at log-normal value sizes, 8 x 100k req/s
    // (smoke: 8 x 30k) — the memcached-style mixed workload.
    OpenLoopScenario mixed;
    mixed.name = "kv_mixed";
    mixed.arrivals =
        load::ArrivalSpec::poisson(smoke ? 30'000.0 : 100'000.0);
    mixed.sizes = load::SizeSpec::logNormalSize(1024.0, 0.8, 64, 32768);
    mixed.readFraction = 0.9;
    mixed.warmup = us(smoke ? 100 : 300);
    mixed.window = us(smoke ? 150 : 1200);

    std::vector<ScenarioResult> results;
    results.push_back(runOpenLoop(poisson));
    results.push_back(runOpenLoop(incast));
    // 8 x 12.5k conn/s = 100k conn/s offered (smoke: 8 x 5k = 40k),
    // both past the 10k conn/s scenario floor.
    results.push_back(runChurn("churn", 8, smoke ? 5'000.0 : 12'500.0,
                               us(200), us(smoke ? 400 : 2500)));
    results.push_back(runOpenLoop(mixed));
    results.push_back(runOpenLoop(synflood));

    bench::Table table({"scenario", "reqs", "req/s", "goodput Gb/s",
                        "p50 us", "p99 us", "p999 us", "drops",
                        "fingerprint"});
    for (const ScenarioResult &r : results) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(r.fingerprint));
        table.addRow({r.name, std::to_string(r.requestsCompleted),
                      bench::fmt("%.0f", r.requestsPerSec()),
                      bench::fmt("%.3f", r.goodputGbps()),
                      bench::fmt("%.2f", r.p50Us),
                      bench::fmt("%.2f", r.p99Us),
                      bench::fmt("%.2f", r.p999Us),
                      std::to_string(r.switchDrops), fp});
    }
    table.print();

    if (bench::Obs::profiling()) {
        std::printf("\nper-scenario wall-clock cost attribution:\n");
        for (const ScenarioResult &r : results) {
            std::printf("%s:\n", r.name.c_str());
            obs::printProfileTable(stdout, r.profile);
        }
    }

    // Determinism cross-check: rebuild and re-run the incast scenario
    // from scratch; the fingerprint hashes simulated quantities only,
    // so any drift means hidden host state leaked into the model.
    ScenarioResult rerun = runOpenLoop(incast);
    if (rerun.fingerprint != results[1].fingerprint) {
        std::fprintf(stderr,
                     "perf_scenarios: FINGERPRINT MISMATCH: incast_8to1 "
                     "re-run %016llx vs %016llx — scenario is not "
                     "deterministic\n",
                     static_cast<unsigned long long>(rerun.fingerprint),
                     static_cast<unsigned long long>(
                         results[1].fingerprint));
        return 1;
    }

    writeJson(out_path, results);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
