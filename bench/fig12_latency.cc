/**
 * @file
 * Figure 12: median and 99th-percentile latency of Nginx on Linux vs
 * F4T (one server core). Despite FtEngine's deferred event processing,
 * F4T's latency is far lower: the library polls in userspace while
 * Linux responses ride on scheduler/softirq wakeups with a heavy tail
 * (3.7x median, 26x p99 in the paper).
 */

#include "bench_util.hh"
#include "nginx_common.hh"

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 12", "Nginx latency: Linux vs F4T (1 core)");

    sim::Tick warmup = sim::millisecondsToTicks(2);
    sim::Tick window = sim::millisecondsToTicks(12);

    bench::Table table({"flows", "Linux p50 (us)", "F4T p50 (us)",
                        "ratio", "Linux p99 (us)", "F4T p99 (us)",
                        "ratio"});
    for (std::size_t flows : {4u, 16u, 64u}) {
        bench::NginxResult linux_result = bench::runNginxLinux(
            1, flows, warmup, window, /*jitter=*/true);
        bench::NginxResult f4t_result =
            bench::runNginxF4t(1, flows, warmup, window);
        table.addRow(
            {std::to_string(flows),
             bench::fmt("%.1f", linux_result.latencyP50Us),
             bench::fmt("%.1f", f4t_result.latencyP50Us),
             bench::fmt("%.1fx", f4t_result.latencyP50Us > 0
                                     ? linux_result.latencyP50Us /
                                           f4t_result.latencyP50Us
                                     : 0),
             bench::fmt("%.1f", linux_result.latencyP99Us),
             bench::fmt("%.1f", f4t_result.latencyP99Us),
             bench::fmt("%.1fx", f4t_result.latencyP99Us > 0
                                     ? linux_result.latencyP99Us /
                                           f4t_result.latencyP99Us
                                     : 0)});
    }
    table.print();

    std::printf(
        "\nShape check (paper, 64 flows): 3.7x lower median and 26x\n"
        "lower p99 on F4T — the deferred FPC processing adds at most\n"
        "~1 us (one round-robin iteration), negligible against kernel\n"
        "wakeup jitter (Section 5.2).\n");
    return 0;
}
