/**
 * @file
 * Figure 12: median and 99th-percentile latency of Nginx on Linux vs
 * F4T (one server core). Despite FtEngine's deferred event processing,
 * F4T's latency is far lower: the library polls in userspace while
 * Linux responses ride on scheduler/softirq wakeups with a heavy tail
 * (3.7x median, 26x p99 in the paper).
 */

#include <cstring>

#include "bench_util.hh"
#include "nginx_common.hh"
#include "obs/stage_report.hh"

namespace
{

/**
 * --spans: per-stage latency attribution for the F4T side, from real
 * causal-trace span data on an all-F4T engine pair. The e2e row is the
 * histogram the p50/p99 figures derive from: a traced request runs
 * send() on one host to delivery on the other, so the stage p50s sum
 * (within queue overlap) to the e2e p50 printed below it.
 */
int
runSpansMode(const std::string &out_path)
{
    using namespace f4t;
    if (!sim::trace::compiledIn) {
        std::fprintf(stderr,
                     "fig12: --spans needs a build with "
                     "F4T_ENABLE_TRACE=ON (the release preset compiles "
                     "the tracer out)\n");
        return 2;
    }
    bench::banner("Figure 12 (spans)",
                  "per-stage latency from causal-trace spans "
                  "(F4T pair, 64 flows)");
    bench::TracedNginxRun run = bench::runNginxF4tPairTraced(
        64, sim::millisecondsToTicks(2), sim::millisecondsToTicks(12));
    obs::printStageTable(stdout, *run.tracer);

    sim::Histogram &e2e = run.tracer->e2e();
    std::printf(
        "\ntraced send->deliver latency (histogram-derived): "
        "p50 %.3f us, p99 %.3f us over %llu requests\n",
        e2e.percentile(50.0), e2e.percentile(99.0),
        static_cast<unsigned long long>(e2e.count()));
    std::printf(
        "HTTP transaction latency (load-generator view, two traced "
        "sends + server think time): p50 %.1f us, p99 %.1f us\n",
        run.result.latencyP50Us, run.result.latencyP99Us);
    std::printf("\ncritical path of the slowest traced request:\n");
    obs::printSlowestCriticalPath(stdout, *run.tracer);
    if (!out_path.empty() &&
        obs::writeStageJson(out_path, *run.tracer,
                            obs::currentRunMeta())) {
        std::printf("\nwrote %s\n", out_path.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bool spans = false;
    std::string spans_out;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--spans") == 0)
            spans = true;
        else if (std::strcmp(argv[i], "--spans-out") == 0 && i + 1 < argc)
            spans_out = argv[++i];
    }
    if (spans)
        return runSpansMode(spans_out);

    bench::banner("Figure 12", "Nginx latency: Linux vs F4T (1 core)");

    sim::Tick warmup = sim::millisecondsToTicks(2);
    sim::Tick window = sim::millisecondsToTicks(12);

    bench::Table table({"flows", "Linux p50 (us)", "F4T p50 (us)",
                        "ratio", "Linux p99 (us)", "F4T p99 (us)",
                        "ratio"});
    for (std::size_t flows : {4u, 16u, 64u}) {
        bench::NginxResult linux_result = bench::runNginxLinux(
            1, flows, warmup, window, /*jitter=*/true);
        bench::NginxResult f4t_result =
            bench::runNginxF4t(1, flows, warmup, window);
        table.addRow(
            {std::to_string(flows),
             bench::fmt("%.1f", linux_result.latencyP50Us),
             bench::fmt("%.1f", f4t_result.latencyP50Us),
             bench::fmt("%.1fx", f4t_result.latencyP50Us > 0
                                     ? linux_result.latencyP50Us /
                                           f4t_result.latencyP50Us
                                     : 0),
             bench::fmt("%.1f", linux_result.latencyP99Us),
             bench::fmt("%.1f", f4t_result.latencyP99Us),
             bench::fmt("%.1fx", f4t_result.latencyP99Us > 0
                                     ? linux_result.latencyP99Us /
                                           f4t_result.latencyP99Us
                                     : 0)});
    }
    table.print();

    std::printf(
        "\nShape check (paper, 64 flows): 3.7x lower median and 26x\n"
        "lower p99 on F4T — the deferred FPC processing adds at most\n"
        "~1 us (one round-robin iteration), negligible against kernel\n"
        "wakeup jitter (Section 5.2).\n");
    return 0;
}
