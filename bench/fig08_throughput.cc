/**
 * @file
 * Figure 8: end-to-end throughput of Linux and F4T with 64 B and
 * 128 B requests over a 100 Gbps link, for (a) bulk data transfer
 * (one flow per core, iPerf-style) and (b) round-robin requests
 * (16 flows per core).
 */

#include "apps/testbed.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"

namespace f4t
{
namespace
{

struct Result
{
    double gbps;
    double mrps;
};

Result
runF4t(std::size_t cores, std::size_t request_bytes, bool round_robin,
       sim::Tick warmup, sim::Tick window)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 4096;
    testbed::EnginePairWorld world(cores, config);

    // Receiver side: one sink thread per core.
    std::vector<std::unique_ptr<apps::F4tSocketApi>> sink_apis;
    std::vector<std::unique_ptr<apps::BulkSinkApp>> sinks;
    for (std::size_t i = 0; i < cores; ++i) {
        sink_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeB, i, world.cpuB->core(i)));
        apps::BulkSinkConfig sink_config;
        sink_config.port = 5001;
        sinks.push_back(std::make_unique<apps::BulkSinkApp>(
            *sink_apis.back(), sink_config));
        sinks.back()->start();
    }

    std::vector<std::unique_ptr<apps::F4tSocketApi>> send_apis;
    std::vector<std::unique_ptr<apps::BulkSenderApp>> bulk;
    std::vector<std::unique_ptr<apps::RoundRobinSenderApp>> rr;
    for (std::size_t i = 0; i < cores; ++i) {
        send_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeA, i, world.cpuA->core(i)));
        if (round_robin) {
            apps::RoundRobinSenderConfig sender_config;
            sender_config.peer = testbed::ipB();
            sender_config.requestBytes = request_bytes;
            sender_config.flows = 16;
            rr.push_back(std::make_unique<apps::RoundRobinSenderApp>(
                *send_apis.back(), sender_config));
            rr.back()->start();
        } else {
            apps::BulkSenderConfig sender_config;
            sender_config.peer = testbed::ipB();
            sender_config.requestBytes = request_bytes;
            bulk.push_back(std::make_unique<apps::BulkSenderApp>(
                *send_apis.back(), sender_config));
            bulk.back()->start();
        }
    }

    world.sim.runFor(warmup);
    std::uint64_t bytes_before = 0;
    for (auto &sink : sinks)
        bytes_before += sink->bytesReceived();
    world.sim.runFor(window);
    std::uint64_t bytes = 0;
    for (auto &sink : sinks)
        bytes += sink->bytesReceived();
    bytes -= bytes_before;

    return Result{bench::gbps(bytes, window),
                  bench::mrps(bytes / request_bytes, window)};
}

Result
runLinux(std::size_t cores, std::size_t request_bytes, bool round_robin,
         sim::Tick warmup, sim::Tick window)
{
    baseline::LinuxHostConfig host_config;
    host_config.latencyJitter = false; // throughput experiment
    testbed::LinuxPairWorld world(cores, host_config);

    std::vector<std::unique_ptr<apps::LinuxSocketApi>> sink_apis;
    std::vector<std::unique_ptr<apps::BulkSinkApp>> sinks;
    for (std::size_t i = 0; i < cores; ++i) {
        sink_apis.push_back(std::make_unique<apps::LinuxSocketApi>(
            world.sim, *world.hostB, i));
        apps::BulkSinkConfig sink_config;
        sinks.push_back(std::make_unique<apps::BulkSinkApp>(
            *sink_apis.back(), sink_config));
        sinks.back()->start();
    }

    // Low-locality penalty applies to the round-robin pattern
    // (Fig. 8b: many small packets, no TSO batching).
    double penalty =
        round_robin ? host::LinuxCosts::smallFlowPenalty : 0.0;

    std::vector<std::unique_ptr<apps::LinuxSocketApi>> send_apis;
    std::vector<std::unique_ptr<apps::BulkSenderApp>> bulk;
    std::vector<std::unique_ptr<apps::RoundRobinSenderApp>> rr;
    for (std::size_t i = 0; i < cores; ++i) {
        send_apis.push_back(std::make_unique<apps::LinuxSocketApi>(
            world.sim, *world.hostA, i, penalty));
        if (round_robin) {
            apps::RoundRobinSenderConfig sender_config;
            sender_config.peer = testbed::ipB();
            sender_config.requestBytes = request_bytes;
            sender_config.flows = 16;
            rr.push_back(std::make_unique<apps::RoundRobinSenderApp>(
                *send_apis.back(), sender_config));
            rr.back()->start();
        } else {
            apps::BulkSenderConfig sender_config;
            sender_config.peer = testbed::ipB();
            sender_config.requestBytes = request_bytes;
            bulk.push_back(std::make_unique<apps::BulkSenderApp>(
                *send_apis.back(), sender_config));
            bulk.back()->start();
        }
    }

    world.sim.runFor(warmup);
    std::uint64_t bytes_before = 0;
    for (auto &sink : sinks)
        bytes_before += sink->bytesReceived();
    world.sim.runFor(window);
    std::uint64_t bytes = 0;
    for (auto &sink : sinks)
        bytes += sink->bytesReceived();
    bytes -= bytes_before;

    return Result{bench::gbps(bytes, window),
                  bench::mrps(bytes / request_bytes, window)};
}

void
section(bool round_robin, const char *paper_note)
{
    std::printf("\n%s (%s):\n",
                round_robin ? "(b) round-robin requests, 16 flows/core"
                            : "(a) bulk data transfer, 1 flow/core",
                paper_note);
    bench::Table table({"req size", "cores", "Linux Gbps", "F4T Gbps",
                        "F4T Mrps"});
    sim::Tick warmup = sim::microsecondsToTicks(300);
    sim::Tick window = sim::microsecondsToTicks(300);
    for (std::size_t size : {64u, 128u}) {
        for (std::size_t cores : {1u, 2u, 4u, 8u}) {
            Result linux_result =
                runLinux(cores, size, round_robin, warmup, window);
            Result f4t_result =
                runF4t(cores, size, round_robin, warmup, window);
            table.addRow({std::to_string(size), std::to_string(cores),
                          bench::fmt("%.2f", linux_result.gbps),
                          bench::fmt("%.1f", f4t_result.gbps),
                          bench::fmt("%.1f", f4t_result.mrps)});
        }
    }
    table.print();
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    bench::Obs::install(argc, argv);
    sim::setVerbose(false);

    bench::banner("Figure 8",
                  "throughput with different request patterns (100 Gbps)");

    section(false,
            "paper: Linux 8.3 Gbps @8C/128B; F4T 45 Gbps @1C, 87 @2C, "
            "92.6 @8C");
    section(true,
            "paper: Linux <1 Gbps; F4T 35 Gbps @1C, 63 @2C, 90 @8C");

    std::printf(
        "\nShape check (paper): Linux cannot saturate the link at small\n"
        "request sizes no matter the cores; F4T approaches line rate\n"
        "with two cores on bulk, and still reaches ~90 Gbps on the\n"
        "round-robin pattern because accumulated events grow into\n"
        "large segments when the link is the bottleneck (Section 5.1).\n");
    return 0;
}
