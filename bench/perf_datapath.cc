/**
 * @file
 * Wall-clock scale benchmark for the batched data path: many
 * concurrent flows pushing traffic in both directions at once.
 *
 * perf_kernel measures the kernel on one saturated bulk flow; this
 * harness measures the opposite corner — the Fig. 13 connectivity
 * shape at full width. Two FtEngines are cabled at 100 Gbps and both
 * sides run 128 B echo servers *and* echo clients, so every link
 * direction carries a mix of requests and responses for >= 10 k
 * concurrent connections. That stresses exactly what the batched
 * pipeline and the hash/dense flow tables are for: per-packet flow
 * lookup over a huge working set, burst link delivery, and TCB
 * migration far past the SRAM-resident population.
 *
 * The same workload also runs on the partitioned parallel kernel
 * (sim/parallel.hh): each endpoint in its own Simulation, advanced by
 * a ParallelExecutor at --threads workers. Scenarios are named
 * many_flows (serial oracle) and many_flows_tN (parallel, N workers);
 * all many_flows_tN fingerprints must match each other exactly (the
 * worker count may not leak into simulated behavior — checked at the
 * end of every run, --smoke included).
 *
 * Output: a human-readable summary plus a JSON file (default
 * BENCH_datapath.json) with the same schema perf_kernel emits
 * ({"bench": "datapath", "schema": 5, meta, scenarios[]}), gated in CI
 * by f4t_report against bench/baselines/BENCH_datapath.json. Schema 3
 * added per-scenario "threads" and the per-flow throughput metric
 * "sim_pkts_per_wall_sec_per_flow" (gated: it contains "per_wall");
 * schema 5 adds "round_trips_per_wall_sec", the profiler meta fields,
 * and — under --profile — a per-category "profile" member with the
 * executor's per-worker busy/idle/barrier breakdown on parallel
 * scenarios (obs/profiler.hh).
 *
 * "fingerprint" hashes simulated quantities only (ticks, packet and
 * byte counts, round trips): it must be identical across presets and
 * may only change when modeled behavior legitimately changes.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/testbed.hh"
#include "apps/testbed_parallel.hh"
#include "apps/workloads.hh"
#include "bench_util.hh"
#include "sim/simulation.hh"

namespace f4t
{
namespace
{

constexpr std::size_t threadsPerSide = 8;

struct ScenarioResult
{
    std::string name;
    double wallSeconds = 0;
    std::uint64_t eventsProcessed = 0;
    sim::Tick simTicks = 0;
    std::uint64_t simPackets = 0;
    std::uint64_t flows = 0;
    std::uint64_t roundTrips = 0;
    std::uint64_t fingerprint = 0;
    /** Worker threads driving the kernel (1 = serial event loop). */
    std::uint64_t threads = 1;
    bool profiled = false;
    obs::ProfileReport profile;

    double
    hostEventsPerSec() const
    {
        return wallSeconds > 0 ? eventsProcessed / wallSeconds : 0;
    }

    double
    simPacketsPerWallSec() const
    {
        return wallSeconds > 0 ? simPackets / wallSeconds : 0;
    }

    /** The gated scaling metric: throughput normalized by flow count. */
    double
    simPacketsPerWallSecPerFlow() const
    {
        return flows > 0 ? simPacketsPerWallSec() / flows : 0;
    }

    /** Application-visible work rate (echo round trips completed per
     *  wall second), the second schema-5 CI-gated wall-clock metric. */
    double
    roundTripsPerWallSec() const
    {
        return wallSeconds > 0 ? roundTrips / wallSeconds : 0;
    }
};

/** FNV-1a over simulated quantities: stable across kernel rewrites. */
struct Fingerprint
{
    std::uint64_t state = 1469598103934665603ULL;

    void
    mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (value >> (i * 8)) & 0xff;
            state *= 1099511628211ULL;
        }
    }
};

double
wallSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * @param flows    total concurrent connections (split across both
 *                 sides and @c threadsPerSide client threads per side)
 * @param warmup   simulated time for handshakes + ramp before measuring
 * @param window   simured measurement window
 */
ScenarioResult
runManyFlows(std::size_t flows, sim::Tick warmup, sim::Tick window)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 32768;
    // One 128 B message in flight per flow: small TCP buffers, or host
    // memory for tens of thousands of flows dwarfs the machine
    // running the model (same sizing as the Fig. 13 harness).
    config.tcpBufferBytes = 8 * 1024;
    // Each application thread owns one host queue pair (one
    // F4tLibrary per queue), so server and client threads need
    // disjoint queues: servers take 0..threadsPerSide-1 on each side,
    // clients the next threadsPerSide.
    testbed::EnginePairWorld world(2 * threadsPerSide, config);

    // Echo servers on both engines.
    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeA, i, world.cpuA->core(i)));
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtimeB, i, world.cpuB->core(i)));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis[server_apis.size() - 2], server_config));
        servers.back()->start();
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    world.sim.runFor(sim::microsecondsToTicks(20));

    // Echo clients on both sides: half the flows originate on A
    // targeting B, half on B targeting A, so requests and responses
    // cross in both link directions simultaneously. Flows are split
    // across the client threads with the remainder on the first ones,
    // so any count down to 2 works (the flow-curve sweep goes far
    // below one flow per thread); exact multiples of the thread count
    // distribute identically to the historical layout.
    std::vector<std::unique_ptr<apps::F4tSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    std::size_t num_clients = 2 * threadsPerSide;
    std::size_t client_index = 0;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        std::size_t q = threadsPerSide + i;
        for (int side = 0; side < 2; ++side) {
            client_apis.push_back(std::make_unique<apps::F4tSocketApi>(
                world.sim, side == 0 ? *world.runtimeA : *world.runtimeB,
                q, side == 0 ? world.cpuA->core(q) : world.cpuB->core(q)));
            apps::EchoClientConfig client_config;
            client_config.peer =
                side == 0 ? testbed::ipB() : testbed::ipA();
            client_config.flows =
                flows / num_clients +
                (client_index < flows % num_clients ? 1 : 0);
            ++client_index;
            client_config.connectSpacing = sim::nanosecondsToTicks(100);
            clients.push_back(std::make_unique<apps::EchoClientApp>(
                *client_apis.back(), nullptr, client_config));
            clients.back()->start();
        }
    }

    world.sim.runFor(warmup);

    std::uint64_t events_before = world.sim.queue().eventsProcessed();
    std::uint64_t packets_before = world.link->aToB().packetsSent() +
                                   world.link->bToA().packetsSent();
    std::uint64_t trips_before = 0;
    for (auto &client : clients)
        trips_before += client->roundTrips();

    sim::prof::Snapshot prof_before = sim::prof::capture();
    auto start = std::chrono::steady_clock::now();
    world.sim.runFor(window);

    ScenarioResult result;
    result.name = "many_flows";
    result.wallSeconds = wallSince(start);
    if (bench::Obs::profiling()) {
        result.profiled = true;
        result.profile = obs::makeProfileReport(
            sim::prof::since(prof_before), result.wallSeconds);
    }
    result.eventsProcessed =
        world.sim.queue().eventsProcessed() - events_before;
    result.simTicks = world.sim.now();
    result.simPackets = world.link->aToB().packetsSent() +
                        world.link->bToA().packetsSent() - packets_before;
    std::uint64_t connected = 0, trips = 0;
    for (auto &client : clients) {
        connected += client->connectedFlows();
        trips += client->roundTrips();
    }
    result.flows = connected;
    result.roundTrips = trips - trips_before;

    Fingerprint fp;
    fp.mix(world.sim.now());
    fp.mix(result.simPackets);
    fp.mix(connected);
    fp.mix(trips);
    fp.mix(world.link->aToB().bytesSent());
    fp.mix(world.link->bToA().bytesSent());
    result.fingerprint = fp.state;
    return result;
}

/**
 * The same workload on the partitioned kernel: endpoint A and
 * endpoint B each in their own Simulation, cabled by a SplitLink whose
 * 500 ns propagation delay is the conservative lookahead, advanced by
 * a ParallelExecutor at @p threads workers. The fingerprint mixes the
 * same simulated quantities in the same order as runManyFlows; it is
 * required to be invariant under @p threads (checked in main), while
 * application-level byte-exactness against the serial oracle is the
 * differential fuzzer's job.
 */
ScenarioResult
runManyFlowsParallel(std::size_t flows, sim::Tick warmup, sim::Tick window,
                     std::size_t threads)
{
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 32768;
    config.tcpBufferBytes = 8 * 1024;
    testbed::ParallelEnginePairWorld world(2 * threadsPerSide, config, {},
                                           100e9, {},
                                           sim::nanosecondsToTicks(500),
                                           threads);

    // Echo servers on both engines (queues 0..threadsPerSide-1), then
    // clients on the next threadsPerSide queues — the same layout as
    // the serial harness, except every endpoint-A app binds to simA
    // and every endpoint-B app to simB.
    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::EchoServerApp>> servers;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.simA, *world.runtimeA, i, world.cpuA->core(i)));
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.simB, *world.runtimeB, i, world.cpuB->core(i)));
        apps::EchoServerConfig server_config;
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis[server_apis.size() - 2], server_config));
        servers.back()->start();
        servers.push_back(std::make_unique<apps::EchoServerApp>(
            *server_apis.back(), server_config));
        servers.back()->start();
    }
    world.runFor(sim::microsecondsToTicks(20));

    std::vector<std::unique_ptr<apps::F4tSocketApi>> client_apis;
    std::vector<std::unique_ptr<apps::EchoClientApp>> clients;
    std::size_t num_clients = 2 * threadsPerSide;
    std::size_t client_index = 0;
    for (std::size_t i = 0; i < threadsPerSide; ++i) {
        std::size_t q = threadsPerSide + i;
        for (int side = 0; side < 2; ++side) {
            client_apis.push_back(std::make_unique<apps::F4tSocketApi>(
                side == 0 ? world.simA : world.simB,
                side == 0 ? *world.runtimeA : *world.runtimeB, q,
                side == 0 ? world.cpuA->core(q) : world.cpuB->core(q)));
            apps::EchoClientConfig client_config;
            client_config.peer =
                side == 0 ? testbed::ipB() : testbed::ipA();
            client_config.flows =
                flows / num_clients +
                (client_index < flows % num_clients ? 1 : 0);
            ++client_index;
            client_config.connectSpacing = sim::nanosecondsToTicks(100);
            clients.push_back(std::make_unique<apps::EchoClientApp>(
                *client_apis.back(), nullptr, client_config));
            clients.back()->start();
        }
    }

    world.runFor(warmup);

    std::uint64_t events_before = world.executor.eventsProcessed();
    std::uint64_t packets_before = world.link->aToB().packetsSent() +
                                   world.link->bToA().packetsSent();
    std::uint64_t trips_before = 0;
    for (auto &client : clients)
        trips_before += client->roundTrips();

    sim::prof::Snapshot prof_before = sim::prof::capture();
    std::vector<sim::WorkerProfile> workers_before =
        world.executor.workerProfiles();
    auto start = std::chrono::steady_clock::now();
    world.runFor(window);

    ScenarioResult result;
    result.name = "many_flows_t" + std::to_string(threads);
    result.threads = threads;
    result.wallSeconds = wallSince(start);
    if (bench::Obs::profiling()) {
        result.profiled = true;
        // Coverage divides by the threads a run could actually use —
        // the executor caps at the partition count (2 here), so a
        // --threads=8 request still measures against 2.
        result.profile = obs::makeProfileReport(
            sim::prof::since(prof_before), result.wallSeconds,
            static_cast<unsigned>(world.executor.effectiveThreads()));
        obs::attachWorkerProfiles(result.profile, workers_before,
                                  world.executor.workerProfiles());
    }
    result.eventsProcessed =
        world.executor.eventsProcessed() - events_before;
    result.simTicks = world.now();
    result.simPackets = world.link->aToB().packetsSent() +
                        world.link->bToA().packetsSent() - packets_before;
    std::uint64_t connected = 0, trips = 0;
    for (auto &client : clients) {
        connected += client->connectedFlows();
        trips += client->roundTrips();
    }
    result.flows = connected;
    result.roundTrips = trips - trips_before;

    Fingerprint fp;
    fp.mix(world.now());
    fp.mix(result.simPackets);
    fp.mix(connected);
    fp.mix(trips);
    fp.mix(world.link->aToB().bytesSent());
    fp.mix(world.link->bToA().bytesSent());
    result.fingerprint = fp.state;
    return result;
}

/**
 * Flow-count sweep (--flow-curve): the serial scenario at log-spaced
 * counts from 2 to the --flows ceiling, so the per-flow overhead the
 * scale ceiling imposes is a tracked artifact
 * (bench/baselines/BENCH_flowcurve.json) rather than a one-off
 * observation. The gated wall-clock metrics stay in BENCH_datapath.json;
 * the curve file records the shape.
 */
void
writeCurveJson(const std::string &path,
               const std::vector<ScenarioResult> &points)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "perf_datapath: cannot write %s\n",
                     path.c_str());
        return;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"datapath_flowcurve\",\n"
                 "  \"schema\": 1,\n");
    bench::writeRunMeta(out, 2, 1);
    std::fprintf(out, ",\n  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const ScenarioResult &r = points[i];
        double us_per_pkt =
            r.simPackets > 0 ? r.wallSeconds * 1e6 / r.simPackets : 0;
        std::fprintf(out,
                     "    {\n"
                     "      \"flows\": %llu,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"sim_packets\": %llu,\n"
                     "      \"round_trips\": %llu,\n"
                     "      \"wall_us_per_sim_pkt\": %.4f,\n"
                     "      \"sim_pkts_per_wall_sec_per_flow\": %.3f,\n"
                     "      \"fingerprint\": \"%016llx\"\n"
                     "    }%s\n",
                     static_cast<unsigned long long>(r.flows),
                     r.wallSeconds,
                     static_cast<unsigned long long>(r.simPackets),
                     static_cast<unsigned long long>(r.roundTrips),
                     us_per_pkt, r.simPacketsPerWallSecPerFlow(),
                     static_cast<unsigned long long>(r.fingerprint),
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

void
writeJson(const std::string &path, const std::vector<ScenarioResult> &results)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "perf_datapath: cannot write %s\n",
                     path.c_str());
        return;
    }
    unsigned max_threads = 1;
    for (const ScenarioResult &r : results)
        max_threads = std::max(max_threads, unsigned(r.threads));

    std::fprintf(out, "{\n  \"bench\": \"datapath\",\n  \"schema\": 5,\n");
    bench::writeRunMeta(out, 2, max_threads);
    std::fprintf(out, ",\n  \"scenarios\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ScenarioResult &r = results[i];
        std::fprintf(out,
                     "    {\n"
                     "      \"name\": \"%s\",\n"
                     "      \"threads\": %llu,\n"
                     "      \"wall_seconds\": %.6f,\n"
                     "      \"host_events_per_sec\": %.1f,\n"
                     "      \"events_processed\": %llu,\n"
                     "      \"sim_ticks\": %llu,\n"
                     "      \"sim_packets\": %llu,\n"
                     "      \"sim_packets_per_wall_sec\": %.1f,\n"
                     "      \"sim_pkts_per_wall_sec_per_flow\": %.3f,\n"
                     "      \"connected_flows\": %llu,\n"
                     "      \"round_trips\": %llu,\n"
                     "      \"round_trips_per_wall_sec\": %.1f,\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.threads),
                     r.wallSeconds, r.hostEventsPerSec(),
                     static_cast<unsigned long long>(r.eventsProcessed),
                     static_cast<unsigned long long>(r.simTicks),
                     static_cast<unsigned long long>(r.simPackets),
                     r.simPacketsPerWallSec(),
                     r.simPacketsPerWallSecPerFlow(),
                     static_cast<unsigned long long>(r.flows),
                     static_cast<unsigned long long>(r.roundTrips),
                     r.roundTripsPerWallSec());
        if (r.profiled) {
            obs::writeProfileJson(out, r.profile, 6);
            std::fprintf(out, ",\n");
        }
        std::fprintf(out,
                     "      \"fingerprint\": \"%016llx\"\n"
                     "    }%s\n",
                     static_cast<unsigned long long>(r.fingerprint),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
}

} // namespace
} // namespace f4t

int
main(int argc, char **argv)
{
    using namespace f4t;
    sim::setVerbose(false);
    bench::Obs::install(argc, argv); // strips capture flags from argv

    // --smoke: few flows + tiny windows so a ctest entry keeps the
    // harness building and running without spending real time. The
    // measurement configuration (10240 flows) is the committed
    // baseline CI gates against.
    std::size_t flows = 10240;
    std::size_t threads = 4;
    sim::Tick warmup_us = 0; // 0 = derive from flow count below
    sim::Tick window_us = 200;
    std::string out_path = "BENCH_datapath.json";
    bool smoke = false;
    bool flow_curve = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
            flows = 160;
            window_us = 20;
        } else if (std::strcmp(argv[i], "--flow-curve") == 0) {
            flow_curve = true;
        } else if (std::strcmp(argv[i], "--flows") == 0 && i + 1 < argc) {
            flows = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strncmp(argv[i], "--flows=", 8) == 0) {
            flows = std::strtoull(argv[i] + 8, nullptr, 10);
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
            if (threads == 0)
                threads = 1;
        } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = std::strtoull(argv[i] + 10, nullptr, 10);
            if (threads == 0)
                threads = 1;
        } else if (std::strcmp(argv[i], "--warmup-us") == 0 &&
                   i + 1 < argc) {
            warmup_us = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--window-us") == 0 &&
                   i + 1 < argc) {
            window_us = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--flow-curve] [--flows N]"
                         " [--threads N] [--warmup-us N] [--window-us N]"
                         " [--out FILE]\n",
                         argv[0]);
            return 2;
        }
    }
    if (warmup_us == 0) {
        // Connects are issued per thread at connectSpacing intervals
        // (flows / 16 threads x 100 ns), but establishment beyond FPC
        // capacity is serialized behind TCB migrations (one eviction
        // at a time per FPC), so the tail connects at roughly one
        // flow per microsecond. Budget for that so every flow is
        // ping-ponging before the measurement window opens.
        warmup_us = static_cast<sim::Tick>(200 + flows * 1.2);
        if (smoke)
            warmup_us = 100;
    }

    bench::banner("perf_datapath",
                  "wall-clock throughput at many-connection scale");
    std::printf("flows=%zu threads=%zu warmup=%lluus window=%lluus\n\n",
                flows, threads,
                static_cast<unsigned long long>(warmup_us),
                static_cast<unsigned long long>(window_us));

    sim::Tick warmup = sim::microsecondsToTicks(warmup_us);
    sim::Tick window = sim::microsecondsToTicks(window_us);

    if (flow_curve) {
        // Log-spaced flow counts (x4 per step) up to the --flows
        // ceiling, serial oracle only: the curve is about per-flow
        // overhead, not executor scaling. Each point re-derives its
        // own warmup from its flow count.
        static constexpr std::size_t curvePoints[] = {2,   8,    32,  128,
                                                      512, 2048, 10240};
        if (out_path == "BENCH_datapath.json")
            out_path = "BENCH_flowcurve.json";
        std::vector<ScenarioResult> curve;
        bench::Table table({"flows", "wall s", "sim pkts", "trips",
                            "pkt/s/flow", "fingerprint"});
        for (std::size_t n : curvePoints) {
            if (n > flows)
                break;
            sim::Tick point_warmup = sim::microsecondsToTicks(
                static_cast<sim::Tick>(200 + n * 1.2));
            ScenarioResult r = runManyFlows(n, point_warmup, window);
            r.name = "many_flows_" + std::to_string(n);
            curve.push_back(r);
            char fp[32];
            std::snprintf(fp, sizeof(fp), "%016llx",
                          static_cast<unsigned long long>(r.fingerprint));
            table.addRow({std::to_string(r.flows),
                          bench::fmt("%.3f", r.wallSeconds),
                          std::to_string(r.simPackets),
                          std::to_string(r.roundTrips),
                          bench::fmt("%.3f",
                                     r.simPacketsPerWallSecPerFlow()),
                          fp});
        }
        table.print();
        writeCurveJson(out_path, curve);
        std::printf("\nwrote %s\n", out_path.c_str());
        return 0;
    }

    // Serial oracle first, then the partitioned kernel — always at one
    // worker (the determinism anchor the baseline tracks), and at
    // --threads workers when that is more than one. --smoke therefore
    // exercises both executors on every ctest run.
    std::vector<ScenarioResult> results;
    results.push_back(runManyFlows(flows, warmup, window));
    results.push_back(runManyFlowsParallel(flows, warmup, window, 1));
    if (threads > 1)
        results.push_back(
            runManyFlowsParallel(flows, warmup, window, threads));

    bench::Table table({"scenario", "thr", "flows", "wall s", "events",
                        "Mev/s (host)", "sim pkts", "kpkt/s (host)",
                        "trips", "fingerprint"});
    for (const ScenarioResult &r : results) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016llx",
                      static_cast<unsigned long long>(r.fingerprint));
        table.addRow({r.name, std::to_string(r.threads),
                      std::to_string(r.flows),
                      bench::fmt("%.3f", r.wallSeconds),
                      std::to_string(r.eventsProcessed),
                      bench::fmt("%.2f", r.hostEventsPerSec() / 1e6),
                      std::to_string(r.simPackets),
                      bench::fmt("%.1f", r.simPacketsPerWallSec() / 1e3),
                      std::to_string(r.roundTrips), fp});
    }
    table.print();

    if (bench::Obs::profiling()) {
        std::printf("\nper-scenario wall-clock cost attribution:\n");
        for (const ScenarioResult &r : results) {
            std::printf("%s:\n", r.name.c_str());
            obs::printProfileTable(stdout, r.profile);
        }
    }

    // Determinism cross-check: every parallel scenario ran the same
    // partitioned world, so their fingerprints must agree bit-for-bit
    // regardless of worker count. The serial scenario's fingerprint is
    // *not* required to match: the split link cannot see a send until
    // the window barrier, so the delivery port's burst folding may
    // group host events differently than the same-sim link (the same
    // equivalence class as the batching toggle). Application byte
    // streams stay identical either way — that stronger property is
    // what tests/fuzz/test_parallel_differential pins down.
    for (std::size_t i = 2; i < results.size(); ++i) {
        if (results[i].fingerprint != results[1].fingerprint) {
            std::fprintf(stderr,
                         "perf_datapath: FINGERPRINT MISMATCH: %s "
                         "(%016llx) vs %s (%016llx) — worker count "
                         "leaked into simulated behavior\n",
                         results[i].name.c_str(),
                         static_cast<unsigned long long>(
                             results[i].fingerprint),
                         results[1].name.c_str(),
                         static_cast<unsigned long long>(
                             results[1].fingerprint));
            return 1;
        }
    }

    writeJson(out_path, results);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
