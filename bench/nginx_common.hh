/**
 * @file
 * Shared setup for the Nginx experiments (Figs. 1, 10, 11, 12):
 * an Nginx-like HTTP server with 256 B responses on the system under
 * test, loaded by a wrk-like closed-loop generator running on a
 * separate (uncharged) client machine.
 */

#ifndef F4T_BENCH_NGINX_COMMON_HH
#define F4T_BENCH_NGINX_COMMON_HH

#include <memory>
#include <vector>

#include "apps/http.hh"
#include "apps/testbed.hh"
#include "host/cost_model.hh"
#include "sim/causal_trace.hh"

namespace f4t::bench
{

struct NginxResult
{
    double requestsPerSecond = 0;
    double latencyP50Us = 0;
    double latencyP99Us = 0;
    /** Per-category CPU cycles consumed on the server per request. */
    double appCycles = 0;
    double tcpCycles = 0;
    double kernelCycles = 0;
    double libraryCycles = 0;
    double filesystemCycles = 0;
    /** Server CPU utilization over the window, [0, 1]. */
    double utilization = 0;
};

inline apps::HttpServerConfig
nginxServerConfig(bool on_linux)
{
    apps::HttpServerConfig config;
    config.responseBytes = 256;
    config.appCyclesPerRequest = host::NginxCosts::appProcessing;
    config.filesystemCyclesPerRequest = host::NginxCosts::filesystem;
    if (on_linux) {
        config.stackCyclesPerRequest = host::NginxCosts::linuxTcp;
        config.kernelCyclesPerRequest = host::NginxCosts::linuxKernelOther;
    }
    return config;
}

/** Distribute @p flows wrk connections over @p client_cores apps. */
template <typename MakeApi>
std::vector<std::unique_ptr<apps::HttpLoadGenApp>>
makeLoadGens(std::size_t flows, std::size_t client_cores,
             sim::Histogram *latency, MakeApi make_api,
             std::vector<std::unique_ptr<apps::SocketApi>> &keep_apis)
{
    std::vector<std::unique_ptr<apps::HttpLoadGenApp>> gens;
    std::size_t threads = flows < client_cores ? flows : client_cores;
    for (std::size_t i = 0; i < threads; ++i) {
        std::size_t share = flows / threads +
                            (i < flows % threads ? 1 : 0);
        if (share == 0)
            continue;
        keep_apis.push_back(make_api(i));
        apps::HttpLoadGenConfig config;
        config.peer = testbed::ipA(); // server is host A by convention
        config.port = 80;
        config.connections = share;
        config.responseBytes = 256;
        config.appCyclesPerRequest = host::wrkRequestCost;
        gens.push_back(std::make_unique<apps::HttpLoadGenApp>(
            *keep_apis.back(), latency, config));
        gens.back()->start();
    }
    return gens;
}

/**
 * Nginx on the Linux baseline (server = host A), wrk on an uncharged
 * client (host B).
 */
inline NginxResult
runNginxLinux(std::size_t server_cores, std::size_t flows,
              sim::Tick warmup, sim::Tick window, bool jitter = true)
{
    baseline::LinuxHostConfig server_config;
    server_config.latencyJitter = jitter;
    // The per-request kernel budgets are charged explicitly by the
    // HTTP server app (calibrated Fig. 1a split); the generic stack
    // cost model stays off to avoid double counting.
    server_config.chargeCosts = false;
    testbed::LinuxPairWorld world(std::max(server_cores, std::size_t{16}),
                                  server_config);
    // Client side (host B): free CPU, no jitter — only the server's
    // behaviour is under study, as with the paper's wrk machine.
    world.hostB->setLatencyJitter(false);

    std::vector<std::unique_ptr<apps::LinuxSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::HttpServerApp>> servers;
    for (std::size_t i = 0; i < server_cores; ++i) {
        server_apis.push_back(std::make_unique<apps::LinuxSocketApi>(
            world.sim, *world.hostA, i));
        servers.push_back(std::make_unique<apps::HttpServerApp>(
            *server_apis.back(), nginxServerConfig(true)));
        servers.back()->start();
    }

    // Let the listen() reach the stacks before the first SYN arrives.
    world.sim.runFor(sim::microsecondsToTicks(20));

    sim::Histogram latency(world.sim.stats(), "bench.nginxLatency",
                           "HTTP request latency (us)");
    std::vector<std::unique_ptr<apps::SocketApi>> client_apis;
    auto gens = makeLoadGens(
        flows, 8, &latency,
        [&](std::size_t i) -> std::unique_ptr<apps::SocketApi> {
            return std::make_unique<apps::LinuxSocketApi>(
                world.sim, *world.hostB, i);
        },
        client_apis);

    world.sim.runFor(warmup);
    std::uint64_t before = 0;
    for (auto &gen : gens)
        before += gen->responses();
    double cycles_before[5] = {};
    for (std::size_t i = 0; i < server_cores; ++i) {
        for (int c = 0; c < 5; ++c) {
            cycles_before[c] += world.hostA->core(i).categoryCycles(
                static_cast<tcp::CostCategory>(c));
        }
    }
    latency.reset();

    world.sim.runFor(window);

    std::uint64_t responses = 0;
    for (auto &gen : gens)
        responses += gen->responses();
    responses -= before;

    NginxResult result;
    result.requestsPerSecond = responses / sim::ticksToSeconds(window);
    result.latencyP50Us = latency.percentile(50);
    result.latencyP99Us = latency.percentile(99);
    double totals[5] = {};
    for (std::size_t i = 0; i < server_cores; ++i) {
        for (int c = 0; c < 5; ++c) {
            totals[c] += world.hostA->core(i).categoryCycles(
                             static_cast<tcp::CostCategory>(c)) -
                         cycles_before[c];
        }
    }
    double n = responses ? static_cast<double>(responses) : 1.0;
    result.appCycles = totals[0] / n;
    result.tcpCycles = totals[1] / n;
    result.kernelCycles = totals[2] / n;
    result.libraryCycles = totals[3] / n;
    result.filesystemCycles = totals[4] / n;
    double window_cycles = server_cores * host::hostFrequencyHz *
                           sim::ticksToSeconds(window);
    result.utilization =
        (totals[0] + totals[1] + totals[2] + totals[3] + totals[4]) /
        window_cycles;
    return result;
}

/** Nginx on F4T (server = engine host A), wrk on a Linux client. */
inline NginxResult
runNginxF4t(std::size_t server_cores, std::size_t flows, sim::Tick warmup,
            sim::Tick window)
{
    core::EngineConfig engine_config;
    engine_config.numFpcs = 8;
    engine_config.flowsPerFpc = 128;
    engine_config.maxFlows = 8192;
    baseline::LinuxHostConfig client_config;
    client_config.chargeCosts = false; // client machine is free
    client_config.latencyJitter = false;
    testbed::EngineLinuxWorld world(server_cores, 8, engine_config,
                                    client_config);

    std::vector<std::unique_ptr<apps::F4tSocketApi>> server_apis;
    std::vector<std::unique_ptr<apps::HttpServerApp>> servers;
    for (std::size_t i = 0; i < server_cores; ++i) {
        server_apis.push_back(std::make_unique<apps::F4tSocketApi>(
            world.sim, *world.runtime, i, world.cpu->core(i)));
        servers.push_back(std::make_unique<apps::HttpServerApp>(
            *server_apis.back(), nginxServerConfig(false)));
        servers.back()->start();
    }

    // Let the listen command cross PCIe before the first SYN arrives.
    world.sim.runFor(sim::microsecondsToTicks(20));

    sim::Histogram latency(world.sim.stats(), "bench.nginxLatency",
                           "HTTP request latency (us)");
    std::vector<std::unique_ptr<apps::SocketApi>> client_apis;
    auto gens = makeLoadGens(
        flows, 8, &latency,
        [&](std::size_t i) -> std::unique_ptr<apps::SocketApi> {
            return std::make_unique<apps::LinuxSocketApi>(
                world.sim, *world.linux, i);
        },
        client_apis);

    world.sim.runFor(warmup);
    std::uint64_t before = 0;
    for (auto &gen : gens)
        before += gen->responses();
    double cycles_before[5] = {};
    for (std::size_t i = 0; i < server_cores; ++i) {
        for (int c = 0; c < 5; ++c) {
            cycles_before[c] += world.cpu->core(i).categoryCycles(
                static_cast<tcp::CostCategory>(c));
        }
    }
    latency.reset();

    world.sim.runFor(window);

    std::uint64_t responses = 0;
    for (auto &gen : gens)
        responses += gen->responses();
    responses -= before;

    NginxResult result;
    result.requestsPerSecond = responses / sim::ticksToSeconds(window);
    result.latencyP50Us = latency.percentile(50);
    result.latencyP99Us = latency.percentile(99);
    double totals[5] = {};
    for (std::size_t i = 0; i < server_cores; ++i) {
        for (int c = 0; c < 5; ++c) {
            totals[c] += world.cpu->core(i).categoryCycles(
                             static_cast<tcp::CostCategory>(c)) -
                         cycles_before[c];
        }
    }
    double n = responses ? static_cast<double>(responses) : 1.0;
    result.appCycles = totals[0] / n;
    result.tcpCycles = totals[1] / n;
    result.kernelCycles = totals[2] / n;
    result.libraryCycles = totals[3] / n;
    result.filesystemCycles = totals[4] / n;
    double window_cycles = server_cores * host::hostFrequencyHz *
                           sim::ticksToSeconds(window);
    result.utilization =
        (totals[0] + totals[1] + totals[2] + totals[3] + totals[4]) /
        window_cycles;
    return result;
}

/**
 * One traced Nginx run on an all-F4T engine pair (server on engine A,
 * load generators on engine B — both sides instrumented, so every
 * span of every request closes). Used by the --spans modes of
 * fig11/fig12: the returned struct keeps the world and the
 * CausalTracer alive so callers can render per-stage breakdowns,
 * critical paths, and the per-stage latency JSON after the run.
 *
 * Members are declared so destruction unwinds apps before the tracer
 * and the tracer before the simulation it registered with.
 */
struct TracedNginxRun
{
    std::unique_ptr<testbed::EnginePairWorld> world;
    std::unique_ptr<sim::ctrace::CausalTracer> tracer;
    std::unique_ptr<sim::Histogram> latency;
    std::vector<std::unique_ptr<apps::F4tSocketApi>> serverApis;
    std::vector<std::unique_ptr<apps::HttpServerApp>> servers;
    std::vector<std::unique_ptr<apps::SocketApi>> clientApis;
    std::vector<std::unique_ptr<apps::HttpLoadGenApp>> gens;
    NginxResult result;
};

inline TracedNginxRun
runNginxF4tPairTraced(std::size_t flows, sim::Tick warmup,
                      sim::Tick window)
{
    TracedNginxRun run;
    core::EngineConfig config;
    config.numFpcs = 8;
    config.flowsPerFpc = 128;
    config.maxFlows = 8192;
    run.world = std::make_unique<testbed::EnginePairWorld>(8, config);
    testbed::EnginePairWorld &world = *run.world;
    run.tracer = std::make_unique<sim::ctrace::CausalTracer>(world.sim);

    run.serverApis.push_back(std::make_unique<apps::F4tSocketApi>(
        world.sim, *world.runtimeA, 0, world.cpuA->core(0)));
    run.servers.push_back(std::make_unique<apps::HttpServerApp>(
        *run.serverApis.back(), nginxServerConfig(false)));
    run.servers.back()->start();

    // Let the listen command cross PCIe before the first SYN arrives.
    world.sim.runFor(sim::microsecondsToTicks(20));

    run.latency = std::make_unique<sim::Histogram>(
        world.sim.stats(), "bench.nginxLatency",
        "HTTP request latency (us)");
    run.gens = makeLoadGens(
        flows, 8, run.latency.get(),
        [&](std::size_t i) -> std::unique_ptr<apps::SocketApi> {
            return std::make_unique<apps::F4tSocketApi>(
                world.sim, *world.runtimeB, i, world.cpuB->core(i));
        },
        run.clientApis);

    world.sim.runFor(warmup);
    // Steady state only: drop warmup samples. Requests in flight keep
    // their contexts; only the aggregated distributions restart.
    run.latency->reset();
    for (std::size_t i = 0; i < sim::ctrace::numStages; ++i) {
        auto stage = static_cast<sim::ctrace::Stage>(i);
        run.tracer->stageTotal(stage).reset();
        run.tracer->stageQueue(stage).reset();
        run.tracer->stageService(stage).reset();
    }
    run.tracer->e2e().reset();
    std::uint64_t before = 0;
    for (auto &gen : run.gens)
        before += gen->responses();

    world.sim.runFor(window);

    std::uint64_t responses = 0;
    for (auto &gen : run.gens)
        responses += gen->responses();
    responses -= before;
    run.result.requestsPerSecond =
        responses / sim::ticksToSeconds(window);
    run.result.latencyP50Us = run.latency->percentile(50);
    run.result.latencyP99Us = run.latency->percentile(99);
    return run;
}

} // namespace f4t::bench

#endif // F4T_BENCH_NGINX_COMMON_HH
