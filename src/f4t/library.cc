#include "library.hh"

#include "sim/causal_trace.hh"

namespace f4t::lib
{

F4tLibrary::F4tLibrary(F4tRuntime &runtime, std::size_t queue,
                       host::CpuCore &core)
    : runtime_(runtime), queue_(queue), core_(core)
{
    runtime_.setCompletionHandler(
        queue_,
        [this](const host::Command &command) { handleCompletion(command); },
        &core_);
}

F4tLibrary::Socket &
F4tLibrary::get(SockFd fd)
{
    auto it = sockets_.find(fd);
    f4t_assert(it != sockets_.end(), "unknown socket fd %d", fd);
    return it->second;
}

const F4tLibrary::Socket &
F4tLibrary::get(SockFd fd) const
{
    auto it = sockets_.find(fd);
    f4t_assert(it != sockets_.end(), "unknown socket fd %d", fd);
    return it->second;
}

host::FlowBuffers *
F4tLibrary::buffers(const Socket &sock) const
{
    if (sock.flow == tcp::invalidFlowId)
        return nullptr;
    return runtime_.memory().find(sock.flow);
}

std::uint64_t
F4tLibrary::unwrap32(std::uint64_t reference, std::uint32_t value) const
{
    std::int32_t delta = static_cast<std::int32_t>(
        value - static_cast<std::uint32_t>(reference));
    return reference + delta;
}

void
F4tLibrary::listen(std::uint16_t port)
{
    core_.charge(tcp::CostCategory::f4tLibrary,
                 host::F4tCosts::libraryCall);
    host::Command cmd;
    cmd.op = host::CmdOp::listen;
    cmd.arg0 = port;
    cmd.arg1 = static_cast<std::uint32_t>(queue_);
    runtime_.submitCommand(queue_, cmd, core_);
}

SockFd
F4tLibrary::connect(net::Ipv4Address ip, std::uint16_t port)
{
    core_.charge(tcp::CostCategory::f4tLibrary,
                 host::F4tCosts::libraryCall);
    SockFd fd = nextFd_++;
    sockets_.emplace(fd, Socket{});
    std::uint16_t cookie = static_cast<std::uint16_t>(fd);
    pendingConnects_[cookie] = fd;

    host::Command cmd;
    cmd.op = host::CmdOp::connect;
    cmd.arg0 = ip.value;
    cmd.arg1 = (static_cast<std::uint32_t>(port) << 16) | cookie;
    runtime_.submitCommand(queue_, cmd, core_);
    return fd;
}

std::size_t
F4tLibrary::send(SockFd fd, std::span<const std::uint8_t> data)
{
    core_.charge(tcp::CostCategory::f4tLibrary,
                 host::F4tCosts::libraryCall);
    Socket &sock = get(fd);
    if (!sock.established)
        return 0;
    host::FlowBuffers *fb = buffers(sock);
    f4t_assert(fb != nullptr, "established socket without buffers");

    std::size_t accepted = fb->tx.append(data);
    if (accepted < data.size())
        sock.sendBlocked = true;
    if (accepted == 0)
        return 0;
    bytesSent_ += accepted;

    host::Command cmd;
    cmd.op = host::CmdOp::send;
    cmd.flow = sock.flow;
    cmd.arg0 = static_cast<std::uint32_t>(fb->tx.end());
    if constexpr (sim::trace::compiledIn) {
        // Allocate the request's trace context here: this is the
        // moment the application handed us the data. The target is
        // the cumulative stream offset of the request's last byte.
        if (auto *ct = runtime_.sim().causalTracer()) {
            cmd.trace = ct->beginRequest(&runtime_.engine(), sock.flow,
                                         fb->tx.end(), runtime_.now());
        }
    }
    runtime_.submitCommand(queue_, cmd, core_);
    return accepted;
}

std::size_t
F4tLibrary::recv(SockFd fd, std::span<std::uint8_t> out)
{
    core_.charge(tcp::CostCategory::f4tLibrary,
                 host::F4tCosts::libraryCall);
    Socket &sock = get(fd);
    host::FlowBuffers *fb = buffers(sock);
    if (!fb)
        return 0;

    std::uint64_t avail = sock.receivedOffset - sock.consumedOffset;
    std::size_t n = out.size() < avail ? out.size()
                                       : static_cast<std::size_t>(avail);
    if (n == 0)
        return 0;

    fb->rx.copyOut(sock.consumedOffset, out.subspan(0, n));
    fb->rx.release(n);
    sock.consumedOffset += n;
    bytesReceived_ += n;

    // Tell the hardware the read pointer moved (opens the window).
    host::Command cmd;
    cmd.op = host::CmdOp::recv;
    cmd.flow = sock.flow;
    cmd.arg0 = static_cast<std::uint32_t>(sock.consumedOffset);
    runtime_.submitCommand(queue_, cmd, core_);
    return n;
}

std::size_t
F4tLibrary::readable(SockFd fd) const
{
    const Socket &sock = get(fd);
    return static_cast<std::size_t>(sock.receivedOffset -
                                    sock.consumedOffset);
}

std::size_t
F4tLibrary::writable(SockFd fd) const
{
    const Socket &sock = get(fd);
    const host::FlowBuffers *fb =
        const_cast<F4tLibrary *>(this)->buffers(sock);
    return fb ? fb->tx.freeSpace() : 0;
}

bool
F4tLibrary::established(SockFd fd) const
{
    auto it = sockets_.find(fd);
    return it != sockets_.end() && it->second.established;
}

void
F4tLibrary::close(SockFd fd)
{
    core_.charge(tcp::CostCategory::f4tLibrary,
                 host::F4tCosts::libraryCall);
    Socket &sock = get(fd);
    if (sock.flow == tcp::invalidFlowId) {
        sockets_.erase(fd);
        return;
    }
    host::Command cmd;
    cmd.op = host::CmdOp::close;
    cmd.flow = sock.flow;
    runtime_.submitCommand(queue_, cmd, core_);
}

void
F4tLibrary::handleCompletion(const host::Command &command)
{
    switch (command.op) {
      case host::CmdOp::connected: {
        std::uint16_t cookie = static_cast<std::uint16_t>(command.arg1);
        auto it = pendingConnects_.find(cookie);
        if (it == pendingConnects_.end())
            return;
        SockFd fd = it->second;
        pendingConnects_.erase(it);
        Socket &sock = get(fd);
        sock.flow = command.flow;
        sock.established = true;
        byFlow_[command.flow] = fd;
        runtime_.memory().ensure(command.flow);
        if (callbacks_.onConnected)
            callbacks_.onConnected(fd);
        return;
      }
      case host::CmdOp::accepted: {
        SockFd fd = nextFd_++;
        Socket sock;
        sock.flow = command.flow;
        sock.established = true;
        sockets_.emplace(fd, sock);
        byFlow_[command.flow] = fd;
        runtime_.memory().ensure(command.flow);
        if (callbacks_.onAccepted) {
            callbacks_.onAccepted(
                fd, static_cast<std::uint16_t>(command.arg1));
        }
        return;
      }
      default:
        break;
    }

    auto it = byFlow_.find(command.flow);
    if (it == byFlow_.end())
        return; // late completion for a closed socket
    SockFd fd = it->second;
    Socket &sock = get(fd);

    switch (command.op) {
      case host::CmdOp::acked: {
        host::FlowBuffers *fb = buffers(sock);
        if (!fb)
            return;
        std::uint64_t acked = unwrap32(sock.ackedOffset, command.arg0);
        if (acked > sock.ackedOffset) {
            std::uint64_t release = acked - sock.ackedOffset;
            std::uint64_t retained = fb->tx.size();
            if (release > retained)
                release = retained;
            fb->tx.release(static_cast<std::size_t>(release));
            sock.ackedOffset = acked;
            if (sock.sendBlocked && fb->tx.freeSpace() > 0) {
                sock.sendBlocked = false;
                if (callbacks_.onWritable)
                    callbacks_.onWritable(fd);
            }
        }
        return;
      }
      case host::CmdOp::received: {
        std::uint64_t boundary =
            unwrap32(sock.receivedOffset, command.arg0);
        if (boundary > sock.receivedOffset) {
            sock.receivedOffset = boundary;
            if (callbacks_.onReadable)
                callbacks_.onReadable(fd, readable(fd));
        }
        if constexpr (sim::trace::compiledIn) {
            if (command.trace.valid()) {
                if (auto *ct = runtime_.sim().causalTracer())
                    ct->delivered(command.trace, runtime_.now());
            }
        }
        return;
      }
      case host::CmdOp::peerClosed:
        sock.peerClosed = true;
        if (callbacks_.onPeerClosed)
            callbacks_.onPeerClosed(fd);
        return;
      case host::CmdOp::closed:
      case host::CmdOp::reset: {
        bool reset = command.op == host::CmdOp::reset;
        tcp::FlowId flow = sock.flow;
        byFlow_.erase(flow);
        sockets_.erase(fd);
        runtime_.releaseFlowMemory(flow);
        if (reset) {
            if (callbacks_.onReset)
                callbacks_.onReset(fd);
        } else if (callbacks_.onClosed) {
            callbacks_.onClosed(fd);
        }
        return;
      }
      default:
        return;
    }
}

F4tEpoll::F4tEpoll(F4tLibrary &library) : library_(library)
{
    F4tCallbacks callbacks;
    callbacks.onReadable = [this](SockFd fd, std::size_t) {
        if (interest_.count(fd))
            push(Event{fd, true, false, false});
    };
    callbacks.onWritable = [this](SockFd fd) {
        if (interest_.count(fd))
            push(Event{fd, false, true, false});
    };
    callbacks.onPeerClosed = [this](SockFd fd) {
        if (interest_.count(fd))
            push(Event{fd, false, false, true});
    };
    library_.setCallbacks(callbacks);
}

void
F4tEpoll::add(SockFd fd)
{
    interest_[fd] = true;
}

void
F4tEpoll::push(const Event &event)
{
    ready_.push_back(event);
}

std::size_t
F4tEpoll::wait(std::span<Event> out)
{
    std::size_t n = out.size() < ready_.size() ? out.size()
                                               : ready_.size();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ready_[i];
    ready_.erase(ready_.begin(), ready_.begin() +
                                     static_cast<std::ptrdiff_t>(n));
    return n;
}

} // namespace f4t::lib
