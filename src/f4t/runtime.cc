#include "runtime.hh"

#include "sim/causal_trace.hh"

namespace f4t::lib
{

F4tRuntime::F4tRuntime(sim::Simulation &sim, std::string name,
                       core::FtEngine &engine, std::size_t num_queues)
    : SimObject(sim, std::move(name)), engine_(engine),
      memory_(engine.config().tcpBufferBytes), clients_(num_queues),
      commandsSubmitted_(sim.stats(), statName("commandsSubmitted"),
                         "commands submitted to FtEngine"),
      completionsDelivered_(sim.stats(), statName("completionsDelivered"),
                            "completions delivered to libraries")
{
    core::HostInterface &host_if = engine_.hostInterface();
    host_if.setHostMemory(&memory_);
    for (std::size_t i = 0; i < num_queues; ++i) {
        queues_.push_back(std::make_unique<host::QueuePair>(
            1024, engine_.config().commandBytes));
        std::size_t index = host_if.attachQueue(queues_.back().get());
        f4t_assert(index == i, "queue index mismatch");
    }
    host_if.setCompletionWaker(
        [this](std::size_t q) { onCompletionsArrived(q); });
}

void
F4tRuntime::submitCommand(std::size_t q, const host::Command &command,
                          host::CpuCore &core)
{
    core.charge(tcp::CostCategory::f4tLibrary,
                host::F4tCosts::commandWrite +
                    host::F4tCosts::doorbellMmio /
                        host::F4tCosts::doorbellBatch);
    ++commandsSubmitted_;

    if constexpr (sim::trace::compiledIn) {
        if (command.trace.valid()) {
            if (auto *ct = sim().causalTracer())
                ct->submitted(command.trace, now());
        }
    }

    host::QueuePair &pair = *queues_.at(q);
    if (!pair.sq.push(command)) {
        // The ring was past its nominal depth: a real library spins
        // until the engine drains. The elastic ring keeps the command;
        // model the spin as a microsecond of stall on the core.
        core.charge(tcp::CostCategory::f4tLibrary, 2300.0);
    }

    // One MMIO doorbell covers every command pushed before it lands:
    // the engine drains the SQ until empty once woken, so back-to-back
    // submits while a doorbell is in flight need no further MMIO. The
    // flag clears before onDoorbell reads the ring, so a push can
    // never slip between the drain and the re-arm unseen.
    QueueClient &client = clients_.at(q);
    if (client.doorbellArmed)
        return;
    client.doorbellArmed = true;
    engine_.pcie().mmioDoorbell([this, q] {
        clients_.at(q).doorbellArmed = false;
        engine_.hostInterface().onDoorbell(q);
    });
}

void
F4tRuntime::setCompletionHandler(std::size_t q, CompletionHandler handler,
                                 host::CpuCore *core)
{
    QueueClient &client = clients_.at(q);
    client.handler = std::move(handler);
    client.core = core;
}

void
F4tRuntime::onCompletionsArrived(std::size_t q)
{
    QueueClient &client = clients_.at(q);
    if (!client.handler || client.pollScheduled)
        return;
    client.pollScheduled = true;

    // The library thread either polls (cheap) or was asleep and is
    // woken by the runtime (Section 4.6); the wake adds latency.
    sim::Tick wake = now();
    if (client.core && client.core->idle())
        wake += sim::microsecondsToTicks(host::f4tWakeLatencyUs);
    SimObject::queue().scheduleCallback(wake, "runtime.poll",
                                        [this, q] { pollQueue(q); });
}

void
F4tRuntime::pollQueue(std::size_t q)
{
    QueueClient &client = clients_.at(q);
    client.pollScheduled = false;
    host::QueuePair &pair = *queues_.at(q);
    pair.swDoorbell = false;

    while (!pair.cq.empty()) {
        // The library thread is a real thread: completions (and the
        // application work their handlers trigger) execute only as
        // fast as the core runs. When earlier charged work has pushed
        // the busy horizon past now, resume the drain there — this is
        // what makes a saturated core the throughput bottleneck.
        if (client.core && client.core->busyUntil() > now()) {
            client.pollScheduled = true;
            SimObject::queue().scheduleCallback(
                client.core->busyUntil(), "runtime.poll",
                [this, q] { pollQueue(q); });
            return;
        }
        host::Command command = pair.cq.pop();
        if (client.core) {
            client.core->charge(tcp::CostCategory::f4tLibrary,
                                host::F4tCosts::completionPoll);
        }
        ++completionsDelivered_;
        client.handler(command);
    }
}

} // namespace f4t::lib
