/**
 * @file
 * F4T runtime: the userspace device driver (Section 4.1.1, 4.6).
 *
 * Maps the engine's BAR for MMIO doorbells, registers hugepages with
 * the IOMMU for DMA (modelled by HostMemory), and owns the per-thread
 * command queue pairs. Submission batches commands per doorbell; the
 * completion side polls, and a thread that has polled empty for a
 * while sleeps until the runtime wakes it on the software doorbell.
 */

#ifndef F4T_LIB_RUNTIME_HH
#define F4T_LIB_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hh"
#include "host/command_queue.hh"
#include "host/cost_model.hh"
#include "host/cpu.hh"
#include "host/host_memory.hh"
#include "sim/simulation.hh"

namespace f4t::lib
{

class F4tRuntime : public sim::SimObject
{
  public:
    using CompletionHandler = std::function<void(const host::Command &)>;

    F4tRuntime(sim::Simulation &sim, std::string name,
               core::FtEngine &engine, std::size_t num_queues);

    core::FtEngine &engine() { return engine_; }
    host::HostMemory &memory() { return memory_; }
    std::size_t queueCount() const { return queues_.size(); }
    host::QueuePair &queuePair(std::size_t i) { return *queues_.at(i); }

    /**
     * Push one command into queue @p q and ring the hardware doorbell.
     * Charges the calling thread's core for the command write plus the
     * amortized MMIO cost (Section 4.6's MMIO batching).
     */
    void submitCommand(std::size_t q, const host::Command &command,
                       host::CpuCore &core);

    /**
     * Register the completion consumer of queue @p q. Completions are
     * dispatched on @p core with the polling cost charged per command.
     */
    void setCompletionHandler(std::size_t q, CompletionHandler handler,
                              host::CpuCore *core);

    /** Release a closed flow's buffers. */
    void releaseFlowMemory(tcp::FlowId flow) { memory_.release(flow); }

  private:
    void onCompletionsArrived(std::size_t q);
    void pollQueue(std::size_t q);

    core::FtEngine &engine_;
    host::HostMemory memory_;
    std::vector<std::unique_ptr<host::QueuePair>> queues_;

    struct QueueClient
    {
        CompletionHandler handler;
        host::CpuCore *core = nullptr;
        bool pollScheduled = false;
        /** An MMIO doorbell is in flight; further submits ride it. */
        bool doorbellArmed = false;
    };
    std::vector<QueueClient> clients_;

    sim::Counter commandsSubmitted_;
    sim::Counter completionsDelivered_;
};

} // namespace f4t::lib

#endif // F4T_LIB_RUNTIME_HH
