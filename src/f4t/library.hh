/**
 * @file
 * F4T library: the socket layer applications link against
 * (Sections 4.1.1 and 4.6).
 *
 * In the real system the library overrides the POSIX socket API via
 * LD_PRELOAD, turning system calls into plain function calls that talk
 * to FtEngine through per-thread command queues. The simulated library
 * keeps the same structure: one instance per application thread, bound
 * to one queue pair and one CPU core; all data moves through the
 * hugepage TCP buffers; only a handful of window pointers live in
 * software.
 *
 * The API is event-driven (callbacks for connected / readable /
 * writable / closed) because simulated applications are state
 * machines; an epoll-compatible shim (F4tEpoll) layers the paper's
 * linked-list-of-events epoll() emulation on top.
 */

#ifndef F4T_LIB_LIBRARY_HH
#define F4T_LIB_LIBRARY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <span>

#include "f4t/runtime.hh"

namespace f4t::lib
{

/** Socket descriptor (per library instance). */
using SockFd = int;
constexpr SockFd invalidFd = -1;

struct F4tCallbacks
{
    std::function<void(SockFd)> onConnected;
    std::function<void(SockFd, std::uint16_t port)> onAccepted;
    std::function<void(SockFd)> onWritable;
    std::function<void(SockFd, std::size_t readable)> onReadable;
    std::function<void(SockFd)> onPeerClosed;
    std::function<void(SockFd)> onClosed;
    std::function<void(SockFd)> onReset;
};

class F4tLibrary
{
  public:
    /**
     * @param runtime  shared userspace driver
     * @param queue    this thread's queue pair index
     * @param core     the CPU core this thread runs on
     */
    F4tLibrary(F4tRuntime &runtime, std::size_t queue,
               host::CpuCore &core);

    // The constructor registers a this-capturing completion handler
    // with the runtime, so a moved-from library would leave the
    // runtime calling into a dead object. Heap-allocate instead of
    // moving (see testbed_star.hh's makeClientApi).
    F4tLibrary(const F4tLibrary &) = delete;
    F4tLibrary &operator=(const F4tLibrary &) = delete;

    void setCallbacks(const F4tCallbacks &callbacks)
    {
        callbacks_ = callbacks;
    }

    host::CpuCore &core() { return core_; }

    // --- socket API -------------------------------------------------------
    /** listen() with SO_REUSEPORT: accepted flows reach this thread. */
    void listen(std::uint16_t port);

    /** Non-blocking connect(); onConnected fires when established. */
    SockFd connect(net::Ipv4Address ip, std::uint16_t port);

    /** Queue bytes; returns the count accepted (0 when full). */
    std::size_t send(SockFd fd, std::span<const std::uint8_t> data);

    /** Copy received bytes out; returns the count read. */
    std::size_t recv(SockFd fd, std::span<std::uint8_t> out);

    std::size_t readable(SockFd fd) const;
    std::size_t writable(SockFd fd) const;

    /** Graceful close. */
    void close(SockFd fd);

    bool established(SockFd fd) const;

    // --- statistics -----------------------------------------------------------
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

  private:
    struct Socket
    {
        tcp::FlowId flow = tcp::invalidFlowId;
        bool established = false;
        bool peerClosed = false;
        bool sendBlocked = false;
        /** 64-bit stream counters (offset 0 = first payload byte). */
        std::uint64_t ackedOffset = 0;
        std::uint64_t receivedOffset = 0;
        std::uint64_t consumedOffset = 0;
    };

    void handleCompletion(const host::Command &command);
    Socket &get(SockFd fd);
    const Socket &get(SockFd fd) const;
    host::FlowBuffers *buffers(const Socket &sock) const;
    std::uint64_t unwrap32(std::uint64_t reference,
                           std::uint32_t value) const;

    F4tRuntime &runtime_;
    std::size_t queue_;
    host::CpuCore &core_;
    F4tCallbacks callbacks_;

    std::map<SockFd, Socket> sockets_;
    std::map<std::uint16_t, SockFd> pendingConnects_; ///< cookie -> fd
    std::map<tcp::FlowId, SockFd> byFlow_;
    SockFd nextFd_ = 3;

    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
};

/**
 * The paper's epoll() emulation: the library maintains an internal
 * list of ready events and returns them to the application without
 * touching the hardware.
 */
class F4tEpoll
{
  public:
    struct Event
    {
        SockFd fd;
        bool readable = false;
        bool writable = false;
        bool hangup = false;
    };

    explicit F4tEpoll(F4tLibrary &library);

    /** Add a socket to the interest list. */
    void add(SockFd fd);

    /** Drain up to @p max ready events (non-blocking emulation). */
    std::size_t wait(std::span<Event> out);

  private:
    void push(const Event &event);

    F4tLibrary &library_;
    std::map<SockFd, bool> interest_;
    std::vector<Event> ready_;
};

} // namespace f4t::lib

#endif // F4T_LIB_LIBRARY_HH
