#include "tcb.hh"

#include "sim/check.hh"

namespace f4t::tcp
{

const char *
toString(ConnState state)
{
    switch (state) {
      case ConnState::closed: return "CLOSED";
      case ConnState::listen: return "LISTEN";
      case ConnState::synSent: return "SYN_SENT";
      case ConnState::synRcvd: return "SYN_RCVD";
      case ConnState::established: return "ESTABLISHED";
      case ConnState::finWait1: return "FIN_WAIT_1";
      case ConnState::finWait2: return "FIN_WAIT_2";
      case ConnState::closing: return "CLOSING";
      case ConnState::timeWait: return "TIME_WAIT";
      case ConnState::closeWait: return "CLOSE_WAIT";
      case ConnState::lastAck: return "LAST_ACK";
    }
    return "?";
}

const char *
toString(TcpEventType type)
{
    switch (type) {
      case TcpEventType::userSend: return "userSend";
      case TcpEventType::userRecv: return "userRecv";
      case TcpEventType::userConnect: return "userConnect";
      case TcpEventType::userClose: return "userClose";
      case TcpEventType::rxSegment: return "rxSegment";
      case TcpEventType::timeout: return "timeout";
    }
    return "?";
}

Tcb
merge(const Tcb &stored, const EventRecord &events)
{
    Tcb tcb = stored;
    mergeInto(tcb, events);
    return tcb;
}

void
mergeInto(Tcb &tcb, const EventRecord &events)
{
    const std::uint32_t v = events.validMask;

    // Cumulative pointers: newer handler writes override, but never
    // backwards — a late FPU writeback can race a fresher handler
    // write, and cumulative semantics mean the maximum is correct.
    if (v & EventValid::req)
        tcb.req = net::seqMax(tcb.req, events.req);
    if (v & EventValid::userRead)
        tcb.userRead = net::seqMax(tcb.userRead, events.userRead);
    if (v & EventValid::peerAck)
        tcb.sndUna = net::seqMax(tcb.sndUna, events.peerAck);
    if (v & EventValid::rcvUpTo)
        tcb.rcvNxt = net::seqMax(tcb.rcvNxt, events.rcvUpTo);
    if (v & EventValid::peerWnd)
        tcb.sndWnd = events.peerWnd;
    if (v & EventValid::peerIsn) {
        tcb.irs = events.peerIsn;
        tcb.rcvNxt = events.peerIsn + 1;
        tcb.userRead = events.peerIsn + 1;
    }
    if (v & EventValid::dupAck) {
        std::uint32_t total = tcb.dupAcks + events.dupAckIncr;
        tcb.dupAcks = total > 255 ? 255 : static_cast<std::uint8_t>(total);
    }
    if (v & EventValid::flags)
        tcb.pendingFlags |= events.flags;
}

bool
accumulateEvent(EventRecord &record, const Tcb &stored,
                const TcpEvent &event)
{
    switch (event.type) {
      case TcpEventType::userSend:
        record.req = (record.validMask & EventValid::req)
                         ? net::seqMax(record.req, event.pointer)
                         : event.pointer;
        record.validMask |= EventValid::req;
        return false;

      case TcpEventType::userRecv:
        record.userRead = (record.validMask & EventValid::userRead)
                              ? net::seqMax(record.userRead, event.pointer)
                              : event.pointer;
        record.validMask |= EventValid::userRead;
        return false;

      case TcpEventType::userConnect:
        record.flags |= EventFlags::openRequest;
        record.validMask |= EventValid::flags;
        return false;

      case TcpEventType::userClose:
        record.flags |= EventFlags::closeRequest;
        record.validMask |= EventValid::flags;
        return false;

      case TcpEventType::timeout:
        switch (event.timeoutKind) {
          case TimeoutKind::retransmit:
            record.flags |= EventFlags::rtxTimeout;
            break;
          case TimeoutKind::probe:
            record.flags |= EventFlags::probeTimeout;
            break;
          case TimeoutKind::delayedAck:
            record.flags |= EventFlags::delAckTimeout;
            break;
          case TimeoutKind::timeWait:
            record.flags |= EventFlags::timeWaitTimeout;
            break;
        }
        record.validMask |= EventValid::flags;
        return false;

      case TcpEventType::rxSegment: {
        net::SeqNum cur_ack = (record.validMask & EventValid::peerAck)
                                  ? record.peerAck
                                  : stored.sndUna;
        std::uint32_t cur_wnd = (record.validMask & EventValid::peerWnd)
                                    ? record.peerWnd
                                    : stored.sndWnd;

        bool control = (event.tcpFlags &
                        (net::TcpFlags::syn | net::TcpFlags::fin |
                         net::TcpFlags::rst)) != 0;
        bool dup_ack = !control && !event.dataArrived &&
                       (event.tcpFlags & net::TcpFlags::ack) &&
                       event.peerAck == cur_ack &&
                       event.peerWnd == cur_wnd &&
                       net::seqGt(stored.sndNxt, cur_ack);

        if (dup_ack) {
            if (record.dupAckIncr < 255)
                ++record.dupAckIncr;
            record.validMask |= EventValid::dupAck;
            return true;
        }

        if (event.tcpFlags & net::TcpFlags::ack) {
            record.peerAck = (record.validMask & EventValid::peerAck)
                                 ? net::seqMax(record.peerAck,
                                               event.peerAck)
                                 : event.peerAck;
            record.validMask |= EventValid::peerAck;
            record.flags |= EventFlags::ackSeen;
            record.validMask |= EventValid::flags;
        }
        record.peerWnd = event.peerWnd;
        record.validMask |= EventValid::peerWnd;

        if (event.tcpFlags & net::TcpFlags::syn) {
            record.peerIsn = event.peerIsn;
            record.validMask |= EventValid::peerIsn;
            record.flags |= (event.tcpFlags & net::TcpFlags::ack)
                                ? EventFlags::synAckSeen
                                : EventFlags::synSeen;
            record.validMask |= EventValid::flags;
        }
        record.rcvUpTo = (record.validMask & EventValid::rcvUpTo)
                             ? net::seqMax(record.rcvUpTo, event.rcvUpTo)
                             : event.rcvUpTo;
        record.validMask |= EventValid::rcvUpTo;

        if (event.tcpFlags & net::TcpFlags::fin) {
            record.flags |= EventFlags::finSeen;
            record.validMask |= EventValid::flags;
        }
        if (event.tcpFlags & net::TcpFlags::rst) {
            record.flags |= EventFlags::rstSeen;
            record.validMask |= EventValid::flags;
        }
        if (event.dataArrived) {
            record.flags |= EventFlags::dataArrived;
            record.validMask |= EventValid::flags;
        }
        return false;
      }
    }
    return false;
}

void
checkTcbInvariants(const Tcb &tcb, const char *where)
{
    if constexpr (!sim::checksEnabled)
        return;
    (void)where;
    if (!stateSynchronized(tcb.state))
        return;
    F4T_CHECK(net::seqLeq(tcb.sndUna, tcb.sndNxt),
              "%s: flow %u (%s) sndUna %u ahead of sndNxt %u", where,
              tcb.flowId, toString(tcb.state), tcb.sndUna, tcb.sndNxt);
    F4T_CHECK(net::seqLeq(tcb.userRead, tcb.rcvNxt),
              "%s: flow %u (%s) userRead %u ahead of rcvNxt %u", where,
              tcb.flowId, toString(tcb.state), tcb.userRead, tcb.rcvNxt);
    F4T_CHECK(net::seqLeq(tcb.sndUnaProcessed, tcb.sndNxt),
              "%s: flow %u (%s) sndUnaProcessed %u ahead of sndNxt %u",
              where, tcb.flowId, toString(tcb.state), tcb.sndUnaProcessed,
              tcb.sndNxt);
}

bool
TcpEvent::canCoalesce(const TcpEvent &earlier, const TcpEvent &later)
{
    if (earlier.flow != later.flow || earlier.type != later.type)
        return false;

    switch (earlier.type) {
      case TcpEventType::userSend:
      case TcpEventType::userRecv:
        // Pure cumulative pointers always coalesce.
        return true;
      case TcpEventType::rxSegment:
        // Duplicate ACKs carry a count; merging would lose increments.
        if (earlier.isDupAck || later.isDupAck)
            return false;
        // Control flags must be delivered individually.
        if (earlier.tcpFlags & (net::TcpFlags::syn | net::TcpFlags::fin |
                                net::TcpFlags::rst))
            return false;
        if (later.tcpFlags & (net::TcpFlags::syn | net::TcpFlags::fin |
                              net::TcpFlags::rst))
            return false;
        // A later segment that advances no cumulative state is drop or
        // reordering evidence: either a duplicate ACK the RX parser
        // could not classify (no TCB access), or out-of-order payload
        // whose duplicate-ACK response the peer's fast retransmit
        // needs. Merging would lose exactly that information — the
        // paper's "only if there are no packet drops or reordering".
        if (later.peerAck == earlier.peerAck &&
            later.rcvUpTo == earlier.rcvUpTo) {
            return false;
        }
        // Cumulative state must be monotone (GRO-like: no reordering
        // or drop evidence between the two segments).
        return net::seqGeq(later.peerAck, earlier.peerAck) &&
               net::seqGeq(later.rcvUpTo, earlier.rcvUpTo);
      case TcpEventType::timeout:
        return earlier.timeoutKind == later.timeoutKind;
      case TcpEventType::userConnect:
      case TcpEventType::userClose:
        return true;
    }
    return false;
}

void
TcpEvent::coalesce(TcpEvent &earlier, const TcpEvent &later)
{
    // Keep a causal-trace token alive across the merge: the survivor
    // adopts the later event's token when it has none of its own. When
    // both carry tokens the caller reports the later one as coalesced
    // (its remaining stages are observed via offset coverage).
    if (!earlier.trace.valid())
        earlier.trace = later.trace;

    switch (earlier.type) {
      case TcpEventType::userSend:
      case TcpEventType::userRecv:
        earlier.pointer = net::seqMax(earlier.pointer, later.pointer);
        break;
      case TcpEventType::rxSegment:
        earlier.peerAck = net::seqMax(earlier.peerAck, later.peerAck);
        earlier.rcvUpTo = net::seqMax(earlier.rcvUpTo, later.rcvUpTo);
        earlier.peerWnd = later.peerWnd;
        earlier.tcpFlags |= later.tcpFlags;
        earlier.dataArrived |= later.dataArrived;
        break;
      case TcpEventType::timeout:
      case TcpEventType::userConnect:
      case TcpEventType::userClose:
        break;
    }
}

} // namespace f4t::tcp
