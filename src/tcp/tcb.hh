/**
 * @file
 * The Transmission Control Block (TCB) and the accumulated event
 * record — the two halves of F4T's dual-memory architecture
 * (paper Sections 4.2.1 and 4.2.3).
 *
 * The TCB table (FPU-written) holds the state as of the last completed
 * FPU pass. The event table (event-handler-written) holds newer values
 * for the handler-owned fields together with per-field valid bits.
 * merge() constructs the up-to-date TCB the way the TCB manager does:
 * event-table fields with their valid bit set override the TCB-table
 * copy; everything else comes from the TCB table.
 *
 * Handler-owned fields are exactly the cumulative TCP quantities the
 * paper identifies as overwritable without loss: the user send request
 * pointer (req), the user read pointer, the peer's cumulative ACK, the
 * in-order reassembled receive boundary, the peer's advertised window,
 * OR-accumulated flags, and the single special case — the duplicate-ACK
 * increment counter.
 */

#ifndef F4T_TCP_TCB_HH
#define F4T_TCP_TCB_HH

#include <cstdint>
#include <string>

#include "net/four_tuple.hh"
#include "net/seq.hh"
#include "sim/trace_token.hh"
#include "sim/types.hh"

namespace f4t::tcp
{

/** Globally unique flow identifier (used across FPCs and DRAM). */
using FlowId = std::uint32_t;

constexpr FlowId invalidFlowId = ~FlowId{0};

/** TCP connection states (RFC 793 subset implemented by FtEngine). */
enum class ConnState : std::uint8_t
{
    closed,
    listen,
    synSent,
    synRcvd,
    established,
    finWait1,
    finWait2,
    closing,
    timeWait,
    closeWait,
    lastAck,
};

const char *toString(ConnState state);

/** Congestion-control phase shared by all algorithms. */
enum class CcPhase : std::uint8_t
{
    slowStart,
    congestionAvoidance,
    fastRecovery,
};

/** Accumulated flag bits in the event record (OR semantics). */
struct EventFlags
{
    static constexpr std::uint32_t synSeen = 1u << 0;
    static constexpr std::uint32_t synAckSeen = 1u << 1;
    static constexpr std::uint32_t finSeen = 1u << 2;
    static constexpr std::uint32_t rstSeen = 1u << 3;
    static constexpr std::uint32_t ackSeen = 1u << 4;
    static constexpr std::uint32_t rtxTimeout = 1u << 5;
    static constexpr std::uint32_t probeTimeout = 1u << 6;
    static constexpr std::uint32_t delAckTimeout = 1u << 7;
    static constexpr std::uint32_t openRequest = 1u << 8;
    static constexpr std::uint32_t closeRequest = 1u << 9;
    static constexpr std::uint32_t timeWaitTimeout = 1u << 10;
    static constexpr std::uint32_t dataArrived = 1u << 11;
};

/** Per-field valid bits of the event record. */
struct EventValid
{
    static constexpr std::uint32_t req = 1u << 0;
    static constexpr std::uint32_t userRead = 1u << 1;
    static constexpr std::uint32_t peerAck = 1u << 2;
    static constexpr std::uint32_t rcvUpTo = 1u << 3;
    static constexpr std::uint32_t peerWnd = 1u << 4;
    static constexpr std::uint32_t peerIsn = 1u << 5;
    static constexpr std::uint32_t flags = 1u << 6;
    static constexpr std::uint32_t dupAck = 1u << 7;
};

/**
 * The event-table entry: handler-owned cumulative fields plus valid
 * bits. A fixed-size structure, as in the hardware.
 */
struct EventRecord
{
    std::uint32_t validMask = 0;

    net::SeqNum req = 0;      ///< user send boundary (absolute seq)
    net::SeqNum userRead = 0; ///< user consume boundary (absolute seq)
    net::SeqNum peerAck = 0;  ///< peer's cumulative ACK
    net::SeqNum rcvUpTo = 0;  ///< in-order reassembled receive boundary
    std::uint32_t peerWnd = 0;
    net::SeqNum peerIsn = 0;
    std::uint32_t flags = 0;   ///< EventFlags, OR-accumulated
    std::uint8_t dupAckIncr = 0;

    bool empty() const { return validMask == 0; }

    void
    clear()
    {
        *this = EventRecord{};
    }
};

/** Scratch words available to pluggable congestion algorithms. */
constexpr std::size_t algoScratchWords = 8;

/**
 * The full per-flow TCB as stored in the TCB table / DRAM.
 *
 * The wire footprint charged for DRAM transfers is tcbWireBytes; the
 * structure below is the behavioural content.
 */
struct Tcb
{
    // --- identity -----------------------------------------------------
    FlowId flowId = invalidFlowId;
    net::FourTuple tuple;
    bool passiveOpen = false;

    // --- connection state ----------------------------------------------
    ConnState state = ConnState::closed;

    // --- transmit-side cumulative pointers (absolute sequence space) ---
    net::SeqNum iss = 0;     ///< initial send sequence number
    net::SeqNum req = 0;     ///< user has requested send up to here
    net::SeqNum sndNxt = 0;  ///< next sequence number to transmit
    net::SeqNum sndUna = 0;  ///< oldest unacknowledged sequence number
    std::uint32_t sndWnd = 0;///< peer's advertised window (bytes)
    net::SeqNum finSeq = 0;  ///< sequence number consumed by our FIN
    bool finSent = false;
    bool closeRequested = false; ///< close() seen; FIN after drain

    /**
     * FPU-owned mirrors of cumulative inputs, recording the value the
     * FPU acted on during its last pass. Deltas against the merged
     * (handler-updated) values tell a stateless pass what is new.
     */
    net::SeqNum sndUnaProcessed = 0;
    std::uint8_t dupAcksSeen = 0;
    net::SeqNum lastAckSent = 0; ///< rcv boundary covered by last ACK

    // --- receive-side cumulative pointers --------------------------------
    net::SeqNum irs = 0;      ///< peer's initial sequence number
    net::SeqNum rcvNxt = 0;   ///< next in-order byte expected
    net::SeqNum userRead = 0; ///< application has consumed up to here
    std::uint32_t rcvBufBytes = 512 * 1024;
    bool peerFinSeen = false;
    net::SeqNum lastWndAdvertised = 0;
    bool ackPending = false;  ///< received data not yet acknowledged

    // --- congestion control ----------------------------------------------
    CcPhase ccPhase = CcPhase::slowStart;
    std::uint32_t cwnd = 0;       ///< bytes
    std::uint32_t ssthresh = 0;   ///< bytes
    std::uint8_t dupAcks = 0;
    net::SeqNum recover = 0;      ///< NewReno recovery point
    /** RTO go-back-N in progress: cumulative ACKs below `recover`
     *  each retransmit the next hole (multi-segment tail loss would
     *  otherwise crawl at one segment per backed-off RTO). */
    bool rtoRecovery = false;
    std::uint16_t mss = 1460;
    std::uint32_t algoScratch[algoScratchWords] = {};

    // --- RTT estimation (RFC 6298), microsecond granularity -------------
    std::uint32_t srttUs = 0;
    std::uint32_t rttvarUs = 0;
    std::uint32_t rtoUs = 200'000; ///< initial RTO: 200 ms
    bool rttSampling = false;
    net::SeqNum rttSampleSeq = 0;
    std::uint64_t rttSampleStartUs = 0;
    std::uint32_t lastRttUs = 0;
    std::uint32_t minRttUs = 0;   ///< base RTT (Vegas)

    // --- timers (deadlines in absolute microseconds; 0 = unarmed) -------
    std::uint64_t rtxDeadlineUs = 0;
    std::uint64_t probeDeadlineUs = 0;
    std::uint64_t timeWaitDeadlineUs = 0;
    std::uint32_t rtxBackoff = 0; ///< consecutive RTO expirations

    // --- transient event-delivery fields ---------------------------------
    /**
     * EventFlags delivered by the most recent merge(); the FPU consumes
     * them during processing and writes back zero. Never persisted with
     * a nonzero value by a correct FPU program.
     */
    std::uint32_t pendingFlags = 0;

    // --- engine bookkeeping ----------------------------------------------
    bool evictRequested = false;
    bool workPending = false; ///< FPU wants another pass (e.g., more data
                              ///< to send than one pass may emit)
    std::uint64_t lastActiveCycle = 0;

    // --- host notification watermarks ------------------------------------
    net::SeqNum lastAckNotified = 0;
    net::SeqNum lastRcvNotified = 0;

    /** Bytes in flight (sent but unacknowledged). */
    std::uint32_t
    bytesInFlight() const
    {
        return static_cast<std::uint32_t>(net::seqDiff(sndNxt, sndUna));
    }

    /** Currently usable send window: min(cwnd, peer window). */
    std::uint32_t
    effectiveWindow() const
    {
        return cwnd < sndWnd ? cwnd : sndWnd;
    }

    /** Receive window to advertise, from buffer occupancy. */
    std::uint32_t
    receiveWindow() const
    {
        std::uint32_t used =
            static_cast<std::uint32_t>(net::seqDiff(rcvNxt, userRead));
        return used >= rcvBufBytes ? 0 : rcvBufBytes - used;
    }
};

/** DRAM footprint of one TCB, as charged by the memory model. */
constexpr std::size_t tcbWireBytes = 128;

/**
 * Construct the up-to-date TCB exactly as the TCB manager does:
 * event-record fields with valid bits override; flags OR in; the
 * dup-ACK increment adds to the stored count.
 */
Tcb merge(const Tcb &stored, const EventRecord &events);

/** In-place merge for callers that already copied the stored TCB
 *  into its destination (saves a 240 B copy on the issue path). */
void mergeInto(Tcb &tcb, const EventRecord &events);

/** Kinds of per-flow timeouts generated by the timer wheel. */
enum class TimeoutKind : std::uint8_t
{
    retransmit,
    probe,
    delayedAck,
    timeWait,
};

/** Event types routed by the scheduler (paper's three classes). */
enum class TcpEventType : std::uint8_t
{
    userSend,    ///< send() advanced the request pointer
    userRecv,    ///< recv() advanced the read pointer
    userConnect, ///< active open request
    userClose,   ///< close() request
    rxSegment,   ///< pre-processed received packet
    timeout,     ///< timer expiry
};

const char *toString(TcpEventType type);

/**
 * A TCP event as it flows from the host interface / RX parser / timers
 * through the scheduler into an FPC or the memory manager.
 */
/**
 * A TCP event on the scheduler → FPC hot path. This is deliberately a
 * flat tagged union, not an Event subclass: `type` is the kind tag and
 * the payload fields below are shared across kinds (a kind reads only
 * its own fields). Consumers dispatch with a switch on `type` — see
 * Fpc::handleEvent and accumulateEvent — and the whole struct packs
 * into 32 bytes (plus the trace token when tracing is compiled in), so
 * scheduler rings and FPC input FIFOs move it by value with no
 * indirection, no vtable, and no heap traffic (DESIGN.md §17).
 */
struct TcpEvent
{
    FlowId flow = invalidFlowId;
    TcpEventType type = TcpEventType::rxSegment;

    // userSend / userRecv payload: the new cumulative pointer.
    net::SeqNum pointer = 0;

    // rxSegment payload (pre-processed by the RX parser).
    net::SeqNum peerAck = 0;
    std::uint32_t peerWnd = 0;
    net::SeqNum rcvUpTo = 0;
    net::SeqNum peerIsn = 0;
    std::uint8_t tcpFlags = 0; ///< raw TCP header flags
    bool isDupAck = false;
    bool dataArrived = false;  ///< any payload accepted into the buffer

    // timeout payload.
    TimeoutKind timeoutKind = TimeoutKind::retransmit;

    /** Causal-trace token of the request that produced this event
     *  (empty struct when tracing is compiled out). */
    [[no_unique_address]] sim::ctrace::Token trace;

    /**
     * Whether two events of the same flow can coalesce without losing
     * information (Section 4.4.1): duplicate ACKs never coalesce (the
     * count matters), and segment events only coalesce when cumulative
     * state is monotone (no reordering evidence).
     */
    static bool canCoalesce(const TcpEvent &earlier, const TcpEvent &later);

    /** Merge @p later into @p earlier. Caller checked canCoalesce. */
    static void coalesce(TcpEvent &earlier, const TcpEvent &later);
};

/**
 * The event handler's accumulation step (Section 4.2.1): fold @p event
 * into @p record by overwriting cumulative fields, OR-ing flags, and
 * incrementing the duplicate-ACK counter (the single-cycle RMW case).
 * @p stored is the TCB-table entry, needed for duplicate-ACK detection
 * against the merged view. Shared verbatim by the FPC event handler
 * and the memory manager (which "handles events like the event
 * handler", Section 4.3.1).
 *
 * @return true when the event was counted as a duplicate ACK.
 */
bool accumulateEvent(EventRecord &record, const Tcb &stored,
                     const TcpEvent &event);

/**
 * Sequence-space sanity for a TCB at a module boundary (FPU write-back,
 * DRAM event accumulation): once a connection is synchronized, the
 * cumulative pointers must satisfy sndUna <= sndNxt and
 * userRead <= rcvNxt. Panics via F4T_CHECK; a no-op without
 * F4T_ENABLE_CHECKS. @p where names the call site for the report.
 */
void checkTcbInvariants(const Tcb &tcb, const char *where);

/** True for states at or past connection synchronization, where the
 *  cumulative-pointer invariants of checkTcbInvariants() apply. */
constexpr bool
stateSynchronized(ConnState state)
{
    return state == ConnState::established ||
           state == ConnState::finWait1 ||
           state == ConnState::finWait2 ||
           state == ConnState::closing ||
           state == ConnState::timeWait ||
           state == ConnState::closeWait ||
           state == ConnState::lastAck;
}

} // namespace f4t::tcp

#endif // F4T_TCP_TCB_HH
