#include "soft_tcp.hh"

#include <cmath>

namespace f4t::tcp
{

using net::SeqNum;
using net::TcpFlags;

const char *
toString(CostCategory category)
{
    switch (category) {
      case CostCategory::application: return "application";
      case CostCategory::tcpStack: return "tcpStack";
      case CostCategory::kernelOther: return "kernelOther";
      case CostCategory::f4tLibrary: return "f4tLibrary";
      case CostCategory::filesystem: return "filesystem";
    }
    return "?";
}

/** Per-connection state. Stream offsets are 64-bit and 0-based; byte 0
 *  is the first payload byte after the SYN. */
struct SoftTcpStack::Conn
{
    Conn(SoftConnId id_, std::size_t send_buf, std::size_t recv_buf)
        : id(id_), txRing(send_buf), rxRing(recv_buf)
    {}

    SoftConnId id;
    net::FourTuple tuple;
    net::MacAddress peerMac;
    ConnState state = ConnState::closed;
    bool passive = false;
    std::uint16_t listenPort = 0;

    // --- transmit ---------------------------------------------------------
    SeqNum iss = 0;
    net::ByteRing txRing;       ///< base = snd.una stream offset
    std::uint64_t sndNxt = 0;   ///< next stream offset to transmit
    std::uint32_t sndWnd = 0;
    bool closeRequested = false;
    bool finSent = false;
    bool finAcked = false;
    std::uint64_t finOffset = 0;
    bool sendBlocked = false;   ///< send() could not accept all bytes

    // --- receive ----------------------------------------------------------
    SeqNum irs = 0;
    net::ByteRing rxRing;       ///< base = application read offset
    std::uint64_t rcvNxt = 0;   ///< in-order reassembled boundary
    net::IntervalSet ooo;
    bool peerFin = false;
    bool peerFinDelivered = false;
    std::uint64_t peerFinOffset = 0;

    // --- congestion control (doubles; the "NS3 side" of Fig. 14) ----------
    double cwnd = 0;
    double ssthresh = 1e18;
    int dupAcks = 0;
    bool inRecovery = false;
    std::uint64_t recover = 0;
    // CUBIC state.
    double wMaxSeg = 0;
    double cubicK = 0;
    std::uint64_t epochStartUs = 0;
    double ackedSinceEpoch = 0;

    // --- RTT / RTO ----------------------------------------------------------
    double srttUs = 0;
    double rttvarUs = 0;
    double rtoUs = 200'000;
    double lastRttUs = 0;
    bool sampling = false;
    std::uint64_t sampleOffset = 0;
    std::uint64_t sampleStartUs = 0;
    int rtxBackoff = 0;

    // --- timers --------------------------------------------------------------
    std::uint64_t timerGeneration = 0;
    /** TIME_WAIT expiry has its own generation: RTO cancellations
     *  caused by late duplicate ACKs must not squash it. */
    std::uint64_t twGeneration = 0;
    bool rtoArmed = false;

    std::uint64_t
    bytesInFlight() const
    {
        std::uint64_t end = sndNxt;
        return end - txRing.base();
    }

    std::uint64_t
    txEnd() const
    {
        return txRing.end();
    }

    std::uint32_t
    receiveWindow() const
    {
        std::size_t queued = static_cast<std::size_t>(
            rcvNxt - rxRing.base());
        std::size_t cap = rxRing.capacity();
        std::size_t wnd = queued >= cap ? 0 : cap - queued;
        return wnd > 0xffff'ffffULL ? 0xffff'ffffU
                                    : static_cast<std::uint32_t>(wnd);
    }

    /** Wire sequence number for a transmit stream offset. */
    SeqNum
    txWireSeq(std::uint64_t offset) const
    {
        return iss + 1 + static_cast<SeqNum>(offset);
    }

    /** Wire ACK number acknowledging everything reassembled. */
    SeqNum
    rxWireAck(bool fin_consumed) const
    {
        return irs + 1 + static_cast<SeqNum>(rcvNxt) +
               (fin_consumed ? 1 : 0);
    }

    /** Unwrap a wire sequence number into a receive stream offset. */
    std::int64_t
    rxStreamOffset(SeqNum seq) const
    {
        SeqNum base_wire = irs + 1 + static_cast<SeqNum>(rcvNxt);
        std::int32_t delta = net::seqDiff(seq, base_wire);
        return static_cast<std::int64_t>(rcvNxt) + delta;
    }

    /** Unwrap a wire ACK number into a transmit stream offset. */
    std::int64_t
    txStreamOffset(SeqNum ack) const
    {
        SeqNum base_wire = txWireSeq(txRing.base());
        std::int32_t delta = net::seqDiff(ack, base_wire);
        return static_cast<std::int64_t>(txRing.base()) + delta;
    }
};

SoftTcpStack::SoftTcpStack(sim::Simulation &sim, std::string name,
                           const SoftTcpConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      segmentsSent_(sim.stats(), statName("segmentsSent"),
                    "TCP segments transmitted"),
      segmentsRcvd_(sim.stats(), statName("segmentsReceived"),
                    "TCP segments received"),
      retransmits_(sim.stats(), statName("retransmissions"),
                   "segments retransmitted"),
      connectionsOpened_(sim.stats(), statName("connectionsOpened"),
                         "connections established")
{
    nextEphemeralPort_ = config_.ephemeralPortBase;
}

SoftTcpStack::~SoftTcpStack() = default;

std::uint64_t
SoftTcpStack::nowUs() const
{
    return now() / 1'000'000; // ticks are picoseconds
}

void
SoftTcpStack::chargeStack(double cycles)
{
    if (!accountant_ || cycles <= 0)
        return;
    double kernel = cycles * config_.costs.kernelShare;
    accountant_->charge(CostCategory::tcpStack, cycles - kernel);
    if (kernel > 0)
        accountant_->charge(CostCategory::kernelOther, kernel);
}

net::MacAddress
SoftTcpStack::resolveMac(net::Ipv4Address ip) const
{
    auto it = arpTable_.find(ip.value);
    if (it == arpTable_.end())
        f4t_fatal("%s: no ARP entry for %s", name().c_str(),
                  ip.toString().c_str());
    return it->second;
}

SoftTcpStack::Conn *
SoftTcpStack::find(SoftConnId id)
{
    return id < conns_.size() ? conns_[id].get() : nullptr;
}

const SoftTcpStack::Conn *
SoftTcpStack::find(SoftConnId id) const
{
    return id < conns_.size() ? conns_[id].get() : nullptr;
}

SoftTcpStack::Conn &
SoftTcpStack::get(SoftConnId id)
{
    Conn *conn = find(id);
    f4t_assert(conn != nullptr, "%s: unknown connection %u", name().c_str(),
               id);
    return *conn;
}

void
SoftTcpStack::listen(std::uint16_t port)
{
    listeningPorts_.insert(port);
}

SoftConnId
SoftTcpStack::connect(net::Ipv4Address remote_ip, std::uint16_t remote_port)
{
    SoftConnId id = nextConnId_++;
    auto conn = std::make_unique<Conn>(id, config_.sendBufBytes,
                                       config_.recvBufBytes);
    conn->tuple = net::FourTuple{config_.ip, nextEphemeralPort_++,
                                 remote_ip, remote_port};
    conn->peerMac = resolveMac(remote_ip);
    conn->iss = static_cast<SeqNum>((id + 77) * 0x1f3a5c97u);
    setState(*conn, ConnState::synSent);
    conn->sndWnd = config_.mss; // until the peer advertises

    connByTuple_[conn->tuple] = id;
    Conn &ref = *conn;
    conns_.resize(id + 1); // ids are monotonic: id == old size
    conns_[id] = std::move(conn);

    sendControl(ref, TcpFlags::syn, /*with_mss=*/true);
    armRto(ref);
    return id;
}

std::size_t
SoftTcpStack::send(SoftConnId id, std::span<const std::uint8_t> data)
{
    // Upcalls are delivered with wakeup jitter, so an app can issue a
    // syscall against a connection the stack already destroyed (the
    // EBADF case on real kernels): tolerate it like readable()/close().
    Conn *conn_ptr = find(id);
    if (!conn_ptr)
        return 0;
    Conn &conn = *conn_ptr;
    if (conn.state != ConnState::established &&
        conn.state != ConnState::closeWait &&
        conn.state != ConnState::synSent) {
        return 0;
    }

    std::size_t accepted = conn.txRing.append(data);
    if (accepted < data.size())
        conn.sendBlocked = true;

    chargeStack(config_.costs.sendSyscall +
                config_.costs.sendPerByte * accepted);

    if (conn.state != ConnState::synSent)
        trySendData(conn);
    return accepted;
}

std::size_t
SoftTcpStack::recv(SoftConnId id, std::span<std::uint8_t> out)
{
    Conn *conn_ptr = find(id);
    if (!conn_ptr)
        return 0; // see send(): jitter-delayed upcall, EBADF semantics
    Conn &conn = *conn_ptr;
    std::size_t avail = static_cast<std::size_t>(
        conn.rcvNxt - conn.rxRing.base());
    std::size_t n = out.size() < avail ? out.size() : avail;
    if (n > 0) {
        conn.rxRing.copyOut(conn.rxRing.base(), out.subspan(0, n));
        conn.rxRing.release(n);
        // Window may have reopened; let the peer know if it was closed.
        if (conn.receiveWindow() >= config_.mss &&
            conn.receiveWindow() <
                static_cast<std::uint32_t>(config_.mss) * 2) {
            sendAck(conn);
        }
    }
    chargeStack(config_.costs.recvSyscall + config_.costs.recvPerByte * n);
    return n;
}

std::size_t
SoftTcpStack::readable(SoftConnId id) const
{
    const Conn *conn = find(id);
    if (!conn)
        return 0;
    return static_cast<std::size_t>(conn->rcvNxt - conn->rxRing.base());
}

std::size_t
SoftTcpStack::writable(SoftConnId id) const
{
    const Conn *conn = find(id);
    if (!conn)
        return 0;
    return conn->txRing.freeSpace();
}

void
SoftTcpStack::close(SoftConnId id)
{
    Conn *conn = find(id);
    if (!conn || conn->closeRequested)
        return;
    conn->closeRequested = true;
    maybeSendFin(*conn);
}

void
SoftTcpStack::abort(SoftConnId id)
{
    Conn *conn = find(id);
    if (!conn)
        return;
    sendReset(conn->tuple, conn->txWireSeq(conn->sndNxt),
              conn->rxWireAck(conn->peerFin), conn->peerMac);
    destroy(id);
}

ConnState
SoftTcpStack::state(SoftConnId id) const
{
    const Conn *conn = find(id);
    return conn ? conn->state : ConnState::closed;
}

double
SoftTcpStack::cwnd(SoftConnId id) const
{
    const Conn *conn = find(id);
    return conn ? conn->cwnd : 0.0;
}

// ---------------------------------------------------------------------
// receive path
// ---------------------------------------------------------------------

void
SoftTcpStack::receivePacket(net::Packet &&pkt)
{
    if (!pkt.isTcp())
        return; // ARP/ICMP handled statically in this stack
    if (!pkt.ip || pkt.ip->dst != config_.ip)
        return;
    ++segmentsRcvd_;
    chargeStack(config_.costs.rxSegment +
                config_.costs.rxPerByte *
                    static_cast<double>(pkt.payload.size()));
    handleTcp(pkt);
}

void
SoftTcpStack::handleTcp(const net::Packet &pkt)
{
    const net::TcpHeader &tcp = pkt.tcp();
    net::FourTuple tuple{config_.ip, tcp.dstPort, pkt.ip->src, tcp.srcPort};

    auto it = connByTuple_.find(tuple);
    if (it == connByTuple_.end()) {
        if (tcp.hasFlag(TcpFlags::syn) && !tcp.hasFlag(TcpFlags::ack) &&
            listeningPorts_.count(tcp.dstPort)) {
            handleListen(pkt, tcp.dstPort);
        } else if (!tcp.hasFlag(TcpFlags::rst)) {
            sendReset(tuple, tcp.ack, tcp.seq, pkt.eth.src);
        }
        return;
    }

    Conn &conn = get(it->second);
    conn.peerMac = pkt.eth.src;
    handleSegment(conn, tcp, pkt.payload);
}

void
SoftTcpStack::handleListen(const net::Packet &pkt, std::uint16_t port)
{
    const net::TcpHeader &tcp = pkt.tcp();

    SoftConnId id = nextConnId_++;
    auto conn = std::make_unique<Conn>(id, config_.sendBufBytes,
                                       config_.recvBufBytes);
    conn->tuple = net::FourTuple{config_.ip, port, pkt.ip->src, tcp.srcPort};
    conn->peerMac = pkt.eth.src;
    conn->passive = true;
    conn->listenPort = port;
    conn->iss = static_cast<SeqNum>((id + 77) * 0x1f3a5c97u);
    conn->irs = tcp.seq;
    setState(*conn, ConnState::synRcvd);
    conn->sndWnd = tcp.window;

    connByTuple_[conn->tuple] = id;
    Conn &ref = *conn;
    conns_.resize(id + 1); // ids are monotonic: id == old size
    conns_[id] = std::move(conn);

    sendControl(ref, TcpFlags::syn | TcpFlags::ack, /*with_mss=*/true);
    armRto(ref);
}

void
SoftTcpStack::handleSegment(Conn &conn, const net::TcpHeader &tcp,
                            std::span<const std::uint8_t> payload)
{
    if (tcp.hasFlag(TcpFlags::rst)) {
        if (callbacks_.onReset)
            callbacks_.onReset(conn.id);
        destroy(conn.id);
        return;
    }

    switch (conn.state) {
      case ConnState::synSent:
        if (tcp.hasFlag(TcpFlags::syn) && tcp.hasFlag(TcpFlags::ack) &&
            tcp.ack == conn.iss + 1) {
            conn.irs = tcp.seq;
            conn.sndWnd = tcp.window;
            setState(conn, ConnState::established);
            finishEstablishment(conn);
            sendAck(conn);
            trySendData(conn);
            maybeSendFin(conn);
        }
        return;

      case ConnState::synRcvd:
        if (tcp.hasFlag(TcpFlags::ack) && tcp.ack == conn.iss + 1) {
            conn.sndWnd = tcp.window;
            setState(conn, ConnState::established);
            finishEstablishment(conn);
            // Fall through to normal processing of any payload.
        } else if (tcp.hasFlag(TcpFlags::syn)) {
            // Our SYN-ACK was lost; retransmit it.
            sendControl(conn, TcpFlags::syn | TcpFlags::ack, true);
            return;
        } else {
            return;
        }
        break;

      case ConnState::established:
      case ConnState::finWait1:
      case ConnState::finWait2:
      case ConnState::closing:
      case ConnState::closeWait:
      case ConnState::lastAck:
      case ConnState::timeWait:
        break;

      case ConnState::closed:
      case ConnState::listen:
        return;
    }

    if (tcp.hasFlag(TcpFlags::ack)) {
        // processAck destroys the connection when the ACK completes
        // LAST_ACK, so re-look it up instead of touching `conn` after.
        const SoftConnId id = conn.id;
        processAck(conn, tcp);
        if (find(id) == nullptr)
            return;
    }

    if (!payload.empty() || tcp.hasFlag(TcpFlags::fin))
        acceptPayload(conn, tcp, payload);

    trySendData(conn);
    maybeSendFin(conn);
}

void
SoftTcpStack::processAck(Conn &conn, const net::TcpHeader &tcp)
{
    conn.sndWnd = tcp.window;

    std::int64_t ack_off = conn.txStreamOffset(tcp.ack);
    std::int64_t base = static_cast<std::int64_t>(conn.txRing.base());
    std::uint64_t now_us = nowUs();

    // Upper bound of what can legitimately be acknowledged.
    std::uint64_t max_ack = conn.sndNxt + (conn.finSent ? 1 : 0);

    if (ack_off > base && ack_off <= static_cast<std::int64_t>(max_ack)) {
        bool fin_covered =
            conn.finSent && ack_off >
                                static_cast<std::int64_t>(conn.finOffset);
        std::uint64_t data_ack =
            fin_covered ? conn.finOffset
                        : static_cast<std::uint64_t>(ack_off);
        std::uint32_t acked_data = static_cast<std::uint32_t>(
            data_ack - conn.txRing.base());

        if (acked_data > 0)
            conn.txRing.release(acked_data);

        // RTT sample (Karn-compliant: sampling is cancelled on rtx).
        if (conn.sampling &&
            static_cast<std::uint64_t>(ack_off) >= conn.sampleOffset) {
            updateRtt(conn, now_us);
        }
        conn.rtxBackoff = 0;

        if (conn.inRecovery) {
            if (static_cast<std::uint64_t>(ack_off) >= conn.recover) {
                ccOnExitRecovery(conn);
            } else {
                ccOnPartialAck(conn, acked_data);
                // Retransmit the next hole right away.
                std::uint64_t len = conn.txEnd() - conn.txRing.base();
                if (len > config_.mss)
                    len = config_.mss;
                if (len > 0) {
                    sendSegment(conn, conn.txRing.base(),
                                static_cast<std::uint32_t>(len), true);
                }
            }
        } else if (acked_data > 0) {
            ccOnAck(conn, acked_data, now_us);
            conn.dupAcks = 0;
        }

        if (fin_covered && !conn.finAcked) {
            conn.finAcked = true;
            switch (conn.state) {
              case ConnState::finWait1:
                setState(conn, ConnState::finWait2);
                break;
              case ConnState::closing:
                enterTimeWait(conn);
                break;
              case ConnState::lastAck:
                setState(conn, ConnState::closed);
                cancelRto(conn);
                if (callbacks_.onClosed)
                    callbacks_.onClosed(conn.id);
                destroy(conn.id);
                return;
              default:
                break;
            }
        }

        if (conn.bytesInFlight() == 0 &&
            !(conn.finSent && !conn.finAcked)) {
            cancelRto(conn);
        } else {
            armRto(conn);
        }

        if (conn.sendBlocked && conn.txRing.freeSpace() > 0) {
            conn.sendBlocked = false;
            if (callbacks_.onWritable)
                callbacks_.onWritable(conn.id);
        }
    } else if (ack_off == base && conn.sndNxt > conn.txRing.base()) {
        // Potential duplicate ACK (RFC 5681 heuristics).
        if (tcp.window == conn.sndWnd &&
            !tcp.hasFlag(TcpFlags::syn) && !tcp.hasFlag(TcpFlags::fin)) {
            ++conn.dupAcks;
            if (conn.inRecovery) {
                conn.cwnd += config_.mss;
                trySendData(conn);
            } else if (conn.dupAcks == 3) {
                ccOnDupAcks(conn, now_us);
                std::uint64_t len = conn.txEnd() - conn.txRing.base();
                if (len > config_.mss)
                    len = config_.mss;
                sendSegment(conn, conn.txRing.base(),
                            static_cast<std::uint32_t>(len), true);
            }
        }
    }
}

void
SoftTcpStack::acceptPayload(Conn &conn, const net::TcpHeader &tcp,
                            std::span<const std::uint8_t> payload)
{
    std::int64_t offset = conn.rxStreamOffset(tcp.seq);
    std::int64_t seg_end = offset + static_cast<std::int64_t>(payload.size());

    bool advanced = false;

    if (!payload.empty()) {
        std::int64_t wnd_end = static_cast<std::int64_t>(
            conn.rxRing.base() + conn.rxRing.capacity());
        std::int64_t accept_start =
            offset < static_cast<std::int64_t>(conn.rcvNxt)
                ? static_cast<std::int64_t>(conn.rcvNxt)
                : offset;
        std::int64_t accept_end = seg_end < wnd_end ? seg_end : wnd_end;

        if (accept_start < accept_end) {
            std::size_t skip =
                static_cast<std::size_t>(accept_start - offset);
            std::size_t len =
                static_cast<std::size_t>(accept_end - accept_start);
            conn.rxRing.writeAt(static_cast<std::uint64_t>(accept_start),
                                payload.subspan(skip, len));
            conn.ooo.insert(static_cast<std::uint64_t>(accept_start),
                            static_cast<std::uint64_t>(accept_end));
            std::uint64_t new_boundary = conn.ooo.contiguousEnd(conn.rcvNxt);
            if (new_boundary > conn.rcvNxt) {
                conn.rcvNxt = new_boundary;
                conn.ooo.eraseBelow(new_boundary);
                advanced = true;
            }
        }
    }

    if (tcp.hasFlag(TcpFlags::fin)) {
        conn.peerFin = true;
        conn.peerFinOffset = static_cast<std::uint64_t>(seg_end);
    }

    bool fin_consumed = conn.peerFin && conn.rcvNxt >= conn.peerFinOffset;
    if (fin_consumed && !conn.peerFinDelivered) {
        conn.peerFinDelivered = true;
        switch (conn.state) {
          case ConnState::established:
            setState(conn, ConnState::closeWait);
            break;
          case ConnState::finWait1:
            if (conn.finAcked)
                enterTimeWait(conn);
            else
                setState(conn, ConnState::closing);
            break;
          case ConnState::finWait2:
            enterTimeWait(conn);
            break;
          default:
            break;
        }
        if (callbacks_.onPeerClosed)
            callbacks_.onPeerClosed(conn.id);
    }

    // Acknowledge every received segment (ACK-clock the sender; a
    // below-boundary segment generates the duplicate ACK the sender's
    // fast retransmit needs).
    sendAck(conn);

    if (advanced)
        notifyReadable(conn);
}

void
SoftTcpStack::notifyReadable(Conn &conn)
{
    std::size_t avail =
        static_cast<std::size_t>(conn.rcvNxt - conn.rxRing.base());
    if (avail > 0 && callbacks_.onReadable)
        callbacks_.onReadable(conn.id, avail);
}

// ---------------------------------------------------------------------
// transmit path
// ---------------------------------------------------------------------

void
SoftTcpStack::trySendData(Conn &conn)
{
    if (conn.state != ConnState::established &&
        conn.state != ConnState::closeWait) {
        return;
    }

    while (conn.sndNxt < conn.txEnd()) {
        double wnd = conn.cwnd < static_cast<double>(conn.sndWnd)
                         ? conn.cwnd
                         : static_cast<double>(conn.sndWnd);
        std::uint64_t in_flight = conn.bytesInFlight();
        if (static_cast<double>(in_flight) >= wnd)
            break;
        std::uint64_t usable =
            static_cast<std::uint64_t>(wnd) - in_flight;
        std::uint64_t len = conn.txEnd() - conn.sndNxt;
        if (len > usable)
            len = usable;
        if (len > config_.mss)
            len = config_.mss;
        if (len == 0)
            break;
        sendSegment(conn, conn.sndNxt, static_cast<std::uint32_t>(len),
                    false);
        conn.sndNxt += len;
    }

    if (conn.sndWnd == 0 && conn.sndNxt < conn.txEnd()) {
        // Zero-window persist: reuse the RTO machinery as the probe
        // timer (onRtoFire emits a probe when the window is closed).
        armRto(conn);
    }
}

void
SoftTcpStack::maybeSendFin(Conn &conn)
{
    bool can = conn.state == ConnState::established ||
               conn.state == ConnState::closeWait;
    if (!can || !conn.closeRequested || conn.finSent)
        return;
    if (conn.sndNxt < conn.txEnd())
        return; // data still queued

    conn.finOffset = conn.sndNxt;
    conn.finSent = true;
    sendControl(conn, TcpFlags::fin | TcpFlags::ack);
    setState(conn, conn.state == ConnState::established
                       ? ConnState::finWait1
                       : ConnState::lastAck);
    armRto(conn);
}

void
SoftTcpStack::sendSegment(Conn &conn, std::uint64_t stream_offset,
                          std::uint32_t length, bool retransmission)
{
    f4t_assert(transmit_ != nullptr, "%s has no transmit function",
               name().c_str());

    net::PayloadBuffer payload(length);
    conn.txRing.copyOut(stream_offset, payload);

    net::TcpHeader tcp;
    tcp.srcPort = conn.tuple.localPort;
    tcp.dstPort = conn.tuple.remotePort;
    tcp.seq = conn.txWireSeq(stream_offset);
    tcp.ack = conn.rxWireAck(conn.peerFin &&
                             conn.rcvNxt >= conn.peerFinOffset);
    tcp.flags = TcpFlags::ack | TcpFlags::psh;
    tcp.window = conn.receiveWindow();

    net::Packet pkt = net::Packet::makeTcp(config_.mac, conn.peerMac,
                                           config_.ip, conn.tuple.remoteIp,
                                           tcp, std::move(payload));
    ++segmentsSent_;
    if (retransmission) {
        ++retransmits_;
        conn.sampling = false; // Karn's rule
    } else if (!conn.sampling) {
        conn.sampling = true;
        conn.sampleOffset = stream_offset + length;
        conn.sampleStartUs = nowUs();
    }
    chargeStack(config_.costs.txSegment);
    transmit_(std::move(pkt));
    armRto(conn);
}

void
SoftTcpStack::sendControl(Conn &conn, std::uint8_t flags, bool with_mss)
{
    f4t_assert(transmit_ != nullptr, "%s has no transmit function",
               name().c_str());

    net::TcpHeader tcp;
    tcp.srcPort = conn.tuple.localPort;
    tcp.dstPort = conn.tuple.remotePort;
    tcp.flags = flags;
    tcp.window = conn.receiveWindow();
    if (with_mss)
        tcp.mssOption = config_.mss;

    if (flags & TcpFlags::syn) {
        tcp.seq = conn.iss;
    } else if (flags & TcpFlags::fin) {
        tcp.seq = conn.txWireSeq(conn.finOffset);
    } else {
        tcp.seq = conn.txWireSeq(conn.sndNxt);
    }
    if (flags & TcpFlags::ack) {
        tcp.ack = conn.rxWireAck(conn.peerFin &&
                                 conn.rcvNxt >= conn.peerFinOffset);
    }

    net::Packet pkt = net::Packet::makeTcp(config_.mac, conn.peerMac,
                                           config_.ip,
                                           conn.tuple.remoteIp, tcp);
    ++segmentsSent_;
    chargeStack(config_.costs.txSegment);
    transmit_(std::move(pkt));
}

void
SoftTcpStack::sendAck(Conn &conn)
{
    sendControl(conn, TcpFlags::ack);
}

void
SoftTcpStack::sendReset(const net::FourTuple &tuple, net::SeqNum seq,
                        net::SeqNum ack, net::MacAddress dst_mac)
{
    if (!transmit_)
        return;
    net::TcpHeader tcp;
    tcp.srcPort = tuple.localPort;
    tcp.dstPort = tuple.remotePort;
    tcp.flags = TcpFlags::rst | TcpFlags::ack;
    tcp.seq = seq;
    tcp.ack = ack;
    net::Packet pkt = net::Packet::makeTcp(config_.mac, dst_mac, config_.ip,
                                           tuple.remoteIp, tcp);
    ++segmentsSent_;
    transmit_(std::move(pkt));
}

// ---------------------------------------------------------------------
// timers
// ---------------------------------------------------------------------

void
SoftTcpStack::armRto(Conn &conn)
{
    double rto = conn.rtoUs;
    for (int i = 0; i < conn.rtxBackoff; ++i)
        rto *= 2;
    if (rto > config_.maxRtoUs)
        rto = config_.maxRtoUs;

    conn.rtoArmed = true;
    std::uint64_t generation = ++conn.timerGeneration;
    SoftConnId id = conn.id;
    queue().scheduleCallback(
        now() + sim::microsecondsToTicks(rto), "softtcp.rto",
        [this, id, generation] { onRtoFire(id, generation); });
}

void
SoftTcpStack::cancelRto(Conn &conn)
{
    conn.rtoArmed = false;
    ++conn.timerGeneration; // squash any scheduled firing
}

void
SoftTcpStack::onRtoFire(SoftConnId id, std::uint64_t generation)
{
    Conn *conn = find(id);
    if (!conn || !conn->rtoArmed || conn->timerGeneration != generation)
        return;

    std::uint64_t now_us = nowUs();

    switch (conn->state) {
      case ConnState::synSent:
        ++conn->rtxBackoff;
        ++retransmits_;
        sendControl(*conn, TcpFlags::syn, true);
        armRto(*conn);
        return;
      case ConnState::synRcvd:
        ++conn->rtxBackoff;
        ++retransmits_;
        sendControl(*conn, TcpFlags::syn | TcpFlags::ack, true);
        armRto(*conn);
        return;
      default:
        break;
    }

    if (conn->sndWnd == 0 && conn->sndNxt < conn->txEnd() &&
        conn->bytesInFlight() == 0) {
        // Zero-window probe: a single byte keeps the ACK flow alive.
        sendSegment(*conn, conn->sndNxt, 1, false);
        conn->sndNxt += 1;
        armRto(*conn);
        return;
    }

    bool fin_outstanding = conn->finSent && !conn->finAcked;
    if (conn->bytesInFlight() == 0 && !fin_outstanding)
        return; // stale timer

    ccOnTimeout(*conn, now_us);
    ++conn->rtxBackoff;

    if (conn->bytesInFlight() > 0) {
        std::uint64_t len = conn->sndNxt - conn->txRing.base();
        if (len > config_.mss)
            len = config_.mss;
        sendSegment(*conn, conn->txRing.base(),
                    static_cast<std::uint32_t>(len), true);
    } else if (fin_outstanding) {
        ++retransmits_;
        sendControl(*conn, TcpFlags::fin | TcpFlags::ack);
    }
    armRto(*conn);
}

void
SoftTcpStack::enterTimeWait(Conn &conn)
{
    setState(conn, ConnState::timeWait);
    cancelRto(conn);
    SoftConnId id = conn.id;
    std::uint64_t generation = ++conn.twGeneration;
    queue().scheduleCallback(
        now() + sim::microsecondsToTicks(config_.timeWaitUs),
        "softtcp.timewait", [this, id, generation] {
            Conn *c = find(id);
            if (!c || c->twGeneration != generation)
                return;
            if (callbacks_.onClosed)
                callbacks_.onClosed(id);
            destroy(id);
        });
}

void
SoftTcpStack::setState(Conn &conn, ConnState next)
{
    F4T_TRACE(SoftTcp, "%s: conn %u %s -> %s", name().c_str(), conn.id,
              toString(conn.state), toString(next));
    if (auto *tl = sim().timeline()) {
        tl->instant(name(), "conn",
                    std::string("conn ") + std::to_string(conn.id) + " " +
                        toString(next),
                    now());
    }
    conn.state = next;
}

void
SoftTcpStack::destroy(SoftConnId id)
{
    Conn *conn = find(id);
    if (!conn)
        return;
    connByTuple_.erase(conn->tuple);
    conns_[id].reset();
}

void
SoftTcpStack::finishEstablishment(Conn &conn)
{
    ccInit(conn);
    cancelRto(conn);
    ++connectionsOpened_;
    chargeStack(config_.costs.connectionSetup);
    if (conn.passive) {
        if (callbacks_.onAccept)
            callbacks_.onAccept(conn.id, conn.listenPort);
    } else {
        if (callbacks_.onConnected)
            callbacks_.onConnected(conn.id);
    }
}

void
SoftTcpStack::updateRtt(Conn &conn, std::uint64_t now_us)
{
    conn.sampling = false;
    double sample = static_cast<double>(now_us - conn.sampleStartUs);
    if (sample < 1)
        sample = 1;
    conn.lastRttUs = sample;

    if (conn.srttUs == 0) {
        conn.srttUs = sample;
        conn.rttvarUs = sample / 2;
    } else {
        double err = std::abs(sample - conn.srttUs);
        conn.rttvarUs = 0.75 * conn.rttvarUs + 0.25 * err;
        conn.srttUs = 0.875 * conn.srttUs + 0.125 * sample;
    }
    double rto = conn.srttUs + std::max(config_.minRtoUs / 2.0,
                                        4.0 * conn.rttvarUs);
    if (rto < config_.minRtoUs)
        rto = config_.minRtoUs;
    if (rto > config_.maxRtoUs)
        rto = config_.maxRtoUs;
    conn.rtoUs = rto;
}

// ---------------------------------------------------------------------
// congestion control (independent, floating point)
// ---------------------------------------------------------------------

void
SoftTcpStack::ccInit(Conn &conn)
{
    conn.cwnd = 10.0 * config_.mss;
    conn.ssthresh = 1e18;
    conn.dupAcks = 0;
    conn.inRecovery = false;
    conn.wMaxSeg = 0;
    conn.epochStartUs = 0;
}

void
SoftTcpStack::ccOnAck(Conn &conn, std::uint32_t acked, std::uint64_t now_us)
{
    const double mss = config_.mss;

    if (conn.cwnd < conn.ssthresh) {
        // Slow start (both algorithms).
        conn.cwnd += std::min<double>(acked, mss);
        return;
    }

    if (config_.cc == SoftCcAlgo::newReno) {
        conn.cwnd += mss * mss / conn.cwnd;
        return;
    }

    // CUBIC congestion avoidance (RFC 8312, floating point).
    constexpr double C = 0.4;
    if (conn.epochStartUs == 0) {
        cubicStartEpoch(conn, now_us);
    }
    double t = static_cast<double>(now_us - conn.epochStartUs) / 1e6;
    double d = t - conn.cubicK;
    double w_cubic_seg = C * d * d * d + conn.wMaxSeg;

    conn.ackedSinceEpoch += acked;
    // TCP-friendly estimate.
    constexpr double beta = 0.7;
    double w_est_seg = conn.wMaxSeg * beta +
                       (3.0 * (1.0 - beta) / (1.0 + beta)) *
                           (conn.ackedSinceEpoch / mss);
    double target_seg = std::max(w_cubic_seg, w_est_seg);
    double target = std::max(target_seg * mss, 2.0 * mss);

    if (target > conn.cwnd) {
        conn.cwnd += (target - conn.cwnd) * acked / conn.cwnd;
    } else {
        conn.cwnd += 0.01 * acked;
    }
}

void
SoftTcpStack::cubicStartEpoch(Conn &conn, std::uint64_t now_us)
{
    constexpr double C = 0.4;
    conn.epochStartUs = now_us;
    conn.ackedSinceEpoch = 0;
    double cwnd_seg = conn.cwnd / config_.mss;
    if (conn.wMaxSeg < cwnd_seg)
        conn.wMaxSeg = cwnd_seg;
    double delta = conn.wMaxSeg - cwnd_seg;
    conn.cubicK = delta > 0 ? std::cbrt(delta / C) : 0.0;
}

void
SoftTcpStack::ccOnDupAcks(Conn &conn, std::uint64_t now_us)
{
    const double mss = config_.mss;
    double flight = static_cast<double>(conn.bytesInFlight());

    if (config_.cc == SoftCcAlgo::newReno) {
        conn.ssthresh = std::max(flight / 2.0, 2.0 * mss);
    } else {
        constexpr double beta = 0.7;
        double cwnd_seg = conn.cwnd / mss;
        // Fast convergence.
        if (cwnd_seg < conn.wMaxSeg)
            conn.wMaxSeg = cwnd_seg * (1.0 + beta) / 2.0;
        else
            conn.wMaxSeg = cwnd_seg;
        conn.ssthresh = std::max(conn.cwnd * beta, 2.0 * mss);
        conn.epochStartUs = 0; // re-derive K on the next ACK
        (void)now_us;
    }
    conn.recover = conn.sndNxt;
    conn.inRecovery = true;
    conn.cwnd = conn.ssthresh + 3.0 * mss;
    conn.sampling = false;
}

void
SoftTcpStack::ccOnPartialAck(Conn &conn, std::uint32_t acked)
{
    const double mss = config_.mss;
    double deflate = static_cast<double>(acked);
    conn.cwnd = std::max(conn.cwnd - deflate + mss, mss);
}

void
SoftTcpStack::ccOnExitRecovery(Conn &conn)
{
    conn.inRecovery = false;
    conn.dupAcks = 0;
    conn.cwnd = conn.ssthresh;
}

void
SoftTcpStack::ccOnTimeout(Conn &conn, std::uint64_t now_us)
{
    const double mss = config_.mss;
    double flight = static_cast<double>(conn.bytesInFlight());

    if (config_.cc == SoftCcAlgo::cubic) {
        double cwnd_seg = conn.cwnd / mss;
        conn.wMaxSeg = cwnd_seg;
        conn.epochStartUs = 0;
        (void)now_us;
    }
    conn.ssthresh = std::max(flight / 2.0, 2.0 * mss);
    conn.cwnd = mss;
    conn.inRecovery = false;
    conn.dupAcks = 0;
    conn.sampling = false;
}

} // namespace f4t::tcp
