/**
 * @file
 * The FPU program: stateless TCP processing (paper Section 4.2.2).
 *
 * The flow processing unit receives a merged, up-to-date TCB from the
 * TCB manager and performs one full TCP pass over it: connection state
 * machine, congestion/flow control send decision, ACK generation,
 * window advertisement, retransmission, and probing. The pass is a
 * pure function of (TCB, time): all outputs are the updated TCB plus a
 * list of actions for the data path, the timer wheel, and the host
 * interface. This statelessness is what lets the hardware FPU be fully
 * pipelined with arbitrary latency — and what lets users program it in
 * HLS C++ with no hazards to reason about.
 */

#ifndef F4T_TCP_FPU_PROGRAM_HH
#define F4T_TCP_FPU_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "tcp/congestion.hh"
#include "tcp/tcb.hh"

namespace f4t::tcp
{

/** A data-transfer request to the packet generator. */
struct SegmentRequest
{
    FlowId flow = invalidFlowId;
    net::SeqNum seq = 0;
    std::uint32_t length = 0;
    net::SeqNum ack = 0;       ///< ACK number carried by the segments
    std::uint32_t window = 0;  ///< receive window carried
    bool fin = false;          ///< last segment carries FIN
    bool retransmission = false;
};

/** A pure control packet (no payload fetched from the data buffer). */
struct ControlRequest
{
    FlowId flow = invalidFlowId;
    std::uint8_t flags = 0;    ///< TCP flag bits
    net::SeqNum seq = 0;
    net::SeqNum ack = 0;
    std::uint32_t window = 0;
    std::uint16_t mssOption = 0;
    bool windowProbe = false;  ///< carry one byte of probe data
};

/** Completion notifications for the host interface. */
struct HostNotification
{
    enum class Kind : std::uint8_t
    {
        connected,  ///< handshake finished (active or passive open)
        acked,      ///< snd.una advanced; pointer = new boundary
        received,   ///< in-order data available; pointer = new boundary
        peerClosed, ///< FIN received (EOF)
        closed,     ///< connection fully closed, flow recycled
        reset,      ///< connection aborted (RST or handshake failure)
    };

    FlowId flow = invalidFlowId;
    Kind kind = Kind::acked;
    net::SeqNum pointer = 0;
};

/** Timer (re)programming requests. */
struct TimerRequest
{
    FlowId flow = invalidFlowId;
    TimeoutKind kind = TimeoutKind::retransmit;
    /** Absolute deadline in microseconds; 0 cancels the timer. */
    std::uint64_t deadlineUs = 0;
};

/** Everything one FPU pass produces besides the updated TCB. */
struct FpuActions
{
    std::vector<SegmentRequest> segments;
    std::vector<ControlRequest> controls;
    std::vector<HostNotification> notifications;
    std::vector<TimerRequest> timers;
    /** The flow finished and its resources can be recycled. */
    bool releaseFlow = false;

    void
    clear()
    {
        segments.clear();
        controls.clear();
        notifications.clear();
        timers.clear();
        releaseFlow = false;
    }

    bool
    empty() const
    {
        return segments.empty() && controls.empty() &&
               notifications.empty() && timers.empty() && !releaseFlow;
    }
};

/** Tunables of the shared TCP logic. */
struct FpuConfig
{
    /** Cap on new payload bytes requested per pass; 0 = unlimited.
     *  The reference hardware lets the packet generator drain an
     *  arbitrary-length request, so the default is unlimited. */
    std::uint32_t maxBytesPerPass = 0;
    std::uint32_t minRtoUs = 5'000;        ///< RTO floor (5 ms)
    std::uint32_t maxRtoUs = 60'000'000;   ///< RTO ceiling (60 s)
    std::uint32_t timeWaitUs = 10'000;     ///< shortened 2*MSL for sim
    std::uint32_t probeIntervalUs = 5'000; ///< zero-window probe period
    std::uint8_t dupAckThreshold = 3;
};

/**
 * The FPU program: shared TCP logic parameterized by a congestion
 * policy. Instances are immutable and shared by all FPCs.
 */
class FpuProgram
{
  public:
    FpuProgram(const CongestionControl &cc, FpuConfig config = {})
        : cc_(cc), config_(config)
    {}

    /** Total FPU pipeline latency in cycles for this program. */
    unsigned latencyCycles() const { return cc_.processingLatencyCycles(); }

    const CongestionControl &congestion() const { return cc_; }
    const FpuConfig &config() const { return config_; }

    /**
     * One full TCP pass. @p tcb is the merged, up-to-date TCB (modified
     * in place to its post-pass value); @p now_us is the current time.
     */
    void process(Tcb &tcb, std::uint64_t now_us, FpuActions &actions) const;

    /** Deterministic initial send sequence number for a flow. */
    static net::SeqNum initialSequence(FlowId flow);

    /**
     * The memory manager's check logic (Section 4.3.1): would an FPU
     * pass over this merged TCB do anything — send or retransmit data,
     * emit an ACK or probe, progress the connection state machine, or
     * notify the host? Flows for which this is false can keep waiting
     * in DRAM, accumulating events.
     */
    static bool tcbNeedsProcessing(const Tcb &merged);

  private:
    void processFlags(Tcb &tcb, std::uint32_t flags, std::uint64_t now_us,
                      FpuActions &actions) const;
    void processAck(Tcb &tcb, std::uint64_t now_us,
                    FpuActions &actions) const;
    void sendData(Tcb &tcb, std::uint64_t now_us, FpuActions &actions) const;
    void sendAckIfNeeded(Tcb &tcb, bool sent_data, bool force_ack,
                         FpuActions &actions) const;
    void notifyHost(Tcb &tcb, FpuActions &actions) const;
    void manageTimers(Tcb &tcb, std::uint64_t now_us,
                      FpuActions &actions) const;

    void enterEstablished(Tcb &tcb, FpuActions &actions) const;
    void maybeSendFin(Tcb &tcb, FpuActions &actions) const;
    void handleRto(Tcb &tcb, std::uint64_t now_us,
                   FpuActions &actions) const;
    void updateRtt(Tcb &tcb, std::uint64_t now_us) const;
    void armRtx(Tcb &tcb, std::uint64_t now_us, FpuActions &actions) const;
    void cancelRtx(Tcb &tcb, FpuActions &actions) const;

    const CongestionControl &cc_;
    FpuConfig config_;
};

} // namespace f4t::tcp

#endif // F4T_TCP_FPU_PROGRAM_HH
