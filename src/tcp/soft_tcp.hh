/**
 * @file
 * SoftTcpStack: a classical per-packet software TCP implementation.
 *
 * This stack plays two roles in the reproduction:
 *
 *  1. the Linux TCP baseline — attached to host CPU cores with a
 *     calibrated cycle cost model, it is the comparison stack for the
 *     Fig. 1/8/10–13 experiments;
 *  2. the independent congestion-control oracle — the role NS3 plays in
 *     the paper's Fig. 14: a from-scratch, per-packet, floating-point
 *     implementation of NewReno and CUBIC written separately from the
 *     FPU programs, so agreement between the two is meaningful.
 *
 * The implementation is deliberately structured like a textbook stack
 * (per-packet handlers mutating per-connection state under a lock) and
 * shares no code with the FtEngine FPU path beyond the byte-level
 * header definitions.
 */

#ifndef F4T_TCP_SOFT_TCP_HH
#define F4T_TCP_SOFT_TCP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/byte_ring.hh"
#include "net/four_tuple.hh"
#include "net/interval_set.hh"
#include "net/link.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"
#include "tcp/tcb.hh"

namespace f4t::tcp
{

/** CPU-time categories for utilization breakdowns (Fig. 1a / 11). */
enum class CostCategory : std::uint8_t
{
    application,
    tcpStack,
    kernelOther,
    f4tLibrary,
    filesystem,
};

const char *toString(CostCategory category);

/** Receives cycle charges from stacks and libraries. */
class CycleAccountant
{
  public:
    virtual ~CycleAccountant() = default;
    virtual void charge(CostCategory category, double cycles) = 0;
};

/** Congestion algorithms available in the software stack. */
enum class SoftCcAlgo : std::uint8_t
{
    newReno,
    cubic,
};

/**
 * Calibrated per-operation CPU costs (cycles). Defaults are zero so
 * the stack is "free" when used as a pure protocol oracle; the Linux
 * baseline installs the values from host/cost_model.hh.
 */
struct SoftCostModel
{
    double sendSyscall = 0;      ///< per send() call
    double sendPerByte = 0;      ///< per byte accepted by send()
    double recvSyscall = 0;      ///< per recv() call
    double recvPerByte = 0;      ///< per byte copied out
    double txSegment = 0;        ///< per wire segment generated
    double rxSegment = 0;        ///< per wire segment processed
    double rxPerByte = 0;        ///< per received payload byte
    double connectionSetup = 0;  ///< per handshake completed
    double kernelShare = 0.0;    ///< fraction of stack cycles booked as
                                 ///< kernelOther instead of tcpStack
};

struct SoftTcpConfig
{
    net::Ipv4Address ip;
    net::MacAddress mac;
    std::size_t sendBufBytes = 512 * 1024;
    std::size_t recvBufBytes = 512 * 1024;
    std::uint16_t mss = 1460;
    SoftCcAlgo cc = SoftCcAlgo::newReno;
    std::uint32_t minRtoUs = 5'000;
    std::uint32_t maxRtoUs = 60'000'000;
    std::uint32_t initialRtoUs = 200'000;
    std::uint32_t timeWaitUs = 10'000;
    /** First ephemeral port (staggered across per-core stacks). */
    std::uint16_t ephemeralPortBase = 32768;
    SoftCostModel costs;
};

/** Connection handle used by applications. */
using SoftConnId = std::uint32_t;
constexpr SoftConnId invalidSoftConn = ~SoftConnId{0};

/** Event callbacks toward the application layer. */
struct SoftTcpCallbacks
{
    std::function<void(SoftConnId)> onConnected;
    /** A passive connection was accepted on a listening port. */
    std::function<void(SoftConnId, std::uint16_t local_port)> onAccept;
    std::function<void(SoftConnId)> onWritable;
    std::function<void(SoftConnId, std::size_t readable)> onReadable;
    std::function<void(SoftConnId)> onPeerClosed;
    std::function<void(SoftConnId)> onClosed;
    std::function<void(SoftConnId)> onReset;
};

class SoftTcpStack : public sim::SimObject, public net::PacketSink
{
  public:
    SoftTcpStack(sim::Simulation &sim, std::string name,
                 const SoftTcpConfig &config);
    ~SoftTcpStack() override;

    /** Attach the transmit side (usually LinkDirection::send). */
    void setTransmit(std::function<void(net::Packet &&)> tx)
    {
        transmit_ = std::move(tx);
    }

    /** Resolve destination MACs (static ARP table for the testbed). */
    void addArpEntry(net::Ipv4Address ip, net::MacAddress mac)
    {
        arpTable_[ip.value] = mac;
    }

    void setCallbacks(const SoftTcpCallbacks &cb) { callbacks_ = cb; }
    void setAccountant(CycleAccountant *acct) { accountant_ = acct; }

    // --- application interface -----------------------------------------
    /** Start listening on a local port. */
    void listen(std::uint16_t port);

    /** Active open; onConnected fires when established. */
    SoftConnId connect(net::Ipv4Address remote_ip,
                       std::uint16_t remote_port);

    /** Queue bytes for transmission; returns the count accepted. */
    std::size_t send(SoftConnId conn, std::span<const std::uint8_t> data);

    /** Copy received in-order bytes out; returns the count read. */
    std::size_t recv(SoftConnId conn, std::span<std::uint8_t> out);

    /** In-order bytes available to recv(). */
    std::size_t readable(SoftConnId conn) const;

    /** Free space in the send buffer. */
    std::size_t writable(SoftConnId conn) const;

    /** Graceful close (FIN after the send buffer drains). */
    void close(SoftConnId conn);

    /** Abortive close (RST). */
    void abort(SoftConnId conn);

    ConnState state(SoftConnId conn) const;

    /** Current congestion window in bytes (cwnd tracing, Fig. 14). */
    double cwnd(SoftConnId conn) const;

    /** True when this stack instance owns the connection 4-tuple
     *  (multi-core hosts demux received packets with this). */
    bool ownsTuple(const net::FourTuple &tuple) const
    {
        return connByTuple_.count(tuple) != 0;
    }

    /** True when a local port is in the listening set. */
    bool listening(std::uint16_t port) const
    {
        return listeningPorts_.count(port) != 0;
    }

    // --- link interface ---------------------------------------------------
    void receivePacket(net::Packet &&pkt) override;

    // --- statistics ----------------------------------------------------------
    std::uint64_t segmentsSent() const { return segmentsSent_.value(); }
    std::uint64_t segmentsReceived() const { return segmentsRcvd_.value(); }
    std::uint64_t retransmissions() const { return retransmits_.value(); }

  private:
    struct Conn;

    Conn *find(SoftConnId id);
    const Conn *find(SoftConnId id) const;
    Conn &get(SoftConnId id);

    void handleTcp(const net::Packet &pkt);
    void handleListen(const net::Packet &pkt, std::uint16_t port);
    void handleSegment(Conn &conn, const net::TcpHeader &tcp,
                       std::span<const std::uint8_t> payload);
    void processAck(Conn &conn, const net::TcpHeader &tcp);
    void acceptPayload(Conn &conn, const net::TcpHeader &tcp,
                       std::span<const std::uint8_t> payload);
    void trySendData(Conn &conn);
    void maybeSendFin(Conn &conn);
    void sendSegment(Conn &conn, std::uint64_t stream_offset,
                     std::uint32_t length, bool retransmission);
    void sendControl(Conn &conn, std::uint8_t flags, bool with_mss = false);
    void sendReset(const net::FourTuple &tuple, net::SeqNum seq,
                   net::SeqNum ack, net::MacAddress dst_mac);
    void sendAck(Conn &conn);
    void armRto(Conn &conn);
    void cancelRto(Conn &conn);
    void onRtoFire(SoftConnId id, std::uint64_t generation);
    void enterTimeWait(Conn &conn);
    void setState(Conn &conn, ConnState next);
    void destroy(SoftConnId id);
    void finishEstablishment(Conn &conn);
    void updateRtt(Conn &conn, std::uint64_t now_us);
    void notifyReadable(Conn &conn);

    // Congestion control (independent float implementation).
    void ccInit(Conn &conn);
    void ccOnAck(Conn &conn, std::uint32_t acked, std::uint64_t now_us);
    void ccOnDupAcks(Conn &conn, std::uint64_t now_us);
    void ccOnPartialAck(Conn &conn, std::uint32_t acked);
    void ccOnExitRecovery(Conn &conn);
    void ccOnTimeout(Conn &conn, std::uint64_t now_us);
    void cubicStartEpoch(Conn &conn, std::uint64_t now_us);

    net::MacAddress resolveMac(net::Ipv4Address ip) const;
    std::uint64_t nowUs() const;
    void chargeStack(double cycles);

    SoftTcpConfig config_;
    std::function<void(net::Packet &&)> transmit_;
    SoftTcpCallbacks callbacks_;
    CycleAccountant *accountant_ = nullptr;

    // Hash-based tables on the per-packet path (none is ever iterated,
    // so no observable ordering depends on the container; demux is the
    // per-segment O(1) lookup a real stack would do against its
    // connection hash).
    std::unordered_map<std::uint32_t, net::MacAddress> arpTable_;
    std::unordered_set<std::uint16_t> listeningPorts_;
    std::unordered_map<net::FourTuple, SoftConnId> connByTuple_;
    /**
     * Connection table indexed by SoftConnId. Ids are handed out
     * monotonically and never reused, so the table is a dense vector:
     * find() on the per-packet path is a bounds check plus one indexed
     * load instead of a hash probe. A destroyed connection leaves a
     * null slot (8 bytes) behind; the Conn itself is freed.
     */
    std::vector<std::unique_ptr<Conn>> conns_;
    SoftConnId nextConnId_ = 1;
    std::uint16_t nextEphemeralPort_ = 32768;

    sim::Counter segmentsSent_;
    sim::Counter segmentsRcvd_;
    sim::Counter retransmits_;
    sim::Counter connectionsOpened_;
};

} // namespace f4t::tcp

#endif // F4T_TCP_SOFT_TCP_HH
