#include "fpu_program.hh"

#include "sim/logging.hh"

namespace f4t::tcp
{

using net::seqDiff;
using net::seqGeq;
using net::seqGt;
using net::seqLeq;
using net::seqLt;
using net::SeqNum;
using net::TcpFlags;

net::SeqNum
FpuProgram::initialSequence(FlowId flow)
{
    // Deterministic ISN so the host library can compute the same
    // sequence-space base without a round trip.
    std::uint64_t x = (static_cast<std::uint64_t>(flow) + 1) *
                      0x9e3779b97f4a7c15ULL;
    x ^= x >> 31;
    return static_cast<SeqNum>(x);
}

bool
FpuProgram::tcbNeedsProcessing(const Tcb &merged)
{
    // Any control flag demands a pass (handshake, close, timeout, ...).
    if (merged.pendingFlags != 0)
        return true;
    if (merged.workPending)
        return true;

    // Fresh duplicate ACKs drive fast retransmit / recovery.
    if (merged.dupAcks != merged.dupAcksSeen)
        return true;

    // A cumulative ACK the FPU has not acted on yet.
    if (merged.sndUna != merged.sndUnaProcessed)
        return true;

    // Data waiting and window open.
    bool can_send = merged.state == ConnState::established ||
                    merged.state == ConnState::closeWait;
    if (can_send && seqGt(merged.req, merged.sndNxt) &&
        merged.effectiveWindow() > merged.bytesInFlight()) {
        return true;
    }
    // Data waiting behind a zero window with no persist timer armed:
    // a pass is needed to start probing, or the flow could deadlock.
    if (can_send && seqGt(merged.req, merged.sndNxt) &&
        merged.sndWnd == 0 && merged.probeDeadlineUs == 0) {
        return true;
    }

    // Received data not yet acknowledged or not yet reported.
    if (seqGt(merged.rcvNxt, merged.lastAckSent))
        return true;
    SeqNum data_boundary = merged.rcvNxt - (merged.peerFinSeen ? 1 : 0);
    if (merged.state != ConnState::closed &&
        merged.state != ConnState::synSent &&
        merged.state != ConnState::synRcvd &&
        seqGt(data_boundary, merged.lastRcvNotified)) {
        return true;
    }

    // A recv() opened a window the peer believes is closed.
    SeqNum new_edge = merged.rcvNxt + merged.receiveWindow();
    std::int32_t growth = seqDiff(new_edge, merged.lastWndAdvertised);
    std::int32_t peer_view = seqDiff(merged.lastWndAdvertised,
                                     merged.rcvNxt);
    if (growth >= static_cast<std::int32_t>(merged.mss) &&
        peer_view < static_cast<std::int32_t>(merged.mss)) {
        return true;
    }

    return false;
}

void
FpuProgram::process(Tcb &tcb, std::uint64_t now_us, FpuActions &actions) const
{
    const std::uint32_t flags = tcb.pendingFlags;
    tcb.pendingFlags = 0;
    tcb.workPending = false;

    // A reset aborts everything immediately.
    if (flags & EventFlags::rstSeen) {
        if (tcb.state != ConnState::closed) {
            tcb.state = ConnState::closed;
            actions.notifications.push_back(
                {tcb.flowId, HostNotification::Kind::reset, 0});
        }
        cancelRtx(tcb, actions);
        actions.timers.push_back({tcb.flowId, TimeoutKind::probe, 0});
        actions.releaseFlow = true;
        return;
    }

    processFlags(tcb, flags, now_us, actions);
    if (tcb.state == ConnState::closed && actions.releaseFlow)
        return;

    processAck(tcb, now_us, actions);

    if (flags & EventFlags::rtxTimeout)
        handleRto(tcb, now_us, actions);

    if (flags & EventFlags::probeTimeout) {
        bool data_waiting = seqGt(tcb.req, tcb.sndNxt) ||
                            tcb.bytesInFlight() > 0;
        if (tcb.sndWnd == 0 && data_waiting &&
            tcb.state == ConnState::established) {
            ControlRequest probe;
            probe.flow = tcb.flowId;
            probe.flags = TcpFlags::ack;
            probe.seq = tcb.sndNxt;
            probe.ack = tcb.rcvNxt;
            probe.window = tcb.receiveWindow();
            probe.windowProbe = true;
            actions.controls.push_back(probe);
            tcb.probeDeadlineUs = now_us + config_.probeIntervalUs;
            actions.timers.push_back(
                {tcb.flowId, TimeoutKind::probe, tcb.probeDeadlineUs});
        }
    }

    if (flags & EventFlags::timeWaitTimeout &&
        tcb.state == ConnState::timeWait) {
        tcb.state = ConnState::closed;
        actions.notifications.push_back(
            {tcb.flowId, HostNotification::Kind::closed, 0});
        actions.releaseFlow = true;
        return;
    }

    // The window reopened: stop probing.
    if (tcb.sndWnd > 0 && tcb.probeDeadlineUs != 0) {
        tcb.probeDeadlineUs = 0;
        actions.timers.push_back({tcb.flowId, TimeoutKind::probe, 0});
    }

    const std::size_t segments_before = actions.segments.size();
    sendData(tcb, now_us, actions);
    maybeSendFin(tcb, actions);
    bool sent_data = actions.segments.size() > segments_before;

    // Payload arrived without advancing rcvNxt (out-of-order or
    // duplicate): emit the duplicate ACK the peer's fast retransmit
    // relies on.
    bool force_ack = (flags & EventFlags::dataArrived) != 0;
    sendAckIfNeeded(tcb, sent_data, force_ack, actions);
    notifyHost(tcb, actions);
    manageTimers(tcb, now_us, actions);

    tcb.lastActiveCycle = now_us;
}

void
FpuProgram::processFlags(Tcb &tcb, std::uint32_t flags, std::uint64_t now_us,
                         FpuActions &actions) const
{
    // --- active open -----------------------------------------------------
    if ((flags & EventFlags::openRequest) &&
        tcb.state == ConnState::closed && !tcb.passiveOpen) {
        tcb.iss = initialSequence(tcb.flowId);
        tcb.sndUna = tcb.iss;
        tcb.sndUnaProcessed = tcb.iss;
        tcb.sndNxt = tcb.iss + 1; // the SYN consumes one sequence number
        tcb.req = tcb.iss + 1;
        cc_.onInit(tcb);
        tcb.state = ConnState::synSent;

        ControlRequest syn;
        syn.flow = tcb.flowId;
        syn.flags = TcpFlags::syn;
        syn.seq = tcb.iss;
        syn.window = tcb.receiveWindow();
        syn.mssOption = tcb.mss;
        actions.controls.push_back(syn);
        // RFC 6298: the first RTT measurement comes from the SYN
        // exchange, so the very first data RTO uses a measured
        // estimate instead of the conservative initial rtoUs.
        tcb.rttSampling = true;
        tcb.rttSampleSeq = tcb.iss + 1;
        tcb.rttSampleStartUs = now_us;
        armRtx(tcb, now_us, actions);
    }

    // --- SYN from the peer -------------------------------------------------
    if (flags & EventFlags::synSeen) {
        if (tcb.state == ConnState::closed && tcb.passiveOpen) {
            // merge() already applied the peer ISN (rcvNxt = irs + 1).
            tcb.iss = initialSequence(tcb.flowId);
            tcb.sndUna = tcb.iss;
            tcb.sndUnaProcessed = tcb.iss;
            tcb.sndNxt = tcb.iss + 1;
            tcb.req = tcb.iss + 1;
            cc_.onInit(tcb);
            tcb.state = ConnState::synRcvd;
        }
        if (tcb.state == ConnState::synRcvd) {
            // First SYN-ACK, or a retransmission when ours was lost.
            ControlRequest synack;
            synack.flow = tcb.flowId;
            synack.flags = TcpFlags::syn | TcpFlags::ack;
            synack.seq = tcb.iss;
            synack.ack = tcb.rcvNxt;
            synack.window = tcb.receiveWindow();
            synack.mssOption = tcb.mss;
            actions.controls.push_back(synack);
            tcb.lastAckSent = tcb.rcvNxt;
            tcb.lastWndAdvertised = tcb.rcvNxt + synack.window;
            // Measure the handshake RTT from the latest SYN-ACK
            // transmission; a restart on a duplicate-SYN resend can
            // only underestimate, and the minRtoUs floor absorbs that.
            tcb.rttSampling = true;
            tcb.rttSampleSeq = tcb.iss + 1;
            tcb.rttSampleStartUs = now_us;
            armRtx(tcb, now_us, actions);
        } else if (tcb.state == ConnState::established) {
            // Duplicate SYN after establishment: re-ACK.
            tcb.lastAckSent = tcb.rcvNxt - 1; // force an ACK below
        }
    }

    // --- SYN-ACK completing an active open ---------------------------------
    if ((flags & EventFlags::synAckSeen) &&
        tcb.state == ConnState::synSent &&
        seqGeq(tcb.sndUna, tcb.iss + 1)) {
        // enterEstablished advances sndUnaProcessed, so processAck
        // will see acked == 0 for the handshake — take the SYN
        // exchange's RTT sample here or it is silently lost.
        updateRtt(tcb, now_us);
        enterEstablished(tcb, actions);
        ControlRequest ack;
        ack.flow = tcb.flowId;
        ack.flags = TcpFlags::ack;
        ack.seq = tcb.sndNxt;
        ack.ack = tcb.rcvNxt;
        ack.window = tcb.receiveWindow();
        actions.controls.push_back(ack);
        tcb.lastAckSent = tcb.rcvNxt;
        tcb.lastWndAdvertised = tcb.rcvNxt + ack.window;
    }

    // --- FIN from the peer --------------------------------------------------
    if ((flags & EventFlags::finSeen) && !tcb.peerFinSeen) {
        tcb.peerFinSeen = true;
        switch (tcb.state) {
          case ConnState::established:
            tcb.state = ConnState::closeWait;
            actions.notifications.push_back(
                {tcb.flowId, HostNotification::Kind::peerClosed,
                 tcb.rcvNxt - 1});
            break;
          case ConnState::finWait1:
            // Our FIN not yet acknowledged (checked in processAck).
            tcb.state = ConnState::closing;
            actions.notifications.push_back(
                {tcb.flowId, HostNotification::Kind::peerClosed,
                 tcb.rcvNxt - 1});
            break;
          case ConnState::finWait2:
            tcb.state = ConnState::timeWait;
            actions.notifications.push_back(
                {tcb.flowId, HostNotification::Kind::peerClosed,
                 tcb.rcvNxt - 1});
            actions.timers.push_back({tcb.flowId, TimeoutKind::timeWait,
                                      now_us + config_.timeWaitUs});
            break;
          default:
            break;
        }
    }

    // --- user close ----------------------------------------------------------
    if (flags & EventFlags::closeRequest)
        tcb.closeRequested = true;
}

void
FpuProgram::processAck(Tcb &tcb, std::uint64_t now_us,
                       FpuActions &actions) const
{
    // SYN_RCVD completes when our SYN is acknowledged.
    if (tcb.state == ConnState::synRcvd && seqGeq(tcb.sndUna, tcb.iss + 1)) {
        updateRtt(tcb, now_us); // SYN-ACK RTT sample (see processFlags)
        enterEstablished(tcb, actions);
    }

    if (tcb.state != ConnState::established &&
        tcb.state != ConnState::finWait1 &&
        tcb.state != ConnState::finWait2 &&
        tcb.state != ConnState::closing &&
        tcb.state != ConnState::closeWait &&
        tcb.state != ConnState::lastAck) {
        return;
    }

    // Invariant maintenance: a cumulative ACK beyond snd.nxt cannot
    // come from a correct peer (RFC 793 says ignore it); clamping
    // keeps bytesInFlight() well defined whatever arrives.
    if (seqGt(tcb.sndUna, tcb.sndNxt))
        tcb.sndNxt = tcb.sndUna;

    std::int32_t acked = seqDiff(tcb.sndUna, tcb.sndUnaProcessed);
    if (acked > 0) {
        std::uint32_t acked_bytes = static_cast<std::uint32_t>(acked);
        updateRtt(tcb, now_us);
        tcb.rtxBackoff = 0;

        if (tcb.ccPhase == CcPhase::fastRecovery) {
            if (seqGeq(tcb.sndUna, tcb.recover)) {
                cc_.onExitRecovery(tcb);
                tcb.dupAcksSeen = 0;
            } else {
                // Partial ACK: retransmit the next hole immediately.
                cc_.onPartialAck(tcb, acked_bytes);
                SegmentRequest rtx;
                rtx.flow = tcb.flowId;
                rtx.seq = tcb.sndUna;
                std::int32_t outstanding = seqDiff(tcb.sndNxt, tcb.sndUna);
                rtx.length = static_cast<std::uint32_t>(
                    outstanding < static_cast<std::int32_t>(tcb.mss)
                        ? outstanding
                        : tcb.mss);
                rtx.ack = tcb.rcvNxt;
                rtx.window = tcb.receiveWindow();
                rtx.retransmission = true;
                if (rtx.length > 0)
                    actions.segments.push_back(rtx);
            }
        } else {
            cc_.onAck(tcb, acked_bytes, tcb.lastRttUs, now_us);
            tcb.dupAcks = 0;
            tcb.dupAcksSeen = 0;
            // Post-RTO go-back-N: handleRto retransmits only the first
            // unacknowledged segment, so each cumulative ACK below the
            // recovery point resends the next hole. Without this, a
            // multi-segment tail loss (incast burst clipped by a
            // switch queue) recovers one segment per backed-off RTO.
            if (tcb.rtoRecovery) {
                if (seqGeq(tcb.sndUna, tcb.recover)) {
                    tcb.rtoRecovery = false;
                } else {
                    std::int32_t outstanding =
                        seqDiff(tcb.sndNxt, tcb.sndUna);
                    std::uint32_t data_outstanding =
                        static_cast<std::uint32_t>(
                            outstanding -
                            ((tcb.finSent && seqLeq(tcb.sndUna, tcb.finSeq))
                                 ? 1
                                 : 0));
                    SegmentRequest rtx;
                    rtx.flow = tcb.flowId;
                    rtx.seq = tcb.sndUna;
                    rtx.length = data_outstanding < tcb.mss
                                     ? data_outstanding
                                     : tcb.mss;
                    rtx.ack = tcb.rcvNxt;
                    rtx.window = tcb.receiveWindow();
                    rtx.retransmission = true;
                    if (rtx.length > 0)
                        actions.segments.push_back(rtx);
                }
            }
        }
        tcb.sndUnaProcessed = tcb.sndUna;

        // Our FIN got acknowledged?
        if (tcb.finSent && seqGt(tcb.sndUna, tcb.finSeq)) {
            switch (tcb.state) {
              case ConnState::finWait1:
                tcb.state = ConnState::finWait2;
                break;
              case ConnState::closing:
                tcb.state = ConnState::timeWait;
                actions.timers.push_back({tcb.flowId, TimeoutKind::timeWait,
                                          now_us + config_.timeWaitUs});
                break;
              case ConnState::lastAck:
                tcb.state = ConnState::closed;
                cancelRtx(tcb, actions);
                actions.notifications.push_back(
                    {tcb.flowId, HostNotification::Kind::closed, 0});
                actions.releaseFlow = true;
                return;
              default:
                break;
            }
        }
    }

    // Duplicate ACK handling. The event handler counted increments; a
    // stateless pass compares against the count it last acted on.
    if (tcb.dupAcks > tcb.dupAcksSeen) {
        std::uint8_t fresh = tcb.dupAcks - tcb.dupAcksSeen;
        if (tcb.ccPhase == CcPhase::fastRecovery) {
            for (std::uint8_t i = 0; i < fresh; ++i)
                cc_.onDupAckInRecovery(tcb);
        } else if (tcb.dupAcks >= config_.dupAckThreshold &&
                   seqGt(tcb.sndNxt, tcb.sndUna) &&
                   seqGeq(tcb.sndUna, tcb.recover)) {
            // Enter fast retransmit / recovery (NewReno: only when the
            // ACK is past the previous recovery point).
            cc_.onEnterRecovery(tcb, now_us);
            tcb.recover = tcb.sndNxt;
            tcb.rttSampling = false; // Karn's rule

            SegmentRequest rtx;
            rtx.flow = tcb.flowId;
            rtx.seq = tcb.sndUna;
            std::int32_t outstanding = seqDiff(tcb.sndNxt, tcb.sndUna);
            rtx.length = static_cast<std::uint32_t>(
                outstanding < static_cast<std::int32_t>(tcb.mss)
                    ? outstanding
                    : tcb.mss);
            rtx.ack = tcb.rcvNxt;
            rtx.window = tcb.receiveWindow();
            rtx.retransmission = true;
            actions.segments.push_back(rtx);
        }
        tcb.dupAcksSeen = tcb.dupAcks;
    }
}

void
FpuProgram::updateRtt(Tcb &tcb, std::uint64_t now_us) const
{
    if (!tcb.rttSampling || seqLt(tcb.sndUna, tcb.rttSampleSeq))
        return;
    tcb.rttSampling = false;
    std::uint64_t sample = now_us - tcb.rttSampleStartUs;
    std::uint32_t rtt = sample > 0xffffffffULL
                            ? 0xffffffffU
                            : static_cast<std::uint32_t>(sample);
    if (rtt == 0)
        rtt = 1;
    tcb.lastRttUs = rtt;
    if (tcb.minRttUs == 0 || rtt < tcb.minRttUs)
        tcb.minRttUs = rtt;

    if (tcb.srttUs == 0) {
        tcb.srttUs = rtt;
        tcb.rttvarUs = rtt / 2;
    } else {
        // RFC 6298 with alpha = 1/8, beta = 1/4.
        std::int64_t err = static_cast<std::int64_t>(rtt) - tcb.srttUs;
        std::int64_t abs_err = err < 0 ? -err : err;
        tcb.rttvarUs = static_cast<std::uint32_t>(
            (3 * static_cast<std::int64_t>(tcb.rttvarUs) + abs_err) / 4);
        tcb.srttUs = static_cast<std::uint32_t>(
            (7 * static_cast<std::int64_t>(tcb.srttUs) + rtt) / 8);
    }
    std::uint64_t rto = tcb.srttUs + std::max<std::uint32_t>(
                                         config_.minRtoUs / 2,
                                         4 * tcb.rttvarUs);
    if (rto < config_.minRtoUs)
        rto = config_.minRtoUs;
    if (rto > config_.maxRtoUs)
        rto = config_.maxRtoUs;
    tcb.rtoUs = static_cast<std::uint32_t>(rto);
}

void
FpuProgram::handleRto(Tcb &tcb, std::uint64_t now_us,
                      FpuActions &actions) const
{
    switch (tcb.state) {
      case ConnState::synSent: {
        ControlRequest syn;
        syn.flow = tcb.flowId;
        syn.flags = TcpFlags::syn;
        syn.seq = tcb.iss;
        syn.window = tcb.receiveWindow();
        syn.mssOption = tcb.mss;
        actions.controls.push_back(syn);
        tcb.rttSampling = false; // Karn's rule
        ++tcb.rtxBackoff;
        armRtx(tcb, now_us, actions);
        return;
      }
      case ConnState::synRcvd: {
        ControlRequest synack;
        synack.flow = tcb.flowId;
        synack.flags = TcpFlags::syn | TcpFlags::ack;
        synack.seq = tcb.iss;
        synack.ack = tcb.rcvNxt;
        synack.window = tcb.receiveWindow();
        synack.mssOption = tcb.mss;
        actions.controls.push_back(synack);
        tcb.rttSampling = false; // Karn's rule
        ++tcb.rtxBackoff;
        armRtx(tcb, now_us, actions);
        return;
      }
      default:
        break;
    }

    if (tcb.bytesInFlight() == 0)
        return; // stale timeout: everything already acknowledged

    cc_.onTimeout(tcb, now_us);
    tcb.recover = tcb.sndNxt;
    tcb.rtoRecovery = true;
    tcb.dupAcksSeen = tcb.dupAcks;
    tcb.rttSampling = false; // Karn's rule
    ++tcb.rtxBackoff;

    // Retransmit the first unacknowledged segment (go-back-N recovery
    // is then driven by returning ACKs).
    std::int32_t outstanding = seqDiff(tcb.sndNxt, tcb.sndUna);
    bool fin_only = tcb.finSent && seqGeq(tcb.sndUna, tcb.finSeq) &&
                    outstanding == 1;
    if (fin_only) {
        ControlRequest fin;
        fin.flow = tcb.flowId;
        fin.flags = TcpFlags::fin | TcpFlags::ack;
        fin.seq = tcb.finSeq;
        fin.ack = tcb.rcvNxt;
        fin.window = tcb.receiveWindow();
        actions.controls.push_back(fin);
    } else {
        SegmentRequest rtx;
        rtx.flow = tcb.flowId;
        rtx.seq = tcb.sndUna;
        std::uint32_t data_outstanding = static_cast<std::uint32_t>(
            outstanding - ((tcb.finSent && seqLeq(tcb.sndUna, tcb.finSeq))
                               ? 1
                               : 0));
        rtx.length = data_outstanding < tcb.mss ? data_outstanding
                                                : tcb.mss;
        rtx.ack = tcb.rcvNxt;
        rtx.window = tcb.receiveWindow();
        rtx.retransmission = true;
        if (rtx.length > 0)
            actions.segments.push_back(rtx);
    }
    armRtx(tcb, now_us, actions);
}

void
FpuProgram::enterEstablished(Tcb &tcb, FpuActions &actions) const
{
    tcb.state = ConnState::established;
    tcb.sndUnaProcessed = tcb.sndUna;
    // Watermarks start at the stream bases, NOT the current
    // boundaries: the peer's handshake ACK may arrive merged together
    // with its first data segment, and that data must still be
    // reported to the host later in this very pass.
    tcb.lastAckNotified = tcb.iss + 1;
    tcb.lastRcvNotified = tcb.irs + 1;
    actions.notifications.push_back(
        {tcb.flowId, HostNotification::Kind::connected, tcb.iss + 1});
    cancelRtx(tcb, actions);
}

void
FpuProgram::maybeSendFin(Tcb &tcb, FpuActions &actions) const
{
    bool can_fin = tcb.state == ConnState::established ||
                   tcb.state == ConnState::closeWait;
    if (!can_fin || !tcb.closeRequested || tcb.finSent)
        return;
    if (seqGt(tcb.req, tcb.sndNxt))
        return; // data still queued ahead of the FIN

    ControlRequest fin;
    fin.flow = tcb.flowId;
    fin.flags = TcpFlags::fin | TcpFlags::ack;
    fin.seq = tcb.sndNxt;
    fin.ack = tcb.rcvNxt;
    fin.window = tcb.receiveWindow();
    actions.controls.push_back(fin);

    tcb.finSeq = tcb.sndNxt;
    tcb.sndNxt += 1; // the FIN consumes one sequence number
    tcb.finSent = true;
    tcb.lastAckSent = tcb.rcvNxt;
    tcb.state = tcb.state == ConnState::established ? ConnState::finWait1
                                                    : ConnState::lastAck;
}

void
FpuProgram::sendData(Tcb &tcb, std::uint64_t now_us,
                     FpuActions &actions) const
{
    bool can_send = tcb.state == ConnState::established ||
                    tcb.state == ConnState::closeWait;
    if (!can_send)
        return;

    std::int32_t avail = seqDiff(tcb.req, tcb.sndNxt);
    if (avail <= 0)
        return;

    std::uint32_t window = tcb.effectiveWindow();
    std::uint32_t in_flight = tcb.bytesInFlight();
    if (window <= in_flight) {
        if (tcb.sndWnd == 0 && tcb.probeDeadlineUs == 0) {
            // Zero-window: make sure the probe timer is running.
            tcb.probeDeadlineUs = now_us + config_.probeIntervalUs;
            actions.timers.push_back(
                {tcb.flowId, TimeoutKind::probe, tcb.probeDeadlineUs});
        }
        return;
    }

    std::uint32_t usable = window - in_flight;
    std::uint32_t len = static_cast<std::uint32_t>(avail);
    if (len > usable)
        len = usable;
    if (config_.maxBytesPerPass && len > config_.maxBytesPerPass) {
        len = config_.maxBytesPerPass;
        tcb.workPending = true; // more to send next pass
    }

    SegmentRequest seg;
    seg.flow = tcb.flowId;
    seg.seq = tcb.sndNxt;
    seg.length = len;
    seg.ack = tcb.rcvNxt;
    seg.window = tcb.receiveWindow();
    actions.segments.push_back(seg);
    tcb.lastAckSent = tcb.rcvNxt;
    tcb.lastWndAdvertised = tcb.rcvNxt + seg.window;
    tcb.sndNxt += len;

    if (!tcb.rttSampling) {
        tcb.rttSampling = true;
        tcb.rttSampleSeq = tcb.sndNxt;
        tcb.rttSampleStartUs = now_us;
    }
}

void
FpuProgram::sendAckIfNeeded(Tcb &tcb, bool sent_data, bool force_ack,
                            FpuActions &actions) const
{
    bool connected = tcb.state == ConnState::established ||
                     tcb.state == ConnState::finWait1 ||
                     tcb.state == ConnState::finWait2 ||
                     tcb.state == ConnState::closing ||
                     tcb.state == ConnState::timeWait ||
                     tcb.state == ConnState::closeWait ||
                     tcb.state == ConnState::lastAck;
    if (!connected)
        return;
    if (sent_data) {
        // Data segments carried the current ACK and window already.
        return;
    }

    bool ack_due = force_ack || seqGt(tcb.rcvNxt, tcb.lastAckSent);

    // Window update: when the peer last heard a nearly closed window
    // (< 1 MSS usable) and recv() has since opened at least one MSS,
    // re-advertise so the sender unblocks (silly-window avoidance).
    SeqNum new_edge = tcb.rcvNxt + tcb.receiveWindow();
    std::int32_t edge_growth = seqDiff(new_edge, tcb.lastWndAdvertised);
    std::int32_t peer_view = seqDiff(tcb.lastWndAdvertised, tcb.rcvNxt);
    bool window_update =
        edge_growth >= static_cast<std::int32_t>(tcb.mss) &&
        peer_view < static_cast<std::int32_t>(tcb.mss);

    if (!ack_due && !window_update)
        return;

    ControlRequest ack;
    ack.flow = tcb.flowId;
    ack.flags = TcpFlags::ack;
    ack.seq = tcb.sndNxt;
    ack.ack = tcb.rcvNxt;
    ack.window = tcb.receiveWindow();
    actions.controls.push_back(ack);
    tcb.lastAckSent = tcb.rcvNxt;
    tcb.lastWndAdvertised = tcb.rcvNxt + ack.window;
}

void
FpuProgram::notifyHost(Tcb &tcb, FpuActions &actions) const
{
    if (tcb.state == ConnState::closed || tcb.state == ConnState::synSent ||
        tcb.state == ConnState::synRcvd || tcb.state == ConnState::listen)
        return;

    if (seqGt(tcb.sndUna, tcb.lastAckNotified)) {
        SeqNum boundary = tcb.sndUna;
        // Do not report the FIN's sequence slot as user data.
        if (tcb.finSent && seqGt(boundary, tcb.finSeq))
            boundary = tcb.finSeq;
        if (seqGt(boundary, tcb.lastAckNotified)) {
            actions.notifications.push_back(
                {tcb.flowId, HostNotification::Kind::acked, boundary});
            tcb.lastAckNotified = boundary;
        }
    }

    SeqNum data_boundary = tcb.rcvNxt - (tcb.peerFinSeen ? 1 : 0);
    if (seqGt(data_boundary, tcb.lastRcvNotified)) {
        actions.notifications.push_back(
            {tcb.flowId, HostNotification::Kind::received, data_boundary});
        tcb.lastRcvNotified = data_boundary;
    }
}

void
FpuProgram::armRtx(Tcb &tcb, std::uint64_t now_us, FpuActions &actions) const
{
    std::uint64_t rto = tcb.rtoUs;
    for (std::uint32_t i = 0; i < tcb.rtxBackoff && rto < config_.maxRtoUs;
         ++i) {
        rto *= 2;
    }
    if (rto > config_.maxRtoUs)
        rto = config_.maxRtoUs;
    tcb.rtxDeadlineUs = now_us + rto;
    actions.timers.push_back(
        {tcb.flowId, TimeoutKind::retransmit, tcb.rtxDeadlineUs});
}

void
FpuProgram::cancelRtx(Tcb &tcb, FpuActions &actions) const
{
    tcb.rtxDeadlineUs = 0;
    actions.timers.push_back({tcb.flowId, TimeoutKind::retransmit, 0});
}

void
FpuProgram::manageTimers(Tcb &tcb, std::uint64_t now_us,
                         FpuActions &actions) const
{
    bool outstanding = tcb.bytesInFlight() > 0 ||
                       tcb.state == ConnState::synSent ||
                       tcb.state == ConnState::synRcvd;
    if (outstanding) {
        if (tcb.rtxDeadlineUs == 0)
            armRtx(tcb, now_us, actions);
    } else if (tcb.rtxDeadlineUs != 0) {
        cancelRtx(tcb, actions);
    }
}

} // namespace f4t::tcp
