/**
 * @file
 * Pluggable congestion-control policies — the part of the FPU program
 * users customize (paper Section 4.5).
 *
 * Each policy manipulates the congestion fields of the TCB through a
 * small set of hooks invoked by the shared FPU TCP logic. A policy
 * declares its FPU pipeline latency in cycles; the paper reports
 * NewReno = 14, CUBIC = 41 (cube root), and Vegas = 68 (integer
 * divisions), and F4T's contribution is that this latency does not
 * affect the event processing rate (reproduced in Fig. 15).
 *
 * Policies are stateless objects: all per-flow state lives in the TCB
 * (cwnd, ssthresh, ccPhase, and the algoScratch words), exactly as a
 * hardware FPU program would keep everything in the flow's TCB entry.
 */

#ifndef F4T_TCP_CONGESTION_HH
#define F4T_TCP_CONGESTION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "tcp/tcb.hh"

namespace f4t::tcp
{

class CongestionControl
{
  public:
    virtual ~CongestionControl() = default;

    virtual const char *name() const = 0;

    /** FPU pipeline depth in cycles when this policy is compiled in. */
    virtual unsigned processingLatencyCycles() const = 0;

    /** Initialize congestion state at connection establishment. */
    virtual void onInit(Tcb &tcb) const;

    /**
     * A cumulative ACK advanced snd.una by @p acked_bytes outside fast
     * recovery. @p rtt_us is the latest RTT sample (0 if none).
     */
    virtual void onAck(Tcb &tcb, std::uint32_t acked_bytes,
                       std::uint32_t rtt_us, std::uint64_t now_us) const = 0;

    /** Three duplicate ACKs: entering fast retransmit / recovery. */
    virtual void onEnterRecovery(Tcb &tcb, std::uint64_t now_us) const = 0;

    /** An additional duplicate ACK while already in fast recovery. */
    virtual void onDupAckInRecovery(Tcb &tcb) const;

    /** Partial ACK during NewReno-style recovery. */
    virtual void onPartialAck(Tcb &tcb, std::uint32_t acked_bytes) const;

    /** Recovery completed (snd.una reached the recovery point). */
    virtual void onExitRecovery(Tcb &tcb) const;

    /** Retransmission timeout fired. */
    virtual void onTimeout(Tcb &tcb, std::uint64_t now_us) const;
};

/** TCP NewReno (RFC 6582). FPU latency: 14 cycles. */
class NewRenoPolicy : public CongestionControl
{
  public:
    const char *name() const override { return "newreno"; }
    unsigned processingLatencyCycles() const override { return 14; }

    void onAck(Tcb &tcb, std::uint32_t acked_bytes, std::uint32_t rtt_us,
               std::uint64_t now_us) const override;
    void onEnterRecovery(Tcb &tcb, std::uint64_t now_us) const override;
};

/**
 * CUBIC TCP (RFC 8312), implemented in fixed-point arithmetic with an
 * iterative integer cube root — the way an FPU program with no
 * floating-point unit would compute it. FPU latency: 41 cycles.
 */
class CubicPolicy : public CongestionControl
{
  public:
    const char *name() const override { return "cubic"; }
    unsigned processingLatencyCycles() const override { return 41; }

    void onInit(Tcb &tcb) const override;
    void onAck(Tcb &tcb, std::uint32_t acked_bytes, std::uint32_t rtt_us,
               std::uint64_t now_us) const override;
    void onEnterRecovery(Tcb &tcb, std::uint64_t now_us) const override;
    void onTimeout(Tcb &tcb, std::uint64_t now_us) const override;

    /** Integer cube root (exposed for unit tests). */
    static std::uint64_t cubeRoot(std::uint64_t x);

  private:
    // algoScratch layout.
    static constexpr std::size_t idxWMax = 0;       ///< bytes
    static constexpr std::size_t idxEpochLoUs = 1;  ///< epoch start, low
    static constexpr std::size_t idxEpochHiUs = 2;  ///< epoch start, high
    static constexpr std::size_t idxK = 3;          ///< K in milliseconds
    static constexpr std::size_t idxAckedBytes = 4; ///< TCP-friendly est.

    void startEpoch(Tcb &tcb, std::uint64_t now_us) const;
};

/**
 * TCP Vegas: delay-based congestion avoidance using the base-RTT
 * estimate. Uses integer divisions; FPU latency: 68 cycles.
 */
class VegasPolicy : public CongestionControl
{
  public:
    const char *name() const override { return "vegas"; }
    unsigned processingLatencyCycles() const override { return 68; }

    void onAck(Tcb &tcb, std::uint32_t acked_bytes, std::uint32_t rtt_us,
               std::uint64_t now_us) const override;
    void onEnterRecovery(Tcb &tcb, std::uint64_t now_us) const override;

  private:
    // algoScratch layout.
    static constexpr std::size_t idxNextAdjustLoUs = 0;
    static constexpr std::size_t idxNextAdjustHiUs = 1;

    static constexpr std::uint32_t alphaPackets = 2;
    static constexpr std::uint32_t betaPackets = 4;
};

/** Factory by name ("newreno", "cubic", "vegas"); fatal on unknown. */
std::unique_ptr<CongestionControl>
makeCongestionControl(const std::string &name);

} // namespace f4t::tcp

#endif // F4T_TCP_CONGESTION_HH
