#include "congestion.hh"

#include "sim/logging.hh"

namespace f4t::tcp
{

namespace
{

/** RFC 6928 initial window: min(10*MSS, max(2*MSS, 14600)). */
std::uint32_t
initialWindow(const Tcb &tcb)
{
    return 10u * tcb.mss;
}

std::uint32_t
halfFlight(const Tcb &tcb)
{
    std::uint32_t flight = tcb.bytesInFlight();
    std::uint32_t half = flight / 2;
    std::uint32_t floor = 2u * tcb.mss;
    return half > floor ? half : floor;
}

} // namespace

void
CongestionControl::onInit(Tcb &tcb) const
{
    tcb.cwnd = initialWindow(tcb);
    tcb.ssthresh = 0x7fffffff;
    tcb.ccPhase = CcPhase::slowStart;
    tcb.dupAcks = 0;
    for (auto &w : tcb.algoScratch)
        w = 0;
}

void
CongestionControl::onDupAckInRecovery(Tcb &tcb) const
{
    // Window inflation: each duplicate ACK signals a departed segment.
    tcb.cwnd += tcb.mss;
}

void
CongestionControl::onPartialAck(Tcb &tcb, std::uint32_t acked_bytes) const
{
    // RFC 6582: deflate by the amount acked, then add back one MSS.
    std::uint32_t deflate = acked_bytes;
    if (deflate >= tcb.cwnd)
        tcb.cwnd = tcb.mss;
    else
        tcb.cwnd -= deflate;
    tcb.cwnd += tcb.mss;
}

void
CongestionControl::onExitRecovery(Tcb &tcb) const
{
    // Deflate the window back to ssthresh.
    tcb.cwnd = tcb.ssthresh;
    tcb.ccPhase = CcPhase::congestionAvoidance;
    tcb.dupAcks = 0;
}

void
CongestionControl::onTimeout(Tcb &tcb, std::uint64_t /* now_us */) const
{
    tcb.ssthresh = halfFlight(tcb);
    tcb.cwnd = tcb.mss;
    tcb.ccPhase = CcPhase::slowStart;
    tcb.dupAcks = 0;
}

// --------------------------------------------------------------------
// NewReno
// --------------------------------------------------------------------

void
NewRenoPolicy::onAck(Tcb &tcb, std::uint32_t acked_bytes,
                     std::uint32_t /* rtt_us */,
                     std::uint64_t /* now_us */) const
{
    // Byte counting (RFC 3465): one FPU pass may consume an arbitrary
    // batch of accumulated ACKs, so growth must depend on the bytes
    // acknowledged, not on the number of passes — this is what makes
    // window evolution independent of event batching.
    if (tcb.ccPhase == CcPhase::slowStart) {
        tcb.cwnd += acked_bytes;
        if (tcb.cwnd >= tcb.ssthresh)
            tcb.ccPhase = CcPhase::congestionAvoidance;
    } else {
        // Additive increase: ~one MSS per window's worth of ACKs.
        std::uint32_t inc = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(tcb.mss) * acked_bytes /
            (tcb.cwnd ? tcb.cwnd : 1));
        tcb.cwnd += inc > 0 ? inc : 1;
    }
}

void
NewRenoPolicy::onEnterRecovery(Tcb &tcb, std::uint64_t /* now_us */) const
{
    tcb.ssthresh = halfFlight(tcb);
    // Inflate by the three duplicate ACKs that triggered recovery.
    tcb.cwnd = tcb.ssthresh + 3u * tcb.mss;
    tcb.ccPhase = CcPhase::fastRecovery;
}

// --------------------------------------------------------------------
// CUBIC (fixed point, RFC 8312)
// --------------------------------------------------------------------

namespace
{
// beta_cubic = 0.7 as 717/1024; C = 0.4 as 410/1024.
constexpr std::uint64_t cubicBetaScaled = 717;
constexpr std::uint64_t cubicCScaled = 410;
constexpr std::uint64_t cubicScale = 1024;
} // namespace

std::uint64_t
CubicPolicy::cubeRoot(std::uint64_t x)
{
    if (x == 0)
        return 0;
    // Initial estimate from the bit length, then Newton iterations:
    // r <- (2r + x / r^2) / 3. A handful of iterations converge for
    // 64-bit inputs; hardware would unroll the same loop.
    int bits = 64 - __builtin_clzll(x);
    std::uint64_t r = 1ULL << ((bits + 2) / 3);
    for (int i = 0; i < 8; ++i) {
        std::uint64_t r2 = r * r;
        if (r2 == 0)
            break;
        std::uint64_t next = (2 * r + x / r2) / 3;
        if (next == r)
            break;
        r = next;
    }
    // Final correction to the floor value. Cubes near the top of the
    // 64-bit range overflow uint64, so compare in 128 bits — the
    // hardware equivalent is a widened comparator.
    auto cube = [](std::uint64_t v) {
        return static_cast<unsigned __int128>(v) * v * v;
    };
    while (r > 0 && cube(r) > x)
        --r;
    while (cube(r + 1) <= x)
        ++r;
    return r;
}

void
CubicPolicy::onInit(Tcb &tcb) const
{
    CongestionControl::onInit(tcb);
}

void
CubicPolicy::startEpoch(Tcb &tcb, std::uint64_t now_us) const
{
    tcb.algoScratch[idxEpochLoUs] = static_cast<std::uint32_t>(now_us);
    tcb.algoScratch[idxEpochHiUs] = static_cast<std::uint32_t>(now_us >> 32);

    std::uint64_t w_max = tcb.algoScratch[idxWMax];
    std::uint64_t cwnd = tcb.cwnd;
    // K = cbrt((W_max - cwnd) / C) in seconds; compute in milliseconds:
    // K_ms = cbrt((W_max - cwnd) * 1024 / (C_scaled * mss) * 1e9) .
    std::uint64_t k_ms = 0;
    if (w_max > cwnd) {
        std::uint64_t delta_segments = (w_max - cwnd) / tcb.mss;
        // K^3 [s^3] = delta / C  ->  K_ms^3 = delta * 1e9 / C.
        std::uint64_t cube =
            delta_segments * cubicScale * 1'000'000'000ULL / cubicCScaled;
        k_ms = cubeRoot(cube);
    }
    tcb.algoScratch[idxK] = static_cast<std::uint32_t>(k_ms);
    tcb.algoScratch[idxAckedBytes] = 0;
}

void
CubicPolicy::onAck(Tcb &tcb, std::uint32_t acked_bytes,
                   std::uint32_t /* rtt_us */, std::uint64_t now_us) const
{
    if (tcb.ccPhase == CcPhase::slowStart) {
        tcb.cwnd += acked_bytes; // byte counting; see NewReno note
        if (tcb.cwnd >= tcb.ssthresh) {
            tcb.ccPhase = CcPhase::congestionAvoidance;
            if (tcb.algoScratch[idxWMax] == 0)
                tcb.algoScratch[idxWMax] = tcb.cwnd;
            startEpoch(tcb, now_us);
        }
        return;
    }

    std::uint64_t epoch_us =
        (static_cast<std::uint64_t>(tcb.algoScratch[idxEpochHiUs]) << 32) |
        tcb.algoScratch[idxEpochLoUs];
    if (epoch_us == 0) {
        if (tcb.algoScratch[idxWMax] == 0)
            tcb.algoScratch[idxWMax] = tcb.cwnd;
        startEpoch(tcb, now_us);
        epoch_us = now_us;
    }

    // Elapsed time in milliseconds since the epoch started.
    std::uint64_t t_ms = (now_us - epoch_us) / 1000;
    std::uint64_t k_ms = tcb.algoScratch[idxK];
    std::uint64_t w_max = tcb.algoScratch[idxWMax];

    // W_cubic(t) = C * (t - K)^3 + W_max, computed in segments with
    // millisecond time: C * ((t-K)/1000)^3 * mss + W_max.
    std::int64_t d_ms = static_cast<std::int64_t>(t_ms) -
                        static_cast<std::int64_t>(k_ms);
    std::int64_t d3 = d_ms * d_ms * d_ms; // |d| < ~2e6 ms, fits 64-bit
    std::int64_t delta_segments =
        static_cast<std::int64_t>(cubicCScaled) * d3 /
        (static_cast<std::int64_t>(cubicScale) * 1'000'000'000LL);
    std::int64_t target = static_cast<std::int64_t>(w_max) +
                          delta_segments * tcb.mss;
    if (target < static_cast<std::int64_t>(2u * tcb.mss))
        target = 2u * tcb.mss;

    // TCP-friendly region (standard AIMD estimate).
    std::uint64_t acked_total = tcb.algoScratch[idxAckedBytes] + acked_bytes;
    tcb.algoScratch[idxAckedBytes] =
        static_cast<std::uint32_t>(acked_total);
    std::uint64_t w_est = w_max * cubicBetaScaled / cubicScale +
                          acked_total * 3 * (cubicScale - cubicBetaScaled) /
                              (cubicScale + cubicBetaScaled);
    if (target < static_cast<std::int64_t>(w_est))
        target = static_cast<std::int64_t>(w_est);

    if (target > static_cast<std::int64_t>(tcb.cwnd)) {
        // Approach the target over roughly one RTT of ACKs.
        std::uint64_t gap = static_cast<std::uint64_t>(target) - tcb.cwnd;
        std::uint32_t inc = static_cast<std::uint32_t>(
            gap * acked_bytes / (tcb.cwnd ? tcb.cwnd : 1));
        if (inc == 0)
            inc = 1;
        tcb.cwnd += inc;
    } else {
        // In the concave plateau: minimal growth keeps the ACK clock.
        tcb.cwnd += acked_bytes / 100 + 1;
    }
}

void
CubicPolicy::onEnterRecovery(Tcb &tcb, std::uint64_t now_us) const
{
    // Fast convergence: remember a reduced W_max when the loss happened
    // below the previous W_max.
    std::uint64_t prev_w_max = tcb.algoScratch[idxWMax];
    if (tcb.cwnd < prev_w_max) {
        tcb.algoScratch[idxWMax] = static_cast<std::uint32_t>(
            static_cast<std::uint64_t>(tcb.cwnd) *
            (cubicScale + cubicBetaScaled) / (2 * cubicScale));
    } else {
        tcb.algoScratch[idxWMax] = tcb.cwnd;
    }

    std::uint32_t reduced = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(tcb.cwnd) * cubicBetaScaled /
        cubicScale);
    std::uint32_t floor = 2u * tcb.mss;
    tcb.ssthresh = reduced > floor ? reduced : floor;
    tcb.cwnd = tcb.ssthresh + 3u * tcb.mss;
    tcb.ccPhase = CcPhase::fastRecovery;
    startEpoch(tcb, now_us);
}

void
CubicPolicy::onTimeout(Tcb &tcb, std::uint64_t now_us) const
{
    tcb.algoScratch[idxWMax] = tcb.cwnd;
    CongestionControl::onTimeout(tcb, now_us);
    startEpoch(tcb, now_us);
}

// --------------------------------------------------------------------
// Vegas
// --------------------------------------------------------------------

void
VegasPolicy::onAck(Tcb &tcb, std::uint32_t acked_bytes,
                   std::uint32_t rtt_us, std::uint64_t now_us) const
{
    if (tcb.ccPhase == CcPhase::slowStart) {
        tcb.cwnd += acked_bytes; // byte counting; see NewReno note
        if (tcb.cwnd >= tcb.ssthresh)
            tcb.ccPhase = CcPhase::congestionAvoidance;
        return;
    }

    if (rtt_us == 0 || tcb.minRttUs == 0)
        return;

    // Adjust once per RTT: the next adjustment time is kept in scratch.
    std::uint64_t next_adjust =
        (static_cast<std::uint64_t>(tcb.algoScratch[idxNextAdjustHiUs])
         << 32) |
        tcb.algoScratch[idxNextAdjustLoUs];
    if (now_us < next_adjust)
        return;
    std::uint64_t after = now_us + rtt_us;
    tcb.algoScratch[idxNextAdjustLoUs] = static_cast<std::uint32_t>(after);
    tcb.algoScratch[idxNextAdjustHiUs] =
        static_cast<std::uint32_t>(after >> 32);

    // expected = cwnd / baseRTT, actual = cwnd / RTT; the difference in
    // queued packets is diff = (expected - actual) * baseRTT. All
    // integer divisions — the operations that cost the FPU 68 cycles.
    std::uint64_t cwnd_segments = tcb.cwnd / tcb.mss;
    if (cwnd_segments == 0)
        cwnd_segments = 1;
    std::uint64_t expected = cwnd_segments * 1000000ULL / tcb.minRttUs;
    std::uint64_t actual = cwnd_segments * 1000000ULL / rtt_us;
    std::uint64_t diff_packets =
        (expected - actual) * tcb.minRttUs / 1000000ULL;

    if (diff_packets < alphaPackets) {
        tcb.cwnd += tcb.mss;
    } else if (diff_packets > betaPackets) {
        if (tcb.cwnd > 2u * tcb.mss)
            tcb.cwnd -= tcb.mss;
    }
    // Between alpha and beta: hold.
}

void
VegasPolicy::onEnterRecovery(Tcb &tcb, std::uint64_t /* now_us */) const
{
    tcb.ssthresh = halfFlight(tcb);
    tcb.cwnd = tcb.ssthresh + 3u * tcb.mss;
    tcb.ccPhase = CcPhase::fastRecovery;
}

std::unique_ptr<CongestionControl>
makeCongestionControl(const std::string &name)
{
    if (name == "newreno")
        return std::make_unique<NewRenoPolicy>();
    if (name == "cubic")
        return std::make_unique<CubicPolicy>();
    if (name == "vegas")
        return std::make_unique<VegasPolicy>();
    f4t_fatal("unknown congestion control algorithm '%s'", name.c_str());
}

} // namespace f4t::tcp
