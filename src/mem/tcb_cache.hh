/**
 * @file
 * Direct-mapped TCB cache inside the memory manager (Section 4.3.1).
 *
 * DRAM-resident flows are event-handled through this cache so that
 * frequently touched TCBs avoid a DRAM round trip. The cache is
 * write-back: dirty victims are flushed to DRAM on replacement.
 */

#ifndef F4T_MEM_TCB_CACHE_HH
#define F4T_MEM_TCB_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace f4t::mem
{

/**
 * Direct-mapped, write-back cache keyed by flow ID.
 * @tparam Entry the cached TCB type.
 */
template <typename Entry>
class DirectMappedCache
{
  public:
    struct Eviction
    {
        std::uint32_t flowId;
        Entry entry;
    };

    explicit DirectMappedCache(std::size_t lines)
        : lines_(lines)
    {
        f4t_assert(lines > 0, "cache needs at least one line");
    }

    std::size_t lineCount() const { return lines_.size(); }

    bool
    contains(std::uint32_t flow_id) const
    {
        const Line &line = lineFor(flow_id);
        return line.valid && line.flowId == flow_id;
    }

    /** @return the cached entry or nullptr on miss. */
    Entry *
    find(std::uint32_t flow_id)
    {
        Line &line = lineForMutable(flow_id);
        if (line.valid && line.flowId == flow_id)
            return &line.entry;
        return nullptr;
    }

    /**
     * Install an entry, possibly evicting the current resident of the
     * line. @return the dirty victim that must be written back, if any.
     */
    std::optional<Eviction>
    insert(std::uint32_t flow_id, const Entry &entry, bool dirty)
    {
        Line &line = lineForMutable(flow_id);
        std::optional<Eviction> victim;
        if (line.valid && line.flowId != flow_id && line.dirty)
            victim = Eviction{line.flowId, line.entry};
        line.valid = true;
        line.flowId = flow_id;
        line.entry = entry;
        line.dirty = dirty;
        return victim;
    }

    /** Mark a resident entry dirty after in-place mutation. */
    void
    markDirty(std::uint32_t flow_id)
    {
        Line &line = lineForMutable(flow_id);
        f4t_assert(line.valid && line.flowId == flow_id,
                   "markDirty on non-resident flow %u", flow_id);
        line.dirty = true;
    }

    /**
     * Remove a flow from the cache (when its TCB migrates to an FPC).
     * @return the entry and whether it was dirty, or nullopt on miss.
     */
    std::optional<std::pair<Entry, bool>>
    invalidate(std::uint32_t flow_id)
    {
        Line &line = lineForMutable(flow_id);
        if (!line.valid || line.flowId != flow_id)
            return std::nullopt;
        line.valid = false;
        return std::make_pair(line.entry, line.dirty);
    }

    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    void recordHit() { ++hits_; }
    void recordMiss() { ++misses_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint32_t flowId = 0;
        Entry entry{};
    };

    const Line &
    lineFor(std::uint32_t flow_id) const
    {
        return lines_[flow_id % lines_.size()];
    }

    Line &
    lineForMutable(std::uint32_t flow_id)
    {
        return lines_[flow_id % lines_.size()];
    }

    std::vector<Line> lines_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace f4t::mem

#endif // F4T_MEM_TCB_CACHE_HH
