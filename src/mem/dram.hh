/**
 * @file
 * On-board DRAM model: DDR4 (38 GB/s) or HBM (460 GB/s).
 *
 * The memory manager stores the full 64 K-flow TCB array here. The
 * model charges a fixed access latency plus bandwidth-limited service
 * time per request, with requests queueing behind one another exactly
 * like a single memory channel. Fig. 13's DRAM-vs-HBM divergence comes
 * from this serialization: at high swap rates the DDR4 model's service
 * rate for TCB-sized transfers becomes the throughput ceiling.
 */

#ifndef F4T_MEM_DRAM_HH
#define F4T_MEM_DRAM_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.hh"

namespace f4t::mem
{

/** Preset configurations matching the U280's memory options. */
struct DramConfig
{
    double bandwidthBytesPerSec = 38e9; ///< DDR4 on the U280
    sim::Tick accessLatency = sim::nanosecondsToTicks(120);
    /**
     * Minimum channel occupancy per request, independent of size —
     * models row activation / random-access inefficiency. Small random
     * TCB transfers are bounded by this, not the peak bandwidth:
     * DDR4 with one channel serializes ~100 ns (tRC-class) per random
     * 128 B access, while HBM's pseudo-channels pipeline them.
     */
    sim::Tick minServicePerRequest = sim::nanosecondsToTicks(30);

    static DramConfig
    ddr4()
    {
        // Random TCB-sized accesses pay ~tRC per row cycle on the
        // single DDR4 channel: ~100 ns of channel occupancy each.
        return DramConfig{38e9, sim::nanosecondsToTicks(120),
                          sim::nanosecondsToTicks(100)};
    }

    static DramConfig
    hbm()
    {
        return DramConfig{460e9, sim::nanosecondsToTicks(100),
                          sim::nanosecondsToTicks(2)};
    }
};

/**
 * Bandwidth/latency memory channel. Requests complete via callback
 * after queueing + service + access latency.
 */
class DramModel : public sim::SimObject
{
  public:
    DramModel(sim::Simulation &sim, std::string name,
              const DramConfig &config);

    /**
     * Issue a request for @p bytes; @p on_complete runs when the data
     * is available (reads) or durably written (writes).
     * @return the completion tick.
     */
    sim::Tick access(std::size_t bytes, sim::SmallFunction on_complete);

    /** Completion tick for a request issued now, without callback. */
    sim::Tick accessTime(std::size_t bytes);

    std::uint64_t requestCount() const { return requests_.value(); }
    std::uint64_t bytesTransferred() const { return bytes_.value(); }

    const DramConfig &config() const { return config_; }

  private:
    DramConfig config_;
    sim::Tick channelBusyUntil_ = 0;

    sim::Counter requests_;
    sim::Counter bytes_;
    sim::Histogram queueDelay_;
};

} // namespace f4t::mem

#endif // F4T_MEM_DRAM_HH
