#include "dram.hh"

namespace f4t::mem
{

DramModel::DramModel(sim::Simulation &sim, std::string name,
                     const DramConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      requests_(sim.stats(), statName("requests"), "memory requests served"),
      bytes_(sim.stats(), statName("bytes"), "bytes transferred"),
      queueDelay_(sim.stats(), statName("queueDelay"),
                  "ticks spent waiting for the channel")
{
    f4t_assert(config_.bandwidthBytesPerSec > 0,
               "DRAM model needs positive bandwidth");
}

sim::Tick
DramModel::accessTime(std::size_t bytes)
{
    ++requests_;
    bytes_ += bytes;

    sim::Tick start = std::max(now(), channelBusyUntil_);
    queueDelay_.sample(static_cast<double>(start - now()));

    double service_seconds =
        static_cast<double>(bytes) / config_.bandwidthBytesPerSec;
    sim::Tick service = sim::secondsToTicks(service_seconds);
    if (service < config_.minServicePerRequest)
        service = config_.minServicePerRequest;
    channelBusyUntil_ = start + service;
    return channelBusyUntil_ + config_.accessLatency;
}

sim::Tick
DramModel::access(std::size_t bytes, sim::SmallFunction on_complete)
{
    sim::Tick done = accessTime(bytes);
    if (on_complete)
        queue().scheduleCallback(done, "dram.complete",
                                 std::move(on_complete));
    return done;
}

} // namespace f4t::mem
