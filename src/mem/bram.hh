/**
 * @file
 * Dual-port BRAM model.
 *
 * FPGA block RAM provides two independent ports, each able to read or
 * write one entry per cycle with single-cycle latency. The FPC's dual
 * memory (Section 4.2.3) schedules its four logical writers/readers
 * across the two ports of two BRAMs in a two-cycle pattern; this model
 * enforces the per-cycle port budget so that any schedule violating the
 * paper's timing is caught as a simulator bug.
 *
 * Functionally the array is a plain vector (BRAM reads of the cycle's
 * written value are forwarded, matching write-first mode); the port
 * accounting is the part that models hardware.
 */

#ifndef F4T_MEM_BRAM_HH
#define F4T_MEM_BRAM_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace f4t::mem
{

template <typename Entry>
class DualPortBram
{
  public:
    explicit DualPortBram(std::size_t entries) : data_(entries) {}

    std::size_t size() const { return data_.size(); }

    /**
     * Begin a new cycle: resets the port budget. The owner calls this
     * once per clock edge before issuing accesses.
     */
    void
    newCycle(sim::Cycles cycle)
    {
        if (cycle != currentCycle_) {
            currentCycle_ = cycle;
            portsUsed_ = 0;
        }
    }

    /** Read via one of the two ports. */
    const Entry &
    read(std::size_t index)
    {
        consumePort();
        return at(index);
    }

    /** Write via one of the two ports. */
    void
    write(std::size_t index, const Entry &value)
    {
        consumePort();
        at(index) = value;
    }

    /**
     * In-place read-modify-write: charges both a read and a write
     * port, exactly like a read() followed by a write() of the same
     * entry, but hands back a mutable reference so the caller skips
     * the two full-entry copies. For single-cycle RMW paths (the event
     * handler's duplicate-ACK accumulation).
     */
    Entry &
    readModifyWrite(std::size_t index)
    {
        consumePort();
        consumePort();
        return at(index);
    }

    /**
     * Zero-port peek for logic that observes the array combinationally
     * in the same cycle as a scheduled port access (e.g., the event
     * handler's read-modify path shares its port's read data). Use
     * sparingly and only where the hardware genuinely shares a port.
     */
    const Entry &peek(std::size_t index) const { return at(index); }

    /** Mutable combinational access, same caveat as peek(). */
    Entry &peekMutable(std::size_t index) { return at(index); }

    unsigned portsUsedThisCycle() const { return portsUsed_; }

  private:
    Entry &
    at(std::size_t index)
    {
        f4t_assert(index < data_.size(), "BRAM index %zu out of range %zu",
                   index, data_.size());
        return data_[index];
    }

    const Entry &
    at(std::size_t index) const
    {
        f4t_assert(index < data_.size(), "BRAM index %zu out of range %zu",
                   index, data_.size());
        return data_[index];
    }

    void
    consumePort()
    {
        f4t_assert(portsUsed_ < 2,
                   "BRAM port overcommit: 3rd access in cycle %llu",
                   static_cast<unsigned long long>(currentCycle_));
        ++portsUsed_;
    }

    std::vector<Entry> data_;
    sim::Cycles currentCycle_ = ~sim::Cycles{0};
    unsigned portsUsed_ = 0;
};

} // namespace f4t::mem

#endif // F4T_MEM_BRAM_HH
