/**
 * @file
 * Discrete-event simulation queue.
 *
 * The queue orders Event objects by (tick, priority, insertion sequence).
 * Events are intrusive: an Event remembers whether it is scheduled so it
 * can be safely rescheduled or descheduled. Descheduling is lazy — the
 * entry stays in the heap with a squashed generation counter and is
 * skipped when popped — which keeps scheduling O(log n) with no heap
 * surgery.
 *
 * Lifetime rule: because descheduling is lazy, a descheduled Event may
 * still be referenced by a squashed heap entry. An Event must therefore
 * outlive the queue entries that refer to it; in practice, make events
 * members of modules that live as long as the Simulation (the usual
 * gem5 convention), or let the destructor run only after the queue has
 * drained past the event's old tick.
 */

#ifndef F4T_SIM_EVENT_QUEUE_HH
#define F4T_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace f4t::sim
{

class EventQueue;

/**
 * Base class for all schedulable events. Subclasses implement process().
 * An Event may be scheduled on at most one queue at a time.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    enum Priority : int
    {
        clockPriority = 0,     ///< per-cycle module ticks
        defaultPriority = 50,  ///< ordinary events
        statsPriority = 90,    ///< end-of-interval bookkeeping
    };

    explicit Event(int priority = defaultPriority) : priority_(priority) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string description() const { return "generic event"; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    int priority_;
    bool scheduled_ = false;
    std::uint64_t generation_ = 0; ///< bumped on deschedule to squash
    EventQueue *queue_ = nullptr;
};

/** An event that runs a captured callable; owns itself when one-shot. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         int priority = defaultPriority)
        : Event(priority), fn_(std::move(fn))
    {}

    void process() override { fn_(); }
    std::string description() const override { return "lambda event"; }

  private:
    std::function<void()> fn_;
};

/**
 * The global time-ordered event queue. One instance per Simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p ev at absolute tick @p when (>= now). */
    void schedule(Event *ev, Tick when);

    /** Remove a scheduled event; no-op if it is not scheduled. */
    void deschedule(Event *ev);

    /** Deschedule if needed and schedule at the new time. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callback. The underlying event deletes itself
     * after running. Useful for fire-and-forget completion callbacks.
     */
    void scheduleCallback(Tick when, std::function<void()> fn,
                          int priority = Event::defaultPriority);

    /** True when no live events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /** Number of live (non-squashed) scheduled events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Run events until the queue drains or simulated time would pass
     * @p limit. Events scheduled exactly at @p limit still run.
     * @return the tick at which the run stopped.
     */
    Tick run(Tick limit = maxTick);

    /** Run exactly one event if any is pending within @p limit. */
    bool runOne(Tick limit = maxTick);

    /** Total number of events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

  private:
    struct HeapEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;
        bool selfDeleting;
    };

    struct HeapCompare
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    void push(Event *ev, Tick when, bool self_deleting);

    /** Pop squashed entries until the top is live (or the heap empties). */
    void skipSquashed();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t liveEvents_ = 0;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap_;
};

} // namespace f4t::sim

#endif // F4T_SIM_EVENT_QUEUE_HH
