/**
 * @file
 * Discrete-event simulation queue.
 *
 * The queue orders Event objects by (tick, priority, insertion
 * sequence). Storage is two-level:
 *
 *  - a near-future "ladder" of granule buckets covering the next
 *    ladderSpan ticks (64 ticks per bucket, so the bucket array plus
 *    its occupancy bitmap stay L1-resident). The overwhelmingly
 *    common short-horizon events — clock ticks, link serialization
 *    slots, DRAM/PCIe completions — schedule and pop in O(1) with no
 *    heap traffic. Each bucket chain is kept sorted by the queue key,
 *    with a tail pointer so the dominant in-order insertion pattern
 *    appends in O(1);
 *  - a far-future binary heap backing the ladder. When the ladder
 *    drains, the window is rebased onto the earliest heap entry and
 *    every heap entry inside the new window is transferred in one
 *    batch.
 *
 * Because the ladder window always precedes every heap entry, the
 * pop order is identical to a single global heap: same (tick,
 * priority, seq) total order, bit-for-bit. That determinism invariant
 * is what lets the two-level design replace the original
 * std::priority_queue without perturbing any simulated result.
 *
 * Events are intrusive: an Event remembers whether it is scheduled so
 * it can be safely rescheduled or descheduled. Descheduling is lazy —
 * the entry stays in its container with a squashed generation counter
 * and is dropped when encountered — with one addition over the
 * classic scheme: when squashed entries outnumber live ones the queue
 * compacts, so descheduling churn can no longer grow the containers
 * unboundedly.
 *
 * One-shot callbacks (scheduleCallback) draw their event objects from
 * a free-list pool, and the callable lives in small-buffer-optimized
 * storage inside the pooled event, so the simulator's hottest path —
 * packet delivery and completion callbacks — never touches the
 * allocator in steady state.
 *
 * Lifetime rule: because descheduling is lazy, a descheduled Event
 * may still be referenced by a squashed entry. ~Event therefore calls
 * forget(), which purges every entry naming the event — an Event may
 * be destroyed at any time without leaving a dangling pointer behind.
 * The queue itself must outlive any event that was ever scheduled on
 * it; in practice, make events members of modules that live no longer
 * than the Simulation (the usual gem5 convention).
 */

#ifndef F4T_SIM_EVENT_QUEUE_HH
#define F4T_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/profile_scope.hh"
#include "sim/small_function.hh"
#include "sim/types.hh"

namespace f4t::sim
{

class EventQueue;

/**
 * Dispatch tag for the hot-path tagged-union representation: the two
 * event shapes that dominate every run — pooled one-shot callbacks and
 * ClockedObject ticks — carry a kind byte so the queue can dispatch
 * them with a switch and a direct (inlinable) call instead of a
 * virtual process(). Everything else stays `generic` and takes the
 * virtual path; cold/rare event types never need to opt in.
 */
enum class EventKind : std::uint8_t
{
    generic,  ///< dispatch through virtual process()
    callback, ///< EventQueue::CallbackEvent — invoke the SmallFunction
    tick,     ///< ClockedObject::TickEvent — run the tick/re-arm logic
};

/**
 * Compile-time escape hatch (CMake option F4T_TAGGED_DISPATCH): when
 * compiled out, every event dispatches through virtual process() and
 * setTaggedDispatch() is inert, so differential runs can prove the two
 * representations byte-identical.
 */
#if defined(F4T_TAGGED_DISPATCH) && !F4T_TAGGED_DISPATCH
inline constexpr bool taggedDispatchCompiledIn = false;
#else
inline constexpr bool taggedDispatchCompiledIn = true;
#endif

/** Runtime view of the dispatch mode (true = switch on EventKind). */
bool taggedDispatchEnabled();

/**
 * Flip dispatch modes at runtime (no-op toward `true` when the tagged
 * path is compiled out). Both paths run events in the identical order
 * with identical effects — the in-process dispatch-differential twin
 * test relies on toggling this between runs.
 */
void setTaggedDispatch(bool on);

/**
 * Base class for all schedulable events. Subclasses implement process().
 * An Event may be scheduled on at most one queue at a time.
 */
class Event
{
  public:
    /** Lower value runs first among events at the same tick. */
    enum Priority : int
    {
        clockPriority = 0,     ///< per-cycle module ticks
        defaultPriority = 50,  ///< ordinary events
        statsPriority = 90,    ///< end-of-interval bookkeeping
    };

    explicit Event(int priority = defaultPriority) : priority_(priority) {}
    virtual ~Event();

  protected:
    /** For the known hot subclasses: tag the event for switch dispatch
     *  (see EventKind). The tag must match the dynamic type — fire()
     *  static_casts on it. */
    Event(int priority, EventKind kind) : priority_(priority), kind_(kind)
    {}

  public:

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when the event fires. */
    virtual void process() = 0;

    /** Human-readable description for debugging. */
    virtual std::string description() const { return "generic event"; }

    /**
     * Cheap tag for wall-clock cost attribution (profile builds): a
     * stable C string the profiler buckets into a prof::Cat, or
     * nullptr for Cat::otherEvent. Unlike description(), this must not
     * allocate — it is consulted on every event fire when profiling is
     * runtime-enabled. The returned pointer only needs to stay valid
     * for the duration of the fire (it is looked up, not retained).
     */
    virtual const char *profileTag() const { return nullptr; }

    bool scheduled() const { return scheduled_; }
    Tick when() const { return when_; }
    int priority() const { return priority_; }

  private:
    friend class EventQueue;

    Tick when_ = 0;
    int priority_;
    EventKind kind_ = EventKind::generic;
    bool scheduled_ = false;
    std::uint64_t generation_ = 0; ///< bumped on deschedule to squash
    /** Squashed container entries still naming this event. */
    std::uint32_t staleEntries_ = 0;
    EventQueue *queue_ = nullptr;
};

/**
 * The global time-ordered event queue. One instance per Simulation.
 */
class EventQueue
{
  public:
    /**
     * Width of the near-future window in ticks (one tick = 1 ps, so
     * ~33 ns). Chosen to cover several periods of the fastest clock
     * domains; longer horizons (DMA latencies, RTOs) take one batch
     * trip through the far heap. Must be a power of two.
     */
    static constexpr std::size_t ladderSpan = 32768;

    /** log2 of the bucket granule in ticks: each ladder bucket covers
     *  2^granuleShift ticks, keeping the bucket array small enough to
     *  live in L1 while the window stays ~33 ns wide. */
    static constexpr std::size_t granuleShift = 6;

    /** Number of ladder buckets (the occupancy bitmap is 8 words). */
    static constexpr std::size_t numBuckets = ladderSpan >> granuleShift;

    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p ev at absolute tick @p when (>= now). */
    void
    schedule(Event *ev, Tick when)
    {
        // Empty-queue fast path, inline: park the event in the solo
        // register. The self-rescheduling clock tick that drives every
        // saturated-pipeline run lands here each cycle. Error cases
        // (past tick, double schedule) fall through to push(), whose
        // asserts report them.
        if (liveEvents_ == 0 && deadEntries_ == 0 && !ev->scheduled_ &&
            when >= now_) {
            ev->when_ = when;
            ev->scheduled_ = true;
            ev->queue_ = this;
            soloEvent_ = ev;
            soloWhen_ = when;
            soloPriority_ = ev->priority_;
            soloSeq_ = nextSeq_++;
            soloGeneration_ = ev->generation_;
            soloSelfDeleting_ = false;
            liveEvents_ = 1;
            return;
        }
        push(ev, when, false);
    }

    /** Remove a scheduled event; no-op if it is not scheduled. */
    void deschedule(Event *ev);

    /**
     * Deschedule and purge every container entry naming @p ev, live
     * or squashed, so no dangling pointer survives the event's
     * destruction. Called by ~Event; O(containers), teardown-only.
     */
    void forget(Event *ev);

    /** Deschedule if needed and schedule at the new time. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callback on a pooled event. @p what is a
     * call-site tag used by debug logging and assertion messages; it
     * must point to storage that outlives the callback (string
     * literals by convention).
     */
    void scheduleCallback(Tick when, const char *what, SmallFunction fn,
                          int priority = Event::defaultPriority);

    /** Untagged convenience overload (tests, ad-hoc callbacks). */
    void
    scheduleCallback(Tick when, SmallFunction fn,
                     int priority = Event::defaultPriority)
    {
        scheduleCallback(when, "callback", std::move(fn), priority);
    }

    /** True when no live events remain. */
    bool empty() const { return liveEvents_ == 0; }

    /**
     * Conservative lower bound on the next live event's tick: exact
     * when the earliest container entry is live, possibly early when
     * squashed entries lead it (the safe direction — callers may only
     * use this to skip idle time, never to run past it); maxTick when
     * no live event remains. O(1), no container mutation: the parallel
     * executor polls every partition's queue at each window barrier.
     */
    Tick
    nextEventLowerBound() const
    {
        if (soloEvent_ != nullptr)
            return soloWhen_;
        if (liveEvents_ == 0)
            return maxTick;
        Tick bound = maxTick;
        std::size_t bucket = findBucketFrom(cursor_);
        if (bucket < numBuckets)
            bound = buckets_[bucket]->when;
        if (!heap_.empty() && heap_.front().when < bound)
            bound = heap_.front().when;
        return bound;
    }

    /** Number of live (non-squashed) scheduled events. */
    std::size_t size() const { return liveEvents_; }

    /**
     * Run events until the queue drains or simulated time would pass
     * @p limit. Events scheduled exactly at @p limit still run.
     * @return the tick at which the run stopped.
     */
    Tick
    run(Tick limit = maxTick)
    {
        // Root profiling scope: queue bookkeeping (ladder scans, heap
        // ops, pops) accrues here as self time once per-event scopes
        // subtract themselves out; its elapsed total is the wall time
        // the per-category attribution must sum to.
        prof::Scope profile_root(prof::Cat::eventQueue);
        while (runOne(limit)) {
        }
        if (now_ < limit && limit != maxTick)
            now_ = limit;
        return now_;
    }

    /** Run exactly one event if any is pending within @p limit. */
    bool
    runOne(Tick limit = maxTick)
    {
        // Solo fast path, inline (see schedule()); container pops take
        // the out-of-line slow path.
        if (soloEvent_ != nullptr) {
            if (soloWhen_ > limit)
                return false;
            Event *ev = soloEvent_;
            soloEvent_ = nullptr;
            fire(ev, soloWhen_, soloSelfDeleting_);
            return true;
        }
        return runOneSlow(limit);
    }

    /** Total number of events processed since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    // --- introspection (tests, perf harnesses) --------------------------

    /** Callback events ever constructed (pool high-water mark). */
    std::size_t callbackPoolAllocated() const { return callbackArena_.size(); }
    /** Callback events currently parked on the free list. */
    std::size_t callbackPoolFree() const { return freeCallbackCount_; }
    /** Squashed entries not yet dropped from either container. */
    std::size_t squashedEntries() const { return deadEntries_; }

  private:
    /** A scheduled occurrence; doubles as a ladder chain node. */
    struct Node
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;
        bool selfDeleting;
        Node *next;
    };

    /** Far-future heap entry (same ordering key, no chain pointer). */
    struct HeapEntry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;
        bool selfDeleting;
    };

    struct HeapCompare
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** Pooled one-shot callback event (see scheduleCallback). */
    class CallbackEvent : public Event
    {
      public:
        CallbackEvent() : Event(defaultPriority, EventKind::callback) {}
        void process() override { fn_(); }
        std::string description() const override { return what_; }
        const char *profileTag() const override { return what_; }

      private:
        friend class EventQueue;
        SmallFunction fn_;
        const char *what_ = "callback";
        CallbackEvent *nextFree_ = nullptr;
    };

    template <typename EntryT>
    static bool
    isLive(const EntryT &entry)
    {
        return entry.event->scheduled_ &&
               entry.generation == entry.event->generation_;
    }

    bool inWindow(Tick when) const
    {
        return when - ladderBase_ < ladderSpan;
    }

    /** Strict (when, priority, seq) ordering between two entries. */
    template <typename A, typename B>
    static bool
    keyBefore(const A &a, const B &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    void push(Event *ev, Tick when, bool self_deleting);
    /** runOne() when the solo register is empty. */
    bool runOneSlow(Tick limit);
    void insertLadder(Tick when, int priority, std::uint64_t seq,
                      std::uint64_t generation, Event *ev,
                      bool self_deleting);
    /** Move the solo register's occupant into the ladder/heap. */
    void spillSolo();
    /** Shared fire tail: pop bookkeeping + process + recycle. */
    void fire(Event *ev, Tick when, bool self_deleting);
    /** Invoke the event body: EventKind switch or virtual process(). */
    void dispatch(Event *ev);

    Node *acquireNode();
    void releaseNode(Node *node);
    CallbackEvent *acquireCallback();
    void recycleCallback(CallbackEvent *ev);

    /** Drop a dead entry's bookkeeping (shared by all removal paths). */
    void
    droppedDead(Event *ev)
    {
        f4t_assert(deadEntries_ > 0, "dead entry count underflow");
        f4t_assert(ev->staleEntries_ > 0, "stale entry count underflow");
        --deadEntries_;
        --ev->staleEntries_;
    }

    void setBit(std::size_t idx);
    void clearBit(std::size_t idx);
    /** First non-empty bucket at or after @p from; ladderSpan if none. */
    std::size_t findBucketFrom(std::size_t from) const;

    /** Pop squashed entries off the heap top. */
    void skipSquashed();
    /** Move every heap entry inside the new window into the ladder. */
    void rebaseLadder();
    /** Rebuild both containers without squashed entries. */
    void compact();
    void maybeCompact();
    /** Counter cross-check; full recount only in debug builds. */
    void checkAccounting() const;

    /**
     * Locate the next live entry: a bucket index + its head node, or
     * node == nullptr when the ladder (and, after rebase attempts,
     * the heap) is empty. Prunes dead head entries on the way.
     */
    struct Candidate
    {
        std::size_t bucket = 0;
        Node *node = nullptr;
    };
    Candidate findCandidate();

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
    std::size_t liveEvents_ = 0;
    std::size_t deadEntries_ = 0;

    // Solo register: when the queue is otherwise empty, the sole
    // pending event lives here instead of in a container. A simulator
    // region driven by one self-rescheduling clock event — the
    // steady state of every saturated-pipeline scenario — then pops
    // and pushes through a handful of plain fields. Invariant: while
    // soloEvent_ is set, the ladder and the heap are empty (the next
    // push spills the occupant before inserting), so the solo entry
    // is trivially the global minimum.
    Event *soloEvent_ = nullptr;
    Tick soloWhen_ = 0;
    int soloPriority_ = 0;
    std::uint64_t soloSeq_ = 0;
    std::uint64_t soloGeneration_ = 0;
    bool soloSelfDeleting_ = false;

    // Ladder state. Each bucket holds a singly linked chain, sorted
    // by (when, priority, seq), of the entries inside its granule
    // (the window is exactly one span wide, so bucket indices cannot
    // alias). The sorted order makes the head the bucket minimum, and
    // the per-bucket tail pointer makes the common ascending-key
    // insertion an O(1) append.
    Tick ladderBase_ = 0;
    std::size_t cursor_ = 0; ///< no non-empty bucket below this index
    std::size_t ladderNodes_ = 0;
    std::vector<Node *> buckets_;
    std::vector<Node *> tails_;
    std::vector<std::uint64_t> bits_;

    // Far-future heap (std::make_heap family, min entry at front).
    std::vector<HeapEntry> heap_;

    // Node and callback-event pools. Deques give stable addresses;
    // free lists are threaded through the objects themselves.
    std::deque<Node> nodeArena_;
    Node *freeNodes_ = nullptr;
    std::deque<CallbackEvent> callbackArena_;
    CallbackEvent *freeCallbacks_ = nullptr;
    std::size_t freeCallbackCount_ = 0;
};

} // namespace f4t::sim

#endif // F4T_SIM_EVENT_QUEUE_HH
