/**
 * @file
 * Wall-clock self-profiler core: scoped steady-clock timers with
 * thread-local accumulators, attributing the simulator's own CPU time
 * to event categories and modules.
 *
 * Everything observability-adjacent in this codebase follows the same
 * two-level gate, and so does the profiler:
 *
 *  1. Compile gate: F4T_ENABLE_PROFILE (CMake option, default ON; the
 *     release perf preset turns it OFF). With the gate off, Scope is
 *     an empty struct and enabled() is constexpr false, so every
 *     instrumentation site folds to nothing — the zero-cost proof is
 *     the release-preset fingerprints and event_rate staying bit- and
 *     band-identical, the same bar the trace layer met.
 *  2. Runtime gate: setEnabled(true), flipped by `--profile` in
 *     bench::Obs. With the build gate on but the runtime gate off, an
 *     instrumentation site costs one relaxed atomic load and a
 *     predictable branch.
 *
 * Attribution model: scopes nest on a per-thread stack and record
 * *self* time — a scope's elapsed time minus the elapsed time of the
 * scopes nested inside it. EventQueue::run() opens a root scope
 * (Cat::eventQueue), EventQueue::fire() opens one per event
 * (categorized from the event's profileTag()), and hot modules open
 * finer scopes inside their event handlers. Because every child's
 * total is subtracted from its parent exactly once, the per-category
 * self times sum to the root scopes' elapsed wall time — which is how
 * the bench harnesses can assert that attributed time covers >= 90% of
 * a measured run.
 *
 * Threading: accumulators are plain (non-atomic) per-thread blocks,
 * registered once in a global list and intentionally leaked so a
 * capture() can outlive the thread. capture() merges all blocks; call
 * it only when no profiled scope can be mid-flight on another thread.
 * The parallel executor's window barrier provides the happens-before
 * edge for its workers (they are parked between runs), so capturing
 * between run() calls is race-free, including under TSan.
 */

#ifndef F4T_SIM_PROFILE_SCOPE_HH
#define F4T_SIM_PROFILE_SCOPE_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace f4t::sim::prof
{

#ifdef F4T_ENABLE_PROFILE
constexpr bool compiledIn = true;
#else
constexpr bool compiledIn = false;
#endif

/**
 * Cost categories. Coarse module buckets (one per major simulator
 * subsystem) plus fine per-TcpEvent-kind buckets that the FPC opens
 * *inside* its module scope — self-time accounting keeps the two
 * levels additive instead of double-counted.
 */
enum class Cat : std::uint8_t
{
    eventQueue = 0, ///< queue bookkeeping: ladder scans, heap ops, pops
    fpcExec,        ///< FPC tick outside the split-out phases below
    fpcFpuPass,     ///< FPU issue + write-back
    fpcUserSend,    ///< Fpc::handleEvent, per absorbed event kind
    fpcUserRecv,
    fpcUserConnect,
    fpcUserClose,
    fpcRxSegment,
    fpcTimeout,
    scheduler,   ///< event pre-routing / FPC selection
    linkSwitch,  ///< cable serialization, delivery ports, switch drains
    hostComplex, ///< PCIe, CPU cores, runtime polling, host interface
    rxParse,     ///< RX parser
    packetGen,   ///< TX packet generator
    memory,      ///< memory manager + DRAM model
    timerWheel,  ///< timer wheel arm/fire
    app,         ///< applications and socket APIs
    obsSink,     ///< stat sampling, audits, trace sinks
    harness,     ///< bench driver work outside the simulation proper
    otherEvent,  ///< events with no (or an unrecognized) tag
    numCats
};

constexpr std::size_t categoryCount = static_cast<std::size_t>(Cat::numCats);

/** Stable lower_snake name, used for JSON keys and table rows. */
inline const char *
toString(Cat cat)
{
    switch (cat) {
    case Cat::eventQueue: return "event_queue";
    case Cat::fpcExec: return "fpc_exec";
    case Cat::fpcFpuPass: return "fpc_fpu_pass";
    case Cat::fpcUserSend: return "fpc_user_send";
    case Cat::fpcUserRecv: return "fpc_user_recv";
    case Cat::fpcUserConnect: return "fpc_user_connect";
    case Cat::fpcUserClose: return "fpc_user_close";
    case Cat::fpcRxSegment: return "fpc_rx_segment";
    case Cat::fpcTimeout: return "fpc_timeout";
    case Cat::scheduler: return "scheduler";
    case Cat::linkSwitch: return "link_switch";
    case Cat::hostComplex: return "host_complex";
    case Cat::rxParse: return "rx_parse";
    case Cat::packetGen: return "packet_gen";
    case Cat::memory: return "memory";
    case Cat::timerWheel: return "timer_wheel";
    case Cat::app: return "app";
    case Cat::obsSink: return "obs_sink";
    case Cat::harness: return "harness";
    case Cat::otherEvent: return "other_event";
    case Cat::numCats: break;
    }
    return "invalid";
}

class Scope;

namespace detail
{

/** Per-thread accumulators: plain integers, written only by the
 *  owning thread (see the threading contract in the file comment). */
struct ThreadBlock
{
    std::uint64_t ns[categoryCount] = {};
    std::uint64_t count[categoryCount] = {};
};

struct BlockRegistry
{
    std::mutex mutex;
    /** Leaked on purpose: capture() may run after a worker exited. */
    std::vector<ThreadBlock *> blocks;
};

inline BlockRegistry &
blockRegistry()
{
    // Immortal (never destroyed): the whole-process atexit report in
    // bench::Obs registers before the first Scope constructs this, so
    // a plain function-local static would be torn down first and
    // capture() would lock a destroyed mutex.
    static BlockRegistry *registry = new BlockRegistry;
    return *registry;
}

inline ThreadBlock &
threadBlock()
{
    thread_local ThreadBlock *block = [] {
        auto *fresh = new ThreadBlock;
        BlockRegistry &registry = blockRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        registry.blocks.push_back(fresh);
        return fresh;
    }();
    return *block;
}

inline std::atomic<bool> &
runtimeEnabled()
{
    static std::atomic<bool> flag{false};
    return flag;
}

inline thread_local Scope *tlsCurrentScope = nullptr;

inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

/** True when profiling is compiled in *and* runtime-enabled. Folds to
 *  constexpr false in F4T_ENABLE_PROFILE=OFF builds. */
inline bool
enabled()
{
    if constexpr (!compiledIn)
        return false;
    return detail::runtimeEnabled().load(std::memory_order_relaxed);
}

/** Flip the runtime gate (no-op effect when not compiled in). */
inline void
setEnabled(bool on)
{
    detail::runtimeEnabled().store(on, std::memory_order_relaxed);
}

/**
 * Map an event tag — a module name ("engineA.fpc0"), a callback
 * call-site tag ("pcie.doorbell"), a drain-event owner ("link.aToB") —
 * to a category by substring. First match wins; the specific module
 * names come before the generic fallbacks, so "engineA.scheduler"
 * lands in scheduler, not otherEvent.
 */
inline Cat
categorizeTag(const char *tag)
{
    if (tag == nullptr)
        return Cat::otherEvent;
    auto has = [tag](const char *needle) {
        return std::strstr(tag, needle) != nullptr;
    };
    if (has("fpc"))
        return Cat::fpcExec;
    if (has("sched"))
        return Cat::scheduler;
    if (has("link") || has("switch") || has("fabric") || has("arp") ||
        has("icmp"))
        return Cat::linkSwitch;
    if (has("rxParser") || has("rx_parser"))
        return Cat::rxParse;
    if (has("packetGen") || has("pktgen"))
        return Cat::packetGen;
    if (has("timer"))
        return Cat::timerWheel;
    if (has("memoryManager") || has("memmgr") || has("dram"))
        return Cat::memory;
    if (has("pcie") || has("cpu") || has("runtime") ||
        has("hostInterface") || has("doorbell") || has("linux") ||
        has("soft_tcp"))
        return Cat::hostComplex;
    if (has("stat") || has("sample") || has("audit"))
        return Cat::obsSink;
    if (has("app") || has("echo") || has("http") || has("kv") ||
        has("sock") || has("client") || has("server") || has("churn") ||
        has("bulk"))
        return Cat::app;
    return Cat::otherEvent;
}

/**
 * categorizeTag with a per-thread content-keyed memo, for the
 * per-event hot path. Content-keyed (not pointer-keyed) so a tag
 * string that is freed and its storage reused — module names die with
 * their world, and bench harnesses build several worlds per process —
 * can never alias a stale entry.
 */
inline Cat
categorizeTagCached(const char *tag)
{
    struct TagHash
    {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct TagEq
    {
        using is_transparent = void;
        bool
        operator()(std::string_view a, std::string_view b) const
        {
            return a == b;
        }
    };
    thread_local std::unordered_map<std::string, Cat, TagHash, TagEq> memo;
    std::string_view key(tag);
    auto it = memo.find(key);
    if (it == memo.end())
        it = memo.emplace(std::string(key), categorizeTag(tag)).first;
    return it->second;
}

/**
 * RAII self-time scope. Construction is a no-op unless enabled(); an
 * active scope pushes itself on the thread's scope stack, and its
 * destructor charges elapsed-minus-children to its own category and
 * propagates its elapsed total to the parent's child time.
 */
class Scope
{
#ifdef F4T_ENABLE_PROFILE
  public:
    explicit Scope(Cat cat)
    {
        if (!enabled())
            return;
        active_ = true;
        cat_ = cat;
        parent_ = detail::tlsCurrentScope;
        detail::tlsCurrentScope = this;
        startNs_ = detail::nowNs();
    }

    ~Scope()
    {
        if (!active_)
            return;
        std::uint64_t total = detail::nowNs() - startNs_;
        std::uint64_t self = total > childNs_ ? total - childNs_ : 0;
        detail::ThreadBlock &block = detail::threadBlock();
        block.ns[static_cast<std::size_t>(cat_)] += self;
        ++block.count[static_cast<std::size_t>(cat_)];
        detail::tlsCurrentScope = parent_;
        if (parent_ != nullptr)
            parent_->childNs_ += total;
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Scope *parent_ = nullptr;
    std::uint64_t startNs_ = 0;
    std::uint64_t childNs_ = 0;
    Cat cat_ = Cat::otherEvent;
    bool active_ = false;
#else
  public:
    explicit Scope(Cat) {}
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
#endif
};

/** A merged view of every thread's accumulators at one instant. */
struct Snapshot
{
    std::uint64_t ns[categoryCount] = {};
    std::uint64_t count[categoryCount] = {};

    std::uint64_t
    totalNs() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t v : ns)
            total += v;
        return total;
    }

    std::uint64_t
    totalCount() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t v : count)
            total += v;
        return total;
    }
};

/**
 * Merge every registered thread block. All-zero when not compiled in.
 * Caller contract: no profiled scope may be mid-flight on another
 * thread (between executor runs is safe — workers park at the window
 * barrier, whose mutex provides the happens-before edge).
 */
inline Snapshot
capture()
{
    Snapshot snap;
    if constexpr (!compiledIn)
        return snap;
    detail::BlockRegistry &registry = detail::blockRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const detail::ThreadBlock *block : registry.blocks) {
        for (std::size_t c = 0; c < categoryCount; ++c) {
            snap.ns[c] += block->ns[c];
            snap.count[c] += block->count[c];
        }
    }
    return snap;
}

/** capture() minus @p before, element-wise (saturating at zero). */
inline Snapshot
since(const Snapshot &before)
{
    Snapshot now = capture();
    for (std::size_t c = 0; c < categoryCount; ++c) {
        now.ns[c] = now.ns[c] > before.ns[c] ? now.ns[c] - before.ns[c] : 0;
        now.count[c] =
            now.count[c] > before.count[c] ? now.count[c] - before.count[c]
                                           : 0;
    }
    return now;
}

} // namespace f4t::sim::prof

#define F4T_PROFILE_CONCAT2(a, b) a##b
#define F4T_PROFILE_CONCAT(a, b) F4T_PROFILE_CONCAT2(a, b)
/** Declare an anonymous profiling scope for the rest of the block. */
#define F4T_PROFILE_SCOPE(cat)                                            \
    ::f4t::sim::prof::Scope F4T_PROFILE_CONCAT(f4t_profile_scope_,        \
                                               __LINE__)(cat)

#endif // F4T_SIM_PROFILE_SCOPE_HH
