/**
 * @file
 * RingFifo: a growable power-of-two ring buffer with a deque-like
 * FIFO interface.
 *
 * The simulator's per-cycle pipelines (FPC input FIFO, FPU pipe, NIC
 * queues) previously used std::deque, whose block allocator frees and
 * reallocates a node every time the FIFO head crosses a 512-byte
 * boundary — for entries the size of a TCB that is a malloc/free pair
 * on nearly every push. A ring reuses one contiguous allocation
 * forever: steady-state push/pop touches no allocator at all, and the
 * elements stay cache-resident.
 *
 * Capacity grows geometrically on demand; it never shrinks (pipelines
 * have small, bounded depths — the backing store is a few KB).
 */

#ifndef F4T_SIM_RING_FIFO_HH
#define F4T_SIM_RING_FIFO_HH

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace f4t::sim
{

template <typename T>
class RingFifo
{
  public:
    explicit RingFifo(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 1;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    T &front()
    {
        f4t_assert(size_ > 0, "front() on empty RingFifo");
        return slots_[head_];
    }

    const T &front() const
    {
        f4t_assert(size_ > 0, "front() on empty RingFifo");
        return slots_[head_];
    }

    void
    push_back(const T &value)
    {
        emplace_back(value);
    }

    void
    push_back(T &&value)
    {
        emplace_back(std::move(value));
    }

    template <typename... Args>
    void
    emplace_back(Args &&...args)
    {
        if (size_ == slots_.size())
            grow();
        slots_[wrap(head_ + size_)] = T{std::forward<Args>(args)...};
        ++size_;
    }

    /**
     * Append without constructing a temporary: returns a reference to
     * the new back slot for the caller to fill. The slot holds either
     * a default-constructed T or the moved-from remains of a previous
     * occupant — the caller must assign every field it relies on.
     */
    T &
    push_default()
    {
        if (size_ == slots_.size())
            grow();
        T &slot = slots_[wrap(head_ + size_)];
        ++size_;
        return slot;
    }

    void
    pop_front()
    {
        f4t_assert(size_ > 0, "pop_front() on empty RingFifo");
        // Release resources held by the entry; trivial types skip the
        // (surprisingly costly, for TCB-sized entries) re-zeroing.
        if constexpr (!std::is_trivially_destructible_v<T>)
            slots_[head_] = T{};
        head_ = wrap(head_ + 1);
        --size_;
    }

    void
    clear()
    {
        while (size_ > 0)
            pop_front();
    }

    /** Element @p i positions behind the front (0 = front). */
    const T &
    at(std::size_t i) const
    {
        f4t_assert(i < size_, "RingFifo index %zu out of range %zu", i,
                   size_);
        return slots_[wrap(head_ + i)];
    }

  private:
    std::size_t wrap(std::size_t i) const { return i & (slots_.size() - 1); }

    void
    grow()
    {
        std::vector<T> bigger(slots_.size() * 2);
        for (std::size_t i = 0; i < size_; ++i)
            bigger[i] = std::move(slots_[wrap(head_ + i)]);
        slots_ = std::move(bigger);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace f4t::sim

#endif // F4T_SIM_RING_FIFO_HH
