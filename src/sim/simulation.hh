/**
 * @file
 * Simulation: the root object owning the event queue, the statistics
 * registry, and the clock domains used by every model in a run.
 */

#ifndef F4T_SIM_SIMULATION_HH
#define F4T_SIM_SIMULATION_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/check.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"

namespace f4t::sim
{

namespace ctrace
{
class CausalTracer;
} // namespace ctrace

/** A named clock with a fixed period, shared by clocked objects. */
class ClockDomain
{
  public:
    ClockDomain(std::string name, double frequency_hz, EventQueue &queue)
        : name_(std::move(name)), period_(periodFromFrequency(frequency_hz)),
          reciprocal_(period_ > 1 ? ~Tick{0} / period_ : 0), queue_(queue)
    {
        f4t_assert(period_ > 0, "clock domain '%s' has zero period",
                   name_.c_str());
    }

    const std::string &name() const { return name_; }
    Tick period() const { return period_; }
    double frequency() const
    {
        return static_cast<double>(ticksPerSecond) /
               static_cast<double>(period_);
    }

    /** Cycle count at the current tick (cycle 0 starts at tick 0). */
    Cycles curCycle() const { return ticksToCycles(queue_.now()); }

    /**
     * First clock edge strictly after the current tick, plus @p ahead
     * additional cycles. An object that ticks itself every cycle calls
     * clockEdge() from within its tick handler to get the next edge.
     */
    Tick
    clockEdge(Cycles ahead = 0) const
    {
        Tick now = queue_.now();
        Tick next = (ticksToCycles(now) + 1) * period_;
        return next + ahead * period_;
    }

    /** Convert a cycle count to a duration in ticks. */
    Tick cyclesToTicks(Cycles c) const { return c * period_; }

    /**
     * Exact @p t / period. The divisor is loop-invariant for the life
     * of the domain and this quotient sits on the hottest path in the
     * simulator (every ClockedObject tick computes it several times),
     * so it is done as a reciprocal multiply — one widening multiply
     * plus a fix-up — instead of a hardware 64-bit divide.
     */
    Cycles
    ticksToCycles(Tick t) const
    {
        if (period_ == 1)
            return t;
        // reciprocal_ underestimates 2^64/period by < 2, so the
        // estimated quotient is off by at most 2; repair by remainder.
        Cycles q = static_cast<Cycles>(
            (static_cast<unsigned __int128>(t) * reciprocal_) >> 64);
        Tick rem = t - q * period_;
        while (rem >= period_) {
            rem -= period_;
            ++q;
        }
        return q;
    }

  private:
    std::string name_;
    Tick period_;
    Tick reciprocal_; ///< floor((2^64 - 1) / period)
    EventQueue &queue_;
};

/**
 * Root of a simulated system. Construct one per experiment; all modules
 * take a reference and register their events and statistics with it.
 */
class Simulation
{
  public:
    Simulation()
        : engineClock_("clk250", 250e6, queue_),
          netClock_("clk322", 322e6, queue_),
          hostClock_("clk2g3", 2.3e9, queue_)
    {
        // While this simulation is the innermost live one on the
        // thread, warn()/inform() and tracepoints stamp its tick.
        detail::pushCurrentSim(this, [](const void *s) -> std::uint64_t {
            return static_cast<const Simulation *>(s)->now();
        });
        trace::detail::notifySimulationCreated(*this);
    }

    ~Simulation()
    {
        trace::detail::notifySimulationDestroyed(*this);
        detail::popCurrentSim(this);
    }

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    EventQueue &queue() { return queue_; }
    StatRegistry &stats() { return stats_; }

    Tick now() const { return queue_.now(); }

    // --- observability (see sim/trace.hh) -----------------------------------
    /** Timeline sink modules emit spans/instants to; nullptr when off. */
    trace::TraceEventSink *timeline() { return timeline_; }
    void setTimeline(trace::TraceEventSink *sink) { timeline_ = sink; }

    /** Causal request tracer (sim/causal_trace.hh); nullptr when no
     *  tracer is attached. Hot call sites additionally compile out
     *  under `if constexpr (trace::compiledIn)`. */
    ctrace::CausalTracer *causalTracer() { return ctracer_; }
    void setCausalTracer(ctrace::CausalTracer *tracer) { ctracer_ = tracer; }

    /** Runtime trace-flag selection ("Fpc,Sch*"); see sim/trace.hh. */
    std::size_t
    setTraceFlags(const std::string &spec)
    {
        return trace::setFlags(spec);
    }

    /** 250 MHz FtEngine control-path clock. */
    ClockDomain &engineClock() { return engineClock_; }
    /** 322 MHz Ethernet / data-path clock. */
    ClockDomain &netClock() { return netClock_; }
    /** 2.3 GHz host CPU clock (Xeon Gold 5118). */
    ClockDomain &hostClock() { return hostClock_; }

    /** Run until the queue drains or @p limit is reached. */
    Tick run(Tick limit = maxTick) { return queue_.run(limit); }

    /** Run for a further @p duration ticks of simulated time. */
    Tick runFor(Tick duration) { return queue_.run(now() + duration); }

    // --- invariant audits (see sim/check.hh) --------------------------------
    /**
     * Register a whole-structure invariant audit. @p owner keys later
     * deregistration (a module registers with `this` and deregisters in
     * its destructor). Without F4T_ENABLE_CHECKS the audit is dropped.
     */
    void
    registerAudit(const void *owner, std::string name,
                  std::function<void()> fn)
    {
        if constexpr (checksEnabled)
            audits_.push_back(Audit{owner, std::move(name), std::move(fn)});
        else
            (void)owner, (void)name, (void)fn;
    }

    /** Remove every audit registered by @p owner. */
    void
    deregisterAudits(const void *owner)
    {
        std::erase_if(audits_,
                      [owner](const Audit &a) { return a.owner == owner; });
    }

    /** Run every registered audit immediately. */
    void
    runAudits()
    {
        ++auditRuns_;
        for (const Audit &audit : audits_)
            audit.fn();
    }

    /**
     * Throttled audit entry point for module ticks: runs the audits at
     * most once per audit interval of simulated time. Compiles to
     * nothing when checks are off.
     */
    void
    maybeAudit()
    {
        if constexpr (checksEnabled) {
            if (now() >= nextAuditAt_ && !audits_.empty()) {
                nextAuditAt_ = now() + auditInterval_;
                runAudits();
            }
        }
    }

    /** Times runAudits() completed (tests verify audits actually ran). */
    std::uint64_t auditRuns() const { return auditRuns_; }

    void setAuditInterval(Tick interval) { auditInterval_ = interval; }

  private:
    struct Audit
    {
        const void *owner;
        std::string name;
        std::function<void()> fn;
    };

    EventQueue queue_;
    StatRegistry stats_;
    trace::TraceEventSink *timeline_ = nullptr;
    ctrace::CausalTracer *ctracer_ = nullptr;
    ClockDomain engineClock_;
    ClockDomain netClock_;
    ClockDomain hostClock_;
    std::vector<Audit> audits_;
    Tick nextAuditAt_ = 0;
    Tick auditInterval_ = microsecondsToTicks(50);
    std::uint64_t auditRuns_ = 0;
};

/** Base class for named simulation modules. */
class SimObject
{
  public:
    SimObject(Simulation &sim, std::string name)
        : sim_(sim), name_(std::move(name))
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }
    Simulation &sim() { return sim_; }
    const Simulation &sim() const { return sim_; }
    EventQueue &queue() { return sim_.queue(); }
    Tick now() const { return sim_.now(); }

    /** Build a child statistic name: "<object>.<stat>". */
    std::string statName(const std::string &leaf) const
    {
        return name_ + "." + leaf;
    }

  private:
    Simulation &sim_;
    std::string name_;
};

/**
 * A SimObject driven by a clock: subclasses implement tick(), returning
 * true to keep ticking on every subsequent edge and false to go idle.
 * Idle objects consume no simulation events until activate() is called
 * again — crucial for simulation speed with thousands of flows.
 */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(Simulation &sim, std::string name, ClockDomain &domain)
        : SimObject(sim, std::move(name)), domain_(domain), tickEvent_(*this)
    {}

    ~ClockedObject() override
    {
        if (tickEvent_.scheduled())
            queue().deschedule(&tickEvent_);
    }

    ClockDomain &clock() { return domain_; }
    Cycles curCycle() const { return domain_.curCycle(); }

    /**
     * Ensure a tick is scheduled for the next clock edge. An object
     * that parked itself further out with activateAt() is pulled back
     * in: activate() is the "new work arrived" signal and must always
     * win over a fast-forward nap.
     */
    void
    activate()
    {
        Tick edge = domain_.clockEdge();
        if (!tickEvent_.scheduled())
            queue().schedule(&tickEvent_, edge);
        else if (tickEvent_.when() > edge)
            queue().reschedule(&tickEvent_, edge);
    }

    bool active() const { return tickEvent_.scheduled(); }

  protected:
    /** @return true to tick again on the next edge. */
    virtual bool tick() = 0;

    /**
     * Park the object until @p cycle (a fast-forward nap): tick() may
     * call this and return false when it can prove no earlier cycle
     * has work. Any activate() before then wakes it at the next edge.
     */
    void
    activateAt(Cycles cycle)
    {
        Tick when = domain_.cyclesToTicks(cycle);
        if (!tickEvent_.scheduled())
            queue().schedule(&tickEvent_, when);
        else
            queue().reschedule(&tickEvent_, when);
    }

  private:
    friend class EventQueue; ///< tagged dispatch names TickEvent::run()

    struct TickEvent : public Event
    {
        explicit TickEvent(ClockedObject &owner)
            : Event(clockPriority, EventKind::tick), owner_(owner)
        {}

        /**
         * The tick body, non-virtual so the queue's tagged dispatch
         * reaches it with a direct call; process() is the virtual-path
         * spelling of the same thing.
         *
         * This event only ever fires on a clock edge, so the next
         * edge is one period ahead of the fire tick — no need for
         * activate()'s general clockEdge() computation. tick() may
         * have re-armed the event itself via activateAt() (a
         * fast-forward nap), so only schedule here when it has not,
         * and never leave a nap pending past the next edge when
         * tick() asked to run again.
         */
        void
        run()
        {
            Tick fired_at = when();
            bool again = owner_.tick();
            if (!again)
                return;
            Tick next = fired_at + owner_.domain_.period();
            if (!scheduled())
                owner_.queue().schedule(this, next);
            else if (when() > next)
                owner_.queue().reschedule(this, next);
        }

        void process() override { run(); }

        std::string
        description() const override
        {
            return owner_.name() + ".tick";
        }

        const char *
        profileTag() const override
        {
            // The owner's module name ("engineA.fpc0", "clientNet.cpu")
            // carries the subsystem; the profiler buckets by substring.
            return owner_.name().c_str();
        }

        ClockedObject &owner_;
    };

    ClockDomain &domain_;
    TickEvent tickEvent_;
};

} // namespace f4t::sim

#endif // F4T_SIM_SIMULATION_HH
