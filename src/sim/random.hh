/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All stochastic behaviour (fault injection, jitter models, workload
 * generators) draws from explicitly seeded Random instances so that
 * every experiment is reproducible bit-for-bit.
 */

#ifndef F4T_SIM_RANDOM_HH
#define F4T_SIM_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace f4t::sim
{

/** xoshiro256** — fast, high-quality, deterministic. */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0xf47f47f4ULL) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // SplitMix64 expansion of the seed into the xoshiro state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Log-normal sample parameterized by the *underlying* mu/sigma. */
    double
    logNormal(double mu, double sigma)
    {
        // Box-Muller transform.
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * M_PI * u2);
        return std::exp(mu + sigma * z);
    }

  private:
    std::uint64_t state_[4];
};

} // namespace f4t::sim

#endif // F4T_SIM_RANDOM_HH
