#include "sim/parallel.hh"

#include <algorithm>

#include "sim/flight_recorder.hh"
#include "sim/profile_scope.hh"

namespace f4t::sim
{

namespace
{

/** Tick hook matching the one Simulation's constructor registers. */
std::uint64_t
partitionNow(const void *sim)
{
    return static_cast<const Simulation *>(sim)->now();
}

} // namespace

ParallelExecutor::~ParallelExecutor()
{
    stopWorkers();
}

void
ParallelExecutor::addPartition(Simulation &sim, std::string name)
{
    f4t_assert(!started_, "cannot add partition '%s' after the first run",
               name.c_str());
    f4t_assert(sim.now() == 0,
               "partition '%s' already advanced to %llu before registration",
               name.c_str(), static_cast<unsigned long long>(sim.now()));
    partitions_.push_back(Partition{&sim, std::move(name)});
}

void
ParallelExecutor::addChannel(CrossChannel &channel)
{
    f4t_assert(!started_, "cannot add channels after the first run");
    f4t_assert(channel.lookahead() > 0,
               "cross channel needs positive lookahead");
    channels_.push_back(&channel);
}

void
ParallelExecutor::setThreads(std::size_t threads)
{
    f4t_assert(!started_, "cannot change thread count after the first run");
    requestedThreads_ = threads;
}

Tick
ParallelExecutor::lookahead() const
{
    Tick lookahead = maxTick;
    for (const CrossChannel *channel : channels_)
        lookahead = std::min(lookahead, channel->lookahead());
    return lookahead;
}

std::uint64_t
ParallelExecutor::eventsProcessed() const
{
    std::uint64_t total = 0;
    for (const Partition &partition : partitions_)
        total += partition.sim->queue().eventsProcessed();
    return total;
}

Tick
ParallelExecutor::minNextEvent() const
{
    Tick next = maxTick;
    for (const Partition &partition : partitions_)
        next = std::min(next,
                        partition.sim->queue().nextEventLowerBound());
    return next;
}

std::uint64_t
ParallelExecutor::mailboxSpills() const
{
    std::uint64_t total = 0;
    for (const CrossChannel *channel : channels_)
        total += channel->spillsObserved();
    return total;
}

std::vector<WorkerProfile>
ParallelExecutor::workerProfiles() const
{
    std::vector<WorkerProfile> out(profiles_.size());
    for (std::size_t i = 0; i < profiles_.size(); ++i) {
        out[i].busyNs = profiles_[i].busyNs;
        out[i].idleNs = profiles_[i].idleNs;
        out[i].barrierNs = profiles_[i].barrierNs;
    }
    return out;
}

void
ParallelExecutor::registerStats(StatRegistry &registry)
{
    f4t_assert(stats_ == nullptr, "executor stats already registered");
    stats_ = std::make_unique<ExecutorStats>(registry);
    publishStats();
}

void
ParallelExecutor::publishStats()
{
    if (stats_ == nullptr)
        return;
    stats_->windows = static_cast<double>(windows_);
    stats_->crossDelivered = static_cast<double>(crossDelivered_);
    stats_->mailboxSpills = static_cast<double>(mailboxSpills());
}

Tick
ParallelExecutor::run(Tick limit)
{
    f4t_assert(!partitions_.empty(), "executor has no partitions");
    f4t_assert(limit != maxTick,
               "parallel run needs a finite limit (windows are derived "
               "from it)");
    if (!started_) {
        started_ = true;
        profiles_.resize(effectiveThreads());
        startWorkers();
        frModule_ = fr::internModule("parallel_executor");
    }
    const Tick window = lookahead();
    f4t_assert(window > 0 && window != maxTick,
               "parallel run needs at least one cross channel");

    // A wedged window barrier makes no event progress, so the
    // wall-clock watchdog turns would-be CI hangs into a flight
    // recorder dump plus a fast abort.
    fr::armWatchdog(fr::defaultWatchdogSeconds());

    while (true) {
        for (CrossChannel *channel : channels_)
            crossDelivered_ += channel->drainInto();

        // Mailboxes are empty now, so the next event anywhere is a
        // partition-local one. When there is none on this side of the
        // limit — idle gap reaching past it, or a full global drain —
        // fast-forward every partition's clock to the limit (no events
        // fire), exactly what the serial EventQueue::run(limit) does
        // to now_ when its queue empties. Phase boundaries in drivers
        // that alternate run() with model pokes therefore land on the
        // same ticks under either kernel.
        Tick next = minNextEvent();
        if (next > limit) {
            if (horizon_ < limit) {
                runWindow(limit);
                horizon_ = limit;
            }
            break;
        }

        // Jump over globally idle gaps (retransmission timeouts, app
        // think time): barriers are only needed where events exist.
        // next can trail horizon_ when a stale (descheduled) entry
        // feeds the lower bound — never move backwards.
        Tick start = std::max(horizon_, next);
        Tick window_end =
            limit - start > window ? start + window : limit;
        runWindow(window_end);
        horizon_ = window_end;
        ++windows_;
        // Workers are parked here (the barrier's happens-before edge),
        // so cross-channel spill totals are stable to read.
        fr::record(fr::Kind::parBarrier, horizon_, frModule_, 0,
                   windows_, window_end);
        fr::beat();
        std::uint64_t spills = mailboxSpills();
        if (spills != frLastSpills_) {
            fr::record(fr::Kind::mailboxSpill, horizon_, frModule_, 0,
                       spills - frLastSpills_, spills);
            frLastSpills_ = spills;
        }
        // Workers are parked at this point, so the coordinator may
        // touch partition 0's registry: StatSampler series inside the
        // next window read fresh executor counters.
        publishStats();
        if (window_end == limit)
            break;
    }
    publishStats();
    fr::disarmWatchdog();
    return horizon_;
}

void
ParallelExecutor::runPartition(Partition &partition, Tick window_end)
{
    // Bind the partition as this thread's current simulation so log
    // and trace tick prefixes stamp the right clock (the Simulation
    // constructor bound it on the *constructing* thread only).
    detail::pushCurrentSim(partition.sim, partitionNow);
    partition.sim->run(window_end);
    detail::popCurrentSim(partition.sim);
}

void
ParallelExecutor::runWindow(Tick window_end)
{
    std::size_t threads = effectiveThreads();
    // Per-window clock reads only while the self-profiler is on: the
    // executor's own introspection must not tax un-profiled runs.
    const bool timed = prof::enabled();
    if (threads <= 1 || workers_.empty()) {
        std::uint64_t t0 = timed ? prof::detail::nowNs() : 0;
        for (Partition &partition : partitions_)
            runPartition(partition, window_end);
        if (timed)
            profiles_[0].busyNs += prof::detail::nowNs() - t0;
        return;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        windowEnd_ = window_end;
        workersDone_ = 0;
        ++windowSeq_;
    }
    startCv_.notify_all();

    // The coordinator doubles as worker 0.
    std::uint64_t t0 = timed ? prof::detail::nowNs() : 0;
    for (std::size_t i = 0; i < partitions_.size(); i += threads)
        runPartition(partitions_[i], window_end);
    std::uint64_t t1 = timed ? prof::detail::nowNs() : 0;
    if (timed)
        profiles_[0].busyNs += t1 - t0;

    std::unique_lock<std::mutex> lock(mutex_);
    doneCv_.wait(lock, [&] { return workersDone_ == workers_.size(); });
    if (timed)
        profiles_[0].barrierNs += prof::detail::nowNs() - t1;
}

void
ParallelExecutor::startWorkers()
{
    std::size_t threads = effectiveThreads();
    if (threads <= 1)
        return;
    workers_.reserve(threads - 1);
    for (std::size_t w = 1; w < threads; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

void
ParallelExecutor::stopWorkers()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    startCv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
    workers_.clear();
}

void
ParallelExecutor::workerLoop(std::size_t worker_index)
{
    std::size_t threads = effectiveThreads();
    std::uint64_t seen = 0;
    while (true) {
        bool timed = prof::enabled();
        Tick window_end;
        std::uint64_t park0 = timed ? prof::detail::nowNs() : 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            startCv_.wait(lock, [&] {
                return shutdown_ || windowSeq_ != seen;
            });
            if (shutdown_)
                return;
            seen = windowSeq_;
            window_end = windowEnd_;
        }
        std::uint64_t t0 = timed ? prof::detail::nowNs() : 0;
        if (timed)
            profiles_[worker_index].idleNs += t0 - park0;
        for (std::size_t i = worker_index; i < partitions_.size();
             i += threads) {
            runPartition(partitions_[i], window_end);
        }
        if (timed)
            profiles_[worker_index].busyNs += prof::detail::nowNs() - t0;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++workersDone_;
        }
        doneCv_.notify_one();
    }
}

} // namespace f4t::sim
