#include "flight_recorder.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

namespace f4t::sim::fr
{

namespace
{

/* Dump format: 8-byte magic, u32 version, then length-prefixed reason
 * string, module table and rings. Native endianness — a dump is read
 * on the machine that wrote it. */
constexpr unsigned char dumpMagic[8] = {'F', '4', 'T', 'F',
                                        'R', '\n', 0x1a, 0x00};
constexpr std::uint32_t dumpVersion = 1;

/* Cold-path state kept out of the header's Globals so the
 * signal-handler walk stays over trivially-safe fields only. */
std::mutex &
coldMutex()
{
    static std::mutex *mutex = new std::mutex;
    return *mutex;
}

std::atomic<std::uint32_t> nextThreadId{0};
std::atomic<std::uint32_t> nextDumpSeq{0};

bool
writeAll(int fd, const void *buf, std::size_t len)
{
    const char *p = static_cast<const char *>(buf);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeU32(int fd, std::uint32_t v)
{
    return writeAll(fd, &v, sizeof v);
}

bool
writeU64(int fd, std::uint64_t v)
{
    return writeAll(fd, &v, sizeof v);
}

/* Async-signal-safe decimal formatter (signal path cannot snprintf). */
std::size_t
formatU64(char *out, std::uint64_t v)
{
    char tmp[24];
    std::size_t n = 0;
    do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v != 0);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = tmp[n - 1 - i];
    out[n] = '\0';
    return n;
}

/* Append src to dst at offset, bounded; returns new offset. */
std::size_t
appendStr(char *dst, std::size_t off, std::size_t cap, const char *src)
{
    while (*src != '\0' && off + 1 < cap)
        dst[off++] = *src++;
    dst[off] = '\0';
    return off;
}

/*
 * Write the live rings straight from the global tables. Every call in
 * here is async-signal-safe (write/strlen/atomic loads over fixed
 * storage), so the fatal-signal handler can use it directly.
 */
bool
writeLiveRawFd(int fd, const char *reason)
{
    detail::Globals &g = detail::globals();
    if (!writeAll(fd, dumpMagic, sizeof dumpMagic) ||
        !writeU32(fd, dumpVersion)) {
        return false;
    }
    std::size_t reason_len = std::strlen(reason);
    if (!writeU32(fd, static_cast<std::uint32_t>(reason_len)) ||
        !writeAll(fd, reason, reason_len)) {
        return false;
    }
    std::uint32_t modules =
        g.moduleCount.load(std::memory_order_acquire);
    if (!writeU32(fd, modules))
        return false;
    for (std::uint32_t m = 0; m < modules; ++m) {
        std::size_t len =
            ::strnlen(g.moduleNames[m], detail::maxModuleName);
        if (!writeU32(fd, static_cast<std::uint32_t>(len)) ||
            !writeAll(fd, g.moduleNames[m], len)) {
            return false;
        }
    }
    std::uint32_t rings = g.ringCount.load(std::memory_order_acquire);
    if (!writeU32(fd, rings))
        return false;
    for (std::uint32_t r = 0; r < rings; ++r) {
        detail::Ring *ring = g.rings[r];
        std::uint64_t total = ring->head.load(std::memory_order_relaxed);
        std::uint64_t start = total > ringCapacity ? total - ringCapacity : 0;
        std::uint32_t count = static_cast<std::uint32_t>(total - start);
        if (!writeU32(fd, ring->threadId) || !writeU64(fd, total) ||
            !writeU32(fd, count)) {
            return false;
        }
        for (std::uint64_t i = start; i < total; ++i) {
            const Record &rec = ring->slots[i & (ringCapacity - 1)];
            if (!writeAll(fd, &rec, sizeof rec))
                return false;
        }
    }
    return true;
}

bool
writeSnapshotFd(int fd, const Snapshot &snap, const std::string &reason)
{
    if (!writeAll(fd, dumpMagic, sizeof dumpMagic) ||
        !writeU32(fd, dumpVersion)) {
        return false;
    }
    if (!writeU32(fd, static_cast<std::uint32_t>(reason.size())) ||
        !writeAll(fd, reason.data(), reason.size())) {
        return false;
    }
    if (!writeU32(fd, static_cast<std::uint32_t>(snap.modules.size())))
        return false;
    for (const std::string &name : snap.modules) {
        if (!writeU32(fd, static_cast<std::uint32_t>(name.size())) ||
            !writeAll(fd, name.data(), name.size())) {
            return false;
        }
    }
    if (!writeU32(fd, static_cast<std::uint32_t>(snap.rings.size())))
        return false;
    for (const Snapshot::RingCopy &ring : snap.rings) {
        if (!writeU32(fd, ring.threadId) ||
            !writeU64(fd, ring.totalWritten) ||
            !writeU32(fd,
                      static_cast<std::uint32_t>(ring.records.size()))) {
            return false;
        }
        if (!ring.records.empty() &&
            !writeAll(fd, ring.records.data(),
                      ring.records.size() * sizeof(Record))) {
            return false;
        }
    }
    return true;
}

const char *
dumpDir()
{
    const char *dir = std::getenv("F4T_DUMP_DIR");
    return dir != nullptr && dir[0] != '\0' ? dir : ".";
}

/*
 * The shared failure funnel: first caller wins, everything here is
 * async-signal-safe. Prints the dump path (or nothing on failure) so
 * CI logs point straight at the artifact.
 */
void
dumpOnFailureC(const char *reason)
{
    detail::Globals &g = detail::globals();
    bool expected = false;
    if (!g.dumpedOnFailure.compare_exchange_strong(expected, true))
        return;
    if (!g.enabled.load(std::memory_order_relaxed))
        return;
    char path[512];
    std::size_t off = appendStr(path, 0, sizeof path, dumpDir());
    off = appendStr(path, off, sizeof path, "/f4t-crash-");
    char pid[24];
    formatU64(pid, static_cast<std::uint64_t>(::getpid()));
    off = appendStr(path, off, sizeof path, pid);
    appendStr(path, off, sizeof path, ".f4tfr");
    int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return;
    bool ok = writeLiveRawFd(fd, reason);
    ::close(fd);
    if (ok) {
        const char prefix[] = "flight recorder: dumped ";
        (void)!::write(2, prefix, sizeof prefix - 1);
        (void)!::write(2, path, std::strlen(path));
        (void)!::write(2, "\n", 1);
    }
}

void
fatalSignalHandler(int sig)
{
    const char *name = "fatal signal";
    switch (sig) {
    case SIGSEGV: name = "fatal signal SIGSEGV"; break;
    case SIGABRT: name = "fatal signal SIGABRT"; break;
    case SIGBUS: name = "fatal signal SIGBUS"; break;
    case SIGFPE: name = "fatal signal SIGFPE"; break;
    default: break;
    }
    dumpOnFailureC(name);
    /* SA_RESETHAND restored the default disposition; re-deliver. */
    ::raise(sig);
}

// --- watchdog -----------------------------------------------------------

struct Watchdog
{
    std::mutex mutex;
    std::condition_variable cv;
    bool threadStarted = false;
    bool armed = false;
    std::uint64_t generation = 0;
    double timeoutSecs = 0;
    std::function<void()> hook;
    std::atomic<bool> fired{false};
};

Watchdog &
watchdog()
{
    static Watchdog *dog = new Watchdog;
    return *dog;
}

void
watchdogLoop()
{
    Watchdog &dog = watchdog();
    detail::Globals &g = detail::globals();
    std::unique_lock<std::mutex> lock(dog.mutex);
    for (;;) {
        dog.cv.wait(lock, [&] { return dog.armed; });
        std::uint64_t my_generation = dog.generation;
        double timeout = dog.timeoutSecs;
        auto poll = std::chrono::duration<double>(
            std::min(timeout / 4.0, 0.25));
        std::uint64_t last_beat =
            g.heartbeat.load(std::memory_order_relaxed);
        auto last_change = std::chrono::steady_clock::now();
        while (dog.armed && dog.generation == my_generation) {
            dog.cv.wait_for(lock, poll);
            if (!dog.armed || dog.generation != my_generation)
                break;
            std::uint64_t beat_now =
                g.heartbeat.load(std::memory_order_relaxed);
            auto now = std::chrono::steady_clock::now();
            if (beat_now != last_beat) {
                last_beat = beat_now;
                last_change = now;
                continue;
            }
            if (std::chrono::duration<double>(now - last_change).count() <
                timeout) {
                continue;
            }
            dog.armed = false;
            dog.fired.store(true, std::memory_order_release);
            std::function<void()> hook = dog.hook;
            lock.unlock();
            if (hook) {
                hook();
            } else {
                char reason[128];
                std::size_t off = appendStr(
                    reason, 0, sizeof reason,
                    "watchdog: no event progress for ");
                char secs[24];
                formatU64(secs,
                          static_cast<std::uint64_t>(timeout + 0.5));
                off = appendStr(reason, off, sizeof reason, secs);
                appendStr(reason, off, sizeof reason, "s");
                dumpOnFailureC(reason);
                std::abort();
            }
            lock.lock();
            break;
        }
    }
}

/* Runtime gate + fatal-signal handlers come up with the process, not
 * with any particular harness, so release binaries are covered too. */
struct EnvInit
{
    EnvInit()
    {
        const char *env = std::getenv("F4T_FLIGHT_RECORDER");
        if (env != nullptr && std::strcmp(env, "0") == 0) {
            detail::globals().enabled.store(false,
                                            std::memory_order_relaxed);
        }
        installSignalHandlers();
    }
};
EnvInit envInit;

} // namespace

namespace detail
{

Globals &
globals()
{
    /* Immortal: dumps can run from atexit/signal context after
     * function-local statics would have been destroyed. */
    static Globals *g = new Globals;
    return *g;
}

Ring &
threadRingSlow()
{
    auto *ring = new Ring; /* leaked: dumps outlive the thread */
    ring->threadId = nextThreadId.fetch_add(1, std::memory_order_relaxed);
    Globals &g = globals();
    std::lock_guard<std::mutex> lock(coldMutex());
    std::uint32_t count = g.ringCount.load(std::memory_order_relaxed);
    if (count < maxRings) {
        g.rings[count] = ring;
        g.ringCount.store(count + 1, std::memory_order_release);
    }
    return *ring;
}

} // namespace detail

const char *
toString(Kind kind)
{
    switch (kind) {
    case Kind::none: return "none";
    case Kind::evDispatch: return "ev_dispatch";
    case Kind::fpcUserSend: return "fpc_user_send";
    case Kind::fpcUserRecv: return "fpc_user_recv";
    case Kind::fpcUserConnect: return "fpc_user_connect";
    case Kind::fpcUserClose: return "fpc_user_close";
    case Kind::fpcRxSegment: return "fpc_rx_segment";
    case Kind::fpcTimeout: return "fpc_timeout";
    case Kind::fpcInstall: return "fpc_install";
    case Kind::fpcEvict: return "fpc_evict";
    case Kind::schedMigrate: return "sched_migrate";
    case Kind::schedEvict: return "sched_evict";
    case Kind::linkTx: return "link_tx";
    case Kind::linkFault: return "link_fault";
    case Kind::switchEnqueue: return "switch_enqueue";
    case Kind::switchDrop: return "switch_drop";
    case Kind::switchForward: return "switch_forward";
    case Kind::pcieDma: return "pcie_dma";
    case Kind::pcieDoorbell: return "pcie_doorbell";
    case Kind::parBarrier: return "par_barrier";
    case Kind::mailboxSpill: return "mailbox_spill";
    case Kind::mark: return "mark";
    case Kind::numKinds: break;
    }
    return "unknown";
}

void
setEnabled(bool on)
{
    detail::globals().enabled.store(on, std::memory_order_relaxed);
}

std::uint16_t
internModule(std::string_view name)
{
    detail::Globals &g = detail::globals();
    std::lock_guard<std::mutex> lock(coldMutex());
    std::uint32_t count = g.moduleCount.load(std::memory_order_relaxed);
    std::size_t len = std::min(name.size(), detail::maxModuleName - 1);
    for (std::uint32_t m = 0; m < count; ++m) {
        if (::strnlen(g.moduleNames[m], detail::maxModuleName) == len &&
            std::memcmp(g.moduleNames[m], name.data(), len) == 0) {
            return static_cast<std::uint16_t>(m);
        }
    }
    if (count >= detail::maxModules)
        return 0;
    std::memcpy(g.moduleNames[count], name.data(), len);
    g.moduleNames[count][len] = '\0';
    g.moduleCount.store(count + 1, std::memory_order_release);
    return static_cast<std::uint16_t>(count);
}

Snapshot
snapshot()
{
    detail::Globals &g = detail::globals();
    Snapshot snap;
    std::uint32_t modules = g.moduleCount.load(std::memory_order_acquire);
    snap.modules.reserve(modules);
    for (std::uint32_t m = 0; m < modules; ++m) {
        snap.modules.emplace_back(
            g.moduleNames[m],
            ::strnlen(g.moduleNames[m], detail::maxModuleName));
    }
    std::uint32_t rings = g.ringCount.load(std::memory_order_acquire);
    for (std::uint32_t r = 0; r < rings; ++r) {
        detail::Ring *ring = g.rings[r];
        Snapshot::RingCopy copy;
        copy.threadId = ring->threadId;
        copy.totalWritten = ring->head.load(std::memory_order_relaxed);
        std::uint64_t start = copy.totalWritten > ringCapacity
                                  ? copy.totalWritten - ringCapacity
                                  : 0;
        copy.records.reserve(
            static_cast<std::size_t>(copy.totalWritten - start));
        for (std::uint64_t i = start; i < copy.totalWritten; ++i)
            copy.records.push_back(ring->slots[i & (ringCapacity - 1)]);
        snap.rings.push_back(std::move(copy));
    }
    return snap;
}

void
clear()
{
    detail::Globals &g = detail::globals();
    std::uint32_t rings = g.ringCount.load(std::memory_order_acquire);
    for (std::uint32_t r = 0; r < rings; ++r)
        g.rings[r]->head.store(0, std::memory_order_relaxed);
}

bool
writeSnapshot(const Snapshot &snap, const std::string &path,
              const std::string &reason)
{
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    bool ok = writeSnapshotFd(fd, snap, reason);
    ::close(fd);
    return ok;
}

bool
dumpToFile(const std::string &path, const std::string &reason)
{
    return writeSnapshot(snapshot(), path, reason);
}

std::string
dumpNow(const std::string &reason)
{
    if (!enabled())
        return {};
    std::uint32_t seq =
        nextDumpSeq.fetch_add(1, std::memory_order_relaxed);
    std::string path = std::string(dumpDir()) + "/f4t-" +
                       std::to_string(::getpid()) + "-" +
                       std::to_string(seq) + ".f4tfr";
    return dumpToFile(path, reason) ? path : std::string();
}

void
dumpOnFailure(const std::string &reason)
{
    dumpOnFailureC(reason.c_str());
}

void
installSignalHandlers()
{
    static std::atomic<bool> installed{false};
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true))
        return;
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = fatalSignalHandler;
    /* One shot: the handler re-raises into the restored default
     * disposition so exit codes and core dumps look untouched. */
    action.sa_flags = SA_RESETHAND | SA_NODEFER;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGSEGV, &action, nullptr);
    ::sigaction(SIGABRT, &action, nullptr);
    ::sigaction(SIGBUS, &action, nullptr);
    ::sigaction(SIGFPE, &action, nullptr);
}

void
armWatchdog(double seconds, std::function<void()> on_stall)
{
    if (seconds <= 0)
        return;
    Watchdog &dog = watchdog();
    std::lock_guard<std::mutex> lock(dog.mutex);
    if (!dog.threadStarted) {
        dog.threadStarted = true;
        std::thread(watchdogLoop).detach();
    }
    dog.armed = true;
    ++dog.generation;
    dog.timeoutSecs = seconds;
    dog.hook = std::move(on_stall);
    dog.fired.store(false, std::memory_order_relaxed);
    /* The arm itself counts as progress. */
    beat();
    dog.cv.notify_all();
}

void
disarmWatchdog()
{
    Watchdog &dog = watchdog();
    std::lock_guard<std::mutex> lock(dog.mutex);
    dog.armed = false;
    ++dog.generation;
    dog.hook = nullptr;
    dog.cv.notify_all();
}

bool
watchdogFired()
{
    return watchdog().fired.load(std::memory_order_acquire);
}

double
defaultWatchdogSeconds()
{
    static double secs = [] {
        const char *env = std::getenv("F4T_WATCHDOG_SECS");
        if (env == nullptr || env[0] == '\0')
            return 120.0;
        return std::strtod(env, nullptr);
    }();
    return secs;
}

// --- decoder ------------------------------------------------------------

namespace
{

bool
readExact(std::FILE *f, void *buf, std::size_t len)
{
    return std::fread(buf, 1, len, f) == len;
}

bool
readU32(std::FILE *f, std::uint32_t &v)
{
    return readExact(f, &v, sizeof v);
}

bool
readU64(std::FILE *f, std::uint64_t &v)
{
    return readExact(f, &v, sizeof v);
}

bool
readString(std::FILE *f, std::string &out, std::uint32_t max_len)
{
    std::uint32_t len;
    if (!readU32(f, len) || len > max_len)
        return false;
    out.resize(len);
    return len == 0 || readExact(f, out.data(), len);
}

} // namespace

bool
readDump(const std::string &path, Snapshot &snap_out,
         std::string &reason_out, std::string &error_out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        error_out = "cannot open " + path;
        return false;
    }
    auto fail = [&](const char *what) {
        error_out = std::string(what) + " in " + path;
        std::fclose(f);
        return false;
    };
    unsigned char magic[8];
    if (!readExact(f, magic, sizeof magic) ||
        std::memcmp(magic, dumpMagic, sizeof magic) != 0) {
        return fail("bad magic");
    }
    std::uint32_t version;
    if (!readU32(f, version) || version != dumpVersion)
        return fail("unsupported version");
    if (!readString(f, reason_out, 1u << 20))
        return fail("bad reason string");
    std::uint32_t modules;
    if (!readU32(f, modules) || modules > detail::maxModules)
        return fail("bad module count");
    snap_out.modules.clear();
    snap_out.modules.reserve(modules);
    for (std::uint32_t m = 0; m < modules; ++m) {
        std::string name;
        if (!readString(f, name, detail::maxModuleName))
            return fail("bad module name");
        snap_out.modules.push_back(std::move(name));
    }
    std::uint32_t rings;
    if (!readU32(f, rings) || rings > detail::maxRings)
        return fail("bad ring count");
    snap_out.rings.clear();
    snap_out.rings.reserve(rings);
    for (std::uint32_t r = 0; r < rings; ++r) {
        Snapshot::RingCopy ring;
        std::uint32_t count;
        if (!readU32(f, ring.threadId) ||
            !readU64(f, ring.totalWritten) || !readU32(f, count) ||
            count > ringCapacity) {
            return fail("bad ring header");
        }
        ring.records.resize(count);
        if (count > 0 &&
            !readExact(f, ring.records.data(), count * sizeof(Record))) {
            return fail("truncated ring");
        }
        snap_out.rings.push_back(std::move(ring));
    }
    std::fclose(f);
    return true;
}

std::vector<TimelineEntry>
mergeTimeline(const Snapshot &snap)
{
    std::vector<TimelineEntry> timeline;
    std::size_t total = 0;
    for (const Snapshot::RingCopy &ring : snap.rings)
        total += ring.records.size();
    timeline.reserve(total);
    for (const Snapshot::RingCopy &ring : snap.rings) {
        for (const Record &rec : ring.records)
            timeline.push_back(TimelineEntry{rec, ring.threadId});
    }
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const TimelineEntry &a, const TimelineEntry &b) {
                         return a.rec.tick < b.rec.tick;
                     });
    return timeline;
}

std::string
formatEntry(const Snapshot &snap, const TimelineEntry &entry)
{
    const Record &rec = entry.rec;
    const char *module = rec.module < snap.modules.size()
                             ? snap.modules[rec.module].c_str()
                             : "?";
    Kind kind = rec.kind < static_cast<std::uint8_t>(Kind::numKinds)
                    ? static_cast<Kind>(rec.kind)
                    : Kind::none;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "@%-14llu t%-3u %-22s %-15s flow=%08x a=%llu b=%llu",
                  static_cast<unsigned long long>(rec.tick),
                  entry.threadId, module, toString(kind), rec.flow,
                  static_cast<unsigned long long>(rec.a),
                  static_cast<unsigned long long>(rec.b));
    return buf;
}

} // namespace f4t::sim::fr
