/**
 * @file
 * Status and error reporting helpers, following the gem5 conventions:
 *
 *  - panic():  something happened that can never happen unless the
 *              simulator itself is broken; aborts.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits cleanly.
 *  - warn():   some functionality may not behave as expected.
 *  - inform(): normal operating status.
 */

#ifndef F4T_SIM_LOGGING_HH
#define F4T_SIM_LOGGING_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace f4t::sim
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Thread-local current-simulation hook. While a Simulation is alive on
 * the constructing thread, warn()/inform() prefix messages with its
 * current tick so interleaved logs are orderable, and the trace layer
 * (sim/trace.hh) stamps tracepoints without threading a Simulation
 * reference through every call site. Registrations form a stack: the
 * most recently constructed Simulation wins, and destroying it exposes
 * the one below (tests routinely run several simulations in one
 * process). The stack is thread-local, so partition workers never race
 * on it; the parallel executor (sim/parallel.hh) pushes a partition's
 * Simulation onto its worker's stack for the duration of each window.
 */
using TickFn = std::uint64_t (*)(const void *owner);
void pushCurrentSim(const void *owner, TickFn now_fn);
void popCurrentSim(const void *owner);
/** @return true and fill @p tick_out when a simulation is active. */
bool currentSimTick(std::uint64_t &tick_out);

} // namespace detail

/** Enable or disable inform() output globally (benchmarks silence it). */
void setVerbose(bool verbose);
bool verbose();

#define f4t_panic(...) \
    ::f4t::sim::detail::panicImpl(__FILE__, __LINE__, \
                                  ::f4t::sim::detail::format(__VA_ARGS__))

#define f4t_fatal(...) \
    ::f4t::sim::detail::fatalImpl(__FILE__, __LINE__, \
                                  ::f4t::sim::detail::format(__VA_ARGS__))

#define f4t_warn(...) \
    ::f4t::sim::detail::warnImpl(::f4t::sim::detail::format(__VA_ARGS__))

#define f4t_inform(...) \
    ::f4t::sim::detail::informImpl(::f4t::sim::detail::format(__VA_ARGS__))

/** panic() unless the invariant holds. */
#define f4t_assert(cond, ...)                                             \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::f4t::sim::detail::panicImpl(                                \
                __FILE__, __LINE__,                                       \
                std::string("assertion failed: " #cond " — ") +           \
                    ::f4t::sim::detail::format(__VA_ARGS__));             \
        }                                                                 \
    } while (0)

} // namespace f4t::sim

#endif // F4T_SIM_LOGGING_HH
