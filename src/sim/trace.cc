#include "trace.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>

#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace f4t::sim::trace
{

namespace
{

std::FILE *traceOut = nullptr; // nullptr = stderr (resolved at emit time)

std::function<void(Simulation &)> simCreatedObserver;
std::function<void(Simulation &)> simDestroyedObserver;

std::FILE *
out()
{
    return traceOut ? traceOut : stderr;
}

/** JSON string escaping for names and track labels. */
std::string
jsonEscape(const std::string &s)
{
    std::string result;
    result.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': result += "\\\""; break;
          case '\\': result += "\\\\"; break;
          case '\n': result += "\\n"; break;
          case '\t': result += "\\t"; break;
          case '\r': result += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                result += buf;
            } else {
                result += c;
            }
        }
    }
    return result;
}

/** Does any positive token match, with no negative token matching? */
bool
specSelects(const std::string &spec, const std::string &name)
{
    bool selected = false;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find_first_of(", ", pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string token = spec.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty())
            continue;
        bool negate = token[0] == '-';
        if (negate)
            token.erase(0, 1);
        if (!token.empty() && globMatch(token.c_str(), name.c_str()))
            selected = !negate;
    }
    return selected;
}

/* Flag selection from the environment happens once, before main(), so
 * F4T_TRACE=Fpc works on any binary without CLI support. */
[[maybe_unused]] const bool envInitialized = [] {
    if (const char *spec = std::getenv("F4T_TRACE")) {
        if (*spec != '\0')
            setFlags(spec);
    }
    return true;
}();

} // namespace

namespace detail
{

bool flagState[numFlags] = {};

void
emit(Flag flag, const std::string &msg)
{
    std::uint64_t tick;
    if (sim::detail::currentSimTick(tick))
        std::fprintf(out(), "%12llu: %s: %s\n",
                     static_cast<unsigned long long>(tick), toString(flag),
                     msg.c_str());
    else
        std::fprintf(out(), "%12s: %s: %s\n", "-", toString(flag),
                     msg.c_str());
}

void
emitWithClock(Flag flag, const ClockDomain &domain, const std::string &msg)
{
    std::uint64_t tick = 0;
    sim::detail::currentSimTick(tick);
    std::fprintf(out(), "%12llu: [%s c%llu] %s: %s\n",
                 static_cast<unsigned long long>(tick),
                 domain.name().c_str(),
                 static_cast<unsigned long long>(domain.curCycle()),
                 toString(flag), msg.c_str());
}

void
notifySimulationCreated(Simulation &sim)
{
    if (simCreatedObserver)
        simCreatedObserver(sim);
}

void
notifySimulationDestroyed(Simulation &sim)
{
    if (simDestroyedObserver)
        simDestroyedObserver(sim);
}

} // namespace detail

const char *
toString(Flag flag)
{
    switch (flag) {
      case Flag::Engine: return "Engine";
      case Flag::Fpc: return "Fpc";
      case Flag::Scheduler: return "Scheduler";
      case Flag::RxParser: return "RxParser";
      case Flag::PacketGenerator: return "PacketGenerator";
      case Flag::MemoryManager: return "MemoryManager";
      case Flag::HostIf: return "HostIf";
      case Flag::Pcie: return "Pcie";
      case Flag::Link: return "Link";
      case Flag::SoftTcp: return "SoftTcp";
      case Flag::Timer: return "Timer";
      case Flag::numFlags: break;
    }
    return "?";
}

bool
globMatch(const char *pattern, const char *text)
{
    // Iterative glob with single-star backtracking; case-insensitive.
    const char *star = nullptr;
    const char *starText = nullptr;
    const char *p = pattern;
    const char *t = text;
    auto lower = [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    };
    while (*t != '\0') {
        if (*p == '*') {
            star = p++;
            starText = t;
        } else if (*p == '?' || lower(*p) == lower(*t)) {
            ++p;
            ++t;
        } else if (star != nullptr) {
            p = star + 1;
            t = ++starText;
        } else {
            return false;
        }
    }
    while (*p == '*')
        ++p;
    return *p == '\0';
}

std::size_t
setFlags(const std::string &spec)
{
    std::size_t changes = 0;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find_first_of(", ", pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string token = spec.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty())
            continue;
        bool value = true;
        if (token[0] == '-') {
            value = false;
            token.erase(0, 1);
        }
        if (token.empty())
            continue;
        bool matched = false;
        for (unsigned i = 0; i < numFlags; ++i) {
            if (globMatch(token.c_str(),
                          toString(static_cast<Flag>(i)))) {
                matched = true;
                if (detail::flagState[i] != value) {
                    detail::flagState[i] = value;
                    ++changes;
                }
            }
        }
        if (!matched)
            f4t_warn("trace: pattern '%s' matches no flag (try '*')",
                     token.c_str());
    }
    return changes;
}

void
clearFlags()
{
    for (bool &state : detail::flagState)
        state = false;
}

void
setOutput(std::FILE *out_file)
{
    traceOut = out_file;
}

void
setSimulationObservers(std::function<void(Simulation &)> on_created,
                       std::function<void(Simulation &)> on_destroyed)
{
    simCreatedObserver = std::move(on_created);
    simDestroyedObserver = std::move(on_destroyed);
}

// --- TraceEventSink ---------------------------------------------------------

std::uint32_t
TraceEventSink::trackId(const std::string &track)
{
    auto it = trackIds_.find(track);
    if (it != trackIds_.end())
        return it->second;
    trackNames_.push_back(track);
    std::uint32_t id = static_cast<std::uint32_t>(trackNames_.size());
    trackIds_.emplace(track, id);
    return id;
}

bool
TraceEventSink::full()
{
    if (events_.size() < maxEvents_)
        return false;
    ++dropped_;
    return true;
}

void
TraceEventSink::span(const std::string &track, const char *category,
                     std::string name, Tick start, Tick end)
{
    if (full())
        return;
    Tick dur = end > start ? end - start : 0;
    events_.push_back(TraceEvent{'X', trackId(track), category,
                                 std::move(name), start, dur, 0.0});
}

void
TraceEventSink::instant(const std::string &track, const char *category,
                        std::string name, Tick at)
{
    if (full())
        return;
    events_.push_back(TraceEvent{'i', trackId(track), category,
                                 std::move(name), at, 0, 0.0});
}

void
TraceEventSink::counter(const std::string &track, std::string name, Tick at,
                        double value)
{
    if (full())
        return;
    events_.push_back(TraceEvent{'C', trackId(track), nullptr,
                                 std::move(name), at, 0, value});
}

void
TraceEventSink::write(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    const char *sep = "\n ";
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        os << sep << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << (t + 1)
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(trackNames_[t]) << "\"}}";
        sep = ",\n ";
    }
    char num[48];
    for (const TraceEvent &ev : events_) {
        // Trace-event timestamps are microseconds; one tick (1 ps) is
        // 1e-6 us, so six decimals preserve full tick resolution.
        std::snprintf(num, sizeof num, "%.6f",
                      static_cast<double>(ev.ts) * 1e-6);
        os << sep << "{\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":"
           << ev.tid << ",\"ts\":" << num << ",\"name\":\""
           << jsonEscape(ev.name) << "\"";
        if (ev.category != nullptr)
            os << ",\"cat\":\"" << jsonEscape(ev.category) << "\"";
        switch (ev.phase) {
          case 'X':
            std::snprintf(num, sizeof num, "%.6f",
                          static_cast<double>(ev.dur) * 1e-6);
            os << ",\"dur\":" << num;
            break;
          case 'i':
            os << ",\"s\":\"t\"";
            break;
          case 'C':
            std::snprintf(num, sizeof num, "%.10g", ev.value);
            os << ",\"args\":{\"value\":" << num << "}";
            break;
          default:
            break;
        }
        os << "}";
        sep = ",\n ";
    }
    if (dropped_ > 0) {
        // The buffer overflowed: instead of a silently truncated
        // timeline, the document ends with a counter record carrying
        // the drop count, timestamped at the last retained event.
        Tick last = events_.empty() ? 0 : events_.back().ts;
        std::snprintf(num, sizeof num, "%.6f",
                      static_cast<double>(last) * 1e-6);
        os << sep
           << "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":" << num
           << ",\"name\":\"trace.droppedEvents\",\"cat\":\"meta\","
              "\"args\":{\"value\":"
           << dropped_ << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool
TraceEventSink::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        f4t_warn("trace: cannot write timeline '%s'", path.c_str());
        return false;
    }
    write(os);
    return os.good();
}

// --- StatSampler ------------------------------------------------------------

StatSampler::StatSampler(Simulation &sim, Tick interval)
    : sim_(sim), interval_(interval)
{
    f4t_assert(interval_ > 0, "stat sampler needs a positive interval");
}

StatSampler::~StatSampler()
{
    stop();
    if (csv_ != nullptr)
        std::fclose(csv_);
}

void
StatSampler::addProbe(std::string column, std::function<double()> fn)
{
    f4t_assert(!columnsResolved_,
               "stat sampler probes must be added before the first sample");
    probes_.push_back(Probe{std::move(column), std::move(fn)});
}

void
StatSampler::start()
{
    if (!event_.scheduled())
        sim_.queue().schedule(&event_, sim_.now() + interval_);
}

void
StatSampler::stop()
{
    if (event_.scheduled())
        sim_.queue().deschedule(&event_);
}

void
StatSampler::resolveColumns()
{
    columnsResolved_ = true;
    sim_.stats().forEach([this](const StatBase &stat) {
        if (specSelects(statSpec_, stat.name()))
            statColumns_.push_back(stat.name());
    });
    if (csvPath_.empty())
        return;
    csv_ = std::fopen(csvPath_.c_str(), "w");
    if (csv_ == nullptr) {
        f4t_warn("trace: cannot write stat samples '%s'", csvPath_.c_str());
        return;
    }
    std::fprintf(csv_, "tick_ps,time_us");
    for (const std::string &column : statColumns_)
        std::fprintf(csv_, ",%s", column.c_str());
    for (const Probe &probe : probes_)
        std::fprintf(csv_, ",%s", probe.column.c_str());
    std::fputc('\n', csv_);
}

void
StatSampler::sample()
{
    if (!columnsResolved_)
        resolveColumns();
    ++samples_;
    if (csv_ != nullptr) {
        Tick now = sim_.now();
        std::fprintf(csv_, "%llu,%.3f",
                     static_cast<unsigned long long>(now),
                     static_cast<double>(now) * 1e-6);
        for (const std::string &column : statColumns_) {
            // Looked up fresh each fire: a module (and its stats) may
            // be destroyed mid-run; its column just goes empty.
            const StatBase *stat = sim_.stats().find(column);
            if (stat != nullptr)
                std::fprintf(csv_, ",%.10g", stat->sampleValue());
            else
                std::fputc(',', csv_);
        }
        for (const Probe &probe : probes_)
            std::fprintf(csv_, ",%.10g", probe.fn());
        std::fputc('\n', csv_);
    }
    if (!jsonPath_.empty()) {
        std::ofstream os(jsonPath_, std::ios::trunc);
        if (os)
            sim_.stats().dumpJson(os);
    }
    sim_.queue().schedule(&event_, sim_.now() + interval_);
}

} // namespace f4t::sim::trace
