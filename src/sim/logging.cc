#include "logging.hh"

#include "sim/flight_recorder.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>
#include <vector>

namespace f4t::sim
{

namespace
{

/* Atomic: read by every partition worker's inform() calls while a
 * harness thread may flip it. (The per-call fprintf is already
 * serialized by the C stream lock.) */
std::atomic<bool> verboseFlag{true};

struct SimHook
{
    const void *owner;
    detail::TickFn now;
};

/* Stack, not a single slot: tests and differential harnesses construct
 * several simulations in one process (sometimes overlapping), and the
 * innermost live one should stamp the logs. */
thread_local std::vector<SimHook> simHooks;

} // namespace

void
setVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

namespace detail
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return fmt;
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    // Black box first: the check message names the failing module and
    // flow, and the rings hold the last moments leading up to it. The
    // once-guard inside keeps the abort's SIGABRT handler from
    // writing a second dump.
    fr::dumpOnFailure("panic: " + msg + " (" + file + ":" +
                      std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
pushCurrentSim(const void *owner, TickFn now_fn)
{
    simHooks.push_back(SimHook{owner, now_fn});
}

void
popCurrentSim(const void *owner)
{
    std::erase_if(simHooks,
                  [owner](const SimHook &h) { return h.owner == owner; });
}

bool
currentSimTick(std::uint64_t &tick_out)
{
    if (simHooks.empty())
        return false;
    tick_out = simHooks.back().now(simHooks.back().owner);
    return true;
}

void
warnImpl(const std::string &msg)
{
    std::uint64_t tick;
    if (currentSimTick(tick))
        std::fprintf(stderr, "warn: @%llups: %s\n",
                     static_cast<unsigned long long>(tick), msg.c_str());
    else
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    std::uint64_t tick;
    if (currentSimTick(tick))
        std::fprintf(stdout, "info: @%llups: %s\n",
                     static_cast<unsigned long long>(tick), msg.c_str());
    else
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace f4t::sim
