/**
 * @file
 * Always-on flight recorder: a per-thread, fixed-capacity ring of
 * compact binary records capturing the simulator's last moments, and
 * the machinery that dumps those rings automatically at the point of
 * failure.
 *
 * Unlike every other observability sink in this codebase (trace flags,
 * pcap, timelines, `--profile`), the recorder is **not** behind a
 * compile gate: it is built into the release preset too, because its
 * whole purpose is post-failure forensics for runs that were never
 * expected to fail. The cost budget that makes always-on acceptable:
 *
 *  - hot path: one relaxed atomic load (the runtime gate), a handful
 *    of plain stores into a thread-local L2-resident ring slot, and a
 *    relaxed index bump. No locks, no CAS, no allocation, no
 *    branches that depend on ring contents.
 *  - runtime off (`F4T_FLIGHT_RECORDER=0` in the environment): one
 *    relaxed load and a predictable branch.
 *
 * The zero-cost claim is verified the same way the trace layer's was:
 * release fingerprints and BENCH_kernel.json `event_rate` stay inside
 * the committed-baseline band with the recorder compiled in and
 * enabled. The recorder never touches simulated state, so the
 * fingerprints (which mix simulated quantities only) are unchanged by
 * construction; the event rate is the measured half of the proof.
 *
 * Record format (32 bytes, fixed): tick (8), two payload words (8+8),
 * flow (4), module id (2), kind (1), pad (1). `flow` is
 * domain-specific: TCP-layer records (FPC, scheduler) carry the local
 * flow id; network-layer records carry a folded four-tuple hash; 0
 * means "no flow". Payload words carry kind-specific detail (bytes,
 * priorities, window numbers) — see Kind.
 *
 * Ring protocol: each thread owns one Ring, registered in a global
 * fixed-size table and intentionally leaked so a dump can outlive the
 * thread. The writer publishes with a relaxed head bump; readers
 * (dump paths) take a racy-but-harmless snapshot — a record being
 * overwritten mid-dump decodes as garbage for that one slot, which is
 * acceptable for forensics and keeps the writer wait-free. The module
 * name table and the ring table use fixed static storage with an
 * atomic count so the fatal-signal path can walk them without
 * touching the allocator or any lock.
 *
 * Dump triggers (each writes a versioned `.f4tfr` file):
 *  1. F4T_CHECK / audit failure — hooked into sim::detail::panicImpl.
 *  2. Fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) — handlers
 *     installed at static-init time, async-signal-safe write() path.
 *  3. Wall-clock watchdog — fires when no event progress (beat())
 *     happens for the armed timeout; catches parallel-kernel
 *     deadlocks that otherwise hang CI.
 *  4. Explicit API — dumpNow()/dumpToFile().
 *
 * Dumps land in $F4T_DUMP_DIR (default "."). tools/f4t_blackbox
 * decodes them; the decoder core lives here (readDump/mergeTimeline)
 * so tests can round-trip without spawning the tool.
 */

#ifndef F4T_SIM_FLIGHT_RECORDER_HH
#define F4T_SIM_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace f4t::sim::fr
{

/** Event kinds. Append only — the dump format stores raw values. */
enum class Kind : std::uint8_t
{
    none = 0,
    evDispatch,    ///< EventQueue::fire; a = event priority, b = seq no
    fpcUserSend,   ///< Fpc::handleEvent by TcpEventType; a = byte count
    fpcUserRecv,
    fpcUserConnect,
    fpcUserClose,
    fpcRxSegment,  ///< a = seq, b = payload bytes
    fpcTimeout,
    fpcInstall,    ///< TCB swap-in; a = slot
    fpcEvict,      ///< TCB writeback/eviction; a = slot
    schedMigrate,  ///< a = from FPC, b = to FPC
    schedEvict,    ///< a = FPC
    linkTx,        ///< serialization accepted; a = wire bytes
    linkFault,     ///< injected fault; a = FaultKind
    switchEnqueue, ///< a = egress port, b = queued bytes after
    switchDrop,    ///< shared-pool tail drop; a = egress port
    switchForward, ///< drain to egress; a = egress port, b = bytes
    pcieDma,       ///< a = bytes, b = direction (0 h2d, 1 d2h)
    pcieDoorbell,  ///< a = flow doorbell value
    parBarrier,    ///< window barrier; a = window seq, b = window end tick
    mailboxSpill,  ///< a = spill count delta
    mark,          ///< explicit marker (dump reasons, test probes)
    numKinds
};

/** Stable lower_snake name for decoder output. */
const char *toString(Kind kind);

/** One ring slot. Exactly 32 bytes; written raw into dumps. */
struct Record
{
    std::uint64_t tick;
    std::uint64_t a;
    std::uint64_t b;
    std::uint32_t flow;
    std::uint16_t module;
    std::uint8_t kind;
    std::uint8_t pad;
};

static_assert(sizeof(Record) == 32, "dump format assumes 32-byte records");

/** Records kept per thread (power of two; 4096 x 32 B = 128 KiB). */
constexpr std::size_t ringCapacity = 4096;

namespace detail
{

/** Per-thread ring. head counts records ever written; the slot for
 *  record n is slots[n & (ringCapacity - 1)]. */
struct Ring
{
    std::atomic<std::uint64_t> head{0};
    std::uint32_t threadId = 0;
    Record slots[ringCapacity];
};

/** Fixed-size tables the signal handler can walk without locks. */
constexpr std::size_t maxRings = 256;
constexpr std::size_t maxModules = 1024;
constexpr std::size_t maxModuleName = 48;

struct Globals
{
    std::atomic<bool> enabled{true};
    std::atomic<std::uint32_t> ringCount{0};
    Ring *rings[maxRings] = {};
    std::atomic<std::uint32_t> moduleCount{1}; ///< slot 0 = "kernel"
    char moduleNames[maxModules][maxModuleName] = {"kernel"};
    /** One dump per failure: panic and the SIGABRT it raises must not
     *  both write. */
    std::atomic<bool> dumpedOnFailure{false};
    /** Watchdog heartbeat: bumped by beat(), polled by the watchdog. */
    std::atomic<std::uint64_t> heartbeat{0};
};

Globals &globals();
Ring &threadRingSlow();

inline Ring &
threadRing()
{
    thread_local Ring *ring = &threadRingSlow();
    return *ring;
}

} // namespace detail

/** Runtime gate. Defaults on; F4T_FLIGHT_RECORDER=0 disables. */
inline bool
enabled()
{
    return detail::globals().enabled.load(std::memory_order_relaxed);
}

/** Flip the runtime gate (tests; env wins only at process start). */
void setEnabled(bool on);

/**
 * Intern @p name into the module table, returning its stable id.
 * Mutex-guarded cold path — call once at module construction and cache
 * the id. Returns 0 (the "kernel" module) when the table is full.
 */
std::uint16_t internModule(std::string_view name);

/**
 * The hot path: append one record to the calling thread's ring.
 * One relaxed load, plain stores, relaxed index bump — see file
 * comment for the cost contract.
 */
inline void
record(Kind kind, std::uint64_t tick, std::uint16_t module,
       std::uint32_t flow, std::uint64_t a = 0, std::uint64_t b = 0)
{
    if (!enabled())
        return;
    detail::Ring &ring = detail::threadRing();
    std::uint64_t head = ring.head.load(std::memory_order_relaxed);
    Record &slot = ring.slots[head & (ringCapacity - 1)];
    slot.tick = tick;
    slot.a = a;
    slot.b = b;
    slot.flow = flow;
    slot.module = module;
    slot.kind = static_cast<std::uint8_t>(kind);
    slot.pad = 0;
    ring.head.store(head + 1, std::memory_order_relaxed);
}

/** Watchdog heartbeat: cheap enough to call every few thousand events. */
inline void
beat()
{
    detail::globals().heartbeat.fetch_add(1, std::memory_order_relaxed);
}

// --- snapshots and dumps ------------------------------------------------

/** A racy-but-harmless copy of every ring plus the module table. */
struct Snapshot
{
    struct RingCopy
    {
        std::uint32_t threadId = 0;
        std::uint64_t totalWritten = 0;
        std::vector<Record> records; ///< oldest first
    };
    std::vector<std::string> modules;
    std::vector<RingCopy> rings;
};

/** Copy all rings now (no synchronization with writers — forensics). */
Snapshot snapshot();

/** Reset every ring (fuzz harness clears between worlds). */
void clear();

/** Write @p snap as a versioned .f4tfr file. */
bool writeSnapshot(const Snapshot &snap, const std::string &path,
                   const std::string &reason);

/** snapshot() + writeSnapshot(). */
bool dumpToFile(const std::string &path, const std::string &reason);

/**
 * Dump to $F4T_DUMP_DIR (default ".") under a generated name.
 * Returns the path, or an empty string on failure / recorder off.
 */
std::string dumpNow(const std::string &reason);

/**
 * The failure funnel: dump once per process (panic, audit, signal and
 * watchdog all arrive here), print the path to stderr, never throw.
 * Subsequent calls are no-ops so panic -> abort -> SIGABRT handler
 * does not double-dump.
 */
void dumpOnFailure(const std::string &reason);

/** Install SIGSEGV/SIGABRT/SIGBUS/SIGFPE handlers (idempotent;
 *  installed automatically at static-init time). */
void installSignalHandlers();

// --- watchdog -----------------------------------------------------------

/**
 * Arm the wall-clock watchdog: if beat() is not called for
 * @p seconds, @p on_stall runs once on the watchdog thread (default
 * hook: dumpOnFailure + abort, turning a CI hang into a dump and a
 * fast failure). The polling thread is spawned lazily and parked
 * while disarmed. Nested arms are not supported; the last arm wins.
 */
void armWatchdog(double seconds,
                 std::function<void()> on_stall = nullptr);

/** Disarm (healthy completion). */
void disarmWatchdog();

/** True once an armed watchdog has fired (tests). */
bool watchdogFired();

/** Watchdog timeout for parallel runs from $F4T_WATCHDOG_SECS
 *  (default 120; 0 disables). */
double defaultWatchdogSeconds();

// --- decoder core (shared by tools/f4t_blackbox and tests) --------------

/** Parse a .f4tfr file. Returns false (with @p error set) on any
 *  format problem. */
bool readDump(const std::string &path, Snapshot &snap_out,
              std::string &reason_out, std::string &error_out);

/** A record stamped with its source thread for merged timelines. */
struct TimelineEntry
{
    Record rec;
    std::uint32_t threadId;
};

/** Merge all rings into one tick-sorted timeline (stable: ring order
 *  breaks ties, so same-tick records keep their per-thread order). */
std::vector<TimelineEntry> mergeTimeline(const Snapshot &snap);

/** Human-readable one-liner for a merged record. */
std::string formatEntry(const Snapshot &snap, const TimelineEntry &entry);

} // namespace f4t::sim::fr

#endif // F4T_SIM_FLIGHT_RECORDER_HH
