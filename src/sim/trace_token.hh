/**
 * @file
 * The causal-trace token: a request identifier small enough to ride
 * inside every hand-off record of the data path (host Command, TcpEvent,
 * Packet) without changing behaviour.
 *
 * Zero-cost contract (same policy as trace.hh): under
 * F4T_ENABLE_TRACE=OFF the token is an empty struct — embedded with
 * [[no_unique_address]] it occupies no storage, every method is a
 * constant no-op, and the call sites guarded by
 * `if constexpr (sim::trace::compiledIn)` disappear entirely. The API
 * is identical in both modes so unguarded helper code (TcpEvent
 * coalescing, TokenSet plumbing) compiles either way.
 *
 * This header must stay dependency-light: it is included from
 * tcp/tcb.hh, host/command_queue.hh and net/packet.hh, which sit below
 * sim/simulation.hh in the include graph.
 */

#ifndef F4T_SIM_TRACE_TOKEN_HH
#define F4T_SIM_TRACE_TOKEN_HH

#include <cstdint>
#include <vector>

namespace f4t::sim::ctrace
{

#ifdef F4T_ENABLE_TRACE

/** Handle to one traced request; id 0 means "not traced". */
struct Token
{
    std::uint32_t id = 0;

    bool valid() const { return id != 0; }
    std::uint32_t idOr0() const { return id; }

    static Token make(std::uint32_t id) { return Token{id}; }
};

/**
 * A batch of tokens parked on a hardware structure (an FPC slot, an
 * issued FPU job, a migrating TCB). Events for one flow coalesce and
 * accumulate, so several requests can be "inside" one structure at
 * once.
 */
struct TokenSet
{
    std::vector<Token> toks;

    void
    add(Token t)
    {
        if (t.valid())
            toks.push_back(t);
    }

    void
    merge(TokenSet &&other)
    {
        for (Token t : other.toks)
            toks.push_back(t);
        other.toks.clear();
    }

    void
    mergeCopy(const TokenSet &other)
    {
        for (Token t : other.toks)
            toks.push_back(t);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (Token t : toks)
            fn(t);
    }

    bool empty() const { return toks.empty(); }
    void clear() { toks.clear(); }
};

#else // !F4T_ENABLE_TRACE

struct Token
{
    bool valid() const { return false; }
    std::uint32_t idOr0() const { return 0; }

    static Token make(std::uint32_t) { return {}; }
};

struct TokenSet
{
    void add(Token) {}
    void merge(TokenSet &&) {}
    void mergeCopy(const TokenSet &) {}

    template <typename Fn>
    void
    forEach(Fn &&) const
    {
    }

    bool empty() const { return true; }
    void clear() {}
};

#endif // F4T_ENABLE_TRACE

} // namespace f4t::sim::ctrace

#endif // F4T_SIM_TRACE_TOKEN_HH
