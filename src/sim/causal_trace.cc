#include "sim/causal_trace.hh"

#include <algorithm>
#include <cstdio>

namespace f4t::sim::ctrace
{

namespace
{

/** Microseconds for histogram samples (Tick is picoseconds). */
double
us(Tick t)
{
    return ticksToSeconds(t) * 1e6;
}

/** Wrapping sequence-space compare: a - b as a signed distance. */
std::int32_t
seqDelta(std::uint32_t a, std::uint32_t b)
{
    return static_cast<std::int32_t>(a - b);
}

/** Unwrap a 32-bit cumulative offset against a 64-bit reference. */
std::uint64_t
unwrap32(std::uint64_t reference, std::uint32_t value)
{
    std::int64_t result =
        static_cast<std::int64_t>(reference) +
        seqDelta(value, static_cast<std::uint32_t>(reference));
    return result >= 0 ? static_cast<std::uint64_t>(result) : value;
}

} // namespace

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::appQueue: return "appQueue";
      case Stage::doorbell: return "doorbell";
      case Stage::pcie: return "pcie";
      case Stage::fpcQueue: return "fpcQueue";
      case Stage::fpcExec: return "fpcExec";
      case Stage::wire: return "wire";
      case Stage::rxParse: return "rxParse";
      case Stage::upcall: return "upcall";
      case Stage::nStages: break;
    }
    return "?";
}

const Span *
Request::lastOpen(Stage stage) const
{
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
        if (it->stage == stage && it->open)
            return &*it;
    }
    return nullptr;
}

Span *
Request::lastOpen(Stage stage)
{
    return const_cast<Span *>(
        static_cast<const Request *>(this)->lastOpen(stage));
}

Tick
Request::sampledTotal() const
{
    Tick total = 0;
    for (const Span &span : spans) {
        if (!span.open && !span.abandoned)
            total += span.duration();
    }
    return total;
}

CausalTracer::CausalTracer(Simulation &sim, std::size_t keep_completed,
                           std::size_t max_live)
    : sim_(sim), keepCompleted_(keep_completed), maxLive_(max_live),
      started_(sim.stats(), "ctrace.requestsStarted",
               "traced requests allocated"),
      completedCount_(sim.stats(), "ctrace.requestsCompleted",
                      "traced requests delivered to the peer app"),
      aborted_(sim.stats(), "ctrace.requestsAborted",
               "traced requests whose flow died first"),
      outOfOrder_(sim.stats(), "ctrace.outOfOrderCloses",
                  "span closes with no matching open span"),
      duplicates_(sim.stats(), "ctrace.duplicateArrivals",
                  "stamped packets arriving with no open wire span"),
      coalesced_(sim.stats(), "ctrace.coalescedMerges",
                 "request events merged into an earlier queued event"),
      wireReentries_(sim.stats(), "ctrace.wireReentries",
                     "wire re-entries (retransmitted requests)"),
      abandonedSpans_(sim.stats(), "ctrace.abandonedSpans",
                      "spans left open at completion/abort (e.g. drops)"),
      overflow_(sim.stats(), "ctrace.overflowDropped",
                "requests not traced: live-request cap reached")
{
    for (std::size_t i = 0; i < numStages; ++i) {
        const char *stage = stageName(static_cast<Stage>(i));
        total_[i] = std::make_unique<Histogram>(
            sim.stats(), std::string("ctrace.") + stage + ".total",
            "stage latency, us");
        queue_[i] = std::make_unique<Histogram>(
            sim.stats(), std::string("ctrace.") + stage + ".queue",
            "stage queueing time, us");
        service_[i] = std::make_unique<Histogram>(
            sim.stats(), std::string("ctrace.") + stage + ".service",
            "stage service time, us");
    }
    e2e_ = std::make_unique<Histogram>(sim.stats(), "ctrace.e2e",
                                       "end-to-end request latency, us");
    sim_.setCausalTracer(this);
}

CausalTracer::~CausalTracer()
{
    if (sim_.causalTracer() == this)
        sim_.setCausalTracer(nullptr);
}

Request *
CausalTracer::get(Token t)
{
    if (!t.valid())
        return nullptr;
    auto it = live_.find(t.idOr0());
    return it == live_.end() ? nullptr : &it->second;
}

const Request *
CausalTracer::get(Token t) const
{
    return const_cast<CausalTracer *>(this)->get(t);
}

const Request *
CausalTracer::findLive(Token t) const
{
    return get(t);
}

const Request *
CausalTracer::slowestCompleted() const
{
    const Request *best = nullptr;
    for (const Request &r : completed_) {
        if (!r.aborted && (!best || r.latency() > best->latency()))
            best = &r;
    }
    return best;
}

void
CausalTracer::emitTimeline(const Request &req, const Span &span)
{
    trace::TraceEventSink *tl = sim_.timeline();
    if (!tl)
        return;
    char name[48];
    std::snprintf(name, sizeof(name), "req%u", req.id);
    tl->span(std::string("ctrace.") + stageName(span.stage), "ctrace",
             name, span.begin, span.end);
}

void
CausalTracer::closeAndSample(Request &req, Span &span, Tick at)
{
    span.end = at;
    span.open = false;
    total_[idx(span.stage)]->sample(us(span.duration()));
    queue_[idx(span.stage)]->sample(us(span.queueTime()));
    service_[idx(span.stage)]->sample(us(span.serviceTime()));
    emitTimeline(req, span);
}

Token
CausalTracer::beginRequest(const void *domain, std::uint32_t flow,
                           std::uint64_t target_offset, Tick at)
{
    if constexpr (!trace::compiledIn) {
        (void)domain, (void)flow, (void)target_offset, (void)at;
        return {};
    }
    if (live_.size() >= maxLive_) {
        ++overflow_;
        return {};
    }
    std::uint32_t id = nextId_++;
    if (nextId_ == 0)
        nextId_ = 1;

    Request req;
    req.id = id;
    req.senderDomain = domain;
    req.senderFlow = flow;
    req.targetOffset = target_offset;
    req.begin = at;
    req.spans.push_back(Span{Stage::appQueue, at, 0, 0, false, true, false});
    live_.emplace(id, std::move(req));
    senderIndex_[FlowKey{domain, flow}].push_back(id);
    ++started_;
    return Token::make(id);
}

void
CausalTracer::submitted(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(Stage::appQueue))
        closeAndSample(*req, *s, at);
    req->spans.push_back(Span{Stage::doorbell, at, 0, 0, false, true, false});
}

void
CausalTracer::fetched(Token t, Tick fetch_start, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(Stage::doorbell))
        closeAndSample(*req, *s, fetch_start);
    Span pcie{Stage::pcie, fetch_start, fetch_start, 0, true, true, false};
    req->spans.push_back(pcie);
    closeAndSample(*req, req->spans.back(), at);
}

void
CausalTracer::eventQueued(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    req->spans.push_back(Span{Stage::fpcQueue, at, 0, 0, false, true, false});
}

void
CausalTracer::setWireTarget(Token t, std::uint32_t seq)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    req->wireTarget = seq;
    req->wireTargetSet = true;
}

void
CausalTracer::coalescedInto(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(Stage::fpcQueue))
        closeAndSample(*req, *s, at);
    req->coalesced = true;
    ++coalesced_;
}

void
CausalTracer::absorbed(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(Stage::fpcQueue))
        closeAndSample(*req, *s, at);
    if (!req->hasOpen(Stage::fpcExec)) {
        req->spans.push_back(
            Span{Stage::fpcExec, at, 0, 0, false, true, false});
    }
}

void
CausalTracer::execStarted(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    markService(t, Stage::fpcExec, at);
}

void
CausalTracer::processed(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(Stage::fpcExec)) {
        closeAndSample(*req, *s, at);
    } else if (Span *q = req->lastOpen(Stage::fpcQueue)) {
        // DRAM-resident flow: the event was absorbed by the memory
        // manager, not an FPC input queue — the whole wait shows as
        // fpcQueue, closed when the merged TCB finally executes.
        closeAndSample(*req, *q, at);
    }
}

void
CausalTracer::wireQueued(const void *domain, std::uint32_t flow,
                         std::uint32_t from_seq, std::uint32_t to_seq,
                         Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    auto it = senderIndex_.find(FlowKey{domain, flow});
    if (it == senderIndex_.end())
        return;
    for (std::uint32_t id : it->second) {
        Request *req = get(Token::make(id));
        if (!req || req->done || !req->wireTargetSet)
            continue;
        if (seqDelta(req->wireTarget, from_seq) <= 0 ||
            seqDelta(to_seq, req->wireTarget) < 0) {
            continue;
        }
        if (Span *open = req->lastOpen(Stage::wire)) {
            // The previous copy never arrived (drop, or still in
            // flight at retransmit time): supersede it.
            open->end = at;
            open->open = false;
            open->abandoned = true;
            ++wireReentries_;
            ++abandonedSpans_;
        }
        req->spans.push_back(Span{Stage::wire, at, 0, 0, false, true, false});
        ++req->wireEntries;
    }
}

Token
CausalTracer::wireToken(const void *domain, std::uint32_t flow,
                        std::uint32_t seq, std::uint32_t payload_len) const
{
    if constexpr (!trace::compiledIn) {
        (void)domain, (void)flow, (void)seq, (void)payload_len;
        return {};
    }
    auto it = senderIndex_.find(FlowKey{domain, flow});
    if (it == senderIndex_.end())
        return {};
    const Request *best = nullptr;
    for (std::uint32_t id : it->second) {
        const Request *req = get(Token::make(id));
        if (!req || req->done || !req->wireTargetSet ||
            !req->hasOpen(Stage::wire)) {
            continue;
        }
        if (seqDelta(req->wireTarget, seq) <= 0 ||
            seqDelta(req->wireTarget, seq) >
                static_cast<std::int32_t>(payload_len)) {
            continue;
        }
        if (!best || seqDelta(req->wireTarget, best->wireTarget) > 0)
            best = req;
    }
    return best ? Token::make(best->id) : Token{};
}

void
CausalTracer::wireService(Token t, Tick tx_start)
{
    if constexpr (!trace::compiledIn)
        return;
    markService(t, Stage::wire, tx_start);
}

void
CausalTracer::arrivedRx(Token t, const void *peer_domain,
                        std::uint32_t peer_flow, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (!req->hasOpen(Stage::wire)) {
        // A duplicated packet (fault injection) carrying a token whose
        // wire span was already closed by the first copy.
        ++duplicates_;
        return;
    }
    // Cumulative arrival: everything this flow sent up to this
    // request's target byte is now at the peer.
    auto it = senderIndex_.find(
        FlowKey{req->senderDomain, req->senderFlow});
    if (it == senderIndex_.end())
        return;
    for (std::uint32_t id : it->second) {
        Request *covered = get(Token::make(id));
        if (!covered || covered->done ||
            covered->targetOffset > req->targetOffset) {
            continue;
        }
        if (Span *w = covered->lastOpen(Stage::wire))
            closeAndSample(*covered, *w, at);
        else if (covered->id != req->id)
            continue; // its own copy already arrived
        Span rx{Stage::rxParse, at, at, 0, true, true, false};
        covered->spans.push_back(rx);
        closeAndSample(*covered, covered->spans.back(), at);
        if (!covered->peerBound) {
            covered->peerBound = true;
            covered->peerDomain = peer_domain;
            covered->peerFlow = peer_flow;
            peerIndex_[FlowKey{peer_domain, peer_flow}].push_back(
                covered->id);
        }
    }
}

Token
CausalTracer::upcallPosted(const void *peer_domain, std::uint32_t peer_flow,
                           std::uint32_t offset32, Tick at)
{
    if constexpr (!trace::compiledIn) {
        (void)peer_domain, (void)peer_flow, (void)offset32, (void)at;
        return {};
    }
    FlowKey key{peer_domain, peer_flow};
    auto it = peerIndex_.find(key);
    if (it == peerIndex_.end())
        return {};
    std::uint64_t &ref = deliveredRef_[key];
    std::uint64_t offset = unwrap32(ref, offset32);
    if (offset > ref)
        ref = offset;

    const Request *best = nullptr;
    for (std::uint32_t id : it->second) {
        Request *req = get(Token::make(id));
        if (!req || req->done || req->targetOffset > offset)
            continue;
        if (!req->hasOpen(Stage::upcall)) {
            req->spans.push_back(
                Span{Stage::upcall, at, 0, 0, false, true, false});
        }
        if (!best || req->targetOffset > best->targetOffset)
            best = req;
    }
    return best ? Token::make(best->id) : Token{};
}

void
CausalTracer::upcallService(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    markService(t, Stage::upcall, at);
}

void
CausalTracer::delivered(Token t, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    std::vector<std::uint32_t> done_ids;
    if (req->peerBound) {
        auto it = peerIndex_.find(FlowKey{req->peerDomain, req->peerFlow});
        if (it != peerIndex_.end()) {
            for (std::uint32_t id : it->second) {
                Request *covered = get(Token::make(id));
                if (covered && !covered->done &&
                    covered->targetOffset <= req->targetOffset &&
                    covered->hasOpen(Stage::upcall)) {
                    done_ids.push_back(id);
                }
            }
        }
    }
    if (std::find(done_ids.begin(), done_ids.end(), req->id) ==
        done_ids.end()) {
        done_ids.push_back(req->id);
    }
    for (std::uint32_t id : done_ids) {
        Request *covered = get(Token::make(id));
        if (!covered)
            continue;
        if (Span *u = covered->lastOpen(Stage::upcall))
            closeAndSample(*covered, *u, at);
        finish(*covered, at);
        retire(id);
    }
}

void
CausalTracer::finish(Request &req, Tick at)
{
    req.done = true;
    req.end = at;
    for (Span &span : req.spans) {
        if (span.open) {
            span.open = false;
            span.end = at;
            span.abandoned = true;
            ++abandonedSpans_;
        }
    }
    e2e_->sample(us(req.latency()));
    ++completedCount_;
}

void
CausalTracer::abort(Request &req, Tick at)
{
    req.done = true;
    req.aborted = true;
    req.end = at;
    for (Span &span : req.spans) {
        if (span.open) {
            span.open = false;
            span.end = at;
            span.abandoned = true;
            ++abandonedSpans_;
        }
    }
    ++aborted_;
}

void
CausalTracer::retire(std::uint32_t id)
{
    auto it = live_.find(id);
    if (it == live_.end())
        return;
    Request &req = it->second;
    auto unindex = [id](std::map<FlowKey, std::vector<std::uint32_t>> &index,
                        FlowKey key) {
        auto vec = index.find(key);
        if (vec != index.end()) {
            std::erase(vec->second, id);
            if (vec->second.empty())
                index.erase(vec);
        }
    };
    unindex(senderIndex_, FlowKey{req.senderDomain, req.senderFlow});
    if (req.peerBound)
        unindex(peerIndex_, FlowKey{req.peerDomain, req.peerFlow});

    completed_.push_back(std::move(req));
    if (completed_.size() > keepCompleted_)
        completed_.pop_front();
    live_.erase(it);
}

void
CausalTracer::flowAborted(const void *domain, std::uint32_t flow, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    std::vector<std::uint32_t> ids;
    for (auto *index : {&senderIndex_, &peerIndex_}) {
        auto it = index->find(FlowKey{domain, flow});
        if (it != index->end())
            ids.insert(ids.end(), it->second.begin(), it->second.end());
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    for (std::uint32_t id : ids) {
        Request *req = get(Token::make(id));
        if (!req || req->done)
            continue;
        abort(*req, at);
        retire(id);
    }
}

void
CausalTracer::openSpan(Token t, Stage stage, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    req->spans.push_back(Span{stage, at, 0, 0, false, true, false});
}

void
CausalTracer::markService(Token t, Stage stage, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    if (Span *s = req->lastOpen(stage)) {
        s->serviceBegin = at;
        s->serviceSet = true;
    }
}

void
CausalTracer::closeSpan(Token t, Stage stage, Tick at)
{
    if constexpr (!trace::compiledIn)
        return;
    Request *req = get(t);
    if (!req)
        return;
    Span *s = req->lastOpen(stage);
    if (!s) {
        ++outOfOrder_;
        return;
    }
    closeAndSample(*req, *s, at);
}

std::string
CausalTracer::criticalPath(const Request &request) const
{
    std::vector<const Span *> ordered;
    for (const Span &span : request.spans)
        ordered.push_back(&span);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Span *a, const Span *b) {
                         return a->begin < b->begin;
                     });

    char line[160];
    std::snprintf(line, sizeof(line),
                  "req#%u flow=%u e2e=%.3fus spans=%zu%s\n", request.id,
                  request.senderFlow, us(request.latency()),
                  request.spans.size(),
                  request.aborted ? " (aborted)" : "");
    std::string out = line;
    Tick prev_end = request.begin;
    for (const Span *span : ordered) {
        Tick gap = span->begin > prev_end ? span->begin - prev_end : 0;
        std::snprintf(
            line, sizeof(line),
            "  %-8s %9.3fus  (queue %.3f, service %.3f)%s%s\n",
            stageName(span->stage), us(span->duration()),
            us(span->queueTime()), us(span->serviceTime()),
            span->abandoned ? "  [abandoned]" : "",
            gap ? "  [gap before]" : "");
        out += line;
        if (!span->abandoned && span->end > prev_end)
            prev_end = span->end;
    }
    return out;
}

} // namespace f4t::sim::ctrace
