/**
 * @file
 * Conservative multi-threaded execution of partitioned simulations.
 *
 * A ParallelExecutor advances several independent Simulation instances
 * ("partitions") in lockstep time windows. Partitions interact only
 * through registered CrossChannels — timestamped event conduits whose
 * modeled delivery latency is bounded below by a positive lookahead
 * (the link propagation delay for a split cable, the PCIe round trip
 * for a future host/engine split). Classic conservative parallel DES
 * follows: any event a partition executes inside the window
 * [T, T + L] can only produce cross-partition effects at or after
 * T + L, so every partition may execute the whole window without
 * synchronizing. At the window barrier the executor drains every
 * channel's mailbox into its destination partition's event queue,
 * then releases the next window.
 *
 * Determinism: window boundaries are pure functions of simulated time
 * and the channel lookahead, and channel drains replay entries in
 * push order, so a run's simulated behavior is identical for any
 * worker count — including one. The single-threaded global-queue path
 * (one Simulation, no executor) remains the reference oracle; the
 * parallel differential fuzzer (tests/fuzz/test_parallel_differential)
 * holds the two to byte-exact application-visible agreement.
 *
 * Threading model: the caller's thread is the coordinator and also
 * executes partition 0's share; additional persistent workers are
 * spawned lazily on the first run() that can use them. Workers park on
 * a generation-counted condition variable between windows. While a
 * worker executes a partition it binds that Simulation as the
 * thread-local current simulation, so f4t_warn()/f4t_inform() tick
 * prefixes and tracepoints stamp the right partition's clock.
 */

#ifndef F4T_SIM_PARALLEL_HH
#define F4T_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace f4t::sim
{

/**
 * Executor-facing interface of a cross-partition event conduit
 * (implemented by net::LinkCrossing for split cables). The producing
 * partition pushes timestamped entries during a window; the executor
 * calls drainInto() at the barrier to replay them into the consuming
 * partition's event queue.
 */
class CrossChannel
{
  public:
    virtual ~CrossChannel() = default;

    /**
     * Minimum simulated delay between an event's send tick in the
     * producing partition and its effect tick in the consuming one.
     * Must be positive and constant for the life of the run; the
     * executor's window length is the minimum over all channels.
     */
    virtual Tick lookahead() const = 0;

    /** Replay all pending entries, in push order, into the consuming
     *  partition. Runs on the coordinator at a barrier. @return the
     *  number of entries delivered. */
    virtual std::size_t drainInto() = 0;

    /** True when no pushed entry is awaiting drainInto(). */
    virtual bool idle() const = 0;

    /** Times the producing side overflowed the channel's fast-path
     *  ring and fell back to the locked spill queue (0 for channels
     *  without one). Monotonic; read by the executor at barriers. */
    virtual std::uint64_t spillsObserved() const { return 0; }
};

/**
 * Wall-clock breakdown of one executor thread, cumulative nanoseconds
 * since the first run(). Populated only while the self-profiler is
 * runtime-enabled (prof::enabled()); index 0 is the coordinator, which
 * reports barrier time instead of idle time (its "idle" is waiting on
 * the done barrier), workers report idle (parked between windows) and
 * no barrier time.
 */
struct WorkerProfile
{
    std::uint64_t busyNs = 0;    ///< executing partition event loops
    std::uint64_t idleNs = 0;    ///< parked waiting for a window release
    std::uint64_t barrierNs = 0; ///< coordinator: waiting for workers
};

class ParallelExecutor
{
  public:
    /**
     * @param threads  worker-thread budget, including the caller's
     *                 thread (0 = one worker per partition). The
     *                 effective count is capped at the partition count;
     *                 partitions are distributed round-robin.
     */
    explicit ParallelExecutor(std::size_t threads = 0)
        : requestedThreads_(threads)
    {}

    ~ParallelExecutor();

    ParallelExecutor(const ParallelExecutor &) = delete;
    ParallelExecutor &operator=(const ParallelExecutor &) = delete;

    /** Register a partition. All partitions must start at tick 0 and
     *  may only be advanced through this executor from then on. */
    void addPartition(Simulation &sim, std::string name);

    /** Register a cross-partition conduit (not owned). */
    void addChannel(CrossChannel &channel);

    /** Adjust the worker budget; only before the first run(). */
    void setThreads(std::size_t threads);

    std::size_t partitionCount() const { return partitions_.size(); }

    /** Worker threads a run will actually use (caller included). */
    std::size_t
    effectiveThreads() const
    {
        std::size_t want =
            requestedThreads_ == 0 ? partitions_.size() : requestedThreads_;
        if (want > partitions_.size())
            want = partitions_.size();
        return want == 0 ? 1 : want;
    }

    /** Window length: the minimum lookahead over all channels. */
    Tick lookahead() const;

    /**
     * Advance every partition to @p limit (events at @p limit
     * included, matching Simulation::run). On a global drain — every
     * partition queue empty and every channel idle — the remaining
     * clocks still fast-forward to @p limit, exactly as the serial
     * EventQueue::run(limit) pins now() to its limit when the queue
     * empties, so phase boundaries agree between the two kernels.
     * @return the barrier tick reached (always @p limit).
     */
    Tick run(Tick limit);

    /** Advance all partitions a further @p duration ticks. */
    Tick runFor(Tick duration) { return run(now() + duration); }

    /** The last window barrier (every partition's clock ≥ this). */
    Tick now() const { return horizon_; }

    /** Events processed across all partitions. */
    std::uint64_t eventsProcessed() const;

    // --- introspection (tests, perf harnesses) --------------------------
    /** Windows executed (== barriers crossed) since construction. */
    std::uint64_t windowsRun() const { return windows_; }
    /** Cross-partition entries delivered at barriers. */
    std::uint64_t crossEventsDelivered() const { return crossDelivered_; }
    /** Sum of every channel's ring-overflow spill count. */
    std::uint64_t mailboxSpills() const;

    /**
     * Per-thread busy/idle/barrier wall-clock breakdown (see
     * WorkerProfile). Entry 0 is the coordinator. All zeros unless the
     * self-profiler was runtime-enabled during run(). Call only
     * between run() calls — workers are parked then, so the window
     * barrier's mutex makes the read race-free.
     */
    std::vector<WorkerProfile> workerProfiles() const;

    /**
     * Publish executor counters (windows, cross deliveries, mailbox
     * spills) as Scalars in @p registry, refreshed at every window
     * barrier — StatSampler time-series can plot them in any build,
     * profile or not. @p registry must belong to partition 0 (the
     * coordinator runs that partition and updates the scalars between
     * windows on the same thread, keeping the registry's
     * one-thread-per-partition value contract).
     */
    void registerStats(StatRegistry &registry);

  private:
    struct Partition
    {
        Simulation *sim;
        std::string name;
    };

    /** Run one partition's slice of the window on this thread. */
    void runPartition(Partition &partition, Tick window_end);
    /** Execute [horizon_, window_end] on all partitions, in parallel
     *  when the pool is up. */
    void runWindow(Tick window_end);
    void startWorkers();
    void stopWorkers();
    void workerLoop(std::size_t worker_index);
    /** Earliest possibly-live event tick across all partitions. */
    Tick minNextEvent() const;
    /** Refresh the registerStats() scalars (coordinator thread only). */
    void publishStats();

    /** WorkerProfile on its own cache line: each thread increments its
     *  slot inside the window, so neighbors must not false-share. */
    struct alignas(64) PaddedProfile
    {
        std::uint64_t busyNs = 0;
        std::uint64_t idleNs = 0;
        std::uint64_t barrierNs = 0;
    };

    /** Scalars created by registerStats() (optional, coordinator-owned). */
    struct ExecutorStats
    {
        ExecutorStats(StatRegistry &registry)
            : windows(registry, "executor.windows",
                      "time windows executed (barriers crossed)"),
              crossDelivered(registry, "executor.crossDelivered",
                             "cross-partition entries delivered at barriers"),
              mailboxSpills(registry, "executor.mailboxSpills",
                            "mailbox ring overflows onto the locked spill "
                            "path")
        {}

        Scalar windows;
        Scalar crossDelivered;
        Scalar mailboxSpills;
    };

    std::size_t requestedThreads_;
    bool started_ = false;
    std::vector<Partition> partitions_;
    std::vector<CrossChannel *> channels_;
    std::vector<PaddedProfile> profiles_;
    std::unique_ptr<ExecutorStats> stats_;

    Tick horizon_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t crossDelivered_ = 0;
    /** Flight recorder: module id + last spill total (delta records). */
    std::uint16_t frModule_ = 0;
    std::uint64_t frLastSpills_ = 0;

    // Generation-counted window barrier shared with the worker pool.
    std::mutex mutex_;
    std::condition_variable startCv_;
    std::condition_variable doneCv_;
    std::vector<std::thread> workers_;
    std::uint64_t windowSeq_ = 0;   ///< bumped to release a window
    std::size_t workersDone_ = 0;   ///< workers finished current window
    Tick windowEnd_ = 0;
    bool shutdown_ = false;
};

} // namespace f4t::sim

#endif // F4T_SIM_PARALLEL_HH
