/**
 * @file
 * Fundamental simulation types: ticks, cycles, frequencies.
 *
 * The global simulated time base is one tick = one picosecond, which is
 * fine enough to represent both FtEngine clock domains (250 MHz and
 * 322 MHz) and the 2.3 GHz host clock without rounding drift over the
 * simulated intervals used in the experiments.
 */

#ifndef F4T_SIM_TYPES_HH
#define F4T_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace f4t::sim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per second (1 tick = 1 ps). */
constexpr Tick ticksPerSecond = 1'000'000'000'000ULL;

/** Convert a frequency in Hz to a clock period in ticks (rounded). */
constexpr Tick
periodFromFrequency(double hz)
{
    return static_cast<Tick>(static_cast<double>(ticksPerSecond) / hz + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Convert seconds to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(ticksPerSecond) + 0.5);
}

/** Convert microseconds to ticks. */
constexpr Tick
microsecondsToTicks(double us)
{
    return secondsToTicks(us * 1e-6);
}

/** Convert milliseconds to ticks. */
constexpr Tick
millisecondsToTicks(double ms)
{
    return secondsToTicks(ms * 1e-3);
}

/** Convert nanoseconds to ticks. */
constexpr Tick
nanosecondsToTicks(double ns)
{
    return secondsToTicks(ns * 1e-9);
}

} // namespace f4t::sim

#endif // F4T_SIM_TYPES_HH
