/**
 * @file
 * Simple typed key-value configuration for experiments.
 *
 * Benchmarks and examples build a Config, optionally override entries
 * from command-line "key=value" arguments, and pass it down to system
 * builders. Unknown keys are a fatal user error so typos cannot
 * silently run the wrong experiment.
 */

#ifndef F4T_SIM_CONFIG_HH
#define F4T_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/logging.hh"

namespace f4t::sim
{

class Config
{
  public:
    Config() = default;

    /** Declare a key with its default value. */
    void
    declare(const std::string &key, const std::string &default_value,
            const std::string &description = "")
    {
        entries_[key] = Entry{default_value, description};
    }

    /** Override a declared key. Fatal if the key was never declared. */
    void
    set(const std::string &key, const std::string &value)
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            f4t_fatal("unknown config key '%s'", key.c_str());
        it->second.value = value;
    }

    /** Parse argv entries of the form key=value; others are ignored. */
    void
    parseArgs(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto eq = arg.find('=');
            if (eq == std::string::npos)
                continue;
            set(arg.substr(0, eq), arg.substr(eq + 1));
        }
    }

    bool has(const std::string &key) const { return entries_.count(key); }

    std::string
    getString(const std::string &key) const
    {
        auto it = entries_.find(key);
        if (it == entries_.end())
            f4t_fatal("config key '%s' not declared", key.c_str());
        return it->second.value;
    }

    std::int64_t
    getInt(const std::string &key) const
    {
        return std::stoll(getString(key));
    }

    std::uint64_t
    getUint(const std::string &key) const
    {
        return std::stoull(getString(key));
    }

    double
    getDouble(const std::string &key) const
    {
        return std::stod(getString(key));
    }

    bool
    getBool(const std::string &key) const
    {
        std::string v = getString(key);
        return v == "1" || v == "true" || v == "yes" || v == "on";
    }

  private:
    struct Entry
    {
        std::string value;
        std::string description;
    };

    std::map<std::string, Entry> entries_;
};

} // namespace f4t::sim

#endif // F4T_SIM_CONFIG_HH
