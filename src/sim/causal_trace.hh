/**
 * @file
 * Causal (Dapper-style) request tracing: a per-request trace context,
 * allocated when the application hands a send to the F4T library and
 * carried — as a 4-byte ctrace::Token riding inside host Commands,
 * TcpEvents, and Packets — through every stage hand-off of the data
 * path, down one host's stack, over the wire, and back up the peer's.
 *
 * The stage taxonomy (one span per stage traversal):
 *
 *   appQueue  library send()           -> runtime submit
 *   doorbell  SQ entry + MMIO ring     -> host-interface fetch start
 *   pcie      command DMA              (pure service: start -> done)
 *   fpcQueue  engine event submit      -> FPC absorbs the event
 *   fpcExec   absorbed, waiting issue  -> FPU pass writes back
 *   wire      packet-generator enqueue -> arrival at the peer MAC
 *   rxParse   RX pipeline              (synchronous today: 0-width)
 *   upcall    completion posted        -> library delivers to the app
 *
 * Each span records begin / optional service-begin / end ticks, so
 * every stage splits into queueing (waiting for the resource) and
 * service (using it). A request traverses fpcQueue/fpcExec twice (once
 * per host) and may traverse wire several times (retransmissions
 * re-enter the stage; the superseded span is kept in the tree but not
 * sampled into the latency histograms).
 *
 * Event coalescing, FPU-record accumulation, and FPC<->DRAM migration
 * merge many requests into one hardware operation; tokens for merged
 * requests park in ctrace::TokenSet members on the FPC slot, the
 * issued FPU job, and the MigratingTcb, so spans survive a mid-request
 * connection migration. Where a token is physically dropped (event
 * coalescing keeps only the survivor's), completion is still observed
 * through cumulative-offset coverage: any posted offset >= a request's
 * target completes it.
 *
 * Zero-cost contract: all call sites are guarded with
 * `if constexpr (sim::trace::compiledIn)`; under F4T_ENABLE_TRACE=OFF
 * (the release preset) the tokens are empty structs and no tracer call
 * survives compilation — verified by unchanged perf_kernel fingerprints.
 */

#ifndef F4T_SIM_CAUSAL_TRACE_HH
#define F4T_SIM_CAUSAL_TRACE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/trace_token.hh"
#include "sim/types.hh"

namespace f4t::sim::ctrace
{

enum class Stage : std::uint8_t
{
    appQueue,
    doorbell,
    pcie,
    fpcQueue,
    fpcExec,
    wire,
    rxParse,
    upcall,
    nStages
};

constexpr std::size_t numStages = static_cast<std::size_t>(Stage::nStages);

const char *stageName(Stage stage);

/** One tick-stamped stage traversal. */
struct Span
{
    Stage stage;
    Tick begin = 0;
    Tick serviceBegin = 0; ///< valid iff serviceSet
    Tick end = 0;
    bool serviceSet = false;
    bool open = true;
    /** Superseded by a retransmission / left open at abort: kept in the
     *  tree for inspection but not sampled into the histograms. */
    bool abandoned = false;

    Tick duration() const { return end - begin; }
    Tick queueTime() const { return serviceSet ? serviceBegin - begin : 0; }
    Tick serviceTime() const
    {
        return serviceSet ? end - serviceBegin : end - begin;
    }
};

/** One traced request: identity, routing keys, and its span tree. */
struct Request
{
    std::uint32_t id = 0;

    const void *senderDomain = nullptr;
    std::uint32_t senderFlow = 0;
    /** Cumulative stream offset of the request's last byte (u64, from
     *  the library's send buffer — never wraps). */
    std::uint64_t targetOffset = 0;
    /** The same byte as a wire sequence number (u32, wraps). */
    std::uint32_t wireTarget = 0;
    bool wireTargetSet = false;

    const void *peerDomain = nullptr;
    std::uint32_t peerFlow = 0;
    bool peerBound = false;

    Tick begin = 0;
    Tick end = 0;
    bool done = false;
    bool aborted = false;
    /** The request's event merged into an earlier one in the scheduler
     *  coalescing window; later stages observed via offset coverage. */
    bool coalesced = false;
    std::uint8_t wireEntries = 0;

    std::vector<Span> spans;

    Tick latency() const { return end - begin; }
    const Span *lastOpen(Stage stage) const;
    Span *lastOpen(Stage stage);
    bool hasOpen(Stage stage) const { return lastOpen(stage) != nullptr; }
    /** Sum of non-abandoned span durations across all stages. */
    Tick sampledTotal() const;
};

/**
 * The tracer. Construct one per Simulation (it registers itself via
 * Simulation::setCausalTracer and its histograms under "ctrace.*" in
 * sim.stats()); instrumented modules reach it through
 * `sim().causalTracer()` behind `if constexpr (trace::compiledIn)`.
 *
 * Bounds: at most @p max_live requests are in flight (beginRequest
 * returns an invalid token beyond that, counted in overflowDropped);
 * the last @p keep_completed finished requests keep their span trees
 * for inspection — histograms are sampled at completion, so evicting
 * old trees loses no aggregate data.
 */
class CausalTracer
{
  public:
    explicit CausalTracer(Simulation &sim, std::size_t keep_completed = 4096,
                          std::size_t max_live = 1 << 16);
    ~CausalTracer();

    CausalTracer(const CausalTracer &) = delete;
    CausalTracer &operator=(const CausalTracer &) = delete;

    // --- sender-side transitions -------------------------------------------
    /** Application handed a send to the library: allocate the context. */
    Token beginRequest(const void *domain, std::uint32_t flow,
                       std::uint64_t target_offset, Tick at);
    /** Command pushed to the SQ and the doorbell rung. */
    void submitted(Token t, Tick at);
    /** Command DMA completed: doorbell ended at @p fetch_start, the
     *  PCIe span is [fetch_start, at]. */
    void fetched(Token t, Tick fetch_start, Tick at);
    /** Engine turned the command into a TcpEvent bound for an FPC. */
    void eventQueued(Token t, Tick at);
    /** Record the wire sequence number of the request's last byte. */
    void setWireTarget(Token t, std::uint32_t seq);
    /** @p t's event merged into an earlier queued event. */
    void coalescedInto(Token t, Tick at);

    // --- FPC (both hosts) ---------------------------------------------------
    /** FPC event handler absorbed the event into the slot's record. */
    void absorbed(Token t, Tick at);
    /** The slot issued to the FPU (fpcExec service begins). */
    void execStarted(Token t, Tick at);
    /** FPU pass wrote back; the request's processing is complete. */
    void processed(Token t, Tick at);

    // --- wire ---------------------------------------------------------------
    /** Packet generator asked to cover [from_seq+1, to_seq]: opens a
     *  wire span for every request whose target byte is inside. */
    void wireQueued(const void *domain, std::uint32_t flow,
                    std::uint32_t from_seq, std::uint32_t to_seq, Tick at);
    /** Token to stamp on the departing segment [seq+1, seq+len]. */
    Token wireToken(const void *domain, std::uint32_t flow,
                    std::uint32_t seq, std::uint32_t payload_len) const;
    /** Link started serializing the stamped packet. */
    void wireService(Token t, Tick tx_start);
    /** Stamped packet reached the peer's RX parser: close the wire
     *  span(s), record the 0-width rxParse span, bind the peer flow. */
    void arrivedRx(Token t, const void *peer_domain, std::uint32_t peer_flow,
                   Tick at);

    // --- upcall -------------------------------------------------------------
    /** Peer engine posted a cumulative received-offset completion:
     *  every bound request with target <= offset enters upcall.
     *  @return the token to stamp on the completion (invalid if none). */
    Token upcallPosted(const void *peer_domain, std::uint32_t peer_flow,
                       std::uint32_t offset32, Tick at);
    /** Completion batch started its PCIe flush (upcall service). */
    void upcallService(Token t, Tick at);
    /** Library delivered the completion to the application: the
     *  request (and everything it covers) is done. */
    void delivered(Token t, Tick at);

    /** Flow torn down with requests still open: abort them. */
    void flowAborted(const void *domain, std::uint32_t flow, Tick at);

    // --- raw span API (tests / ad-hoc stages) -------------------------------
    void openSpan(Token t, Stage stage, Tick at);
    void markService(Token t, Stage stage, Tick at);
    void closeSpan(Token t, Stage stage, Tick at);

    // --- results ------------------------------------------------------------
    const std::deque<Request> &completed() const { return completed_; }
    const Request *findLive(Token t) const;
    /** Completed request with the largest end-to-end latency. */
    const Request *slowestCompleted() const;

    Histogram &stageTotal(Stage s) { return *total_[idx(s)]; }
    Histogram &stageQueue(Stage s) { return *queue_[idx(s)]; }
    Histogram &stageService(Stage s) { return *service_[idx(s)]; }
    Histogram &e2e() { return *e2e_; }

    std::uint64_t requestsStarted() const { return started_.value(); }
    std::uint64_t requestsCompleted() const { return completedCount_.value(); }
    std::uint64_t requestsAborted() const { return aborted_.value(); }
    std::uint64_t outOfOrderCloses() const { return outOfOrder_.value(); }
    std::uint64_t duplicateArrivals() const { return duplicates_.value(); }
    std::uint64_t coalescedMerges() const { return coalesced_.value(); }
    std::uint64_t wireReentries() const { return wireReentries_.value(); }
    std::uint64_t abandonedSpans() const { return abandonedSpans_.value(); }
    std::uint64_t overflowDropped() const { return overflow_.value(); }
    std::size_t liveCount() const { return live_.size(); }

    /** Human-readable critical path of one request's span tree. */
    std::string criticalPath(const Request &request) const;

  private:
    using FlowKey = std::pair<const void *, std::uint32_t>;

    static std::size_t idx(Stage s) { return static_cast<std::size_t>(s); }

    Request *get(Token t);
    const Request *get(Token t) const;
    /** Close @p span of @p req at @p at and sample the histograms. */
    void closeAndSample(Request &req, Span &span, Tick at);
    void finish(Request &req, Tick at);
    void abort(Request &req, Tick at);
    /** Move a done request from live_ to completed_ and unindex it. */
    void retire(std::uint32_t id);
    void emitTimeline(const Request &req, const Span &span);

    Simulation &sim_;
    std::size_t keepCompleted_;
    std::size_t maxLive_;
    std::uint32_t nextId_ = 1;

    std::unordered_map<std::uint32_t, Request> live_;
    std::deque<Request> completed_;
    std::map<FlowKey, std::vector<std::uint32_t>> senderIndex_;
    std::map<FlowKey, std::vector<std::uint32_t>> peerIndex_;
    /** Per-peer-flow unwrap reference for 32-bit completion offsets. */
    std::map<FlowKey, std::uint64_t> deliveredRef_;

    std::unique_ptr<Histogram> total_[numStages];
    std::unique_ptr<Histogram> queue_[numStages];
    std::unique_ptr<Histogram> service_[numStages];
    std::unique_ptr<Histogram> e2e_;

    Counter started_;
    Counter completedCount_;
    Counter aborted_;
    Counter outOfOrder_;
    Counter duplicates_;
    Counter coalesced_;
    Counter wireReentries_;
    Counter abandonedSpans_;
    Counter overflow_;
};

} // namespace f4t::sim::ctrace

#endif // F4T_SIM_CAUSAL_TRACE_HH
