/**
 * @file
 * SmallFunction: a move-only void() callable with small-buffer-
 * optimized storage, built for the event queue's one-shot callbacks.
 *
 * std::function heap-allocates for any capture larger than two or
 * three pointers, and the simulator's hottest callbacks capture a
 * whole net::Packet. SmallFunction embeds up to inlineBytes of
 * capture state directly in the object, so a pooled callback event
 * that holds one can be recycled indefinitely without ever touching
 * the allocator. Callables larger than inlineBytes still work — they
 * fall back to a heap allocation — so correctness never depends on
 * the capture fitting.
 *
 * Differences from std::function<void()>:
 *  - move-only (so captures can hold move-only payloads);
 *  - the callable is destroyed eagerly by reset(), letting pooled
 *    events release captured resources (packets, buffers) the moment
 *    they have run rather than when the pool slot is reused.
 */

#ifndef F4T_SIM_SMALL_FUNCTION_HH
#define F4T_SIM_SMALL_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace f4t::sim
{

class SmallFunction
{
  public:
    /**
     * Inline capacity. Sized so the link/packet-generator callbacks —
     * a this-pointer plus a moved net::Packet (~150 B once payloads
     * are pooled) — stay inline with headroom.
     */
    static constexpr std::size_t inlineBytes = 224;

    SmallFunction() = default;
    SmallFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFunction(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFunction &
    operator=(F &&fn)
    {
        reset();
        emplace(std::forward<F>(fn));
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()()
    {
        ops_->invoke(&storage_);
    }

    /** Destroy the captured callable (no-op when empty). */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(&storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *storage);
    };

    template <typename F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= inlineBytes &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    template <typename F>
    struct InlineOps
    {
        static F *at(void *s) { return std::launder(static_cast<F *>(s)); }
        static void invoke(void *s) { (*at(s))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) F(std::move(*at(src)));
            at(src)->~F();
        }
        static void destroy(void *s) { at(s)->~F(); }
        static constexpr Ops ops{invoke, relocate, destroy};
    };

    template <typename F>
    struct HeapOps
    {
        static F *&
        slot(void *s)
        {
            return *std::launder(static_cast<F **>(s));
        }
        static void invoke(void *s) { (*slot(s))(); }
        static void
        relocate(void *dst, void *src)
        {
            ::new (dst) (F *)(slot(src));
        }
        static void destroy(void *s) { delete slot(s); }
        static constexpr Ops ops{invoke, relocate, destroy};
    };

    template <typename F>
    void
    emplace(F &&fn)
    {
        using Decayed = std::decay_t<F>;
        if constexpr (fitsInline<Decayed>()) {
            ::new (&storage_) Decayed(std::forward<F>(fn));
            ops_ = &InlineOps<Decayed>::ops;
        } else {
            ::new (&storage_) (Decayed *)(new Decayed(std::forward<F>(fn)));
            ops_ = &HeapOps<Decayed>::ops;
        }
    }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(&storage_, &other.storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace f4t::sim

#endif // F4T_SIM_SMALL_FUNCTION_HH
