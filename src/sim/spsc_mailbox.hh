/**
 * @file
 * Bounded single-producer / single-consumer mailbox for cross-partition
 * event exchange in the parallel simulation kernel (sim/parallel.hh).
 *
 * One partition's worker thread pushes timestamped entries while it
 * executes a conservative time window; the coordinator drains the
 * mailbox at the next window barrier, when every worker is parked.
 * That protocol gives the mailbox an unusually easy life:
 *
 *  - exactly one producer (the owning partition's worker) and one
 *    consumer (whichever thread runs the barrier) are ever active,
 *    and never simultaneously with another consumer;
 *  - the consumer only runs while the producer is quiescent, so a
 *    drain always observes every push of the completed window (the
 *    barrier's mutex provides the happens-before edge);
 *  - FIFO order must be preserved exactly: the receiving link half
 *    replays entries in push order so the parallel run's delivery
 *    sequence is bit-identical to the serial run's.
 *
 * Storage is a fixed power-of-two ring indexed by free-running
 * counters. The ring is sized for the worst bursts a window can
 * produce; if a pathological window overflows it anyway (ten thousand
 * flows all transmitting into one propagation window), entries spill
 * to a mutex-guarded overflow queue rather than being dropped or
 * blocking the worker — blocking would deadlock, since the consumer
 * only runs after the producer finishes its window. Because the
 * consumer never pops mid-window, every ring entry of a window
 * precedes every spilled entry of that window, so draining the ring
 * first preserves global push order.
 */

#ifndef F4T_SIM_SPSC_MAILBOX_HH
#define F4T_SIM_SPSC_MAILBOX_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace f4t::sim
{

template <typename T>
class SpscMailbox
{
  public:
    explicit SpscMailbox(std::size_t capacity = 4096)
        : capacity_(capacity), mask_(capacity - 1), slots_(capacity)
    {
        f4t_assert((capacity & (capacity - 1)) == 0 && capacity > 0,
                   "mailbox capacity %zu is not a power of two", capacity);
    }

    SpscMailbox(const SpscMailbox &) = delete;
    SpscMailbox &operator=(const SpscMailbox &) = delete;

    /** Producer side. Never blocks; spills on overflow. */
    void
    push(T &&value)
    {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head >= capacity_) {
            std::lock_guard<std::mutex> lock(spillMutex_);
            spill_.push_back(std::move(value));
            spillCount_.fetch_add(1, std::memory_order_release);
            spillsSeen_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
    }

    /**
     * Consumer side: pop every entry in push order into @p fn.
     * Must only be called while the producer is quiescent (at a
     * window barrier); entries pushed concurrently with a drain are
     * otherwise only guaranteed to surface on the next drain.
     * @return the number of entries consumed.
     */
    template <typename Fn>
    std::size_t
    drain(Fn &&fn)
    {
        std::size_t consumed = 0;
        std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t tail = tail_.load(std::memory_order_acquire);
        while (head != tail) {
            fn(std::move(slots_[head & mask_]));
            slots_[head & mask_] = T{};
            ++head;
            ++consumed;
        }
        head_.store(head, std::memory_order_release);
        if (spillCount_.load(std::memory_order_acquire) > 0) {
            std::lock_guard<std::mutex> lock(spillMutex_);
            while (!spill_.empty()) {
                fn(std::move(spill_.front()));
                spill_.pop_front();
                ++consumed;
            }
            spillCount_.store(0, std::memory_order_release);
        }
        return consumed;
    }

    /** Consumer-side view; exact at a window barrier. */
    bool
    empty() const
    {
        return head_.load(std::memory_order_acquire) ==
                   tail_.load(std::memory_order_acquire) &&
               spillCount_.load(std::memory_order_acquire) == 0;
    }

    std::size_t capacity() const { return capacity_; }

    /** Entries that overflowed the ring since construction (perf
     *  introspection: a hot mailbox should be resized, not spilling). */
    std::uint64_t
    spillsObserved() const
    {
        return spillsSeen_.load(std::memory_order_relaxed);
    }

  private:
    std::size_t capacity_;
    std::size_t mask_;
    std::vector<T> slots_;

    /* Producer and consumer indices on separate cache lines so the
     * producer's stores never ping-pong the consumer's line. */
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::atomic<std::size_t> head_{0};

    alignas(64) std::mutex spillMutex_;
    std::deque<T> spill_;
    std::atomic<std::size_t> spillCount_{0};
    std::atomic<std::uint64_t> spillsSeen_{0};
};

} // namespace f4t::sim

#endif // F4T_SIM_SPSC_MAILBOX_HH
