#include "stats.hh"

#include <cmath>
#include <cstdio>
#include <iomanip>

namespace f4t::sim
{

namespace
{

/** JSON escaping for stat names (dotted names are already clean, but
 *  dumpJson() must stay valid for any registered name). */
std::string
jsonEscapeName(const std::string &s)
{
    std::string result;
    result.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            result += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c));
            result += buf;
            continue;
        }
        result += c;
    }
    return result;
}

/** A double as a JSON number; non-finite values become null. */
void
printJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "null";
        return;
    }
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
}

} // namespace

StatBase::StatBase(StatRegistry &registry, std::string name,
                   std::string description)
    : registry_(registry), name_(std::move(name)),
      description_(std::move(description))
{
    registry_.add(this);
}

StatBase::~StatBase()
{
    registry_.remove(this);
}

void
Scalar::print(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << description();
}

void
Scalar::printJson(std::ostream &os) const
{
    printJsonNumber(os, value_);
}

void
Counter::print(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << description();
}

void
Counter::printJson(std::ostream &os) const
{
    os << value_;
}

Histogram::Histogram(StatRegistry &registry, std::string name,
                     std::string description, std::size_t reservoir_cap)
    : StatBase(registry, std::move(name), std::move(description)),
      cap_(reservoir_cap)
{
    f4t_assert(cap_ > 0, "histogram reservoir cap must be positive");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (count_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    if (samples_.size() < cap_) {
        samples_.push_back(v);
        sorted_ = false;
        return;
    }

    // Vitter's algorithm R: replace a uniformly random slot with
    // probability cap / count.
    rngState_ ^= rngState_ << 13;
    rngState_ ^= rngState_ >> 7;
    rngState_ ^= rngState_ << 17;
    std::uint64_t slot = rngState_ % count_;
    if (slot < cap_) {
        samples_[slot] = v;
        sorted_ = false;
    }
}

double
Histogram::percentile(double p) const
{
    f4t_assert(p >= 0.0 && p <= 100.0, "percentile out of range: %f", p);
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        auto &mutable_samples = const_cast<std::vector<double> &>(samples_);
        std::sort(mutable_samples.begin(), mutable_samples.end());
        sorted_ = true;
    }
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
    samples_.clear();
    sorted_ = true;
}

void
Histogram::print(std::ostream &os) const
{
    os << name() << " count=" << count_ << " mean=" << mean()
       << " min=" << min() << " p50=" << percentile(50)
       << " p99=" << percentile(99) << " max=" << max()
       << " # " << description();
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"mean\":";
    printJsonNumber(os, mean());
    os << ",\"min\":";
    printJsonNumber(os, min());
    os << ",\"max\":";
    printJsonNumber(os, max());
    os << ",\"p50\":";
    printJsonNumber(os, percentile(50));
    os << ",\"p90\":";
    printJsonNumber(os, percentile(90));
    os << ",\"p99\":";
    printJsonNumber(os, percentile(99));
    os << "}";
}

StatBase *
StatRegistry::find(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : it->second;
}

void
StatRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, stat] : stats_)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, stat] : stats_) {
        stat->print(os);
        os << "\n";
    }
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{";
    const char *sep = "\n  ";
    for (const auto &[name, stat] : stats_) {
        os << sep << "\"" << jsonEscapeName(name) << "\": ";
        stat->printJson(os);
        sep = ",\n  ";
    }
    os << "\n}\n";
}

void
StatRegistry::add(StatBase *stat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = stats_.emplace(stat->name(), stat);
    f4t_assert(inserted, "duplicate statistic name '%s'",
               stat->name().c_str());
}

void
StatRegistry::remove(const StatBase *stat)
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.erase(stat->name());
}

} // namespace f4t::sim
