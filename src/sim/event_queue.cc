#include "event_queue.hh"

namespace f4t::sim
{

Event::~Event()
{
    if (scheduled_ && queue_)
        queue_->deschedule(this);
}

EventQueue::~EventQueue()
{
    // Self-deleting lambda events still in the heap must be reclaimed.
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.top();
        if (top.selfDeleting && top.event->scheduled_ &&
            top.generation == top.event->generation_) {
            delete top.event;
        }
        heap_.pop();
    }
}

void
EventQueue::push(Event *ev, Tick when, bool self_deleting)
{
    f4t_assert(when >= now_,
               "scheduling event '%s' in the past (%llu < %llu)",
               ev->description().c_str(),
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    f4t_assert(!ev->scheduled_, "event '%s' already scheduled",
               ev->description().c_str());

    ev->when_ = when;
    ev->scheduled_ = true;
    ev->queue_ = this;
    heap_.push(HeapEntry{when, ev->priority(), nextSeq_++, ev->generation_,
                         ev, self_deleting});
    ++liveEvents_;
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    push(ev, when, false);
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        return;
    // Lazy removal: bump the generation so the heap entry is squashed.
    ++ev->generation_;
    ev->scheduled_ = false;
    f4t_assert(liveEvents_ > 0, "live event count underflow");
    --liveEvents_;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::scheduleCallback(Tick when, std::function<void()> fn,
                             int priority)
{
    auto *ev = new LambdaEvent(std::move(fn), priority);
    push(ev, when, true);
}

void
EventQueue::skipSquashed()
{
    while (!heap_.empty()) {
        const HeapEntry &top = heap_.top();
        bool live = top.event->scheduled_ &&
                    top.generation == top.event->generation_;
        if (live)
            return;
        heap_.pop();
    }
}

bool
EventQueue::runOne(Tick limit)
{
    skipSquashed();
    if (heap_.empty())
        return false;

    HeapEntry top = heap_.top();
    if (top.when > limit)
        return false;

    heap_.pop();
    f4t_assert(top.when >= now_, "event queue time went backwards");
    now_ = top.when;

    Event *ev = top.event;
    ev->scheduled_ = false;
    --liveEvents_;
    ++processed_;
    ev->process();
    if (top.selfDeleting)
        delete ev;
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (runOne(limit)) {
    }
    if (now_ < limit && limit != maxTick)
        now_ = limit;
    return now_;
}

} // namespace f4t::sim
