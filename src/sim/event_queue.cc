#include "event_queue.hh"

#include "sim/flight_recorder.hh"
#include "sim/simulation.hh" // ClockedObject::TickEvent (tagged dispatch)

#include <algorithm>
#include <bit>

namespace f4t::sim
{

namespace
{

/** Runtime dispatch mode; see setTaggedDispatch(). */
bool g_taggedDispatch = taggedDispatchCompiledIn;

/** Occupancy bitmap geometry: one bit per granule bucket. */
constexpr std::size_t bitsWords = EventQueue::numBuckets / 64;
static_assert(EventQueue::numBuckets % 64 == 0,
              "ladder buckets must fill whole bitmap words");

/** Profiling category for a firing event, via its cheap tag. */
prof::Cat
eventCategory(const Event *ev)
{
    const char *tag = ev->profileTag();
    return tag != nullptr ? prof::categorizeTagCached(tag)
                          : prof::Cat::otherEvent;
}

} // namespace

bool
taggedDispatchEnabled()
{
    return g_taggedDispatch;
}

void
setTaggedDispatch(bool on)
{
    g_taggedDispatch = on && taggedDispatchCompiledIn;
}

Event::~Event()
{
    // Detach fully, not just deschedule: lazy removal may have left
    // squashed entries naming this event, and any entry surviving the
    // destructor would dangle (isLive dereferences the event). When no
    // entry names the event, the queue is not touched at all — it may
    // legitimately have been destroyed first.
    if (queue_ != nullptr && (scheduled_ || staleEntries_ > 0))
        queue_->forget(this);
}

EventQueue::EventQueue()
    : buckets_(numBuckets, nullptr), tails_(numBuckets, nullptr),
      bits_(bitsWords, 0)
{
    // 512 buckets × 8 B plus an 8-word bitmap: the entire ladder
    // index fits in a few cache lines, so pops and pushes stay
    // L1-resident no matter how sparse the schedule is.
}

EventQueue::~EventQueue()
{
    // Entries may still reference events. Live self-deleting callback
    // events belong to our arena: drop their captured state now. Any
    // live external event is detached so its own destructor does not
    // call back into this dying queue.
    auto retire = [](Node &n) {
        Event *ev = n.event;
        bool live = ev->scheduled_ && n.generation == ev->generation_;
        if (live) {
            if (n.selfDeleting)
                static_cast<CallbackEvent *>(ev)->fn_.reset();
            ev->scheduled_ = false;
        }
        // Detach squashed entries' events too, so their destructors
        // do not call forget() on this dying queue.
        ev->queue_ = nullptr;
    };
    if (soloEvent_ != nullptr) {
        Node as_node{soloWhen_, soloPriority_, soloSeq_, soloGeneration_,
                     soloEvent_, soloSelfDeleting_, nullptr};
        retire(as_node);
    }
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        for (Node *n = buckets_[b]; n != nullptr; n = n->next)
            retire(*n);
    }
    for (const HeapEntry &e : heap_) {
        Node as_node{e.when, e.priority, e.seq, e.generation, e.event,
                     e.selfDeleting, nullptr};
        retire(as_node);
    }
}

// --- pools ----------------------------------------------------------------

EventQueue::Node *
EventQueue::acquireNode()
{
    if (freeNodes_ != nullptr) {
        Node *n = freeNodes_;
        freeNodes_ = n->next;
        return n;
    }
    nodeArena_.emplace_back();
    return &nodeArena_.back();
}

void
EventQueue::releaseNode(Node *node)
{
    node->event = nullptr;
    node->next = freeNodes_;
    freeNodes_ = node;
}

EventQueue::CallbackEvent *
EventQueue::acquireCallback()
{
    if (freeCallbacks_ != nullptr) {
        CallbackEvent *ev = freeCallbacks_;
        freeCallbacks_ = ev->nextFree_;
        ev->nextFree_ = nullptr;
        --freeCallbackCount_;
        return ev;
    }
    callbackArena_.emplace_back();
    return &callbackArena_.back();
}

void
EventQueue::recycleCallback(CallbackEvent *ev)
{
    // Drop the captured state eagerly: callbacks routinely hold whole
    // packets, and those buffers must return to their pools now, not
    // when this pool slot happens to be reused.
    ev->fn_.reset();
    ev->what_ = "callback";
    ev->queue_ = nullptr;
    ev->nextFree_ = freeCallbacks_;
    freeCallbacks_ = ev;
    ++freeCallbackCount_;
}

// --- ladder bitmap --------------------------------------------------------

void
EventQueue::setBit(std::size_t idx)
{
    bits_[idx >> 6] |= 1ULL << (idx & 63);
}

void
EventQueue::clearBit(std::size_t idx)
{
    bits_[idx >> 6] &= ~(1ULL << (idx & 63));
}

std::size_t
EventQueue::findBucketFrom(std::size_t from) const
{
    // The whole bitmap is eight words (one cache line): a straight
    // scan beats any summary level.
    if (from >= numBuckets)
        return numBuckets;
    std::size_t word = from >> 6;
    std::uint64_t w = bits_[word] & (~0ULL << (from & 63));
    while (w == 0) {
        if (++word >= bitsWords)
            return numBuckets;
        w = bits_[word];
    }
    return (word << 6) + std::countr_zero(w);
}

// --- scheduling -----------------------------------------------------------

void
EventQueue::insertLadder(Tick when, int priority, std::uint64_t seq,
                         std::uint64_t generation, Event *ev,
                         bool self_deleting)
{
    std::size_t idx =
        static_cast<std::size_t>(when - ladderBase_) >> granuleShift;
    Node *n = acquireNode();
    *n = Node{when, priority, seq, generation, ev, self_deleting, nullptr};

    Node *tail = tails_[idx];
    if (tail == nullptr) {
        buckets_[idx] = tails_[idx] = n;
        setBit(idx);
    } else if (!keyBefore(*n, *tail)) {
        // Ascending keys — clock ticks marching forward, same-tick
        // callbacks with rising seq — append in O(1).
        tail->next = n;
        tails_[idx] = n;
    } else {
        // Out-of-order arrival within the granule: sorted insert.
        Node **link = &buckets_[idx];
        while (*link != nullptr && !keyBefore(*n, **link))
            link = &(*link)->next;
        n->next = *link;
        *link = n;
    }
    ++ladderNodes_;
}

void
EventQueue::push(Event *ev, Tick when, bool self_deleting)
{
    f4t_assert(when >= now_,
               "scheduling event '%s' in the past (%llu < %llu)",
               ev->description().c_str(),
               static_cast<unsigned long long>(when),
               static_cast<unsigned long long>(now_));
    f4t_assert(!ev->scheduled_, "event '%s' already scheduled",
               ev->description().c_str());

    ev->when_ = when;
    ev->scheduled_ = true;
    ev->queue_ = this;
    std::uint64_t seq = nextSeq_++;

    if (liveEvents_ == 0 && deadEntries_ == 0) {
        // Nothing pending anywhere: park the event in the solo
        // register — no node, no bitmap, no heap.
        soloEvent_ = ev;
        soloWhen_ = when;
        soloPriority_ = ev->priority_;
        soloSeq_ = seq;
        soloGeneration_ = ev->generation_;
        soloSelfDeleting_ = self_deleting;
        ++liveEvents_;
        return;
    }
    if (soloEvent_ != nullptr)
        spillSolo();

    if (!inWindow(when) && ladderNodes_ == 0 && heap_.empty() &&
        deadEntries_ == 0) {
        // Containers are empty: snap the window onto this event so it
        // (and its short-horizon successors) schedule O(1).
        ladderBase_ = when;
        cursor_ = 0;
    }

    if (inWindow(when)) {
        insertLadder(when, ev->priority_, seq, ev->generation_, ev,
                     self_deleting);
    } else {
        heap_.push_back(HeapEntry{when, ev->priority_, seq,
                                  ev->generation_, ev, self_deleting});
        std::push_heap(heap_.begin(), heap_.end(), HeapCompare{});
    }
    ++liveEvents_;
}

void
EventQueue::spillSolo()
{
    // The solo invariant says both containers are empty, so the
    // window may snap onto the spilled event when it lies outside.
    f4t_assert(ladderNodes_ == 0 && heap_.empty() && deadEntries_ == 0,
               "solo register set while containers hold entries");
    if (!inWindow(soloWhen_)) {
        ladderBase_ = soloWhen_;
        cursor_ = 0;
    }
    insertLadder(soloWhen_, soloPriority_, soloSeq_, soloGeneration_,
                 soloEvent_, soloSelfDeleting_);
    soloEvent_ = nullptr;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->scheduled_)
        return;
    ++ev->generation_;
    ev->scheduled_ = false;
    f4t_assert(liveEvents_ > 0, "live event count underflow");
    --liveEvents_;
    if (ev == soloEvent_) {
        // The solo register is removed eagerly: no container entry
        // exists, so there is nothing to squash.
        soloEvent_ = nullptr;
        return;
    }
    // Lazy removal: the generation bump above squashes the entry.
    ++deadEntries_;
    ++ev->staleEntries_;
    maybeCompact();
}

void
EventQueue::forget(Event *ev)
{
    deschedule(ev);

    // Purge every squashed entry still naming the event. This runs
    // only from ~Event — object teardown, never the hot path — so a
    // full container sweep is acceptable.
    for (std::size_t word = 0; word < bitsWords; ++word) {
        std::uint64_t w = bits_[word];
        while (w != 0) {
            std::size_t b = (word << 6) + std::countr_zero(w);
            w &= w - 1;
            Node **link = &buckets_[b];
            Node *last = nullptr;
            while (Node *n = *link) {
                if (n->event != ev) {
                    last = n;
                    link = &n->next;
                    continue;
                }
                *link = n->next;
                --ladderNodes_;
                droppedDead(ev);
                releaseNode(n);
            }
            tails_[b] = last;
            if (buckets_[b] == nullptr)
                clearBit(b);
        }
    }

    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        if (heap_[i].event != ev) {
            heap_[kept++] = heap_[i];
        } else {
            droppedDead(ev);
        }
    }
    if (kept != heap_.size()) {
        heap_.resize(kept);
        std::make_heap(heap_.begin(), heap_.end(), HeapCompare{});
    }

    f4t_assert(ev->staleEntries_ == 0,
               "forget left %u stale entries for event '%s'",
               ev->staleEntries_, ev->description().c_str());
    ev->queue_ = nullptr;
    checkAccounting();
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->scheduled_)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::scheduleCallback(Tick when, const char *what, SmallFunction fn,
                             int priority)
{
    CallbackEvent *ev = acquireCallback();
    ev->fn_ = std::move(fn);
    ev->what_ = what;
    ev->priority_ = priority;
    push(ev, when, true);
}

// --- squash handling ------------------------------------------------------

void
EventQueue::skipSquashed()
{
    while (!heap_.empty() && !isLive(heap_.front())) {
        Event *dead = heap_.front().event;
        std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
        heap_.pop_back();
        droppedDead(dead);
    }
}

void
EventQueue::maybeCompact()
{
    // Compact once squashed entries outnumber live ones (with a floor
    // so small queues never bother). Each compaction drops at least
    // half of all entries, so the amortized cost per deschedule is
    // O(1) and container growth is bounded by the live population.
    if (deadEntries_ > 64 && deadEntries_ > liveEvents_)
        compact();
}

void
EventQueue::compact()
{
    // Ladder sweep: unlink squashed nodes bucket by bucket, rebuilding
    // each bucket's tail pointer as we go.
    for (std::size_t word = 0; word < bitsWords; ++word) {
        std::uint64_t w = bits_[word];
        while (w != 0) {
            std::size_t b = (word << 6) + std::countr_zero(w);
            w &= w - 1;
            Node **link = &buckets_[b];
            Node *last = nullptr;
            while (Node *n = *link) {
                if (isLive(*n)) {
                    last = n;
                    link = &n->next;
                    continue;
                }
                *link = n->next;
                --ladderNodes_;
                droppedDead(n->event);
                releaseNode(n);
            }
            tails_[b] = last;
            if (buckets_[b] == nullptr)
                clearBit(b);
        }
    }

    // Heap sweep: filter in place, then restore the heap property.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
        if (isLive(heap_[i])) {
            heap_[kept++] = heap_[i];
        } else {
            droppedDead(heap_[i].event);
        }
    }
    heap_.resize(kept);
    std::make_heap(heap_.begin(), heap_.end(), HeapCompare{});

    checkAccounting();
#ifndef NDEBUG
    // Full recount: the cheap counter identity can hide paired
    // mistakes, so debug builds re-derive both sides from scratch.
    std::size_t live = soloEvent_ != nullptr ? 1 : 0, dead = 0, nodes = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        for (Node *n = buckets_[b]; n != nullptr; n = n->next) {
            ++nodes;
            (isLive(*n) ? live : dead) += 1;
        }
    }
    for (const HeapEntry &e : heap_)
        (isLive(e) ? live : dead) += 1;
    f4t_assert(nodes == ladderNodes_, "ladder node recount mismatch");
    f4t_assert(live == liveEvents_, "live event recount mismatch");
    f4t_assert(dead == deadEntries_, "dead entry recount mismatch");
#endif
}

void
EventQueue::checkAccounting() const
{
#ifndef NDEBUG
    std::size_t solo = soloEvent_ != nullptr ? 1 : 0;
    f4t_assert(liveEvents_ + deadEntries_ ==
                   ladderNodes_ + heap_.size() + solo,
               "event accounting mismatch: %zu live + %zu dead != "
               "%zu ladder + %zu heap + %zu solo",
               liveEvents_, deadEntries_, ladderNodes_, heap_.size(), solo);
#endif
}

// --- popping --------------------------------------------------------------

void
EventQueue::rebaseLadder()
{
    f4t_assert(ladderNodes_ == 0, "rebase with a non-empty ladder");
    f4t_assert(!heap_.empty() && isLive(heap_.front()),
               "rebase needs a live heap top");
    ladderBase_ = heap_.front().when;
    cursor_ = 0;
    // Batch refill: move every heap entry inside the new window into
    // its bucket. The front entry lands in bucket 0, so the ladder is
    // guaranteed non-empty afterwards.
    while (!heap_.empty() && inWindow(heap_.front().when)) {
        HeapEntry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
        heap_.pop_back();
        if (!isLive(top)) {
            droppedDead(top.event);
            continue;
        }
        insertLadder(top.when, top.priority, top.seq, top.generation,
                     top.event, top.selfDeleting);
    }
}

EventQueue::Candidate
EventQueue::findCandidate()
{
    while (true) {
        std::size_t b = findBucketFrom(cursor_);
        if (b < numBuckets) {
            // The chain is sorted, so the head is the bucket minimum;
            // squashed entries are pruned as they surface there.
            Node *n = buckets_[b];
            while (n != nullptr && !isLive(*n)) {
                buckets_[b] = n->next;
                --ladderNodes_;
                droppedDead(n->event);
                releaseNode(n);
                n = buckets_[b];
            }
            if (n == nullptr) {
                // Bucket held only squashed entries; the cleared bit
                // makes the rescan skip it. cursor_ must not advance:
                // this granule may still be in the future and could
                // be scheduled into again.
                tails_[b] = nullptr;
                clearBit(b);
                continue;
            }
            return Candidate{b, n};
        }

        // Ladder empty: rebase the window onto the earliest heap
        // entry, or report an empty queue.
        skipSquashed();
        if (heap_.empty())
            return Candidate{};
        rebaseLadder();
    }
}

void
EventQueue::fire(Event *ev, Tick when, bool self_deleting)
{
    f4t_assert(when >= now_, "event queue time went backwards");
    now_ = when;
    ev->scheduled_ = false;
    f4t_assert(liveEvents_ > 0, "live event count underflow");
    --liveEvents_;
    ++processed_;
    // Black box + watchdog heartbeat. The record is the flight
    // recorder's hot-path cost contract (relaxed store + index bump);
    // the beat piggybacks on the existing dispatch counter so the
    // watchdog sees progress without another atomic on every fire.
    fr::record(fr::Kind::evDispatch, when, 0, 0,
               static_cast<std::uint64_t>(ev->priority_), processed_);
    if ((processed_ & 0x3fff) == 0)
        fr::beat();
    if (prof::enabled()) {
        prof::Scope event_scope(eventCategory(ev));
        dispatch(ev);
    } else {
        dispatch(ev);
    }
    if (self_deleting)
        recycleCallback(static_cast<CallbackEvent *>(ev));
}

void
EventQueue::dispatch(Event *ev)
{
    // Tagged-union hot path: the two shapes that account for nearly
    // every fire — pooled callbacks and ClockedObject ticks — are
    // reached through a switch on the kind byte and a direct call.
    // Both bodies are what their virtual process() would have run, so
    // the two modes are observably identical (the dispatch-
    // differential corpus proves it); `generic` and the escape hatch
    // take the virtual path.
    if (taggedDispatchCompiledIn && g_taggedDispatch) {
        switch (ev->kind_) {
          case EventKind::callback:
            static_cast<CallbackEvent *>(ev)->fn_();
            return;
          case EventKind::tick:
            static_cast<ClockedObject::TickEvent *>(ev)->run();
            return;
          case EventKind::generic:
            break;
        }
    }
    ev->process();
}

bool
EventQueue::runOneSlow(Tick limit)
{
    checkAccounting();
    Candidate cand = findCandidate();
    skipSquashed();
    if (cand.node == nullptr && heap_.empty())
        return false;

    // The ladder window normally precedes every heap entry, but an
    // event scheduled below a rebased window lands in the heap, so the
    // global minimum needs one comparison between the two fronts.
    bool use_heap = cand.node == nullptr;
    if (!use_heap && !heap_.empty())
        use_heap = keyBefore(heap_.front(), *cand.node);

    Tick when;
    Event *ev;
    bool self_deleting;
    if (use_heap) {
        if (heap_.front().when > limit)
            return false;
        HeapEntry top = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), HeapCompare{});
        heap_.pop_back();
        when = top.when;
        ev = top.event;
        self_deleting = top.selfDeleting;
    } else {
        Node *n = cand.node;
        if (n->when > limit)
            return false;
        buckets_[cand.bucket] = n->next;
        --ladderNodes_;
        if (buckets_[cand.bucket] == nullptr) {
            tails_[cand.bucket] = nullptr;
            clearBit(cand.bucket);
        }
        // Nothing can be scheduled before this event's tick once it
        // fires, so the scan may start here permanently.
        cursor_ = cand.bucket;
        when = n->when;
        ev = n->event;
        self_deleting = n->selfDeleting;
        releaseNode(n);
    }

    fire(ev, when, self_deleting);
    return true;
}

} // namespace f4t::sim
