/**
 * @file
 * Observability layer: per-module trace flags, a Chrome trace-event
 * timeline sink, and a periodic statistics sampler.
 *
 * Three complementary views of a run, each zero-cost when unused:
 *
 *  - `F4T_TRACE(Fpc, "absorb %s flow=%u", ...)` — gem5-DPRINTF-style
 *    tracepoints gated by per-module flags. Flags are selected at run
 *    time by name or glob ("Fpc,Sch*", case-insensitive) through the
 *    F4T_TRACE environment variable, trace::setFlags(), or
 *    Simulation::setTraceFlags(); a leading '-' clears matching flags.
 *    Every line is stamped with the current simulation tick, and the
 *    `F4T_TRACE_CD` variant adds a clock domain's name and cycle. The
 *    release preset compiles both macros out (F4T_ENABLE_TRACE=OFF),
 *    exactly like F4T_CHECK, so tracepoints can sit on the hottest
 *    paths without taxing perf_kernel numbers.
 *
 *  - TraceEventSink — buffers spans, instants, and counter samples and
 *    writes the Chrome trace-event JSON format (open the file in
 *    Perfetto or chrome://tracing). Modules emit through
 *    `if (auto *tl = sim().timeline()) tl->span(...)`; without a sink
 *    attached the cost is one pointer test, and hot per-event sites
 *    additionally compile out with `if constexpr (trace::compiledIn)`.
 *
 *  - StatSampler — snapshots selected StatRegistry entries (plus
 *    arbitrary probe callbacks, e.g. a connection's cwnd) every N ticks
 *    into a CSV time series, so Fig. 14-style curves fall out of any
 *    run without bespoke per-bench sampling loops.
 *
 * This header deliberately depends only on the event queue and logging
 * so simulation.hh can include it; entry points needing the full
 * Simulation type are implemented in trace.cc.
 */

#ifndef F4T_SIM_TRACE_HH
#define F4T_SIM_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace f4t::sim
{

class ClockDomain;
class Simulation;

namespace trace
{

#ifdef F4T_ENABLE_TRACE
constexpr bool compiledIn = true;
#else
constexpr bool compiledIn = false;
#endif

/** One flag per traced module; see toString() for the spellings. */
enum class Flag : unsigned
{
    Engine,
    Fpc,
    Scheduler,
    RxParser,
    PacketGenerator,
    MemoryManager,
    HostIf,
    Pcie,
    Link,
    SoftTcp,
    Timer,
    numFlags
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::numFlags);

const char *toString(Flag flag);

namespace detail
{

/* Always defined (not just under F4T_ENABLE_TRACE) so the flag API is
 * callable from any build; without the macro compiled in the state is
 * simply never consulted. */
extern bool flagState[numFlags];

/** Emit one already-formatted trace line, stamped with the current tick. */
void emit(Flag flag, const std::string &msg);
/** As emit(), additionally stamped with @p domain's name and cycle. */
void emitWithClock(Flag flag, const ClockDomain &domain,
                   const std::string &msg);

void notifySimulationCreated(Simulation &sim);
void notifySimulationDestroyed(Simulation &sim);

} // namespace detail

/** Is @p flag currently selected? (One array load when compiled in.) */
inline bool
enabled(Flag flag)
{
    if constexpr (!compiledIn)
        return false;
    return detail::flagState[static_cast<unsigned>(flag)];
}

/**
 * Select flags from a comma- or space-separated list of case-insensitive
 * glob patterns ("Fpc", "Sch*", "*"). A leading '-' clears the matching
 * flags instead ("*,-Link" = everything but Link). Unknown patterns
 * warn and are ignored. @return the number of flag changes applied.
 */
std::size_t setFlags(const std::string &spec);

/** Clear every flag. */
void clearFlags();

/** Case-insensitive glob match ('*' and '?'); exposed for tests. */
bool globMatch(const char *pattern, const char *text);

/** Redirect trace-line output (default stderr). Not owned. */
void setOutput(std::FILE *out);

/**
 * Process-wide hooks observing Simulation construction/destruction, so
 * a CLI layer (bench::Obs) can attach timeline sinks and stat samplers
 * to every simulation a binary creates without per-bench plumbing.
 * Pass empty functions to uninstall.
 */
void setSimulationObservers(std::function<void(Simulation &)> on_created,
                            std::function<void(Simulation &)> on_destroyed);

/**
 * Chrome trace-event JSON sink ("Trace Event Format", the format read
 * by Perfetto and chrome://tracing). Events buffer in memory — at most
 * @p max_events, further emissions are counted and dropped — and
 * write() produces the JSON document. Tracks (one per module, named)
 * map to thread ids within a single synthetic process.
 *
 * Memory bound: the buffer holds at most max_events records (default
 * 2^20, roughly 100 MB worst case with long names) and NEVER grows
 * past it — long runs truncate rather than exhaust memory. Overflow is
 * not silent: droppedEvents() reports the count, and when any events
 * were dropped the written document ends with a
 * "trace.droppedEvents" counter record (category "meta", stamped at
 * the last retained event) so a viewer shows the truncation point.
 */
class TraceEventSink
{
  public:
    explicit TraceEventSink(std::size_t max_events = std::size_t{1} << 20)
        : maxEvents_(max_events)
    {}

    /** Complete span [start, end] on @p track ("X" phase). */
    void span(const std::string &track, const char *category,
              std::string name, Tick start, Tick end);

    /** Instantaneous event ("i" phase). */
    void instant(const std::string &track, const char *category,
                 std::string name, Tick at);

    /** Counter sample ("C" phase); series named @p name. */
    void counter(const std::string &track, std::string name, Tick at,
                 double value);

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }

    /** Write the complete JSON document. */
    void write(std::ostream &os) const;

    /** write() to @p path; warns and returns false on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    struct TraceEvent
    {
        char phase; ///< 'X', 'i', or 'C'
        std::uint32_t tid;
        const char *category;
        std::string name;
        Tick ts;
        Tick dur;     ///< 'X' only
        double value; ///< 'C' only
    };

    std::uint32_t trackId(const std::string &track);
    bool full();

    std::size_t maxEvents_;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
    std::unordered_map<std::string, std::uint32_t> trackIds_;
    std::vector<std::string> trackNames_;
};

/**
 * Periodic statistics sampler: every @p interval ticks, append one CSV
 * row holding the current value of each selected StatRegistry entry and
 * each registered probe. Columns are resolved at the *first* sample
 * (not at start()) so modules constructed after the sampler still
 * contribute. Optionally rewrites a full StatRegistry::dumpJson
 * snapshot on every fire — last write wins, leaving the end-of-run
 * aggregate on disk without hooking simulation teardown.
 */
class StatSampler
{
  public:
    StatSampler(Simulation &sim, Tick interval);
    ~StatSampler();

    StatSampler(const StatSampler &) = delete;
    StatSampler &operator=(const StatSampler &) = delete;

    /** Select registry statistics by glob list (same syntax as flags). */
    void selectStats(std::string glob_spec) { statSpec_ = std::move(glob_spec); }
    /** Add a computed column, e.g. a connection's cwnd. */
    void addProbe(std::string column, std::function<double()> fn);
    void setCsvPath(std::string path) { csvPath_ = std::move(path); }
    /** Rewrite a dumpJson snapshot to @p path on every sample. */
    void setStatsJsonPath(std::string path) { jsonPath_ = std::move(path); }

    /** Schedule the first sample one interval from now. */
    void start();
    void stop();

    std::uint64_t samplesTaken() const { return samples_; }

  private:
    struct SampleEvent : public Event
    {
        explicit SampleEvent(StatSampler &owner)
            : Event(statsPriority), owner_(owner)
        {}
        void process() override { owner_.sample(); }
        std::string description() const override { return "stat.sample"; }
        const char *profileTag() const override { return "stat.sample"; }
        StatSampler &owner_;
    };

    void sample();
    void resolveColumns();

    Simulation &sim_;
    Tick interval_;
    std::string statSpec_ = "*";
    std::string csvPath_;
    std::string jsonPath_;
    std::FILE *csv_ = nullptr;
    bool columnsResolved_ = false;
    std::vector<std::string> statColumns_;
    struct Probe
    {
        std::string column;
        std::function<double()> fn;
    };
    std::vector<Probe> probes_;
    std::uint64_t samples_ = 0;
    SampleEvent event_{*this};
};

} // namespace trace

} // namespace f4t::sim

#ifdef F4T_ENABLE_TRACE
#define F4T_TRACE(flag, ...)                                              \
    do {                                                                  \
        if (::f4t::sim::trace::enabled(::f4t::sim::trace::Flag::flag))    \
            ::f4t::sim::trace::detail::emit(                              \
                ::f4t::sim::trace::Flag::flag,                            \
                ::f4t::sim::detail::format(__VA_ARGS__));                 \
    } while (0)
#define F4T_TRACE_CD(flag, domain, ...)                                   \
    do {                                                                  \
        if (::f4t::sim::trace::enabled(::f4t::sim::trace::Flag::flag))    \
            ::f4t::sim::trace::detail::emitWithClock(                     \
                ::f4t::sim::trace::Flag::flag, (domain),                  \
                ::f4t::sim::detail::format(__VA_ARGS__));                 \
    } while (0)
#else
/* The dead branch keeps the operands type-checked and "used" (no
 * -Wunused in trace-off builds) while the optimizer deletes the call. */
#define F4T_TRACE(flag, ...)                                \
    do {                                                    \
        if (false)                                          \
            (void)::f4t::sim::detail::format(__VA_ARGS__);  \
    } while (0)
#define F4T_TRACE_CD(flag, domain, ...)                     \
    do {                                                    \
        if (false) {                                        \
            (void)(domain);                                 \
            (void)::f4t::sim::detail::format(__VA_ARGS__);  \
        }                                                   \
    } while (0)
#endif

#endif // F4T_SIM_TRACE_HH
