/**
 * @file
 * Always-on invariant checkers, compiled in behind F4T_ENABLE_CHECKS.
 *
 * The paper's headline properties — no TCB lost or duplicated across a
 * migration, monotone cumulative sequence pointers, one event absorbed
 * per two cycles per FPC — are exactly the invariants most likely to
 * regress silently under refactors. Guarding them with f4t_assert alone
 * would tax the release perf builds, so they live behind this macro
 * layer instead:
 *
 *  - `F4T_CHECK(cond, fmt, ...)` panics like f4t_assert when checks are
 *    compiled in and vanishes entirely (operands unevaluated) when not;
 *  - `F4T_IF_CHECKS(code)` compiles `code` only in checked builds, for
 *    bookkeeping state that exists purely to feed checks;
 *  - `sim::checksEnabled` lets ordinary code branch at compile time.
 *
 * The CMake option F4T_ENABLE_CHECKS (default ON; the `release` perf
 * preset turns it OFF) defines the macro for every target. Periodic
 * whole-structure audits register with Simulation::registerAudit and
 * run via Simulation::maybeAudit from module ticks, so every
 * simulation — tests, fuzz runs, experiments — validates the protocol
 * continuously, not just dedicated unit tests.
 */

#ifndef F4T_SIM_CHECK_HH
#define F4T_SIM_CHECK_HH

#include "sim/logging.hh"

namespace f4t::sim
{

#ifdef F4T_ENABLE_CHECKS
constexpr bool checksEnabled = true;
#else
constexpr bool checksEnabled = false;
#endif

} // namespace f4t::sim

#ifdef F4T_ENABLE_CHECKS
#define F4T_CHECK(cond, ...) f4t_assert(cond, __VA_ARGS__)
#define F4T_IF_CHECKS(...) __VA_ARGS__
#else
/* sizeof keeps the operands unevaluated while still marking the
 * variables that feed the check as used in checks-off builds. */
#define F4T_CHECK(cond, ...)              \
    do {                                  \
        (void)sizeof((cond) ? 1 : 0);     \
    } while (0)
#define F4T_IF_CHECKS(...)
#endif

#endif // F4T_SIM_CHECK_HH
