/**
 * @file
 * Lightweight named-statistics framework.
 *
 * Modules register Scalar / Counter / Histogram statistics with a
 * StatRegistry under dotted names ("engine.fpc0.eventsHandled"). The
 * registry can dump all statistics as text and supports reset, so
 * benchmarks can measure steady-state intervals.
 *
 * Histogram keeps every sample (with an optional reservoir cap) so that
 * exact medians and tail percentiles — needed for the Fig. 12 latency
 * experiment — are available.
 */

#ifndef F4T_SIM_STATS_HH
#define F4T_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace f4t::sim
{

class StatRegistry;

/** Common base: a named statistic registered with a registry. */
class StatBase
{
  public:
    StatBase(StatRegistry &registry, std::string name,
             std::string description);
    virtual ~StatBase();

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

    virtual void reset() = 0;
    virtual void print(std::ostream &os) const = 0;

    /** Value as a JSON fragment (number or object), for dumpJson(). */
    virtual void printJson(std::ostream &os) const = 0;

    /**
     * Single-number snapshot for time-series sampling (trace.hh's
     * StatSampler): the value for scalars and counters, the running
     * mean for histograms.
     */
    virtual double sampleValue() const = 0;

  private:
    StatRegistry &registry_;
    std::string name_;
    std::string description_;
};

/** A double-valued scalar statistic (gauges and accumulators). */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator=(double v) { value_ = v; return *this; }
    Scalar &operator+=(double v) { value_ += v; return *this; }
    double value() const { return value_; }

    void reset() override { value_ = 0.0; }
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    double sampleValue() const override { return value_; }

  private:
    double value_ = 0.0;
};

/** A monotonically increasing integer counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t v) { value_ += v; return *this; }
    std::uint64_t value() const { return value_; }

    void reset() override { value_ = 0; }
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    double sampleValue() const override
    {
        return static_cast<double>(value_);
    }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Sample-keeping distribution. Exact percentiles while the sample count
 * stays below the cap; beyond the cap, uniform reservoir sampling keeps
 * the distribution representative.
 */
class Histogram : public StatBase
{
  public:
    Histogram(StatRegistry &registry, std::string name,
              std::string description, std::size_t reservoir_cap = 1 << 20);

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Exact (or reservoir-approximated) percentile, p in [0, 100]. */
    double percentile(double p) const;

    void reset() override;
    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    double sampleValue() const override { return mean(); }

  private:
    std::size_t cap_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
    mutable bool sorted_ = true;
    std::uint64_t rngState_ = 0x9e3779b97f4a7c15ULL;
};

/**
 * Registry of all statistics belonging to one simulation.
 *
 * Threading contract under the parallel executor: each registry (and
 * every statistic registered with it) belongs to exactly one
 * partition, so stat *values* are only ever touched by the thread
 * currently running that partition — the window barrier provides the
 * happens-before edge between threads across windows, and increments
 * stay plain (no atomics on the hot path). Only the name map is
 * lock-protected, because objects may register or unregister
 * statistics from a worker thread mid-window (dynamically created
 * flows) while a harness thread walks another partition's registry.
 */
class StatRegistry
{
  public:
    StatRegistry() = default;

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** Look up a statistic by full dotted name; nullptr if missing. */
    StatBase *find(const std::string &name) const;

    /** Reset every registered statistic (start of measurement window). */
    void resetAll();

    /** Print all statistics, sorted by name. */
    void dump(std::ostream &os) const;

    /** Machine-readable dump: one JSON object keyed by stat name. */
    void dumpJson(std::ostream &os) const;

    /** Visit every statistic in name order. The registration lock is
     *  held across the walk; @p fn must not register statistics. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, stat] : stats_)
            fn(*stat);
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stats_.size();
    }

  private:
    friend class StatBase;

    void add(StatBase *stat);
    void remove(const StatBase *stat);

    mutable std::mutex mutex_; ///< guards the name map, not the values
    std::map<std::string, StatBase *> stats_;
};

} // namespace f4t::sim

#endif // F4T_SIM_STATS_HH
