/**
 * @file
 * Host CPU model: cores that serialize cycle-accounted work.
 *
 * Application models and stack cost models charge cycles to a core;
 * the core's busy horizon advances accordingly and paces everything
 * scheduled on it. Per-category cycle counters provide the CPU
 * utilization breakdowns of Fig. 1a and Fig. 11.
 */

#ifndef F4T_HOST_CPU_HH
#define F4T_HOST_CPU_HH

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "host/cost_model.hh"
#include "sim/simulation.hh"
#include "tcp/soft_tcp.hh"

namespace f4t::host
{

/**
 * A single CPU core. Work is charged in cycles; runAfterCharge()
 * sequences application steps behind all previously charged work, so
 * a saturated core naturally becomes the throughput bottleneck.
 */
class CpuCore : public sim::SimObject, public tcp::CycleAccountant
{
  public:
    CpuCore(sim::Simulation &sim, std::string name,
            double frequency_hz = hostFrequencyHz);

    double frequency() const { return frequencyHz_; }

    /** Charge cycles in a category; extends the busy horizon. */
    void charge(tcp::CostCategory category, double cycles) override;

    /** The earliest tick at which new work could start. */
    sim::Tick busyUntil() const { return busyUntil_; }

    /** True when the busy horizon is in the past (core idle now). */
    bool idle() const { return busyUntil_ <= now(); }

    /**
     * Charge @p cycles in @p category, then invoke @p fn when the
     * core's busy horizon reaches that work (i.e., after all earlier
     * charged work and this work complete).
     */
    void runAfterCharge(tcp::CostCategory category, double cycles,
                        sim::SmallFunction fn);

    /** Run @p fn as soon as the core is free (no charge). */
    void runWhenFree(sim::SmallFunction fn);

    /** Cycles consumed in one category since the last stats reset. */
    double categoryCycles(tcp::CostCategory category) const;

    /** Total busy cycles since the last stats reset. */
    double totalBusyCycles() const;

    /** Utilization in [0, 1] over a window of @p window_ticks. */
    double utilization(sim::Tick window_ticks) const;

  private:
    double frequencyHz_;
    sim::Tick busyUntil_ = 0;

    static constexpr std::size_t numCategories = 5;
    std::array<std::unique_ptr<sim::Scalar>, numCategories> cycles_;
};

/** A pool of cores (the dual-socket host). */
class CpuComplex : public sim::SimObject
{
  public:
    CpuComplex(sim::Simulation &sim, std::string name, std::size_t cores,
               double frequency_hz = hostFrequencyHz);

    std::size_t size() const { return cores_.size(); }
    CpuCore &core(std::size_t i) { return *cores_.at(i); }

    double totalBusyCycles() const;

  private:
    std::vector<std::unique_ptr<CpuCore>> cores_;
};

} // namespace f4t::host

#endif // F4T_HOST_CPU_HH
