#include "pcie.hh"

#include "sim/flight_recorder.hh"

namespace f4t::host
{

PcieModel::PcieModel(sim::Simulation &sim, std::string name,
                     const PcieConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      h2dBytes_(sim.stats(), statName("h2dBytes"),
                "host-to-device bytes transferred"),
      d2hBytes_(sim.stats(), statName("d2hBytes"),
                "device-to-host bytes transferred"),
      transactions_(sim.stats(), statName("transactions"),
                    "DMA transactions issued")
{
    frModule_ = sim::fr::internModule(this->name());
}

sim::Tick
PcieModel::transfer(std::size_t bytes, sim::Tick &busy_until,
                    sim::Counter &counter, const char *what,
                    sim::SmallFunction on_complete)
{
    ++transactions_;
    counter += bytes;
    std::size_t wire_bytes = bytes + config_.transactionOverheadBytes;
    double seconds =
        static_cast<double>(wire_bytes) / config_.bandwidthBytesPerSec;
    sim::Tick start = busy_until > now() ? busy_until : now();
    busy_until = start + sim::secondsToTicks(seconds);
    sim::Tick done = busy_until + config_.dmaLatency;
    sim::fr::record(sim::fr::Kind::pcieDma, now(), frModule_, 0, bytes,
                    &counter == &d2hBytes_ ? 1 : 0);
    F4T_TRACE(Pcie, "%s: %s DMA %zuB [%llu..%llu]", name().c_str(), what,
              bytes, static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(done));
    // The whole transaction is known at issue time, so the span can be
    // emitted up front. Hot under bulk transfers; compiled out with the
    // tracepoints.
    if constexpr (sim::trace::compiledIn) {
        if (auto *tl = sim().timeline())
            tl->span(name(), "dma",
                     std::string(what) + " " + std::to_string(bytes) + "B",
                     start, done);
    }
    if (on_complete)
        queue().scheduleCallback(done, what, std::move(on_complete));
    return done;
}

sim::Tick
PcieModel::hostToDevice(std::size_t bytes, sim::SmallFunction on_complete)
{
    return transfer(bytes, h2dBusyUntil_, h2dBytes_, "pcie.h2d",
                    std::move(on_complete));
}

sim::Tick
PcieModel::deviceToHost(std::size_t bytes, sim::SmallFunction on_complete)
{
    return transfer(bytes, d2hBusyUntil_, d2hBytes_, "pcie.d2h",
                    std::move(on_complete));
}

sim::Tick
PcieModel::mmioDoorbell(sim::SmallFunction on_observed)
{
    sim::Tick done = now() + config_.mmioLatency;
    sim::fr::record(sim::fr::Kind::pcieDoorbell, now(), frModule_, 0);
    F4T_TRACE(Pcie, "%s: MMIO doorbell", name().c_str());
    if constexpr (sim::trace::compiledIn) {
        if (auto *tl = sim().timeline())
            tl->instant(name(), "mmio", "doorbell", now());
    }
    if (on_observed)
        queue().scheduleCallback(done, "pcie.doorbell",
                                 std::move(on_observed));
    return done;
}

} // namespace f4t::host
