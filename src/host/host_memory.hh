/**
 * @file
 * Host-side TCP data buffers living in hugepages (Section 4.1.1).
 *
 * The F4T library writes transmit data here and reads receive data
 * from here; FtEngine's packet generator and RX parser DMA the same
 * memory over PCIe. Buffers are addressed by 64-bit stream offsets
 * (offset 0 = first payload byte after the SYN); the engine converts
 * between wire sequence numbers and offsets.
 */

#ifndef F4T_HOST_HOST_MEMORY_HH
#define F4T_HOST_HOST_MEMORY_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/byte_ring.hh"
#include "tcp/tcb.hh"

namespace f4t::host
{

struct FlowBuffers
{
    FlowBuffers(std::size_t tx_bytes, std::size_t rx_bytes)
        : tx(tx_bytes), rx(rx_bytes)
    {}

    net::ByteRing tx;
    net::ByteRing rx;
    /** Highest receive offset the engine has written so far. */
    std::uint64_t rxWritten = 0;
};

class HostMemory
{
  public:
    explicit HostMemory(std::size_t buffer_bytes = 512 * 1024)
        : bufferBytes_(buffer_bytes)
    {}

    std::size_t bufferBytes() const { return bufferBytes_; }

    FlowBuffers &
    ensure(tcp::FlowId flow)
    {
        auto it = flows_.find(flow);
        if (it == flows_.end()) {
            it = flows_
                     .emplace(flow, std::make_unique<FlowBuffers>(
                                        bufferBytes_, bufferBytes_))
                     .first;
        }
        return *it->second;
    }

    FlowBuffers *
    find(tcp::FlowId flow)
    {
        auto it = flows_.find(flow);
        return it == flows_.end() ? nullptr : it->second.get();
    }

    void release(tcp::FlowId flow) { flows_.erase(flow); }

    std::size_t flowCount() const { return flows_.size(); }

  private:
    std::size_t bufferBytes_;
    std::unordered_map<tcp::FlowId, std::unique_ptr<FlowBuffers>> flows_;
};

} // namespace f4t::host

#endif // F4T_HOST_HOST_MEMORY_HH
