/**
 * @file
 * PCIe interconnect model between the host and FtEngine.
 *
 * Two independent bandwidth-limited directions (host-to-device reads
 * by the engine's DMA engine, device-to-host writes), each charging a
 * per-transaction latency. The Fig. 9 / Fig. 16a ceilings — 16 B
 * requests bounded by command + payload DMA, and ~900 Mrps only after
 * shrinking commands from 16 B to 8 B — are produced by this model.
 *
 * MMIO doorbell writes are posted: they cost host CPU cycles (charged
 * by the F4T library) and a small propagation delay here.
 */

#ifndef F4T_HOST_PCIE_HH
#define F4T_HOST_PCIE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.hh"

namespace f4t::host
{

struct PcieConfig
{
    /** Effective data bandwidth per direction (Gen3 x16, ~75 % eff.). */
    double bandwidthBytesPerSec = 13.5e9;
    /** DMA round-trip latency per transaction. */
    sim::Tick dmaLatency = sim::nanosecondsToTicks(700);
    /** Doorbell propagation (posted MMIO write). */
    sim::Tick mmioLatency = sim::nanosecondsToTicks(400);
    /** Per-transaction header overhead charged to bandwidth. */
    std::size_t transactionOverheadBytes = 24;
};

class PcieModel : public sim::SimObject
{
  public:
    PcieModel(sim::Simulation &sim, std::string name,
              const PcieConfig &config = {});

    /** Host-to-device transfer (engine reads commands / payload). */
    sim::Tick hostToDevice(std::size_t bytes,
                           sim::SmallFunction on_complete = nullptr);

    /** Device-to-host transfer (completions / received payload). */
    sim::Tick deviceToHost(std::size_t bytes,
                           sim::SmallFunction on_complete = nullptr);

    /** Doorbell write; returns when the device observes it. */
    sim::Tick mmioDoorbell(sim::SmallFunction on_observed = nullptr);

    const PcieConfig &config() const { return config_; }

    std::uint64_t hostToDeviceBytes() const { return h2dBytes_.value(); }
    std::uint64_t deviceToHostBytes() const { return d2hBytes_.value(); }

  private:
    sim::Tick transfer(std::size_t bytes, sim::Tick &busy_until,
                       sim::Counter &counter, const char *what,
                       sim::SmallFunction on_complete);

    PcieConfig config_;
    sim::Tick h2dBusyUntil_ = 0;
    sim::Tick d2hBusyUntil_ = 0;
    /** Flight-recorder module id (interned once at construction). */
    std::uint16_t frModule_ = 0;

    sim::Counter h2dBytes_;
    sim::Counter d2hBytes_;
    sim::Counter transactions_;
};

} // namespace f4t::host

#endif // F4T_HOST_PCIE_HH
