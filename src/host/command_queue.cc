#include "command_queue.hh"

namespace f4t::host
{

const char *
toString(CmdOp op)
{
    switch (op) {
      case CmdOp::listen: return "listen";
      case CmdOp::connect: return "connect";
      case CmdOp::send: return "send";
      case CmdOp::recv: return "recv";
      case CmdOp::close: return "close";
      case CmdOp::connected: return "connected";
      case CmdOp::accepted: return "accepted";
      case CmdOp::acked: return "acked";
      case CmdOp::received: return "received";
      case CmdOp::peerClosed: return "peerClosed";
      case CmdOp::closed: return "closed";
      case CmdOp::reset: return "reset";
    }
    return "?";
}

} // namespace f4t::host
