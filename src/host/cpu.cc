#include "cpu.hh"

namespace f4t::host
{

CpuCore::CpuCore(sim::Simulation &sim, std::string name, double frequency_hz)
    : SimObject(sim, std::move(name)), frequencyHz_(frequency_hz)
{
    for (std::size_t i = 0; i < numCategories; ++i) {
        auto category = static_cast<tcp::CostCategory>(i);
        cycles_[i] = std::make_unique<sim::Scalar>(
            sim.stats(), statName(std::string("cycles.") +
                                  tcp::toString(category)),
            "cycles consumed in this category");
    }
}

void
CpuCore::charge(tcp::CostCategory category, double cycles)
{
    if (cycles <= 0)
        return;
    *cycles_[static_cast<std::size_t>(category)] += cycles;
    sim::Tick duration = static_cast<sim::Tick>(
        cycles / frequencyHz_ * static_cast<double>(sim::ticksPerSecond));
    sim::Tick start = busyUntil_ > now() ? busyUntil_ : now();
    busyUntil_ = start + duration;
}

void
CpuCore::runAfterCharge(tcp::CostCategory category, double cycles,
                        sim::SmallFunction fn)
{
    charge(category, cycles);
    sim::Tick when = busyUntil_ > now() ? busyUntil_ : now();
    queue().scheduleCallback(when, "cpu.charged", std::move(fn));
}

void
CpuCore::runWhenFree(sim::SmallFunction fn)
{
    sim::Tick when = busyUntil_ > now() ? busyUntil_ : now();
    queue().scheduleCallback(when, "cpu.free", std::move(fn));
}

double
CpuCore::categoryCycles(tcp::CostCategory category) const
{
    return cycles_[static_cast<std::size_t>(category)]->value();
}

double
CpuCore::totalBusyCycles() const
{
    double total = 0;
    for (const auto &scalar : cycles_)
        total += scalar->value();
    return total;
}

double
CpuCore::utilization(sim::Tick window_ticks) const
{
    if (window_ticks == 0)
        return 0.0;
    double window_cycles = frequencyHz_ * sim::ticksToSeconds(window_ticks);
    double busy = totalBusyCycles();
    return busy >= window_cycles ? 1.0 : busy / window_cycles;
}

CpuComplex::CpuComplex(sim::Simulation &sim, std::string name,
                       std::size_t cores, double frequency_hz)
    : SimObject(sim, std::move(name))
{
    for (std::size_t i = 0; i < cores; ++i) {
        cores_.push_back(std::make_unique<CpuCore>(
            sim, this->name() + ".core" + std::to_string(i),
            frequency_hz));
    }
}

double
CpuComplex::totalBusyCycles() const
{
    double total = 0;
    for (const auto &core : cores_)
        total += core->totalBusyCycles();
    return total;
}

} // namespace f4t::host
