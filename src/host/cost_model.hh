/**
 * @file
 * Every calibrated host-CPU cost constant in one place.
 *
 * The reproduction cannot execute the Linux kernel, Nginx, wrk, or
 * iPerf, so per-operation CPU cycle budgets are calibrated once from
 * measured points the paper itself reports, then held fixed across all
 * experiments:
 *
 *  - Section 1: "CPUs require 104 cores to saturate a 100 Gbps network
 *    with 128 B requests and 13 cores with 1024 B requests"
 *       => Linux TCP send path ~ 2300 + 0.33 x bytes cycles/request at
 *          2.3 GHz (128 B -> ~2340 cycl -> 0.98 Mrps/core;
 *          1024 B -> ~2640 cycl -> 0.87 Mrps/core).
 *  - Fig. 8a: Linux bulk 128 B reaches 8.3 Gbps with 8 cores
 *       => consistent with the same per-request budget.
 *  - Fig. 8b: Linux round-robin over 16 flows/core reaches only
 *    0.126 Gbps with one core (~123 krps) => a large low-locality
 *    penalty (~16 kcycles/request) dominated by per-packet processing
 *    with no coalescing, socket switching, and cache misses.
 *  - Fig. 1a / Fig. 11: Nginx on Linux spends 26 % app / 37 % TCP /
 *    37 % other kernel => per-request budget split 2600 / 3700 / 3700.
 *  - Fig. 8a: F4T bulk reaches 44 Mrps on one core => ~52 cycles per
 *    send() through the F4T library (plain function call + amortized
 *    MMIO doorbell batching).
 *  - Fig. 11: F4T Nginx still spends sizable kernel time in
 *    vfs_read() => the filesystem budget stays on both stacks.
 *
 * All other behaviour (window dynamics, engine rates, link/PCIe/DRAM
 * ceilings) is modelled, not calibrated.
 */

#ifndef F4T_HOST_COST_MODEL_HH
#define F4T_HOST_COST_MODEL_HH

#include <cstdint>

namespace f4t::host
{

/** Host CPU frequency (dual-socket Xeon Gold 5118). */
constexpr double hostFrequencyHz = 2.3e9;

/** Linux TCP stack per-operation costs (cycles). */
struct LinuxCosts
{
    /** send()/write() syscall + TCP TX path, fixed part. */
    static constexpr double sendSyscall = 1150.0;
    /** TX per-byte cost (copy + checksum until offload). */
    static constexpr double sendPerByte = 0.33;
    /** recv()/read() syscall fixed part. */
    static constexpr double recvSyscall = 700.0;
    static constexpr double recvPerByte = 0.25;
    /** Per wire segment generated (qdisc + driver + TSO amortized). */
    static constexpr double txSegment = 400.0;
    /** Per wire segment received (softirq + TCP RX). */
    static constexpr double rxSegment = 800.0;
    static constexpr double rxPerByte = 0.1;
    /** Handshake path (accept/connect bookkeeping). */
    static constexpr double connectionSetup = 6000.0;
    /** Share of stack cycles booked to generic kernel overhead. */
    static constexpr double kernelShare = 0.35;

    /**
     * Low-locality penalty: extra cycles per request when an
     * application multiplexes many sockets with tiny requests
     * (Fig. 8b). Covers epoll round trips, socket lookup and cache
     * misses, and the loss of TSO/GRO batching.
     */
    static constexpr double smallFlowPenalty = 15500.0;
};

/** F4T library / runtime per-operation costs (cycles). */
struct F4tCosts
{
    /** A socket API call into the library (plain function call). */
    static constexpr double libraryCall = 12.0;
    /** Building one 16 B command in the command queue. */
    static constexpr double commandWrite = 8.0;
    /** One MMIO doorbell write (amortized over a batch). */
    static constexpr double doorbellMmio = 300.0;
    /** Commands per doorbell under MMIO batching. */
    static constexpr double doorbellBatch = 32.0;
    /** Polling one completion from the queue (cache hit via DDIO). */
    static constexpr double completionPoll = 25.0;
    /** Extra cost when servicing many flows (cache pressure). */
    static constexpr double flowSwitchPenalty = 15.0;
};

/** Nginx request budget (cycles per HTTP request, besides the stack). */
struct NginxCosts
{
    /** HTTP parse + response build + logging. */
    static constexpr double appProcessing = 2600.0;
    /** vfs_read() of the HTML file (page-cache hit). */
    static constexpr double filesystem = 950.0;
    /** Linux-specific: TCP stack share per request (Fig. 1a, 37 %). */
    static constexpr double linuxTcp = 3700.0;
    /** Linux-specific: other kernel work per request (37 %). */
    static constexpr double linuxKernelOther = 3700.0;
};

/** wrk-like load generator cost (cycles per request round trip). */
constexpr double wrkRequestCost = 600.0;

/**
 * Linux wakeup latency model (Fig. 12): response latency includes
 * scheduler/softirq jitter with a heavy tail; F4T's polling library
 * avoids it. Parameters of a log-normal + rare-spike mixture.
 */
struct LinuxLatencyJitter
{
    static constexpr double medianUs = 28.0;  ///< typical extra delay
    static constexpr double sigma = 0.55;     ///< log-normal shape
    static constexpr double spikeProbability = 0.015;
    static constexpr double spikeMinUs = 1500.0;
    static constexpr double spikeMaxUs = 4000.0;
};

/** F4T software wake latency when the library slept (Section 4.6). */
constexpr double f4tWakeLatencyUs = 2.0;

} // namespace f4t::host

#endif // F4T_HOST_COST_MODEL_HH
